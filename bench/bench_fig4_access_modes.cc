// E3 — Fig. 4: access-mode selection for the positional join. Composing a
// sparse selected sequence (the "#1" sequence of the figure, selectivity
// swept) with the DEC sequence, the optimizer must choose among
// Join-Strategy-A in either direction and Join-Strategy-B.
//
// Paper claim: the right choice depends on "the density of the base
// sequences ... their access costs and the selectivity of the operator
// that generates the #1 sequence" — expect Strategy-A (stream the sparse
// side, probe the other) to win at low selectivity, Strategy-B (lock-step)
// at high selectivity, with a crossover in between; and the optimizer's
// pick to match the cheapest measured strategy.

#include "bench/bench_util.h"

namespace seq {
namespace {

constexpr Position kSpanEnd = 100000;

void RegisterFig4Catalog(Engine* engine) {
  StockSeriesOptions dec;
  dec.span = Span::Of(1, kSpanEnd);
  dec.density = 0.9;
  dec.seed = 31;
  SEQ_CHECK(engine->RegisterBase("dec", *MakeStockSeries(dec)).ok());
  IntSeriesOptions marks;  // uniform [0, 999]: selection on it is exact
  marks.span = Span::Of(1, kSpanEnd);
  marks.density = 1.0;
  marks.min_value = 0;
  marks.max_value = 999;
  marks.seed = 32;
  marks.column = "mark";
  SEQ_CHECK(engine->RegisterBase("marks", *MakeIntSeries(marks)).ok());
}

/// select(marks, mark < threshold) composed with dec; threshold controls
/// the #1 sequence's selectivity: threshold/1000.
LogicalOpPtr Fig4Query(int64_t threshold) {
  return SeqRef("marks")
      .Select(Lt(Col("mark"), Lit(threshold)))
      .ComposeWith(SeqRef("dec"))
      .Project({"mark", "close"})
      .Build();
}

/// args: {selectivity_permille, forced strategy (-1 = optimizer's choice)}
void BM_JoinStrategy(benchmark::State& state) {
  int64_t permille = state.range(0);
  int force = static_cast<int>(state.range(1));
  OptimizerOptions options;
  options.cost_params.force_join_strategy = force;
  Engine engine(options);
  RegisterFig4Catalog(&engine);
  LogicalOpPtr query = Fig4Query(permille - 1);

  // Record which strategy actually runs.
  auto plan = engine.Plan(Query{query, Span::Of(1, kSpanEnd), {}});
  SEQ_CHECK(plan.ok());
  const PhysNode* node = plan->root.get();
  while (node->op != OpKind::kCompose) node = node->children[0].get();
  state.SetLabel(JoinStrategyName(node->join_strategy));

  AccessStats stats;
  for (auto _ : state) {
    stats.Reset();
    auto result = engine.Run(query, Span::Of(1, kSpanEnd), &stats);
    SEQ_CHECK(result.ok());
    benchmark::DoNotOptimize(result->records.size());
  }
  state.counters["sim_cost"] = stats.simulated_cost;
  state.counters["records_read"] =
      static_cast<double>(stats.stream_records);
  state.counters["probes"] = static_cast<double>(stats.probes);
}

void RegisterSweep() {
  for (int64_t permille : {1, 5, 20, 100, 300, 1000}) {
    for (int64_t force : {-1, 0, 1, 2}) {
      benchmark::RegisterBenchmark("BM_JoinStrategy", BM_JoinStrategy)
          ->Args({permille, force})
          ->ArgNames({"sel_permille", "force"});
    }
  }
}

}  // namespace
}  // namespace seq

int main(int argc, char** argv) {
  seq::RegisterSweep();
  return seq::bench::BenchMain("fig4_access_modes", argc, argv);
}
