// E1 — Fig. 1 / Example 1.1: the SEQ stream plan vs the relational
// nested-subquery plan for "volcano eruptions whose most recent earthquake
// was stronger than 7.0".
//
// Paper claim: the sequence query "can be processed with a single scan of
// the two sequences, and using very little memory", while the relational
// plan re-aggregates the whole Earthquake relation per Volcano tuple.
// Expect: SEQ ~O(V + E) records and flat per-record cost; SQL ~O(V x E)
// tuples and quadratic growth.

#include "bench/bench_util.h"
#include "relational/table.h"
#include "relational/volcano_sql.h"

namespace seq {
namespace {

void BM_SeqStreamPlan(benchmark::State& state) {
  Position span = state.range(0);
  Engine engine;
  bench::RegisterWeatherCatalog(&engine, span, /*dq=*/0.02, /*dv=*/0.004,
                                /*seed=*/7);
  LogicalOpPtr query = bench::VolcanoQuery();
  AccessStats stats;
  size_t answers = 0;
  for (auto _ : state) {
    stats.Reset();
    auto result = engine.Run(query, Span::Of(1, span), &stats);
    SEQ_CHECK(result.ok());
    answers = result->records.size();
    benchmark::DoNotOptimize(answers);
  }
  state.counters["records_read"] =
      static_cast<double>(stats.stream_records);
  state.counters["probes"] = static_cast<double>(stats.probes);
  state.counters["cache_records"] = static_cast<double>(stats.cache_stores);
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["sim_cost"] = stats.simulated_cost;
}
BENCHMARK(BM_SeqStreamPlan)->Arg(2000)->Arg(10000)->Arg(50000)->Arg(200000);

void BM_RelationalBaseline(benchmark::State& state) {
  Position span = state.range(0);
  Engine engine;
  bench::RegisterWeatherCatalog(&engine, span, /*dq=*/0.02, /*dv=*/0.004,
                                /*seed=*/7);
  auto vstore = engine.catalog().Lookup("volcanos");
  auto qstore = engine.catalog().Lookup("quakes");
  auto vtable = relational::TableFromSequence(*(*vstore)->store);
  auto qtable = relational::TableFromSequence(*(*qstore)->store);
  SEQ_CHECK(vtable.ok() && qtable.ok());
  relational::RelStats stats;
  size_t answers = 0;
  for (auto _ : state) {
    stats = relational::RelStats{};
    auto result =
        relational::VolcanoQuerySql(*vtable, *qtable, 7.0, &stats);
    SEQ_CHECK(result.ok());
    answers = result->size();
    benchmark::DoNotOptimize(answers);
  }
  state.counters["tuples_read"] =
      static_cast<double>(stats.tuples_scanned);
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_RelationalBaseline)->Arg(2000)->Arg(10000)->Arg(50000);

}  // namespace
}  // namespace seq

SEQ_BENCH_MAIN(fig1_motivating);
