// Morsel-driven parallel scaling. The acceptance chain scan -> select ->
// project -> trailing-window sum over ~108k records is driven serial and
// with 2/4/8 morsel workers through the per-query RunOptions API; rows and
// merged AccessStats must be identical at every width (checked once before
// timing), so the only thing that differs is wall time. The headline
// number is the speedup of 4 workers over serial on the materialized path.

#include <cstdint>

#include "bench/bench_util.h"
#include "obs/query_registry.h"

namespace seq {
namespace {

constexpr Position kSpanEnd = 120000;  // ~108k records at density 0.9

void RegisterSeries(Engine* engine) {
  IntSeriesOptions options;
  options.span = Span::Of(1, kSpanEnd);
  options.density = 0.9;
  options.seed = 81;
  SEQ_CHECK(engine->RegisterBase("s", *MakeIntSeries(options)).ok());
}

/// The acceptance-criteria chain: scan -> select -> project -> window agg.
Query ChainQuery() {
  Query q;
  q.graph = SeqRef("s")
                .Select(Gt(Col("value"), Lit(int64_t{50})))
                .Project({"value"})
                .Agg(AggFunc::kSum, "value", /*window=*/8, "sum")
                .Build();
  q.range = Span::Of(1, kSpanEnd);
  return q;
}

uint64_t FoldResult(const QueryResult& result) {
  uint64_t acc = 14695981039346656037ull;
  for (const PosRecord& pr : result.records) {
    acc = acc * 1099511628211ull + static_cast<uint64_t>(pr.pos);
    for (const Value& v : pr.rec) {
      acc = acc * 1099511628211ull +
            (v.type() == TypeId::kInt64 ? static_cast<uint64_t>(v.int64())
                                        : 1u);
    }
  }
  return acc;
}

/// One-time cross-check before timing: every worker width produces
/// byte-identical rows and merged integer counters equal to serial, and
/// the widths > 1 actually take the parallel path.
void CheckParity(Engine* engine, const Query& q) {
  RunOptions serial;
  serial.exec.use_batch = true;
  serial.exec.parallelism = 1;
  AccessStats serial_stats;
  serial.stats = &serial_stats;
  auto base = engine->Run(q, serial);
  SEQ_CHECK(base.ok());
  const uint64_t want = FoldResult(*base);

  for (int workers : {2, 4, 8}) {
    RunOptions par;
    par.exec.use_batch = true;
    par.exec.parallelism = workers;
    par.profile = true;
    AccessStats par_stats;
    par.stats = &par_stats;
    auto got = engine->Run(q, par);
    SEQ_CHECK(got.ok());
    SEQ_CHECK(FoldResult(*got) == want);
    SEQ_CHECK(par_stats.stream_records == serial_stats.stream_records);
    SEQ_CHECK(par_stats.stream_pages == serial_stats.stream_pages);
    SEQ_CHECK(par_stats.predicate_evals == serial_stats.predicate_evals);
    SEQ_CHECK(par_stats.agg_steps == serial_stats.agg_steps);
    SEQ_CHECK(par_stats.records_output == serial_stats.records_output);
    bool parallel = false;
    SEQ_CHECK(got->profile.has_value());
    for (const std::string& note : got->profile->notes) {
      if (note.find("parallel:") != std::string::npos) parallel = true;
    }
    SEQ_CHECK(parallel);
  }
}

void RunChain(benchmark::State& state, int workers,
              bool telemetry = true) {
  // The registry kill switch turns off per-query registration and the
  // executor's live-progress publishing; comparing the TelemetryOff
  // variant against the plain 4-worker run bounds the overhead of the
  // always-on layer (docs/observability.md budgets it at a few percent).
  QueryRegistry::Global().set_enabled(telemetry);
  Engine engine;
  RegisterSeries(&engine);
  const Query q = ChainQuery();
  CheckParity(&engine, q);

  auto prepared = engine.Prepare(q);
  SEQ_CHECK(prepared.ok());
  RunOptions opts;
  opts.exec.use_batch = true;
  opts.exec.parallelism = workers;

  size_t rows = 0;
  for (auto _ : state) {
    auto result = prepared->Run(opts);
    SEQ_CHECK(result.ok());
    rows = result->records.size();
    benchmark::DoNotOptimize(result->records.data());
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["workers"] = static_cast<double>(workers);
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(rows), benchmark::Counter::kIsIterationInvariantRate);
  QueryRegistry::Global().set_enabled(true);
}

// Real time is the headline (that is what parallelism buys); process CPU
// time is measured too so the worker threads' cycles are visible — without
// MeasureProcessCPUTime the CPU column would count only the coordinating
// thread, which mostly waits at the morsel barrier.
void BM_MorselChain_Serial(benchmark::State& state) { RunChain(state, 1); }
BENCHMARK(BM_MorselChain_Serial)->MeasureProcessCPUTime()->UseRealTime();

void BM_MorselChain_2Workers(benchmark::State& state) { RunChain(state, 2); }
BENCHMARK(BM_MorselChain_2Workers)->MeasureProcessCPUTime()->UseRealTime();

void BM_MorselChain_4Workers(benchmark::State& state) { RunChain(state, 4); }
BENCHMARK(BM_MorselChain_4Workers)->MeasureProcessCPUTime()->UseRealTime();

void BM_MorselChain_8Workers(benchmark::State& state) { RunChain(state, 8); }
BENCHMARK(BM_MorselChain_8Workers)->MeasureProcessCPUTime()->UseRealTime();

// Telemetry-overhead baseline: the same 4-worker chain with the query
// registry disabled. The delta against BM_MorselChain_4Workers is the
// per-query cost of the registry layer (registration, text normalization,
// live-progress atomics); the process-wide morsel counters stay on in
// both, as they do in production.
void BM_MorselChain_4Workers_TelemetryOff(benchmark::State& state) {
  RunChain(state, 4, /*telemetry=*/false);
}
BENCHMARK(BM_MorselChain_4Workers_TelemetryOff)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
}  // namespace seq

SEQ_BENCH_MAIN(morsel);
