// E12 — §5.3: "materialization of derived sequences ... is definitely an
// option to consider". A moderately expensive derived sequence (20-day
// moving average over a long price series) serves k downstream queries:
// recomputing the aggregate per query vs. materializing it once and
// querying the materialization.
//
// Expect: recompute cost ~k × (scan + aggregate); materialized cost ~
// one aggregate pass + k cheap scans — the crossover is at small k.

#include "bench/bench_util.h"

namespace seq {
namespace {

constexpr Position kSpanEnd = 100000;
constexpr int kQueries = 8;

void Setup(Engine* engine) {
  StockSeriesOptions s;
  s.span = Span::Of(1, kSpanEnd);
  s.density = 0.95;
  s.seed = 121;
  SEQ_CHECK(engine->RegisterBase("prices", *MakeStockSeries(s)).ok());
}

LogicalOpPtr DerivedGraph() {
  return SeqRef("prices").Agg(AggFunc::kAvg, "close", 20, "ma20").Build();
}

/// A family of downstream queries over the derived sequence.
LogicalOpPtr Downstream(const LogicalOpPtr& source, int k) {
  return LogicalOp::Select(
      source->Clone(),
      Gt(Col("ma20"), Lit(90.0 + static_cast<double>(k))));
}

void BM_RecomputePerQuery(benchmark::State& state) {
  Engine engine;
  Setup(&engine);
  LogicalOpPtr derived = DerivedGraph();
  AccessStats stats;
  for (auto _ : state) {
    stats.Reset();
    for (int k = 0; k < kQueries; ++k) {
      auto result = engine.Run(Downstream(derived, k),
                               Span::Of(1, kSpanEnd), &stats);
      SEQ_CHECK(result.ok());
      benchmark::DoNotOptimize(result->records.size());
    }
  }
  state.counters["sim_cost_total"] = stats.simulated_cost;
  state.counters["records_read"] = static_cast<double>(stats.stream_records);
}
BENCHMARK(BM_RecomputePerQuery);

void BM_MaterializeOnce(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    Setup(&engine);
    state.ResumeTiming();
    AccessStats stats;
    SEQ_CHECK(engine.Materialize("ma", DerivedGraph()).ok());
    for (int k = 0; k < kQueries; ++k) {
      auto result = engine.Run(
          LogicalOp::Select(LogicalOp::BaseRef("ma"),
                            Gt(Col("ma20"), Lit(90.0 + k))),
          Span::Of(1, kSpanEnd), &stats);
      SEQ_CHECK(result.ok());
      benchmark::DoNotOptimize(result->records.size());
    }
    state.counters["sim_cost_total"] = stats.simulated_cost;
    state.counters["records_read"] =
        static_cast<double>(stats.stream_records);
  }
}
BENCHMARK(BM_MaterializeOnce);

}  // namespace
}  // namespace seq

SEQ_BENCH_MAIN(materialize);
