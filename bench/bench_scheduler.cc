// Scheduler under concurrent load: 32 client threads each run a mixed
// query (filter-only, filter+project, or windowed aggregate) at
// parallelism 4 through the engine, so every query passes admission and
// executes its morsels on the process-wide pool. Two configurations are
// compared at identical load:
//
//   SharedPool      — the real configuration: hardware-concurrency
//                     workers, default admission limit. Total thread
//                     count is bounded; excess queries wait for a slot.
//   PerQueryPools   — the pre-scheduler behavior emulated on the same
//                     code path: 32*4 workers and unlimited admission,
//                     i.e. every query effectively gets its own 4 threads
//                     the way the per-query ThreadPool did. (Emulated,
//                     not the old code — the old executor is gone.)
//
// Headline numbers: per-query p99 latency and completed queries/sec at
// equal offered load. Acceptance (ISSUE 8): SharedPool must be no worse
// on p99 than the oversubscribed baseline.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "exec/scheduler.h"

namespace seq {
namespace {

constexpr Position kSpanEnd = 60000;  // ~54k records at density 0.9
constexpr int kClients = 32;
constexpr int kShareCap = 4;

void RegisterSeries(Engine* engine) {
  IntSeriesOptions options;
  options.span = Span::Of(1, kSpanEnd);
  options.density = 0.9;
  options.seed = 83;
  SEQ_CHECK(engine->RegisterBase("s", *MakeIntSeries(options)).ok());
}

/// The mixed workload: three query shapes of different weight, assigned
/// round-robin to client threads.
Query MixedQuery(int client) {
  Query q;
  switch (client % 3) {
    case 0:  // cheap filter
      q.graph = SeqRef("s").Select(Gt(Col("value"), Lit(int64_t{900}))).Build();
      break;
    case 1:  // filter + project
      q.graph = SeqRef("s")
                    .Select(Gt(Col("value"), Lit(int64_t{200})))
                    .Project({"value"})
                    .Build();
      break;
    default:  // windowed aggregate (the heavy shape)
      q.graph = SeqRef("s")
                    .Select(Gt(Col("value"), Lit(int64_t{50})))
                    .Agg(AggFunc::kSum, "value", /*window=*/8, "sum")
                    .Build();
      break;
  }
  q.range = Span::Of(1, kSpanEnd);
  return q;
}

/// One load burst: kClients threads each run their query once; returns
/// the per-query wall latencies in microseconds.
std::vector<double> RunBurst(Engine* engine) {
  std::vector<double> latencies(kClients, 0.0);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([engine, c, &latencies] {
      RunOptions opts;
      opts.exec.use_batch = true;
      opts.exec.parallelism = kShareCap;
      opts.exec.morsel_size = 512;
      const Query q = MixedQuery(c);
      auto start = std::chrono::steady_clock::now();
      auto result = engine->Run(q, opts);
      auto end = std::chrono::steady_clock::now();
      SEQ_CHECK(result.ok());
      benchmark::DoNotOptimize(result->records.data());
      latencies[c] =
          std::chrono::duration<double, std::micro>(end - start).count();
    });
  }
  for (auto& t : clients) t.join();
  return latencies;
}

double Percentile(std::vector<double> v, double p) {
  SEQ_CHECK(!v.empty());
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

/// Runs the 32-client burst under the given scheduler configuration,
/// restoring the previous configuration afterwards (the Global scheduler
/// is process state shared with everything else in this binary).
void RunLoad(benchmark::State& state, int workers, int max_running) {
  QueryScheduler& sched = QueryScheduler::Global();
  const int saved_workers = sched.workers();
  const int saved_max_running = sched.max_running();
  sched.SetWorkers(workers);
  sched.SetMaxRunning(max_running);

  Engine engine;
  RegisterSeries(&engine);

  std::vector<double> all_latencies;
  int bursts = 0;
  for (auto _ : state) {
    std::vector<double> lat = RunBurst(&engine);
    all_latencies.insert(all_latencies.end(), lat.begin(), lat.end());
    ++bursts;
  }

  state.counters["clients"] = kClients;
  state.counters["workers"] = static_cast<double>(workers);
  state.counters["p50_ms"] = Percentile(all_latencies, 0.50) / 1000.0;
  state.counters["p99_ms"] = Percentile(all_latencies, 0.99) / 1000.0;
  // Completed queries per second of wall time: each iteration is one
  // 32-query burst, so the rate counter scales the burst size by the
  // measured iteration time.
  state.counters["queries_per_sec"] = benchmark::Counter(
      static_cast<double>(kClients),
      benchmark::Counter::kIsIterationInvariantRate);

  sched.SetWorkers(saved_workers);
  sched.SetMaxRunning(saved_max_running);
}

// The real configuration: a fixed pool at hardware concurrency with the
// default admission limit. 32 queries x share cap 4 offer 128 ways of
// parallelism to a pool that only ever runs `workers` of them.
void BM_Scheduler_SharedPool(benchmark::State& state) {
  RunLoad(state, DefaultSchedWorkers(),
          std::max(2 * DefaultSchedWorkers(), 8));
}
BENCHMARK(BM_Scheduler_SharedPool)->MeasureProcessCPUTime()->UseRealTime();

// The pre-scheduler behavior, emulated: enough workers that every query
// gets its full share simultaneously (32 * 4 = 128 threads' worth) and no
// admission bound — the thread explosion the per-query ThreadPool had.
void BM_Scheduler_PerQueryPools(benchmark::State& state) {
  RunLoad(state, kClients * kShareCap, /*max_running=*/0);
}
BENCHMARK(BM_Scheduler_PerQueryPools)->MeasureProcessCPUTime()->UseRealTime();

}  // namespace
}  // namespace seq

SEQ_BENCH_MAIN(scheduler);
