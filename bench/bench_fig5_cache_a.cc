// E4 — Fig. 5.A / Cache-Strategy-A: a moving Sum over the previous W
// positions of IBM closes, evaluated with the scope-sized operator cache
// vs the naive plan that re-probes the whole window per output position.
//
// Paper claim: with the cache, "the Sum operator at every position needs
// to access the input sequence only at that position" — expect cached
// input accesses to stay flat as W grows while naive probes scale ~W.

#include "bench/bench_util.h"

namespace seq {
namespace {

constexpr Position kSpanEnd = 50000;

void RunCacheA(benchmark::State& state, bool disable_cache) {
  int64_t window = state.range(0);
  OptimizerOptions options;
  options.cost_params.disable_window_cache = disable_cache;
  Engine engine(options);
  StockSeriesOptions ibm;
  ibm.span = Span::Of(1, kSpanEnd);
  ibm.density = 0.95;
  ibm.seed = 51;
  SEQ_CHECK(engine.RegisterBase("ibm", *MakeStockSeries(ibm)).ok());
  auto query = SeqRef("ibm").Agg(AggFunc::kSum, "close", window).Build();
  AccessStats stats;
  for (auto _ : state) {
    stats.Reset();
    auto result = engine.Run(query, Span::Of(1, kSpanEnd), &stats);
    SEQ_CHECK(result.ok());
    benchmark::DoNotOptimize(result->records.size());
  }
  state.counters["input_accesses"] =
      static_cast<double>(stats.stream_records + stats.probes);
  state.counters["probes"] = static_cast<double>(stats.probes);
  state.counters["cache_stores"] = static_cast<double>(stats.cache_stores);
  state.counters["sim_cost"] = stats.simulated_cost;
}

void BM_CacheStrategyA(benchmark::State& state) {
  RunCacheA(state, /*disable_cache=*/false);
}
BENCHMARK(BM_CacheStrategyA)->Arg(2)->Arg(8)->Arg(16)->Arg(64);

void BM_NaiveWindowProbing(benchmark::State& state) {
  RunCacheA(state, /*disable_cache=*/true);
}
BENCHMARK(BM_NaiveWindowProbing)->Arg(2)->Arg(8)->Arg(16)->Arg(64);

}  // namespace
}  // namespace seq

SEQ_BENCH_MAIN(fig5_cache_a);
