// Batch vs tuple execution. The same physical plan is driven through the
// tuple-at-a-time Volcano loop and the batch-at-a-time path (RecordBatch +
// flattened expression eval + allocation-free record movement); both must
// produce identical rows and identical simulated-access counters, so the
// only thing that differs is real wall time. Workloads: the acceptance
// chain scan -> select -> project -> trailing-window sum over >= 100k
// records, and the Fig. 2 scope-chain query.
//
// The headline benchmarks consume the answer through the streaming sink
// (PreparedQuery::Run with RunOptions::sink) — the consumption mode the batch path's
// allocation-free record movement is built for. The *_Materialized
// variants time full QueryResult materialization, where both paths pay
// one record allocation per answer row in the result vector itself.

#include <cstdint>

#include "bench/bench_util.h"

namespace seq {
namespace {

constexpr Position kSpanEnd = 120000;  // ~108k records at density 0.9

void RegisterSeries(Engine* engine) {
  IntSeriesOptions options;
  options.span = Span::Of(1, kSpanEnd);
  options.density = 0.9;
  options.seed = 81;
  SEQ_CHECK(engine->RegisterBase("s", *MakeIntSeries(options)).ok());
}

/// The acceptance-criteria chain: scan -> select -> project -> window agg.
LogicalOpPtr SelectProjectAggChain() {
  return SeqRef("s")
      .Select(Gt(Col("value"), Lit(int64_t{50})))
      .Project({"value"})
      .Agg(AggFunc::kSum, "value", /*window=*/8, "sum")
      .Build();
}

/// The Fig. 2 workload: alternating 3-window sums and -2 offsets.
LogicalOpPtr Fig2Chain(int length) {
  QueryBuilder builder = SeqRef("s");
  for (int i = 0; i < length; ++i) {
    if (i % 2 == 0) {
      builder = builder.Agg(AggFunc::kSum, i == 0 ? "value" : "sum",
                            /*window=*/3, "sum");
    } else {
      builder = builder.Offset(-2);
    }
  }
  return builder.Build();
}

/// Order-sensitive fold over an answer row — the "consume the result"
/// stand-in for the streaming benchmarks. Covers the value types the
/// workloads emit.
void FoldRow(Position pos, const Record& rec, uint64_t* acc) {
  uint64_t h = *acc * 1099511628211ull + static_cast<uint64_t>(pos);
  for (const Value& v : rec) {
    switch (v.type()) {
      case TypeId::kInt64:
        h = h * 1099511628211ull + static_cast<uint64_t>(v.int64());
        break;
      case TypeId::kDouble: {
        double d = v.AsDouble();
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        __builtin_memcpy(&bits, &d, sizeof(bits));
        h = h * 1099511628211ull + bits;
        break;
      }
      default:
        h = h * 1099511628211ull + 1;
        break;
    }
  }
  *acc = h;
}

uint64_t FoldResult(const QueryResult& result) {
  uint64_t acc = 14695981039346656037ull;
  for (const PosRecord& pr : result.records) FoldRow(pr.pos, pr.rec, &acc);
  return acc;
}

/// One-time cross-check that the two paths agree on rows and counters —
/// materialized AND streamed — before timing them (Release benches run
/// without assertions otherwise).
void CheckParity(Engine* engine, const LogicalOpPtr& query) {
  RunOptions tuple_opts;
  tuple_opts.exec.use_batch = false;
  AccessStats tuple_stats;
  tuple_opts.stats = &tuple_stats;
  auto tuple = engine->Run(query, Span::Of(1, kSpanEnd), tuple_opts);
  SEQ_CHECK(tuple.ok());
  RunOptions batch_opts;
  batch_opts.exec.use_batch = true;
  AccessStats batch_stats;
  batch_opts.stats = &batch_stats;
  auto batch = engine->Run(query, Span::Of(1, kSpanEnd), batch_opts);
  SEQ_CHECK(batch.ok());
  SEQ_CHECK(tuple->records.size() == batch->records.size());
  for (size_t i = 0; i < tuple->records.size(); ++i) {
    SEQ_CHECK(tuple->records[i].pos == batch->records[i].pos);
    SEQ_CHECK(tuple->records[i].rec == batch->records[i].rec);
  }
  SEQ_CHECK(tuple_stats.stream_records == batch_stats.stream_records);
  SEQ_CHECK(tuple_stats.predicate_evals == batch_stats.predicate_evals);
  SEQ_CHECK(tuple_stats.agg_steps == batch_stats.agg_steps);
  SEQ_CHECK(tuple_stats.records_output == batch_stats.records_output);

  // The streaming sink must visit exactly the materialized rows in order,
  // in both driving modes.
  const uint64_t want = FoldResult(*tuple);
  Query q;
  q.graph = query;
  q.range = Span::Of(1, kSpanEnd);
  auto prepared = engine->Prepare(q);
  SEQ_CHECK(prepared.ok());
  for (bool use_batch : {false, true}) {
    RunOptions opts;
    opts.exec.use_batch = use_batch;
    uint64_t acc = 14695981039346656037ull;
    opts.sink = [&acc](Position p, const Record& rec) {
      FoldRow(p, rec, &acc);
    };
    SEQ_CHECK(prepared->Run(opts).ok());
    SEQ_CHECK(acc == want);
  }
}

enum class Consume { kVisit, kMaterialize };

/// Plans once, then times repeated execution with the requested driving
/// and consumption modes. Stats stay off during timing so only real work
/// is measured.
void RunPlan(benchmark::State& state, const LogicalOpPtr& query,
             bool use_batch, Consume consume) {
  Engine engine;
  RegisterSeries(&engine);
  CheckParity(&engine, query);

  Query q;
  q.graph = query;
  q.range = Span::Of(1, kSpanEnd);
  auto prepared = engine.Prepare(q);
  SEQ_CHECK(prepared.ok());
  RunOptions opts;
  opts.exec.use_batch = use_batch;

  size_t rows = 0;
  if (consume == Consume::kVisit) {
    uint64_t first_acc = 0;
    bool have_first = false;
    uint64_t acc = 0;
    size_t n = 0;
    opts.sink = [&](Position p, const Record& rec) {
      FoldRow(p, rec, &acc);
      ++n;
    };
    for (auto _ : state) {
      acc = 14695981039346656037ull;
      n = 0;
      SEQ_CHECK(prepared->Run(opts).ok());
      rows = n;
      benchmark::DoNotOptimize(acc);
      if (!have_first) {
        first_acc = acc;
        have_first = true;
      }
      SEQ_CHECK(acc == first_acc);
    }
  } else {
    for (auto _ : state) {
      auto result = prepared->Run(opts);
      SEQ_CHECK(result.ok());
      rows = result->records.size();
      benchmark::DoNotOptimize(result->records.data());
    }
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(rows), benchmark::Counter::kIsIterationInvariantRate);
}

void BM_SelectProjectAgg_Tuple(benchmark::State& state) {
  RunPlan(state, SelectProjectAggChain(), /*use_batch=*/false,
          Consume::kVisit);
}
BENCHMARK(BM_SelectProjectAgg_Tuple);

void BM_SelectProjectAgg_Batch(benchmark::State& state) {
  RunPlan(state, SelectProjectAggChain(), /*use_batch=*/true,
          Consume::kVisit);
}
BENCHMARK(BM_SelectProjectAgg_Batch);

void BM_SelectProjectAgg_Tuple_Materialized(benchmark::State& state) {
  RunPlan(state, SelectProjectAggChain(), /*use_batch=*/false,
          Consume::kMaterialize);
}
BENCHMARK(BM_SelectProjectAgg_Tuple_Materialized);

void BM_SelectProjectAgg_Batch_Materialized(benchmark::State& state) {
  RunPlan(state, SelectProjectAggChain(), /*use_batch=*/true,
          Consume::kMaterialize);
}
BENCHMARK(BM_SelectProjectAgg_Batch_Materialized);

void BM_Fig2Chain_Tuple(benchmark::State& state) {
  RunPlan(state, Fig2Chain(static_cast<int>(state.range(0))),
          /*use_batch=*/false, Consume::kVisit);
}
BENCHMARK(BM_Fig2Chain_Tuple)->Arg(5)->Arg(9);

void BM_Fig2Chain_Batch(benchmark::State& state) {
  RunPlan(state, Fig2Chain(static_cast<int>(state.range(0))),
          /*use_batch=*/true, Consume::kVisit);
}
BENCHMARK(BM_Fig2Chain_Batch)->Arg(5)->Arg(9);

}  // namespace
}  // namespace seq

SEQ_BENCH_MAIN(batch_vs_tuple);
