// E9 — §3.1 transformations: pushing selections/projections/offsets down
// the graph. A selective filter written *above* a three-way compose should
// be routed onto the referenced inputs by the rewriter, shrinking the join
// work; with rewrites disabled the join composes everything first and
// filters at the top.
//
// Expect: with rewrites, predicate evaluations and join compute drop
// roughly by the selectivity factor; answers identical.

#include "bench/bench_util.h"

namespace seq {
namespace {

constexpr Position kSpanEnd = 100000;

void SetupCatalog(Engine* engine) {
  for (int i = 0; i < 3; ++i) {
    IntSeriesOptions options;
    options.span = Span::Of(1, kSpanEnd);
    options.density = 0.8;
    options.seed = 90 + i;
    options.min_value = 0;
    options.max_value = 999;
    options.column = "c" + std::to_string(i);
    SEQ_CHECK(engine
                  ->RegisterBase("s" + std::to_string(i),
                                 *MakeIntSeries(options))
                  .ok());
  }
}

/// Filter over a 3-way compose; every conjunct is one-sided.
LogicalOpPtr RewriteQuery() {
  return SeqRef("s0")
      .ComposeWith(SeqRef("s1"))
      .ComposeWith(SeqRef("s2"))
      .Select(And(Lt(Col("c0"), Lit(int64_t{99})),
                  And(Lt(Col("c1"), Lit(int64_t{499})),
                      Gt(Col("c2"), Lit(int64_t{199})))))
      .Project({"c0", "c1", "c2"})
      .Build();
}

void RunRewrites(benchmark::State& state, bool rewrites) {
  OptimizerOptions options;
  options.enable_rewrites = rewrites;
  Engine engine(options);
  SetupCatalog(&engine);
  LogicalOpPtr query = RewriteQuery();
  AccessStats stats;
  size_t answers = 0;
  for (auto _ : state) {
    stats.Reset();
    auto result = engine.Run(query, Span::Of(1, kSpanEnd), &stats);
    SEQ_CHECK(result.ok());
    answers = result->records.size();
    benchmark::DoNotOptimize(answers);
  }
  state.counters["predicate_evals"] =
      static_cast<double>(stats.predicate_evals);
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["sim_cost"] = stats.simulated_cost;
}

void BM_WithRewrites(benchmark::State& state) {
  RunRewrites(state, true);
}
BENCHMARK(BM_WithRewrites);

void BM_WithoutRewrites(benchmark::State& state) {
  RunRewrites(state, false);
}
BENCHMARK(BM_WithoutRewrites);

}  // namespace
}  // namespace seq

SEQ_BENCH_MAIN(rewrites);
