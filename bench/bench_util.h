#ifndef SEQ_BENCH_BENCH_UTIL_H_
#define SEQ_BENCH_BENCH_UTIL_H_

// Shared helpers for the benchmark harness. Every bench binary regenerates
// one of the paper's figures/tables; EXPERIMENTS.md maps the outputs back
// to the paper's claims.

#include <benchmark/benchmark.h>

#include "core/engine.h"
#include "workload/generators.h"

namespace seq::bench {

/// Registers the Example 1.1 catalog: earthquakes (density dq) and volcano
/// eruptions (density dv) over [1, span_end].
inline void RegisterWeatherCatalog(Engine* engine, Position span_end,
                                   double dq, double dv, uint64_t seed) {
  EventSeriesOptions eq;
  eq.span = Span::Of(1, span_end);
  eq.density = dq;
  eq.seed = seed;
  auto quakes = MakeEarthquakes(eq);
  SEQ_CHECK(quakes.ok());
  EventSeriesOptions vo;
  vo.span = Span::Of(1, span_end);
  vo.density = dv;
  vo.seed = seed + 1;
  auto volcanos = MakeVolcanos(vo);
  SEQ_CHECK(volcanos.ok());
  SEQ_CHECK(engine->RegisterBase("quakes", *quakes).ok());
  SEQ_CHECK(engine->RegisterBase("volcanos", *volcanos).ok());
}

/// The Example 1.1 / Fig. 1 sequence query.
inline LogicalOpPtr VolcanoQuery() {
  return SeqRef("volcanos")
      .ComposeWith(SeqRef("quakes").Prev())
      .Select(Gt(Col("strength"), Lit(7.0)))
      .Project({"name"})
      .Build();
}

}  // namespace seq::bench

#endif  // SEQ_BENCH_BENCH_UTIL_H_
