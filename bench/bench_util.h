#ifndef SEQ_BENCH_BENCH_UTIL_H_
#define SEQ_BENCH_BENCH_UTIL_H_

// Shared helpers for the benchmark harness. Every bench binary regenerates
// one of the paper's figures/tables; EXPERIMENTS.md maps the outputs back
// to the paper's claims.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/engine.h"
#include "workload/generators.h"

namespace seq::bench {

/// Google-benchmark main loop with a JSON file reporter added: results are
/// also written to BENCH_<name>.json in the working directory, so sweep
/// scripts can consume them without scraping console output. An explicit
/// --benchmark_out on the command line wins.
inline int BenchMain(const char* name, int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool user_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) {
      user_out = true;
    }
  }
  std::string out_flag = std::string("--benchmark_out=BENCH_") + name +
                         ".json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!user_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

/// Registers the Example 1.1 catalog: earthquakes (density dq) and volcano
/// eruptions (density dv) over [1, span_end].
inline void RegisterWeatherCatalog(Engine* engine, Position span_end,
                                   double dq, double dv, uint64_t seed) {
  EventSeriesOptions eq;
  eq.span = Span::Of(1, span_end);
  eq.density = dq;
  eq.seed = seed;
  auto quakes = MakeEarthquakes(eq);
  SEQ_CHECK(quakes.ok());
  EventSeriesOptions vo;
  vo.span = Span::Of(1, span_end);
  vo.density = dv;
  vo.seed = seed + 1;
  auto volcanos = MakeVolcanos(vo);
  SEQ_CHECK(volcanos.ok());
  SEQ_CHECK(engine->RegisterBase("quakes", *quakes).ok());
  SEQ_CHECK(engine->RegisterBase("volcanos", *volcanos).ok());
}

/// The Example 1.1 / Fig. 1 sequence query.
inline LogicalOpPtr VolcanoQuery() {
  return SeqRef("volcanos")
      .ComposeWith(SeqRef("quakes").Prev())
      .Select(Gt(Col("strength"), Lit(7.0)))
      .Project({"name"})
      .Build();
}

}  // namespace seq::bench

/// Drop-in replacement for BENCHMARK_MAIN() that also writes
/// BENCH_<name>.json (see seq::bench::BenchMain).
#define SEQ_BENCH_MAIN(name)                         \
  int main(int argc, char** argv) {                  \
    return seq::bench::BenchMain(#name, argc, argv); \
  }

#endif  // SEQ_BENCH_BENCH_UTIL_H_
