// Probed-mode batch vs tuple driving. The optimizer is forced to hand the
// executor a probed root; the executor then either probes every position
// one Probe() call at a time or chunks the positions through ProbeBatch.
// Both paths produce identical rows and identical simulated-access
// counters, so the only thing that differs is real wall time: the batch
// path amortizes virtual dispatch across the operator chain, evaluates
// predicates on flat batch rows, and bulk-charges AccessStats.
//
// Workloads: a Cache-Strategy-B value-offset chain under pass-through
// probed select/project (the incremental probed form added with the
// unified operator layer), a naive trailing-window probe, and the Fig. 6
// point-position template over a sparse position list.

#include <cstdint>
#include <numeric>

#include "bench/bench_util.h"

namespace seq {
namespace {

constexpr Position kSpanEnd = 120000;  // ~108k records at density 0.9

void RegisterSeries(Engine* engine) {
  IntSeriesOptions options;
  options.span = Span::Of(1, kSpanEnd);
  options.density = 0.9;
  options.seed = 83;
  SEQ_CHECK(engine->RegisterBase("s", *MakeIntSeries(options)).ok());
  engine->options().force_root_mode = AccessMode::kProbed;
}

/// The acceptance chain: an incremental Cache-B value offset probed
/// through pass-through select and project.
LogicalOpPtr OffsetChain() {
  return SeqRef("s")
      .ValueOffset(-2)
      .Select(Gt(Col("value"), Lit(int64_t{50})))
      .Project({"value"})
      .Build();
}

/// Naive trailing-window probing: W child probes per probed position.
LogicalOpPtr WindowChain() {
  return SeqRef("s").Agg(AggFunc::kSum, "value", /*window=*/8, "sum").Build();
}

/// One-time cross-check that tuple Probe and ProbeBatch driving agree on
/// rows and counters before timing (Release benches run without
/// assertions otherwise). Also pins the plan shape the acceptance
/// criterion is about: the offset chain must actually run the probed
/// incremental cache-B algorithm.
void CheckParity(Engine* engine, const Query& q, bool expect_cache_b) {
  if (expect_cache_b) {
    auto plan = engine->Plan(q);
    SEQ_CHECK(plan.ok());
    SEQ_CHECK(plan->Explain().find("ValueOffset [probed, cache-B]") !=
              std::string::npos);
  }
  RunOptions tuple_opts;
  tuple_opts.exec.use_batch = false;
  AccessStats tuple_stats;
  tuple_opts.stats = &tuple_stats;
  auto tuple = engine->Run(q, tuple_opts);
  SEQ_CHECK(tuple.ok());
  RunOptions batch_opts;
  batch_opts.exec.use_batch = true;
  AccessStats batch_stats;
  batch_opts.stats = &batch_stats;
  auto batch = engine->Run(q, batch_opts);
  SEQ_CHECK(batch.ok());
  SEQ_CHECK(tuple->records.size() == batch->records.size());
  for (size_t i = 0; i < tuple->records.size(); ++i) {
    SEQ_CHECK(tuple->records[i].pos == batch->records[i].pos);
    SEQ_CHECK(tuple->records[i].rec == batch->records[i].rec);
  }
  SEQ_CHECK(tuple_stats.probes == batch_stats.probes);
  SEQ_CHECK(tuple_stats.stream_records == batch_stats.stream_records);
  SEQ_CHECK(tuple_stats.cache_stores == batch_stats.cache_stores);
  SEQ_CHECK(tuple_stats.cache_hits == batch_stats.cache_hits);
  SEQ_CHECK(tuple_stats.predicate_evals == batch_stats.predicate_evals);
  SEQ_CHECK(tuple_stats.agg_steps == batch_stats.agg_steps);
  SEQ_CHECK(tuple_stats.records_output == batch_stats.records_output);
}

/// Plans once, then times repeated probed execution through the
/// streaming sink. Stats stay off during timing so only real work is
/// measured.
void RunPlan(benchmark::State& state, const Query& q, bool use_batch,
             bool expect_cache_b) {
  Engine engine;
  RegisterSeries(&engine);
  CheckParity(&engine, q, expect_cache_b);

  auto prepared = engine.Prepare(q);
  SEQ_CHECK(prepared.ok());
  RunOptions opts;
  opts.exec.use_batch = use_batch;

  size_t rows = 0;
  int64_t first_acc = 0;
  bool have_first = false;
  int64_t acc = 0;
  size_t n = 0;
  opts.sink = [&](Position p, const Record& rec) {
    acc += p;
    if (!rec.empty() && rec[0].type() == TypeId::kInt64) {
      acc += rec[0].int64();
    }
    ++n;
  };
  for (auto _ : state) {
    acc = 0;
    n = 0;
    SEQ_CHECK(prepared->Run(opts).ok());
    rows = n;
    benchmark::DoNotOptimize(acc);
    if (!have_first) {
      first_acc = acc;
      have_first = true;
    }
    SEQ_CHECK(acc == first_acc);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(rows), benchmark::Counter::kIsIterationInvariantRate);
}

Query RangeQuery(LogicalOpPtr graph) {
  Query q;
  q.graph = std::move(graph);
  q.range = Span::Of(1, kSpanEnd);
  return q;
}

/// The Fig. 6 template flavor: an explicit sparse ascending position list.
Query PointQuery(LogicalOpPtr graph) {
  Query q;
  q.graph = std::move(graph);
  for (Position p = 5; p <= kSpanEnd; p += 7) q.positions.push_back(p);
  return q;
}

void BM_ProbedOffsetChain_Tuple(benchmark::State& state) {
  RunPlan(state, RangeQuery(OffsetChain()), /*use_batch=*/false,
          /*expect_cache_b=*/true);
}
BENCHMARK(BM_ProbedOffsetChain_Tuple);

void BM_ProbedOffsetChain_Batch(benchmark::State& state) {
  RunPlan(state, RangeQuery(OffsetChain()), /*use_batch=*/true,
          /*expect_cache_b=*/true);
}
BENCHMARK(BM_ProbedOffsetChain_Batch);

void BM_ProbedWindow_Tuple(benchmark::State& state) {
  RunPlan(state, RangeQuery(WindowChain()), /*use_batch=*/false,
          /*expect_cache_b=*/false);
}
BENCHMARK(BM_ProbedWindow_Tuple);

void BM_ProbedWindow_Batch(benchmark::State& state) {
  RunPlan(state, RangeQuery(WindowChain()), /*use_batch=*/true,
          /*expect_cache_b=*/false);
}
BENCHMARK(BM_ProbedWindow_Batch);

void BM_ProbedPointOffsets_Tuple(benchmark::State& state) {
  RunPlan(state, PointQuery(OffsetChain()), /*use_batch=*/false,
          /*expect_cache_b=*/true);
}
BENCHMARK(BM_ProbedPointOffsets_Tuple);

void BM_ProbedPointOffsets_Batch(benchmark::State& state) {
  RunPlan(state, PointQuery(OffsetChain()), /*use_batch=*/true,
          /*expect_cache_b=*/true);
}
BENCHMARK(BM_ProbedPointOffsets_Batch);

}  // namespace
}  // namespace seq

SEQ_BENCH_MAIN(probe_batch);
