// Wire-protocol round-trip overhead: the same Session calls issued
// in-process (LocalSession on the server's engine) and over a loopback
// socket (RemoteSession against an in-process seqserved). The delta is
// what the network layer costs — framing, row encode/decode, two thread
// hops — as a function of result size. Small results measure the
// per-request floor (one request frame, a handful of reply frames);
// large results measure streaming row throughput. The Telemetry pair is
// the pure protocol floor: a one-string round trip with no query work.

#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "core/session.h"
#include "net/remote_session.h"
#include "net/server.h"
#include "parser/parser.h"

namespace seq {
namespace {

constexpr Position kSpanEnd = 10000;

/// One server for the whole binary: a 10k-position stock series and the
/// engine view `v` every benchmark queries through its bare name.
struct NetBenchEnv {
  SeqServer server;
  int port = 0;

  static NetBenchEnv& Get() {
    static NetBenchEnv env;
    return env;
  }

  NetBenchEnv() {
    StockSeriesOptions options;
    options.span = Span::Of(1, kSpanEnd);
    options.density = 1.0;
    options.seed = 17;
    auto series = MakeStockSeries(options);
    SEQ_CHECK(series.ok());
    SEQ_CHECK(server.engine().RegisterBase("ibm", *series).ok());
    auto graph = ParseSequinQuery("v = select(ibm, close > 0.0);");
    SEQ_CHECK(graph.ok());
    SEQ_CHECK(server.engine().DefineView("v", *graph).ok());
    auto port_or = server.Start("127.0.0.1", 0);
    SEQ_CHECK(port_or.ok());
    port = *port_or;
  }
};

std::unique_ptr<Session> MakeSession(bool remote) {
  NetBenchEnv& env = NetBenchEnv::Get();
  if (remote) {
    auto session = RemoteSession::Connect("127.0.0.1", env.port);
    SEQ_CHECK(session.ok());
    return std::move(*session);
  }
  return std::make_unique<LocalSession>(&env.server.engine(),
                                        &env.server.gate());
}

/// Execute the view over a range of `state.range(0)` positions — the
/// range, not the data, scales the result, so local and remote answer
/// the identical query.
void RunExecute(benchmark::State& state, bool remote) {
  std::unique_ptr<Session> session = MakeSession(remote);
  session->range() = Span::Of(1, state.range(0));
  int64_t rows = 0;
  for (auto _ : state) {
    auto reply = session->Execute("v;");
    SEQ_CHECK(reply.ok());
    rows += static_cast<int64_t>(reply->rows.size());
    benchmark::DoNotOptimize(reply->rows);
  }
  state.SetItemsProcessed(rows);
}

void BM_Execute_Local(benchmark::State& state) { RunExecute(state, false); }
void BM_Execute_Remote(benchmark::State& state) { RunExecute(state, true); }
BENCHMARK(BM_Execute_Local)->Arg(16)->Arg(256)->Arg(4096)->Arg(kSpanEnd);
BENCHMARK(BM_Execute_Remote)->Arg(16)->Arg(256)->Arg(4096)->Arg(kSpanEnd);

/// Prepared-statement dispatch: optimization is paid once at Prepare, so
/// the loop isolates bind + execute (+ the wire, remotely).
void RunPrepared(benchmark::State& state, bool remote) {
  std::unique_ptr<Session> session = MakeSession(remote);
  session->range() = Span::Of(1, state.range(0));
  auto id = session->Prepare("v;");
  SEQ_CHECK(id.ok());
  int64_t rows = 0;
  for (auto _ : state) {
    auto reply = session->ExecutePrepared(*id);
    SEQ_CHECK(reply.ok());
    rows += static_cast<int64_t>(reply->rows.size());
    benchmark::DoNotOptimize(reply->rows);
  }
  state.SetItemsProcessed(rows);
}

void BM_Prepared_Local(benchmark::State& state) { RunPrepared(state, false); }
void BM_Prepared_Remote(benchmark::State& state) { RunPrepared(state, true); }
BENCHMARK(BM_Prepared_Local)->Arg(16)->Arg(4096);
BENCHMARK(BM_Prepared_Remote)->Arg(16)->Arg(4096);

/// The request floor: no parsing, no planning, no rows — one string in,
/// one string out. Remote minus local is the raw frame round trip.
void RunTelemetry(benchmark::State& state, bool remote) {
  std::unique_ptr<Session> session = MakeSession(remote);
  for (auto _ : state) {
    auto text = session->Telemetry("plancache");
    SEQ_CHECK(text.ok());
    benchmark::DoNotOptimize(*text);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_Telemetry_Local(benchmark::State& state) {
  RunTelemetry(state, false);
}
void BM_Telemetry_Remote(benchmark::State& state) {
  RunTelemetry(state, true);
}
BENCHMARK(BM_Telemetry_Local);
BENCHMARK(BM_Telemetry_Remote);

}  // namespace
}  // namespace seq

SEQ_BENCH_MAIN(net)
