// E13 — the value of the §4.1 join-order enumeration: the Selinger-style
// DP vs the greedy left-deep fallback on positional-join blocks whose
// inputs have wildly different densities and access costs. The user writes
// the join in the *worst* order (densest first); the DP must recover the
// cheap order, the greedy planner cannot.
//
// Expect: DP plan cost (estimated and measured) at or below greedy for
// every block width, with the gap growing as the width (and the density
// spread) grows; optimization time is the price (cf. Property 4.1).

#include "bench/bench_util.h"

namespace seq {
namespace {

constexpr Position kSpanEnd = 20000;

/// Registers n sequences with densities spread over [0.002, ~1], named so
/// the *query order* is densest-first (adversarial for greedy).
void RegisterSpread(Engine* engine, int n) {
  for (int i = 0; i < n; ++i) {
    IntSeriesOptions options;
    options.span = Span::Of(1, kSpanEnd);
    options.density = 1.0 / (1 << i);  // 1, 0.5, 0.25, ...
    if (options.density < 0.002) options.density = 0.002;
    options.seed = 300 + static_cast<uint64_t>(i);
    options.column = "c" + std::to_string(i);
    SEQ_CHECK(engine
                  ->RegisterBase("s" + std::to_string(i),
                                 *MakeIntSeries(options))
                  .ok());
  }
}

LogicalOpPtr DensestFirstJoin(int n) {
  QueryBuilder builder = SeqRef("s0");  // densest
  for (int i = 1; i < n; ++i) {
    builder = builder.ComposeWith(SeqRef("s" + std::to_string(i)));
  }
  return builder.Build();
}

/// args: {n, use_dp}
void BM_JoinOrder(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  bool use_dp = state.range(1) != 0;
  OptimizerOptions options;
  if (!use_dp) options.cost_params.max_dp_items = 1;  // force greedy
  Engine engine(options);
  RegisterSpread(&engine, n);
  Query query;
  query.graph = DensestFirstJoin(n);

  auto plan = engine.Plan(query);
  SEQ_CHECK(plan.ok());
  AccessStats stats;
  for (auto _ : state) {
    stats.Reset();
    Executor executor(engine.catalog(), options.cost_params);
    auto result = executor.Execute(*plan, &stats);
    SEQ_CHECK(result.ok());
    benchmark::DoNotOptimize(result->records.size());
  }
  state.counters["est_cost"] = plan->est_cost;
  state.counters["sim_cost"] = stats.simulated_cost;
  state.counters["records_read"] =
      static_cast<double>(stats.stream_records);
  state.counters["probes"] = static_cast<double>(stats.probes);
  state.SetLabel(use_dp ? "selinger-dp" : "greedy");
}

void RegisterSweep() {
  for (int64_t n : {3, 5, 7, 9}) {
    for (int64_t dp : {1, 0}) {
      benchmark::RegisterBenchmark("BM_JoinOrder", BM_JoinOrder)
          ->Args({n, dp})
          ->ArgNames({"n", "dp"});
    }
  }
}

}  // namespace
}  // namespace seq

int main(int argc, char** argv) {
  seq::RegisterSweep();
  return seq::bench::BenchMain("join_order", argc, argv);
}
