// E10 — cost model validation: cost-based plan selection (§4) is only as
// good as the estimates' *ordering*. This bench generates randomized
// queries, optimizes each, executes it, and reports the Spearman rank
// correlation between estimated plan cost and measured simulated cost.
//
// Expect: strong positive rank correlation (the absolute scale does not
// matter for choosing plans; the order does).

#include <algorithm>
#include <cmath>
#include <numeric>

#include "bench/bench_util.h"
#include "common/rng.h"

namespace seq {
namespace {

constexpr Position kSpanEnd = 20000;

void SetupCatalog(Engine* engine, uint64_t seed) {
  const double densities[] = {1.0, 0.6, 0.25, 0.05};
  for (int i = 0; i < 4; ++i) {
    IntSeriesOptions options;
    options.span = Span::Of(1, kSpanEnd - 500 * i);
    options.density = densities[i];
    options.seed = seed + i;
    options.min_value = 0;
    options.max_value = 999;
    options.column = "v" + std::to_string(i);
    SEQ_CHECK(engine
                  ->RegisterBase("s" + std::to_string(i),
                                 *MakeIntSeries(options))
                  .ok());
  }
}

LogicalOpPtr RandomQuery(Rng* rng) {
  auto base = [&](int i) { return SeqRef("s" + std::to_string(i)); };
  QueryBuilder builder = base(static_cast<int>(rng->UniformInt(0, 3)));
  int left = static_cast<int>(rng->UniformInt(0, 3));
  int steps = static_cast<int>(rng->UniformInt(1, 4));
  std::string col = "v" + std::to_string(left);
  builder = base(left);
  for (int s = 0; s < steps; ++s) {
    switch (rng->UniformInt(0, 3)) {
      case 0:
        builder = builder.Select(
            Lt(Col(col), Lit(rng->UniformInt(50, 950))));
        break;
      case 1: {
        int other = static_cast<int>(rng->UniformInt(0, 3));
        builder = builder.ComposeWith(base(other));
        col = "v" + std::to_string(left);  // names may clash; keep left's
        break;
      }
      case 2:
        builder = builder.Agg(AggFunc::kSum, col,
                              rng->UniformInt(2, 16), "agg");
        col = "agg";
        break;
      default:
        builder = builder.ValueOffset(-1);
        break;
    }
  }
  return builder.Build();
}

double SpearmanRank(std::vector<double> a, std::vector<double> b) {
  auto ranks = [](const std::vector<double>& v) {
    std::vector<size_t> idx(v.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(),
              [&](size_t x, size_t y) { return v[x] < v[y]; });
    std::vector<double> r(v.size());
    for (size_t i = 0; i < idx.size(); ++i) r[idx[i]] = static_cast<double>(i);
    return r;
  };
  std::vector<double> ra = ranks(a);
  std::vector<double> rb = ranks(b);
  double n = static_cast<double>(a.size());
  double ma = (n - 1) / 2, d = 0, va = 0, vb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    d += (ra[i] - ma) * (rb[i] - ma);
    va += (ra[i] - ma) * (ra[i] - ma);
    vb += (rb[i] - ma) * (rb[i] - ma);
  }
  return d / std::sqrt(va * vb);
}

void BM_CostModelRankCorrelation(benchmark::State& state) {
  Engine engine;
  SetupCatalog(&engine, 1000);
  Rng rng(static_cast<uint64_t>(state.range(0)));
  double correlation = 0.0;
  int64_t queries = 0;
  for (auto _ : state) {
    std::vector<double> estimated;
    std::vector<double> measured;
    for (int trial = 0; trial < 60; ++trial) {
      LogicalOpPtr graph = RandomQuery(&rng);
      Query q;
      q.graph = graph;
      q.range = Span::Of(1, kSpanEnd);
      auto plan = engine.Plan(q);
      if (!plan.ok()) continue;
      AccessStats stats;
      Executor executor(engine.catalog());
      auto result = executor.Execute(*plan, &stats);
      if (!result.ok()) continue;
      estimated.push_back(plan->est_cost);
      measured.push_back(stats.simulated_cost);
    }
    correlation = SpearmanRank(estimated, measured);
    queries = static_cast<int64_t>(estimated.size());
    benchmark::DoNotOptimize(correlation);
  }
  state.counters["spearman_rho"] = correlation;
  state.counters["queries"] = static_cast<double>(queries);
}
BENCHMARK(BM_CostModelRankCorrelation)->Arg(1)->Arg(2)->Arg(3);

}  // namespace
}  // namespace seq

SEQ_BENCH_MAIN(cost_model_validation);
