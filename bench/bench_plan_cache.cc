// Parameterized plan cache: what a repeat query shape costs. Cold runs
// pay the full rewrite + join-order enumeration on every query; warm runs
// bind fresh literals into the cached physical template and go straight
// to the executor. The workload is a 6-way compose block (planning cost
// is O(N * 2^(N-1)) plans, Property 4.1) over short int series, with a
// parameterized selection on top — the regime the cache targets:
// planning dominates, the shape repeats, only literals change.
// Acceptance numbers: warm hit < 1 ms and at least 5x over cold;
// steady-state hit rate of a parameter sweep >= 99%. Rows and access
// counters are cross-checked cached-vs-uncached before any timing, so
// the speedup never comes from answering a different query.

#include <cstdint>
#include <string>

#include "bench/bench_util.h"

namespace seq {
namespace {

constexpr int kSeries = 6;
constexpr Position kSpanEnd = 299;

void RegisterCatalog(Engine* engine) {
  for (int i = 0; i < kSeries; ++i) {
    IntSeriesOptions options;
    options.span = Span::Of(0, kSpanEnd);
    options.density = 0.3 + 0.05 * i;
    options.seed = 70 + i;
    options.column = "c" + std::to_string(i);
    SEQ_CHECK(engine
                  ->RegisterBase("s" + std::to_string(i),
                                 *MakeIntSeries(options))
                  .ok());
  }
}

/// select(compose(s0, ..., s5), c0 > threshold) — the threshold is the
/// bind parameter, the compose block is the expensive-to-plan shape.
Query ShapeQuery(int64_t threshold, Position span_end = kSpanEnd) {
  QueryBuilder builder = SeqRef("s0");
  for (int i = 1; i < kSeries; ++i) {
    builder = builder.ComposeWith(SeqRef("s" + std::to_string(i)));
  }
  Query q;
  q.graph = builder.Select(Gt(Col("c0"), Lit(threshold))).Build();
  q.range = Span::Of(0, span_end);
  return q;
}

/// The same query as Sequin text (compose is binary in the grammar).
std::string ShapeText(int64_t threshold) {
  std::string inner = "s" + std::to_string(kSeries - 1);
  for (int i = kSeries - 2; i >= 1; --i) {
    inner = "compose(s" + std::to_string(i) + ", " + inner + ")";
  }
  return "q = select(compose(s0, " + inner + "), c0 > " +
         std::to_string(threshold) + ");";
}

/// Cached and uncached answers must be indistinguishable before any of
/// the timings below mean anything. A same-literal hit replays the exact
/// cached plan, so every simulated counter must match the uncached run; a
/// rebound literal may legitimately shift the plan's counters (the
/// re-cost guard tolerates up to 4x selectivity drift), so rebinds are
/// checked on rows.
void CheckParity(Engine* engine) {
  PlanCache::Global().Clear();
  RunOptions cached;
  AccessStats cached_stats;
  cached.stats = &cached_stats;
  SEQ_CHECK(engine->Run(ShapeQuery(450), cached).ok());  // plant template
  cached_stats.Reset();
  auto warm = engine->Run(ShapeQuery(450), cached);  // hit, same literal
  SEQ_CHECK(warm.ok());

  RunOptions uncached;
  uncached.exec.use_plan_cache = false;
  AccessStats uncached_stats;
  uncached.stats = &uncached_stats;
  auto ref = engine->Run(ShapeQuery(450), uncached);
  SEQ_CHECK(ref.ok());
  SEQ_CHECK(warm->records.size() == ref->records.size());
  SEQ_CHECK(cached_stats.stream_records == uncached_stats.stream_records);
  SEQ_CHECK(cached_stats.probes == uncached_stats.probes);
  SEQ_CHECK(cached_stats.predicate_evals == uncached_stats.predicate_evals);
  SEQ_CHECK(cached_stats.records_output == uncached_stats.records_output);

  auto rebind = engine->Run(ShapeQuery(300));  // hit, rebound literal
  SEQ_CHECK(rebind.ok());
  auto rebind_ref = engine->Run(ShapeQuery(300), uncached);
  SEQ_CHECK(rebind_ref.ok());
  SEQ_CHECK(rebind->records.size() == rebind_ref->records.size());

  auto text_warm = engine->RunText(ShapeText(450), Span::Of(0, kSpanEnd));
  SEQ_CHECK(text_warm.ok());
  SEQ_CHECK(text_warm->records.size() == ref->records.size());
}

/// Cold: every run pays rewrite + enumeration (cache bypassed).
void BM_PlanCache_ColdOptimize(benchmark::State& state) {
  Engine engine;
  RegisterCatalog(&engine);
  CheckParity(&engine);
  RunOptions opts;
  opts.exec.use_plan_cache = false;
  int64_t tick = 0;
  for (auto _ : state) {
    tick = (tick + 37) % 300;
    auto result = engine.Run(ShapeQuery(200 + tick), opts);
    SEQ_CHECK(result.ok());
    benchmark::DoNotOptimize(result->records.data());
  }
}
BENCHMARK(BM_PlanCache_ColdOptimize);

/// Warm: same shape, rotating literals — every iteration is a hit that
/// rebinds and executes. This is the acceptance number (< 1 ms, >= 5x
/// over ColdOptimize).
void BM_PlanCache_WarmHit(benchmark::State& state) {
  Engine engine;
  RegisterCatalog(&engine);
  CheckParity(&engine);
  SEQ_CHECK(engine.Run(ShapeQuery(350)).ok());  // plant template
  const PlanCacheStats before = PlanCache::Global().Stats();
  int64_t tick = 0;
  int64_t runs = 0;
  for (auto _ : state) {
    // Literals rotate inside the 4x re-cost band (selectivity 0.5-0.8),
    // so every iteration is a pure bind-and-execute hit.
    tick = (tick + 37) % 300;
    auto result = engine.Run(ShapeQuery(200 + tick));
    SEQ_CHECK(result.ok());
    benchmark::DoNotOptimize(result->records.data());
    ++runs;
  }
  const PlanCacheStats after = PlanCache::Global().Stats();
  SEQ_CHECK(after.hits - before.hits >= static_cast<uint64_t>(runs));
  state.counters["hits"] = static_cast<double>(after.hits - before.hits);
}
BENCHMARK(BM_PlanCache_WarmHit);

/// Warm, text path: repeat query TEXT with fresh literal tokens — the
/// lexer and parser are skipped too.
void BM_PlanCache_WarmTextHit(benchmark::State& state) {
  Engine engine;
  RegisterCatalog(&engine);
  CheckParity(&engine);
  SEQ_CHECK(engine.RunText(ShapeText(300), Span::Of(0, kSpanEnd)).ok());
  SEQ_CHECK(engine.RunText(ShapeText(450), Span::Of(0, kSpanEnd)).ok());
  const PlanCacheStats before = PlanCache::Global().Stats();
  int64_t tick = 0;
  for (auto _ : state) {
    tick = (tick + 37) % 300;
    auto result = engine.RunText(ShapeText(200 + tick), Span::Of(0, kSpanEnd));
    SEQ_CHECK(result.ok());
    benchmark::DoNotOptimize(result->records.data());
  }
  const PlanCacheStats after = PlanCache::Global().Stats();
  state.counters["text_hits"] =
      static_cast<double>(after.text_hits - before.text_hits);
}
BENCHMARK(BM_PlanCache_WarmTextHit);

/// The re-cost guard's worst case: a selection directly over a base scan
/// (so the guard has statistics to re-cost against) whose literal
/// alternates between match-everything and match-nothing. Every hit is
/// rejected and re-planned; this upper-bounds the cost of a guard that
/// always fires — it should land near a cold replan of the same query
/// (a single-scan select, so far cheaper than the 6-way ColdOptimize),
/// never above it.
void BM_PlanCache_RecostFallback(benchmark::State& state) {
  Engine engine;
  RegisterCatalog(&engine);
  CheckParity(&engine);
  bool low = false;
  const PlanCacheStats before = PlanCache::Global().Stats();
  for (auto _ : state) {
    low = !low;
    Query q;
    q.graph = SeqRef("s0")
                  .Select(Gt(Col("c0"), Lit(int64_t{low ? -1 : 995})))
                  .Build();
    q.range = Span::Of(0, kSpanEnd);
    auto result = engine.Run(q);
    SEQ_CHECK(result.ok());
    benchmark::DoNotOptimize(result->records.data());
  }
  const PlanCacheStats after = PlanCache::Global().Stats();
  state.counters["recost_fallbacks"] =
      static_cast<double>(after.recost_fallbacks - before.recost_fallbacks);
}
BENCHMARK(BM_PlanCache_RecostFallback);

/// Steady-state hit rate of a realistic parameter sweep: 10 query shapes
/// (distinct ranges) x rotating literals, 1000 runs after a one-miss-per-
/// shape warmup. Acceptance: >= 99% hit rate.
void BM_PlanCache_HitRateSweep(benchmark::State& state) {
  Engine engine;
  RegisterCatalog(&engine);
  CheckParity(&engine);
  for (auto _ : state) {
    PlanCache::Global().Clear();
    for (int shape = 0; shape < 10; ++shape) {
      SEQ_CHECK(engine.Run(ShapeQuery(350, kSpanEnd - shape)).ok());
    }
    const PlanCacheStats before = PlanCache::Global().Stats();
    for (int i = 0; i < 1000; ++i) {
      SEQ_CHECK(
          engine.Run(ShapeQuery(200 + (i * 37) % 300, kSpanEnd - (i % 10)))
              .ok());
    }
    const PlanCacheStats after = PlanCache::Global().Stats();
    const double lookups = static_cast<double>((after.hits - before.hits) +
                                               (after.misses - before.misses));
    const double rate = static_cast<double>(after.hits - before.hits) / lookups;
    SEQ_CHECK(rate >= 0.99);
    state.counters["hit_rate"] = rate;
  }
}
BENCHMARK(BM_PlanCache_HitRateSweep)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace seq

SEQ_BENCH_MAIN(plan_cache);
