// E2 — Table 1 + Fig. 3: bidirectional span propagation. The query asks
// for DEC prices on days where IBM closed above HP; the spans (IBM
// [200,500], DEC [1,350], HP [1,750], scaled) intersect to [200,350], so
// span propagation restricts every base scan to that window.
//
// Paper claim: "the ability to restrict the span of a sequence based on
// the other sequences used in the query holds a tremendous potential for
// query processing efficiency" — expect pages/records read to drop by
// roughly the span ratio, answers unchanged.

#include "bench/bench_util.h"

namespace seq {
namespace {

LogicalOpPtr Fig3Query() {
  return SeqRef("dec")
      .Project({"close"}, {"dec_close"})
      .ComposeWith(SeqRef("ibm").ComposeWith(
          SeqRef("hp"), Gt(Col("close", 0), Col("close", 1))))
      .Project({"dec_close"})
      .Build();
}

void RunFig3(benchmark::State& state, bool span_pushdown) {
  int64_t scale = state.range(0);
  OptimizerOptions options;
  options.enable_span_pushdown = span_pushdown;
  Engine engine(options);
  SEQ_CHECK(RegisterTable1Stocks(&engine.catalog(), scale).ok());
  LogicalOpPtr query = Fig3Query();
  Span range = Span::Of(1, 750 * scale);
  AccessStats stats;
  size_t answers = 0;
  for (auto _ : state) {
    stats.Reset();
    auto result = engine.Run(query, range, &stats);
    SEQ_CHECK(result.ok());
    answers = result->records.size();
    benchmark::DoNotOptimize(answers);
  }
  state.counters["pages_read"] = static_cast<double>(stats.stream_pages);
  state.counters["records_read"] =
      static_cast<double>(stats.stream_records);
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["sim_cost"] = stats.simulated_cost;
}

void BM_WithSpanPropagation(benchmark::State& state) {
  RunFig3(state, /*span_pushdown=*/true);
}
BENCHMARK(BM_WithSpanPropagation)->Arg(1)->Arg(10)->Arg(100);

void BM_WithoutSpanPropagation(benchmark::State& state) {
  RunFig3(state, /*span_pushdown=*/false);
}
BENCHMARK(BM_WithoutSpanPropagation)->Arg(1)->Arg(10)->Arg(100);

}  // namespace
}  // namespace seq

SEQ_BENCH_MAIN(fig3_span);
