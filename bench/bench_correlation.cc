// E11 — §3/§4 Step 2.a: "the correlation in the Null positions of the
// input sequences" as optimizer meta-information. Two sparse sequences
// whose records sit at the *same* positions are joined; with the
// correlation declared, the optimizer's joint-density (and hence output
// cardinality and cost) estimates are accurate; without it, the
// independence assumption underestimates the join output by ~1/density.

#include "bench/bench_util.h"
#include "common/rng.h"

namespace seq {
namespace {

constexpr Position kSpanEnd = 100000;
constexpr double kDensity = 0.02;

/// Two int sequences sharing the exact same record positions.
void RegisterAlignedPair(Engine* engine) {
  IntSeriesOptions a;
  a.span = Span::Of(1, kSpanEnd);
  a.density = kDensity;
  a.seed = 111;
  a.column = "x";
  auto sa = MakeIntSeries(a);
  SEQ_CHECK(sa.ok());
  // Mirror the positions with fresh values.
  SchemaPtr schema = Schema::Make({Field{"y", TypeId::kInt64}});
  auto sb = std::make_shared<BaseSequenceStore>(schema, 64);
  SEQ_CHECK(sb->DeclareSpan(a.span).ok());
  Rng rng(222);
  for (const PosRecord& pr : (*sa)->records()) {
    SEQ_CHECK(sb->Append(pr.pos,
                         Record{Value::Int64(rng.UniformInt(0, 1000))})
                  .ok());
  }
  SEQ_CHECK(engine->RegisterBase("a", *sa).ok());
  SEQ_CHECK(engine->RegisterBase("b", sb).ok());
}

void RunCorrelation(benchmark::State& state, bool declare_correlation) {
  Engine engine;
  RegisterAlignedPair(&engine);
  if (declare_correlation) {
    engine.catalog().SetNullCorrelation("a", "b", 1.0);
  }
  Query q;
  q.graph = SeqRef("a").ComposeWith(SeqRef("b")).Build();
  auto plan = engine.Plan(q);
  SEQ_CHECK(plan.ok());

  AccessStats stats;
  size_t actual = 0;
  for (auto _ : state) {
    stats.Reset();
    Executor executor(engine.catalog());
    auto result = executor.Execute(*plan, &stats);
    SEQ_CHECK(result.ok());
    actual = result->records.size();
    benchmark::DoNotOptimize(actual);
  }
  double est_records = plan->root->est_density *
                       static_cast<double>(plan->root->required.Length());
  state.counters["estimated_out_records"] = est_records;
  state.counters["actual_out_records"] = static_cast<double>(actual);
  state.counters["estimate_ratio"] =
      est_records / static_cast<double>(actual);
  state.counters["est_cost"] = plan->est_cost;
  state.counters["sim_cost"] = stats.simulated_cost;
}

void BM_WithCorrelationMeta(benchmark::State& state) {
  RunCorrelation(state, true);
}
BENCHMARK(BM_WithCorrelationMeta);

void BM_IndependenceAssumption(benchmark::State& state) {
  RunCorrelation(state, false);
}
BENCHMARK(BM_IndependenceAssumption);

}  // namespace
}  // namespace seq

SEQ_BENCH_MAIN(correlation);
