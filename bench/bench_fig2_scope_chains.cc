// E8 — Fig. 2 / Prop. 2.1: operator scope under composition. Chains of
// scope-bearing operators (offsets and trailing windows) compose into a
// single complex operator whose scope is the Minkowski sum of the parts;
// stream evaluation stays single-scan with caches bounded by the composed
// scope.
//
// Expect: per-record evaluation cost growing ~linearly in chain length
// (one bounded-scope operator each), base records read once regardless of
// chain length, and the composed scope window matching the sum of parts.

#include "bench/bench_util.h"
#include "logical/scope.h"

namespace seq {
namespace {

constexpr Position kSpanEnd = 50000;

/// A chain alternating 3-window sums and -2 positional offsets.
LogicalOpPtr Chain(int length) {
  QueryBuilder builder = SeqRef("s");
  for (int i = 0; i < length; ++i) {
    if (i % 2 == 0) {
      builder = builder.Agg(AggFunc::kSum, i == 0 ? "value" : "sum",
                            /*window=*/3, "sum");
    } else {
      builder = builder.Offset(-2);
    }
  }
  return builder.Build();
}

void BM_OperatorChain(benchmark::State& state) {
  int length = static_cast<int>(state.range(0));
  Engine engine;
  IntSeriesOptions options;
  options.span = Span::Of(1, kSpanEnd);
  options.density = 0.9;
  options.seed = 81;
  SEQ_CHECK(engine.RegisterBase("s", *MakeIntSeries(options)).ok());
  LogicalOpPtr query = Chain(length);

  // The composed scope over the base leaf (Prop. 2.1).
  std::vector<ScopeSpec> scopes = query->QueryScopeOverLeaves();
  SEQ_CHECK(scopes.size() == 1);
  state.SetLabel("scope " + scopes[0].ToString());

  AccessStats stats;
  for (auto _ : state) {
    stats.Reset();
    auto result = engine.Run(query, Span::Of(1, kSpanEnd), &stats);
    SEQ_CHECK(result.ok());
    benchmark::DoNotOptimize(result->records.size());
  }
  state.counters["base_records_read"] =
      static_cast<double>(stats.stream_records);
  state.counters["agg_steps"] = static_cast<double>(stats.agg_steps);
  state.counters["scope_lookback"] =
      scopes[0].IsFixedSize() ? static_cast<double>(-scopes[0].min_offset)
                              : -1.0;
  state.counters["sim_cost"] = stats.simulated_cost;
}
BENCHMARK(BM_OperatorChain)->DenseRange(1, 13, 2);

}  // namespace
}  // namespace seq

SEQ_BENCH_MAIN(fig2_scope_chains);
