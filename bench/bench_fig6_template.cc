// E6 — Fig. 6 query template: a query is asked either for all positions in
// a range or at specific positions (the Position Sequence). Sweeping the
// number of requested point positions, the optimizer should serve sparse
// point sets with the probed plan and flip to the stream plan as the set
// approaches the whole range.
//
// Expect: probed cost linear in #points and cheap for few points; stream
// cost ~flat; optimizer pick ("auto") tracking the minimum of the two.

#include "bench/bench_util.h"

namespace seq {
namespace {

constexpr Position kSpanEnd = 100000;

void Setup(Engine* engine) {
  StockSeriesOptions s;
  s.span = Span::Of(1, kSpanEnd);
  s.density = 0.9;
  s.seed = 61;
  SEQ_CHECK(engine->RegisterBase("s", *MakeStockSeries(s)).ok());
}

std::vector<Position> Points(int64_t count) {
  std::vector<Position> out;
  Position step = kSpanEnd / (count + 1);
  if (step < 1) step = 1;
  for (Position p = step; p <= kSpanEnd && out.size() < size_t(count);
       p += step) {
    out.push_back(p);
  }
  return out;
}

/// args: {#points, mode: 0=auto, 1=force stream, 2=force probed}
void BM_PointQueries(benchmark::State& state) {
  int64_t count = state.range(0);
  int mode = static_cast<int>(state.range(1));
  OptimizerOptions options;
  if (mode == 1) options.force_root_mode = AccessMode::kStream;
  if (mode == 2) options.force_root_mode = AccessMode::kProbed;
  Engine engine(options);
  Setup(&engine);
  Query q;
  q.graph = SeqRef("s")
                .Select(Gt(Col("close"), Lit(50.0)))
                .Project({"close"})
                .Build();
  q.positions = Points(count);

  auto plan = engine.Plan(q);
  SEQ_CHECK(plan.ok());
  state.SetLabel(AccessModeName(plan->root_mode));

  Executor executor(engine.catalog(), options.cost_params);
  AccessStats stats;
  for (auto _ : state) {
    stats.Reset();
    auto result = executor.Execute(*plan, &stats);
    SEQ_CHECK(result.ok());
    benchmark::DoNotOptimize(result->records.size());
  }
  state.counters["probes"] = static_cast<double>(stats.probes);
  state.counters["records_read"] =
      static_cast<double>(stats.stream_records);
  state.counters["sim_cost"] = stats.simulated_cost;
  state.counters["est_cost"] = plan->est_cost;
}

void RegisterSweep() {
  for (int64_t count : {1, 10, 100, 1000, 10000, 60000}) {
    for (int64_t mode : {0, 1, 2}) {
      benchmark::RegisterBenchmark("BM_PointQueries", BM_PointQueries)
          ->Args({count, mode})
          ->ArgNames({"points", "mode"});
    }
  }
}

}  // namespace
}  // namespace seq

int main(int argc, char** argv) {
  seq::RegisterSweep();
  return seq::bench::BenchMain("fig6_template", argc, argv);
}
