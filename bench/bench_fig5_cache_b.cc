// E5 — Fig. 5.B / Cache-Strategy-B: the Previous operator over a selected
// sequence. The figure's scenario: "if the close of IBM is usually greater
// than the close of HP, a large number of IBM and HP records may need to
// be accessed to generate each record" — i.e., the naive backward search
// degrades as the upstream selection gets more selective, while the
// incremental algorithm derives out(i) from out(i-1) at O(1).
//
// Expect: incremental accesses flat in selectivity; naive probes growing
// ~1/selectivity.

#include "bench/bench_util.h"

namespace seq {
namespace {

constexpr Position kSpanEnd = 20000;

void RunCacheB(benchmark::State& state, bool disable_incremental) {
  int64_t permille = state.range(0);  // selection selectivity of the input
  OptimizerOptions options;
  options.cost_params.disable_incremental_value_offset = disable_incremental;
  Engine engine(options);
  IntSeriesOptions marks;
  marks.span = Span::Of(1, kSpanEnd);
  marks.density = 1.0;
  marks.min_value = 0;
  marks.max_value = 999;
  marks.seed = 52;
  marks.column = "mark";
  SEQ_CHECK(engine.RegisterBase("marks", *MakeIntSeries(marks)).ok());
  // Previous record satisfying the selection, asked at every position.
  auto query = SeqRef("marks")
                   .Select(Lt(Col("mark"), Lit(permille - 1)))
                   .Prev()
                   .Build();
  AccessStats stats;
  for (auto _ : state) {
    stats.Reset();
    auto result = engine.Run(query, Span::Of(1, kSpanEnd), &stats);
    SEQ_CHECK(result.ok());
    benchmark::DoNotOptimize(result->records.size());
  }
  state.counters["input_accesses"] =
      static_cast<double>(stats.stream_records + stats.probes);
  state.counters["probes"] = static_cast<double>(stats.probes);
  state.counters["sim_cost"] = stats.simulated_cost;
}

void BM_CacheStrategyB(benchmark::State& state) {
  RunCacheB(state, /*disable_incremental=*/false);
}
BENCHMARK(BM_CacheStrategyB)->Arg(500)->Arg(100)->Arg(20)->Arg(5);

void BM_NaiveBackwardSearch(benchmark::State& state) {
  RunCacheB(state, /*disable_incremental=*/true);
}
BENCHMARK(BM_NaiveBackwardSearch)->Arg(500)->Arg(100)->Arg(20)->Arg(5);

}  // namespace
}  // namespace seq

SEQ_BENCH_MAIN(fig5_cache_b);
