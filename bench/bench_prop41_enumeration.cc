// E7 — Property 4.1: complexity of block-wise plan generation. For a block
// of N positional joins the paper states
//   (a) join plans evaluated      = O(N * 2^(N-1))
//   (b) plans stored concurrently = O(C(N, ceil(N/2)))
// This bench optimizes N-way compose blocks, reporting the measured
// counters next to the closed-form values, plus optimization wall time.

#include <cmath>

#include "bench/bench_util.h"

namespace seq {
namespace {

void BM_BlockEnumeration(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Engine engine;
  for (int i = 0; i < n; ++i) {
    IntSeriesOptions options;
    options.span = Span::Of(0, 999);
    options.density = 0.3 + 0.05 * (i % 8);
    options.seed = 70 + i;
    options.column = "c" + std::to_string(i);
    SEQ_CHECK(engine
                  .RegisterBase("s" + std::to_string(i),
                                *MakeIntSeries(options))
                  .ok());
  }
  QueryBuilder builder = SeqRef("s0");
  for (int i = 1; i < n; ++i) {
    builder = builder.ComposeWith(SeqRef("s" + std::to_string(i)));
  }
  Query query;
  query.graph = builder.Build();

  PlannerStats stats;
  for (auto _ : state) {
    Optimizer optimizer(engine.catalog());
    auto plan = optimizer.Optimize(query);
    SEQ_CHECK(plan.ok());
    stats = optimizer.planner_stats();
    benchmark::DoNotOptimize(plan->est_cost);
  }
  double formula_a = static_cast<double>(n) * std::pow(2.0, n - 1) - n;
  auto choose = [](int nn, int k) {
    double c = 1;
    for (int i = 1; i <= k; ++i) {
      c *= static_cast<double>(nn - k + i) / i;
    }
    return c;
  };
  state.counters["plans_considered"] =
      static_cast<double>(stats.plans_considered);
  state.counters["formula_N2^{N-1}-N"] = formula_a;
  state.counters["plans_retained_max"] =
      static_cast<double>(stats.plans_retained_max);
  state.counters["formula_C(N,N/2)"] = choose(n, (n + 1) / 2);
}
BENCHMARK(BM_BlockEnumeration)
    ->DenseRange(2, 14, 2)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace seq

SEQ_BENCH_MAIN(prop41_enumeration);
