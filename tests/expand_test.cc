// Tests for the Expand ordering-domain operator (§5.1): semantics against
// hand-computed values and the reference oracle, span propagation, the
// collapse/expand round trip, and text round-trips.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "parser/parser.h"
#include "parser/unparse.h"
#include "tests/reference_eval.h"

namespace seq {
namespace {

BaseSequencePtr Weekly() {
  SchemaPtr schema = Schema::Make({Field{"v", TypeId::kDouble}});
  auto store = std::make_shared<BaseSequenceStore>(schema, 4);
  // Weeks 1..4, with week 3 missing.
  for (Position w : {1, 2, 4}) {
    EXPECT_TRUE(
        store->Append(w, Record{Value::Double(static_cast<double>(w) * 10)})
            .ok());
  }
  return store;
}

class ExpandTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(engine_.RegisterBase("weekly", Weekly()).ok());
  }
  Engine engine_;
};

TEST_F(ExpandTest, ReplicatesEachBucket) {
  // Weekly viewed daily (factor 7): week w covers days [7w, 7w+6].
  auto result = engine_.Run(SeqRef("weekly").Expand(7).Build());
  ASSERT_TRUE(result.ok()) << result.status();
  // Weeks 1,2,4 × 7 days each.
  ASSERT_EQ(result->records.size(), 21u);
  EXPECT_EQ(result->records.front().pos, 7);
  EXPECT_DOUBLE_EQ(result->records.front().rec[0].dbl(), 10.0);
  EXPECT_EQ(result->records[6].pos, 13);
  EXPECT_EQ(result->records[7].pos, 14);  // week 2 starts
  EXPECT_DOUBLE_EQ(result->records[7].rec[0].dbl(), 20.0);
  // Week 3 (days 21..27) is a gap.
  for (const PosRecord& pr : result->records) {
    EXPECT_FALSE(pr.pos >= 21 && pr.pos <= 27);
  }
  EXPECT_EQ(result->records.back().pos, 34);
}

TEST_F(ExpandTest, RangeRestrictsAndProbesWork) {
  auto graph = SeqRef("weekly").Expand(7).Build();
  auto window = engine_.Run(graph, Span::Of(10, 16));
  ASSERT_TRUE(window.ok());
  ASSERT_EQ(window->records.size(), 7u);  // days 10..13 (w1), 14..16 (w2)
  EXPECT_EQ(window->records[0].pos, 10);

  auto points = engine_.RunAt(graph, {8, 22, 30});
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points->records.size(), 2u);  // day 22 is in the week-3 gap
  EXPECT_DOUBLE_EQ(points->records[0].rec[0].dbl(), 10.0);
  EXPECT_DOUBLE_EQ(points->records[1].rec[0].dbl(), 40.0);
}

TEST_F(ExpandTest, MatchesReferenceOracle) {
  testing::ReferenceEvaluator reference(&engine_.catalog(),
                                        Span::Of(-10, 100));
  for (int64_t factor : {1, 2, 7}) {
    auto graph = SeqRef("weekly").Expand(factor).Build();
    auto engine_result = engine_.Run(graph, Span::Of(0, 50));
    ASSERT_TRUE(engine_result.ok()) << engine_result.status();
    auto oracle = reference.Materialize(*graph, Span::Of(0, 50));
    ASSERT_TRUE(oracle.ok());
    ASSERT_EQ(engine_result->records.size(), oracle->size())
        << "factor " << factor;
    for (size_t i = 0; i < oracle->size(); ++i) {
      EXPECT_EQ(engine_result->records[i].pos, (*oracle)[i].pos);
      EXPECT_EQ(engine_result->records[i].rec, (*oracle)[i].rec);
    }
  }
}

TEST_F(ExpandTest, CollapseOfExpandIsIdentityForIdempotentAggs) {
  // expand(7) then collapse(7, max) returns the original weekly values.
  auto graph = SeqRef("weekly")
                   .Expand(7)
                   .Collapse(7, AggFunc::kMax, "v", "v")
                   .Build();
  auto result = engine_.Run(graph);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->records.size(), 3u);
  EXPECT_EQ(result->records[0].pos, 1);
  EXPECT_DOUBLE_EQ(result->records[0].rec[0].dbl(), 10.0);
  EXPECT_EQ(result->records[2].pos, 4);
  EXPECT_DOUBLE_EQ(result->records[2].rec[0].dbl(), 40.0);
}

TEST_F(ExpandTest, ComposableWithDailySequences) {
  // A daily sequence joined against the expanded weekly baseline.
  SchemaPtr schema = Schema::Make({Field{"d", TypeId::kDouble}});
  auto daily = std::make_shared<BaseSequenceStore>(schema, 8);
  for (Position p = 7; p <= 20; ++p) {
    ASSERT_TRUE(
        daily->Append(p, Record{Value::Double(static_cast<double>(p))}).ok());
  }
  ASSERT_TRUE(engine_.RegisterBase("daily", daily).ok());
  auto graph = SeqRef("daily")
                   .ComposeWith(SeqRef("weekly").Expand(7),
                                Gt(Col("d", 0), Col("v", 1)))
                   .Build();
  auto result = engine_.Run(graph);
  ASSERT_TRUE(result.ok()) << result.status();
  // Days 11..13 (week 1: d > 10), none in week 2 until d > 20.
  ASSERT_FALSE(result->records.empty());
  EXPECT_EQ(result->records[0].pos, 11);
}

TEST_F(ExpandTest, SpanAnnotation) {
  Query q;
  q.graph = SeqRef("weekly").Expand(7).Build();
  Optimizer optimizer(engine_.catalog());
  auto plan = optimizer.Optimize(q);
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Weekly span [1,4] expands to days [7, 34].
  EXPECT_EQ(optimizer.optimized_graph()->meta().span, Span::Of(7, 34));
}

TEST_F(ExpandTest, ParseAndUnparse) {
  auto parsed = ParseSequinQuery("d = expand(weekly, 7);");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ((*parsed)->kind(), OpKind::kExpand);
  EXPECT_EQ((*parsed)->expand_factor(), 7);
  auto text = UnparseQuery(**parsed, "d");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "d = expand(weekly, 7);");
  EXPECT_FALSE(ParseSequinQuery("d = expand(weekly, 0);").ok());
}

}  // namespace
}  // namespace seq
