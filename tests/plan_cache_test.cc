// Parameterized plan cache (docs/execution.md, "plan cache"): hit/miss
// behavior, literal rebinding, the differential guarantee (a cache hit
// returns byte-identical rows and counters to a cold optimize under every
// driving mode), invalidation on catalog mutation and option changes, the
// re-cost guard, graceful degradation interplay, the RunText fast path,
// LRU capacity, and thread safety under concurrent hits, misses and
// invalidations.
//
// The cache under test is the process-wide PlanCache::Global(), shared by
// every test in this binary — so all counter assertions work on DELTAS of
// Stats() snapshots, never absolutes.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "obs/query_registry.h"
#include "workload/generators.h"

namespace seq {
namespace {

// The suite asserts cache behavior, which SEQ_PLAN_CACHE=0 turns off for
// the whole process; correctness under "cache disabled" is what the rest
// of the test suite already covers then.
#define SKIP_IF_CACHE_DISABLED()                                       \
  if (!PlanCache::Global().enabled()) {                                \
    GTEST_SKIP() << "plan cache disabled via SEQ_PLAN_CACHE";          \
  }

Engine MakeEngine(uint64_t seed = 3) {
  Engine engine;
  IntSeriesOptions options;
  options.span = Span::Of(0, 999);
  options.density = 0.8;
  options.seed = seed;
  SEQ_CHECK(engine.RegisterBase("s", *MakeIntSeries(options)).ok());
  return engine;
}

Query SelectQuery(int64_t threshold) {
  Query q;
  q.graph = SeqRef("s")
                .Select(Gt(Col("value"), Lit(threshold)))
                .Project({"value"})
                .Build();
  q.range = Span::Of(0, 999);
  return q;
}

Query ChainQuery(int64_t threshold, int window) {
  Query q;
  q.graph = SeqRef("s")
                .Select(Gt(Col("value"), Lit(threshold)))
                .Agg(AggFunc::kSum, "value", window, "w")
                .Build();
  q.range = Span::Of(0, 999);
  return q;
}

void ExpectSameRows(const QueryResult& a, const QueryResult& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].pos, b.records[i].pos);
    ASSERT_EQ(a.records[i].rec.size(), b.records[i].rec.size());
    for (size_t j = 0; j < a.records[i].rec.size(); ++j) {
      EXPECT_EQ(a.records[i].rec[j].type(), b.records[i].rec[j].type());
      EXPECT_EQ(a.records[i].rec[j], b.records[i].rec[j]);
    }
  }
}

void ExpectSameStats(const AccessStats& a, const AccessStats& b) {
  EXPECT_EQ(a.stream_records, b.stream_records);
  EXPECT_EQ(a.stream_pages, b.stream_pages);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.probe_pages, b.probe_pages);
  EXPECT_EQ(a.cache_stores, b.cache_stores);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.predicate_evals, b.predicate_evals);
  EXPECT_EQ(a.agg_steps, b.agg_steps);
  EXPECT_EQ(a.records_output, b.records_output);
  EXPECT_DOUBLE_EQ(a.simulated_cost, b.simulated_cost);
}

// --- hits, misses, rebinding -------------------------------------------------

TEST(PlanCacheTest, RepeatShapeHitsAndReturnsIdenticalRows) {
  SKIP_IF_CACHE_DISABLED();
  Engine engine = MakeEngine();
  const PlanCacheStats before = PlanCache::Global().Stats();

  auto cold = engine.Run(SelectQuery(500));
  ASSERT_TRUE(cold.ok()) << cold.status();
  auto warm = engine.Run(SelectQuery(500));
  ASSERT_TRUE(warm.ok());
  ExpectSameRows(*cold, *warm);

  const PlanCacheStats after = PlanCache::Global().Stats();
  EXPECT_GE(after.hits - before.hits, 1u);
  EXPECT_GE(after.inserts - before.inserts, 1u);
}

TEST(PlanCacheTest, HitRebindsNewLiterals) {
  SKIP_IF_CACHE_DISABLED();
  Engine engine = MakeEngine();
  // Warm the shape with one literal, then hit it with another: the bound
  // plan must answer for the NEW literal, not the cached one.
  ASSERT_TRUE(engine.Run(SelectQuery(900)).ok());

  const PlanCacheStats before = PlanCache::Global().Stats();
  auto hit = engine.Run(SelectQuery(100));
  ASSERT_TRUE(hit.ok());
  const PlanCacheStats after = PlanCache::Global().Stats();
  EXPECT_GE(after.hits - before.hits, 1u);

  RunOptions uncached;
  uncached.exec.use_plan_cache = false;
  auto reference = engine.Run(SelectQuery(100), uncached);
  ASSERT_TRUE(reference.ok());
  ExpectSameRows(*reference, *hit);
  EXPECT_GT(hit->records.size(), 0u);
}

TEST(PlanCacheTest, AliasedLiteralsStayIndependentParameters) {
  SKIP_IF_CACHE_DISABLED();
  Engine engine = MakeEngine();
  // Two literals with EQUAL values when the template is built; rebinding
  // with different values must land each in its own slot.
  auto make = [](int64_t lo, int64_t hi) {
    Query q;
    q.graph = SeqRef("s")
                  .Select(Gt(Col("value"), Lit(lo)))
                  .Select(Lt(Col("value"), Lit(hi)))
                  .Build();
    q.range = Span::Of(0, 999);
    return q;
  };
  ASSERT_TRUE(engine.Run(make(400, 400)).ok());  // aliased template
  auto warm = engine.Run(make(200, 600));
  ASSERT_TRUE(warm.ok());

  RunOptions uncached;
  uncached.exec.use_plan_cache = false;
  auto reference = engine.Run(make(200, 600), uncached);
  ASSERT_TRUE(reference.ok());
  ExpectSameRows(*reference, *warm);
  EXPECT_GT(warm->records.size(), 0u);
}

TEST(PlanCacheTest, StructuralIntegersAreNotParameters) {
  SKIP_IF_CACHE_DISABLED();
  Engine engine = MakeEngine();
  // Window sizes shape the plan; two windows must never share a template.
  auto w8 = engine.Run(ChainQuery(500, 8));
  auto w8_again = engine.Run(ChainQuery(500, 8));
  auto w3 = engine.Run(ChainQuery(500, 3));
  ASSERT_TRUE(w8.ok());
  ASSERT_TRUE(w8_again.ok());
  ASSERT_TRUE(w3.ok());
  ExpectSameRows(*w8, *w8_again);

  RunOptions uncached;
  uncached.exec.use_plan_cache = false;
  auto w3_ref = engine.Run(ChainQuery(500, 3), uncached);
  ASSERT_TRUE(w3_ref.ok());
  ExpectSameRows(*w3_ref, *w3);
}

TEST(PlanCacheTest, PointPositionsVerifiedOnHit) {
  SKIP_IF_CACHE_DISABLED();
  Engine engine = MakeEngine();
  auto graph = SeqRef("s").Select(Gt(Col("value"), Lit(int64_t{10}))).Build();
  RunOptions opts;
  auto first = engine.RunAt(graph, {5, 10, 20, 40}, opts);
  auto again = engine.RunAt(graph, {5, 10, 20, 40}, opts);
  auto other = engine.RunAt(graph, {7, 11, 21}, opts);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(again.ok());
  ASSERT_TRUE(other.ok());
  ExpectSameRows(*first, *again);

  RunOptions uncached;
  uncached.exec.use_plan_cache = false;
  auto other_ref = engine.RunAt(graph, {7, 11, 21}, uncached);
  ASSERT_TRUE(other_ref.ok());
  ExpectSameRows(*other_ref, *other);
}

TEST(PlanCacheTest, OptOutRunsNeverTouchTheCache) {
  SKIP_IF_CACHE_DISABLED();
  Engine engine = MakeEngine();
  const PlanCacheStats before = PlanCache::Global().Stats();
  RunOptions opts;
  opts.exec.use_plan_cache = false;
  ASSERT_TRUE(engine.Run(SelectQuery(123), opts).ok());
  ASSERT_TRUE(engine.Run(SelectQuery(123), opts).ok());
  const PlanCacheStats after = PlanCache::Global().Stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.inserts, before.inserts);
}

// --- the differential guarantee ---------------------------------------------

TEST(PlanCacheTest, DifferentialParityAcrossDrivers) {
  SKIP_IF_CACHE_DISABLED();
  // A cache hit must be indistinguishable from a cold optimize: identical
  // rows AND identical simulated access counters, under batch and tuple
  // driving, serial and 4-worker morsel execution, range (stream) and
  // point (probed) requests.
  Engine engine = MakeEngine(11);
  for (bool use_batch : {true, false}) {
    for (int workers : {1, 4}) {
      for (bool probed : {false, true}) {
        Query q;
        if (probed) {
          q.graph =
              SeqRef("s").Select(Gt(Col("value"), Lit(int64_t{700}))).Build();
          q.positions = {3, 9, 27, 81, 243, 729};
        } else {
          q = ChainQuery(700, 5);
        }

        RunOptions warmup;
        warmup.exec.use_batch = use_batch;
        warmup.exec.parallelism = workers;
        // Template from a DIFFERENT literal, so the hit really rebinds.
        Query seed_q = q;
        seed_q.graph = probed ? SeqRef("s")
                                    .Select(Gt(Col("value"), Lit(int64_t{1})))
                                    .Build()
                              : ChainQuery(1, 5).graph;
        ASSERT_TRUE(engine.Run(seed_q, warmup).ok());

        RunOptions cached = warmup;
        AccessStats cached_stats;
        cached.stats = &cached_stats;
        auto hit = engine.Run(q, cached);
        ASSERT_TRUE(hit.ok()) << hit.status();

        RunOptions uncached = warmup;
        uncached.exec.use_plan_cache = false;
        AccessStats uncached_stats;
        uncached.stats = &uncached_stats;
        auto ref = engine.Run(q, uncached);
        ASSERT_TRUE(ref.ok()) << ref.status();

        SCOPED_TRACE("batch=" + std::to_string(use_batch) +
                     " workers=" + std::to_string(workers) +
                     " probed=" + std::to_string(probed));
        ExpectSameRows(*ref, *hit);
        ExpectSameStats(uncached_stats, cached_stats);
      }
    }
  }
}

// --- invalidation ------------------------------------------------------------

TEST(PlanCacheTest, CatalogMutationInvalidatesAndReplans) {
  SKIP_IF_CACHE_DISABLED();
  Engine engine = MakeEngine();
  ASSERT_TRUE(engine.Run(SelectQuery(500)).ok());

  const PlanCacheStats before = PlanCache::Global().Stats();
  // Registering a base bumps the catalog version (new keys) and retires
  // the engine's entries eagerly.
  IntSeriesOptions options;
  options.span = Span::Of(0, 99);
  options.seed = 77;
  ASSERT_TRUE(engine.RegisterBase("t", *MakeIntSeries(options)).ok());
  const PlanCacheStats mid = PlanCache::Global().Stats();
  EXPECT_GE(mid.invalidations - before.invalidations, 1u);

  // The same shape misses (fresh optimize against the new catalog) and
  // still answers correctly.
  auto rerun = engine.Run(SelectQuery(500));
  ASSERT_TRUE(rerun.ok());
  const PlanCacheStats after = PlanCache::Global().Stats();
  EXPECT_GE(after.misses - mid.misses, 1u);
  EXPECT_GE(after.inserts - mid.inserts, 1u);

  RunOptions uncached;
  uncached.exec.use_plan_cache = false;
  auto ref = engine.Run(SelectQuery(500), uncached);
  ASSERT_TRUE(ref.ok());
  ExpectSameRows(*ref, *rerun);
}

TEST(PlanCacheTest, StatisticsMutationChangesKeys) {
  SKIP_IF_CACHE_DISABLED();
  Engine engine = MakeEngine();
  ASSERT_TRUE(engine.Run(SelectQuery(500)).ok());
  const PlanCacheStats before = PlanCache::Global().Stats();
  // SetNullCorrelation changes planning inputs; the version bump must
  // force a re-optimize instead of serving the stale template.
  engine.catalog().SetNullCorrelation("s", "s", 0.5);
  auto rerun = engine.Run(SelectQuery(500));
  ASSERT_TRUE(rerun.ok());
  const PlanCacheStats after = PlanCache::Global().Stats();
  EXPECT_GE(after.misses - before.misses, 1u);
}

TEST(PlanCacheTest, OptimizerOptionVariantsGetDistinctKeys) {
  SKIP_IF_CACHE_DISABLED();
  Engine engine = MakeEngine();
  ASSERT_TRUE(engine.Run(SelectQuery(500)).ok());
  const PlanCacheStats before = PlanCache::Global().Stats();
  // Same engine, same query shape, different planning options: must MISS
  // (the rewrites-off plan can differ), never reuse the rewrites-on plan.
  engine.options().enable_rewrites = false;
  auto off = engine.Run(SelectQuery(500));
  ASSERT_TRUE(off.ok());
  const PlanCacheStats after = PlanCache::Global().Stats();
  EXPECT_GE(after.misses - before.misses, 1u);
  engine.options().enable_rewrites = true;

  RunOptions uncached;
  uncached.exec.use_plan_cache = false;
  auto ref = engine.Run(SelectQuery(500), uncached);
  ASSERT_TRUE(ref.ok());
  ExpectSameRows(*ref, *off);
}

TEST(PlanCacheTest, EngineDestructionRetiresItsEntries) {
  SKIP_IF_CACHE_DISABLED();
  const PlanCacheStats before = PlanCache::Global().Stats();
  {
    Engine engine = MakeEngine();
    ASSERT_TRUE(engine.Run(SelectQuery(42)).ok());
  }
  const PlanCacheStats after = PlanCache::Global().Stats();
  EXPECT_GE(after.invalidations - before.invalidations, 1u);
}

// --- re-cost guard -----------------------------------------------------------

TEST(PlanCacheTest, RecostGuardFallsBackOnSelectivityShift) {
  SKIP_IF_CACHE_DISABLED();
  Engine engine = MakeEngine();
  // Template built for a needle predicate (tiny estimated selectivity);
  // rebinding a match-everything literal shifts the estimate far past the
  // 4x threshold, so the hit must fall back to a full optimize.
  ASSERT_TRUE(engine.Run(SelectQuery(995)).ok());
  const PlanCacheStats before = PlanCache::Global().Stats();
  auto broad = engine.Run(SelectQuery(-1));
  ASSERT_TRUE(broad.ok());
  const PlanCacheStats after = PlanCache::Global().Stats();
  EXPECT_GE(after.recost_fallbacks - before.recost_fallbacks, 1u);

  RunOptions uncached;
  uncached.exec.use_plan_cache = false;
  auto ref = engine.Run(SelectQuery(-1), uncached);
  ASSERT_TRUE(ref.ok());
  ExpectSameRows(*ref, *broad);
  EXPECT_GT(broad->records.size(), 0u);

  // The fallback refreshed the template for the broad regime: an equal
  // rebinding now hits without tripping the guard again.
  const PlanCacheStats mid = PlanCache::Global().Stats();
  ASSERT_TRUE(engine.Run(SelectQuery(-2)).ok());
  const PlanCacheStats last = PlanCache::Global().Stats();
  EXPECT_GE(last.hits - mid.hits, 1u);
  EXPECT_EQ(last.recost_fallbacks, mid.recost_fallbacks);
}

// --- graceful degradation interplay ------------------------------------------

TEST(PlanCacheTest, CachedHitStillDegradesOnCacheBudget) {
  SKIP_IF_CACHE_DISABLED();
  Engine engine = MakeEngine();
  const Query q = ChainQuery(200, 32);

  // Warm the template without any budget.
  ASSERT_TRUE(engine.Run(q).ok());

  // A hit whose execution trips the operator-cache budget must still take
  // the graceful cache-free re-plan and produce the right rows/stats.
  RunOptions tight;
  tight.exec.guards.max_cache_bytes = 1;
  AccessStats degraded_stats;
  tight.stats = &degraded_stats;
  auto degraded = engine.Run(q, tight);
  ASSERT_TRUE(degraded.ok()) << degraded.status();

  RunOptions tight_uncached = tight;
  tight_uncached.exec.use_plan_cache = false;
  AccessStats ref_stats;
  tight_uncached.stats = &ref_stats;
  auto ref = engine.Run(q, tight_uncached);
  ASSERT_TRUE(ref.ok());
  ExpectSameRows(*ref, *degraded);
  ExpectSameStats(ref_stats, degraded_stats);

  // The degraded (cache-free) plan must NOT have replaced the template: a
  // later unconstrained run hits and uses the full-speed plan.
  const PlanCacheStats before = PlanCache::Global().Stats();
  AccessStats normal_stats;
  RunOptions normal;
  normal.stats = &normal_stats;
  auto unconstrained = engine.Run(q, normal);
  ASSERT_TRUE(unconstrained.ok());
  const PlanCacheStats after = PlanCache::Global().Stats();
  EXPECT_GE(after.hits - before.hits, 1u);
  EXPECT_GT(normal_stats.cache_stores, 0)
      << "hit after a degraded run must use the original caching plan";
}

// --- Prepare -----------------------------------------------------------------

TEST(PlanCacheTest, PrepareHitsTheCache) {
  SKIP_IF_CACHE_DISABLED();
  Engine engine = MakeEngine();
  ASSERT_TRUE(engine.Run(SelectQuery(300)).ok());
  const PlanCacheStats before = PlanCache::Global().Stats();
  auto prepared = engine.Prepare(SelectQuery(300));
  ASSERT_TRUE(prepared.ok());
  const PlanCacheStats after = PlanCache::Global().Stats();
  EXPECT_GE(after.hits - before.hits, 1u);

  auto run = prepared->Run(RunOptions{});
  ASSERT_TRUE(run.ok());
  RunOptions uncached;
  uncached.exec.use_plan_cache = false;
  auto ref = engine.Run(SelectQuery(300), uncached);
  ASSERT_TRUE(ref.ok());
  ExpectSameRows(*ref, *run);
}

// --- observability -----------------------------------------------------------

TEST(PlanCacheTest, RegistryRecordsPlanCachedFlag) {
  SKIP_IF_CACHE_DISABLED();
  Engine engine = MakeEngine();
  QueryRegistry& registry = QueryRegistry::Global();
  ASSERT_TRUE(registry.enabled());
  ASSERT_TRUE(engine.Run(SelectQuery(777)).ok());
  ASSERT_TRUE(engine.Run(SelectQuery(778)).ok());
  const auto recent = registry.Recent();
  ASSERT_GE(recent.size(), 2u);
  EXPECT_TRUE(recent[0].plan_cached);   // the warm run (most recent first)
  EXPECT_FALSE(recent[1].plan_cached);  // the cold run
}

TEST(PlanCacheTest, ProfiledRunsBypassReadsButKeepTraces) {
  SKIP_IF_CACHE_DISABLED();
  Engine engine = MakeEngine();
  ASSERT_TRUE(engine.Run(SelectQuery(555)).ok());
  // EXPLAIN ANALYZE on a cached shape must still show a real optimizer
  // trace (profiled runs re-optimize) and say so in a note.
  auto analyze = engine.ExplainAnalyze(SelectQuery(555));
  ASSERT_TRUE(analyze.ok()) << analyze.status();
  EXPECT_NE(analyze->find("plan cache"), std::string::npos);
}

// --- RunText -----------------------------------------------------------------

TEST(PlanCacheTest, RunTextBindsLiteralTokensOnRepeat) {
  SKIP_IF_CACHE_DISABLED();
  Engine engine = MakeEngine();
  const PlanCacheStats before = PlanCache::Global().Stats();
  auto cold = engine.RunText("q = select(s, value > 500);");
  ASSERT_TRUE(cold.ok()) << cold.status();
  // Same shape, new literal: served without lexing/parsing/planning.
  auto warm = engine.RunText("q = select(s, value > 250);");
  ASSERT_TRUE(warm.ok());
  const PlanCacheStats after = PlanCache::Global().Stats();
  EXPECT_GE(after.text_hits - before.text_hits, 1u);

  RunOptions uncached;
  uncached.exec.use_plan_cache = false;
  auto ref = engine.Run(
      Query{SeqRef("s").Select(Gt(Col("value"), Lit(int64_t{250}))).Build(),
            std::nullopt,
            {},
            ""},
      uncached);
  ASSERT_TRUE(ref.ok());
  ExpectSameRows(*ref, *warm);
  EXPECT_GT(warm->records.size(), 0u);
  EXPECT_NE(warm->records.size(), cold->records.size());
}

TEST(PlanCacheTest, RunTextDoubleAndRangeHandling) {
  SKIP_IF_CACHE_DISABLED();
  Engine engine;
  EventSeriesOptions eq;
  eq.span = Span::Of(1, 2000);
  eq.density = 0.4;
  eq.seed = 5;
  ASSERT_TRUE(engine.RegisterBase("quakes", *MakeEarthquakes(eq)).ok());

  const Span range = Span::Of(1, 2000);
  auto cold = engine.RunText("q = select(quakes, strength > 7.0);", range);
  ASSERT_TRUE(cold.ok()) << cold.status();
  auto warm = engine.RunText("q = select(quakes, strength > 5.5);", range);
  ASSERT_TRUE(warm.ok());

  RunOptions uncached;
  uncached.exec.use_plan_cache = false;
  Query ref_q;
  ref_q.graph = SeqRef("quakes").Select(Gt(Col("strength"), Lit(5.5))).Build();
  ref_q.range = range;
  auto ref = engine.Run(ref_q, uncached);
  ASSERT_TRUE(ref.ok());
  ExpectSameRows(*ref, *warm);

  // A different range must not reuse the range-baked plan.
  auto narrow =
      engine.RunText("q = select(quakes, strength > 5.5);", Span::Of(1, 500));
  ASSERT_TRUE(narrow.ok());
  EXPECT_LE(narrow->records.size(), warm->records.size());
  ref_q.range = Span::Of(1, 500);
  auto narrow_ref = engine.Run(ref_q, uncached);
  ASSERT_TRUE(narrow_ref.ok());
  ExpectSameRows(*narrow_ref, *narrow);
}

TEST(PlanCacheTest, RunTextStructuralLiteralsNeverBindWrong) {
  SKIP_IF_CACHE_DISABLED();
  Engine engine = MakeEngine();
  // Window sizes are literal TOKENS in the text but structure in the plan.
  // The text tier must refuse to bind them; both runs parse, and each gets
  // its own correct plan.
  auto w8 = engine.RunText("q = sum(s, value, over 8);");
  ASSERT_TRUE(w8.ok()) << w8.status();
  auto w3 = engine.RunText("q = sum(s, value, over 3);");
  ASSERT_TRUE(w3.ok());

  RunOptions uncached;
  uncached.exec.use_plan_cache = false;
  Query ref_q;
  ref_q.graph = SeqRef("s").Agg(AggFunc::kSum, "value", 3).Build();
  auto ref = engine.Run(ref_q, uncached);
  ASSERT_TRUE(ref.ok());
  ExpectSameRows(*ref, *w3);
}

TEST(PlanCacheTest, RunTextMultiStatementStaysCorrect) {
  SKIP_IF_CACHE_DISABLED();
  Engine engine = MakeEngine();
  const std::string program =
      "high = select(s, value > 600);\n"
      "q = sum(high, value, over 4);";
  auto first = engine.RunText(program);
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = engine.RunText(program);
  ASSERT_TRUE(second.ok());
  ExpectSameRows(*first, *second);
}

// --- capacity / LRU ----------------------------------------------------------

TEST(PlanCacheTest, LruEvictsByEntryCap) {
  // A private instance (8 shards, 8 entries total -> 1 per shard) so the
  // test controls capacity without touching the global cache.
  PlanCache cache(/*max_entries=*/8, /*max_bytes=*/1 << 20);
  for (int i = 0; i < 64; ++i) {
    auto entry = std::make_shared<PlanCacheEntry>();
    entry->engine_id = 1;
    entry->bytes = 100;
    cache.Insert("key" + std::to_string(i), std::move(entry));
  }
  const PlanCacheStats stats = cache.Stats();
  EXPECT_LE(stats.entries, 8u);
  EXPECT_GE(stats.evictions, 56u);
}

TEST(PlanCacheTest, LruEvictsByByteCap) {
  PlanCache cache(/*max_entries=*/1024, /*max_bytes=*/8 * 1000);
  for (int i = 0; i < 64; ++i) {
    auto entry = std::make_shared<PlanCacheEntry>();
    entry->engine_id = 1;
    entry->bytes = 600;  // per-shard byte cap is 1000 -> at most 1 each
    cache.Insert("key" + std::to_string(i), std::move(entry));
  }
  const PlanCacheStats stats = cache.Stats();
  EXPECT_LE(stats.bytes, 8u * 1000u);
  EXPECT_GE(stats.evictions, 1u);
}

TEST(PlanCacheTest, DisableClearsAndStopsServing) {
  PlanCache cache(/*max_entries=*/16, /*max_bytes=*/1 << 20);
  auto entry = std::make_shared<PlanCacheEntry>();
  entry->engine_id = 1;
  entry->bytes = 10;
  cache.Insert("k", std::move(entry));
  EXPECT_NE(cache.Lookup("k"), nullptr);
  cache.set_enabled(false);
  EXPECT_EQ(cache.Lookup("k"), nullptr);
  cache.set_enabled(true);
  EXPECT_EQ(cache.Lookup("k"), nullptr) << "re-enabling must start cold";
}

// --- concurrency -------------------------------------------------------------

TEST(PlanCacheTest, ConcurrentHitsMissesAndInvalidations) {
  SKIP_IF_CACHE_DISABLED();
  // 8 threads hammer one shared engine with a rotating set of shapes and
  // literals (mixed hits, misses and rebinds) while 2 more threads churn
  // engines of their own (their destructors run concurrent invalidation)
  // and toggle/clear the global cache. Run under TSan in CI.
  Engine engine = MakeEngine(29);
  constexpr int kQueryThreads = 8;
  constexpr int kRunsPerThread = 40;

  std::vector<std::thread> threads;
  threads.reserve(kQueryThreads + 2);
  std::atomic<int> failures{0};
  for (int t = 0; t < kQueryThreads; ++t) {
    threads.emplace_back([&engine, &failures, t] {
      for (int i = 0; i < kRunsPerThread; ++i) {
        const int64_t literal = 100 + 50 * ((t + i) % 7);
        Result<QueryResult> got =
            (i % 3 == 0) ? engine.Run(ChainQuery(literal, 4 + t % 3))
                         : engine.Run(SelectQuery(literal));
        if (!got.ok()) {
          failures.fetch_add(1);
          continue;
        }
        RunOptions uncached;
        uncached.exec.use_plan_cache = false;
        Result<QueryResult> want =
            (i % 3 == 0)
                ? engine.Run(ChainQuery(literal, 4 + t % 3), uncached)
                : engine.Run(SelectQuery(literal), uncached);
        if (!want.ok() || want->records.size() != got->records.size()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  threads.emplace_back([&failures] {
    for (int i = 0; i < 20; ++i) {
      Engine churn = MakeEngine(100 + i);
      if (!churn.Run(SelectQuery(500)).ok()) failures.fetch_add(1);
      // ~churn invalidates its entries concurrently with the readers.
    }
  });
  threads.emplace_back([] {
    for (int i = 0; i < 20; ++i) {
      PlanCache::Global().Clear();
      PlanCache::Global().set_enabled(false);
      PlanCache::Global().set_enabled(true);
      std::this_thread::yield();
    }
  });
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace seq
