// Unit tests for the incremental window-aggregation state (the machinery
// behind Cache-Strategy-A's O(1)-per-record property).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "exec/window_state.h"

namespace seq {
namespace {

TEST(WindowStateTest, SumCountAvgIncremental) {
  WindowState state(AggFunc::kSum, TypeId::kInt64);
  state.Add(1, Value::Int64(10), nullptr);
  state.Add(2, Value::Int64(20), nullptr);
  state.Add(3, Value::Int64(30), nullptr);
  EXPECT_EQ(state.count(), 3);
  EXPECT_EQ(state.Current().int64(), 60);
  state.EvictBefore(2);
  EXPECT_EQ(state.count(), 2);
  EXPECT_EQ(state.Current().int64(), 50);
  state.EvictBefore(4);
  EXPECT_EQ(state.count(), 0);
}

TEST(WindowStateTest, DoubleSumStaysDouble) {
  WindowState state(AggFunc::kSum, TypeId::kDouble);
  state.Add(1, Value::Double(1.5), nullptr);
  state.Add(2, Value::Double(2.5), nullptr);
  EXPECT_EQ(state.Current().type(), TypeId::kDouble);
  EXPECT_DOUBLE_EQ(state.Current().dbl(), 4.0);
}

TEST(WindowStateTest, AvgIsDouble) {
  WindowState state(AggFunc::kAvg, TypeId::kInt64);
  state.Add(1, Value::Int64(1), nullptr);
  state.Add(2, Value::Int64(2), nullptr);
  EXPECT_DOUBLE_EQ(state.Current().dbl(), 1.5);
}

TEST(WindowStateTest, CountWorksOnStrings) {
  WindowState state(AggFunc::kCount, TypeId::kString);
  state.Add(1, Value::String("a"), nullptr);
  state.Add(5, Value::String("b"), nullptr);
  EXPECT_EQ(state.Current().int64(), 2);
}

TEST(WindowStateTest, MinMaxMonotonicQueues) {
  WindowState min_state(AggFunc::kMin, TypeId::kInt64);
  WindowState max_state(AggFunc::kMax, TypeId::kInt64);
  const int64_t values[] = {5, 3, 8, 1, 9, 2};
  for (int i = 0; i < 6; ++i) {
    min_state.Add(i, Value::Int64(values[i]), nullptr);
    max_state.Add(i, Value::Int64(values[i]), nullptr);
  }
  EXPECT_EQ(min_state.Current().int64(), 1);
  EXPECT_EQ(max_state.Current().int64(), 9);
  // Evicting the global extrema exposes the runner-up inside the window.
  min_state.EvictBefore(4);  // keep {9, 2}
  max_state.EvictBefore(5);  // keep {2}
  EXPECT_EQ(min_state.Current().int64(), 2);
  EXPECT_EQ(max_state.Current().int64(), 2);
}

TEST(WindowStateTest, MinMaxOnStrings) {
  WindowState state(AggFunc::kMax, TypeId::kString);
  state.Add(1, Value::String("pear"), nullptr);
  state.Add(2, Value::String("apple"), nullptr);
  EXPECT_EQ(state.Current().str(), "pear");
  state.EvictBefore(2);
  EXPECT_EQ(state.Current().str(), "apple");
}

TEST(WindowStateTest, AggStepCounterCharges) {
  AccessStats stats;
  ExecContext ctx;
  ctx.stats = &stats;
  WindowState state(AggFunc::kSum, TypeId::kInt64);
  state.Add(1, Value::Int64(1), &ctx);
  state.Add(2, Value::Int64(2), &ctx);
  EXPECT_EQ(stats.agg_steps, 2);
}

// Property sweep: the sliding window must match a fresh recomputation at
// every step for every function.
class WindowSlideSweep
    : public ::testing::TestWithParam<std::tuple<int, int64_t>> {};

TEST_P(WindowSlideSweep, MatchesFreshRecomputation) {
  auto [func_idx, window] = GetParam();
  AggFunc func = static_cast<AggFunc>(func_idx);
  Rng rng(static_cast<uint64_t>(func_idx * 100 + window));
  std::vector<int64_t> values;
  for (int i = 0; i < 200; ++i) values.push_back(rng.UniformInt(-50, 50));

  WindowState sliding(func, TypeId::kInt64);
  for (Position p = 0; p < 200; ++p) {
    sliding.Add(p, Value::Int64(values[static_cast<size_t>(p)]), nullptr);
    sliding.EvictBefore(p - window + 1);
    WindowState fresh(func, TypeId::kInt64);
    for (Position q = std::max<Position>(0, p - window + 1); q <= p; ++q) {
      fresh.Add(q, Value::Int64(values[static_cast<size_t>(q)]), nullptr);
    }
    ASSERT_EQ(sliding.count(), fresh.count()) << "p=" << p;
    if (func == AggFunc::kAvg) {
      ASSERT_NEAR(sliding.Current().dbl(), fresh.Current().dbl(), 1e-9);
    } else {
      ASSERT_EQ(sliding.Current().Compare(fresh.Current()), 0)
          << AggFuncName(func) << " p=" << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WindowSlideSweep,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values<int64_t>(1, 3, 8, 32)));

}  // namespace
}  // namespace seq
