// Error-path tests: every user mistake must surface as a descriptive
// Status of the right category, never a crash — plus robustness sweeps
// (parser fuzz, concurrent read-only queries).

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <thread>

#include "common/rng.h"
#include "core/engine.h"
#include "exec/fault_injector.h"
#include "parser/parser.h"
#include "workload/generators.h"

namespace seq {
namespace {

class ErrorsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    IntSeriesOptions options;
    options.span = Span::Of(0, 99);
    options.density = 1.0;
    options.seed = 4;
    ASSERT_TRUE(engine_.RegisterBase("s", *MakeIntSeries(options)).ok());
  }
  Engine engine_;
};

TEST_F(ErrorsTest, UnknownSequence) {
  auto r = engine_.Run(SeqRef("ghost").Build());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_NE(r.status().message().find("ghost"), std::string::npos);
}

TEST_F(ErrorsTest, UnknownColumnInSelect) {
  auto r = engine_.Run(
      SeqRef("s").Select(Gt(Col("nope"), Lit(1.0))).Build());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(ErrorsTest, UnknownColumnInProjectAggCollapse) {
  EXPECT_FALSE(engine_.Run(SeqRef("s").Project({"zz"}).Build()).ok());
  EXPECT_FALSE(
      engine_.Run(SeqRef("s").Agg(AggFunc::kSum, "zz", 3).Build()).ok());
  EXPECT_FALSE(
      engine_.Run(SeqRef("s").Collapse(5, AggFunc::kSum, "zz").Build())
          .ok());
}

TEST_F(ErrorsTest, TypeErrors) {
  // Comparing int column to string literal.
  auto r1 = engine_.Run(
      SeqRef("s").Select(Gt(Col("value"), Lit("abc"))).Build());
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kTypeError);
  // Non-bool predicate.
  auto r2 = engine_.Run(
      SeqRef("s").Select(Add(Col("value"), Lit(int64_t{1}))).Build());
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kTypeError);
}

TEST_F(ErrorsTest, ComposePredicateSideValidation) {
  // A right-side reference in a single-input select.
  auto r = engine_.Run(
      SeqRef("s").Select(Gt(Col("value", 1), Lit(1.0))).Build());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
}

TEST_F(ErrorsTest, ConstantRefToBaseAndViceVersa) {
  SchemaPtr cschema = Schema::Make({Field{"k", TypeId::kDouble}});
  ASSERT_TRUE(engine_
                  .RegisterConstant("c", cschema, Record{Value::Double(1.0)})
                  .ok());
  EXPECT_FALSE(engine_.Run(ConstRef("s").Build()).ok());
  EXPECT_FALSE(engine_.Run(SeqRef("c").Build()).ok());
}

TEST_F(ErrorsTest, UnboundedQueryOverConstantsRejected) {
  SchemaPtr cschema = Schema::Make({Field{"k", TypeId::kDouble}});
  ASSERT_TRUE(engine_
                  .RegisterConstant("c", cschema, Record{Value::Double(1.0)})
                  .ok());
  // A constant alone has no finite span and no base to bound it.
  auto r = engine_.Run(ConstRef("c").Build());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // With an explicit range it works and is dense.
  auto bounded = engine_.Run(ConstRef("c").Build(), Span::Of(1, 5));
  ASSERT_TRUE(bounded.ok()) << bounded.status();
  EXPECT_EQ(bounded->records.size(), 5u);
}

TEST_F(ErrorsTest, UnsortedPointPositionsRejected) {
  Query q;
  q.graph = SeqRef("s").Build();
  q.positions = {5, 3};
  auto r = engine_.Plan(q);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ErrorsTest, EmptyRangeYieldsEmptyResultNotError) {
  auto r = engine_.Run(SeqRef("s").Build(), Span::Of(500, 600));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->records.empty());
  auto r2 = engine_.Run(SeqRef("s").Build(), Span::Empty());
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->records.empty());
}

TEST_F(ErrorsTest, StatusRendering) {
  Status s = Status::TypeError("boom");
  EXPECT_EQ(s.ToString(), "TypeError: boom");
  std::ostringstream oss;
  oss << s;
  EXPECT_EQ(oss.str(), "TypeError: boom");
  EXPECT_EQ(Status::OK().ToString(), "OK");
}

// --- injected-fault labeling (record-k error propagation) -----------------------

// A mid-stream fault at record k must surface as a Status naming the
// failing operator and the position it was processing — that pair is what
// makes a production incident debuggable. The sites that carry positions
// are per-record polls: kPageRead (scans) and kExprEval (predicates).
TEST_F(ErrorsTest, RecordKFaultCarriesOperatorLabelAndPosition) {
  struct Case {
    const char* name;
    QueryBuilder query;
    FaultSite site;
    int64_t k;
    const char* want_label;
    Position want_pos;
  };
  const QueryBuilder scan = SeqRef("s");
  const QueryBuilder select =
      SeqRef("s").Select(Gt(Col("value"), Lit(int64_t{-1})));
  // "s" is dense over [0, 99], so the k-th per-record poll is position k-1.
  const std::vector<Case> cases = {
      {"scan-first-read", scan, FaultSite::kPageRead, 1, "op=BaseScan", 0},
      {"scan-kth-read", scan, FaultSite::kPageRead, 25, "op=BaseScan", 24},
      {"select-first-eval", select, FaultSite::kExprEval, 1, "op=Select", 0},
      {"select-kth-eval", select, FaultSite::kExprEval, 42, "op=Select", 41},
  };
  for (bool use_batch : {true, false}) {
    for (const Case& c : cases) {
      FaultInjector injector;
      injector.ArmAfter(c.site, c.k);
      RunOptions opts;
      opts.exec.use_batch = use_batch;
      opts.exec.fault_injector = &injector;
      auto r = engine_.Run(c.query.Build(), Span::Of(0, 99), opts);
      std::string label = std::string(c.name) +
                          (use_batch ? " [batch]" : " [tuple]");
      ASSERT_FALSE(r.ok()) << label;
      EXPECT_EQ(r.status().code(), StatusCode::kUnavailable) << label;
      const std::string& msg = r.status().message();
      EXPECT_NE(msg.find("injected fault"), std::string::npos)
          << label << ": " << msg;
      EXPECT_NE(msg.find(c.want_label), std::string::npos)
          << label << ": " << msg;
      EXPECT_NE(msg.find("pos=" + std::to_string(c.want_pos) + " "),
                std::string::npos)
          << label << ": " << msg;
    }
  }
}

// Open-time faults carry no position (nothing is flowing yet) but must
// still name the operator that failed to initialize. Sweeping the trigger
// count over a single-operator query eventually lands on that operator's
// Open, for every operator kind.
TEST_F(ErrorsTest, OpenFaultNamesEveryOperatorKind) {
  struct Case {
    const char* want_label_prefix;
    QueryBuilder query;
  };
  // "prices" has several columns so the projection below is not an
  // identity (identity projects are rewritten away and never open).
  StockSeriesOptions stock;
  stock.span = Span::Of(0, 99);
  stock.seed = 11;
  ASSERT_TRUE(engine_.RegisterBase("prices", *MakeStockSeries(stock)).ok());
  const std::vector<Case> cases = {
      {"BaseScan", SeqRef("s")},
      {"Select", SeqRef("s").Select(Gt(Col("value"), Lit(int64_t{-1})))},
      {"Project", SeqRef("prices").Project({"close"})},
      {"PosOffset", SeqRef("s").Offset(2)},
      {"ValueOffset", SeqRef("s").Prev()},
      {"WindowAgg", SeqRef("s").Agg(AggFunc::kAvg, "value", 4)},
      // Range queries over running/overall aggregates plan as a probed
      // materialization, so that is the operator whose Open can fail.
      {"MaterializedAgg", SeqRef("s").RunningAgg(AggFunc::kSum, "value")},
      {"MaterializedAgg", SeqRef("s").OverallAgg(AggFunc::kMax, "value")},
      {"Compose", SeqRef("s").ComposeWith(SeqRef("s").Offset(1))},
      {"Collapse", SeqRef("s").Collapse(5, AggFunc::kSum, "value")},
      {"Expand", SeqRef("s").Collapse(5, AggFunc::kAvg, "value").Expand(5)},
  };
  for (const Case& c : cases) {
    std::set<std::string> labels;
    for (int64_t k = 1; k <= 8; ++k) {
      FaultInjector injector;
      injector.ArmAfter(FaultSite::kOperatorOpen, k);
      RunOptions opts;
      opts.exec.fault_injector = &injector;
      auto r = engine_.Run(c.query.Build(), Span::Of(0, 99), opts);
      if (injector.fired() == 0) {
        // Fewer than k Opens in the whole plan: the sweep is done.
        EXPECT_TRUE(r.ok()) << c.want_label_prefix << " k=" << k << ": "
                            << r.status();
        break;
      }
      ASSERT_FALSE(r.ok()) << c.want_label_prefix << " k=" << k;
      EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
      const std::string& msg = r.status().message();
      size_t at = msg.find("op=");
      ASSERT_NE(at, std::string::npos) << msg;
      size_t end = msg.find_first_of(" ]", at);
      labels.insert(msg.substr(at + 3, end - at - 3));
    }
    bool found = false;
    for (const std::string& l : labels) {
      if (l.rfind(c.want_label_prefix, 0) == 0) found = true;
    }
    EXPECT_TRUE(found) << c.want_label_prefix << " not among "
                       << labels.size() << " open-fault labels";
  }
}

// --- parser fuzz ---------------------------------------------------------------

TEST(ParserFuzzTest, RandomBytesNeverCrash) {
  Rng rng(2024);
  for (int trial = 0; trial < 500; ++trial) {
    std::string input;
    int len = static_cast<int>(rng.UniformInt(0, 60));
    for (int i = 0; i < len; ++i) {
      input.push_back(static_cast<char>(rng.UniformInt(32, 126)));
    }
    (void)ParseSequin(input);  // must return a Status, never crash
  }
}

TEST(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  Rng rng(2025);
  const char* tokens[] = {"select", "(", ")", ",", ";", "=",   "prev",
                          "over",   "s", "x", "1", "+", "and", "\"q\"",
                          "compose", "as", ".", "pos", "running"};
  for (int trial = 0; trial < 500; ++trial) {
    std::string input;
    int len = static_cast<int>(rng.UniformInt(1, 25));
    for (int i = 0; i < len; ++i) {
      input += tokens[rng.UniformInt(0, 18)];
      input += " ";
    }
    (void)ParseSequin(input);
  }
}

// --- concurrent read-only queries ------------------------------------------------

TEST(ConcurrencyTest, ParallelQueriesOnSharedEngine) {
  Engine engine;
  StockSeriesOptions s;
  s.span = Span::Of(1, 5000);
  s.density = 0.9;
  s.seed = 17;
  ASSERT_TRUE(engine.RegisterBase("prices", *MakeStockSeries(s)).ok());

  auto query = SeqRef("prices")
                   .Select(Gt(Col("close"), Lit(95.0)))
                   .Agg(AggFunc::kAvg, "close", 7)
                   .Build();
  auto reference = engine.Run(query);
  ASSERT_TRUE(reference.ok());
  size_t expected = reference->records.size();

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 20; ++i) {
        auto result = engine.Run(query);
        if (!result.ok() || result->records.size() != expected) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace seq
