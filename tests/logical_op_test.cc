// Unit tests for the logical operator layer: construction invariants,
// deep cloning, leaf collection, descriptions, and the builder.

#include <gtest/gtest.h>

#include "logical/builder.h"
#include "logical/logical_op.h"

namespace seq {
namespace {

TEST(LogicalOpTest, FactoryShapes) {
  auto base = LogicalOp::BaseRef("s");
  EXPECT_EQ(base->kind(), OpKind::kBaseRef);
  EXPECT_EQ(base->arity(), 0u);
  EXPECT_EQ(base->seq_name(), "s");

  auto select = LogicalOp::Select(base, Gt(Col("v"), Lit(1.0)));
  EXPECT_EQ(select->arity(), 1u);
  EXPECT_EQ(select->input()->kind(), OpKind::kBaseRef);

  auto compose = LogicalOp::Compose(base, LogicalOp::BaseRef("t"));
  EXPECT_EQ(compose->arity(), 2u);
}

TEST(LogicalOpTest, AggFactories) {
  auto trailing =
      LogicalOp::WindowAgg(LogicalOp::BaseRef("s"), AggFunc::kSum, "v", 5);
  EXPECT_EQ(trailing->window_kind(), WindowKind::kTrailing);
  EXPECT_EQ(trailing->window(), 5);
  auto running =
      LogicalOp::RunningAgg(LogicalOp::BaseRef("s"), AggFunc::kMin, "v");
  EXPECT_EQ(running->window_kind(), WindowKind::kRunning);
  auto overall =
      LogicalOp::OverallAgg(LogicalOp::BaseRef("s"), AggFunc::kMax, "v",
                            "peak");
  EXPECT_EQ(overall->window_kind(), WindowKind::kAll);
  EXPECT_EQ(overall->output_name(), "peak");
}

TEST(LogicalOpTest, CloneIsDeep) {
  auto original = SeqRef("s")
                      .Select(Gt(Col("v"), Lit(1.0)))
                      .ComposeWith(SeqRef("t").Prev())
                      .Build();
  auto clone = original->Clone();
  EXPECT_NE(clone.get(), original.get());
  EXPECT_NE(clone->input(0).get(), original->input(0).get());
  EXPECT_NE(clone->input(1).get(), original->input(1).get());
  // Expressions are immutable and intentionally shared.
  EXPECT_EQ(clone->input(0)->predicate().get(),
            original->input(0)->predicate().get());
  // Mutating the clone's structure leaves the original intact.
  clone->mutable_input(0) = LogicalOp::BaseRef("other");
  EXPECT_EQ(original->input(0)->kind(), OpKind::kSelect);
}

TEST(LogicalOpTest, CollectLeavesInOrder) {
  auto q = SeqRef("a")
               .ComposeWith(SeqRef("b").ComposeWith(ConstRef("c")))
               .Build();
  std::vector<const LogicalOp*> leaves;
  q->CollectLeaves(&leaves);
  ASSERT_EQ(leaves.size(), 3u);
  EXPECT_EQ(leaves[0]->seq_name(), "a");
  EXPECT_EQ(leaves[1]->seq_name(), "b");
  EXPECT_EQ(leaves[2]->seq_name(), "c");
  EXPECT_EQ(leaves[2]->kind(), OpKind::kConstantRef);
}

TEST(LogicalOpTest, DescribeForms) {
  EXPECT_EQ(LogicalOp::BaseRef("s")->Describe(), "BaseRef(s)");
  EXPECT_EQ(LogicalOp::Select(LogicalOp::BaseRef("s"),
                              Gt(Col("v"), Lit(int64_t{3})))
                ->Describe(),
            "Select((v > 3))");
  EXPECT_EQ(LogicalOp::Project(LogicalOp::BaseRef("s"), {"a", "b"},
                               {"", "bee"})
                ->Describe(),
            "Project(a, b as bee)");
  EXPECT_EQ(LogicalOp::PositionalOffset(LogicalOp::BaseRef("s"), -4)
                ->Describe(),
            "PositionalOffset(-4)");
  EXPECT_EQ(LogicalOp::WindowAgg(LogicalOp::BaseRef("s"), AggFunc::kAvg,
                                 "v", 3)
                ->Describe(),
            "WindowAgg(avg v over 3)");
  EXPECT_EQ(LogicalOp::RunningAgg(LogicalOp::BaseRef("s"), AggFunc::kSum,
                                  "v")
                ->Describe(),
            "WindowAgg(sum v running)");
  EXPECT_EQ(LogicalOp::Collapse(LogicalOp::BaseRef("s"), 7, AggFunc::kMax,
                                "v")
                ->Describe(),
            "Collapse(max v by 7)");
}

TEST(LogicalOpTest, TreeStringIndentsAndShowsMeta) {
  auto q = SeqRef("s").Prev().Build();
  std::string text = q->ToTreeString();
  EXPECT_NE(text.find("ValueOffset(-1)\n"), std::string::npos);
  EXPECT_NE(text.find("  BaseRef(s)"), std::string::npos);
  // Unannotated: no meta braces.
  EXPECT_EQ(text.find("span="), std::string::npos);
}

TEST(BuilderTest, ChainingIsValueSemantics) {
  QueryBuilder base = SeqRef("s");
  QueryBuilder a = base.Select(Gt(Col("v"), Lit(1.0)));
  QueryBuilder b = base.Offset(3);
  // Both derive from the same base without interference.
  EXPECT_EQ(a.Build()->kind(), OpKind::kSelect);
  EXPECT_EQ(b.Build()->kind(), OpKind::kPositionalOffset);
  EXPECT_EQ(a.Build()->input().get(), b.Build()->input().get());
}

TEST(LogicalOpTest, NonUnitScopeClassification) {
  auto base = LogicalOp::BaseRef("s");
  EXPECT_FALSE(LogicalOp::Select(base, Gt(Col("v"), Lit(1.0)))
                   ->IsNonUnitScope());
  EXPECT_FALSE(LogicalOp::PositionalOffset(base, 5)->IsNonUnitScope());
  EXPECT_TRUE(LogicalOp::ValueOffset(base, -1)->IsNonUnitScope());
  EXPECT_TRUE(LogicalOp::WindowAgg(base, AggFunc::kSum, "v", 2)
                  ->IsNonUnitScope());
  EXPECT_TRUE(LogicalOp::Collapse(base, 7, AggFunc::kSum, "v")
                  ->IsNonUnitScope());
  EXPECT_FALSE(LogicalOp::Compose(base, base)->IsNonUnitScope());
}

}  // namespace
}  // namespace seq
