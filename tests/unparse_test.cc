// Tests for the Sequin unparser, including the parse(unparse(g)) ≡ g
// round-trip property over random graphs.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "parser/parser.h"
#include "parser/unparse.h"
#include "tests/test_util.h"

namespace seq {
namespace {

using seq::testing::ExpectSameRecords;
using seq::testing::FillSmallCatalog;
using seq::testing::RandomGraph;

TEST(UnparseTest, RendersEveryOperator) {
  auto q = SeqRef("s")
               .Select(And(Gt(Col("v"), Lit(1.5)), Not(Col("flag"))))
               .Project({"v"}, {"x"})
               .Offset(-3)
               .Prev()
               .Agg(AggFunc::kAvg, "x", 6, "m")
               .ComposeWith(ConstRef("k"), Gt(Col("m", 0), Col("c", 1)))
               .Collapse(7, AggFunc::kMax, "m", "wk")
               .Build();
  auto text = UnparseQuery(*q, "out");
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_EQ(*text,
            "out = collapse(compose(avg(prev(offset(project(select(s, "
            "((v > 1.5) and not flag)), v as x), -3)), x, over 6, as m), "
            "const(k), (m > right.c)), 7, max, m, as wk);");
  // And it parses back to the same structure.
  auto reparsed = ParseSequinQuery(*text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ((*reparsed)->kind(), OpKind::kCollapse);
  EXPECT_EQ((*reparsed)->output_name(), "wk");
}

TEST(UnparseTest, ExprForms) {
  EXPECT_EQ(UnparseExpr(*Gt(Col("a", 1), Lit(int64_t{3}))),
            "(right.a > 3)");
  EXPECT_EQ(UnparseExpr(*Eq(Col("s"), Lit("hi"))), "(s == \"hi\")");
  EXPECT_EQ(UnparseExpr(*Ge(Expr::Position(), Lit(int64_t{5}))),
            "(pos() >= 5)");
  EXPECT_EQ(UnparseExpr(*Expr::Unary(
                UnaryOp::kAbs, Sub(Col("a"), Col("b")))),
            "abs((a - b))");
  EXPECT_EQ(UnparseExpr(*Expr::Unary(UnaryOp::kNeg, Col("a"))), "-a");
}

TEST(UnparseTest, VoffsetSpellsPrevNextAndGeneral) {
  auto prev = UnparseQuery(*SeqRef("s").Prev().Build());
  EXPECT_EQ(*prev, "q = prev(s);");
  auto next = UnparseQuery(*SeqRef("s").Next().Build());
  EXPECT_EQ(*next, "q = next(s);");
  auto general = UnparseQuery(*SeqRef("s").ValueOffset(-4).Build());
  EXPECT_EQ(*general, "q = voffset(s, -4);");
}

class RoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundTripTest, ParseOfUnparseRunsIdentically) {
  uint64_t seed = GetParam();
  Engine engine;
  FillSmallCatalog(&engine.catalog(), seed);
  Rng rng(seed * 31 + 7);
  for (int trial = 0; trial < 8; ++trial) {
    LogicalOpPtr graph = RandomGraph(engine.catalog(), &rng, 1 + trial % 4);
    auto text = UnparseQuery(*graph);
    ASSERT_TRUE(text.ok()) << text.status();
    auto reparsed = ParseSequinQuery(*text);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << *text;
    Span range = Span::Of(-20, 420);
    auto original = engine.Run(graph, range);
    auto round_trip = engine.Run(*reparsed, range);
    ASSERT_EQ(original.ok(), round_trip.ok()) << *text;
    if (!original.ok()) continue;
    ExpectSameRecords(original->records, round_trip->records, *text);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripTest,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace seq
