// Tests for the process-wide query scheduler (exec/scheduler.h): admission
// control (slots, bounded queue, timeouts, priorities), FIFO + fair
// round-robin task dispatch on the shared worker pool, the executor
// integration (16 concurrent queries never exceed the configured worker
// count, rows+stats byte-identical to serial), and the ThreadPool::Wait
// poll-loop fix.
//
// The stress test asserts on QueryScheduler::Global()'s monotone
// peak_active_workers, so it must be the FIRST test in this binary to run
// a parallel query on the global scheduler — suites below are declared in
// that order; keep it that way.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "exec/scheduler.h"
#include "exec/thread_pool.h"
#include "obs/query_registry.h"
#include "workload/generators.h"

namespace seq {
namespace {

// --- env-knob validation ----------------------------------------------------

TEST(ValidatedEnvIntTest, AcceptsWholeStringIntegersOnly) {
  constexpr const char* kVar = "SEQ_TEST_ENV_INT";
  unsetenv(kVar);
  EXPECT_EQ(ValidatedEnvInt(kVar, 1, 7), 7);

  setenv(kVar, "4", 1);
  EXPECT_EQ(ValidatedEnvInt(kVar, 1, 7), 4);

  // Garbage, trailing junk, negatives and below-minimum values are all
  // rejected with the fallback instead of silently adopted (the old
  // std::atoi path turned "8garbage" into 8 and "banana" into 0).
  setenv(kVar, "banana", 1);
  EXPECT_EQ(ValidatedEnvInt(kVar, 1, 7), 7);
  setenv(kVar, "8garbage", 1);
  EXPECT_EQ(ValidatedEnvInt(kVar, 1, 7), 7);
  setenv(kVar, "-3", 1);
  EXPECT_EQ(ValidatedEnvInt(kVar, 1, 7), 7);
  setenv(kVar, "0", 1);
  EXPECT_EQ(ValidatedEnvInt(kVar, 1, 7), 7);
  setenv(kVar, "", 1);
  EXPECT_EQ(ValidatedEnvInt(kVar, 1, 7), 7);
  setenv(kVar, "99999999999999999999", 1);  // overflows long
  EXPECT_EQ(ValidatedEnvInt(kVar, 1, 7), 7);

  // min_value 0 admits zero (the shape .sched limit uses).
  setenv(kVar, "0", 1);
  EXPECT_EQ(ValidatedEnvInt(kVar, 0, 7), 0);
  unsetenv(kVar);
}

// --- ThreadPool wait/poll ---------------------------------------------------

TEST(ThreadPoolTest, WaitWithPollReturnsAndStopsPolling) {
  std::atomic<int> ran{0};
  std::atomic<int> polls{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 8; ++i) {
      pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        ran.fetch_add(1);
      });
    }
    pool.Wait([&polls] { polls.fetch_add(1); });
    EXPECT_EQ(ran.load(), 8);
    const int polls_at_done = polls.load();
    // The fixed loop re-checks the completion predicate before re-arming:
    // once pending hit zero the waiter must not keep waking to poll.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(polls.load(), polls_at_done);

    // A second Wait on a drained pool returns immediately, poll or not.
    pool.Wait([&polls] { polls.fetch_add(1); });
    pool.Wait();
  }
}

// --- dispatch order ---------------------------------------------------------

TEST(QuerySchedulerTest, SingleWorkerClaimsTasksFifo) {
  QueryScheduler sched;
  sched.SetWorkers(1);
  std::mutex mu;
  std::vector<size_t> order;
  sched.RunGroup(16, /*share_cap=*/1, QueryPriority::kNormal, [&](size_t i) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 16u);
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i) << "tasks must be claimed in submission order "
                              "(the old per-query pool drained LIFO)";
  }
  const SchedulerStats stats = sched.Stats();
  EXPECT_EQ(stats.tasks, 16);
  EXPECT_EQ(stats.groups, 1);
  EXPECT_LE(stats.peak_active_workers, 1);
}

TEST(QuerySchedulerTest, ShareCapBoundsConcurrencyWithinOneGroup) {
  QueryScheduler sched;
  sched.SetWorkers(4);
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  sched.RunGroup(32, /*share_cap=*/2, QueryPriority::kNormal, [&](size_t) {
    const int now = inside.fetch_add(1) + 1;
    int prev = peak.load();
    while (prev < now && !peak.compare_exchange_weak(prev, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    inside.fetch_sub(1);
  });
  EXPECT_LE(peak.load(), 2) << "share cap must bound per-query concurrency";
  EXPECT_LE(sched.Stats().peak_active_workers, 4);
}

TEST(QuerySchedulerTest, HighPriorityGroupDispatchedFirst) {
  QueryScheduler sched;
  sched.SetWorkers(1);

  std::atomic<bool> blocker_started{false};
  std::atomic<bool> release{false};
  std::mutex mu;
  std::vector<std::string> order;

  // Occupy the single worker so the low and high groups both queue.
  std::thread blocker([&] {
    sched.RunGroup(1, 1, QueryPriority::kNormal, [&](size_t) {
      blocker_started.store(true);
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  });
  while (!blocker_started.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::thread low([&] {
    sched.RunGroup(1, 1, QueryPriority::kLow, [&](size_t) {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back("low");
    });
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  std::thread high([&] {
    sched.RunGroup(1, 1, QueryPriority::kHigh, [&](size_t) {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back("high");
    });
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  release.store(true);
  blocker.join();
  low.join();
  high.join();

  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "high")
      << "the high-priority group arrived later but must run first";
  EXPECT_EQ(order[1], "low");
}

// --- admission control ------------------------------------------------------

TEST(QuerySchedulerTest, AdmissionSlotsAndRelease) {
  QueryScheduler sched;
  sched.SetMaxRunning(1);

  auto first = sched.Admit({});
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_TRUE(first->active());
  EXPECT_EQ(first->queue_wait_us(), 0);

  // The slot is taken: a bounded wait times out with ResourceExhausted.
  QueryScheduler::AdmitRequest bounded;
  bounded.timeout_ms = 30;
  auto second = sched.Admit(bounded);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(second.status().message().find("timed out"), std::string::npos)
      << second.status();

  // Releasing frees the slot for the next arrival immediately.
  first->Release();
  EXPECT_FALSE(first->active());
  auto third = sched.Admit(bounded);
  ASSERT_TRUE(third.ok()) << third.status();

  const SchedulerStats stats = sched.Stats();
  EXPECT_EQ(stats.admitted, 2);
  EXPECT_EQ(stats.rejected_timeout, 1);
  EXPECT_EQ(stats.running, 1);
}

TEST(QuerySchedulerTest, FullWaitQueueRejectsImmediately) {
  QueryScheduler sched;
  sched.SetMaxRunning(1);
  sched.SetMaxQueued(0);  // no waiting at all: reject when no slot is free

  auto holder = sched.Admit({});
  ASSERT_TRUE(holder.ok());
  auto rejected = sched.Admit({});
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(rejected.status().message().find("queue is full"),
            std::string::npos)
      << rejected.status();
  EXPECT_EQ(sched.Stats().rejected_queue_full, 1);
}

TEST(QuerySchedulerTest, QueuedWaiterAbandonsOnCancelAndDeadline) {
  QueryScheduler sched;
  sched.SetMaxRunning(1);
  auto holder = sched.Admit({});
  ASSERT_TRUE(holder.ok());

  std::atomic<bool> cancel{true};
  QueryScheduler::AdmitRequest cancelled;
  cancelled.cancel = &cancel;
  auto c = sched.Admit(cancelled);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kCancelled);

  QueryScheduler::AdmitRequest expired;
  expired.timeout_ms = -1;  // wait forever — but the budget is already gone
  expired.deadline = std::chrono::steady_clock::now();
  auto d = sched.Admit(expired);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kDeadlineExceeded);

  // Abandoned waiters left the queue: releasing the slot admits no ghost.
  holder->Release();
  EXPECT_EQ(sched.Stats().queued, 0u);
  EXPECT_EQ(sched.Stats().running, 0);
}

TEST(QuerySchedulerTest, HighPriorityWaiterAdmittedBeforeEarlierLow) {
  QueryScheduler sched;
  sched.SetMaxRunning(1);
  auto holder = sched.Admit({});
  ASSERT_TRUE(holder.ok());

  std::mutex mu;
  std::vector<std::string> order;
  auto waiter = [&](QueryPriority p, const char* name) {
    QueryScheduler::AdmitRequest req;
    req.priority = p;
    req.timeout_ms = -1;
    auto a = sched.Admit(req);
    ASSERT_TRUE(a.ok()) << a.status();
    {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(name);
    }
    a->Release();
  };
  std::thread low(waiter, QueryPriority::kLow, "low");
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  std::thread high(waiter, QueryPriority::kHigh, "high");
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  holder->Release();
  low.join();
  high.join();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "high") << "freed slots go to the best waiting class";
}

// --- executor integration ---------------------------------------------------

void ExpectSameStats(const AccessStats& a, const AccessStats& b,
                     const std::string& label) {
  EXPECT_EQ(a.stream_records, b.stream_records) << label;
  EXPECT_EQ(a.stream_pages, b.stream_pages) << label;
  EXPECT_EQ(a.probes, b.probes) << label;
  EXPECT_EQ(a.probe_pages, b.probe_pages) << label;
  EXPECT_EQ(a.cache_stores, b.cache_stores) << label;
  EXPECT_EQ(a.cache_hits, b.cache_hits) << label;
  EXPECT_EQ(a.predicate_evals, b.predicate_evals) << label;
  EXPECT_EQ(a.agg_steps, b.agg_steps) << label;
  EXPECT_EQ(a.records_output, b.records_output) << label;
  EXPECT_NEAR(a.simulated_cost, b.simulated_cost,
              1e-9 * (1.0 + std::abs(a.simulated_cost)))
      << label;
}

void ExpectSameRows(const QueryResult& a, const QueryResult& b,
                    const std::string& label) {
  ASSERT_EQ(a.records.size(), b.records.size()) << label;
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].pos, b.records[i].pos) << label << " row " << i;
    ASSERT_EQ(a.records[i].rec.size(), b.records[i].rec.size())
        << label << " row " << i;
    for (size_t j = 0; j < a.records[i].rec.size(); ++j) {
      EXPECT_EQ(a.records[i].rec[j], b.records[i].rec[j])
          << label << " row " << i << " col " << j;
    }
  }
}

/// Engine fixture on the global scheduler. Every test restores the global
/// scheduler's admission configuration on exit so suites that follow see
/// the defaults (worker-pool size is also restored; threads themselves
/// shrink lazily, which is fine — assertions use active/peak counters).
class SchedulerEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_workers_ = QueryScheduler::Global().workers();
    saved_max_running_ = QueryScheduler::Global().max_running();
    IntSeriesOptions options;
    options.span = Span::Of(0, 1999);
    options.density = 0.9;
    options.seed = 11;
    ASSERT_TRUE(engine_.RegisterBase("s", *MakeIntSeries(options)).ok());
  }
  void TearDown() override {
    QueryScheduler::Global().SetWorkers(saved_workers_);
    QueryScheduler::Global().SetMaxRunning(saved_max_running_);
    QueryScheduler::Global().SetMaxQueued(256);
    QueryScheduler::Global().SetDefaultTimeoutMs(0);
  }

  Query SelectQuery(int64_t bound) const {
    Query q;
    q.graph = SeqRef("s").Select(Gt(Col("value"), Lit(bound))).Build();
    return q;
  }

  static RunOptions ParallelOpts(AccessStats* stats) {
    RunOptions opts;
    opts.exec.use_batch = true;  // morsel parallelism needs batch driving
    opts.exec.parallelism = 4;
    opts.exec.morsel_size = 256;  // ~8 morsels over the 2000-position span
    opts.stats = stats;
    return opts;
  }

  Engine engine_;
  int saved_workers_ = 0;
  int saved_max_running_ = 0;
};

TEST_F(SchedulerEngineTest, SixteenConcurrentQueriesStayWithinPool) {
  constexpr int kQueries = 16;
  constexpr int kPoolWorkers = 4;
  QueryScheduler::Global().SetWorkers(kPoolWorkers);

  // Serial baseline for the differential check.
  RunOptions serial_opts;
  serial_opts.exec.use_batch = true;
  serial_opts.exec.parallelism = 1;
  AccessStats serial_stats;
  serial_opts.stats = &serial_stats;
  auto serial = engine_.Run(SelectQuery(100), serial_opts);
  ASSERT_TRUE(serial.ok()) << serial.status();
  ASSERT_GT(serial->records.size(), 0u);

  std::vector<AccessStats> stats(kQueries);
  std::vector<Result<QueryResult>> results;
  results.reserve(kQueries);
  for (int i = 0; i < kQueries; ++i) {
    results.emplace_back(Status::Internal("not run"));
  }
  std::vector<std::thread> threads;
  threads.reserve(kQueries);
  for (int i = 0; i < kQueries; ++i) {
    threads.emplace_back([&, i] {
      results[i] = engine_.Run(SelectQuery(100), ParallelOpts(&stats[i]));
    });
  }
  for (std::thread& t : threads) t.join();

  const SchedulerStats after = QueryScheduler::Global().Stats();
  // The acceptance assertion: 16 queries x parallelism 4 never put more
  // executing threads to work than the configured pool size. (This suite
  // is the binary's first user of the global scheduler's pool, so the
  // monotone peak reflects exactly this burst.)
  EXPECT_LE(after.peak_active_workers, kPoolWorkers);
  EXPECT_LE(after.live_workers, kPoolWorkers);
  EXPECT_EQ(after.queued, 0u);
  EXPECT_EQ(after.running, 0);
  EXPECT_GE(after.admitted, kQueries);

  for (int i = 0; i < kQueries; ++i) {
    const std::string label = "query " + std::to_string(i);
    ASSERT_TRUE(results[i].ok()) << label << ": " << results[i].status();
    ExpectSameRows(*serial, *results[i], label);
    ExpectSameStats(serial_stats, stats[i], label);
  }
}

TEST_F(SchedulerEngineTest, AdmissionRejectionSurfacesAsResourceExhausted) {
  QueryScheduler::Global().SetMaxRunning(1);
  auto holder = QueryScheduler::Global().Admit({});
  ASSERT_TRUE(holder.ok());

  // No waiting allowed: the parallel query is rejected outright.
  QueryScheduler::Global().SetMaxQueued(0);
  AccessStats stats;
  auto rejected = engine_.Run(SelectQuery(100), ParallelOpts(&stats));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted)
      << rejected.status();

  // Bounded waiting: the query queues, times out, and reports it.
  QueryScheduler::Global().SetMaxQueued(256);
  RunOptions timed = ParallelOpts(&stats);
  timed.exec.admission_timeout_ms = 30;
  auto timed_out = engine_.Run(SelectQuery(100), timed);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kResourceExhausted)
      << timed_out.status();
  EXPECT_NE(timed_out.status().message().find("timed out"),
            std::string::npos);

  // Serial queries never touch admission: still fine with zero slots.
  RunOptions serial_opts;
  serial_opts.exec.parallelism = 1;
  auto serial = engine_.Run(SelectQuery(100), serial_opts);
  EXPECT_TRUE(serial.ok()) << serial.status();

  holder->Release();
  auto recovered = engine_.Run(SelectQuery(100), ParallelOpts(&stats));
  EXPECT_TRUE(recovered.ok()) << recovered.status();
}

TEST_F(SchedulerEngineTest, QueuedStateAndQueueTimeVisibleInRegistry) {
  QueryRegistry::Global().Reset();
  QueryRegistry::Global().set_enabled(true);
  QueryScheduler::Global().SetMaxRunning(1);
  auto holder = QueryScheduler::Global().Admit({});
  ASSERT_TRUE(holder.ok());

  std::thread runner([&] {
    AccessStats stats;
    auto result = engine_.Run(SelectQuery(100), ParallelOpts(&stats));
    EXPECT_TRUE(result.ok()) << result.status();
  });

  // The query blocks in admission: the registry must show it as queued.
  bool saw_queued = false;
  for (int i = 0; i < 2000 && !saw_queued; ++i) {
    for (const LiveQueryInfo& info : QueryRegistry::Global().Live()) {
      if (info.state == QueryState::kQueued) saw_queued = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(saw_queued) << "a waiting query must surface as 'queued'";
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  holder->Release();
  runner.join();

  // After completion the queue wait is attributed separately from
  // execution in the completion record.
  bool found = false;
  for (const CompletedQueryInfo& done : QueryRegistry::Global().Recent()) {
    if (done.ok && done.queued_us > 0) {
      EXPECT_LE(done.queued_us, done.wall_us);
      found = true;
    }
  }
  EXPECT_TRUE(found) << "completed record must carry the queue time";

  // And the wall-clock budget keeps ticking while queued: a query whose
  // whole budget is spent in the queue fails with DeadlineExceeded, with
  // the wait still counted.
  auto holder2 = QueryScheduler::Global().Admit({});
  ASSERT_TRUE(holder2.ok());
  AccessStats stats;
  RunOptions budgeted = ParallelOpts(&stats);
  budgeted.exec.guards.max_wall_ms = 30;
  auto expired = engine_.Run(SelectQuery(100), budgeted);
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.status().code(), StatusCode::kDeadlineExceeded)
      << expired.status();
  holder2->Release();
}

}  // namespace
}  // namespace seq
