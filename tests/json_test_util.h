#ifndef SEQ_TESTS_JSON_TEST_UTIL_H_
#define SEQ_TESTS_JSON_TEST_UTIL_H_

// A minimal JSON parser, just enough for tests to validate emitted JSON
// (Chrome traces, telemetry exports).
//
// Hand-written on purpose: the repo has no JSON dependency, and the point
// of the tests using it is that the emitted text is well-formed for
// third-party consumers (chrome://tracing, Perfetto, monitoring agents),
// not merely that it round-trips through our own writer.

#include <cctype>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace seq {
namespace testutil {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool bool_value = false;
  double num_value = 0.0;
  std::string str_value;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* Get(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    bool ok = Value(out);
    SkipWs();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Literal(const char* s) {
    size_t n = std::string(s).size();
    if (text_.compare(pos_, n, s) != 0) return false;
    pos_ += n;
    return true;
  }
  bool Value(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') return Object(out);
    if (c == '[') return Array(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return String(&out->str_value);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      return Literal("true");
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      return Literal("false");
    }
    if (c == 'n') return Literal("null");
    return Number(out);
  }
  bool Number(JsonValue* out) {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = JsonValue::Kind::kNumber;
    out->num_value = std::stod(text_.substr(start, pos_ - start));
    return true;
  }
  bool String(std::string* out) {
    if (text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        char e = text_[pos_];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return false;
            int code = 0;
            for (int i = 0; i < 4; ++i) {
              ++pos_;
              char h = text_[pos_];
              if (!std::isxdigit(static_cast<unsigned char>(h))) return false;
              code = code * 16 +
                     (std::isdigit(static_cast<unsigned char>(h))
                          ? h - '0'
                          : std::tolower(h) - 'a' + 10);
            }
            out->push_back(static_cast<char>(code & 0x7f));
            break;
          }
          default:
            return false;
        }
        ++pos_;
      } else {
        out->push_back(c);
        ++pos_;
      }
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool Array(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue v;
      if (!Value(&v)) return false;
      out->array.push_back(std::move(v));
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool Object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (pos_ >= text_.size() || !String(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      JsonValue v;
      if (!Value(&v)) return false;
      out->object.emplace(std::move(key), std::move(v));
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace testutil
}  // namespace seq

#endif  // SEQ_TESTS_JSON_TEST_UTIL_H_
