// Tests for the observability subsystem: Chrome-trace JSON emission,
// the metrics registry, operator/query profiles, the optimizer trace, and
// AccessStats extension safety.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/opt_trace.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "storage/access_stats.h"

namespace seq {
namespace {

// --- a minimal JSON parser, just enough to validate emitted traces ----------
//
// Hand-written on purpose: the repo has no JSON dependency, and the point
// of the test is that the emitted text is well-formed for third-party
// consumers (chrome://tracing, Perfetto), not merely that it round-trips
// through our own writer.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool bool_value = false;
  double num_value = 0.0;
  std::string str_value;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* Get(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    bool ok = Value(out);
    SkipWs();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Literal(const char* s) {
    size_t n = std::string(s).size();
    if (text_.compare(pos_, n, s) != 0) return false;
    pos_ += n;
    return true;
  }
  bool Value(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') return Object(out);
    if (c == '[') return Array(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return String(&out->str_value);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      return Literal("true");
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      return Literal("false");
    }
    if (c == 'n') return Literal("null");
    return Number(out);
  }
  bool Number(JsonValue* out) {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = JsonValue::Kind::kNumber;
    out->num_value = std::stod(text_.substr(start, pos_ - start));
    return true;
  }
  bool String(std::string* out) {
    if (text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        char e = text_[pos_];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return false;
            int code = 0;
            for (int i = 0; i < 4; ++i) {
              ++pos_;
              char h = text_[pos_];
              if (!std::isxdigit(static_cast<unsigned char>(h))) return false;
              code = code * 16 +
                     (std::isdigit(static_cast<unsigned char>(h))
                          ? h - '0'
                          : std::tolower(h) - 'a' + 10);
            }
            out->push_back(static_cast<char>(code & 0x7f));
            break;
          }
          default:
            return false;
        }
        ++pos_;
      } else {
        out->push_back(c);
        ++pos_;
      }
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool Array(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue v;
      if (!Value(&v)) return false;
      out->array.push_back(std::move(v));
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool Object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (pos_ >= text_.size() || !String(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      JsonValue v;
      if (!Value(&v)) return false;
      out->object.emplace(std::move(key), std::move(v));
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// --- TraceRecorder ----------------------------------------------------------

TEST(TraceRecorderTest, EmitsValidChromeTraceJson) {
  TraceRecorder recorder;
  recorder.AddComplete("scan", "operator", 0, 120, /*tid=*/1,
                       {TraceArg::Num("rows", 42),
                        TraceArg::Str("seq", "quakes")});
  recorder.AddInstant("rewrite", "optimizer", 10, /*tid=*/0,
                      {TraceArg::Str("detail", "merge-selects")});

  std::string json = recorder.ToJson();
  JsonValue doc;
  ASSERT_TRUE(JsonParser(json).Parse(&doc)) << json;
  ASSERT_EQ(doc.kind, JsonValue::Kind::kObject);

  const JsonValue* events = doc.Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::kArray);
  ASSERT_EQ(events->array.size(), 2u);

  const JsonValue& complete = events->array[0];
  EXPECT_EQ(complete.Get("name")->str_value, "scan");
  EXPECT_EQ(complete.Get("cat")->str_value, "operator");
  EXPECT_EQ(complete.Get("ph")->str_value, "X");
  EXPECT_EQ(complete.Get("dur")->num_value, 120.0);
  EXPECT_EQ(complete.Get("tid")->num_value, 1.0);
  ASSERT_NE(complete.Get("args"), nullptr);
  EXPECT_EQ(complete.Get("args")->Get("rows")->num_value, 42.0);
  EXPECT_EQ(complete.Get("args")->Get("seq")->str_value, "quakes");

  const JsonValue& instant = events->array[1];
  EXPECT_EQ(instant.Get("ph")->str_value, "i");
  EXPECT_EQ(instant.Get("ts")->num_value, 10.0);
}

TEST(TraceRecorderTest, EscapesSpecialCharacters) {
  TraceRecorder recorder;
  recorder.AddComplete("quote\" backslash\\ newline\n tab\t", "cat\x01", 0,
                       1);
  std::string json = recorder.ToJson();
  JsonValue doc;
  ASSERT_TRUE(JsonParser(json).Parse(&doc)) << json;
  const JsonValue& e = doc.Get("traceEvents")->array[0];
  EXPECT_EQ(e.Get("name")->str_value, "quote\" backslash\\ newline\n tab\t");
  EXPECT_EQ(e.Get("cat")->str_value, "cat\x01");
}

TEST(TraceRecorderTest, EmptyRecorderStillValid) {
  TraceRecorder recorder;
  EXPECT_TRUE(recorder.empty());
  JsonValue doc;
  ASSERT_TRUE(JsonParser(recorder.ToJson()).Parse(&doc));
  EXPECT_EQ(doc.Get("traceEvents")->array.size(), 0u);
}

// --- MetricsRegistry --------------------------------------------------------

TEST(MetricsRegistryTest, CountersAndDistributions) {
  MetricsRegistry registry;
  registry.Add("queries", 1);
  registry.Add("queries", 2);
  EXPECT_EQ(registry.Get("queries"), 3);
  EXPECT_EQ(registry.Get("missing"), 0);

  registry.Observe("latency", 10.0);
  registry.Observe("latency", 30.0);
  MetricDist d = registry.GetDist("latency");
  EXPECT_EQ(d.count, 2);
  EXPECT_DOUBLE_EQ(d.sum, 40.0);
  EXPECT_DOUBLE_EQ(d.min, 10.0);
  EXPECT_DOUBLE_EQ(d.max, 30.0);
  EXPECT_DOUBLE_EQ(d.Mean(), 20.0);

  std::string text = registry.ToString();
  EXPECT_NE(text.find("queries"), std::string::npos);
  EXPECT_NE(text.find("latency"), std::string::npos);

  registry.Reset();
  EXPECT_EQ(registry.Get("queries"), 0);
  EXPECT_EQ(registry.GetDist("latency").count, 0);
}

// --- OperatorProfile / QueryProfile ----------------------------------------

TEST(OperatorProfileTest, QErrorIsSymmetricAndFloored) {
  OperatorProfile p;
  p.est_rows = 10.0;
  p.rows_out = 10;
  EXPECT_DOUBLE_EQ(p.QError(), 1.0);
  p.rows_out = 40;
  EXPECT_DOUBLE_EQ(p.QError(), 4.0);
  p.est_rows = 160.0;
  EXPECT_DOUBLE_EQ(p.QError(), 4.0);  // over-estimate, same factor
  p.est_rows = 0.0;  // floored at one record
  p.rows_out = 0;
  EXPECT_DOUBLE_EQ(p.QError(), 1.0);
}

TEST(OperatorProfileTest, SelfMetricsSubtractChildren) {
  OperatorProfile parent;
  parent.wall_ns = 1000;
  parent.sim_cost = 10.0;
  OperatorProfile* a = parent.AddChild();
  a->wall_ns = 300;
  a->sim_cost = 4.0;
  OperatorProfile* b = parent.AddChild();
  b->wall_ns = 500;
  b->sim_cost = 5.0;
  EXPECT_EQ(parent.SelfWallNs(), 200);
  EXPECT_DOUBLE_EQ(parent.SelfSimCost(), 1.0);
  // Children's inclusive numbers are their own (leaf) totals.
  EXPECT_EQ(a->SelfWallNs(), 300);
}

TEST(QueryProfileTest, TraceEventsNestAndValidate) {
  QueryProfile profile;
  profile.Reset();
  profile.root->label = "Start";
  profile.root->wall_ns = 10'000'000;  // 10 ms
  OperatorProfile* child = profile.root->AddChild();
  child->label = "Select";
  child->wall_ns = 6'000'000;
  OperatorProfile* leaf = child->AddChild();
  leaf->label = "BaseRef";
  leaf->wall_ns = 4'000'000;
  profile.total_wall_ns = 10'000'000;
  profile.optimizer.optimize_us = 500;
  profile.optimizer.Add("choice", "root: stream driving", 1.0, true);

  TraceRecorder recorder;
  profile.EmitTraceEvents(&recorder);
  JsonValue doc;
  ASSERT_TRUE(JsonParser(recorder.ToJson()).Parse(&doc));

  // Expect the optimize span + its instant + execute span + 3 operators.
  const JsonValue* events = doc.Get("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->array.size(), 6u);

  // Children must start no earlier than parents and fit inside them.
  std::map<std::string, std::pair<double, double>> span;  // name -> (ts, dur)
  for (const JsonValue& e : events->array) {
    if (e.Get("ph")->str_value == "X") {
      span[e.Get("name")->str_value] = {e.Get("ts")->num_value,
                                        e.Get("dur")->num_value};
    }
  }
  ASSERT_TRUE(span.count("Start") && span.count("Select") &&
              span.count("BaseRef"));
  EXPECT_GE(span["Select"].first, span["Start"].first);
  EXPECT_LE(span["Select"].first + span["Select"].second,
            span["Start"].first + span["Start"].second);
  EXPECT_GE(span["BaseRef"].first, span["Select"].first);
  EXPECT_LE(span["BaseRef"].first + span["BaseRef"].second,
            span["Select"].first + span["Select"].second);
}

TEST(QueryProfileTest, ToStringHasAllSections) {
  QueryProfile profile;
  profile.Reset();
  profile.root->label = "Start [stream over [1,10]]";
  profile.root->est_rows = 5;
  profile.root->rows_out = 5;
  std::string text = profile.ToString();
  EXPECT_NE(text.find("=== plan (estimated vs actual) ==="),
            std::string::npos);
  EXPECT_NE(text.find("=== optimizer trace ==="), std::string::npos);
  EXPECT_NE(text.find("=== cost-model drift ==="), std::string::npos);
  EXPECT_NE(text.find("=== totals ==="), std::string::npos);
  EXPECT_NE(text.find("q_err=1"), std::string::npos);
}

// --- OptTrace ---------------------------------------------------------------

TEST(OptTraceTest, StageFilterAndEntryCap) {
  OptTrace trace;
  trace.Add("rewrite", "merge-selects");
  trace.Add("candidate", "window-agg stream: cache-A", 12.5, true);
  trace.Add("candidate", "window-agg stream: naive-probe", 80.0);
  EXPECT_EQ(trace.Stage("candidate").size(), 2u);
  EXPECT_EQ(trace.Stage("rewrite").size(), 1u);
  EXPECT_TRUE(trace.Stage("candidate")[0]->chosen);

  std::string text = trace.ToString();
  EXPECT_NE(text.find("merge-selects"), std::string::npos);
  EXPECT_NE(text.find("<- chosen"), std::string::npos);

  OptTrace capped;
  for (size_t i = 0; i < OptTrace::kMaxEntries + 7; ++i) {
    capped.Add("candidate", "x");
  }
  EXPECT_EQ(capped.entries.size(), OptTrace::kMaxEntries);
  EXPECT_EQ(capped.dropped_entries, 7);
  EXPECT_NE(capped.ToString().find("7 entries dropped"), std::string::npos);
}

// --- AccessStats extension safety -------------------------------------------

TEST(AccessStatsTest, EveryFieldSummedAndPrinted) {
  // Distinct primes per field so a dropped or swapped term in operator+=
  // cannot cancel out.
  AccessStats a;
  a.stream_records = 2;
  a.stream_pages = 3;
  a.probes = 5;
  a.probe_pages = 7;
  a.cache_stores = 11;
  a.cache_hits = 13;
  a.predicate_evals = 17;
  a.agg_steps = 19;
  a.records_output = 23;
  a.simulated_cost = 29.0;

  AccessStats b = a;
  b += a;
  EXPECT_EQ(b.stream_records, 4);
  EXPECT_EQ(b.stream_pages, 6);
  EXPECT_EQ(b.probes, 10);
  EXPECT_EQ(b.probe_pages, 14);
  EXPECT_EQ(b.cache_stores, 22);
  EXPECT_EQ(b.cache_hits, 26);
  EXPECT_EQ(b.predicate_evals, 34);
  EXPECT_EQ(b.agg_steps, 38);
  EXPECT_EQ(b.records_output, 46);
  EXPECT_DOUBLE_EQ(b.simulated_cost, 58.0);

  // ToString names every counter (the static_assert in access_stats.cc
  // catches new fields; this catches fields dropped from the rendering).
  std::string text = a.ToString();
  for (const char* field :
       {"stream_records=2", "stream_pages=3", "probes=5", "probe_pages=7",
        "cache_stores=11", "cache_hits=13", "predicate_evals=17",
        "agg_steps=19", "records_output=23", "simulated_cost=29"}) {
    EXPECT_NE(text.find(field), std::string::npos) << field;
  }
}

}  // namespace
}  // namespace seq
