// Tests for the observability subsystem: Chrome-trace JSON emission,
// the metrics registry, operator/query profiles, the optimizer trace, and
// AccessStats extension safety.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/opt_trace.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "storage/access_stats.h"
#include "json_test_util.h"

namespace seq {
namespace {

using testutil::JsonParser;
using testutil::JsonValue;

// --- TraceRecorder ----------------------------------------------------------

TEST(TraceRecorderTest, EmitsValidChromeTraceJson) {
  TraceRecorder recorder;
  recorder.AddComplete("scan", "operator", 0, 120, /*tid=*/1,
                       {TraceArg::Num("rows", 42),
                        TraceArg::Str("seq", "quakes")});
  recorder.AddInstant("rewrite", "optimizer", 10, /*tid=*/0,
                      {TraceArg::Str("detail", "merge-selects")});

  std::string json = recorder.ToJson();
  JsonValue doc;
  ASSERT_TRUE(JsonParser(json).Parse(&doc)) << json;
  ASSERT_EQ(doc.kind, JsonValue::Kind::kObject);

  const JsonValue* events = doc.Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::kArray);
  ASSERT_EQ(events->array.size(), 2u);

  const JsonValue& complete = events->array[0];
  EXPECT_EQ(complete.Get("name")->str_value, "scan");
  EXPECT_EQ(complete.Get("cat")->str_value, "operator");
  EXPECT_EQ(complete.Get("ph")->str_value, "X");
  EXPECT_EQ(complete.Get("dur")->num_value, 120.0);
  EXPECT_EQ(complete.Get("tid")->num_value, 1.0);
  ASSERT_NE(complete.Get("args"), nullptr);
  EXPECT_EQ(complete.Get("args")->Get("rows")->num_value, 42.0);
  EXPECT_EQ(complete.Get("args")->Get("seq")->str_value, "quakes");

  const JsonValue& instant = events->array[1];
  EXPECT_EQ(instant.Get("ph")->str_value, "i");
  EXPECT_EQ(instant.Get("ts")->num_value, 10.0);
}

TEST(TraceRecorderTest, EscapesSpecialCharacters) {
  TraceRecorder recorder;
  recorder.AddComplete("quote\" backslash\\ newline\n tab\t", "cat\x01", 0,
                       1);
  std::string json = recorder.ToJson();
  JsonValue doc;
  ASSERT_TRUE(JsonParser(json).Parse(&doc)) << json;
  const JsonValue& e = doc.Get("traceEvents")->array[0];
  EXPECT_EQ(e.Get("name")->str_value, "quote\" backslash\\ newline\n tab\t");
  EXPECT_EQ(e.Get("cat")->str_value, "cat\x01");
}

TEST(TraceRecorderTest, EmptyRecorderStillValid) {
  TraceRecorder recorder;
  EXPECT_TRUE(recorder.empty());
  JsonValue doc;
  ASSERT_TRUE(JsonParser(recorder.ToJson()).Parse(&doc));
  EXPECT_EQ(doc.Get("traceEvents")->array.size(), 0u);
}

// --- MetricsRegistry --------------------------------------------------------

TEST(MetricsRegistryTest, CountersAndDistributions) {
  MetricsRegistry registry;
  registry.Add("queries", 1);
  registry.Add("queries", 2);
  EXPECT_EQ(registry.Get("queries"), 3);
  EXPECT_EQ(registry.Get("missing"), 0);

  registry.Observe("latency", 10.0);
  registry.Observe("latency", 30.0);
  MetricDist d = registry.GetDist("latency");
  EXPECT_EQ(d.count, 2);
  EXPECT_DOUBLE_EQ(d.sum, 40.0);
  EXPECT_DOUBLE_EQ(d.min, 10.0);
  EXPECT_DOUBLE_EQ(d.max, 30.0);
  EXPECT_DOUBLE_EQ(d.Mean(), 20.0);

  std::string text = registry.ToString();
  EXPECT_NE(text.find("queries"), std::string::npos);
  EXPECT_NE(text.find("latency"), std::string::npos);

  registry.Reset();
  EXPECT_EQ(registry.Get("queries"), 0);
  EXPECT_EQ(registry.GetDist("latency").count, 0);
}

TEST(MetricsRegistryTest, EmptyDistOmitsMinMax) {
  // An empty dist must not report min/max as observations of 0.0 — that
  // was a real footgun: a "min latency 0ms" reading for a metric that had
  // never fired.
  MetricDist empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_DOUBLE_EQ(empty.Min(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Max(), 0.0);

  MetricsRegistry registry;
  registry.Observe("touched", 5.0);
  MetricDist touched = registry.GetDist("touched");
  EXPECT_FALSE(touched.empty());
  EXPECT_DOUBLE_EQ(touched.Min(), 5.0);
  EXPECT_DOUBLE_EQ(touched.Max(), 5.0);

  // Reset leaves the dist registered but empty: rendering must drop the
  // min/max fields rather than print min=0 max=0.
  registry.Reset();
  std::string text = registry.ToString();
  EXPECT_NE(text.find("touched count=0"), std::string::npos) << text;
  EXPECT_EQ(text.find("min="), std::string::npos) << text;
  EXPECT_EQ(text.find("max="), std::string::npos) << text;
}

TEST(MetricsRegistryTest, ToStringStableSectionsAndOrder) {
  MetricsRegistry registry;
  std::string empty_text = registry.ToString();
  // Empty sections keep their headers so consumers can always split.
  EXPECT_NE(empty_text.find("# counters"), std::string::npos);
  EXPECT_NE(empty_text.find("# dists"), std::string::npos);
  EXPECT_NE(empty_text.find("# histograms"), std::string::npos);

  registry.Add("zebra", 2);
  registry.Add("apple", 1);
  registry.Observe("latency", 10.0);
  registry.GetHistogram("run_us").Record(100.0);

  std::string text = registry.ToString();
  // Counters sorted by name within their section.
  size_t counters = text.find("# counters");
  size_t apple = text.find("apple=1");
  size_t zebra = text.find("zebra=2");
  size_t dists = text.find("# dists");
  size_t hists = text.find("# histograms");
  ASSERT_NE(counters, std::string::npos);
  ASSERT_NE(apple, std::string::npos);
  ASSERT_NE(zebra, std::string::npos);
  ASSERT_NE(dists, std::string::npos);
  ASSERT_NE(hists, std::string::npos);
  EXPECT_LT(counters, apple);
  EXPECT_LT(apple, zebra);
  EXPECT_LT(zebra, dists);
  EXPECT_LT(dists, hists);
  EXPECT_NE(text.find("latency count=1"), std::string::npos) << text;
  EXPECT_NE(text.find("min=10"), std::string::npos) << text;
  EXPECT_NE(text.find("run_us count=1"), std::string::npos) << text;
  EXPECT_NE(text.find("p99="), std::string::npos) << text;
}

TEST(MetricCounterTest, ConcurrentStripedAddsSumExactly) {
  MetricCounter counter;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.Add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.Value(), int64_t{kThreads} * kAddsPerThread);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0);
}

TEST(MetricsRegistryTest, CounterReferenceStableAcrossReset) {
  MetricsRegistry registry;
  MetricCounter& c = registry.Counter("hot");
  c.Add(5);
  EXPECT_EQ(registry.Get("hot"), 5);
  registry.Reset();
  EXPECT_EQ(registry.Get("hot"), 0);
  c.Add(3);  // cached reference still writes the registered counter
  EXPECT_EQ(registry.Get("hot"), 3);
}

// --- Histogram --------------------------------------------------------------

TEST(HistogramTest, BucketBoundariesAreQuarterOctave) {
  // Bucket 0 holds everything <= 1; bucket i holds (2^((i-1)/4), 2^(i/4)].
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(-3.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1.01), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2.0), 4u);  // 2 = 2^(4/4)
  EXPECT_EQ(Histogram::BucketIndex(4.0), 8u);
  EXPECT_EQ(Histogram::BucketIndex(1e18), Histogram::kNumBuckets - 1);
  for (size_t i = 1; i + 1 < Histogram::kNumBuckets; ++i) {
    // A value at the log-space midpoint of bucket i lands in bucket i
    // (midpoints stay clear of float rounding at the boundaries), and a
    // value just past the upper bound lands in the next bucket.
    double mid = std::exp2((static_cast<double>(i) - 0.5) / 4.0);
    EXPECT_EQ(Histogram::BucketIndex(mid), i) << i;
    EXPECT_GE(Histogram::BucketIndex(Histogram::UpperBound(i) * 1.001), i)
        << i;
    EXPECT_LE(Histogram::BucketIndex(Histogram::UpperBound(i) * 1.001), i + 1)
        << i;
  }
}

TEST(HistogramTest, PercentilesTrackExactWithinBucketResolution) {
  Histogram hist;
  std::vector<double> values;
  // A skewed latency-like population: 1..1000 with a heavy tail.
  for (int i = 1; i <= 1000; ++i) values.push_back(static_cast<double>(i));
  for (int i = 0; i < 10; ++i) values.push_back(50000.0);
  for (double v : values) hist.Record(v);
  std::sort(values.begin(), values.end());

  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, static_cast<int64_t>(values.size()));
  double exact_sum = 0.0;
  for (double v : values) exact_sum += v;
  EXPECT_DOUBLE_EQ(snap.sum, exact_sum);

  for (double q : {0.5, 0.9, 0.99}) {
    double exact = values[static_cast<size_t>(q * (values.size() - 1))];
    double est = snap.Percentile(q);
    // Quarter-octave buckets bound the error to the bucket width: the
    // estimate stays within half a log2 unit (two buckets, ~41%) of the
    // exact percentile even when rank conventions straddle a boundary.
    EXPECT_NEAR(std::log2(est), std::log2(exact), 0.5) << "q=" << q;
  }
  // Degenerate cases.
  EXPECT_DOUBLE_EQ(Histogram().Snapshot().Percentile(0.5), 0.0);
}

TEST(HistogramTest, ConcurrentRecordsCountExactly) {
  Histogram hist;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Record(static_cast<double>(1 + (t * kPerThread + i) % 997));
      }
    });
  }
  for (auto& th : threads) th.join();
  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, int64_t{kThreads} * kPerThread);
  int64_t bucket_total = 0;
  for (int64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
}

// --- OperatorProfile / QueryProfile ----------------------------------------

TEST(OperatorProfileTest, QErrorIsSymmetricAndFloored) {
  OperatorProfile p;
  p.est_rows = 10.0;
  p.rows_out = 10;
  EXPECT_DOUBLE_EQ(p.QError(), 1.0);
  p.rows_out = 40;
  EXPECT_DOUBLE_EQ(p.QError(), 4.0);
  p.est_rows = 160.0;
  EXPECT_DOUBLE_EQ(p.QError(), 4.0);  // over-estimate, same factor
  p.est_rows = 0.0;  // floored at one record
  p.rows_out = 0;
  EXPECT_DOUBLE_EQ(p.QError(), 1.0);
}

TEST(OperatorProfileTest, SelfMetricsSubtractChildren) {
  OperatorProfile parent;
  parent.wall_ns = 1000;
  parent.sim_cost = 10.0;
  OperatorProfile* a = parent.AddChild();
  a->wall_ns = 300;
  a->sim_cost = 4.0;
  OperatorProfile* b = parent.AddChild();
  b->wall_ns = 500;
  b->sim_cost = 5.0;
  EXPECT_EQ(parent.SelfWallNs(), 200);
  EXPECT_DOUBLE_EQ(parent.SelfSimCost(), 1.0);
  // Children's inclusive numbers are their own (leaf) totals.
  EXPECT_EQ(a->SelfWallNs(), 300);
}

TEST(QueryProfileTest, TraceEventsNestAndValidate) {
  QueryProfile profile;
  profile.Reset();
  profile.root->label = "Start";
  profile.root->wall_ns = 10'000'000;  // 10 ms
  OperatorProfile* child = profile.root->AddChild();
  child->label = "Select";
  child->wall_ns = 6'000'000;
  OperatorProfile* leaf = child->AddChild();
  leaf->label = "BaseRef";
  leaf->wall_ns = 4'000'000;
  profile.total_wall_ns = 10'000'000;
  profile.optimizer.optimize_us = 500;
  profile.optimizer.Add("choice", "root: stream driving", 1.0, true);

  TraceRecorder recorder;
  profile.EmitTraceEvents(&recorder);
  JsonValue doc;
  ASSERT_TRUE(JsonParser(recorder.ToJson()).Parse(&doc));

  // Expect the optimize span + its instant + execute span + 3 operators.
  const JsonValue* events = doc.Get("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->array.size(), 6u);

  // Children must start no earlier than parents and fit inside them.
  std::map<std::string, std::pair<double, double>> span;  // name -> (ts, dur)
  for (const JsonValue& e : events->array) {
    if (e.Get("ph")->str_value == "X") {
      span[e.Get("name")->str_value] = {e.Get("ts")->num_value,
                                        e.Get("dur")->num_value};
    }
  }
  ASSERT_TRUE(span.count("Start") && span.count("Select") &&
              span.count("BaseRef"));
  EXPECT_GE(span["Select"].first, span["Start"].first);
  EXPECT_LE(span["Select"].first + span["Select"].second,
            span["Start"].first + span["Start"].second);
  EXPECT_GE(span["BaseRef"].first, span["Select"].first);
  EXPECT_LE(span["BaseRef"].first + span["BaseRef"].second,
            span["Select"].first + span["Select"].second);
}

TEST(QueryProfileTest, ToStringHasAllSections) {
  QueryProfile profile;
  profile.Reset();
  profile.root->label = "Start [stream over [1,10]]";
  profile.root->est_rows = 5;
  profile.root->rows_out = 5;
  std::string text = profile.ToString();
  EXPECT_NE(text.find("=== plan (estimated vs actual) ==="),
            std::string::npos);
  EXPECT_NE(text.find("=== optimizer trace ==="), std::string::npos);
  EXPECT_NE(text.find("=== cost-model drift ==="), std::string::npos);
  EXPECT_NE(text.find("=== totals ==="), std::string::npos);
  EXPECT_NE(text.find("q_err=1"), std::string::npos);
}

// --- OptTrace ---------------------------------------------------------------

TEST(OptTraceTest, StageFilterAndEntryCap) {
  OptTrace trace;
  trace.Add("rewrite", "merge-selects");
  trace.Add("candidate", "window-agg stream: cache-A", 12.5, true);
  trace.Add("candidate", "window-agg stream: naive-probe", 80.0);
  EXPECT_EQ(trace.Stage("candidate").size(), 2u);
  EXPECT_EQ(trace.Stage("rewrite").size(), 1u);
  EXPECT_TRUE(trace.Stage("candidate")[0]->chosen);

  std::string text = trace.ToString();
  EXPECT_NE(text.find("merge-selects"), std::string::npos);
  EXPECT_NE(text.find("<- chosen"), std::string::npos);

  OptTrace capped;
  for (size_t i = 0; i < OptTrace::kMaxEntries + 7; ++i) {
    capped.Add("candidate", "x");
  }
  EXPECT_EQ(capped.entries.size(), OptTrace::kMaxEntries);
  EXPECT_EQ(capped.dropped_entries, 7);
  EXPECT_NE(capped.ToString().find("7 entries dropped"), std::string::npos);
}

// --- AccessStats extension safety -------------------------------------------

TEST(AccessStatsTest, EveryFieldSummedAndPrinted) {
  // Distinct primes per field so a dropped or swapped term in operator+=
  // cannot cancel out.
  AccessStats a;
  a.stream_records = 2;
  a.stream_pages = 3;
  a.probes = 5;
  a.probe_pages = 7;
  a.cache_stores = 11;
  a.cache_hits = 13;
  a.predicate_evals = 17;
  a.agg_steps = 19;
  a.records_output = 23;
  a.simulated_cost = 29.0;

  AccessStats b = a;
  b += a;
  EXPECT_EQ(b.stream_records, 4);
  EXPECT_EQ(b.stream_pages, 6);
  EXPECT_EQ(b.probes, 10);
  EXPECT_EQ(b.probe_pages, 14);
  EXPECT_EQ(b.cache_stores, 22);
  EXPECT_EQ(b.cache_hits, 26);
  EXPECT_EQ(b.predicate_evals, 34);
  EXPECT_EQ(b.agg_steps, 38);
  EXPECT_EQ(b.records_output, 46);
  EXPECT_DOUBLE_EQ(b.simulated_cost, 58.0);

  // ToString names every counter (the static_assert in access_stats.cc
  // catches new fields; this catches fields dropped from the rendering).
  std::string text = a.ToString();
  for (const char* field :
       {"stream_records=2", "stream_pages=3", "probes=5", "probe_pages=7",
        "cache_stores=11", "cache_hits=13", "predicate_evals=17",
        "agg_steps=19", "records_output=23", "simulated_cost=29"}) {
    EXPECT_NE(text.find(field), std::string::npos) << field;
  }
}

}  // namespace
}  // namespace seq
