// Tests for the §5.1 interval extension: IntervalSet, the bridge to/from
// point sequences, coalescing, and the overlap/contain/precede joins.

#include <gtest/gtest.h>

#include "interval/interval_ops.h"
#include "interval/interval_set.h"

namespace seq {
namespace {

SchemaPtr NameSchema() {
  return Schema::Make({Field{"name", TypeId::kString}});
}

IntervalSet Make(std::initializer_list<std::tuple<Position, Position,
                                                  const char*>> items) {
  IntervalSet set(NameSchema());
  for (auto [s, e, name] : items) {
    EXPECT_TRUE(set.Add(s, e, Record{Value::String(name)}).ok());
  }
  return set;
}

TEST(IntervalSetTest, KeepsRecordsSortedByStart) {
  IntervalSet set = Make({{10, 20, "b"}, {1, 5, "a"}, {10, 15, "c"}});
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(set.records()[0].rec[0].str(), "a");
  EXPECT_EQ(set.records()[1].rec[0].str(), "c");  // same start, shorter first
  EXPECT_EQ(set.records()[2].rec[0].str(), "b");
  EXPECT_EQ(set.Hull(), Span::Of(1, 20));
}

TEST(IntervalSetTest, RejectsBadIntervalsAndRecords) {
  IntervalSet set(NameSchema());
  EXPECT_FALSE(set.Add(5, 3, Record{Value::String("x")}).ok());
  EXPECT_FALSE(set.Add(1, 2, Record{Value::Int64(1)}).ok());
}

TEST(IntervalSetTest, FromSequenceMakesUnitIntervals) {
  auto store = std::make_shared<BaseSequenceStore>(NameSchema(), 4);
  ASSERT_TRUE(store->Append(3, Record{Value::String("x")}).ok());
  ASSERT_TRUE(store->Append(7, Record{Value::String("y")}).ok());
  auto set = IntervalSet::FromSequence(*store);
  ASSERT_TRUE(set.ok());
  ASSERT_EQ(set->size(), 2u);
  EXPECT_EQ(set->records()[0].start, 3);
  EXPECT_EQ(set->records()[0].end, 3);
}

TEST(IntervalSetTest, CoalesceMergesNearbyIntervals) {
  IntervalSet set =
      Make({{1, 3, "a"}, {4, 6, "b"}, {10, 12, "c"}, {20, 25, "d"}});
  IntervalSet merged = set.Coalesce(0);  // touching merge: [1,3]+[4,6]
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged.records()[0].start, 1);
  EXPECT_EQ(merged.records()[0].end, 6);
  IntervalSet sessions = set.Coalesce(3);  // gap<=3 merges [10,12] too
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions.records()[0].end, 12);
  EXPECT_EQ(sessions.records()[1].start, 20);
}

TEST(IntervalSetTest, ToSequencePicksLatestStartingCover) {
  IntervalSet set = Make({{1, 10, "outer"}, {4, 6, "inner"}});
  auto store = set.ToSequence();
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->num_records(), 10);
  auto at = [&](Position p) {
    return (*(*store)->Probe(p, nullptr))[0].str();
  };
  EXPECT_EQ(at(3), "outer");
  EXPECT_EQ(at(5), "inner");
  EXPECT_EQ(at(8), "outer");
}

TEST(IntervalSetTest, ToSequenceWithGaps) {
  IntervalSet set = Make({{1, 2, "a"}, {5, 5, "b"}});
  auto store = set.ToSequence();
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->num_records(), 3);
  EXPECT_FALSE((*store)->Probe(3, nullptr).has_value());
}

// --- joins -------------------------------------------------------------------

TEST(IntervalJoinTest, OverlapJoinIntersects) {
  IntervalSet storms = Make({{1, 5, "storm1"}, {10, 14, "storm2"}});
  IntervalSet outages = Make({{4, 11, "outage"}});
  IntervalStats stats;
  auto joined = OverlapJoin(storms, outages, nullptr, &stats);
  ASSERT_TRUE(joined.ok()) << joined.status();
  ASSERT_EQ(joined->size(), 2u);
  EXPECT_EQ(joined->records()[0].start, 4);
  EXPECT_EQ(joined->records()[0].end, 5);
  EXPECT_EQ(joined->records()[0].rec[0].str(), "storm1");
  EXPECT_EQ(joined->records()[0].rec[1].str(), "outage");
  EXPECT_EQ(joined->records()[1].start, 10);
  EXPECT_EQ(joined->records()[1].end, 11);
  EXPECT_GT(stats.pairs_examined, 0);
}

TEST(IntervalJoinTest, OverlapJoinWithPredicate) {
  SchemaPtr num = Schema::Make({Field{"v", TypeId::kInt64}});
  IntervalSet a(num), b(num);
  ASSERT_TRUE(a.Add(1, 10, Record{Value::Int64(5)}).ok());
  ASSERT_TRUE(b.Add(2, 3, Record{Value::Int64(1)}).ok());
  ASSERT_TRUE(b.Add(4, 6, Record{Value::Int64(9)}).ok());
  auto joined = OverlapJoin(a, b, Gt(Col("v", 0), Col("v", 1)));
  ASSERT_TRUE(joined.ok()) << joined.status();
  ASSERT_EQ(joined->size(), 1u);  // only 5 > 1 passes
  EXPECT_EQ(joined->records()[0].start, 2);
}

TEST(IntervalJoinTest, OverlapJoinSchemaRenamesClashes) {
  IntervalSet a = Make({{1, 2, "x"}});
  IntervalSet b = Make({{2, 3, "y"}});
  auto joined = OverlapJoin(a, b);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->schema()->ToString(), "<name:string, name_r:string>");
}

TEST(IntervalJoinTest, ContainJoinRequiresFullContainment) {
  IntervalSet eras = Make({{1, 100, "era"}});
  IntervalSet events = Make({{5, 10, "inside"}, {90, 110, "straddles"}});
  auto joined = ContainJoin(eras, events);
  ASSERT_TRUE(joined.ok());
  ASSERT_EQ(joined->size(), 1u);
  EXPECT_EQ(joined->records()[0].rec[1].str(), "inside");
  EXPECT_EQ(joined->records()[0].start, 5);
  EXPECT_EQ(joined->records()[0].end, 10);
}

TEST(IntervalJoinTest, PrecedeJoinHonorsGap) {
  IntervalSet quakes = Make({{10, 12, "quake"}});
  IntervalSet tsunamis =
      Make({{14, 15, "soon"}, {30, 31, "late"}, {11, 12, "during"}});
  auto joined = PrecedeJoin(quakes, tsunamis, /*max_gap=*/5);
  ASSERT_TRUE(joined.ok()) << joined.status();
  ASSERT_EQ(joined->size(), 1u);  // only "soon": after the quake, within 5
  EXPECT_EQ(joined->records()[0].rec[1].str(), "soon");
  EXPECT_EQ(joined->records()[0].start, 10);
  EXPECT_EQ(joined->records()[0].end, 15);
  EXPECT_FALSE(PrecedeJoin(quakes, tsunamis, -1).ok());
}

TEST(IntervalJoinTest, EmptyInputsYieldEmptyOutputs) {
  IntervalSet empty(NameSchema());
  IntervalSet some = Make({{1, 2, "a"}});
  auto j1 = OverlapJoin(empty, some);
  ASSERT_TRUE(j1.ok());
  EXPECT_EQ(j1->size(), 0u);
  auto j2 = ContainJoin(some, empty);
  ASSERT_TRUE(j2.ok());
  EXPECT_EQ(j2->size(), 0u);
}

// Round trip through the point-sequence engine: intervals -> sequence ->
// engine query -> intervals.
TEST(IntervalBridgeTest, SequenceQueriesOverIntervalData) {
  SchemaPtr schema = Schema::Make({Field{"load", TypeId::kDouble}});
  IntervalSet set(schema);
  ASSERT_TRUE(set.Add(1, 5, Record{Value::Double(10.0)}).ok());
  ASSERT_TRUE(set.Add(4, 8, Record{Value::Double(99.0)}).ok());
  auto store = set.ToSequence();
  ASSERT_TRUE(store.ok());
  // Positions 4..8 carry the later interval's load.
  auto probe = (*store)->Probe(4, nullptr);
  ASSERT_TRUE(probe.has_value());
  EXPECT_DOUBLE_EQ((*probe)[0].dbl(), 99.0);
  // Back to intervals: runs of equal coverage coalesce.
  auto back = IntervalSet::FromSequence(**store);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Coalesce(0).size(), 1u);  // 1..8 continuous
}

}  // namespace
}  // namespace seq
