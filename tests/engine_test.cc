// Tests for the Engine facade extensions: views (§5.2 shared
// sub-expressions), materialization of derived sequences (§5.3), grouped
// queries (§5.1), explain output, and the unclustered access-path flag.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/views.h"
#include "workload/generators.h"

namespace seq {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    IntSeriesOptions options;
    options.span = Span::Of(0, 199);
    options.density = 0.8;
    options.seed = 3;
    ASSERT_TRUE(engine_.RegisterBase("s", *MakeIntSeries(options)).ok());
  }
  Engine engine_;
};

// --- views -------------------------------------------------------------------

TEST_F(EngineTest, ViewInlinesIntoQueries) {
  ASSERT_TRUE(
      engine_
          .DefineView("high",
                      SeqRef("s").Select(Gt(Col("value"), Lit(int64_t{500})))
                          .Build())
          .ok());
  auto via_view = engine_.Run(SeqRef("high").Build());
  auto direct = engine_.Run(
      SeqRef("s").Select(Gt(Col("value"), Lit(int64_t{500}))).Build());
  ASSERT_TRUE(via_view.ok()) << via_view.status();
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(via_view->records.size(), direct->records.size());
}

TEST_F(EngineTest, ViewUsedTwiceStaysATree) {
  ASSERT_TRUE(
      engine_
          .DefineView("avg3",
                      SeqRef("s").Agg(AggFunc::kAvg, "value", 3).Build())
          .ok());
  // Self-join of the view: the DAG-style reuse inlines to a tree.
  auto q = SeqRef("avg3")
               .ComposeWith(SeqRef("avg3").Offset(1),
                            Gt(Col("avg_value", 0), Col("avg_value", 1)))
               .Build();
  auto result = engine_.Run(q);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->records.size(), 0u);
}

TEST_F(EngineTest, ViewsComposeWithViews) {
  ASSERT_TRUE(engine_
                  .DefineView("a", SeqRef("s")
                                       .Select(Gt(Col("value"),
                                                  Lit(int64_t{200})))
                                       .Build())
                  .ok());
  ASSERT_TRUE(engine_
                  .DefineView("b",
                              SeqRef("a").Agg(AggFunc::kMax, "value", 5)
                                  .Build())
                  .ok());
  auto result = engine_.Run(SeqRef("b").Build());
  ASSERT_TRUE(result.ok()) << result.status();
}

TEST_F(EngineTest, ViewErrors) {
  auto graph = SeqRef("s").Build();
  ASSERT_TRUE(engine_.DefineView("v", graph).ok());
  EXPECT_FALSE(engine_.DefineView("v", graph).ok());  // duplicate
  EXPECT_FALSE(engine_.DefineView("s", graph).ok());  // shadows catalog
  EXPECT_FALSE(engine_.DefineView("x", nullptr).ok());
}

TEST(ViewInlineTest, CycleDetection) {
  // A view referring to itself (constructed directly on the map).
  ViewMap views;
  views.emplace("loop", SeqRef("loop").Offset(1).Build());
  auto result = InlineViews(SeqRef("loop").Build(), views);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("cyclic"), std::string::npos);
}

// --- materialization (§5.3) ----------------------------------------------------

TEST_F(EngineTest, MaterializeRegistersDerivedSequence) {
  auto graph = SeqRef("s").Agg(AggFunc::kSum, "value", 4).Build();
  ASSERT_TRUE(engine_.Materialize("sums", graph).ok());
  auto entry = engine_.catalog().Lookup("sums");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ((*entry)->schema->field(0).name, "sum_value");
  EXPECT_GT((*entry)->store->num_records(), 0);

  // Querying the materialization equals querying the definition.
  auto from_view = engine_.Run(graph);
  auto from_base = engine_.Run(SeqRef("sums").Build());
  ASSERT_TRUE(from_view.ok());
  ASSERT_TRUE(from_base.ok());
  ASSERT_EQ(from_view->records.size(), from_base->records.size());
  // And the materialization carries real column statistics.
  EXPECT_GT((*entry)->store->column_stats()[0].count, 0);
}

TEST_F(EngineTest, MaterializeRejectsNameClashes) {
  auto graph = SeqRef("s").Build();
  EXPECT_FALSE(engine_.Materialize("s", graph).ok());
  ASSERT_TRUE(engine_.DefineView("v", graph).ok());
  EXPECT_FALSE(engine_.Materialize("v", graph).ok());
}

// --- grouped queries (§5.1) -----------------------------------------------------

TEST_F(EngineTest, RunGroupedAppliesTemplatePerMember) {
  for (int i = 0; i < 3; ++i) {
    IntSeriesOptions options;
    options.span = Span::Of(0, 99);
    options.density = 1.0;
    options.seed = 100 + i;
    options.min_value = i * 100;  // distinct ranges per member
    options.max_value = i * 100 + 50;
    ASSERT_TRUE(engine_
                    .RegisterBase("g" + std::to_string(i),
                                  *MakeIntSeries(options))
                    .ok());
  }
  auto results = engine_.RunGrouped(
      {"g0", "g1", "g2"},
      [](const std::string& member) {
        return SeqRef(member)
            .Select(Ge(Col("value"), Lit(int64_t{100})))
            .Build();
      });
  ASSERT_TRUE(results.ok()) << results.status();
  EXPECT_EQ((*results)["g0"].records.size(), 0u);   // values < 51
  EXPECT_EQ((*results)["g1"].records.size(), 100u);  // values 100..150
  EXPECT_EQ((*results)["g2"].records.size(), 100u);
}

// --- explain -----------------------------------------------------------------

TEST_F(EngineTest, ExplainShowsBothTreesAndRewrites) {
  Query q;
  q.graph = SeqRef("s")
                .ComposeWith(SeqRef("s").Offset(1))
                .Select(Gt(Col("value"), Lit(int64_t{10})))
                .Build();
  auto text = engine_.Explain(q);
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("logical"), std::string::npos);
  EXPECT_NE(text->find("physical"), std::string::npos);
  EXPECT_NE(text->find("rewrites:"), std::string::npos);
  EXPECT_NE(text->find("Start"), std::string::npos);
}

// --- unclustered access path (§3.4 fn. 8) ---------------------------------------

TEST(UnclusteredTest, StreamChargesPerRecord) {
  SchemaPtr schema = Schema::Make({Field{"v", TypeId::kInt64}});
  AccessCosts costs;
  costs.clustered = false;
  BaseSequenceStore store(schema, 64, costs);
  for (Position p = 0; p < 100; ++p) {
    ASSERT_TRUE(store.Append(p, Record{Value::Int64(p)}).ok());
  }
  AccessStats stats;
  auto cursor = store.OpenStream(store.span(), &stats);
  while (cursor.Next()) {
  }
  EXPECT_EQ(stats.stream_pages, 100);  // one page per record
}

TEST(UnclusteredTest, OptimizerPrefersProbesOnUnclusteredStores) {
  // Sparse driver joined with a big unclustered sequence: probing the
  // unclustered side must win by more than for a clustered one.
  auto build = [&](bool clustered) {
    OptimizerOptions options;
    Engine engine(options);
    IntSeriesOptions sparse;
    sparse.span = Span::Of(0, 49999);
    sparse.density = 0.01;
    sparse.seed = 8;
    EXPECT_TRUE(engine.RegisterBase("sparse", *MakeIntSeries(sparse)).ok());
    IntSeriesOptions big;
    big.span = Span::Of(0, 49999);
    big.density = 0.9;
    big.seed = 9;
    big.column = "w";
    big.costs.clustered = clustered;
    EXPECT_TRUE(engine.RegisterBase("big", *MakeIntSeries(big)).ok());
    Query q;
    q.graph = SeqRef("sparse").ComposeWith(SeqRef("big")).Build();
    auto plan = engine.Plan(q);
    EXPECT_TRUE(plan.ok());
    const PhysNode* node = plan->root.get();
    while (node->op != OpKind::kCompose) node = node->children[0].get();
    return node->join_strategy;
  };
  EXPECT_EQ(build(false), JoinStrategy::kStreamLeftProbeRight);
}

}  // namespace
}  // namespace seq

namespace seq {
namespace {

TEST(PreparedQueryTest, RunsRepeatedlyAndMatchesAdHoc) {
  Engine engine;
  IntSeriesOptions options;
  options.span = Span::Of(0, 999);
  options.density = 0.7;
  options.seed = 12;
  ASSERT_TRUE(engine.RegisterBase("p", *MakeIntSeries(options)).ok());
  Query q;
  q.graph = SeqRef("p")
                .Select(Gt(Col("value"), Lit(int64_t{300})))
                .Agg(AggFunc::kCount, "value", 10)
                .Build();
  auto prepared = engine.Prepare(q);
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  auto ad_hoc = engine.Run(q);
  ASSERT_TRUE(ad_hoc.ok());
  for (int i = 0; i < 3; ++i) {
    AccessStats stats;
    auto result = prepared->Run(&stats);
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_EQ(result->records.size(), ad_hoc->records.size());
    EXPECT_GT(stats.stream_records, 0);
  }
}

TEST(PreparedQueryTest, PointQueriesPrepareToo) {
  Engine engine;
  IntSeriesOptions options;
  options.span = Span::Of(0, 999);
  options.seed = 13;
  ASSERT_TRUE(engine.RegisterBase("p", *MakeIntSeries(options)).ok());
  Query q;
  q.graph = SeqRef("p").Build();
  q.positions = {5, 17, 400};
  auto prepared = engine.Prepare(q);
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared->plan().root_mode, AccessMode::kProbed);
  auto result = prepared->Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->records.size(), 3u);
}

}  // namespace
}  // namespace seq
