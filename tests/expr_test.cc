// Unit tests for the expression module: tree construction, analysis,
// rewriting helpers, type checking and evaluation semantics.

#include <gtest/gtest.h>

#include "expr/compiled_expr.h"
#include "expr/expr.h"
#include "types/schema.h"

namespace seq {
namespace {

SchemaPtr PriceSchema() {
  return Schema::Make({Field{"close", TypeId::kDouble},
                       Field{"volume", TypeId::kInt64},
                       Field{"hot", TypeId::kBool},
                       Field{"tag", TypeId::kString}});
}

Record PriceRecord(double close, int64_t volume, bool hot,
                   const std::string& tag) {
  return Record{Value::Double(close), Value::Int64(volume), Value::Bool(hot),
                Value::String(tag)};
}

// --- tree construction / analysis --------------------------------------------

TEST(ExprTest, ToStringRendersTree) {
  ExprPtr e = And(Gt(Col("close"), Lit(10.0)), Not(Col("hot")));
  EXPECT_EQ(e->ToString(), "((close > 10) and not(hot))");
}

TEST(ExprTest, CollectColumnsFindsAllSides) {
  ExprPtr e = Gt(Col("a", 0), Col("b", 1));
  std::vector<std::pair<int, std::string>> cols;
  e->CollectColumns(&cols);
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0], (std::pair<int, std::string>{0, "a"}));
  EXPECT_EQ(cols[1], (std::pair<int, std::string>{1, "b"}));
}

TEST(ExprTest, ReferencesOnlySide) {
  EXPECT_TRUE(Gt(Col("a"), Lit(1.0))->ReferencesOnlySide(0));
  EXPECT_FALSE(Gt(Col("a", 1), Lit(1.0))->ReferencesOnlySide(0));
  EXPECT_TRUE(Lit(true)->ReferencesOnlySide(0));  // vacuous
  EXPECT_FALSE(Lit(true)->ReferencesAnyColumn());
}

TEST(ExprTest, EqualsIsStructural) {
  ExprPtr a = Gt(Col("x"), Lit(int64_t{1}));
  ExprPtr b = Gt(Col("x"), Lit(int64_t{1}));
  ExprPtr c = Ge(Col("x"), Lit(int64_t{1}));
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));
}

TEST(ExprTest, RenameColumns) {
  ExprPtr e = Gt(Col("old"), Col("keep"));
  ExprPtr renamed = e->RenameColumns({{"old", "new"}});
  EXPECT_EQ(renamed->ToString(), "(new > keep)");
}

TEST(ExprTest, RemapColumnsChangesSides) {
  ExprPtr e = Gt(Col("a", 0), Col("b", 0));
  ExprPtr remapped = e->RemapColumns({{{0, "a"}, {0, "x"}},
                                      {{0, "b"}, {1, "y"}}});
  std::vector<std::pair<int, std::string>> cols;
  remapped->CollectColumns(&cols);
  EXPECT_EQ(cols[0], (std::pair<int, std::string>{0, "x"}));
  EXPECT_EQ(cols[1], (std::pair<int, std::string>{1, "y"}));
}

TEST(ExprTest, WithAllSides) {
  ExprPtr e = Gt(Col("a", 1), Col("b", 1))->WithAllSides(0);
  EXPECT_TRUE(e->ReferencesOnlySide(0));
}

TEST(ExprTest, ContainsPosition) {
  EXPECT_TRUE(Gt(Expr::Position(), Lit(int64_t{5}))->ContainsPosition());
  EXPECT_FALSE(Gt(Col("a"), Lit(int64_t{5}))->ContainsPosition());
}

TEST(ExprTest, ConjoinAndSplitRoundTrip) {
  std::vector<ExprPtr> terms = {Gt(Col("a"), Lit(1.0)),
                                Lt(Col("b"), Lit(2.0)),
                                Eq(Col("c"), Lit(3.0))};
  ExprPtr conj = ConjoinAll(terms);
  std::vector<ExprPtr> split;
  SplitConjuncts(conj, &split);
  ASSERT_EQ(split.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(split[i]->Equals(*terms[i]));
  }
}

TEST(ExprTest, ConjoinAllHandlesEmptyAndSingle) {
  EXPECT_EQ(ConjoinAll({}), nullptr);
  ExprPtr single = Gt(Col("a"), Lit(1.0));
  EXPECT_TRUE(ConjoinAll({single})->Equals(*single));
}

// --- compilation / type checking ---------------------------------------------

TEST(CompiledExprTest, TypeChecksComparableTypes) {
  SchemaPtr s = PriceSchema();
  EXPECT_TRUE(CompiledExpr::CompilePredicate(
                  Gt(Col("close"), Col("volume")), *s)
                  .ok());  // double vs int64 is fine
  auto bad = CompiledExpr::CompilePredicate(Gt(Col("close"), Col("tag")), *s);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kTypeError);
}

TEST(CompiledExprTest, RejectsUnknownColumn) {
  SchemaPtr s = PriceSchema();
  auto r = CompiledExpr::CompilePredicate(Gt(Col("nope"), Lit(1.0)), *s);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(CompiledExprTest, RejectsNonBoolPredicate) {
  SchemaPtr s = PriceSchema();
  auto r = CompiledExpr::CompilePredicate(Add(Col("close"), Lit(1.0)), *s);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
}

TEST(CompiledExprTest, RejectsBoolArithmetic) {
  SchemaPtr s = PriceSchema();
  auto r = CompiledExpr::Compile(Add(Col("hot"), Lit(1.0)), *s);
  EXPECT_FALSE(r.ok());
}

TEST(CompiledExprTest, RejectsNonBoolConnective) {
  SchemaPtr s = PriceSchema();
  auto r = CompiledExpr::Compile(And(Col("close"), Col("hot")), *s);
  EXPECT_FALSE(r.ok());
}

TEST(CompiledExprTest, RejectsRightSideWithoutRightSchema) {
  SchemaPtr s = PriceSchema();
  auto r = CompiledExpr::Compile(Gt(Col("close", 1), Lit(1.0)), *s);
  EXPECT_FALSE(r.ok());
}

TEST(CompiledExprTest, ResultTypePromotion) {
  SchemaPtr s = PriceSchema();
  auto int_sum =
      CompiledExpr::Compile(Add(Col("volume"), Lit(int64_t{1})), *s);
  ASSERT_TRUE(int_sum.ok());
  EXPECT_EQ(int_sum->result_type(), TypeId::kInt64);
  auto mixed = CompiledExpr::Compile(Add(Col("volume"), Col("close")), *s);
  ASSERT_TRUE(mixed.ok());
  EXPECT_EQ(mixed->result_type(), TypeId::kDouble);
}

// --- evaluation ---------------------------------------------------------------

class EvalTest : public ::testing::Test {
 protected:
  Value Eval(const ExprPtr& e, Position pos = 0) {
    auto compiled = CompiledExpr::Compile(e, *schema_);
    EXPECT_TRUE(compiled.ok()) << compiled.status();
    return compiled->Eval(record_, pos);
  }

  SchemaPtr schema_ = PriceSchema();
  Record record_ = PriceRecord(25.5, 100, true, "blue");
};

TEST_F(EvalTest, ColumnAndLiteral) {
  EXPECT_DOUBLE_EQ(Eval(Col("close")).dbl(), 25.5);
  EXPECT_EQ(Eval(Lit(int64_t{9})).int64(), 9);
}

TEST_F(EvalTest, PositionNode) {
  EXPECT_EQ(Eval(Expr::Position(), 42).int64(), 42);
}

TEST_F(EvalTest, IntArithmeticStaysInt) {
  Value v = Eval(Mul(Col("volume"), Lit(int64_t{3})));
  EXPECT_EQ(v.type(), TypeId::kInt64);
  EXPECT_EQ(v.int64(), 300);
}

TEST_F(EvalTest, IntDivisionTruncates) {
  EXPECT_EQ(Eval(Div(Col("volume"), Lit(int64_t{3}))).int64(), 33);
}

TEST_F(EvalTest, IntDivisionByZeroYieldsZero) {
  EXPECT_EQ(Eval(Div(Col("volume"), Lit(int64_t{0}))).int64(), 0);
}

TEST_F(EvalTest, MixedArithmeticPromotes) {
  Value v = Eval(Add(Col("volume"), Col("close")));
  EXPECT_EQ(v.type(), TypeId::kDouble);
  EXPECT_DOUBLE_EQ(v.dbl(), 125.5);
}

TEST_F(EvalTest, Comparisons) {
  EXPECT_TRUE(Eval(Gt(Col("close"), Lit(20.0))).boolean());
  EXPECT_FALSE(Eval(Lt(Col("close"), Lit(20.0))).boolean());
  EXPECT_TRUE(Eval(Eq(Col("tag"), Lit("blue"))).boolean());
  EXPECT_TRUE(Eval(Ne(Col("tag"), Lit("red"))).boolean());
  EXPECT_TRUE(Eval(Le(Col("volume"), Lit(int64_t{100}))).boolean());
  EXPECT_TRUE(Eval(Ge(Col("volume"), Lit(int64_t{100}))).boolean());
}

TEST_F(EvalTest, ConnectivesShortCircuit) {
  // The right side would be a type-correct but absurd comparison; short
  // circuiting is observable via the result only, so just check truth
  // tables.
  EXPECT_FALSE(Eval(And(Lit(false), Col("hot"))).boolean());
  EXPECT_TRUE(Eval(Or(Lit(true), Col("hot"))).boolean());
  EXPECT_FALSE(Eval(Not(Col("hot"))).boolean());
}

TEST_F(EvalTest, UnaryNumeric) {
  EXPECT_EQ(Eval(Expr::Unary(UnaryOp::kNeg, Col("volume"))).int64(), -100);
  EXPECT_DOUBLE_EQ(
      Eval(Expr::Unary(UnaryOp::kAbs,
                       Expr::Unary(UnaryOp::kNeg, Col("close"))))
          .dbl(),
      25.5);
}

TEST_F(EvalTest, TwoSidedEvaluation) {
  SchemaPtr right = Schema::Make({Field{"limit", TypeId::kDouble}});
  auto compiled = CompiledExpr::CompilePredicate(
      Gt(Col("close", 0), Col("limit", 1)), *schema_, right.get());
  ASSERT_TRUE(compiled.ok());
  Record r{Value::Double(20.0)};
  EXPECT_TRUE(compiled->EvalBool(record_, &r, 0));
  Record r2{Value::Double(30.0)};
  EXPECT_FALSE(compiled->EvalBool(record_, &r2, 0));
}

}  // namespace
}  // namespace seq
