#include "tests/reference_eval.h"

#include <algorithm>

namespace seq::testing {
namespace {

/// Aggregates `values` with `func` per the paper's rules (Nulls already
/// removed by the caller; empty input means Null output).
std::optional<Value> Aggregate(AggFunc func, TypeId type,
                               const std::vector<Value>& values) {
  if (values.empty()) return std::nullopt;
  switch (func) {
    case AggFunc::kCount:
      return Value::Int64(static_cast<int64_t>(values.size()));
    case AggFunc::kSum: {
      if (type == TypeId::kInt64) {
        int64_t s = 0;
        for (const Value& v : values) s += v.int64();
        return Value::Int64(s);
      }
      double s = 0;
      for (const Value& v : values) s += v.AsDouble();
      return Value::Double(s);
    }
    case AggFunc::kAvg: {
      double s = 0;
      for (const Value& v : values) s += v.AsDouble();
      return Value::Double(s / static_cast<double>(values.size()));
    }
    case AggFunc::kMin: {
      Value best = values[0];
      for (const Value& v : values) {
        if (v.Compare(best) < 0) best = v;
      }
      return best;
    }
    case AggFunc::kMax: {
      Value best = values[0];
      for (const Value& v : values) {
        if (v.Compare(best) > 0) best = v;
      }
      return best;
    }
  }
  return std::nullopt;
}

}  // namespace

Result<SchemaPtr> ReferenceEvaluator::SchemaOf(const LogicalOp& op) const {
  // Minimal recursive schema derivation (independent of the optimizer's
  // annotator on purpose).
  switch (op.kind()) {
    case OpKind::kBaseRef:
    case OpKind::kConstantRef: {
      SEQ_ASSIGN_OR_RETURN(const CatalogEntry* entry,
                           catalog_->Lookup(op.seq_name()));
      return entry->schema;
    }
    case OpKind::kSelect:
    case OpKind::kPositionalOffset:
    case OpKind::kValueOffset:
    case OpKind::kExpand:
      return SchemaOf(*op.input());
    case OpKind::kProject: {
      SEQ_ASSIGN_OR_RETURN(SchemaPtr in, SchemaOf(*op.input()));
      std::vector<size_t> indices;
      for (const std::string& col : op.columns()) {
        SEQ_ASSIGN_OR_RETURN(size_t idx, in->FieldIndex(col));
        indices.push_back(idx);
      }
      return in->Project(indices, op.renames());
    }
    case OpKind::kWindowAgg:
    case OpKind::kCollapse: {
      SEQ_ASSIGN_OR_RETURN(SchemaPtr in, SchemaOf(*op.input()));
      SEQ_ASSIGN_OR_RETURN(size_t idx, in->FieldIndex(op.agg_column()));
      TypeId col = in->field(idx).type;
      TypeId out;
      switch (op.agg_func()) {
        case AggFunc::kCount:
          out = TypeId::kInt64;
          break;
        case AggFunc::kAvg:
          out = TypeId::kDouble;
          break;
        default:
          out = col;
      }
      std::string name = op.output_name().empty()
                             ? std::string(AggFuncName(op.agg_func())) + "_" +
                                   op.agg_column()
                             : op.output_name();
      return Schema::Make({Field{name, out}});
    }
    case OpKind::kCompose: {
      SEQ_ASSIGN_OR_RETURN(SchemaPtr l, SchemaOf(*op.input(0)));
      SEQ_ASSIGN_OR_RETURN(SchemaPtr r, SchemaOf(*op.input(1)));
      return Schema::Concat(*l, *r);
    }
  }
  return Status::Internal("unknown op");
}

Result<std::optional<Record>> ReferenceEvaluator::At(const LogicalOp& op,
                                                     Position pos) const {
  auto key = std::make_pair(&op, pos);
  auto it = memo_.find(key);
  if (it != memo_.end()) return it->second;
  SEQ_ASSIGN_OR_RETURN(std::optional<Record> result, AtImpl(op, pos));
  memo_.emplace(std::move(key), result);
  return result;
}

Result<std::optional<Record>> ReferenceEvaluator::AtImpl(const LogicalOp& op,
                                                         Position pos) const {
  switch (op.kind()) {
    case OpKind::kBaseRef: {
      SEQ_ASSIGN_OR_RETURN(const CatalogEntry* entry,
                           catalog_->Lookup(op.seq_name()));
      return entry->store->Probe(pos, /*stats=*/nullptr);
    }
    case OpKind::kConstantRef: {
      SEQ_ASSIGN_OR_RETURN(const CatalogEntry* entry,
                           catalog_->Lookup(op.seq_name()));
      return std::optional<Record>(entry->constant);
    }
    case OpKind::kSelect: {
      SEQ_ASSIGN_OR_RETURN(std::optional<Record> rec, At(*op.input(), pos));
      if (!rec.has_value()) return std::optional<Record>();
      SEQ_ASSIGN_OR_RETURN(SchemaPtr schema, SchemaOf(*op.input()));
      SEQ_ASSIGN_OR_RETURN(
          CompiledExpr pred,
          CompiledExpr::CompilePredicate(op.predicate(), *schema));
      if (!pred.EvalBool(*rec, pos)) return std::optional<Record>();
      return rec;
    }
    case OpKind::kProject: {
      SEQ_ASSIGN_OR_RETURN(std::optional<Record> rec, At(*op.input(), pos));
      if (!rec.has_value()) return std::optional<Record>();
      SEQ_ASSIGN_OR_RETURN(SchemaPtr schema, SchemaOf(*op.input()));
      Record out;
      for (const std::string& col : op.columns()) {
        SEQ_ASSIGN_OR_RETURN(size_t idx, schema->FieldIndex(col));
        out.push_back((*rec)[idx]);
      }
      return std::optional<Record>(std::move(out));
    }
    case OpKind::kPositionalOffset:
      return At(*op.input(), pos + op.offset());
    case OpKind::kValueOffset: {
      int64_t remaining = std::abs(op.offset());
      if (op.offset() < 0) {
        for (Position q = pos - 1; q >= horizon_.start; --q) {
          SEQ_ASSIGN_OR_RETURN(std::optional<Record> rec,
                               At(*op.input(), q));
          if (rec.has_value() && --remaining == 0) return rec;
        }
      } else {
        for (Position q = pos + 1; q <= horizon_.end; ++q) {
          SEQ_ASSIGN_OR_RETURN(std::optional<Record> rec,
                               At(*op.input(), q));
          if (rec.has_value() && --remaining == 0) return rec;
        }
      }
      return std::optional<Record>();
    }
    case OpKind::kWindowAgg: {
      SEQ_ASSIGN_OR_RETURN(SchemaPtr schema, SchemaOf(*op.input()));
      SEQ_ASSIGN_OR_RETURN(size_t idx, schema->FieldIndex(op.agg_column()));
      TypeId col_type = schema->field(idx).type;
      Position lo = pos;
      Position hi = pos;
      switch (op.window_kind()) {
        case WindowKind::kTrailing:
          lo = pos - op.window() + 1;
          break;
        case WindowKind::kRunning:
          lo = horizon_.start;
          break;
        case WindowKind::kAll:
          lo = horizon_.start;
          hi = horizon_.end;
          break;
      }
      std::vector<Value> values;
      for (Position q = std::max(lo, horizon_.start);
           q <= std::min(hi, horizon_.end); ++q) {
        SEQ_ASSIGN_OR_RETURN(std::optional<Record> rec, At(*op.input(), q));
        if (rec.has_value()) values.push_back((*rec)[idx]);
      }
      std::optional<Value> agg = Aggregate(op.agg_func(), col_type, values);
      if (!agg.has_value()) return std::optional<Record>();
      return std::optional<Record>(Record{*agg});
    }
    case OpKind::kCompose: {
      SEQ_ASSIGN_OR_RETURN(std::optional<Record> l, At(*op.input(0), pos));
      if (!l.has_value()) return std::optional<Record>();
      SEQ_ASSIGN_OR_RETURN(std::optional<Record> r, At(*op.input(1), pos));
      if (!r.has_value()) return std::optional<Record>();
      Record combined = *l;
      combined.insert(combined.end(), r->begin(), r->end());
      if (op.predicate() != nullptr) {
        SEQ_ASSIGN_OR_RETURN(SchemaPtr ls, SchemaOf(*op.input(0)));
        SEQ_ASSIGN_OR_RETURN(SchemaPtr rs, SchemaOf(*op.input(1)));
        SEQ_ASSIGN_OR_RETURN(
            CompiledExpr pred,
            CompiledExpr::CompilePredicate(op.predicate(), *ls, rs.get()));
        if (!pred.EvalBool(*l, &*r, pos)) return std::optional<Record>();
      }
      return std::optional<Record>(std::move(combined));
    }
    case OpKind::kExpand: {
      int64_t f = op.expand_factor();
      Position bucket = pos >= 0 ? pos / f : (pos - f + 1) / f;
      return At(*op.input(), bucket);
    }
    case OpKind::kCollapse: {
      SEQ_ASSIGN_OR_RETURN(SchemaPtr schema, SchemaOf(*op.input()));
      SEQ_ASSIGN_OR_RETURN(size_t idx, schema->FieldIndex(op.agg_column()));
      TypeId col_type = schema->field(idx).type;
      int64_t f = op.collapse_factor();
      std::vector<Value> values;
      for (Position q = pos * f; q < (pos + 1) * f; ++q) {
        SEQ_ASSIGN_OR_RETURN(std::optional<Record> rec, At(*op.input(), q));
        if (rec.has_value()) values.push_back((*rec)[idx]);
      }
      std::optional<Value> agg = Aggregate(op.agg_func(), col_type, values);
      if (!agg.has_value()) return std::optional<Record>();
      return std::optional<Record>(Record{*agg});
    }
  }
  return Status::Internal("unknown op");
}

Result<std::vector<PosRecord>> ReferenceEvaluator::Materialize(
    const LogicalOp& op, Span range) const {
  // Node addresses may be reused by freshly built graphs; the memo is only
  // valid within one graph's evaluation.
  memo_.clear();
  std::vector<PosRecord> out;
  if (range.IsEmpty()) return out;
  for (Position p = range.start; p <= range.end; ++p) {
    SEQ_ASSIGN_OR_RETURN(std::optional<Record> rec, At(op, p));
    if (rec.has_value()) out.push_back(PosRecord{p, std::move(*rec)});
  }
  return out;
}

}  // namespace seq::testing
