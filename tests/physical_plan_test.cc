// Tests for the physical plan layer: descriptor naming, explain output
// structure, and the plan shapes the optimizer emits for canonical
// queries.

#include <gtest/gtest.h>

#include <functional>

#include "core/engine.h"
#include "optimizer/physical_plan.h"
#include "workload/generators.h"

namespace seq {
namespace {

TEST(PhysicalPlanNamesTest, EnumsRender) {
  EXPECT_STREQ(AccessModeName(AccessMode::kStream), "stream");
  EXPECT_STREQ(AccessModeName(AccessMode::kProbed), "probed");
  EXPECT_STREQ(JoinStrategyName(JoinStrategy::kStreamBoth),
               "B:stream-both");
  EXPECT_STREQ(JoinStrategyName(JoinStrategy::kStreamLeftProbeRight),
               "A:stream-left-probe-right");
  EXPECT_STREQ(AggStrategyName(AggStrategy::kCacheA), "cache-A");
  EXPECT_STREQ(OffsetStrategyName(OffsetStrategy::kIncrementalCacheB),
               "cache-B");
}

class PlanShapeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(RegisterTable1Stocks(&engine_.catalog()).ok());
  }

  PhysicalPlan Plan(const LogicalOpPtr& graph) {
    Query q;
    q.graph = graph;
    auto plan = engine_.Plan(q);
    EXPECT_TRUE(plan.ok()) << plan.status();
    return *plan;
  }

  Engine engine_;
};

TEST_F(PlanShapeTest, ExplainCarriesModesStrategiesAndCaches) {
  auto plan = Plan(SeqRef("ibm")
                       .Agg(AggFunc::kAvg, "close", 12)
                       .ComposeWith(SeqRef("dec").Prev())
                       .Build());
  std::string text = plan.Explain();
  EXPECT_NE(text.find("Start [stream"), std::string::npos);
  EXPECT_NE(text.find("WindowAgg [stream, cache-A]"), std::string::npos);
  EXPECT_NE(text.find("cache=12"), std::string::npos);
  // The compose probes its right side at strictly increasing positions,
  // so the value offset runs the incremental cache-B algorithm in probed
  // mode rather than falling back to naive search.
  EXPECT_NE(text.find("ValueOffset [probed, cache-B]"), std::string::npos);
  EXPECT_NE(text.find("Compose [stream"), std::string::npos);
  EXPECT_NE(text.find("BaseRef [stream] ibm"), std::string::npos);
  EXPECT_NE(text.find("est_cost="), std::string::npos);
}

TEST_F(PlanShapeTest, EveryNodeCarriesSchemaAndRequiredSpan) {
  auto plan = Plan(SeqRef("ibm")
                       .Select(Gt(Col("close"), Lit(100.0)))
                       .Project({"close"})
                       .Build());
  std::function<void(const PhysNode&)> walk = [&](const PhysNode& node) {
    EXPECT_NE(node.out_schema, nullptr) << OpKindName(node.op);
    EXPECT_FALSE(node.required.IsUnbounded()) << OpKindName(node.op);
    for (const PhysNodePtr& child : node.children) walk(*child);
  };
  walk(*plan.root);
}

TEST_F(PlanShapeTest, CostsAccumulateUpTheTree) {
  auto plan = Plan(SeqRef("hp").Agg(AggFunc::kSum, "close", 4).Build());
  const PhysNode* agg = plan.root.get();
  while (agg->op != OpKind::kWindowAgg) agg = agg->children[0].get();
  const PhysNode* scan = agg->children[0].get();
  EXPECT_GT(scan->est_cost, 0.0);
  EXPECT_GT(agg->est_cost, scan->est_cost);
  EXPECT_GE(plan.est_cost, agg->est_cost);
}

TEST_F(PlanShapeTest, EstimatedCostTracksMeasuredCost) {
  // Not exact — estimates use expectations — but the same order of
  // magnitude for a simple scan-heavy plan.
  auto graph = SeqRef("hp").Agg(AggFunc::kAvg, "close", 8).Build();
  Query q;
  q.graph = graph;
  auto plan = engine_.Plan(q);
  ASSERT_TRUE(plan.ok());
  AccessStats stats;
  Executor executor(engine_.catalog());
  auto result = executor.Execute(*plan, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(stats.simulated_cost, plan->est_cost * 0.2);
  EXPECT_LT(stats.simulated_cost, plan->est_cost * 5.0);
}

}  // namespace
}  // namespace seq
