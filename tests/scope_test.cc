// Tests for operator scope (paper §2.3): per-operator scope specs, the
// composition rules of Proposition 2.1, and effective scopes (§3.4).

#include <gtest/gtest.h>

#include "logical/builder.h"
#include "logical/logical_op.h"
#include "logical/scope.h"

namespace seq {
namespace {

// --- per-operator scopes ------------------------------------------------------

TEST(ScopeTest, SelectionHasUnitScope) {
  auto op = LogicalOp::Select(LogicalOp::BaseRef("s"),
                              Gt(Col("v"), Lit(1.0)));
  ScopeSpec scope = op->ScopeOverInput();
  EXPECT_TRUE(scope.IsUnit());
  EXPECT_TRUE(scope.sequential);
  EXPECT_TRUE(scope.relative);
  EXPECT_FALSE(op->IsNonUnitScope());
}

TEST(ScopeTest, ProjectionHasUnitScope) {
  auto op = LogicalOp::Project(LogicalOp::BaseRef("s"), {"v"});
  EXPECT_TRUE(op->ScopeOverInput().IsUnit());
}

TEST(ScopeTest, PositionalOffsetIsFixedButNotSequential) {
  // §2.3: "the scope of a positional offset operator is not [sequential]".
  auto op = LogicalOp::PositionalOffset(LogicalOp::BaseRef("s"), -5);
  ScopeSpec scope = op->ScopeOverInput();
  EXPECT_TRUE(scope.IsFixedSize());
  EXPECT_EQ(scope.FixedSize(), 1);
  EXPECT_EQ(scope.min_offset, -5);
  EXPECT_FALSE(scope.sequential);
  EXPECT_TRUE(scope.relative);
  // Not a block boundary (§3.1 pushes it through relative-scope operators).
  EXPECT_FALSE(op->IsNonUnitScope());
}

TEST(ScopeTest, TrailingAggregateIsFixedSequential) {
  // §2.3: "the scope of an aggregate over the most recent three positions
  // is sequential".
  auto op = LogicalOp::WindowAgg(LogicalOp::BaseRef("s"), AggFunc::kAvg, "v",
                                 3);
  ScopeSpec scope = op->ScopeOverInput();
  EXPECT_TRUE(scope.IsFixedSize());
  EXPECT_EQ(scope.FixedSize(), 3);
  EXPECT_EQ(scope.min_offset, -2);
  EXPECT_EQ(scope.max_offset, 0);
  EXPECT_TRUE(scope.sequential);
  EXPECT_TRUE(op->IsNonUnitScope());
}

TEST(ScopeTest, PreviousHasVariableScope) {
  // §2.3: "a Previous operator has a variable scope size".
  auto op = LogicalOp::ValueOffset(LogicalOp::BaseRef("s"), -1);
  ScopeSpec scope = op->ScopeOverInput();
  EXPECT_EQ(scope.size_kind, ScopeSpec::SizeKind::kVariable);
  EXPECT_FALSE(scope.bounded_below);
  EXPECT_TRUE(scope.sequential);
  EXPECT_TRUE(op->IsNonUnitScope());
}

TEST(ScopeTest, NextIsVariableUnboundedAbove) {
  auto op = LogicalOp::ValueOffset(LogicalOp::BaseRef("s"), 2);
  ScopeSpec scope = op->ScopeOverInput();
  EXPECT_EQ(scope.size_kind, ScopeSpec::SizeKind::kVariable);
  EXPECT_FALSE(scope.bounded_above);
  EXPECT_FALSE(scope.sequential);
}

TEST(ScopeTest, OverallAggregateSeesAllPositions) {
  auto op = LogicalOp::OverallAgg(LogicalOp::BaseRef("s"), AggFunc::kSum,
                                  "v");
  ScopeSpec scope = op->ScopeOverInput();
  EXPECT_FALSE(scope.bounded_below);
  EXPECT_FALSE(scope.bounded_above);
}

TEST(ScopeTest, ComposeHasUnitScopeOnBothInputs) {
  auto op = LogicalOp::Compose(LogicalOp::BaseRef("a"),
                               LogicalOp::BaseRef("b"));
  EXPECT_TRUE(op->ScopeOverInput(0).IsUnit());
  EXPECT_TRUE(op->ScopeOverInput(1).IsUnit());
}

// --- Proposition 2.1: composition ---------------------------------------------

TEST(ScopeComposeTest, FixedComposedWithFixedStaysFixed) {
  // Prop 2.1(a).
  ScopeSpec window = ScopeSpec::FixedWindow(-2, 0);   // 3-trailing agg
  ScopeSpec offset = ScopeSpec::FixedWindow(-5, -5);  // offset -5
  ScopeSpec composed = ScopeSpec::Compose(window, offset);
  EXPECT_TRUE(composed.IsFixedSize());
  EXPECT_EQ(composed.min_offset, -7);
  EXPECT_EQ(composed.max_offset, -5);
}

TEST(ScopeComposeTest, SequentialComposedWithSequentialStaysSequential) {
  // Prop 2.1(b).
  ScopeSpec a = ScopeSpec::FixedWindow(-2, 0);
  ScopeSpec b = ScopeSpec::FixedWindow(-4, 0);
  ScopeSpec composed = ScopeSpec::Compose(a, b);
  EXPECT_TRUE(composed.sequential);
  EXPECT_EQ(composed.min_offset, -6);
  EXPECT_EQ(composed.max_offset, 0);
}

TEST(ScopeComposeTest, NonSequentialComponentBreaksSequentiality) {
  ScopeSpec seq = ScopeSpec::FixedWindow(-2, 0);
  ScopeSpec nonseq = ScopeSpec::FixedWindow(3, 3);
  EXPECT_FALSE(ScopeSpec::Compose(seq, nonseq).sequential);
  EXPECT_FALSE(ScopeSpec::Compose(nonseq, seq).sequential);
}

TEST(ScopeComposeTest, RelativeComposedWithRelativeStaysRelative) {
  // Prop 2.1(c).
  ScopeSpec a = ScopeSpec::FixedWindow(-1, 0);
  ScopeSpec b = ScopeSpec::FixedWindow(2, 2);
  EXPECT_TRUE(ScopeSpec::Compose(a, b).relative);
  ScopeSpec var = ScopeSpec::VariablePast();  // non-relative
  EXPECT_FALSE(ScopeSpec::Compose(a, var).relative);
}

TEST(ScopeComposeTest, VariableComponentMakesVariable) {
  ScopeSpec fixed = ScopeSpec::FixedWindow(-2, 0);
  ScopeSpec var = ScopeSpec::VariablePast();
  ScopeSpec composed = ScopeSpec::Compose(fixed, var);
  EXPECT_EQ(composed.size_kind, ScopeSpec::SizeKind::kVariable);
  EXPECT_FALSE(composed.bounded_below);
}

TEST(ScopeComposeTest, UnitIsIdentity) {
  ScopeSpec w = ScopeSpec::FixedWindow(-3, 1);
  ScopeSpec left = ScopeSpec::Compose(ScopeSpec::Unit(), w);
  ScopeSpec right = ScopeSpec::Compose(w, ScopeSpec::Unit());
  EXPECT_EQ(left.min_offset, w.min_offset);
  EXPECT_EQ(left.max_offset, w.max_offset);
  EXPECT_EQ(right.min_offset, w.min_offset);
  EXPECT_EQ(right.max_offset, w.max_offset);
}

// Parameterized sweep: composing fixed windows always sums offsets
// (Minkowski) and preserves fixedness/relativity.
class FixedComposeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(FixedComposeSweep, OffsetsAdd) {
  auto [alo, ahi, blo, bhi] = GetParam();
  if (alo > ahi || blo > bhi) GTEST_SKIP();
  ScopeSpec a = ScopeSpec::FixedWindow(alo, ahi);
  ScopeSpec b = ScopeSpec::FixedWindow(blo, bhi);
  ScopeSpec c = ScopeSpec::Compose(a, b);
  EXPECT_TRUE(c.IsFixedSize());
  EXPECT_EQ(c.min_offset, alo + blo);
  EXPECT_EQ(c.max_offset, ahi + bhi);
  EXPECT_TRUE(c.relative);
  EXPECT_EQ(c.sequential, (ahi + bhi) == 0 || (a.sequential && b.sequential));
}

INSTANTIATE_TEST_SUITE_P(
    Windows, FixedComposeSweep,
    ::testing::Combine(::testing::Values(-4, -1, 0), ::testing::Values(0, 2),
                       ::testing::Values(-3, 0), ::testing::Values(0, 1)));

// --- whole-query scope (complex operators) -------------------------------------

TEST(QueryScopeTest, ChainComposesOverLeaf) {
  // Agg(window 3) over Offset(-5) over base: scope fixed [-7, -5].
  auto q = SeqRef("s").Offset(-5).Agg(AggFunc::kSum, "v", 3).Build();
  std::vector<ScopeSpec> scopes = q->QueryScopeOverLeaves();
  ASSERT_EQ(scopes.size(), 1u);
  EXPECT_TRUE(scopes[0].IsFixedSize());
  EXPECT_EQ(scopes[0].min_offset, -7);
  EXPECT_EQ(scopes[0].max_offset, -5);
}

TEST(QueryScopeTest, ComposeFansOutToBothLeaves) {
  auto q = SeqRef("a").ComposeWith(SeqRef("b").Offset(2)).Build();
  std::vector<ScopeSpec> scopes = q->QueryScopeOverLeaves();
  ASSERT_EQ(scopes.size(), 2u);
  EXPECT_TRUE(scopes[0].IsUnit());
  EXPECT_EQ(scopes[1].min_offset, 2);
}

TEST(QueryScopeTest, Theorem31Precondition) {
  // A query of all sequential fixed scopes admits stream evaluation with
  // scope-sized caches (Thm 3.1): verify the composed query scope is
  // sequential and fixed.
  auto q = SeqRef("s")
               .Select(Gt(Col("v"), Lit(1.0)))
               .Agg(AggFunc::kAvg, "v", 4)
               .Build();
  std::vector<ScopeSpec> scopes = q->QueryScopeOverLeaves();
  ASSERT_EQ(scopes.size(), 1u);
  EXPECT_TRUE(scopes[0].IsFixedSize());
  EXPECT_TRUE(scopes[0].sequential);
}

// --- effective scope (§3.4) ----------------------------------------------------

TEST(EffectiveScopeTest, OffsetBroadensToSequentialWindow) {
  // The paper's example: offset -5 has scope size 1, non-sequential; its
  // effective scope is the current and five most recent positions (size 6).
  ScopeSpec offset = ScopeSpec::FixedWindow(-5, -5);
  ScopeSpec eff = offset.EffectiveSequential();
  EXPECT_TRUE(eff.sequential);
  EXPECT_TRUE(eff.IsFixedSize());
  EXPECT_EQ(eff.FixedSize(), 6);
}

TEST(EffectiveScopeTest, SequentialWindowUnchangedInSize) {
  ScopeSpec w = ScopeSpec::FixedWindow(-3, 0);
  ScopeSpec eff = w.EffectiveSequential();
  EXPECT_EQ(eff.FixedSize(), 4);
  EXPECT_TRUE(eff.sequential);
}

TEST(EffectiveScopeTest, LookaheadBecomesDelay) {
  ScopeSpec w = ScopeSpec::FixedWindow(1, 3);
  ScopeSpec eff = w.EffectiveSequential();
  EXPECT_TRUE(eff.sequential);
  EXPECT_EQ(eff.max_offset, 0);
  EXPECT_EQ(eff.FixedSize(), 4);  // window [i-3, i] after delaying by 3
}

TEST(EffectiveScopeTest, UnboundedScopesReportAllPositions) {
  ScopeSpec past = ScopeSpec::VariablePast();
  ScopeSpec eff = past.EffectiveSequential();
  EXPECT_FALSE(eff.bounded_below);
}

TEST(ScopeToStringTest, Renders) {
  EXPECT_EQ(ScopeSpec::Unit().ToString(), "unit seq rel");
  EXPECT_EQ(ScopeSpec::FixedWindow(-2, 0).ToString(), "fixed[-2,0] seq rel");
}

}  // namespace
}  // namespace seq
