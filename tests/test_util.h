#ifndef SEQ_TESTS_TEST_UTIL_H_
#define SEQ_TESTS_TEST_UTIL_H_

// Shared helpers for the randomized test suites: catalog fixtures, a
// random query-graph generator, and tolerant result comparison.

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "exec/executor.h"
#include "logical/logical_op.h"
#include "optimizer/annotate.h"
#include "workload/generators.h"

namespace seq::testing {

/// Registers three int sequences "s0".."s2" of varied density and span.
inline void FillSmallCatalog(Catalog* catalog, uint64_t seed,
                             Span base_span = Span::Of(0, 399)) {
  const double densities[] = {1.0, 0.5, 0.1};
  for (int i = 0; i < 3; ++i) {
    IntSeriesOptions options;
    options.span = Span::Of(base_span.start + 10 * i,
                            base_span.end - 15 * i);
    options.density = densities[i];
    options.seed = seed * 17 + static_cast<uint64_t>(i);
    options.min_value = 0;
    options.max_value = 100;
    options.column = "v";
    auto store = MakeIntSeries(options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(
        catalog->RegisterBase("s" + std::to_string(i), *store).ok());
  }
}

inline std::optional<std::string> RandomNumericColumn(const Schema& schema,
                                                      Rng* rng) {
  std::vector<std::string> numeric;
  for (const Field& f : schema.fields()) {
    if (IsNumeric(f.type)) numeric.push_back(f.name);
  }
  if (numeric.empty()) return std::nullopt;
  return numeric[static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(numeric.size()) - 1))];
}

struct RandomGraphOptions {
  bool allow_overall_agg = true;  // the oracle tests exclude kAll (its
                                  // output span is engine-defined)
  bool allow_position_predicates = true;
};

/// Builds a random graph of the given depth over FillSmallCatalog's
/// sequences; consults the annotator so predicates always type-check.
inline LogicalOpPtr RandomGraph(const Catalog& catalog, Rng* rng, int depth,
                                const RandomGraphOptions& opts = {}) {
  Annotator annotator(catalog, CostParams{});
  if (depth == 0) {
    return LogicalOp::BaseRef("s" + std::to_string(rng->UniformInt(0, 2)));
  }
  LogicalOpPtr child = RandomGraph(catalog, rng, depth - 1, opts);
  LogicalOpPtr annotated = child->Clone();
  if (!annotator.AnnotateBottomUp(annotated.get()).ok()) return child;
  const Schema& schema = *annotated->meta().schema;

  switch (rng->UniformInt(0, 8)) {
    case 0: {
      std::optional<std::string> col = RandomNumericColumn(schema, rng);
      if (!col.has_value()) return child;
      ExprPtr pred = rng->Bernoulli(0.5)
                         ? Gt(Col(*col), Lit(rng->UniformInt(0, 100)))
                         : Lt(Col(*col), Lit(rng->UniformInt(0, 100)));
      if (opts.allow_position_predicates && rng->Bernoulli(0.25)) {
        pred = And(pred, Ge(Expr::Position(), Lit(rng->UniformInt(0, 50))));
      }
      return LogicalOp::Select(child, pred);
    }
    case 1: {
      std::vector<std::string> cols;
      for (const Field& f : schema.fields()) cols.push_back(f.name);
      size_t keep = static_cast<size_t>(
          rng->UniformInt(1, static_cast<int64_t>(cols.size())));
      cols.resize(keep);
      return LogicalOp::Project(child, cols);
    }
    case 2:
      return LogicalOp::PositionalOffset(child, rng->UniformInt(-10, 10));
    case 3:
      return LogicalOp::ValueOffset(
          child, rng->Bernoulli(0.5) ? -rng->UniformInt(1, 3)
                                     : rng->UniformInt(1, 3));
    case 4: {
      std::optional<std::string> col = RandomNumericColumn(schema, rng);
      if (!col.has_value()) return child;
      AggFunc funcs[] = {AggFunc::kSum, AggFunc::kAvg, AggFunc::kMin,
                         AggFunc::kMax, AggFunc::kCount};
      return LogicalOp::WindowAgg(child, funcs[rng->UniformInt(0, 4)], *col,
                                  rng->UniformInt(1, 12));
    }
    case 5: {
      std::optional<std::string> col = RandomNumericColumn(schema, rng);
      if (!col.has_value()) return child;
      // Running avg drifts in incremental accumulators; stick to exact
      // functions.
      AggFunc funcs[] = {AggFunc::kMin, AggFunc::kMax, AggFunc::kCount};
      return LogicalOp::RunningAgg(child, funcs[rng->UniformInt(0, 2)],
                                   *col);
    }
    case 6: {
      LogicalOpPtr right =
          RandomGraph(catalog, rng, rng->UniformInt(0, depth - 1), opts);
      ExprPtr pred;
      LogicalOpPtr r_annotated = right->Clone();
      Annotator a2(catalog, CostParams{});
      if (a2.AnnotateBottomUp(r_annotated.get()).ok() &&
          rng->Bernoulli(0.5)) {
        std::optional<std::string> lcol = RandomNumericColumn(schema, rng);
        std::optional<std::string> rcol =
            RandomNumericColumn(*r_annotated->meta().schema, rng);
        if (lcol.has_value() && rcol.has_value()) {
          pred = Gt(Col(*lcol, 0), Col(*rcol, 1));
        }
      }
      return LogicalOp::Compose(child, right, pred);
    }
    case 7:
      return LogicalOp::Expand(child, rng->UniformInt(2, 4));
    default:
      return child;
  }
}

/// Asserts two record lists are equal, tolerating float rounding.
inline void ExpectSameRecords(const std::vector<PosRecord>& a,
                              const std::vector<PosRecord>& b,
                              const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].pos, b[i].pos) << label << " idx " << i;
    ASSERT_EQ(a[i].rec.size(), b[i].rec.size()) << label;
    for (size_t j = 0; j < a[i].rec.size(); ++j) {
      const Value& va = a[i].rec[j];
      const Value& vb = b[i].rec[j];
      if (va.type() == TypeId::kDouble || vb.type() == TypeId::kDouble) {
        ASSERT_NEAR(va.AsDouble(), vb.AsDouble(),
                    1e-6 * (1.0 + std::abs(vb.AsDouble())))
            << label << " pos " << a[i].pos;
      } else {
        ASSERT_EQ(va.Compare(vb), 0) << label << " pos " << a[i].pos;
      }
    }
  }
}

}  // namespace seq::testing

#endif  // SEQ_TESTS_TEST_UTIL_H_
