// Tests for §5.1 sequence groupings: group construction, per-member
// templates (Map), condition filtering, and cross-member positional
// aggregation.

#include <gtest/gtest.h>

#include "grouping/sequence_group.h"
#include "workload/generators.h"

namespace seq {
namespace {

class GroupingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Three "experiment result" sequences with controlled values.
    SchemaPtr schema = Schema::Make({Field{"y", TypeId::kDouble}});
    for (int e = 0; e < 3; ++e) {
      auto store = std::make_shared<BaseSequenceStore>(schema, 4);
      for (Position p = 1; p <= 10; ++p) {
        if (e == 1 && p % 2 == 0) continue;  // member 1 is sparser
        double value = 10.0 * e + static_cast<double>(p);
        ASSERT_TRUE(store->Append(p, Record{Value::Double(value)}).ok());
      }
      ASSERT_TRUE(
          engine_.RegisterBase("exp" + std::to_string(e), store).ok());
    }
  }
  Engine engine_;
};

TEST_F(GroupingTest, CreateValidatesSchemas) {
  auto group = SequenceGroup::Create(&engine_, {"exp0", "exp1", "exp2"});
  ASSERT_TRUE(group.ok()) << group.status();
  EXPECT_EQ(group->members().size(), 3u);

  SchemaPtr other = Schema::Make({Field{"z", TypeId::kInt64}});
  auto store = std::make_shared<BaseSequenceStore>(other, 4);
  ASSERT_TRUE(store->Append(1, Record{Value::Int64(1)}).ok());
  ASSERT_TRUE(engine_.RegisterBase("odd", store).ok());
  EXPECT_FALSE(SequenceGroup::Create(&engine_, {"exp0", "odd"}).ok());
  EXPECT_FALSE(SequenceGroup::Create(&engine_, {}).ok());
  EXPECT_FALSE(SequenceGroup::Create(&engine_, {"ghost"}).ok());
}

TEST_F(GroupingTest, MapRunsTemplatePerMember) {
  auto group = SequenceGroup::Create(&engine_, {"exp0", "exp1", "exp2"});
  ASSERT_TRUE(group.ok());
  auto results = group->Map([](const std::string& member) {
    return SeqRef(member).Select(Gt(Col("y"), Lit(15.0))).Build();
  });
  ASSERT_TRUE(results.ok()) << results.status();
  EXPECT_EQ(results->at("exp0").records.size(), 0u);   // max 10
  EXPECT_EQ(results->at("exp1").records.size(), 2u);   // 17, 19
  EXPECT_EQ(results->at("exp2").records.size(), 10u);  // 21..30
}

TEST_F(GroupingTest, FilterKeepsSatisfyingMembers) {
  auto group = SequenceGroup::Create(&engine_, {"exp0", "exp1", "exp2"});
  ASSERT_TRUE(group.ok());
  // The paper's example: sequences whose values ever exceed a threshold.
  auto filtered = group->Filter([](const std::string& member) {
    return SeqRef(member).Select(Gt(Col("y"), Lit(18.0))).Build();
  });
  ASSERT_TRUE(filtered.ok()) << filtered.status();
  EXPECT_EQ(filtered->members(),
            (std::vector<std::string>{"exp1", "exp2"}));

  auto none = group->Filter([](const std::string& member) {
    return SeqRef(member).Select(Gt(Col("y"), Lit(1e9))).Build();
  });
  EXPECT_FALSE(none.ok());
}

TEST_F(GroupingTest, PositionalAggAcrossMembers) {
  auto group = SequenceGroup::Create(&engine_, {"exp0", "exp1", "exp2"});
  ASSERT_TRUE(group.ok());
  auto avg = group->PositionalAgg(AggFunc::kAvg, "y");
  ASSERT_TRUE(avg.ok()) << avg.status();
  ASSERT_EQ(avg->records.size(), 10u);
  // Position 1: members 0,1,2 -> (1 + 11 + 21)/3 = 11.
  EXPECT_EQ(avg->records[0].pos, 1);
  EXPECT_DOUBLE_EQ(avg->records[0].rec[0].dbl(), 11.0);
  // Position 2: member 1 missing -> (2 + 22)/2 = 12.
  EXPECT_EQ(avg->records[1].pos, 2);
  EXPECT_DOUBLE_EQ(avg->records[1].rec[0].dbl(), 12.0);
  EXPECT_EQ(avg->schema->field(0).name, "avg_y");

  auto count = group->PositionalAgg(AggFunc::kCount, "y");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->records[0].rec[0].int64(), 3);
  EXPECT_EQ(count->records[1].rec[0].int64(), 2);
}

TEST_F(GroupingTest, PositionalAggRangeAndErrors) {
  auto group = SequenceGroup::Create(&engine_, {"exp0", "exp2"});
  ASSERT_TRUE(group.ok());
  auto sum = group->PositionalAgg(AggFunc::kSum, "y", Span::Of(3, 4));
  ASSERT_TRUE(sum.ok());
  ASSERT_EQ(sum->records.size(), 2u);
  EXPECT_DOUBLE_EQ(sum->records[0].rec[0].dbl(), 3.0 + 23.0);
  EXPECT_FALSE(group->PositionalAgg(AggFunc::kSum, "nope").ok());
}

TEST_F(GroupingTest, FilteredGroupComposesWithAgg) {
  auto group = SequenceGroup::Create(&engine_, {"exp0", "exp1", "exp2"});
  ASSERT_TRUE(group.ok());
  auto filtered = group->Filter([](const std::string& member) {
    return SeqRef(member).Select(Gt(Col("y"), Lit(18.0))).Build();
  });
  ASSERT_TRUE(filtered.ok());
  auto max = filtered->PositionalAgg(AggFunc::kMax, "y");
  ASSERT_TRUE(max.ok());
  // Position 1: members exp1 (11), exp2 (21) -> 21.
  EXPECT_DOUBLE_EQ(max->records[0].rec[0].dbl(), 21.0);
}

}  // namespace
}  // namespace seq
