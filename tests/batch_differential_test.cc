// Differential test for the two execution paths: every query shape the
// exec/engine suites exercise is run tuple-at-a-time and batch-at-a-time
// and must produce identical rows and identical AccessStats. The int64
// counters must match exactly; simulated_cost is a double accumulated in a
// different order between the paths, so it is compared to a tight relative
// tolerance instead of bit equality.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.h"
#include "exec/checkpoint.h"
#include "workload/generators.h"

namespace seq {
namespace {

void ExpectSameStats(const AccessStats& tuple, const AccessStats& batch,
                     const std::string& label) {
  EXPECT_EQ(tuple.stream_records, batch.stream_records) << label;
  EXPECT_EQ(tuple.stream_pages, batch.stream_pages) << label;
  EXPECT_EQ(tuple.probes, batch.probes) << label;
  EXPECT_EQ(tuple.probe_pages, batch.probe_pages) << label;
  EXPECT_EQ(tuple.cache_stores, batch.cache_stores) << label;
  EXPECT_EQ(tuple.cache_hits, batch.cache_hits) << label;
  EXPECT_EQ(tuple.predicate_evals, batch.predicate_evals) << label;
  EXPECT_EQ(tuple.agg_steps, batch.agg_steps) << label;
  EXPECT_EQ(tuple.records_output, batch.records_output) << label;
  // Same charges in a different summation order: ulp-level drift only.
  EXPECT_NEAR(tuple.simulated_cost, batch.simulated_cost,
              1e-9 * (1.0 + std::abs(tuple.simulated_cost)))
      << label;
}

void ExpectSameRows(const QueryResult& tuple, const QueryResult& batch,
                    const std::string& label) {
  ASSERT_EQ(tuple.records.size(), batch.records.size()) << label;
  for (size_t i = 0; i < tuple.records.size(); ++i) {
    EXPECT_EQ(tuple.records[i].pos, batch.records[i].pos)
        << label << " row " << i;
    ASSERT_EQ(tuple.records[i].rec.size(), batch.records[i].rec.size())
        << label << " row " << i;
    for (size_t j = 0; j < tuple.records[i].rec.size(); ++j) {
      EXPECT_EQ(tuple.records[i].rec[j], batch.records[i].rec[j])
          << label << " row " << i << " col " << j;
    }
  }
}

/// Streams `query` through PreparedQuery::Run with a RunOptions sink under
/// the requested driving mode, copying each visited row (sink-held
/// references are only valid during the callback).
QueryResult VisitRows(Engine& engine, const Query& query, bool use_batch,
                      AccessStats* stats, const std::string& label) {
  auto prepared = engine.Prepare(query);
  EXPECT_TRUE(prepared.ok()) << label;
  QueryResult out;
  if (!prepared.ok()) return out;
  RunOptions opts;
  opts.exec.use_batch = use_batch;
  opts.sink = [&out](Position p, const Record& rec) {
    out.records.push_back(PosRecord{p, rec});
  };
  opts.stats = stats;
  auto run = prepared->Run(opts);
  EXPECT_TRUE(run.ok()) << label << ": " << run.status().ToString();
  return out;
}

/// Runs `query` through every path — tuple, batch, profiled, streamed, and
/// morsel-parallel at 2 and 4 workers — and asserts identical rows and
/// stats everywhere. Every mode is expressed as a per-query RunOptions;
/// nothing mutates engine-wide state.
void RunBoth(Engine& engine, const Query& query, const std::string& label) {
  RunOptions tuple_opts;
  tuple_opts.exec.use_batch = false;
  AccessStats tuple_stats;
  tuple_opts.stats = &tuple_stats;
  auto tuple = engine.Run(query, tuple_opts);
  ASSERT_TRUE(tuple.ok()) << label << ": " << tuple.status().ToString();

  RunOptions batch_opts;
  batch_opts.exec.use_batch = true;
  AccessStats batch_stats;
  batch_opts.stats = &batch_stats;
  auto batch = engine.Run(query, batch_opts);
  ASSERT_TRUE(batch.ok()) << label << ": " << batch.status().ToString();

  ExpectSameRows(*tuple, *batch, label);
  ExpectSameStats(tuple_stats, batch_stats, label);

  // The profiled executor must batch through its wrappers too.
  RunOptions prof_opts;
  prof_opts.exec.use_batch = true;
  prof_opts.profile = true;
  AccessStats prof_stats;
  prof_opts.stats = &prof_stats;
  auto profiled = engine.Run(query, prof_opts);
  ASSERT_TRUE(profiled.ok()) << label << ": " << profiled.status().ToString();
  ASSERT_TRUE(profiled->profile.has_value()) << label;
  ExpectSameRows(*tuple, *profiled, label + " [profiled]");
  ExpectSameStats(tuple_stats, prof_stats, label + " [profiled]");

  // Streaming consumption must visit exactly the materialized rows, with
  // the same charges, in both driving modes.
  AccessStats tv_stats;
  QueryResult tv = VisitRows(engine, query, /*use_batch=*/false, &tv_stats,
                             label + " [visit t]");
  ExpectSameRows(*tuple, tv, label + " [visit tuple]");
  ExpectSameStats(tuple_stats, tv_stats, label + " [visit tuple]");

  AccessStats bv_stats;
  QueryResult bv = VisitRows(engine, query, /*use_batch=*/true, &bv_stats,
                             label + " [visit b]");
  ExpectSameRows(*tuple, bv, label + " [visit batch]");
  ExpectSameStats(tuple_stats, bv_stats, label + " [visit batch]");

  // Morsel parity sweep: the same query split into small forced morsels at
  // 2 and 4 workers must produce byte-identical rows and merged AccessStats
  // equal to the serial counters. Plans whose operators cannot partition
  // fall back to serial inside the executor — still a parity check, just a
  // trivial one.
  for (int workers : {2, 4}) {
    RunOptions par_opts;
    par_opts.exec.use_batch = true;
    par_opts.exec.parallelism = workers;
    par_opts.exec.morsel_size = 256;
    AccessStats par_stats;
    par_opts.stats = &par_stats;
    auto par = engine.Run(query, par_opts);
    const std::string plabel =
        label + " [parallel x" + std::to_string(workers) + "]";
    ASSERT_TRUE(par.ok()) << plabel << ": " << par.status().ToString();
    ExpectSameRows(*tuple, *par, plabel);
    ExpectSameStats(tuple_stats, par_stats, plabel);
  }
}

void RunBoth(Engine& engine, const QueryBuilder& builder,
             std::optional<Span> range, const std::string& label) {
  Query query;
  query.graph = builder.Build();
  query.range = range;
  RunBoth(engine, query, label);
}

class BatchDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    IntSeriesOptions dense;
    dense.span = Span::Of(1, 4000);
    dense.density = 0.9;
    dense.seed = 17;
    ASSERT_TRUE(engine_.RegisterBase("s", *MakeIntSeries(dense)).ok());

    IntSeriesOptions sparse;
    sparse.span = Span::Of(1, 4000);
    sparse.density = 0.15;
    sparse.seed = 23;
    ASSERT_TRUE(engine_.RegisterBase("sp", *MakeIntSeries(sparse)).ok());

    // Unclustered store: per-record page charges exercise the scan's page
    // accounting on the other branch.
    IntSeriesOptions uncl;
    uncl.span = Span::Of(1, 500);
    uncl.density = 0.8;
    uncl.seed = 29;
    uncl.costs.clustered = false;
    ASSERT_TRUE(engine_.RegisterBase("u", *MakeIntSeries(uncl)).ok());

    StockSeriesOptions stocks;
    stocks.span = Span::Of(1, 2000);
    stocks.density = 0.95;
    stocks.seed = 31;
    ASSERT_TRUE(engine_.RegisterBase("ibm", *MakeStockSeries(stocks)).ok());

    // String-bearing sequences: record movement must not slice or copy
    // payloads differently between the paths.
    EventSeriesOptions eq;
    eq.span = Span::Of(1, 3000);
    eq.density = 0.05;
    eq.seed = 37;
    ASSERT_TRUE(engine_.RegisterBase("quakes", *MakeEarthquakes(eq)).ok());
    EventSeriesOptions vo;
    vo.span = Span::Of(1, 3000);
    vo.density = 0.03;
    vo.seed = 41;
    ASSERT_TRUE(engine_.RegisterBase("volcanos", *MakeVolcanos(vo)).ok());
  }

  Engine engine_;
};

TEST_F(BatchDifferentialTest, ScanSelectProject) {
  RunBoth(engine_, SeqRef("s"), std::nullopt, "plain scan");
  RunBoth(engine_, SeqRef("s").Select(Gt(Col("value"), Lit(int64_t{500}))),
          std::nullopt, "select");
  RunBoth(engine_,
          SeqRef("ibm")
              .Select(Gt(Col("close"), Col("open")))
              .Project({"close", "volume"}),
          std::nullopt, "select+project");
  RunBoth(engine_,
          SeqRef("s").Select(And(Gt(Col("value"), Lit(int64_t{100})),
                                 Lt(Col("value"), Lit(int64_t{900})))),
          std::nullopt, "conjunctive select");
  RunBoth(engine_,
          SeqRef("s").Select(
              Eq(Sub(Col("value"), Mul(Div(Col("value"), Lit(int64_t{7})),
                                       Lit(int64_t{7}))),
                 Lit(int64_t{3}))),
          std::nullopt, "arithmetic select");
}

TEST_F(BatchDifferentialTest, ClippedRangesAndSparseInputs) {
  RunBoth(engine_, SeqRef("s"), Span::Of(100, 300), "clipped scan");
  RunBoth(engine_, SeqRef("sp").Select(Gt(Col("value"), Lit(int64_t{200}))),
          Span::Of(50, 3500), "sparse select");
  RunBoth(engine_, SeqRef("u").Project({"value"}), std::nullopt,
          "unclustered scan");
  RunBoth(engine_, SeqRef("s"), Span::Of(3999, 4000), "tail sliver");
}

TEST_F(BatchDifferentialTest, Offsets) {
  RunBoth(engine_, SeqRef("s").Offset(-3), std::nullopt, "pos offset back");
  RunBoth(engine_, SeqRef("s").Offset(5), Span::Of(1, 3000),
          "pos offset fwd");
  RunBoth(engine_, SeqRef("sp").Prev(), std::nullopt, "previous");
  RunBoth(engine_, SeqRef("sp").Next(), std::nullopt, "next");
  RunBoth(engine_, SeqRef("sp").ValueOffset(-3), std::nullopt,
          "third previous");
  RunBoth(engine_, SeqRef("sp").ValueOffset(2), Span::Of(10, 3900),
          "second next");
}

TEST_F(BatchDifferentialTest, Aggregates) {
  RunBoth(engine_, SeqRef("s").Agg(AggFunc::kSum, "value", 7), std::nullopt,
          "window sum");
  RunBoth(engine_, SeqRef("sp").Agg(AggFunc::kMax, "value", 20),
          std::nullopt, "sparse window max");
  RunBoth(engine_, SeqRef("s").Agg(AggFunc::kAvg, "value", 5),
          Span::Of(500, 1500), "window avg clipped");
  RunBoth(engine_, SeqRef("s").RunningAgg(AggFunc::kCount, "value"),
          std::nullopt, "running count");
  RunBoth(engine_, SeqRef("sp").RunningAgg(AggFunc::kMin, "value"),
          std::nullopt, "sparse running min");
  RunBoth(engine_, SeqRef("s").OverallAgg(AggFunc::kSum, "value"),
          Span::Of(1, 4000), "overall sum");
}

TEST_F(BatchDifferentialTest, ComposeVariants) {
  RunBoth(engine_, SeqRef("volcanos").ComposeWith(SeqRef("quakes").Prev()),
          std::nullopt, "volcano join");
  RunBoth(engine_,
          SeqRef("volcanos")
              .ComposeWith(SeqRef("quakes").Prev())
              .Select(Gt(Col("strength"), Lit(7.0)))
              .Project({"name"}),
          std::nullopt, "fig1 query");
  RunBoth(engine_,
          SeqRef("s").ComposeWith(SeqRef("sp"),
                                  Gt(Col("value", 0), Col("value", 1))),
          std::nullopt, "predicated compose");
  RunBoth(engine_,
          SeqRef("quakes").ComposeWith(SeqRef("volcanos")), std::nullopt,
          "event intersect");
}

TEST_F(BatchDifferentialTest, CollapseExpandAndChains) {
  RunBoth(engine_, SeqRef("s").Collapse(7, AggFunc::kSum, "value"),
          std::nullopt, "collapse");
  RunBoth(engine_, SeqRef("s").Collapse(5, AggFunc::kAvg, "value").Expand(5),
          std::nullopt, "collapse+expand");
  RunBoth(engine_,
          SeqRef("s")
              .Agg(AggFunc::kSum, "value", 3, "sum")
              .Offset(-2)
              .Agg(AggFunc::kSum, "sum", 3, "sum")
              .Offset(-2),
          std::nullopt, "fig2 chain");
  RunBoth(engine_,
          SeqRef("s")
              .Select(Gt(Col("value"), Lit(int64_t{50})))
              .Agg(AggFunc::kAvg, "value", 10, "avg")
              .Select(Gt(Col("avg"), Lit(int64_t{400})))
              .Project({"avg"}),
          std::nullopt, "select-agg-select");
  RunBoth(engine_,
          SeqRef("ibm")
              .Agg(AggFunc::kAvg, "close", 21, "ma21")
              .ComposeWith(SeqRef("ibm").Agg(AggFunc::kAvg, "close", 5,
                                             "ma5")),
          std::nullopt, "moving-average cross");
}

TEST_F(BatchDifferentialTest, PointQueries) {
  // Point-position queries: a probed root is driven through ProbeBatch in
  // chunks of the requested positions; a stream root falls back to the
  // tuple skip-scan in both settings.
  Query query;
  query.graph = SeqRef("s").Agg(AggFunc::kSum, "value", 5).Build();
  query.positions = {10, 57, 58, 900, 3999};
  RunBoth(engine_, query, "point positions");
}

TEST_F(BatchDifferentialTest, ProbedRootPlans) {
  // Force a probed root: batch driving then goes through ProbeBatch
  // instead of NextBatch, and the probe sets — and therefore every
  // AccessStats counter — must match the tuple Probe loop exactly.
  engine_.options().force_root_mode = AccessMode::kProbed;
  RunBoth(engine_, SeqRef("s").Select(Gt(Col("value"), Lit(int64_t{500}))),
          std::nullopt, "probed select");
  RunBoth(engine_, SeqRef("sp").Prev(), std::nullopt, "probed previous");
  RunBoth(engine_, SeqRef("sp").ValueOffset(2), Span::Of(10, 3900),
          "probed second next");
  RunBoth(engine_,
          SeqRef("s")
              .ValueOffset(-2)
              .Select(Gt(Col("value"), Lit(int64_t{100})))
              .Project({"value"}),
          std::nullopt, "probed offset chain");
  RunBoth(engine_, SeqRef("s").Agg(AggFunc::kSum, "value", 7), std::nullopt,
          "probed window sum");
  RunBoth(engine_, SeqRef("s").RunningAgg(AggFunc::kCount, "value"),
          std::nullopt, "probed running count");
  RunBoth(engine_, SeqRef("s").OverallAgg(AggFunc::kSum, "value"),
          Span::Of(1, 4000), "probed overall sum");
  RunBoth(engine_, SeqRef("s").Collapse(7, AggFunc::kSum, "value"),
          std::nullopt, "probed collapse");
  RunBoth(engine_, SeqRef("s").Collapse(5, AggFunc::kAvg, "value").Expand(5),
          std::nullopt, "probed collapse+expand");
  RunBoth(engine_, SeqRef("quakes").ComposeWith(SeqRef("volcanos")),
          std::nullopt, "probed event intersect");
  RunBoth(engine_,
          SeqRef("s").ComposeWith(SeqRef("sp"),
                                  Gt(Col("value", 0), Col("value", 1))),
          std::nullopt, "probed predicated compose");
}

TEST_F(BatchDifferentialTest, ProbedPointPositions) {
  // Probed root + explicit positions: the executor chunks the position
  // list itself through ProbeBatch.
  engine_.options().force_root_mode = AccessMode::kProbed;
  Query query;
  query.graph = SeqRef("s").Agg(AggFunc::kSum, "value", 5).Build();
  query.positions = {10, 57, 58, 900, 3999};
  RunBoth(engine_, query, "probed point positions");

  Query offsets;
  offsets.graph = SeqRef("sp").Prev().Build();
  offsets.positions = {1, 2, 3, 500, 501, 502, 3000};
  RunBoth(engine_, offsets, "probed point value offset");

  Query join;
  join.graph = SeqRef("quakes").ComposeWith(SeqRef("volcanos")).Build();
  join.positions = {5, 100, 101, 2500};
  RunBoth(engine_, join, "probed point compose");
}

TEST_F(BatchDifferentialTest, EmptyAndEdgeResults) {
  RunBoth(engine_, SeqRef("s").Select(Gt(Col("value"), Lit(int64_t{100000}))),
          std::nullopt, "selects nothing");
  RunBoth(engine_, SeqRef("sp"), Span::Of(3990, 4000), "nearly empty tail");
}

TEST_F(BatchDifferentialTest, MorselDrivingActuallyGoesParallel) {
  // Guard against the sweep above silently degenerating: a partitionable
  // plan with forced morsels must take the parallel path, and the decision
  // must be visible in the profile notes.
  Query query;
  query.graph =
      SeqRef("s").Select(Gt(Col("value"), Lit(int64_t{100}))).Build();
  RunOptions opts;
  opts.exec.use_batch = true;
  opts.exec.parallelism = 4;
  opts.exec.morsel_size = 256;
  opts.profile = true;
  auto run = engine_.Run(query, opts);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_TRUE(run->profile.has_value());
  bool saw_parallel = false;
  for (const std::string& note : run->profile->notes) {
    if (note.find("parallel:") != std::string::npos) saw_parallel = true;
  }
  EXPECT_TRUE(saw_parallel)
      << "expected a 'parallel:' execution note, notes were: "
      << ::testing::PrintToString(run->profile->notes);
}

// Budget trips must fire at the same point — same ok-ness, same status
// message — whether the query runs serial or morsel-parallel. The sweep
// walks max_rows across the interesting boundary values around the true
// answer size for a stream root and a probed root.
TEST_F(BatchDifferentialTest, RowBudgetTripParity) {
  Query query;
  query.graph =
      SeqRef("s").Select(Gt(Col("value"), Lit(int64_t{200}))).Build();

  RunOptions serial_opts;
  serial_opts.exec.use_batch = true;
  auto full = engine_.Run(query, serial_opts);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  const size_t total = full->records.size();
  ASSERT_GT(total, 100u);

  const size_t budgets[] = {1, 10, total / 2, total - 1, total, total + 1};
  for (size_t budget : budgets) {
    RunOptions serial;
    serial.exec.use_batch = true;
    serial.exec.guards.max_rows = budget;
    auto sres = engine_.Run(query, serial);
    for (int workers : {2, 4}) {
      RunOptions par;
      par.exec.use_batch = true;
      par.exec.guards.max_rows = budget;
      par.exec.parallelism = workers;
      par.exec.morsel_size = 256;
      auto pres = engine_.Run(query, par);
      const std::string label = "max_rows=" + std::to_string(budget) +
                                " x" + std::to_string(workers);
      ASSERT_EQ(sres.ok(), pres.ok()) << label;
      if (!sres.ok()) {
        EXPECT_EQ(sres.status().ToString(), pres.status().ToString()) << label;
      } else {
        ExpectSameRows(*sres, *pres, label);
      }
    }
  }
}

TEST_F(BatchDifferentialTest, RowBudgetTripParityProbedRoot) {
  engine_.options().force_root_mode = AccessMode::kProbed;
  Query query;
  query.graph = SeqRef("s").Agg(AggFunc::kSum, "value", 7).Build();

  RunOptions serial_opts;
  serial_opts.exec.use_batch = true;
  auto full = engine_.Run(query, serial_opts);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  const size_t total = full->records.size();
  ASSERT_GT(total, 10u);

  for (size_t budget : {size_t{1}, total / 2, total, total + 1}) {
    RunOptions serial;
    serial.exec.use_batch = true;
    serial.exec.guards.max_rows = budget;
    auto sres = engine_.Run(query, serial);
    for (int workers : {2, 4}) {
      RunOptions par;
      par.exec.use_batch = true;
      par.exec.guards.max_rows = budget;
      par.exec.parallelism = workers;
      par.exec.morsel_size = 256;
      auto pres = engine_.Run(query, par);
      const std::string label = "probed max_rows=" + std::to_string(budget) +
                                " x" + std::to_string(workers);
      ASSERT_EQ(sres.ok(), pres.ok()) << label;
      if (!sres.ok()) {
        EXPECT_EQ(sres.status().ToString(), pres.status().ToString()) << label;
      } else {
        ExpectSameRows(*sres, *pres, label);
      }
    }
  }
}

// Suspend/resume differential: a checkpointed run suspended at every k-th
// chunk boundary and resumed to completion must reproduce the
// uninterrupted checkpointed run exactly — rows and AccessStats — across
// both driving modes, both root modes, and serial vs 4-worker execution.
// Each intermediate checkpoint travels through its file, so the restored
// prefix (rows, stats, operator carries) is what the parity checks see.
TEST_F(BatchDifferentialTest, SuspendResumeParitySweep) {
  const std::string path = ::testing::TempDir() + "batch_diff_suspend.ckpt";
  struct Shape {
    std::string name;
    LogicalOpPtr graph;
  };
  const std::vector<Shape> shapes = {
      {"window sum", SeqRef("s").Agg(AggFunc::kSum, "value", 7).Build()},
      {"stock select", SeqRef("ibm")
                           .Select(Gt(Col("close"), Col("open")))
                           .Project({"close", "volume"})
                           .Build()},
  };
  // Stream first, probed second: force_root_mode stays set once flipped.
  for (bool probed_root : {false, true}) {
    if (probed_root) {
      engine_.options().force_root_mode = AccessMode::kProbed;
    }
    for (const Shape& shape : shapes) {
      Query query;
      query.graph = shape.graph;
      query.range = Span::Of(1, 4000);
      for (bool use_batch : {true, false}) {
        for (int workers : {1, 4}) {
          RunOptions opts;
          opts.exec.use_batch = use_batch;
          opts.exec.parallelism = workers;
          if (workers > 1) opts.exec.morsel_size = 256;
          opts.exec.checkpoint.enabled = true;
          opts.exec.checkpoint.chunk = 512;
          opts.exec.checkpoint.path = path;
          const std::string ctx = shape.name +
                                  (use_batch ? " [batch" : " [tuple") +
                                  (probed_root ? ",probed" : ",stream") +
                                  ",x" + std::to_string(workers) + "]";

          AccessStats base_stats;
          RunOptions base_opts = opts;
          base_opts.stats = &base_stats;
          auto base = engine_.Run(query, base_opts);
          ASSERT_TRUE(base.ok()) << ctx << ": " << base.status().ToString();

          for (int64_t k : {1, 3}) {
            AccessStats stats;
            RunOptions chain = opts;
            chain.exec.checkpoint.suspend_every_chunks = k;
            chain.stats = &stats;
            auto r = engine_.Run(query, chain);
            int suspensions = 0;
            while (!r.ok() && IsQuerySuspended(r.status())) {
              ASSERT_LT(++suspensions, 100) << ctx;
              r = engine_.Resume(path, chain);
            }
            std::remove(path.c_str());
            const std::string label = ctx + " k=" + std::to_string(k);
            ASSERT_TRUE(r.ok()) << label << ": " << r.status().ToString();
            EXPECT_GE(suspensions, 1) << label;
            ExpectSameRows(*base, *r, label);
            ExpectSameStats(base_stats, stats, label);
          }
        }
      }
    }
  }
}

TEST_F(BatchDifferentialTest, PageBudgetTripParity) {
  Query query;
  query.graph = SeqRef("s").Project({"value"}).Build();

  RunOptions count_opts;
  count_opts.exec.use_batch = true;
  AccessStats stats;
  count_opts.stats = &stats;
  ASSERT_TRUE(engine_.Run(query, count_opts).ok());
  const int64_t pages = stats.stream_pages + stats.probe_pages;
  ASSERT_GT(pages, 4);

  for (int64_t budget : {pages / 2, pages, pages * 2}) {
    RunOptions serial;
    serial.exec.use_batch = true;
    serial.exec.guards.max_pages = budget;
    auto sres = engine_.Run(query, serial);
    for (int workers : {2, 4}) {
      RunOptions par;
      par.exec.use_batch = true;
      par.exec.guards.max_pages = budget;
      par.exec.parallelism = workers;
      par.exec.morsel_size = 256;
      auto pres = engine_.Run(query, par);
      const std::string label = "max_pages=" + std::to_string(budget) + " x" +
                                std::to_string(workers);
      ASSERT_EQ(sres.ok(), pres.ok()) << label;
      if (!sres.ok()) {
        EXPECT_EQ(sres.status().ToString(), pres.status().ToString()) << label;
      }
    }
  }
}

}  // namespace
}  // namespace seq
