#ifndef SEQ_TESTS_REFERENCE_EVAL_H_
#define SEQ_TESTS_REFERENCE_EVAL_H_

// A deliberately naive reference evaluator implementing the paper's model
// semantics literally: S_out(i) = Op(S_1, ..., S_n, i), computed
// independently at every position with no caching, no plan, no optimizer.
// Exponentially slow on purpose — it is the oracle the engine is tested
// against, and shares no code with the execution engine.

#include <map>
#include <optional>
#include <utility>

#include "catalog/catalog.h"
#include "common/result.h"
#include "expr/compiled_expr.h"
#include "logical/logical_op.h"

namespace seq::testing {

class ReferenceEvaluator {
 public:
  /// `horizon` bounds the backward search of unbounded-scope operators
  /// (value offsets, running aggregates); it must cover the catalog's
  /// spans for exact answers.
  ReferenceEvaluator(const Catalog* catalog, Span horizon)
      : catalog_(catalog), horizon_(horizon) {}

  /// The record of the derived sequence `op` at position `pos`, or
  /// nullopt for the Null record. Errors surface as Status. Results are
  /// memoized per graph node; call ClearCache() before switching to a
  /// different graph (Materialize does so automatically).
  Result<std::optional<Record>> At(const LogicalOp& op, Position pos) const;

  /// All non-null records of `op` in `range`, in position order.
  Result<std::vector<PosRecord>> Materialize(const LogicalOp& op,
                                             Span range) const;

  void ClearCache() const { memo_.clear(); }

 private:
  Result<SchemaPtr> SchemaOf(const LogicalOp& op) const;
  Result<std::optional<Record>> AtImpl(const LogicalOp& op,
                                       Position pos) const;

  const Catalog* catalog_;
  Span horizon_;
  // Memoization of (node, position) results: purely an evaluation-speed
  // device — operators with unbounded scopes stacked on each other would
  // otherwise make the literal recursion exponential.
  mutable std::map<std::pair<const LogicalOp*, Position>,
                   std::optional<Record>>
      memo_;
};

}  // namespace seq::testing

#endif  // SEQ_TESTS_REFERENCE_EVAL_H_
