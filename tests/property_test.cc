// Property-based equivalence tests: random query graphs over random
// catalogs must return identical answers under every optimizer
// configuration — rewrites on/off, span pushdown on/off, caches ablated,
// and the probed root mode. Any unsound transformation, cost-driven
// strategy choice, or operator bug shows up as a result mismatch.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "tests/test_util.h"

namespace seq {
namespace {

using seq::testing::ExpectSameRecords;
using seq::testing::FillSmallCatalog;
using seq::testing::RandomGraph;

constexpr Span kSpan = Span::Of(0, 399);

class EquivalenceWebTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EquivalenceWebTest, AllConfigurationsAgree) {
  uint64_t seed = GetParam();
  Rng rng(seed);

  struct Config {
    const char* name;
    OptimizerOptions options;
  };
  std::vector<Config> configs;
  configs.push_back({"baseline", {}});
  {
    OptimizerOptions o;
    o.enable_rewrites = false;
    configs.push_back({"no-rewrites", o});
  }
  {
    OptimizerOptions o;
    o.enable_span_pushdown = false;
    configs.push_back({"no-span-pushdown", o});
  }
  {
    OptimizerOptions o;
    o.cost_params.disable_window_cache = true;
    o.cost_params.disable_incremental_value_offset = true;
    configs.push_back({"no-caches", o});
  }
  {
    OptimizerOptions o;
    o.force_root_mode = AccessMode::kProbed;
    configs.push_back({"probed-root", o});
  }
  {
    OptimizerOptions o;
    o.cost_params.force_join_strategy = 0;  // always lock-step
    configs.push_back({"forced-lockstep", o});
  }

  std::vector<Engine> engines;
  engines.reserve(configs.size());
  for (const Config& config : configs) {
    engines.emplace_back(config.options);
    FillSmallCatalog(&engines.back().catalog(), seed);
  }

  for (int trial = 0; trial < 8; ++trial) {
    LogicalOpPtr graph =
        RandomGraph(engines[0].catalog(), &rng, 1 + trial % 4);
    Span range = Span::Of(kSpan.start - 20, kSpan.end + 20);
    auto reference = engines[0].Run(graph, range);
    if (!reference.ok()) {
      // Degenerate random graphs must fail identically everywhere.
      for (size_t c = 1; c < engines.size(); ++c) {
        EXPECT_FALSE(engines[c].Run(graph, range).ok()) << configs[c].name;
      }
      continue;
    }
    for (size_t c = 1; c < engines.size(); ++c) {
      auto other = engines[c].Run(graph, range);
      ASSERT_TRUE(other.ok())
          << configs[c].name << ": " << other.status() << "\n"
          << graph->ToTreeString();
      ExpectSameRecords(reference->records, other->records,
                        std::string(configs[c].name) + " trial " +
                            std::to_string(trial) + "\n" +
                            graph->ToTreeString());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceWebTest,
                         ::testing::Range<uint64_t>(1, 13));

// Point queries must agree with filtering the range-query result.
class PointQueryPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PointQueryPropertyTest, PointsMatchRangeSubset) {
  uint64_t seed = GetParam();
  Rng rng(seed + 500);
  Engine engine;
  FillSmallCatalog(&engine.catalog(), seed + 500);
  for (int trial = 0; trial < 5; ++trial) {
    LogicalOpPtr graph = RandomGraph(engine.catalog(), &rng, 1 + trial % 3);
    auto full = engine.Run(graph, kSpan);
    if (!full.ok()) continue;
    std::vector<Position> positions;
    for (Position p = kSpan.start; p <= kSpan.end;
         p += rng.UniformInt(3, 40)) {
      positions.push_back(p);
    }
    auto points = engine.RunAt(graph, positions);
    ASSERT_TRUE(points.ok()) << points.status() << "\n"
                             << graph->ToTreeString();
    std::vector<PosRecord> expected;
    size_t pi = 0;
    for (const PosRecord& pr : full->records) {
      while (pi < positions.size() && positions[pi] < pr.pos) ++pi;
      if (pi < positions.size() && positions[pi] == pr.pos) {
        expected.push_back(pr);
      }
    }
    ExpectSameRecords(points->records, expected, graph->ToTreeString());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PointQueryPropertyTest,
                         ::testing::Range<uint64_t>(1, 7));

}  // namespace
}  // namespace seq
