// Oracle tests: the optimizing engine's answers must equal the naive
// reference evaluator's position-by-position computation of the paper's
// model semantics, for randomized graphs and for targeted operator cases.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "tests/reference_eval.h"
#include "tests/test_util.h"

namespace seq {
namespace {

using seq::testing::ExpectSameRecords;
using seq::testing::FillSmallCatalog;
using seq::testing::RandomGraph;
using seq::testing::RandomGraphOptions;
using seq::testing::ReferenceEvaluator;

constexpr Span kSpan = Span::Of(0, 399);
// Horizon with slack so offsets shifted outside the span stay exact.
constexpr Span kHorizon = Span::Of(-60, 459);

class OracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OracleTest, EngineMatchesReferenceOnRandomGraphs) {
  uint64_t seed = GetParam();
  Engine engine;
  FillSmallCatalog(&engine.catalog(), seed);
  ReferenceEvaluator reference(&engine.catalog(), kHorizon);
  Rng rng(seed * 7919);
  RandomGraphOptions opts;
  opts.allow_overall_agg = false;

  for (int trial = 0; trial < 6; ++trial) {
    LogicalOpPtr graph =
        RandomGraph(engine.catalog(), &rng, 1 + trial % 3, opts);
    Span range = Span::Of(kSpan.start - 20, kSpan.end + 20);
    auto engine_result = engine.Run(graph, range);
    if (!engine_result.ok()) continue;  // degenerate random graph
    auto oracle = reference.Materialize(*graph, range);
    ASSERT_TRUE(oracle.ok()) << oracle.status();
    ExpectSameRecords(engine_result->records, *oracle,
                      "seed " + std::to_string(seed) + " trial " +
                          std::to_string(trial) + "\n" +
                          graph->ToTreeString());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleTest,
                         ::testing::Range<uint64_t>(1, 21));

// Targeted single-operator oracle checks over every aggregate function and
// several window sizes — cheap, exhaustive within the grid.
class AggOracleTest
    : public ::testing::TestWithParam<std::tuple<int, int64_t>> {};

TEST_P(AggOracleTest, WindowAggMatchesReference) {
  auto [func_idx, window] = GetParam();
  AggFunc func = static_cast<AggFunc>(func_idx);
  Engine engine;
  FillSmallCatalog(&engine.catalog(), 1234);
  ReferenceEvaluator reference(&engine.catalog(), kHorizon);

  auto graph =
      SeqRef("s1").Agg(func, "v", window).Build();  // s1: density 0.5
  auto engine_result = engine.Run(graph, kSpan);
  ASSERT_TRUE(engine_result.ok()) << engine_result.status();
  auto oracle = reference.Materialize(*graph, kSpan);
  ASSERT_TRUE(oracle.ok());
  ExpectSameRecords(engine_result->records, *oracle,
                    std::string(AggFuncName(func)) + " window " +
                        std::to_string(window));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AggOracleTest,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values<int64_t>(1, 2, 5, 17)));

class OffsetOracleTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(OffsetOracleTest, ValueOffsetMatchesReference) {
  int64_t l = GetParam();
  Engine engine;
  FillSmallCatalog(&engine.catalog(), 777);
  ReferenceEvaluator reference(&engine.catalog(), kHorizon);
  auto graph = SeqRef("s2").ValueOffset(l).Build();  // s2: density 0.1
  auto engine_result = engine.Run(graph, kSpan);
  ASSERT_TRUE(engine_result.ok()) << engine_result.status();
  auto oracle = reference.Materialize(*graph, kSpan);
  ASSERT_TRUE(oracle.ok());
  ExpectSameRecords(engine_result->records, *oracle,
                    "value offset " + std::to_string(l));
}

INSTANTIATE_TEST_SUITE_P(Offsets, OffsetOracleTest,
                         ::testing::Values(-3, -2, -1, 1, 2, 3));

TEST(CollapseOracleTest, MatchesReference) {
  Engine engine;
  FillSmallCatalog(&engine.catalog(), 31);
  ReferenceEvaluator reference(&engine.catalog(), kHorizon);
  for (int64_t factor : {2, 7, 30}) {
    auto graph = SeqRef("s0").Collapse(factor, AggFunc::kSum, "v").Build();
    auto engine_result = engine.Run(graph);
    ASSERT_TRUE(engine_result.ok());
    Span collapsed = Span::Of(0, kSpan.end / factor);
    auto oracle = reference.Materialize(*graph, collapsed);
    ASSERT_TRUE(oracle.ok());
    ExpectSameRecords(engine_result->records, *oracle,
                      "collapse " + std::to_string(factor));
  }
}

TEST(ComposeOracleTest, JoinPredicateMatchesReference) {
  Engine engine;
  FillSmallCatalog(&engine.catalog(), 55);
  ReferenceEvaluator reference(&engine.catalog(), kHorizon);
  auto graph = SeqRef("s0")
                   .ComposeWith(SeqRef("s1"), Gt(Col("v", 0), Col("v", 1)))
                   .Build();
  auto engine_result = engine.Run(graph, kSpan);
  ASSERT_TRUE(engine_result.ok());
  auto oracle = reference.Materialize(*graph, kSpan);
  ASSERT_TRUE(oracle.ok());
  ExpectSameRecords(engine_result->records, *oracle, "compose-pred");
}

}  // namespace
}  // namespace seq
