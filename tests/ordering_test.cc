// Tests for §5.1 multiple orderings: one record set viewed and queried
// under valid-time and transaction-time orderings.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "ordering/multi_ordered.h"

namespace seq {
namespace {

Result<MultiOrderedSet> MakeBitemporal() {
  SchemaPtr schema = Schema::Make({Field{"price", TypeId::kDouble}});
  SEQ_ASSIGN_OR_RETURN(
      MultiOrderedSet set,
      MultiOrderedSet::Create(schema, {"valid_time", "tx_time"}));
  // (valid, tx, price): corrections arrive out of valid order.
  SEQ_RETURN_IF_ERROR(set.Add({10, 100}, {Value::Double(5.0)}));
  SEQ_RETURN_IF_ERROR(set.Add({20, 101}, {Value::Double(6.0)}));
  SEQ_RETURN_IF_ERROR(set.Add({15, 102}, {Value::Double(5.5)}));  // late fix
  SEQ_RETURN_IF_ERROR(set.Add({30, 103}, {Value::Double(7.0)}));
  return set;
}

TEST(MultiOrderedTest, CreateValidation) {
  SchemaPtr schema = Schema::Make({Field{"price", TypeId::kDouble}});
  EXPECT_FALSE(MultiOrderedSet::Create(schema, {}).ok());
  EXPECT_FALSE(MultiOrderedSet::Create(schema, {"t", "t"}).ok());
  EXPECT_FALSE(MultiOrderedSet::Create(schema, {"price"}).ok());
  EXPECT_TRUE(MultiOrderedSet::Create(schema, {"valid", "tx"}).ok());
}

TEST(MultiOrderedTest, AddValidation) {
  auto set = MakeBitemporal();
  ASSERT_TRUE(set.ok());
  EXPECT_FALSE(set->Add({40}, {Value::Double(1.0)}).ok());  // arity
  EXPECT_FALSE(
      set->Add({10, 999}, {Value::Double(1.0)}).ok());  // dup valid_time
  EXPECT_FALSE(
      set->Add({99, 100}, {Value::Double(1.0)}).ok());  // dup tx_time
  EXPECT_FALSE(set->Add({50, 200}, {Value::Int64(1)}).ok());  // type
}

TEST(MultiOrderedTest, EachOrderingSortsItsWay) {
  auto set = MakeBitemporal();
  ASSERT_TRUE(set.ok());
  auto by_valid = set->AsSequence("valid_time");
  ASSERT_TRUE(by_valid.ok()) << by_valid.status();
  // valid order: 10, 15, 20, 30 — note the late fix interleaves.
  std::vector<Position> valid_positions;
  for (const PosRecord& pr : (*by_valid)->records()) {
    valid_positions.push_back(pr.pos);
  }
  EXPECT_EQ(valid_positions, (std::vector<Position>{10, 15, 20, 30}));
  EXPECT_EQ((*by_valid)->schema()->ToString(),
            "<tx_time:int64, price:double>");

  auto by_tx = set->AsSequence("tx_time");
  ASSERT_TRUE(by_tx.ok());
  std::vector<double> tx_prices;
  for (const PosRecord& pr : (*by_tx)->records()) {
    tx_prices.push_back(pr.rec[1].dbl());
  }
  // tx order: 5.0, 6.0, 5.5, 7.0 — arrival order.
  EXPECT_EQ(tx_prices, (std::vector<double>{5.0, 6.0, 5.5, 7.0}));

  EXPECT_FALSE(set->AsSequence("nope").ok());
}

TEST(MultiOrderedTest, QueriesRunUnderEitherOrdering) {
  auto set = MakeBitemporal();
  ASSERT_TRUE(set.ok());
  Engine engine;
  ASSERT_TRUE(
      engine.RegisterBase("by_valid", *set->AsSequence("valid_time")).ok());
  ASSERT_TRUE(
      engine.RegisterBase("by_tx", *set->AsSequence("tx_time")).ok());

  // Valid-time query: moving max of price over valid time.
  auto valid_max = engine.Run(
      SeqRef("by_valid").RunningAgg(AggFunc::kMax, "price").Build(),
      Span::Of(10, 30));
  ASSERT_TRUE(valid_max.ok());
  EXPECT_DOUBLE_EQ(valid_max->records.back().rec[0].dbl(), 7.0);

  // Transaction-time ("as of") query: records known by tx time 102 whose
  // valid time is before 20.
  auto as_of = engine.Run(SeqRef("by_tx")
                              .Select(And(Le(Expr::Position(),
                                             Lit(int64_t{102})),
                                          Lt(Col("valid_time"),
                                              Lit(int64_t{20}))))
                              .Build());
  ASSERT_TRUE(as_of.ok()) << as_of.status();
  ASSERT_EQ(as_of->records.size(), 2u);  // (10,100) and (15,102)
  EXPECT_DOUBLE_EQ(as_of->records[0].rec[1].dbl(), 5.0);
  EXPECT_DOUBLE_EQ(as_of->records[1].rec[1].dbl(), 5.5);
}

}  // namespace
}  // namespace seq
