// Tests for the Session facade (core/session.h): the one client surface
// shared by seqsh local mode, seqsh --connect and every seqserved
// connection. Covers the owned-engine and shared-engine modes, the
// bare-name shortcuts, session-scoped views, the prepared-statement
// lifecycle, Close() semantics and query-registry attribution.

#include "core/session.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/engine.h"
#include "obs/query_registry.h"
#include "parser/parser.h"
#include "workload/generators.h"

namespace seq {
namespace {

// The same series `gen ibm 1 400 1.0 7` builds, registered directly into
// a reference engine so session answers can be checked against plain
// Engine::Run.
Result<BaseSequencePtr> ReferenceSeries() {
  StockSeriesOptions options;
  options.span = Span::Of(1, 400);
  options.density = 1.0;
  options.seed = 7;
  return MakeStockSeries(options);
}

std::unique_ptr<Engine> ReferenceEngine() {
  auto engine = std::make_unique<Engine>();
  auto series = ReferenceSeries();
  EXPECT_TRUE(series.ok()) << series.status().ToString();
  EXPECT_TRUE(engine->RegisterBase("ibm", *series).ok());
  return engine;
}

// Exact row equality, including bit-exact doubles — the wire protocol
// ships doubles as bit patterns, so nothing may perturb them anywhere in
// the session path either.
void ExpectRowsEqual(const std::vector<PosRecord>& want,
                     const std::vector<PosRecord>& got) {
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].pos, got[i].pos) << "row " << i;
    ASSERT_EQ(want[i].rec.size(), got[i].rec.size()) << "row " << i;
    for (size_t j = 0; j < want[i].rec.size(); ++j) {
      const Value& a = want[i].rec[j];
      const Value& b = got[i].rec[j];
      ASSERT_EQ(a.type(), b.type()) << "row " << i << " col " << j;
      switch (a.type()) {
        case TypeId::kInt64:
          EXPECT_EQ(a.int64(), b.int64()) << "row " << i << " col " << j;
          break;
        case TypeId::kDouble:
          EXPECT_EQ(a.dbl(), b.dbl()) << "row " << i << " col " << j;
          break;
        case TypeId::kBool:
          EXPECT_EQ(a.boolean(), b.boolean()) << "row " << i << " col " << j;
          break;
        case TypeId::kString:
          EXPECT_EQ(a.str(), b.str()) << "row " << i << " col " << j;
          break;
      }
    }
  }
}

std::vector<PosRecord> RunReference(const std::string& source) {
  auto engine = ReferenceEngine();
  auto program = ParseSequin(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  auto result = engine->Run(program->main, std::nullopt, RunOptions{});
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result->records);
}

constexpr const char* kQuery = "q = select(ibm, close > 100.0);";

TEST(SessionTest, OwnedEngineDefineAndRun) {
  LocalSession session;
  auto gen = session.Command({"gen", "ibm", "1", "400", "1.0", "7"});
  ASSERT_TRUE(gen.ok()) << gen.status().ToString();
  EXPECT_NE(gen->find("generated ibm"), std::string::npos);

  auto reply = session.Execute(kQuery);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  // A definition both registers the session view and (as program main)
  // evaluates it.
  EXPECT_NE(reply->text.find("defined q"), std::string::npos);
  ASSERT_TRUE(reply->is_rows);
  ASSERT_NE(reply->schema, nullptr);
  ExpectRowsEqual(RunReference(kQuery), reply->rows);
}

TEST(SessionTest, BareNameAndExplainShortcuts) {
  LocalSession session;
  ASSERT_TRUE(session.Command({"gen", "ibm", "1", "400", "1.0", "7"}).ok());
  ASSERT_TRUE(session.Execute(kQuery).ok());

  // "q;" has no grammar production; the session resolves it as a view ref.
  auto rerun = session.Execute("q;");
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  ASSERT_TRUE(rerun->is_rows);
  ExpectRowsEqual(RunReference(kQuery), rerun->rows);

  // Base sequences resolve the same way.
  auto base = session.Execute("ibm;");
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  EXPECT_EQ(base->rows.size(), 400u);

  auto explain = session.Execute("explain q;");
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_FALSE(explain->is_rows);
  EXPECT_FALSE(explain->text.empty());

  auto analyze = session.Execute("explain analyze q;");
  ASSERT_TRUE(analyze.ok()) << analyze.status().ToString();
  EXPECT_FALSE(analyze->is_rows);
  EXPECT_FALSE(analyze->text.empty());

  auto missing = session.Execute("nosuch;");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(SessionTest, RedefinitionAndShadowingRejected) {
  LocalSession session;
  ASSERT_TRUE(session.Command({"gen", "ibm", "1", "400", "1.0", "7"}).ok());
  ASSERT_TRUE(session.Execute(kQuery).ok());

  auto redefine = session.Execute(kQuery);
  ASSERT_FALSE(redefine.ok());
  EXPECT_EQ(redefine.status().code(), StatusCode::kInvalidArgument);

  auto shadow = session.Execute("ibm = select(ibm, close > 0.0);");
  ASSERT_FALSE(shadow.ok());
  EXPECT_EQ(shadow.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionTest, SessionViewsAreScopedPerSession) {
  Engine engine;
  std::shared_mutex gate;
  auto series = ReferenceSeries();
  ASSERT_TRUE(series.ok());
  ASSERT_TRUE(engine.RegisterBase("ibm", *series).ok());

  LocalSession a(&engine, &gate);
  LocalSession b(&engine, &gate);

  // Both sessions define the same name with different bodies: no clash.
  auto ra = a.Execute("v = select(ibm, close > 100.0);");
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  auto rb = b.Execute("v = select(ibm, close <= 100.0);");
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  EXPECT_NE(ra->rows.size(), rb->rows.size());
  EXPECT_EQ(ra->rows.size() + rb->rows.size(), 400u);

  // The definitions never leak into the shared engine.
  EXPECT_TRUE(engine.views().empty());
  LocalSession c(&engine, &gate);
  auto rc = c.Execute("v;");
  ASSERT_FALSE(rc.ok());
  EXPECT_EQ(rc.status().code(), StatusCode::kNotFound);
}

TEST(SessionTest, PreparedStatementLifecycle) {
  LocalSession session;
  ASSERT_TRUE(session.Command({"gen", "ibm", "1", "400", "1.0", "7"}).ok());

  auto id = session.Prepare(kQuery);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  const std::vector<PosRecord> want = RunReference(kQuery);
  for (int i = 0; i < 3; ++i) {
    auto reply = session.ExecutePrepared(*id);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_TRUE(reply->is_rows);
    ExpectRowsEqual(want, reply->rows);
  }

  EXPECT_TRUE(session.CloseStatement(*id).ok());
  auto gone = session.ExecutePrepared(*id);
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(session.CloseStatement(*id).code(), StatusCode::kNotFound);

  // Bare names prepare too; EXPLAIN programs do not.
  auto bare = session.Prepare("ibm;");
  ASSERT_TRUE(bare.ok()) << bare.status().ToString();
  auto all = session.ExecutePrepared(*bare);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->rows.size(), 400u);
  auto explain = session.Prepare("explain ibm;");
  ASSERT_FALSE(explain.ok());
  EXPECT_EQ(explain.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionTest, RangeAndStatsApplyToEveryQuery) {
  LocalSession session;
  ASSERT_TRUE(session.Command({"gen", "ibm", "1", "400", "1.0", "7"}).ok());
  session.range() = Span::Of(100, 200);
  session.set_collect_stats(true);

  auto reply = session.Execute("ibm;");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->rows.size(), 101u);
  for (const PosRecord& row : reply->rows) {
    EXPECT_GE(row.pos, 100);
    EXPECT_LE(row.pos, 200);
  }
  ASSERT_TRUE(reply->has_stats);
  EXPECT_EQ(reply->stats.records_output,
            static_cast<int64_t>(reply->rows.size()));

  // The range also binds into prepared statements.
  auto id = session.Prepare("ibm;");
  ASSERT_TRUE(id.ok());
  auto prepared = session.ExecutePrepared(*id);
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared->rows.size(), 101u);
}

TEST(SessionTest, SinkStreamsInsteadOfMaterializing) {
  LocalSession session;
  ASSERT_TRUE(session.Command({"gen", "ibm", "1", "400", "1.0", "7"}).ok());

  std::vector<PosRecord> streamed;
  session.options().sink = [&streamed](Position pos, const Record& rec) {
    streamed.push_back({pos, rec});
  };
  auto reply = session.Execute(kQuery);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_TRUE(reply->is_rows);
  EXPECT_TRUE(reply->rows.empty());
  ExpectRowsEqual(RunReference(kQuery), streamed);
}

TEST(SessionTest, CloseCancelsFurtherCalls) {
  LocalSession session;
  ASSERT_TRUE(session.Command({"gen", "ibm", "1", "400", "1.0", "7"}).ok());
  session.Close();
  session.Close();  // idempotent

  EXPECT_EQ(session.Execute("ibm;").status().code(), StatusCode::kCancelled);
  EXPECT_EQ(session.Prepare("ibm;").status().code(), StatusCode::kCancelled);
  EXPECT_EQ(session.ExecutePrepared(1).status().code(),
            StatusCode::kCancelled);
  EXPECT_EQ(session.CloseStatement(1).code(), StatusCode::kCancelled);
  EXPECT_EQ(session.Telemetry("metrics").status().code(),
            StatusCode::kCancelled);
  EXPECT_EQ(session.Command({"list"}).status().code(), StatusCode::kCancelled);
}

TEST(SessionTest, TelemetryKinds) {
  LocalSession session;
  for (const char* kind : {"metrics", "prom", "json", "queries", "sched",
                           "plancache", "slowlog"}) {
    auto text = session.Telemetry(kind);
    ASSERT_TRUE(text.ok()) << kind << ": " << text.status().ToString();
    EXPECT_FALSE(text->empty()) << kind;
  }
  auto bogus = session.Telemetry("bogus");
  ASSERT_FALSE(bogus.ok());
  EXPECT_EQ(bogus.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionTest, UnknownCommandsRejected) {
  LocalSession session;
  EXPECT_EQ(session.Command({}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session.Command({"frobnicate"}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session.Command({"gen", "x", "bad", "args", "here"})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(SessionTest, QueriesAreAttributedToTheSession) {
  LocalSession session;
  ASSERT_TRUE(session.Command({"gen", "ibm", "1", "400", "1.0", "7"}).ok());
  ASSERT_TRUE(session.Execute(kQuery).ok());

  bool found = false;
  for (const CompletedQueryInfo& q : QueryRegistry::Global().Recent()) {
    if (q.session_id == session.id()) {
      EXPECT_EQ(q.status, "OK");
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found) << "no completed query attributed to session "
                     << session.id();

  // The `.queries` rendering shows the session tag.
  auto text = session.Telemetry("queries");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("s" + std::to_string(session.id())),
            std::string::npos);
}

}  // namespace
}  // namespace seq
