// Tests for the Sequin mini-language: lexing, parsing of every construct,
// error reporting, and parse-then-run equivalence with builder queries.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "parser/lexer.h"
#include "parser/parser.h"
#include "workload/generators.h"

namespace seq {
namespace {

// --- lexer -------------------------------------------------------------------

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize("foo = select(bar, x >= 1.5); # comment\n");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds.back(), TokKind::kEnd);
  EXPECT_EQ((*tokens)[0].text, "foo");
  EXPECT_TRUE((*tokens)[1].IsSymbol("="));
  EXPECT_TRUE((*tokens)[7].IsSymbol(">="));
  EXPECT_EQ((*tokens)[8].kind, TokKind::kDouble);
  EXPECT_DOUBLE_EQ((*tokens)[8].double_value, 1.5);
}

TEST(LexerTest, IntVersusDoubleVersusFieldAccess) {
  auto tokens = Tokenize("3 3.5 left.close");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokKind::kInt);
  EXPECT_EQ((*tokens)[1].kind, TokKind::kDouble);
  EXPECT_EQ((*tokens)[2].text, "left");
  EXPECT_TRUE((*tokens)[3].IsSymbol("."));
  EXPECT_EQ((*tokens)[4].text, "close");
}

TEST(LexerTest, StringLiteralsAndErrors) {
  auto ok = Tokenize("x == \"hello world\"");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)[2].kind, TokKind::kString);
  EXPECT_EQ((*ok)[2].text, "hello world");
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
  EXPECT_FALSE(Tokenize("x @ y").ok());
}

TEST(LexerTest, TracksLineNumbers) {
  auto tokens = Tokenize("a\nbb\n  c");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1u);
  EXPECT_EQ((*tokens)[1].line, 2u);
  EXPECT_EQ((*tokens)[2].line, 3u);
  EXPECT_EQ((*tokens)[2].column, 3u);
}

// --- parser ------------------------------------------------------------------

TEST(ParserTest, ParsesEveryOperator) {
  const char* source = R"(
    a = select(base, close > 10.0 and volume <= 5000);
    b = project(a, close as c, volume);
    c = offset(b, -3);
    d = prev(c);
    e = voffset(base, 2);
    f = sum(base, close, over 6);
    g = avg(base, close, running);
    h = max(base, close, over all);
    i = compose(f, g, left.sum_close > right.avg_close);
    j = collapse(base, 7, avg, close);
    k = count(base, close, over 3, as n);
  )";
  auto program = ParseSequin(source);
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->order.size(), 11u);
  EXPECT_EQ(program->definitions.at("a")->kind(), OpKind::kSelect);
  EXPECT_EQ(program->definitions.at("b")->kind(), OpKind::kProject);
  EXPECT_EQ(program->definitions.at("b")->renames()[0], "c");
  EXPECT_EQ(program->definitions.at("c")->kind(), OpKind::kPositionalOffset);
  EXPECT_EQ(program->definitions.at("c")->offset(), -3);
  EXPECT_EQ(program->definitions.at("d")->kind(), OpKind::kValueOffset);
  EXPECT_EQ(program->definitions.at("d")->offset(), -1);
  EXPECT_EQ(program->definitions.at("e")->offset(), 2);
  EXPECT_EQ(program->definitions.at("f")->window(), 6);
  EXPECT_EQ(program->definitions.at("g")->window_kind(),
            WindowKind::kRunning);
  EXPECT_EQ(program->definitions.at("h")->window_kind(), WindowKind::kAll);
  EXPECT_EQ(program->definitions.at("i")->kind(), OpKind::kCompose);
  ASSERT_NE(program->definitions.at("i")->predicate(), nullptr);
  EXPECT_EQ(program->definitions.at("j")->collapse_factor(), 7);
  EXPECT_EQ(program->definitions.at("k")->output_name(), "n");
  EXPECT_EQ(program->main, program->definitions.at("k"));
}

TEST(ParserTest, NameReferencesShareDefinitions) {
  auto program = ParseSequin(R"(
    a = select(base, x > 1);
    b = compose(a, a);
  )");
  ASSERT_TRUE(program.ok()) << program.status();
  const LogicalOpPtr& b = program->definitions.at("b");
  // Clones, not aliases — the graph stays a tree (§2.2).
  EXPECT_NE(b->input(0).get(), b->input(1).get());
  EXPECT_EQ(b->input(0)->kind(), OpKind::kSelect);
}

TEST(ParserTest, ConstReference) {
  auto q = ParseSequinQuery("x = compose(s, const(k));");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ((*q)->input(1)->kind(), OpKind::kConstantRef);
}

TEST(ParserTest, PredicateGrammar) {
  auto q = ParseSequinQuery(
      "x = select(s, not (a < 1 or b == \"hi\") and pos() >= 10 and "
      "abs(c - 2) * 3 > 1.5);");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE((*q)->predicate()->ContainsPosition());
}

TEST(ParserTest, OperatorPrecedence) {
  auto q = ParseSequinQuery("x = select(s, a + b * 2 > 10 - 1);");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*q)->predicate()->ToString(), "((a + (b * 2)) > (10 - 1))");
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSequin("").ok());
  EXPECT_FALSE(ParseSequin("a = ;").ok());
  EXPECT_FALSE(ParseSequin("a = select(s);").ok());  // missing predicate
  EXPECT_FALSE(ParseSequin("a = frobnicate(s);").ok());
  EXPECT_FALSE(ParseSequin("a = select(s, x > 1)").ok());  // missing ';'
  EXPECT_FALSE(ParseSequin("a = s; a = s;").ok());         // redefinition
  EXPECT_FALSE(ParseSequin("a = voffset(s, 0);").ok());
  EXPECT_FALSE(ParseSequin("a = sum(s, c, over 0);").ok());
  EXPECT_FALSE(ParseSequin("a = collapse(s, 0, sum, c);").ok());
  auto err = ParseSequin("a = select(s, x >> 1);");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kParseError);
}

TEST(ParserTest, ErrorMessagesCarryLocation) {
  auto err = ParseSequin("a = select(s,\n   !);");
  ASSERT_FALSE(err.ok());
  EXPECT_NE(err.status().message().find("line"), std::string::npos);
}

TEST(ParserTest, ExplainPrefix) {
  auto plain = ParseSequin("a = select(s, x > 1);");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->explain, ExplainMode::kNone);

  auto exp = ParseSequin("explain a = select(s, x > 1);");
  ASSERT_TRUE(exp.ok()) << exp.status();
  EXPECT_EQ(exp->explain, ExplainMode::kExplain);
  EXPECT_EQ(exp->order.size(), 1u);

  auto analyze = ParseSequin("explain analyze a = select(s, x > 1);");
  ASSERT_TRUE(analyze.ok()) << analyze.status();
  EXPECT_EQ(analyze->explain, ExplainMode::kExplainAnalyze);
  EXPECT_EQ(analyze->definitions.at("a")->kind(), OpKind::kSelect);
}

TEST(ParserTest, ExplainAsDefinitionNameStillParses) {
  // `explain` / `analyze` are not reserved words: followed by '=' they are
  // ordinary definition names.
  auto program = ParseSequin("explain = select(s, x > 1);");
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->explain, ExplainMode::kNone);
  EXPECT_EQ(program->definitions.count("explain"), 1u);

  auto nested = ParseSequin("explain analyze = select(s, x > 1);");
  ASSERT_TRUE(nested.ok()) << nested.status();
  EXPECT_EQ(nested->explain, ExplainMode::kExplain);
  EXPECT_EQ(nested->definitions.count("analyze"), 1u);
}

// --- parse + run end-to-end -----------------------------------------------------

class ParserRunTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StockSeriesOptions options;
    options.span = Span::Of(1, 300);
    options.density = 0.8;
    options.seed = 21;
    ASSERT_TRUE(engine_.RegisterBase("stock", *MakeStockSeries(options)).ok());
  }
  Engine engine_;
};

TEST_F(ParserRunTest, ParsedQueryMatchesBuilderQuery) {
  auto parsed = ParseSequinQuery(
      "x = sum(select(stock, close > 100.0), close, over 5);");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  auto built = SeqRef("stock")
                   .Select(Gt(Col("close"), Lit(100.0)))
                   .Agg(AggFunc::kSum, "close", 5)
                   .Build();
  auto r1 = engine_.Run(*parsed);
  auto r2 = engine_.Run(built);
  ASSERT_TRUE(r1.ok()) << r1.status();
  ASSERT_TRUE(r2.ok()) << r2.status();
  ASSERT_EQ(r1->records.size(), r2->records.size());
  for (size_t i = 0; i < r1->records.size(); ++i) {
    EXPECT_EQ(r1->records[i].pos, r2->records[i].pos);
    EXPECT_EQ(r1->records[i].rec, r2->records[i].rec);
  }
}

TEST_F(ParserRunTest, MultiStatementProgramRuns) {
  auto parsed = ParseSequinQuery(R"(
    highs  = select(stock, close > high - 0.1);
    recent = prev(highs);
    both   = compose(stock, recent, left.close > right.close);
    answer = project(both, close);
  )");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  auto result = engine_.Run(*parsed, Span::Of(1, 300));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->schema->num_fields(), 1u);
}

TEST_F(ParserRunTest, UnknownBaseSurfacesAtOptimizeTime) {
  auto parsed = ParseSequinQuery("x = select(ghost, a > 1);");
  ASSERT_TRUE(parsed.ok());
  auto result = engine_.Run(*parsed);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace seq
