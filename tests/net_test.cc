// Integration tests for the seqserved network layer (net/server.h,
// net/remote_session.h, net/wire.h): remote results byte-identical to
// local execution, concurrent clients sweeping prepared statements
// through the plan cache, disconnect-cancels-in-flight, and
// malformed-frame robustness — a hostile or broken peer gets a clean
// protocol error or connection close, never a crash.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/session.h"
#include "exec/scheduler.h"
#include "net/remote_session.h"
#include "net/server.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/query_registry.h"
#include "parser/parser.h"
#include "workload/generators.h"

namespace seq {
namespace {

using Clock = std::chrono::steady_clock;

// Exact row equality. Doubles cross the wire as bit patterns, so remote
// answers must compare equal with ==, not approximately.
void ExpectRowsEqual(const std::vector<PosRecord>& want,
                     const std::vector<PosRecord>& got) {
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].pos, got[i].pos) << "row " << i;
    ASSERT_EQ(want[i].rec.size(), got[i].rec.size()) << "row " << i;
    for (size_t j = 0; j < want[i].rec.size(); ++j) {
      const Value& a = want[i].rec[j];
      const Value& b = got[i].rec[j];
      ASSERT_EQ(a.type(), b.type()) << "row " << i << " col " << j;
      switch (a.type()) {
        case TypeId::kInt64:
          EXPECT_EQ(a.int64(), b.int64()) << "row " << i << " col " << j;
          break;
        case TypeId::kDouble:
          EXPECT_EQ(a.dbl(), b.dbl()) << "row " << i << " col " << j;
          break;
        case TypeId::kBool:
          EXPECT_EQ(a.boolean(), b.boolean()) << "row " << i << " col " << j;
          break;
        case TypeId::kString:
          EXPECT_EQ(a.str(), b.str()) << "row " << i << " col " << j;
          break;
      }
    }
  }
}

class NetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<SeqServer>();
    LocalSession seed(&server_->engine(), &server_->gate());
    auto gen = seed.Command({"gen", "ibm", "1", "400", "1.0", "7"});
    ASSERT_TRUE(gen.ok()) << gen.status().ToString();
    auto port = server_->Start("127.0.0.1", 0);
    ASSERT_TRUE(port.ok()) << port.status().ToString();
    port_ = *port;
  }

  void TearDown() override {
    server_->Stop();
    server_->Stop();  // idempotent
  }

  std::unique_ptr<RemoteSession> Dial() {
    auto session = RemoteSession::Connect("127.0.0.1", port_);
    EXPECT_TRUE(session.ok()) << session.status().ToString();
    return session.ok() ? std::move(*session) : nullptr;
  }

  // Local execution against the very same engine, for parity checks.
  std::vector<PosRecord> RunLocal(const std::string& source) {
    LocalSession local(&server_->engine(), &server_->gate());
    auto reply = local.Execute(source);
    EXPECT_TRUE(reply.ok()) << reply.status().ToString();
    return reply.ok() ? std::move(reply->rows) : std::vector<PosRecord>{};
  }

  // Raw client socket for malformed-frame probes.
  int RawConnect() {
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    timeval tv{};
    tv.tv_sec = 10;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port_));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0)
        << strerror(errno);
    return fd;
  }

  static void SendRaw(int fd, const std::string& bytes) {
    ASSERT_EQ(send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  // Drains the socket until the server closes it. Returns false if the
  // receive timeout fired first (server failed to close).
  static bool DrainUntilClose(int fd) {
    char buf[4096];
    while (true) {
      ssize_t n = recv(fd, buf, sizeof(buf), 0);
      if (n == 0) return true;
      if (n < 0) return false;
    }
  }

  // Performs the HELLO exchange on a raw socket.
  void RawHello(int fd) {
    WireWriter body;
    body.U32(kWireProtocolVersion);
    body.Str("net_test-raw");
    ASSERT_TRUE(
        WriteFrame(fd, BuildFrame(1, Opcode::kHello, body.Take())).ok());
    bool done = false;
    while (!done) {
      Frame frame;
      bool clean_eof = false;
      auto s = ReadFrame(fd, &frame, &clean_eof);
      ASSERT_TRUE(s.ok()) << s.ToString();
      if (frame.opcode == static_cast<uint8_t>(Opcode::kReplyDone)) {
        WireCursor cursor(frame.body);
        DoneReply reply;
        ASSERT_TRUE(DecodeDone(&cursor, &reply).ok());
        ASSERT_TRUE(DoneToStatus(reply).ok()) << DoneToStatus(reply).ToString();
        done = true;
      }
    }
  }

  // Reads reply frames for one request until DONE; returns its status.
  static Status ReadDone(int fd) {
    while (true) {
      Frame frame;
      bool clean_eof = false;
      Status s = ReadFrame(fd, &frame, &clean_eof);
      if (!s.ok()) return s;
      if (frame.opcode == static_cast<uint8_t>(Opcode::kReplyDone)) {
        WireCursor cursor(frame.body);
        DoneReply reply;
        SEQ_RETURN_IF_ERROR(DecodeDone(&cursor, &reply));
        return DoneToStatus(reply);
      }
    }
  }

  std::unique_ptr<SeqServer> server_;
  int port_ = 0;
};

constexpr const char* kQuery = "q = select(ibm, close > 100.0);";

TEST_F(NetTest, HelloAssignsServerSessionId) {
  auto session = Dial();
  ASSERT_NE(session, nullptr);
  EXPECT_GT(session->id(), 0u);

  auto other = Dial();
  ASSERT_NE(other, nullptr);
  EXPECT_NE(session->id(), other->id());
}

TEST_F(NetTest, VersionMismatchRejected) {
  int fd = RawConnect();
  WireWriter body;
  body.U32(kWireProtocolVersion + 1);
  body.Str("net_test-bad-version");
  ASSERT_TRUE(
      WriteFrame(fd, BuildFrame(1, Opcode::kHello, body.Take())).ok());
  Status s = ReadDone(fd);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
  EXPECT_NE(s.message().find("version"), std::string::npos) << s.ToString();
  EXPECT_TRUE(DrainUntilClose(fd));
  close(fd);
}

TEST_F(NetTest, RemoteRowsAreByteIdenticalToLocal) {
  const std::vector<PosRecord> want = RunLocal(kQuery);
  ASSERT_FALSE(want.empty());

  auto session = Dial();
  ASSERT_NE(session, nullptr);
  auto reply = session->Execute(kQuery);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_TRUE(reply->is_rows);
  ASSERT_NE(reply->schema, nullptr);
  ExpectRowsEqual(want, reply->rows);

  // Bare-name shortcut and EXPLAIN text work identically over the wire.
  auto rerun = session->Execute("q;");
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  ExpectRowsEqual(want, rerun->rows);
  auto explain = session->Execute("explain q;");
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_FALSE(explain->is_rows);
  EXPECT_FALSE(explain->text.empty());
}

TEST_F(NetTest, RemoteSinkStreamsRowBatches) {
  const std::vector<PosRecord> want = RunLocal(kQuery);
  auto session = Dial();
  ASSERT_NE(session, nullptr);

  std::vector<PosRecord> streamed;
  session->options().sink = [&streamed](Position pos, const Record& rec) {
    streamed.push_back({pos, rec});
  };
  auto reply = session->Execute(kQuery);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_TRUE(reply->rows.empty());
  ExpectRowsEqual(want, streamed);
}

TEST_F(NetTest, SessionViewsDoNotCollideAcrossConnections) {
  auto a = Dial();
  auto b = Dial();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  auto ra = a->Execute("w = select(ibm, close > 100.0);");
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  auto rb = b->Execute("w = select(ibm, close <= 100.0);");
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  EXPECT_EQ(ra->rows.size() + rb->rows.size(), 400u);

  // Disconnecting a session frees its views; a fresh connection cannot
  // see them.
  a->Close();
  auto c = Dial();
  ASSERT_NE(c, nullptr);
  auto rc = c->Execute("w;");
  ASSERT_FALSE(rc.ok());
  EXPECT_EQ(rc.status().code(), StatusCode::kNotFound);
}

TEST_F(NetTest, ConcurrentClientsSweepPreparedStatements) {
  constexpr int kClients = 8;
  constexpr int kRepeats = 5;
  constexpr const char* kPrepared = "p = avg(ibm, close, over 10, as m);";

  const std::vector<PosRecord> want = RunLocal(kPrepared);
  ASSERT_FALSE(want.empty());

  // Warm the parameterized plan cache so every client's Prepare is a
  // repeat shape.
  {
    LocalSession warm(&server_->engine(), &server_->gate());
    auto cmd = warm.Command({"plancache", "on"});
    ASSERT_TRUE(cmd.ok()) << cmd.status().ToString();
    auto id = warm.Prepare(kPrepared);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
  }
  const int64_t hits_before =
      MetricsRegistry::Global().Get("engine.plan_cache.hits");

  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([this, &want, &failures] {
      auto session = RemoteSession::Connect("127.0.0.1", port_);
      if (!session.ok()) {
        ++failures;
        return;
      }
      auto id = (*session)->Prepare(kPrepared);
      if (!id.ok()) {
        ++failures;
        return;
      }
      for (int r = 0; r < kRepeats; ++r) {
        auto reply = (*session)->ExecutePrepared(*id);
        if (!reply.ok() || !reply->is_rows ||
            reply->rows.size() != want.size()) {
          ++failures;
          return;
        }
        for (size_t i = 0; i < want.size(); ++i) {
          if (want[i].pos != reply->rows[i].pos ||
              want[i].rec.size() != reply->rows[i].rec.size()) {
            ++failures;
            return;
          }
          for (size_t j = 0; j < want[i].rec.size(); ++j) {
            const Value& a = want[i].rec[j];
            const Value& b = reply->rows[i].rec[j];
            if (a.type() != b.type()) {
              ++failures;
              return;
            }
            bool equal = true;
            switch (a.type()) {
              case TypeId::kInt64:
                equal = a.int64() == b.int64();
                break;
              case TypeId::kDouble:
                equal = a.dbl() == b.dbl();
                break;
              case TypeId::kBool:
                equal = a.boolean() == b.boolean();
                break;
              case TypeId::kString:
                equal = a.str() == b.str();
                break;
            }
            if (!equal) {
              ++failures;
              return;
            }
          }
        }
      }
      if (!(*session)->CloseStatement(*id).ok()) ++failures;
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  // All eight Prepares after the warmup hit the cached template.
  const int64_t hits_after =
      MetricsRegistry::Global().Get("engine.plan_cache.hits");
  EXPECT_GE(hits_after - hits_before, kClients);
}

TEST_F(NetTest, DisconnectCancelsInFlightQueryAndReleasesSlot) {
  {
    LocalSession seed(&server_->engine(), &server_->gate());
    auto gen = seed.Command({"gen", "big", "1", "1500000", "1.0", "3"});
    ASSERT_TRUE(gen.ok()) << gen.status().ToString();
  }

  auto session = Dial();
  ASSERT_NE(session, nullptr);
  // Ask for parallel execution so the run holds a scheduler admission
  // slot that the cancel must release.
  session->options().exec.parallelism = 2;
  const uint64_t sid = session->id();

  std::atomic<bool> finished{false};
  Status run_status = Status::OK();
  std::thread runner([&] {
    auto reply = session->Execute(
        "h = avg(avg(big, close, over 500, as a), a, over 500, as b);");
    run_status = reply.status();
    finished.store(true);
  });

  // Wait until the registry shows the query live under this session.
  bool seen_live = false;
  const auto deadline = Clock::now() + std::chrono::seconds(60);
  while (Clock::now() < deadline && !finished.load()) {
    for (const LiveQueryInfo& q : QueryRegistry::Global().Live()) {
      if (q.session_id == sid) {
        seen_live = true;
        break;
      }
    }
    if (seen_live) break;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  ASSERT_TRUE(seen_live) << "query never appeared live (finished="
                         << finished.load()
                         << " status=" << run_status.ToString() << ")";

  // Drop the connection mid-query: the server's reader closes the
  // session, which trips the cooperative cancel.
  session->Close();
  runner.join();
  EXPECT_FALSE(run_status.ok());

  // The run must complete as Cancelled and leave the live registry.
  bool cancelled = false;
  bool drained = false;
  const auto finish_deadline = Clock::now() + std::chrono::seconds(60);
  while (Clock::now() < finish_deadline && !(cancelled && drained)) {
    cancelled = false;
    for (const CompletedQueryInfo& q : QueryRegistry::Global().Recent()) {
      if (q.session_id == sid && q.status == "Cancelled") {
        cancelled = true;
        break;
      }
    }
    drained = true;
    for (const LiveQueryInfo& q : QueryRegistry::Global().Live()) {
      if (q.session_id == sid) drained = false;
    }
    if (!(cancelled && drained)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_TRUE(cancelled) << "no Cancelled completion for session " << sid;
  EXPECT_TRUE(drained) << "query still live after disconnect";

  // The admission slot released with the run.
  const auto slot_deadline = Clock::now() + std::chrono::seconds(30);
  while (Clock::now() < slot_deadline &&
         QueryScheduler::Global().Stats().running > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(QueryScheduler::Global().Stats().running, 0);
}

TEST_F(NetTest, BudgetsTravelOverTheWire) {
  auto session = Dial();
  ASSERT_NE(session, nullptr);
  session->options().exec.guards.max_rows = 5;
  auto reply = session->Execute("ibm;");
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kResourceExhausted)
      << reply.status().ToString();

  // The same connection keeps working once the budget is lifted.
  session->options().exec.guards.max_rows = 0;
  auto ok = session->Execute("ibm;");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->rows.size(), 400u);
}

TEST_F(NetTest, TelemetryAndCommandsOverTheWire) {
  auto session = Dial();
  ASSERT_NE(session, nullptr);

  auto metrics = session->Telemetry("metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_NE(metrics->find("net.connections"), std::string::npos);
  EXPECT_NE(metrics->find("net.requests"), std::string::npos);

  auto sched = session->Telemetry("sched");
  ASSERT_TRUE(sched.ok());
  EXPECT_FALSE(sched->empty());

  auto bogus = session->Telemetry("bogus");
  ASSERT_FALSE(bogus.ok());
  EXPECT_EQ(bogus.status().code(), StatusCode::kInvalidArgument);

  auto list = session->Command({"list"});
  ASSERT_TRUE(list.ok()) << list.status().ToString();
  EXPECT_NE(list->find("ibm"), std::string::npos);

  // Registry attribution is visible remotely under the server session id.
  ASSERT_TRUE(session->Execute("ibm;").ok());
  auto queries = session->Telemetry("queries");
  ASSERT_TRUE(queries.ok());
  EXPECT_NE(queries->find("s" + std::to_string(session->id())),
            std::string::npos);
}

TEST_F(NetTest, MalformedFramesNeverCrashTheServer) {
  const int64_t errors_before =
      MetricsRegistry::Global().Get("net.protocol_errors");

  // Truncated length prefix, then EOF: the server just drops the
  // connection.
  {
    int fd = RawConnect();
    SendRaw(fd, std::string("\x02\x00", 2));
    close(fd);
  }

  // Oversized declared length: unrecoverable, server closes.
  {
    int fd = RawConnect();
    WireWriter prefix;
    prefix.U32(kMaxFrameBytes + 1);
    SendRaw(fd, prefix.Take());
    EXPECT_TRUE(DrainUntilClose(fd)) << "server kept oversized-frame conn";
    close(fd);
  }

  // Payload shorter than the request header (9 bytes): framing error,
  // server closes after an error DONE.
  {
    int fd = RawConnect();
    WireWriter frame;
    frame.U32(5);
    frame.U32(0xdeadbeef);
    frame.U8(0x7f);
    SendRaw(fd, frame.Take());
    EXPECT_TRUE(DrainUntilClose(fd)) << "server kept short-payload conn";
    close(fd);
  }

  // Truncated body: declared 100 bytes, sent 10, then EOF.
  {
    int fd = RawConnect();
    WireWriter frame;
    frame.U32(100);
    SendRaw(fd, frame.Take());
    SendRaw(fd, std::string(10, 'x'));
    close(fd);
  }

  // Unknown opcode on an established session: error DONE, but the
  // connection survives and keeps serving.
  {
    int fd = RawConnect();
    RawHello(fd);
    ASSERT_TRUE(WriteFrame(fd, BuildFrame(2, static_cast<Opcode>(42),
                                          std::string()))
                    .ok());
    Status bad = ReadDone(fd);
    EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument) << bad.ToString();

    WireWriter body;
    body.Str("metrics");
    ASSERT_TRUE(
        WriteFrame(fd, BuildFrame(3, Opcode::kTelemetry, body.Take())).ok());
    Status after = ReadDone(fd);
    EXPECT_TRUE(after.ok()) << after.ToString();
    close(fd);
  }

  // Garbage body for a known opcode: decode error DONE, connection
  // survives.
  {
    int fd = RawConnect();
    RawHello(fd);
    ASSERT_TRUE(WriteFrame(fd, BuildFrame(2, Opcode::kQuery,
                                          std::string("\x01\x02\x03", 3)))
                    .ok());
    Status bad = ReadDone(fd);
    EXPECT_FALSE(bad.ok());

    WireWriter body;
    body.Str("metrics");
    ASSERT_TRUE(
        WriteFrame(fd, BuildFrame(3, Opcode::kTelemetry, body.Take())).ok());
    EXPECT_TRUE(ReadDone(fd).ok());
    close(fd);
  }

  EXPECT_GT(MetricsRegistry::Global().Get("net.protocol_errors"),
            errors_before);

  // After every probe the server still accepts and serves new sessions.
  auto session = Dial();
  ASSERT_NE(session, nullptr);
  auto reply = session->Execute("ibm;");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->rows.size(), 400u);
}

TEST_F(NetTest, ServerStopDisconnectsClients) {
  auto session = Dial();
  ASSERT_NE(session, nullptr);
  ASSERT_TRUE(session->Execute("ibm;").ok());

  server_->Stop();

  auto reply = session->Execute("ibm;");
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable)
      << reply.status().ToString();

  // A closed remote session reports Cancelled on further use.
  auto again = session->Execute("ibm;");
  ASSERT_FALSE(again.ok());
}

}  // namespace
}  // namespace seq
