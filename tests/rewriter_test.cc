// Tests for the §3.1 equivalence transformations: each rule fires where
// legal, the paper's illegal transformations are refused, and rewritten
// queries return identical results.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/engine.h"
#include "optimizer/annotate.h"
#include "optimizer/rewriter.h"
#include "workload/generators.h"

namespace seq {
namespace {

class RewriterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    IntSeriesOptions a;
    a.span = Span::Of(0, 199);
    a.density = 0.8;
    a.seed = 1;
    ASSERT_TRUE(engine_.RegisterBase("a", *MakeIntSeries(a)).ok());
    IntSeriesOptions b = a;
    b.seed = 2;
    b.density = 0.6;
    b.column = "w";
    ASSERT_TRUE(engine_.RegisterBase("b", *MakeIntSeries(b)).ok());
  }

  // Annotates and rewrites a clone; returns the rewritten root.
  LogicalOpPtr Rewrite(const LogicalOpPtr& graph,
                       std::vector<std::string>* applied = nullptr) {
    LogicalOpPtr clone = graph->Clone();
    Annotator annotator(engine_.catalog(), CostParams{});
    EXPECT_TRUE(annotator.AnnotateBottomUp(clone.get()).ok());
    Rewriter rewriter;
    EXPECT_TRUE(rewriter.Rewrite(&clone).ok());
    if (applied != nullptr) *applied = rewriter.applied();
    return clone;
  }

  // Runs a query with rewrites on and off; expects identical results.
  void ExpectRewriteEquivalence(const LogicalOpPtr& graph, Span range) {
    Engine with = MakeEngine(true);
    Engine without = MakeEngine(false);
    auto r1 = with.Run(graph, range);
    auto r2 = without.Run(graph, range);
    ASSERT_TRUE(r1.ok()) << r1.status();
    ASSERT_TRUE(r2.ok()) << r2.status();
    ASSERT_EQ(r1->records.size(), r2->records.size());
    for (size_t i = 0; i < r1->records.size(); ++i) {
      EXPECT_EQ(r1->records[i].pos, r2->records[i].pos);
      EXPECT_EQ(r1->records[i].rec, r2->records[i].rec);
    }
  }

  Engine MakeEngine(bool rewrites) {
    OptimizerOptions options;
    options.enable_rewrites = rewrites;
    Engine engine(options);
    IntSeriesOptions a;
    a.span = Span::Of(0, 199);
    a.density = 0.8;
    a.seed = 1;
    EXPECT_TRUE(engine.RegisterBase("a", *MakeIntSeries(a)).ok());
    IntSeriesOptions b = a;
    b.seed = 2;
    b.density = 0.6;
    b.column = "w";
    EXPECT_TRUE(engine.RegisterBase("b", *MakeIntSeries(b)).ok());
    return engine;
  }

  static bool Applied(const std::vector<std::string>& log,
                      const std::string& rule) {
    return std::find(log.begin(), log.end(), rule) != log.end();
  }

  Engine engine_;
};

TEST_F(RewriterTest, MergesSuccessiveSelects) {
  auto q = SeqRef("a")
               .Select(Gt(Col("value"), Lit(int64_t{10})))
               .Select(Lt(Col("value"), Lit(int64_t{900})))
               .Build();
  std::vector<std::string> log;
  LogicalOpPtr out = Rewrite(q, &log);
  EXPECT_TRUE(Applied(log, "merge-selects"));
  EXPECT_EQ(out->kind(), OpKind::kSelect);
  EXPECT_EQ(out->input()->kind(), OpKind::kBaseRef);
  ExpectRewriteEquivalence(q, Span::Of(0, 199));
}

TEST_F(RewriterTest, MergesSuccessiveProjects) {
  auto q = SeqRef("a")
               .Project({"value"}, {"v1"})
               .Project({"v1"}, {"v2"})
               .Build();
  std::vector<std::string> log;
  LogicalOpPtr out = Rewrite(q, &log);
  EXPECT_TRUE(Applied(log, "merge-projects"));
  EXPECT_EQ(out->kind(), OpKind::kProject);
  EXPECT_EQ(out->input()->kind(), OpKind::kBaseRef);
  EXPECT_EQ(out->columns()[0], "value");
  EXPECT_EQ(out->renames()[0], "v2");
  ExpectRewriteEquivalence(q, Span::Of(0, 199));
}

TEST_F(RewriterTest, PushesSelectThroughProject) {
  auto q = SeqRef("a")
               .Project({"value"}, {"v"})
               .Select(Gt(Col("v"), Lit(int64_t{100})))
               .Build();
  std::vector<std::string> log;
  LogicalOpPtr out = Rewrite(q, &log);
  EXPECT_TRUE(Applied(log, "select-through-project"));
  // Project on top, select below referencing the source column name.
  EXPECT_EQ(out->kind(), OpKind::kProject);
  ASSERT_EQ(out->input()->kind(), OpKind::kSelect);
  EXPECT_EQ(out->input()->predicate()->ToString(), "(value > 100)");
  ExpectRewriteEquivalence(q, Span::Of(0, 199));
}

TEST_F(RewriterTest, PushesSelectThroughOffset) {
  auto q = SeqRef("a")
               .Offset(5)
               .Select(Gt(Col("value"), Lit(int64_t{100})))
               .Build();
  std::vector<std::string> log;
  LogicalOpPtr out = Rewrite(q, &log);
  EXPECT_TRUE(Applied(log, "select-through-offset"));
  EXPECT_EQ(out->kind(), OpKind::kPositionalOffset);
  EXPECT_EQ(out->input()->kind(), OpKind::kSelect);
  ExpectRewriteEquivalence(q, Span::Of(-50, 250));
}

TEST_F(RewriterTest, PositionPredicateStaysAboveOffset) {
  auto q = SeqRef("a")
               .Offset(5)
               .Select(Gt(Expr::Position(), Lit(int64_t{50})))
               .Build();
  std::vector<std::string> log;
  LogicalOpPtr out = Rewrite(q, &log);
  EXPECT_FALSE(Applied(log, "select-through-offset"));
  EXPECT_EQ(out->kind(), OpKind::kSelect);
  ExpectRewriteEquivalence(q, Span::Of(-50, 250));
}

TEST_F(RewriterTest, RoutesSelectConjunctsIntoCompose) {
  auto q = SeqRef("a")
               .ComposeWith(SeqRef("b"))
               .Select(And(Gt(Col("value"), Lit(int64_t{10})),
                           Lt(Col("w"), Lit(int64_t{900}))))
               .Build();
  std::vector<std::string> log;
  LogicalOpPtr out = Rewrite(q, &log);
  EXPECT_TRUE(Applied(log, "select-into-compose"));
  ASSERT_EQ(out->kind(), OpKind::kCompose);
  // Each side received its own conjunct as a selection.
  EXPECT_EQ(out->input(0)->kind(), OpKind::kSelect);
  EXPECT_EQ(out->input(1)->kind(), OpKind::kSelect);
  ExpectRewriteEquivalence(q, Span::Of(0, 199));
}

TEST_F(RewriterTest, MixedConjunctBecomesJoinPredicate) {
  auto q = SeqRef("a")
               .ComposeWith(SeqRef("b"))
               .Select(Gt(Col("value"), Col("w")))
               .Build();
  std::vector<std::string> log;
  LogicalOpPtr out = Rewrite(q, &log);
  EXPECT_TRUE(Applied(log, "select-into-compose"));
  ASSERT_EQ(out->kind(), OpKind::kCompose);
  ASSERT_NE(out->predicate(), nullptr);
  // The predicate references both sides now.
  std::vector<std::pair<int, std::string>> cols;
  out->predicate()->CollectColumns(&cols);
  bool has_left = false, has_right = false;
  for (const auto& [side, name] : cols) {
    (side == 0 ? has_left : has_right) = true;
  }
  EXPECT_TRUE(has_left);
  EXPECT_TRUE(has_right);
  ExpectRewriteEquivalence(q, Span::Of(0, 199));
}

TEST_F(RewriterTest, SelectRoutingHandlesClashedNames) {
  // Both inputs have a column "value" (b registered under column name "w",
  // so build a self-join of a with a): concat renames the right one to
  // value_r; a predicate on value_r must land on the right input.
  auto q = SeqRef("a")
               .ComposeWith(SeqRef("a"))
               .Select(Gt(Col("value_r"), Lit(int64_t{500})))
               .Build();
  std::vector<std::string> log;
  LogicalOpPtr out = Rewrite(q, &log);
  EXPECT_TRUE(Applied(log, "select-into-compose"));
  ASSERT_EQ(out->kind(), OpKind::kCompose);
  EXPECT_EQ(out->input(0)->kind(), OpKind::kBaseRef);  // left untouched
  ASSERT_EQ(out->input(1)->kind(), OpKind::kSelect);
  EXPECT_EQ(out->input(1)->predicate()->ToString(), "(value > 500)");
  ExpectRewriteEquivalence(q, Span::Of(0, 199));
}

TEST_F(RewriterTest, SelectNotPushedThroughAggregate) {
  // §3.1: "a selection cannot be pushed through an aggregate operator".
  auto q = SeqRef("a")
               .Agg(AggFunc::kSum, "value", 3)
               .Select(Gt(Col("sum_value"), Lit(int64_t{100})))
               .Build();
  std::vector<std::string> log;
  LogicalOpPtr out = Rewrite(q, &log);
  EXPECT_EQ(out->kind(), OpKind::kSelect);
  EXPECT_EQ(out->input()->kind(), OpKind::kWindowAgg);
}

TEST_F(RewriterTest, SelectNotPushedThroughValueOffset) {
  // §3.1: "... or a value offset operator".
  auto q = SeqRef("a")
               .Prev()
               .Select(Gt(Col("value"), Lit(int64_t{100})))
               .Build();
  std::vector<std::string> log;
  LogicalOpPtr out = Rewrite(q, &log);
  EXPECT_EQ(out->kind(), OpKind::kSelect);
  EXPECT_EQ(out->input()->kind(), OpKind::kValueOffset);
}

TEST_F(RewriterTest, MergesAdjacentOffsets) {
  auto q = SeqRef("a").Offset(3).Offset(-7).Build();
  std::vector<std::string> log;
  LogicalOpPtr out = Rewrite(q, &log);
  EXPECT_TRUE(Applied(log, "merge-offsets"));
  EXPECT_EQ(out->kind(), OpKind::kPositionalOffset);
  EXPECT_EQ(out->offset(), -4);
  EXPECT_EQ(out->input()->kind(), OpKind::kBaseRef);
  ExpectRewriteEquivalence(q, Span::Of(-50, 250));
}

TEST_F(RewriterTest, DropsZeroOffset) {
  auto q = SeqRef("a").Offset(0).Build();
  std::vector<std::string> log;
  LogicalOpPtr out = Rewrite(q, &log);
  EXPECT_TRUE(Applied(log, "drop-zero-offset"));
  EXPECT_EQ(out->kind(), OpKind::kBaseRef);
}

TEST_F(RewriterTest, OffsetAboveSelectIsAlreadyNormalForm) {
  // Selections sit below positional offsets in the normal form; this tree
  // is already there, so no rule fires and the shape is stable.
  auto q = SeqRef("a")
               .Select(Gt(Col("value"), Lit(int64_t{100})))
               .Offset(4)
               .Build();
  std::vector<std::string> log;
  LogicalOpPtr out = Rewrite(q, &log);
  EXPECT_EQ(out->kind(), OpKind::kPositionalOffset);
  EXPECT_EQ(out->input()->kind(), OpKind::kSelect);
  ExpectRewriteEquivalence(q, Span::Of(-50, 250));
}

TEST_F(RewriterTest, OffsetDistributesOverCompose) {
  // §3.1: "a positional offset can be pushed through any operator of
  // relative scope" — compose included.
  auto q = SeqRef("a").ComposeWith(SeqRef("b")).Offset(-3).Build();
  std::vector<std::string> log;
  LogicalOpPtr out = Rewrite(q, &log);
  EXPECT_TRUE(Applied(log, "offset-through-compose"));
  ASSERT_EQ(out->kind(), OpKind::kCompose);
  EXPECT_EQ(out->input(0)->kind(), OpKind::kPositionalOffset);
  EXPECT_EQ(out->input(1)->kind(), OpKind::kPositionalOffset);
  ExpectRewriteEquivalence(q, Span::Of(-50, 250));
}

TEST_F(RewriterTest, OffsetSinksThroughTrailingAggregate) {
  auto q = SeqRef("a").Agg(AggFunc::kSum, "value", 3).Offset(2).Build();
  std::vector<std::string> log;
  LogicalOpPtr out = Rewrite(q, &log);
  EXPECT_TRUE(Applied(log, "offset-through-trailing-agg"));
  EXPECT_EQ(out->kind(), OpKind::kWindowAgg);
  EXPECT_EQ(out->input()->kind(), OpKind::kPositionalOffset);
  ExpectRewriteEquivalence(q, Span::Of(-50, 250));
}

TEST_F(RewriterTest, OffsetNotPushedThroughValueOffset) {
  // Value offsets have non-relative scope; the offset stays above.
  auto q = SeqRef("a").Prev().Offset(2).Build();
  std::vector<std::string> log;
  LogicalOpPtr out = Rewrite(q, &log);
  EXPECT_EQ(out->kind(), OpKind::kPositionalOffset);
  EXPECT_EQ(out->input()->kind(), OpKind::kValueOffset);
}

TEST_F(RewriterTest, OffsetNotPushedThroughRunningAggregate) {
  auto q = SeqRef("a").RunningAgg(AggFunc::kSum, "value").Offset(2).Build();
  std::vector<std::string> log;
  LogicalOpPtr out = Rewrite(q, &log);
  EXPECT_EQ(out->kind(), OpKind::kPositionalOffset);
  EXPECT_EQ(out->input()->kind(), OpKind::kWindowAgg);
}

TEST_F(RewriterTest, DropsIdentityProject) {
  auto q = SeqRef("a").Project({"value"}).Build();
  std::vector<std::string> log;
  LogicalOpPtr out = Rewrite(q, &log);
  EXPECT_TRUE(Applied(log, "drop-identity-project"));
  EXPECT_EQ(out->kind(), OpKind::kBaseRef);
}

TEST_F(RewriterTest, DeepChainReachesFixpoint) {
  // Select over project over offset over compose: everything sinks.
  auto q = SeqRef("a")
               .ComposeWith(SeqRef("b"))
               .Offset(2)
               .Project({"value", "w"})
               .Select(Gt(Col("value"), Lit(int64_t{100})))
               .Build();
  std::vector<std::string> log;
  LogicalOpPtr out = Rewrite(q, &log);
  // Top of tree should be compose (or project above compose) after rules.
  EXPECT_NE(out->kind(), OpKind::kSelect);
  ExpectRewriteEquivalence(q, Span::Of(-50, 250));
}

}  // namespace
}  // namespace seq
