// Operator-level execution tests: direct tests of the physical operators
// through stub inputs, plus cached-vs-naive strategy equivalence and
// access-counting assertions (§3.3–3.5).

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/engine.h"
#include "exec/agg_ops.h"
#include "exec/compose_ops.h"
#include "exec/offset_ops.h"
#include "exec/scan_ops.h"
#include "workload/generators.h"

namespace seq {
namespace {

/// Stub stream yielding a fixed vector of records.
class VectorStream : public StreamOp {
 public:
  explicit VectorStream(std::vector<PosRecord> records)
      : records_(std::move(records)) {}
  Status Open(ExecContext*) override {
    index_ = 0;
    return Status::OK();
  }
  std::optional<PosRecord> Next() override {
    if (index_ >= records_.size()) return std::nullopt;
    return records_[index_++];
  }

 private:
  std::vector<PosRecord> records_;
  size_t index_ = 0;
};

/// Stub probe over the same data, counting probes.
class VectorProbe : public ProbeOp {
 public:
  explicit VectorProbe(std::vector<PosRecord> records) {
    for (PosRecord& pr : records) map_.emplace(pr.pos, std::move(pr.rec));
  }
  Status Open(ExecContext* ctx) override {
    ctx_ = ctx;
    return Status::OK();
  }
  std::optional<Record> Probe(Position p) override {
    if (ctx_ != nullptr && ctx_->stats != nullptr) ++ctx_->stats->probes;
    auto it = map_.find(p);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

 private:
  std::map<Position, Record> map_;
  ExecContext* ctx_ = nullptr;
};

std::vector<PosRecord> Ints(std::initializer_list<std::pair<Position, int>> v) {
  std::vector<PosRecord> out;
  for (auto [p, x] : v) out.push_back({p, Record{Value::Int64(x)}});
  return out;
}

std::vector<PosRecord> Drain(StreamOp* op, ExecContext* ctx) {
  EXPECT_TRUE(op->Open(ctx).ok());
  std::vector<PosRecord> out;
  while (auto r = op->Next()) out.push_back(std::move(*r));
  return out;
}

// --- ValueOffsetOp (Cache-Strategy-B) --------------------------------------

TEST(ValueOffsetOpTest, PreviousEmitsDensely) {
  AccessStats stats;
  ExecContext ctx;
  ctx.stats = &stats;
  ValueOffsetOp op(
      std::make_unique<VectorStream>(Ints({{2, 20}, {5, 50}, {6, 60}})), -1,
      Span::Of(0, 8));
  auto out = Drain(&op, &ctx);
  // Defined at 3..8 (first input at 2).
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(out[0].pos, 3);
  EXPECT_EQ(out[0].rec[0].int64(), 20);
  EXPECT_EQ(out[2].pos, 5);
  EXPECT_EQ(out[2].rec[0].int64(), 20);  // strictly before 5
  EXPECT_EQ(out[3].rec[0].int64(), 50);
  EXPECT_EQ(out[5].rec[0].int64(), 60);
  // Cache-finite: exactly one store per input record.
  EXPECT_EQ(stats.cache_stores, 3);
}

TEST(ValueOffsetOpTest, SecondPrevious) {
  ExecContext ctx;
  AccessStats stats;
  ctx.stats = &stats;
  ValueOffsetOp op(
      std::make_unique<VectorStream>(Ints({{1, 10}, {3, 30}, {7, 70}})), -2,
      Span::Of(0, 9));
  auto out = Drain(&op, &ctx);
  // Needs 2 records strictly before p: defined from 4 on (records 1,3).
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(out[0].pos, 4);
  EXPECT_EQ(out[0].rec[0].int64(), 10);
  EXPECT_EQ(out.back().pos, 9);
  EXPECT_EQ(out.back().rec[0].int64(), 30);
}

TEST(ValueOffsetOpTest, NextLooksAheadWithBuffer) {
  ExecContext ctx;
  AccessStats stats;
  ctx.stats = &stats;
  ValueOffsetOp op(
      std::make_unique<VectorStream>(Ints({{2, 20}, {5, 50}, {9, 90}})), 1,
      Span::Of(0, 10));
  auto out = Drain(&op, &ctx);
  // Defined where a later record exists: 0..8.
  ASSERT_EQ(out.size(), 9u);
  EXPECT_EQ(out[0].pos, 0);
  EXPECT_EQ(out[0].rec[0].int64(), 20);
  EXPECT_EQ(out[2].pos, 2);
  EXPECT_EQ(out[2].rec[0].int64(), 50);  // strictly after 2
  EXPECT_EQ(out[8].pos, 8);
  EXPECT_EQ(out[8].rec[0].int64(), 90);
}

TEST(ValueOffsetOpTest, NextAtOrAfterJumps) {
  ExecContext ctx;
  AccessStats stats;
  ctx.stats = &stats;
  ValueOffsetOp op(
      std::make_unique<VectorStream>(Ints({{2, 20}, {500, 5000}})), -1,
      Span::Of(0, 1000));
  ASSERT_TRUE(op.Open(&ctx).ok());
  auto r = op.NextAtOrAfter(400);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->pos, 400);
  EXPECT_EQ(r->rec[0].int64(), 20);
  r = op.NextAtOrAfter(900);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->rec[0].int64(), 5000);
}

// --- naive value offset equals incremental -------------------------------------

TEST(ValueOffsetEquivalenceTest, NaiveMatchesIncremental) {
  auto data = Ints({{1, 1}, {4, 4}, {5, 5}, {11, 11}, {12, 12}});
  for (int64_t l : {-1, -2, 1, 2}) {
    ExecContext ctx1, ctx2;
    AccessStats s1, s2;
    ctx1.stats = &s1;
    ctx2.stats = &s2;
    ValueOffsetOp incremental(std::make_unique<VectorStream>(data), l,
                                  Span::Of(0, 14));
    ValueOffsetNaiveOp naive(std::make_unique<VectorProbe>(data), l,
                                 Span::Of(0, 14), Span::Of(1, 12));
    auto a = Drain(&incremental, &ctx1);
    auto b = Drain(&naive, &ctx2);
    ASSERT_EQ(a.size(), b.size()) << "l=" << l;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].pos, b[i].pos) << "l=" << l;
      EXPECT_EQ(a[i].rec, b[i].rec) << "l=" << l;
    }
    // The whole point of Cache-Strategy-B: no probes at all.
    EXPECT_EQ(s1.probes, 0);
    EXPECT_GT(s2.probes, 0);
  }
}

// --- window aggregates -----------------------------------------------------------

TEST(WindowAggTest, CachedStreamTouchesEachInputOnce) {
  auto data = Ints({{1, 10}, {2, 20}, {3, 30}, {7, 70}, {8, 80}});
  ExecContext ctx;
  AccessStats stats;
  ctx.stats = &stats;
  WindowAggCachedOp op(std::make_unique<VectorStream>(data),
                           AggFunc::kSum, 0, TypeId::kInt64, 3,
                           Span::Of(1, 10));
  auto out = Drain(&op, &ctx);
  std::map<Position, int64_t> got;
  for (auto& pr : out) got[pr.pos] = pr.rec[0].int64();
  EXPECT_EQ(got[1], 10);
  EXPECT_EQ(got[3], 60);
  EXPECT_EQ(got[5], 30);     // window {3}
  EXPECT_EQ(got.count(6), 0u);  // window empty
  EXPECT_EQ(got[7], 70);
  EXPECT_EQ(got[9], 150);
  EXPECT_EQ(got[10], 80);
  EXPECT_EQ(stats.cache_stores, 5);  // one per input record
  EXPECT_EQ(stats.probes, 0);
}

TEST(WindowAggTest, NaiveProbeMatchesCached) {
  auto data = Ints({{1, 3}, {2, 5}, {4, 7}, {5, 1}, {9, 9}});
  for (AggFunc func : {AggFunc::kSum, AggFunc::kAvg, AggFunc::kMin,
                       AggFunc::kMax, AggFunc::kCount}) {
    ExecContext ctx1, ctx2;
    AccessStats s1, s2;
    ctx1.stats = &s1;
    ctx2.stats = &s2;
    WindowAggCachedOp cached(std::make_unique<VectorStream>(data), func,
                                 0, TypeId::kInt64, 4, Span::Of(0, 12));
    WindowAggNaiveOp naive(std::make_unique<VectorProbe>(data), func, 0,
                               TypeId::kInt64, 4, Span::Of(0, 12));
    auto a = Drain(&cached, &ctx1);
    auto b = Drain(&naive, &ctx2);
    ASSERT_EQ(a.size(), b.size()) << AggFuncName(func);
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].pos, b[i].pos);
      ASSERT_EQ(a[i].rec.size(), 1u);
      EXPECT_EQ(a[i].rec[0].Compare(b[i].rec[0]), 0)
          << AggFuncName(func) << " at " << a[i].pos;
    }
    // Naive re-probes the window: W probes per position in range.
    EXPECT_EQ(s2.probes, 13 * 4);
    EXPECT_EQ(s1.probes, 0);
  }
}

TEST(WindowAggTest, MinMaxUseMonotonicQueues) {
  // A descending then ascending series stresses eviction of stale extrema.
  auto data = Ints({{1, 9}, {2, 7}, {3, 5}, {4, 3}, {5, 6}, {6, 8}});
  ExecContext ctx;
  AccessStats stats;
  ctx.stats = &stats;
  WindowAggCachedOp op(std::make_unique<VectorStream>(data),
                           AggFunc::kMax, 0, TypeId::kInt64, 2,
                           Span::Of(1, 6));
  auto out = Drain(&op, &ctx);
  std::vector<int64_t> maxima;
  for (auto& pr : out) maxima.push_back(pr.rec[0].int64());
  EXPECT_EQ(maxima, (std::vector<int64_t>{9, 9, 7, 5, 6, 8}));
}

// --- compose operators ------------------------------------------------------------

TEST(ComposeTest, LockstepSkipsThroughDenseSide) {
  // Driver side has 2 records; the dense side is a ValueOffsetOp that
  // would emit at every position; lock-step with NextAtOrAfter must not
  // enumerate them all.
  auto sparse = Ints({{100, 1}, {900, 2}});
  auto base = Ints({{1, 10}, {500, 50}});
  ExecContext ctx;
  AccessStats stats;
  ctx.stats = &stats;
  auto dense = std::make_unique<ValueOffsetOp>(
      std::make_unique<VectorStream>(base), -1, Span::Of(0, 1000));
  SchemaPtr out_schema = Schema::Make(
      {Field{"a", TypeId::kInt64}, Field{"b", TypeId::kInt64}});
  ComposeLockstepOp op(std::make_unique<VectorStream>(sparse),
                           std::move(dense), nullptr, out_schema);
  auto out = Drain(&op, &ctx);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].pos, 100);
  EXPECT_EQ(out[0].rec[1].int64(), 10);
  EXPECT_EQ(out[1].pos, 900);
  EXPECT_EQ(out[1].rec[1].int64(), 50);
  // The dense side serves O(1) positions per join step from its cache —
  // not one per position of the 1000-wide span.
  EXPECT_LE(stats.cache_hits, 6);
}

TEST(ComposeTest, StreamProbePreservesFieldOrder) {
  auto left = Ints({{1, 10}, {2, 20}});
  auto right = Ints({{2, 200}, {3, 300}});
  SchemaPtr out_schema = Schema::Make(
      {Field{"l", TypeId::kInt64}, Field{"r", TypeId::kInt64}});
  ExecContext ctx;
  AccessStats stats;
  ctx.stats = &stats;
  // Driver is the RIGHT side; output order must still be left-then-right.
  ComposeStreamProbeOp op(std::make_unique<VectorStream>(right),
                        std::make_unique<VectorProbe>(left),
                        /*driver_is_left=*/false, nullptr, out_schema);
  auto out = Drain(&op, &ctx);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].pos, 2);
  EXPECT_EQ(out[0].rec[0].int64(), 20);   // left value first
  EXPECT_EQ(out[0].rec[1].int64(), 200);  // right value second
  EXPECT_EQ(stats.probes, 2);             // one probe per driver record
}

TEST(ComposeTest, ProbeBothShortCircuits) {
  auto left = Ints({{5, 1}});
  auto right = Ints({{5, 2}, {6, 3}});
  SchemaPtr out_schema = Schema::Make(
      {Field{"l", TypeId::kInt64}, Field{"r", TypeId::kInt64}});
  ExecContext ctx;
  AccessStats stats;
  ctx.stats = &stats;
  ComposeProbeBothOp op(std::make_unique<VectorProbe>(left),
                      std::make_unique<VectorProbe>(right),
                      /*probe_left_first=*/true, nullptr, out_schema);
  ASSERT_TRUE(op.Open(&ctx).ok());
  EXPECT_FALSE(op.Probe(6).has_value());
  EXPECT_EQ(stats.probes, 1);  // left miss short-circuits right
  auto hit = op.Probe(5);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(stats.probes, 3);
}

// --- ablation equivalence through the whole engine -------------------------------

class AblationTest : public ::testing::Test {
 protected:
  static Engine MakeEngine(bool disable_cache_a, bool disable_cache_b) {
    OptimizerOptions options;
    options.cost_params.disable_window_cache = disable_cache_a;
    options.cost_params.disable_incremental_value_offset = disable_cache_b;
    Engine engine(options);
    StockSeriesOptions stock;
    stock.span = Span::Of(1, 500);
    stock.density = 0.6;
    stock.seed = 11;
    EXPECT_TRUE(engine.RegisterBase("s", *MakeStockSeries(stock)).ok());
    return engine;
  }

  static void ExpectSameResults(const QueryResult& a, const QueryResult& b) {
    ASSERT_EQ(a.records.size(), b.records.size());
    for (size_t i = 0; i < a.records.size(); ++i) {
      EXPECT_EQ(a.records[i].pos, b.records[i].pos);
      ASSERT_EQ(a.records[i].rec.size(), b.records[i].rec.size());
      for (size_t j = 0; j < a.records[i].rec.size(); ++j) {
        const Value& va = a.records[i].rec[j];
        const Value& vb = b.records[i].rec[j];
        if (va.type() == TypeId::kDouble && vb.type() == TypeId::kDouble) {
          // Incremental accumulators (Cache-Strategy-A) and fresh per-window
          // sums differ by float rounding only.
          EXPECT_NEAR(va.dbl(), vb.dbl(), 1e-6 * (1.0 + std::abs(vb.dbl())));
        } else {
          EXPECT_EQ(va.Compare(vb), 0);
        }
      }
    }
  }
};

TEST_F(AblationTest, WindowCacheAblationPreservesResults) {
  Engine cached = MakeEngine(false, false);
  Engine naive = MakeEngine(true, false);
  auto q = SeqRef("s").Agg(AggFunc::kAvg, "close", 6).Build();
  AccessStats s1, s2;
  auto r1 = cached.Run(q, Span::Of(1, 505), &s1);
  auto r2 = naive.Run(q, Span::Of(1, 505), &s2);
  ASSERT_TRUE(r1.ok()) << r1.status();
  ASSERT_TRUE(r2.ok()) << r2.status();
  ExpectSameResults(*r1, *r2);
  // Fig. 5.A claim: the cached plan reads each input once; naive probes
  // W per position.
  EXPECT_EQ(s1.probes, 0);
  EXPECT_GT(s2.probes, 6 * 400);
}

TEST_F(AblationTest, ValueOffsetAblationPreservesResults) {
  Engine cached = MakeEngine(false, false);
  Engine naive = MakeEngine(false, true);
  auto q = SeqRef("s").Prev().Build();
  AccessStats s1, s2;
  auto r1 = cached.Run(q, Span::Of(1, 500), &s1);
  auto r2 = naive.Run(q, Span::Of(1, 500), &s2);
  ASSERT_TRUE(r1.ok()) << r1.status();
  ASSERT_TRUE(r2.ok()) << r2.status();
  ExpectSameResults(*r1, *r2);
  EXPECT_EQ(s1.probes, 0);
  EXPECT_GT(s2.probes, 0);
}

TEST_F(AblationTest, ForcedProbedRootPreservesResults) {
  OptimizerOptions stream_options;
  Engine engine = MakeEngine(false, false);
  auto q = SeqRef("s").Select(Gt(Col("close"), Lit(90.0))).Build();
  auto streamed = engine.Run(q, Span::Of(1, 500));
  ASSERT_TRUE(streamed.ok());

  OptimizerOptions options;
  options.force_root_mode = AccessMode::kProbed;
  Engine probed_engine(options);
  StockSeriesOptions stock;
  stock.span = Span::Of(1, 500);
  stock.density = 0.6;
  stock.seed = 11;
  ASSERT_TRUE(probed_engine.RegisterBase("s", *MakeStockSeries(stock)).ok());
  AccessStats stats;
  auto probed = probed_engine.Run(q, Span::Of(1, 500), &stats);
  ASSERT_TRUE(probed.ok()) << probed.status();
  ExpectSameResults(*streamed, *probed);
  EXPECT_GT(stats.probes, 0);
}

}  // namespace
}  // namespace seq
