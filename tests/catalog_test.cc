// Unit tests for the catalog: registration, lookup, correlation metadata.

#include <gtest/gtest.h>

#include "catalog/catalog.h"

namespace seq {
namespace {

BaseSequencePtr TinyStore() {
  SchemaPtr schema = Schema::Make({Field{"v", TypeId::kInt64}});
  auto store = std::make_shared<BaseSequenceStore>(schema, 4);
  EXPECT_TRUE(store->Append(1, Record{Value::Int64(10)}).ok());
  return store;
}

TEST(CatalogTest, RegisterAndLookupBase) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterBase("s", TinyStore()).ok());
  auto entry = catalog.Lookup("s");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ((*entry)->kind, CatalogEntry::Kind::kBase);
  EXPECT_EQ((*entry)->span(), Span::Of(1, 1));
  EXPECT_TRUE(catalog.Contains("s"));
  EXPECT_FALSE(catalog.Contains("t"));
}

TEST(CatalogTest, DuplicateNamesRejected) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterBase("s", TinyStore()).ok());
  EXPECT_FALSE(catalog.RegisterBase("s", TinyStore()).ok());
  SchemaPtr schema = Schema::Make({Field{"c", TypeId::kDouble}});
  EXPECT_FALSE(
      catalog.RegisterConstant("s", schema, Record{Value::Double(1.0)}).ok());
}

TEST(CatalogTest, LookupUnknownIsNotFound) {
  Catalog catalog;
  auto missing = catalog.Lookup("ghost");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(CatalogTest, ConstantProperties) {
  Catalog catalog;
  SchemaPtr schema = Schema::Make({Field{"c", TypeId::kDouble}});
  ASSERT_TRUE(
      catalog.RegisterConstant("k", schema, Record{Value::Double(2.0)}).ok());
  auto entry = catalog.Lookup("k");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ((*entry)->kind, CatalogEntry::Kind::kConstant);
  EXPECT_TRUE((*entry)->span().IsUnbounded());
  EXPECT_DOUBLE_EQ((*entry)->density(), 1.0);
}

TEST(CatalogTest, ConstantTypeChecked) {
  Catalog catalog;
  SchemaPtr schema = Schema::Make({Field{"c", TypeId::kDouble}});
  EXPECT_FALSE(
      catalog.RegisterConstant("k", schema, Record{Value::Int64(2)}).ok());
}

TEST(CatalogTest, CorrelationIsSymmetricAndDefaultsToZero) {
  Catalog catalog;
  EXPECT_DOUBLE_EQ(catalog.NullCorrelation("a", "b"), 0.0);
  catalog.SetNullCorrelation("a", "b", 0.8);
  EXPECT_DOUBLE_EQ(catalog.NullCorrelation("a", "b"), 0.8);
  EXPECT_DOUBLE_EQ(catalog.NullCorrelation("b", "a"), 0.8);
}

TEST(CatalogTest, JointDensityInterpolates) {
  // Independent: product. Fully correlated: min.
  EXPECT_DOUBLE_EQ(Catalog::JointDensity(0.5, 0.4, 0.0), 0.2);
  EXPECT_DOUBLE_EQ(Catalog::JointDensity(0.5, 0.4, 1.0), 0.4);
  EXPECT_DOUBLE_EQ(Catalog::JointDensity(0.5, 0.4, 0.5), 0.3);
}

TEST(CatalogTest, ListSequences) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterBase("b", TinyStore()).ok());
  SchemaPtr schema = Schema::Make({Field{"c", TypeId::kDouble}});
  ASSERT_TRUE(
      catalog.RegisterConstant("a", schema, Record{Value::Double(1.0)}).ok());
  EXPECT_EQ(catalog.ListSequences(), (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace seq
