// Tests for the Theorem 3.1 / Lemma 3.2 stream-access analysis, including
// the dynamic confirmation: queries the analyzer declares cache-finite
// must execute with bounded caches and a single scan.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "optimizer/streamability.h"
#include "workload/generators.h"

namespace seq {
namespace {

using Mode = StreamabilityReport::Mode;

Mode ModeOf(const StreamabilityReport& report, OpKind kind) {
  for (const auto& entry : report.operators) {
    if (entry.op->kind() == kind) return entry.mode;
  }
  ADD_FAILURE() << "no operator of kind " << OpKindName(kind);
  return Mode::kBlocked;
}

TEST(StreamabilityTest, Theorem31DirectCase) {
  // All sequential fixed scopes: select + trailing window.
  auto q = SeqRef("s")
               .Select(Gt(Col("v"), Lit(1.0)))
               .Agg(AggFunc::kSum, "v", 6)
               .Build();
  StreamabilityReport report = AnalyzeStreamability(*q);
  EXPECT_TRUE(report.stream_access);
  EXPECT_EQ(ModeOf(report, OpKind::kSelect), Mode::kDirect);
  EXPECT_EQ(ModeOf(report, OpKind::kWindowAgg), Mode::kDirect);
  EXPECT_EQ(report.total_cache_records, 6);  // the window, nothing else
}

TEST(StreamabilityTest, OffsetUsesEffectiveScope) {
  // The paper's §3.4 example: offset -5 has scope size 1 but needs an
  // effective scope of six.
  auto q = SeqRef("s").Offset(-5).Build();
  StreamabilityReport report = AnalyzeStreamability(*q);
  EXPECT_TRUE(report.stream_access);
  EXPECT_EQ(ModeOf(report, OpKind::kPositionalOffset), Mode::kEffective);
  EXPECT_EQ(report.total_cache_records, 6);
}

TEST(StreamabilityTest, ValueOffsetIsIncremental) {
  auto q = SeqRef("s").Prev().Build();
  StreamabilityReport report = AnalyzeStreamability(*q);
  EXPECT_TRUE(report.stream_access);
  EXPECT_EQ(ModeOf(report, OpKind::kValueOffset), Mode::kIncremental);
  EXPECT_EQ(report.total_cache_records, 1);
}

TEST(StreamabilityTest, MotivatingExampleIsCacheFinite) {
  // Fig. 1: volcanos ∘ prev(quakes) σ — the paper's "single scan, very
  // little memory": one cached quake + the merge's two pending records.
  auto q = SeqRef("volcanos")
               .ComposeWith(SeqRef("quakes").Prev())
               .Select(Gt(Col("strength"), Lit(7.0)))
               .Build();
  StreamabilityReport report = AnalyzeStreamability(*q);
  EXPECT_TRUE(report.stream_access);
  EXPECT_EQ(report.total_cache_records, 3);
}

TEST(StreamabilityTest, CacheBoundsSumOverOperators) {
  auto q = SeqRef("s")
               .Agg(AggFunc::kMin, "v", 4)
               .Offset(-2)
               .ValueOffset(-3)
               .Build();
  StreamabilityReport report = AnalyzeStreamability(*q);
  EXPECT_TRUE(report.stream_access);
  // window 4 + effective offset 3 + incremental 3.
  EXPECT_EQ(report.total_cache_records, 10);
  EXPECT_NE(report.ToString().find("stream-access evaluation: YES"),
            std::string::npos);
}

// Dynamic confirmation: the analyzer's cache bound is respected by the
// executed plan — cache stores grow with input size, but the *live* cache
// (stores − evictions) is bounded; we verify via the single-scan property
// and the absence of probes, and by checking stores ≈ input records (each
// record cached at most once per caching operator).
TEST(StreamabilityTest, DynamicSingleScanMatchesAnalysis) {
  Engine engine;
  IntSeriesOptions options;
  options.span = Span::Of(0, 9999);
  options.density = 0.5;
  options.seed = 77;
  ASSERT_TRUE(engine.RegisterBase("s", *MakeIntSeries(options)).ok());
  auto q = SeqRef("s")
               .Select(Gt(Col("value"), Lit(int64_t{100})))
               .Agg(AggFunc::kSum, "value", 8)
               .Build();
  StreamabilityReport report = AnalyzeStreamability(*q);
  ASSERT_TRUE(report.stream_access);

  AccessStats stats;
  auto result = engine.Run(q, Span::Of(0, 10010), &stats);
  ASSERT_TRUE(result.ok());
  int64_t input_records = 5000;  // ~density x span
  EXPECT_EQ(stats.probes, 0);
  EXPECT_LE(stats.stream_records, input_records + 100);
  // One cache store per record entering the (single) caching operator.
  EXPECT_LE(stats.cache_stores, stats.stream_records);
}

}  // namespace
}  // namespace seq
