// Tests for the relational baseline substrate, including the key
// cross-check: the SQL-style nested-subquery plan for Example 1.1 returns
// exactly the same answers as the sequence engine's stream plan, at a much
// higher tuple cost.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "relational/operators.h"
#include "relational/table.h"
#include "relational/volcano_sql.h"
#include "workload/generators.h"

namespace seq {
namespace {

using relational::AggregateMax;
using relational::Filter;
using relational::NestedLoopJoin;
using relational::Project;
using relational::RelStats;
using relational::Table;
using relational::TableFromSequence;
using relational::VolcanoQuerySql;

Table PeopleTable() {
  Table t(Schema::Make(
      {Field{"id", TypeId::kInt64}, Field{"age", TypeId::kInt64}}));
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(t.Append({Value::Int64(i), Value::Int64(20 + i * 5)}).ok());
  }
  return t;
}

TEST(RelationalTest, AppendTypeChecks) {
  Table t(Schema::Make({Field{"x", TypeId::kInt64}}));
  EXPECT_TRUE(t.Append({Value::Int64(1)}).ok());
  EXPECT_FALSE(t.Append({Value::Double(1.0)}).ok());
  EXPECT_FALSE(t.Append({}).ok());
}

TEST(RelationalTest, FilterCountsScans) {
  Table t = PeopleTable();
  RelStats stats;
  auto out = Filter(t, Gt(Col("age"), Lit(int64_t{40})), &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 5u);
  EXPECT_EQ(stats.tuples_scanned, 10);
  EXPECT_EQ(stats.predicate_evals, 10);
}

TEST(RelationalTest, ProjectSelectsColumns) {
  Table t = PeopleTable();
  RelStats stats;
  auto out = Project(t, {"age"}, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->schema()->num_fields(), 1u);
  EXPECT_EQ(out->rows()[3][0].int64(), 35);
}

TEST(RelationalTest, NestedLoopJoinIsQuadratic) {
  Table t = PeopleTable();
  RelStats stats;
  auto out =
      NestedLoopJoin(t, t, Eq(Col("id", 0), Col("id", 1)), &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 10u);
  EXPECT_EQ(stats.tuples_scanned, 10 + 10 * 10);
  EXPECT_EQ(out->schema()->num_fields(), 4u);
  EXPECT_EQ(out->schema()->field(2).name, "id_r");
}

TEST(RelationalTest, AggregateMaxWithPredicate) {
  Table t = PeopleTable();
  RelStats stats;
  auto max_age =
      AggregateMax(t, "age", Lt(Col("id"), Lit(int64_t{5})), &stats);
  ASSERT_TRUE(max_age.ok());
  ASSERT_TRUE(max_age->has_value());
  EXPECT_EQ((**max_age).int64(), 40);  // id in [0,4] -> max age 40
  EXPECT_EQ(stats.tuples_scanned, 10);
  auto none = AggregateMax(t, "age", Lt(Col("id"), Lit(int64_t{-1})),
                           &stats);
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none->has_value());
}

TEST(RelationalTest, TableFromSequencePrependsTime) {
  SchemaPtr schema = Schema::Make({Field{"v", TypeId::kDouble}});
  BaseSequenceStore store(schema, 4);
  ASSERT_TRUE(store.Append(3, Record{Value::Double(1.5)}).ok());
  auto table = TableFromSequence(store);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->schema()->field(0).name, "time");
  EXPECT_EQ(table->rows()[0][0].int64(), 3);
  EXPECT_DOUBLE_EQ(table->rows()[0][1].dbl(), 1.5);
}

// --- Example 1.1 cross-check -----------------------------------------------------

class VolcanoCrossCheckTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VolcanoCrossCheckTest, SqlBaselineMatchesSequenceEngine) {
  uint64_t seed = GetParam();
  EventSeriesOptions eq;
  eq.span = Span::Of(1, 5000);
  eq.density = 0.03;
  eq.seed = seed;
  auto quakes = MakeEarthquakes(eq);
  ASSERT_TRUE(quakes.ok());
  EventSeriesOptions vo;
  vo.span = Span::Of(1, 5000);
  vo.density = 0.01;
  vo.seed = seed + 1000;
  auto volcanos = MakeVolcanos(vo);
  ASSERT_TRUE(volcanos.ok());

  // Sequence engine: single lock-step scan.
  Engine engine;
  ASSERT_TRUE(engine.RegisterBase("quakes", *quakes).ok());
  ASSERT_TRUE(engine.RegisterBase("volcanos", *volcanos).ok());
  auto q = SeqRef("volcanos")
               .ComposeWith(SeqRef("quakes").Prev())
               .Select(Gt(Col("strength"), Lit(7.0)))
               .Project({"name"})
               .Build();
  AccessStats seq_stats;
  auto seq_result = engine.Run(q, Span::Of(1, 5000), &seq_stats);
  ASSERT_TRUE(seq_result.ok()) << seq_result.status();
  std::vector<std::string> seq_names;
  for (const PosRecord& pr : seq_result->records) {
    seq_names.push_back(pr.rec[0].str());
  }

  // Relational baseline: correlated subquery per volcano tuple.
  auto vtable = TableFromSequence(**volcanos);
  auto qtable = TableFromSequence(**quakes);
  ASSERT_TRUE(vtable.ok());
  ASSERT_TRUE(qtable.ok());
  RelStats rel_stats;
  auto sql_names = VolcanoQuerySql(*vtable, *qtable, 7.0, &rel_stats);
  ASSERT_TRUE(sql_names.ok()) << sql_names.status();

  EXPECT_EQ(seq_names, *sql_names);

  // The paper's efficiency claim: the stream plan reads each base record
  // once; the relational plan reads O(|V| x |E|) tuples.
  int64_t v = (*volcanos)->num_records();
  int64_t e = (*quakes)->num_records();
  EXPECT_LE(seq_stats.stream_records, v + e);
  EXPECT_GE(rel_stats.tuples_scanned, v * e);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VolcanoCrossCheckTest,
                         ::testing::Values(1, 2, 3, 17, 99));

}  // namespace
}  // namespace seq
