// Tests for selectivity estimation, the §4.1 cost model, the block
// planner's strategy choices, and the Property 4.1 enumeration counters.

#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.h"
#include "optimizer/cost_model.h"
#include "optimizer/planner.h"
#include "optimizer/selectivity.h"
#include "workload/generators.h"

namespace seq {
namespace {

// --- selectivity ---------------------------------------------------------------

class SelectivityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Uniform int values in [0, 1000].
    IntSeriesOptions options;
    options.span = Span::Of(0, 9999);
    options.density = 1.0;
    options.min_value = 0;
    options.max_value = 1000;
    store_ = *MakeIntSeries(options);
  }
  BaseSequencePtr store_;
  CostParams params_;
};

TEST_F(SelectivityTest, RangePredicateInterpolates) {
  double sel = EstimateSelectivity(Gt(Col("value"), Lit(int64_t{750})),
                                   store_.get(), params_);
  EXPECT_NEAR(sel, 0.25, 0.05);
  sel = EstimateSelectivity(Lt(Col("value"), Lit(int64_t{100})),
                            store_.get(), params_);
  EXPECT_NEAR(sel, 0.1, 0.05);
}

TEST_F(SelectivityTest, ReversedOperandsMirror) {
  double sel = EstimateSelectivity(Gt(Lit(int64_t{750}), Col("value")),
                                   store_.get(), params_);
  EXPECT_NEAR(sel, 0.75, 0.05);
}

TEST_F(SelectivityTest, EqualityUsesDistinct) {
  double sel = EstimateSelectivity(Eq(Col("value"), Lit(int64_t{5})),
                                   store_.get(), params_);
  EXPECT_NEAR(sel, 1.0 / 1001.0, 0.001);
}

TEST_F(SelectivityTest, ConjunctionMultiplies) {
  ExprPtr a = Gt(Col("value"), Lit(int64_t{500}));
  ExprPtr pred = And(a, Lt(Col("value"), Lit(int64_t{750})));
  double sel = EstimateSelectivity(pred, store_.get(), params_);
  EXPECT_NEAR(sel, 0.5 * 0.75, 0.1);
}

TEST_F(SelectivityTest, DisjunctionInclusionExclusion) {
  ExprPtr pred = Or(Gt(Col("value"), Lit(int64_t{900})),
                    Lt(Col("value"), Lit(int64_t{100})));
  double sel = EstimateSelectivity(pred, store_.get(), params_);
  EXPECT_NEAR(sel, 0.1 + 0.1 - 0.01, 0.08);
}

TEST_F(SelectivityTest, NegationComplements) {
  ExprPtr pred = Not(Gt(Col("value"), Lit(int64_t{250})));
  double sel = EstimateSelectivity(pred, store_.get(), params_);
  EXPECT_NEAR(sel, 0.25, 0.05);
}

TEST_F(SelectivityTest, DefaultsWithoutStats) {
  double sel = EstimateSelectivity(Gt(Col("value"), Lit(int64_t{750})),
                                   nullptr, params_);
  EXPECT_DOUBLE_EQ(sel, params_.default_range_selectivity);
  sel = EstimateSelectivity(Eq(Col("value"), Lit(int64_t{5})), nullptr,
                            params_);
  EXPECT_DOUBLE_EQ(sel, params_.default_eq_selectivity);
}

TEST_F(SelectivityTest, NullPredicateIsOne) {
  EXPECT_DOUBLE_EQ(EstimateSelectivity(nullptr, store_.get(), params_), 1.0);
}

TEST_F(SelectivityTest, ClampedToFloor) {
  ExprPtr impossible = Gt(Col("value"), Lit(int64_t{99999}));
  double sel = EstimateSelectivity(impossible, store_.get(), params_);
  EXPECT_GT(sel, 0.0);
  EXPECT_LE(sel, 0.001);
}

// --- cost model -----------------------------------------------------------------

TEST(CostModelTest, BaseStreamCostCountsPages) {
  SchemaPtr schema = Schema::Make({Field{"v", TypeId::kInt64}});
  AccessCosts costs;
  costs.page_cost = 10.0;
  costs.probe_cost = 12.0;
  BaseSequenceStore store(schema, 64, costs);
  for (Position p = 0; p < 640; ++p) {
    ASSERT_TRUE(store.Append(p, Record{Value::Int64(p)}).ok());
  }
  AccessEst est = BaseSequenceCosts(store, store.span());
  EXPECT_DOUBLE_EQ(est.stream_cost, 100.0);           // 10 pages x 10
  EXPECT_DOUBLE_EQ(est.probed_cost, 640.0 * 12.0);    // per-position probes
  EXPECT_DOUBLE_EQ(est.density, 1.0);
  EXPECT_EQ(est.span_len, 640);
  // Range restriction shrinks both linearly.
  AccessEst half = BaseSequenceCosts(store, Span::Of(0, 319));
  EXPECT_DOUBLE_EQ(half.stream_cost, 50.0);
}

TEST(CostModelTest, ComposePrefersLockstepForDenseInputs) {
  AccessEst left{/*stream=*/100, /*probed=*/12000, /*density=*/1.0,
                 /*span=*/1000};
  AccessEst right = left;
  ComposeCostResult r =
      ComposeCosts(left, right, /*joint=*/1.0, /*span=*/1000, CostParams{});
  EXPECT_EQ(r.stream_strategy, JoinStrategy::kStreamBoth);
}

TEST(CostModelTest, ComposePrefersProbeForSparseDriver) {
  // Left is very sparse and cheap to stream; probing right per record
  // beats scanning all of right.
  AccessEst left{/*stream=*/2, /*probed=*/12000, /*density=*/0.001,
                 /*span=*/1000};
  AccessEst right{/*stream=*/1000, /*probed=*/12000, /*density=*/1.0,
                  /*span=*/1000};
  ComposeCostResult r =
      ComposeCosts(left, right, /*joint=*/0.001, /*span=*/1000, CostParams{});
  EXPECT_EQ(r.stream_strategy, JoinStrategy::kStreamLeftProbeRight);
  // Mirrored inputs mirror the strategy.
  ComposeCostResult m =
      ComposeCosts(right, left, 0.001, 1000, CostParams{});
  EXPECT_EQ(m.stream_strategy, JoinStrategy::kStreamRightProbeLeft);
}

TEST(CostModelTest, ProbedModeProbesCheaperRejectorFirst) {
  AccessEst cheap{/*stream=*/10, /*probed=*/100, /*density=*/0.1,
                  /*span=*/100};
  AccessEst dear{/*stream=*/10, /*probed=*/10000, /*density=*/1.0,
                 /*span=*/100};
  ComposeCostResult r = ComposeCosts(cheap, dear, 0.1, 100, CostParams{});
  EXPECT_TRUE(r.probe_left_first);
  ComposeCostResult m = ComposeCosts(dear, cheap, 0.1, 100, CostParams{});
  EXPECT_FALSE(m.probe_left_first);
}

TEST(CostModelTest, PredicateTermScalesWithJointDensity) {
  AccessEst e{/*stream=*/0, /*probed=*/0, /*density=*/1.0, /*span=*/1000};
  CostParams params;
  ComposeCostResult dense = ComposeCosts(e, e, 1.0, 1000, params);
  ComposeCostResult sparse = ComposeCosts(e, e, 0.1, 1000, params);
  EXPECT_NEAR(dense.stream_cost - sparse.stream_cost,
              0.9 * 1000 * params.join_predicate_cost, 1e-9);
}

// --- planner strategy choices ------------------------------------------------

class PlannerChoiceTest : public ::testing::Test {
 protected:
  // Registers "sparse" (very low density) and "dense" (density 1) over the
  // same span.
  void SetUp() override {
    IntSeriesOptions sparse;
    sparse.span = Span::Of(0, 99999);
    sparse.density = 0.001;
    sparse.seed = 5;
    ASSERT_TRUE(engine_.RegisterBase("sparse", *MakeIntSeries(sparse)).ok());
    IntSeriesOptions dense = sparse;
    dense.density = 1.0;
    dense.seed = 6;
    dense.column = "w";
    ASSERT_TRUE(engine_.RegisterBase("dense", *MakeIntSeries(dense)).ok());
  }
  Engine engine_;
};

TEST_F(PlannerChoiceTest, SparseDriverProbesDenseSide) {
  Query q;
  q.graph = SeqRef("sparse").ComposeWith(SeqRef("dense")).Build();
  auto plan = engine_.Plan(q);
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Find the compose node.
  const PhysNode* node = plan->root.get();
  while (node->op != OpKind::kCompose) {
    ASSERT_FALSE(node->children.empty());
    node = node->children[0].get();
  }
  EXPECT_NE(node->join_strategy, JoinStrategy::kStreamBoth);
}

TEST_F(PlannerChoiceTest, DenseInputsUseLockstep) {
  IntSeriesOptions dense2;
  dense2.span = Span::Of(0, 99999);
  dense2.density = 1.0;
  dense2.seed = 9;
  dense2.column = "u";
  ASSERT_TRUE(engine_.RegisterBase("dense2", *MakeIntSeries(dense2)).ok());
  Query q;
  q.graph = SeqRef("dense").ComposeWith(SeqRef("dense2")).Build();
  auto plan = engine_.Plan(q);
  ASSERT_TRUE(plan.ok()) << plan.status();
  const PhysNode* node = plan->root.get();
  while (node->op != OpKind::kCompose) node = node->children[0].get();
  EXPECT_EQ(node->join_strategy, JoinStrategy::kStreamBoth);
}

TEST_F(PlannerChoiceTest, RangeQueryPicksStreamRoot) {
  Query q;
  q.graph = SeqRef("dense").Build();
  auto plan = engine_.Plan(q);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root_mode, AccessMode::kStream);
}

TEST_F(PlannerChoiceTest, FewPointQueriesPickProbedRoot) {
  Query q;
  q.graph = SeqRef("dense").Build();
  q.positions = {5, 90000};
  auto plan = engine_.Plan(q);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root_mode, AccessMode::kProbed);
  // And it runs correctly.
  Executor executor(engine_.catalog());
  auto result = executor.Execute(*plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->records.size(), 2u);
}

TEST_F(PlannerChoiceTest, ManyPointQueriesFlipToStream) {
  Query q;
  q.graph = SeqRef("dense").Build();
  for (Position p = 0; p < 99999; p += 2) q.positions.push_back(p);
  auto plan = engine_.Plan(q);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root_mode, AccessMode::kStream);
}

TEST_F(PlannerChoiceTest, WindowAggUsesCacheA) {
  Query q;
  q.graph = SeqRef("dense").Agg(AggFunc::kSum, "w", 8).Build();
  auto plan = engine_.Plan(q);
  ASSERT_TRUE(plan.ok());
  const PhysNode* node = plan->root.get();
  while (node->op != OpKind::kWindowAgg) node = node->children[0].get();
  EXPECT_EQ(node->agg_strategy, AggStrategy::kCacheA);
  EXPECT_EQ(node->cache_size, 8);
}

TEST_F(PlannerChoiceTest, HugeWindowFallsBackToNaive) {
  OptimizerOptions options;
  options.cost_params.max_cached_scope = 4;
  Optimizer optimizer(engine_.catalog(), options);
  Query q;
  q.graph = SeqRef("dense").Agg(AggFunc::kSum, "w", 100).Build();
  auto plan = optimizer.Optimize(q);
  ASSERT_TRUE(plan.ok());
  const PhysNode* node = plan->root.get();
  while (node->op != OpKind::kWindowAgg) node = node->children[0].get();
  EXPECT_EQ(node->agg_strategy, AggStrategy::kNaiveProbe);
}

TEST_F(PlannerChoiceTest, ValueOffsetStreamUsesCacheB) {
  Query q;
  q.graph = SeqRef("sparse").Prev().Build();
  q.range = Span::Of(0, 99999);
  auto plan = engine_.Plan(q);
  ASSERT_TRUE(plan.ok());
  const PhysNode* node = plan->root.get();
  while (node->op != OpKind::kValueOffset) node = node->children[0].get();
  EXPECT_EQ(node->offset_strategy, OffsetStrategy::kIncrementalCacheB);
  EXPECT_EQ(node->cache_size, 1);
}

// --- Property 4.1: enumeration counts ------------------------------------------

class Prop41Test : public ::testing::TestWithParam<int> {};

TEST_P(Prop41Test, PlansConsideredMatchesFormula) {
  int n = GetParam();
  Engine engine;
  for (int i = 0; i < n; ++i) {
    IntSeriesOptions options;
    options.span = Span::Of(0, 999);
    options.density = 0.2 + 0.1 * (i % 5);
    options.seed = 100 + i;
    options.column = "c" + std::to_string(i);
    ASSERT_TRUE(engine
                    .RegisterBase("s" + std::to_string(i),
                                  *MakeIntSeries(options))
                    .ok());
  }
  QueryBuilder q = SeqRef("s0");
  for (int i = 1; i < n; ++i) {
    q = q.ComposeWith(SeqRef("s" + std::to_string(i)));
  }
  Optimizer optimizer(engine.catalog());
  Query query;
  query.graph = q.Build();
  auto plan = optimizer.Optimize(query);
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Property 4.1(a): number of join plans evaluated = N * 2^(N-1) ... the
  // left-deep expansions (S, x) with S any nonempty subset, x outside S,
  // equal sum_k C(N,k)(N-k) = N * 2^(N-1); subtracting the N singleton
  // "expansions from nothing" that the DP seeds directly gives N*2^(N-1)-N.
  int64_t expected = static_cast<int64_t>(n) * (1LL << (n - 1)) -
                     static_cast<int64_t>(n);
  EXPECT_EQ(optimizer.planner_stats().plans_considered, expected);
  // Property 4.1(b): retained plans bounded by the largest DP level,
  // C(N, ceil(N/2)).
  auto choose = [](int64_t nn, int64_t k) {
    double c = 1.0;
    for (int64_t i = 1; i <= k; ++i) {
      c *= static_cast<double>(nn - k + i) / static_cast<double>(i);
    }
    return static_cast<int64_t>(std::llround(c));
  };
  EXPECT_LE(optimizer.planner_stats().plans_retained_max,
            2 * choose(n, (n + 1) / 2));
  EXPECT_EQ(optimizer.planner_stats().largest_block, n);
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, Prop41Test,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8));

TEST(WideBlockTest, GreedyFallbackBeyondDpLimit) {
  // Blocks wider than Planner::kMaxDpItems are planned greedily in input
  // order instead of by exhaustive DP; the plan must still be correct.
  constexpr int kItems = Planner::kMaxDpItems + 2;
  Engine engine;
  for (int i = 0; i < kItems; ++i) {
    IntSeriesOptions options;
    options.span = Span::Of(0, 199);
    options.density = 1.0;
    options.seed = 500 + i;
    options.min_value = i * 10;
    options.max_value = i * 10 + 5;
    options.column = "c" + std::to_string(i);
    ASSERT_TRUE(engine
                    .RegisterBase("w" + std::to_string(i),
                                  *MakeIntSeries(options))
                    .ok());
  }
  QueryBuilder builder = SeqRef("w0");
  for (int i = 1; i < kItems; ++i) {
    builder = builder.ComposeWith(SeqRef("w" + std::to_string(i)));
  }
  Optimizer optimizer(engine.catalog());
  Query query;
  query.graph = builder.Build();
  auto plan = optimizer.Optimize(query);
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Greedy: exactly N-1 pairwise joins considered, not N·2^{N-1}.
  EXPECT_EQ(optimizer.planner_stats().plans_considered, kItems - 1);
  EXPECT_EQ(optimizer.planner_stats().largest_block, kItems);

  Executor executor(engine.catalog());
  auto result = executor.Execute(*plan);
  ASSERT_TRUE(result.ok()) << result.status();
  // Density 1 everywhere: every position joins across all items.
  EXPECT_EQ(result->records.size(), 200u);
  EXPECT_EQ(result->schema->num_fields(), static_cast<size_t>(kItems));
  // Field order restored to the original compose order.
  EXPECT_EQ(result->schema->field(0).name, "c0");
  EXPECT_EQ(result->schema->field(kItems - 1).name,
            "c" + std::to_string(kItems - 1));
  // Values land in the right columns.
  const Record& first = result->records[0].rec;
  for (int i = 0; i < kItems; ++i) {
    EXPECT_GE(first[static_cast<size_t>(i)].int64(), i * 10);
    EXPECT_LE(first[static_cast<size_t>(i)].int64(), i * 10 + 5);
  }
}

}  // namespace
}  // namespace seq

namespace seq {
namespace {

TEST(JoinOrderQualityTest, DpNeverWorseThanGreedy) {
  // Densities spread over two orders of magnitude; the query lists the
  // densest input first (adversarial for left-deep greedy order).
  for (int n : {3, 4, 5, 6}) {
    auto build_engine = [&](int max_dp) {
      OptimizerOptions options;
      options.cost_params.max_dp_items = max_dp;
      Engine engine(options);
      for (int i = 0; i < n; ++i) {
        IntSeriesOptions o;
        o.span = Span::Of(1, 5000);
        o.density = std::max(1.0 / (1 << i), 0.002);
        o.seed = 900 + static_cast<uint64_t>(i);
        o.column = "c" + std::to_string(i);
        EXPECT_TRUE(engine
                        .RegisterBase("s" + std::to_string(i),
                                      *MakeIntSeries(o))
                        .ok());
      }
      return engine;
    };
    QueryBuilder builder = SeqRef("s0");
    for (int i = 1; i < n; ++i) {
      builder = builder.ComposeWith(SeqRef("s" + std::to_string(i)));
    }
    Query q;
    q.graph = builder.Build();

    Engine dp_engine = build_engine(16);
    Engine greedy_engine = build_engine(1);
    auto dp_plan = dp_engine.Plan(q);
    auto greedy_plan = greedy_engine.Plan(q);
    ASSERT_TRUE(dp_plan.ok());
    ASSERT_TRUE(greedy_plan.ok());
    EXPECT_LE(dp_plan->est_cost, greedy_plan->est_cost * 1.0001)
        << "n=" << n;

    // Both plans return identical answers.
    Executor dp_exec(dp_engine.catalog());
    Executor greedy_exec(greedy_engine.catalog());
    auto a = dp_exec.Execute(*dp_plan);
    auto b = greedy_exec.Execute(*greedy_plan);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->records.size(), b->records.size()) << "n=" << n;
    for (size_t i = 0; i < a->records.size(); ++i) {
      EXPECT_EQ(a->records[i].pos, b->records[i].pos);
      EXPECT_EQ(a->records[i].rec, b->records[i].rec);
    }
  }
}

}  // namespace
}  // namespace seq
