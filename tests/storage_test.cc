// Unit tests for the storage module: the paged base-sequence store, both
// access paths, access accounting, and column statistics.

#include <gtest/gtest.h>

#include "storage/base_sequence.h"

namespace seq {
namespace {

SchemaPtr OneCol() {
  return Schema::Make({Field{"v", TypeId::kInt64}});
}

Record Row(int64_t v) { return Record{Value::Int64(v)}; }

TEST(BaseSequenceTest, AppendRequiresIncreasingPositions) {
  BaseSequenceStore store(OneCol(), 4);
  EXPECT_TRUE(store.Append(5, Row(1)).ok());
  EXPECT_TRUE(store.Append(7, Row(2)).ok());
  Status dup = store.Append(7, Row(3));
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(store.Append(6, Row(3)).ok());
}

TEST(BaseSequenceTest, AppendTypeChecks) {
  BaseSequenceStore store(OneCol(), 4);
  Status bad = store.Append(1, Record{Value::Double(1.0)});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kTypeError);
}

TEST(BaseSequenceTest, SpanDefaultsToRecordHull) {
  BaseSequenceStore store(OneCol(), 4);
  EXPECT_TRUE(store.span().IsEmpty());
  ASSERT_TRUE(store.Append(10, Row(1)).ok());
  ASSERT_TRUE(store.Append(30, Row(2)).ok());
  EXPECT_EQ(store.span(), Span::Of(10, 30));
}

TEST(BaseSequenceTest, DeclaredSpanWidensAndValidates) {
  BaseSequenceStore store(OneCol(), 4);
  ASSERT_TRUE(store.Append(10, Row(1)).ok());
  EXPECT_TRUE(store.DeclareSpan(Span::Of(1, 100)).ok());
  EXPECT_EQ(store.span(), Span::Of(1, 100));
  // A span not covering stored records is rejected.
  EXPECT_FALSE(store.DeclareSpan(Span::Of(50, 100)).ok());
  // Appends outside a declared span are rejected.
  EXPECT_FALSE(store.Append(200, Row(2)).ok());
}

TEST(BaseSequenceTest, DensityIsRecordsOverSpan) {
  BaseSequenceStore store(OneCol(), 4);
  ASSERT_TRUE(store.DeclareSpan(Span::Of(1, 10)).ok());
  for (Position p : {1, 4, 7, 10}) ASSERT_TRUE(store.Append(p, Row(p)).ok());
  EXPECT_DOUBLE_EQ(store.density(), 0.4);
}

TEST(BaseSequenceTest, PageCount) {
  BaseSequenceStore store(OneCol(), 4);
  for (Position p = 0; p < 10; ++p) ASSERT_TRUE(store.Append(p, Row(p)).ok());
  EXPECT_EQ(store.num_pages(), 3);  // ceil(10 / 4)
}

TEST(BaseSequenceTest, StreamDeliversRangeInOrder) {
  BaseSequenceStore store(OneCol(), 4);
  for (Position p : {1, 3, 5, 7, 9}) ASSERT_TRUE(store.Append(p, Row(p)).ok());
  AccessStats stats;
  auto cursor = store.OpenStream(Span::Of(3, 7), &stats);
  std::vector<Position> seen;
  while (auto r = cursor.Next()) seen.push_back(r->pos);
  EXPECT_EQ(seen, (std::vector<Position>{3, 5, 7}));
  EXPECT_EQ(stats.stream_records, 3);
}

TEST(BaseSequenceTest, StreamChargesPerPageEntered) {
  AccessCosts costs;
  costs.page_cost = 10.0;
  BaseSequenceStore store(OneCol(), 4, costs);
  for (Position p = 0; p < 12; ++p) ASSERT_TRUE(store.Append(p, Row(p)).ok());
  AccessStats stats;
  auto cursor = store.OpenStream(store.span(), &stats);
  while (cursor.Next()) {
  }
  EXPECT_EQ(stats.stream_pages, 3);
  EXPECT_DOUBLE_EQ(stats.simulated_cost, 30.0);
}

TEST(BaseSequenceTest, StreamPeekDoesNotCharge) {
  BaseSequenceStore store(OneCol(), 4);
  ASSERT_TRUE(store.Append(2, Row(2)).ok());
  AccessStats stats;
  auto cursor = store.OpenStream(store.span(), &stats);
  EXPECT_EQ(*cursor.PeekPosition(), 2);
  EXPECT_EQ(stats.stream_records, 0);
  cursor.Next();
  EXPECT_FALSE(cursor.PeekPosition().has_value());
}

TEST(BaseSequenceTest, ProbeFindsExactPositionOnly) {
  AccessCosts costs;
  costs.probe_cost = 12.0;
  BaseSequenceStore store(OneCol(), 4, costs);
  for (Position p : {2, 4, 6}) ASSERT_TRUE(store.Append(p, Row(p * 10)).ok());
  AccessStats stats;
  auto hit = store.Probe(4, &stats);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ((*hit)[0].int64(), 40);
  EXPECT_FALSE(store.Probe(5, &stats).has_value());
  EXPECT_FALSE(store.Probe(100, &stats).has_value());  // outside span
  EXPECT_EQ(stats.probes, 3);
  EXPECT_DOUBLE_EQ(stats.simulated_cost, 36.0);
}

TEST(BaseSequenceTest, EmptyRangeStream) {
  BaseSequenceStore store(OneCol(), 4);
  ASSERT_TRUE(store.Append(5, Row(5)).ok());
  AccessStats stats;
  auto cursor = store.OpenStream(Span::Of(10, 20), &stats);
  EXPECT_FALSE(cursor.Next().has_value());
  EXPECT_EQ(stats.stream_records, 0);
}

TEST(BaseSequenceTest, FromRecordsBuildsStore) {
  std::vector<PosRecord> records{{1, Row(10)}, {5, Row(50)}};
  auto store = BaseSequenceStore::FromRecords(OneCol(), std::move(records));
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->num_records(), 2);
  EXPECT_EQ((*store)->span(), Span::Of(1, 5));
}

TEST(ColumnStatsTest, NumericMinMaxDistinct) {
  BaseSequenceStore store(OneCol(), 4);
  for (Position p = 0; p < 6; ++p) {
    ASSERT_TRUE(store.Append(p, Row(p % 3)).ok());  // values 0,1,2 repeated
  }
  const std::vector<ColumnStats>& stats = store.column_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].count, 6);
  EXPECT_DOUBLE_EQ(*stats[0].min, 0.0);
  EXPECT_DOUBLE_EQ(*stats[0].max, 2.0);
  EXPECT_EQ(stats[0].distinct, 3);
}

TEST(ColumnStatsTest, RefreshAfterAppend) {
  BaseSequenceStore store(OneCol(), 4);
  ASSERT_TRUE(store.Append(0, Row(1)).ok());
  EXPECT_EQ(store.column_stats()[0].count, 1);
  ASSERT_TRUE(store.Append(1, Row(9)).ok());
  EXPECT_EQ(store.column_stats()[0].count, 2);
  EXPECT_DOUBLE_EQ(*store.column_stats()[0].max, 9.0);
}

TEST(ColumnStatsTest, StringColumnsHaveNoRange) {
  SchemaPtr schema = Schema::Make({Field{"s", TypeId::kString}});
  BaseSequenceStore store(schema, 4);
  ASSERT_TRUE(store.Append(0, Record{Value::String("a")}).ok());
  const ColumnStats& cs = store.column_stats()[0];
  EXPECT_FALSE(cs.min.has_value());
  EXPECT_EQ(cs.distinct, 1);
}

TEST(AccessStatsTest, AccumulateAndReset) {
  AccessStats a;
  a.probes = 2;
  a.simulated_cost = 5.0;
  AccessStats b;
  b.probes = 3;
  b.cache_hits = 1;
  a += b;
  EXPECT_EQ(a.probes, 5);
  EXPECT_EQ(a.cache_hits, 1);
  EXPECT_DOUBLE_EQ(a.simulated_cost, 5.0);
  a.Reset();
  EXPECT_EQ(a.probes, 0);
}

}  // namespace
}  // namespace seq

namespace seq {
namespace {

TEST(HistogramTest, SkewedDataBeatsLinearInterpolation) {
  // 90% of values at the bottom of the range, a few outliers at the top:
  // linear interpolation would say P(v < 100) ~ 100/1000 = 0.1; the
  // histogram knows it is ~0.9.
  BaseSequenceStore store(OneCol(), 64);
  Position p = 0;
  for (int i = 0; i < 900; ++i) {
    ASSERT_TRUE(store.Append(p++, Row(i % 100)).ok());
  }
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store.Append(p++, Row(900 + i)).ok());
  }
  const ColumnStats& cs = store.column_stats()[0];
  ASSERT_FALSE(cs.bucket_counts.empty());
  EXPECT_NEAR(cs.FractionBelow(100.0), 0.9, 0.06);
  EXPECT_NEAR(cs.FractionBelow(900.0), 0.9, 0.02);
  EXPECT_NEAR(cs.FractionBelow(1500.0), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(cs.FractionBelow(-5.0), 0.0);
}

TEST(HistogramTest, UniformDataMatchesInterpolation) {
  BaseSequenceStore store(OneCol(), 64);
  for (Position p = 0; p < 1000; ++p) {
    ASSERT_TRUE(store.Append(p, Row(p)).ok());
  }
  const ColumnStats& cs = store.column_stats()[0];
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    EXPECT_NEAR(cs.FractionBelow(q * 999.0), q, 0.05);
  }
}

TEST(HistogramTest, ConstantColumnHasNoHistogram) {
  BaseSequenceStore store(OneCol(), 64);
  for (Position p = 0; p < 10; ++p) {
    ASSERT_TRUE(store.Append(p, Row(7)).ok());
  }
  const ColumnStats& cs = store.column_stats()[0];
  EXPECT_TRUE(cs.bucket_counts.empty());  // max == min: no range
  EXPECT_DOUBLE_EQ(cs.FractionBelow(8.0), 1.0);
  EXPECT_DOUBLE_EQ(cs.FractionBelow(7.0), 0.0);
}

}  // namespace
}  // namespace seq
