// Tests for profiled execution and EXPLAIN ANALYZE: a profiled Run must agree
// with the plain Run path, drift must be zero when the catalog statistics
// are exact, and the rendered report must show estimated vs actual numbers
// for every operator plus the optimizer's decision trace.

#include <gtest/gtest.h>

#include <string>

#include "core/engine.h"
#include "obs/trace.h"
#include "workload/generators.h"

namespace seq {
namespace {

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    IntSeriesOptions options;
    options.span = Span::Of(0, 199);
    options.density = 0.8;
    options.seed = 3;
    ASSERT_TRUE(engine_.RegisterBase("s", *MakeIntSeries(options)).ok());
  }

  static Query RangeQuery(LogicalOpPtr graph) {
    Query q;
    q.graph = std::move(graph);
    q.range = Span::Of(0, 199);
    return q;
  }

  /// Profiled run through the RunOptions API; the profile lands in
  /// QueryResult::profile.
  Result<QueryResult> RunProfiled(const Query& query,
                                  AccessStats* stats = nullptr) {
    RunOptions opts;
    opts.profile = true;
    opts.stats = stats;
    return engine_.Run(query, opts);
  }

  Engine engine_;
};

// --- RunProfiled vs Run ------------------------------------------------------

TEST_F(ExplainAnalyzeTest, ProfiledRunMatchesPlainRun) {
  auto graph = SeqRef("s")
                   .Select(Gt(Col("value"), Lit(int64_t{300})))
                   .Agg(AggFunc::kAvg, "value", 3)
                   .Build();

  AccessStats plain_stats;
  auto plain = engine_.Run(RangeQuery(graph->Clone()), &plain_stats);
  ASSERT_TRUE(plain.ok()) << plain.status();

  AccessStats profiled_stats;
  auto profiled = RunProfiled(RangeQuery(graph->Clone()), &profiled_stats);
  ASSERT_TRUE(profiled.ok()) << profiled.status();

  // Same answer...
  ASSERT_EQ(profiled->records.size(), plain->records.size());
  // ...and the same simulated work: instrumentation must not change what
  // the operators do, only measure it.
  EXPECT_EQ(profiled_stats.stream_records, plain_stats.stream_records);
  EXPECT_EQ(profiled_stats.probes, plain_stats.probes);
  EXPECT_EQ(profiled_stats.cache_hits, plain_stats.cache_hits);
  EXPECT_EQ(profiled_stats.agg_steps, plain_stats.agg_steps);
  EXPECT_DOUBLE_EQ(profiled_stats.simulated_cost, plain_stats.simulated_cost);
  // The out-param and the profile's embedded stats agree.
  ASSERT_TRUE(profiled->profile.has_value());
  EXPECT_DOUBLE_EQ(profiled->profile->stats.simulated_cost,
                   plain_stats.simulated_cost);
}

TEST_F(ExplainAnalyzeTest, ProfileTreeCountsRowsPerOperator) {
  auto profiled = RunProfiled(
      RangeQuery(SeqRef("s")
                     .Select(Gt(Col("value"), Lit(int64_t{300})))
                     .Build()));
  ASSERT_TRUE(profiled.ok()) << profiled.status();
  ASSERT_TRUE(profiled->profile.has_value());
  const QueryProfile& profile = *profiled->profile;
  ASSERT_NE(profile.root, nullptr);

  // Root rows == result rows; wall time was measured.
  EXPECT_EQ(profile.root->rows_out,
            static_cast<int64_t>(profiled->records.size()));
  EXPECT_GT(profile.total_wall_ns, 0);
  EXPECT_GE(profile.root->wall_ns, 0);

  // The tree has the plan's operators under the synthetic root, and the
  // leaf scan emits at least as many rows as survive the select.
  ASSERT_EQ(profile.root->children.size(), 1u);
  int64_t leaf_rows = 0;
  profile.root->Visit([&](const OperatorProfile& op, int) {
    if (op.label.find("BaseRef") != std::string::npos) {
      leaf_rows = op.rows_out;
    }
  });
  EXPECT_GE(leaf_rows, profile.root->rows_out);
  EXPECT_GT(leaf_rows, 0);
}

// --- drift on exact statistics ----------------------------------------------

TEST_F(ExplainAnalyzeTest, BareScanHasNoDrift) {
  // A bare base-sequence scan: the catalog's record count is exact, so the
  // estimated and actual row counts must agree at every node.
  auto profiled = RunProfiled(RangeQuery(SeqRef("s").Build()));
  ASSERT_TRUE(profiled.ok()) << profiled.status();
  ASSERT_TRUE(profiled->profile.has_value());
  const QueryProfile& profile = *profiled->profile;
  EXPECT_NEAR(profile.MaxQError(), 1.0, 1e-9);
  EXPECT_NEAR(profile.MeanQError(), 1.0, 1e-9);
  EXPECT_NEAR(profile.root->est_rows,
              static_cast<double>(profile.root->rows_out), 1e-6);
}

// --- EXPLAIN ANALYZE rendering ----------------------------------------------

TEST_F(ExplainAnalyzeTest, ReportShowsEstimatedVersusActualPerOperator) {
  // The representative shape from the issue: select + offset + compose.
  auto graph = SeqRef("s")
                   .Select(Gt(Col("value"), Lit(int64_t{200})))
                   .ComposeWith(SeqRef("s").Offset(1),
                                Gt(Col("value", 0), Col("value", 1)))
                   .Build();
  auto text = engine_.ExplainAnalyze(RangeQuery(std::move(graph)));
  ASSERT_TRUE(text.ok()) << text.status();

  // All four report sections are present.
  EXPECT_NE(text->find("=== plan (estimated vs actual) ==="),
            std::string::npos);
  EXPECT_NE(text->find("=== optimizer trace ==="), std::string::npos);
  EXPECT_NE(text->find("=== cost-model drift ==="), std::string::npos);
  EXPECT_NE(text->find("=== totals ==="), std::string::npos);

  // Every operator of the plan shows up with est-vs-actual annotations.
  for (const char* token :
       {"Compose", "Select", "PositionalOffset", "BaseRef", "est_rows=",
        "act_rows=", "est_cost=", "act_cost=", "q_err=", "wall="}) {
    EXPECT_NE(text->find(token), std::string::npos) << token;
  }

  // The drift summary and the optimizer's decisions are rendered.
  EXPECT_NE(text->find("per-node row q-error: max="), std::string::npos);
  EXPECT_NE(text->find("root cost drift: est="), std::string::npos);
  EXPECT_NE(text->find("optimize time:"), std::string::npos);
  EXPECT_NE(text->find("[choice] root:"), std::string::npos);
  EXPECT_NE(text->find("access: stream_records="), std::string::npos);
}

TEST_F(ExplainAnalyzeTest, TraceRecordsRewriteDecisions) {
  // Select over offset with a pos()-free predicate: the pushdown applies
  // and must appear in the trace.
  auto pushed = RunProfiled(
      RangeQuery(SeqRef("s")
                     .Offset(2)
                     .Select(Gt(Col("value"), Lit(int64_t{100})))
                     .Build()));
  ASSERT_TRUE(pushed.ok()) << pushed.status();
  ASSERT_TRUE(pushed->profile.has_value());
  EXPECT_FALSE(pushed->profile->optimizer.Stage("rewrite").empty());
  EXPECT_FALSE(pushed->profile->optimizer.Stage("choice").empty());
  // The executor's driving decision (serial vs morsel-parallel) is traced.
  EXPECT_FALSE(pushed->profile->optimizer.Stage("execution").empty());
  EXPECT_GE(pushed->profile->optimizer.optimize_us, 0);

  // A predicate on pos() blocks the same pushdown; the rejection is traced
  // with its reason.
  auto rejected = RunProfiled(
      RangeQuery(SeqRef("s")
                     .Offset(2)
                     .Select(Gt(Expr::Position(), Lit(int64_t{5})))
                     .Build()));
  ASSERT_TRUE(rejected.ok()) << rejected.status();
  ASSERT_TRUE(rejected->profile.has_value());
  bool saw_reason = false;
  for (const OptTraceEntry* e :
       rejected->profile->optimizer.Stage("rewrite-rejected")) {
    if (e->detail.find("pos()") != std::string::npos) saw_reason = true;
  }
  EXPECT_TRUE(saw_reason);
}

// --- profiled flame-graph export --------------------------------------------

TEST_F(ExplainAnalyzeTest, ProfileExportsTraceEvents) {
  auto profiled = RunProfiled(
      RangeQuery(SeqRef("s")
                     .Select(Gt(Col("value"), Lit(int64_t{300})))
                     .Agg(AggFunc::kMax, "value", 4)
                     .Build()));
  ASSERT_TRUE(profiled.ok()) << profiled.status();
  ASSERT_TRUE(profiled->profile.has_value());

  TraceRecorder recorder;
  profiled->profile->EmitTraceEvents(&recorder);
  ASSERT_FALSE(recorder.empty());

  // One "execute" span on the executor lane, the optimize span on lane 0,
  // and a span per operator. Spans nest: every operator fits inside the
  // execute span.
  int64_t exec_start = -1;
  int64_t exec_end = -1;
  for (const TraceEvent& e : recorder.events()) {
    if (e.name == "execute") {
      exec_start = e.ts_us;
      exec_end = e.ts_us + e.dur_us;
    }
  }
  ASSERT_GE(exec_start, 0);  // the execute span exists
  int operators = 0;
  for (const TraceEvent& e : recorder.events()) {
    if (e.category == "operator") {
      ++operators;
      EXPECT_GE(e.ts_us, exec_start) << e.name;
      EXPECT_LE(e.ts_us + e.dur_us, exec_end) << e.name;
    }
  }
  EXPECT_GE(operators, 3);  // synthetic root + agg + select at minimum
}

}  // namespace
}  // namespace seq
