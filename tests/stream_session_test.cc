// Tests for the §5.3 incremental ("trigger") evaluation extension.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "exec/stream_session.h"

namespace seq {
namespace {

class StreamSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SchemaPtr schema = Schema::Make({Field{"v", TypeId::kDouble}});
    auto store = std::make_shared<BaseSequenceStore>(schema, 4);
    ASSERT_TRUE(engine_.RegisterBase("live", store).ok());
  }

  Engine engine_;
};

TEST_F(StreamSessionTest, EmitsNewAnswersIncrementally) {
  auto graph = SeqRef("live").Select(Gt(Col("v"), Lit(10.0))).Build();
  StreamSession session(&engine_.catalog(), graph);

  // Nothing yet.
  auto empty = session.Poll();
  ASSERT_TRUE(empty.ok()) << empty.status();
  EXPECT_TRUE(empty->empty());

  ASSERT_TRUE(session.Append("live", 1, {Value::Double(5.0)}).ok());
  ASSERT_TRUE(session.Append("live", 2, {Value::Double(15.0)}).ok());
  auto first = session.Poll();
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_EQ(first->size(), 1u);
  EXPECT_EQ((*first)[0].pos, 2);

  // No duplicates on re-poll.
  auto again = session.Poll();
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->empty());

  ASSERT_TRUE(session.Append("live", 3, {Value::Double(20.0)}).ok());
  auto second = session.Poll();
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->size(), 1u);
  EXPECT_EQ((*second)[0].pos, 3);
}

TEST_F(StreamSessionTest, WindowAggregateAcrossPolls) {
  // Moving sum of 3: records arriving in separate polls must still see the
  // earlier window content (the bounded-lookback replay).
  auto graph = SeqRef("live").Agg(AggFunc::kSum, "v", 3).Build();
  StreamSession session(&engine_.catalog(), graph);
  EXPECT_EQ(session.lookback(), 2);

  ASSERT_TRUE(session.Append("live", 1, {Value::Double(1.0)}).ok());
  ASSERT_TRUE(session.Append("live", 2, {Value::Double(2.0)}).ok());
  auto first = session.Poll();
  ASSERT_TRUE(first.ok());
  // Positions 1 and 2 are complete (frontier = 2).
  ASSERT_EQ(first->size(), 2u);
  EXPECT_DOUBLE_EQ((*first)[1].rec[0].dbl(), 3.0);

  ASSERT_TRUE(session.Append("live", 3, {Value::Double(4.0)}).ok());
  auto second = session.Poll();
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->size(), 1u);
  EXPECT_EQ((*second)[0].pos, 3);
  // Window {1,2,3}: sum 7 — proof the replay saw the old records.
  EXPECT_DOUBLE_EQ((*second)[0].rec[0].dbl(), 7.0);
}

TEST_F(StreamSessionTest, TwoInputFrontier) {
  SchemaPtr schema = Schema::Make({Field{"w", TypeId::kDouble}});
  auto store = std::make_shared<BaseSequenceStore>(schema, 4);
  ASSERT_TRUE(engine_.RegisterBase("other", store).ok());
  auto graph = SeqRef("live").ComposeWith(SeqRef("other")).Build();
  StreamSession session(&engine_.catalog(), graph);

  ASSERT_TRUE(session.Append("live", 5, {Value::Double(1.0)}).ok());
  ASSERT_TRUE(session.Append("live", 9, {Value::Double(2.0)}).ok());
  ASSERT_TRUE(session.Append("other", 5, {Value::Double(3.0)}).ok());
  auto first = session.Poll();
  ASSERT_TRUE(first.ok()) << first.status();
  // Frontier is min(9, 5) = 5: only position 5 is complete.
  ASSERT_EQ(first->size(), 1u);
  EXPECT_EQ((*first)[0].pos, 5);

  // `other` catches up past 9; the join at 9 appears iff other has one.
  ASSERT_TRUE(session.Append("other", 9, {Value::Double(4.0)}).ok());
  auto second = session.Poll();
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->size(), 1u);
  EXPECT_EQ((*second)[0].pos, 9);
  EXPECT_DOUBLE_EQ((*second)[0].rec[1].dbl(), 4.0);
}

TEST_F(StreamSessionTest, MostRecentEventTrigger) {
  // The paper's trigger shape: alert when an arriving reading exceeds the
  // most recent alarm threshold.
  SchemaPtr schema = Schema::Make({Field{"threshold", TypeId::kDouble}});
  auto store = std::make_shared<BaseSequenceStore>(schema, 4);
  ASSERT_TRUE(engine_.RegisterBase("alarms", store).ok());
  auto graph = SeqRef("live")
                   .ComposeWith(SeqRef("alarms").Prev(),
                                Gt(Col("v", 0), Col("threshold", 1)))
                   .Build();
  StreamSession session(&engine_.catalog(), graph);

  // The frontier is a watermark: an output position is emitted once every
  // input has advanced past it, so each alert appears one poll after the
  // slower input catches up.
  ASSERT_TRUE(session.Append("alarms", 1, {Value::Double(10.0)}).ok());
  ASSERT_TRUE(session.Append("live", 2, {Value::Double(11.0)}).ok());
  auto r1 = session.Poll();
  ASSERT_TRUE(r1.ok()) << r1.status();
  EXPECT_TRUE(r1->empty());  // alarms only complete through position 1

  ASSERT_TRUE(session.Append("alarms", 3, {Value::Double(20.0)}).ok());
  ASSERT_TRUE(session.Append("live", 4, {Value::Double(15.0)}).ok());
  auto r2 = session.Poll();
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r2->size(), 1u);  // position 2: 11 > 10 fires
  EXPECT_EQ((*r2)[0].pos, 2);

  ASSERT_TRUE(session.Append("alarms", 5, {Value::Double(1.0)}).ok());
  ASSERT_TRUE(session.Append("live", 6, {Value::Double(2.0)}).ok());
  auto r3 = session.Poll();
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(r3->empty());  // position 4: 15 < 20 — threshold had moved

  ASSERT_TRUE(session.Append("alarms", 7, {Value::Double(50.0)}).ok());
  ASSERT_TRUE(session.Append("live", 8, {Value::Double(60.0)}).ok());
  auto r4 = session.Poll();
  ASSERT_TRUE(r4.ok());
  ASSERT_EQ(r4->size(), 1u);  // position 6: 2 > 1 fires
  EXPECT_EQ((*r4)[0].pos, 6);
}

TEST_F(StreamSessionTest, RejectsBadAppends) {
  auto graph = SeqRef("live").Build();
  StreamSession session(&engine_.catalog(), graph);
  EXPECT_FALSE(session.Append("ghost", 1, {Value::Double(1.0)}).ok());
  ASSERT_TRUE(session.Append("live", 5, {Value::Double(1.0)}).ok());
  EXPECT_FALSE(session.Append("live", 4, {Value::Double(1.0)}).ok());
}

}  // namespace
}  // namespace seq
