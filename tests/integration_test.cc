// End-to-end tests: build catalogs, run queries through the optimizer and
// executor, and check results against hand-computed reference evaluation.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/engine.h"
#include "workload/generators.h"

namespace seq {
namespace {

// A tiny hand-made price sequence for exact-value assertions.
//   pos:   1    2    3    5    8    9
//   close: 10   20   30   40   50   60
BaseSequencePtr MakePrices() {
  SchemaPtr schema = Schema::Make({Field{"close", TypeId::kDouble}});
  auto store = std::make_shared<BaseSequenceStore>(schema, 4);
  const std::pair<Position, double> data[] = {{1, 10}, {2, 20}, {3, 30},
                                              {5, 40}, {8, 50}, {9, 60}};
  for (auto [pos, v] : data) {
    EXPECT_TRUE(store->Append(pos, Record{Value::Double(v)}).ok());
  }
  return store;
}

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(engine_.RegisterBase("prices", MakePrices()).ok());
  }
  Engine engine_;
};

TEST_F(IntegrationTest, ScanWholeSequence) {
  auto result = engine_.Run(SeqRef("prices").Build());
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->records.size(), 6u);
  EXPECT_EQ(result->records.front().pos, 1);
  EXPECT_EQ(result->records.back().pos, 9);
  EXPECT_DOUBLE_EQ(result->records.back().rec[0].dbl(), 60.0);
}

TEST_F(IntegrationTest, RangeRestrictsOutput) {
  auto result = engine_.Run(SeqRef("prices").Build(), Span::Of(2, 5));
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->records.size(), 3u);
  EXPECT_EQ(result->records[0].pos, 2);
  EXPECT_EQ(result->records[2].pos, 5);
}

TEST_F(IntegrationTest, SelectFiltersRecords) {
  auto q = SeqRef("prices").Select(Gt(Col("close"), Lit(25.0))).Build();
  auto result = engine_.Run(q);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->records.size(), 4u);
  EXPECT_EQ(result->records[0].pos, 3);
}

TEST_F(IntegrationTest, SelectOnPosition) {
  auto q =
      SeqRef("prices").Select(Ge(Expr::Position(), Lit(int64_t{5}))).Build();
  auto result = engine_.Run(q);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->records.size(), 3u);  // positions 5, 8, 9
}

TEST_F(IntegrationTest, ProjectComputesNarrowSchema) {
  auto q = SeqRef("prices").Project({"close"}, {"c"}).Build();
  auto result = engine_.Run(q);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->schema->field(0).name, "c");
  EXPECT_EQ(result->records.size(), 6u);
}

TEST_F(IntegrationTest, PositionalOffsetShifts) {
  // out(i) = in(i + 2): record at input pos 3 surfaces at output pos 1.
  auto q = SeqRef("prices").Offset(2).Build();
  auto result = engine_.Run(q);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->records.size(), 6u);
  EXPECT_EQ(result->records[0].pos, -1);
  EXPECT_DOUBLE_EQ(result->records[0].rec[0].dbl(), 10.0);
  EXPECT_EQ(result->records[2].pos, 1);
  EXPECT_DOUBLE_EQ(result->records[2].rec[0].dbl(), 30.0);
}

TEST_F(IntegrationTest, PreviousIsDense) {
  // Previous: at every position after the first record, the most recent
  // earlier record.
  auto q = SeqRef("prices").Prev().Build();
  auto result = engine_.Run(q, Span::Of(1, 9));
  ASSERT_TRUE(result.ok()) << result.status();
  // Defined at positions 2..9 (nothing precedes position 1).
  ASSERT_EQ(result->records.size(), 8u);
  std::map<Position, double> got;
  for (const PosRecord& pr : result->records) {
    got[pr.pos] = pr.rec[0].dbl();
  }
  EXPECT_DOUBLE_EQ(got[2], 10.0);
  EXPECT_DOUBLE_EQ(got[3], 20.0);
  EXPECT_DOUBLE_EQ(got[4], 30.0);  // gap position: still sees pos 3
  EXPECT_DOUBLE_EQ(got[5], 30.0);
  EXPECT_DOUBLE_EQ(got[6], 40.0);
  EXPECT_DOUBLE_EQ(got[9], 50.0);
}

TEST_F(IntegrationTest, NextLooksAhead) {
  auto q = SeqRef("prices").Next().Build();
  auto result = engine_.Run(q, Span::Of(1, 9));
  ASSERT_TRUE(result.ok()) << result.status();
  std::map<Position, double> got;
  for (const PosRecord& pr : result->records) got[pr.pos] = pr.rec[0].dbl();
  EXPECT_DOUBLE_EQ(got[1], 20.0);
  EXPECT_DOUBLE_EQ(got[3], 40.0);
  EXPECT_DOUBLE_EQ(got[4], 40.0);
  EXPECT_DOUBLE_EQ(got[8], 60.0);
  EXPECT_EQ(got.count(9), 0u);  // nothing after position 9
}

TEST_F(IntegrationTest, TrailingSumMatchesReference) {
  // 3-position moving sum; window = positions [i-2, i].
  auto q = SeqRef("prices").Agg(AggFunc::kSum, "close", 3).Build();
  auto result = engine_.Run(q, Span::Of(1, 11));
  ASSERT_TRUE(result.ok()) << result.status();
  std::map<Position, double> got;
  for (const PosRecord& pr : result->records) got[pr.pos] = pr.rec[0].dbl();
  EXPECT_DOUBLE_EQ(got[1], 10.0);
  EXPECT_DOUBLE_EQ(got[2], 30.0);
  EXPECT_DOUBLE_EQ(got[3], 60.0);
  EXPECT_DOUBLE_EQ(got[4], 50.0);   // positions 2,3
  EXPECT_DOUBLE_EQ(got[5], 70.0);   // positions 3,5
  EXPECT_DOUBLE_EQ(got[6], 40.0);   // position 5 only
  EXPECT_DOUBLE_EQ(got[7], 40.0);
  EXPECT_DOUBLE_EQ(got[8], 50.0);
  EXPECT_DOUBLE_EQ(got[9], 110.0);  // 50 + 60
  EXPECT_DOUBLE_EQ(got[10], 110.0);
  EXPECT_DOUBLE_EQ(got[11], 60.0);
  EXPECT_EQ(result->schema->field(0).name, "sum_close");
}

TEST_F(IntegrationTest, RunningAndOverallAggregates) {
  auto running = engine_.Run(
      SeqRef("prices").RunningAgg(AggFunc::kMax, "close").Build(),
      Span::Of(1, 9));
  ASSERT_TRUE(running.ok()) << running.status();
  std::map<Position, double> got;
  for (const PosRecord& pr : running->records) got[pr.pos] = pr.rec[0].dbl();
  EXPECT_DOUBLE_EQ(got[1], 10.0);
  EXPECT_DOUBLE_EQ(got[4], 30.0);
  EXPECT_DOUBLE_EQ(got[9], 60.0);

  auto overall = engine_.Run(
      SeqRef("prices").OverallAgg(AggFunc::kAvg, "close").Build());
  ASSERT_TRUE(overall.ok()) << overall.status();
  ASSERT_FALSE(overall->records.empty());
  for (const PosRecord& pr : overall->records) {
    EXPECT_DOUBLE_EQ(pr.rec[0].dbl(), 35.0);  // mean of 10..60
  }
  EXPECT_EQ(overall->records.size(), 9u);  // every position of span [1,9]
}

TEST_F(IntegrationTest, ComposeJoinsAtCommonPositions) {
  // Second sequence at positions 2,3,4,8.
  SchemaPtr schema = Schema::Make({Field{"flag", TypeId::kInt64}});
  auto store = std::make_shared<BaseSequenceStore>(schema, 4);
  for (Position p : {2, 3, 4, 8}) {
    ASSERT_TRUE(store->Append(p, Record{Value::Int64(p * 100)}).ok());
  }
  ASSERT_TRUE(engine_.RegisterBase("flags", store).ok());

  auto q = SeqRef("prices").ComposeWith(SeqRef("flags")).Build();
  auto result = engine_.Run(q);
  ASSERT_TRUE(result.ok()) << result.status();
  // Common non-null positions: 2, 3, 8.
  ASSERT_EQ(result->records.size(), 3u);
  EXPECT_EQ(result->records[0].pos, 2);
  EXPECT_EQ(result->records[0].rec.size(), 2u);
  EXPECT_DOUBLE_EQ(result->records[0].rec[0].dbl(), 20.0);
  EXPECT_EQ(result->records[0].rec[1].int64(), 200);
  EXPECT_EQ(result->records[2].pos, 8);
}

TEST_F(IntegrationTest, ComposeWithJoinPredicate) {
  SchemaPtr schema = Schema::Make({Field{"limit", TypeId::kDouble}});
  auto store = std::make_shared<BaseSequenceStore>(schema, 4);
  for (Position p : {1, 2, 3, 5, 8, 9}) {
    ASSERT_TRUE(store->Append(p, Record{Value::Double(35.0)}).ok());
  }
  ASSERT_TRUE(engine_.RegisterBase("limits", store).ok());

  auto q = SeqRef("prices")
               .ComposeWith(SeqRef("limits"),
                            Gt(Col("close", 0), Col("limit", 1)))
               .Build();
  auto result = engine_.Run(q);
  ASSERT_TRUE(result.ok()) << result.status();
  // close > 35 at positions 5, 8, 9.
  ASSERT_EQ(result->records.size(), 3u);
  EXPECT_EQ(result->records[0].pos, 5);
}

TEST_F(IntegrationTest, ComposeWithConstantSequence) {
  SchemaPtr cschema = Schema::Make({Field{"threshold", TypeId::kDouble}});
  ASSERT_TRUE(engine_
                  .RegisterConstant("threshold", cschema,
                                    Record{Value::Double(25.0)})
                  .ok());
  auto q = SeqRef("prices")
               .ComposeWith(ConstRef("threshold"),
                            Gt(Col("close", 0), Col("threshold", 1)))
               .Build();
  auto result = engine_.Run(q);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->records.size(), 4u);  // 30, 40, 50, 60
  EXPECT_EQ(result->records[0].pos, 3);
  EXPECT_DOUBLE_EQ(result->records[0].rec[1].dbl(), 25.0);
}

TEST_F(IntegrationTest, PointQueriesReturnExactPositions) {
  auto result =
      engine_.RunAt(SeqRef("prices").Build(), {2, 4, 8});
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->records.size(), 2u);  // position 4 is empty
  EXPECT_EQ(result->records[0].pos, 2);
  EXPECT_EQ(result->records[1].pos, 8);
}

TEST_F(IntegrationTest, CollapseAggregatesBuckets) {
  // Buckets of 4: [0,3] -> 10+20+30, [4,7] -> 40, [8,11] -> 50+60.
  auto q = SeqRef("prices").Collapse(4, AggFunc::kSum, "close").Build();
  auto result = engine_.Run(q);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->records.size(), 3u);
  EXPECT_EQ(result->records[0].pos, 0);
  EXPECT_DOUBLE_EQ(result->records[0].rec[0].dbl(), 60.0);
  EXPECT_EQ(result->records[1].pos, 1);
  EXPECT_DOUBLE_EQ(result->records[1].rec[0].dbl(), 40.0);
  EXPECT_EQ(result->records[2].pos, 2);
  EXPECT_DOUBLE_EQ(result->records[2].rec[0].dbl(), 110.0);
}

// --- The paper's motivating example (Example 1.1 / Fig. 1) -----------------

TEST(MotivatingExample, VolcanoEarthquakeQuery) {
  Engine engine;
  // Hand-built miniature: quakes at 10 (6.0), 20 (8.0), 30 (7.5);
  // volcanos at 15, 25, 35.
  SchemaPtr qschema = Schema::Make({Field{"strength", TypeId::kDouble}});
  auto quakes = std::make_shared<BaseSequenceStore>(qschema, 4);
  ASSERT_TRUE(quakes->Append(10, Record{Value::Double(6.0)}).ok());
  ASSERT_TRUE(quakes->Append(20, Record{Value::Double(8.0)}).ok());
  ASSERT_TRUE(quakes->Append(30, Record{Value::Double(7.5)}).ok());
  SchemaPtr vschema = Schema::Make({Field{"name", TypeId::kString}});
  auto volcanos = std::make_shared<BaseSequenceStore>(vschema, 4);
  ASSERT_TRUE(volcanos->Append(15, Record{Value::String("etna")}).ok());
  ASSERT_TRUE(volcanos->Append(25, Record{Value::String("fuji")}).ok());
  ASSERT_TRUE(volcanos->Append(35, Record{Value::String("hekla")}).ok());
  ASSERT_TRUE(engine.RegisterBase("quakes", quakes).ok());
  ASSERT_TRUE(engine.RegisterBase("volcanos", volcanos).ok());

  // "For which volcano eruptions was the strength of the most recent
  // earthquake greater than 7.0?" — compose volcanos with Previous(quakes),
  // then select.
  auto q = SeqRef("volcanos")
               .ComposeWith(SeqRef("quakes").Prev())
               .Select(Gt(Col("strength"), Lit(7.0)))
               .Project({"name"})
               .Build();
  auto result = engine.Run(q, Span::Of(1, 40));
  ASSERT_TRUE(result.ok()) << result.status();
  // etna@15: most recent quake 6.0 — no. fuji@25: 8.0 — yes.
  // hekla@35: 7.5 — yes.
  ASSERT_EQ(result->records.size(), 2u);
  EXPECT_EQ(result->records[0].rec[0].str(), "fuji");
  EXPECT_EQ(result->records[1].rec[0].str(), "hekla");
}

TEST(MotivatingExample, StreamPlanDoesSingleScan) {
  Engine engine;
  EventSeriesOptions eq;
  eq.span = Span::Of(1, 20000);
  eq.density = 0.02;
  eq.seed = 3;
  auto quakes = MakeEarthquakes(eq);
  ASSERT_TRUE(quakes.ok());
  EventSeriesOptions vo;
  vo.span = Span::Of(1, 20000);
  vo.density = 0.005;
  vo.seed = 4;
  auto volcanos = MakeVolcanos(vo);
  ASSERT_TRUE(volcanos.ok());
  int64_t quake_count = (*quakes)->num_records();
  int64_t volcano_count = (*volcanos)->num_records();
  ASSERT_TRUE(engine.RegisterBase("quakes", *quakes).ok());
  ASSERT_TRUE(engine.RegisterBase("volcanos", *volcanos).ok());

  auto q = SeqRef("volcanos")
               .ComposeWith(SeqRef("quakes").Prev())
               .Select(Gt(Col("strength"), Lit(7.0)))
               .Build();
  AccessStats stats;
  auto result = engine.Run(q, Span::Of(1, 20000), &stats);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->records.size(), 0u);
  // Single scan: every base record is read at most once, with no probes.
  EXPECT_LE(stats.stream_records, quake_count + volcano_count);
  EXPECT_EQ(stats.probes, 0);
}

}  // namespace
}  // namespace seq

namespace seq {
namespace {

// Fig. 6 proper: the Position Sequence is itself a named sequence — the
// query is asked exactly at that sequence's record positions.
TEST(PositionSequenceTest, NamedPositionSequenceDrivesProbes) {
  Engine engine;
  SchemaPtr qschema = Schema::Make({Field{"strength", TypeId::kDouble}});
  auto quakes = std::make_shared<BaseSequenceStore>(qschema, 4);
  ASSERT_TRUE(quakes->Append(10, {Value::Double(6.0)}).ok());
  ASSERT_TRUE(quakes->Append(20, {Value::Double(8.0)}).ok());
  ASSERT_TRUE(quakes->Append(30, {Value::Double(7.5)}).ok());
  SchemaPtr vschema = Schema::Make({Field{"name", TypeId::kString}});
  auto volcanos = std::make_shared<BaseSequenceStore>(vschema, 4);
  ASSERT_TRUE(volcanos->Append(15, {Value::String("etna")}).ok());
  ASSERT_TRUE(volcanos->Append(25, {Value::String("fuji")}).ok());
  ASSERT_TRUE(volcanos->Append(35, {Value::String("hekla")}).ok());
  ASSERT_TRUE(engine.RegisterBase("quakes", quakes).ok());
  ASSERT_TRUE(engine.RegisterBase("volcanos", volcanos).ok());

  // Example 1.1 as the Fig. 6 template: ask the derived sequence "most
  // recent strong quake" exactly at the volcano eruption positions.
  Query q;
  q.graph = SeqRef("quakes")
                .Prev()
                .Select(Gt(Col("strength"), Lit(7.0)))
                .Build();
  q.position_sequence = "volcanos";
  auto result = engine.Run(q);
  ASSERT_TRUE(result.ok()) << result.status();
  // etna@15: prev quake 6.0 (filtered); fuji@25: 8.0; hekla@35: 7.5.
  ASSERT_EQ(result->records.size(), 2u);
  EXPECT_EQ(result->records[0].pos, 25);
  EXPECT_DOUBLE_EQ(result->records[0].rec[0].dbl(), 8.0);
  EXPECT_EQ(result->records[1].pos, 35);
}

TEST(PositionSequenceTest, RangeRestrictsThePositionSet) {
  Engine engine;
  SchemaPtr schema = Schema::Make({Field{"v", TypeId::kInt64}});
  auto data = std::make_shared<BaseSequenceStore>(schema, 4);
  auto marks = std::make_shared<BaseSequenceStore>(schema, 4);
  for (Position p = 0; p < 100; ++p) {
    ASSERT_TRUE(data->Append(p, {Value::Int64(p)}).ok());
  }
  for (Position p : {5, 40, 77}) {
    ASSERT_TRUE(marks->Append(p, {Value::Int64(0)}).ok());
  }
  ASSERT_TRUE(engine.RegisterBase("data", data).ok());
  ASSERT_TRUE(engine.RegisterBase("marks", marks).ok());

  Query q;
  q.graph = SeqRef("data").Build();
  q.position_sequence = "marks";
  q.range = Span::Of(0, 50);
  auto result = engine.Run(q);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->records.size(), 2u);  // 5 and 40; 77 outside range
  EXPECT_EQ(result->records[0].pos, 5);
  EXPECT_EQ(result->records[1].pos, 40);
}

TEST(PositionSequenceTest, EmptyAndErrorCases) {
  Engine engine;
  SchemaPtr schema = Schema::Make({Field{"v", TypeId::kInt64}});
  auto data = std::make_shared<BaseSequenceStore>(schema, 4);
  ASSERT_TRUE(data->Append(1, {Value::Int64(1)}).ok());
  auto empty = std::make_shared<BaseSequenceStore>(schema, 4);
  ASSERT_TRUE(engine.RegisterBase("data", data).ok());
  ASSERT_TRUE(engine.RegisterBase("empty", empty).ok());

  Query q;
  q.graph = SeqRef("data").Build();
  q.position_sequence = "empty";
  auto result = engine.Run(q);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->records.empty());

  q.position_sequence = "ghost";
  EXPECT_FALSE(engine.Run(q).ok());
}

}  // namespace
}  // namespace seq
