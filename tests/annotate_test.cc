// Tests for meta-information propagation (paper §4 Step 2): bottom-up
// span/density/schema annotation and top-down span pushdown (Fig. 3).

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "logical/builder.h"
#include "optimizer/annotate.h"
#include "workload/generators.h"

namespace seq {
namespace {

class AnnotateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Table 1 shapes: ibm [200,500] d=.95, dec [1,350] d=.7, hp [1,750] d=1.
    ASSERT_TRUE(RegisterTable1Stocks(&catalog_).ok());
  }

  LogicalOpPtr Annotate(const LogicalOpPtr& graph) {
    LogicalOpPtr clone = graph->Clone();
    Annotator annotator(catalog_, params_);
    EXPECT_TRUE(annotator.AnnotateBottomUp(clone.get()).ok());
    return clone;
  }

  LogicalOpPtr AnnotateAndPush(const LogicalOpPtr& graph, Span requested,
                               bool narrow = true) {
    LogicalOpPtr clone = Annotate(graph);
    Annotator annotator(catalog_, params_);
    annotator.PushRequiredSpans(clone.get(), requested, narrow);
    return clone;
  }

  Catalog catalog_;
  CostParams params_;
};

TEST_F(AnnotateTest, BaseRefGetsCatalogMeta) {
  auto g = Annotate(SeqRef("ibm").Build());
  EXPECT_EQ(g->meta().span, Span::Of(200, 500));
  EXPECT_NEAR(g->meta().density, 0.95, 0.05);
  EXPECT_EQ(g->meta().schema->num_fields(), 5u);
  EXPECT_EQ(g->meta().source_names,
            (std::vector<std::string>{"ibm"}));
  EXPECT_NE(g->meta().stats_store, nullptr);
}

TEST_F(AnnotateTest, UnknownSequenceFails) {
  LogicalOpPtr g = SeqRef("ghost").Build();
  Annotator annotator(catalog_, params_);
  Status s = annotator.AnnotateBottomUp(g.get());
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST_F(AnnotateTest, SelectKeepsSpanScalesDensity) {
  auto g = Annotate(
      SeqRef("ibm").Select(Gt(Col("close"), Lit(1e12))).Build());
  EXPECT_EQ(g->meta().span, Span::Of(200, 500));
  // Absurd predicate: stats-driven selectivity near the floor.
  EXPECT_LT(g->meta().density, 0.05);
}

TEST_F(AnnotateTest, SelectTypeErrorSurfaces) {
  LogicalOpPtr g =
      SeqRef("ibm").Select(Gt(Col("close"), Lit("zzz"))).Build();
  Annotator annotator(catalog_, params_);
  EXPECT_EQ(annotator.AnnotateBottomUp(g.get()).code(),
            StatusCode::kTypeError);
}

TEST_F(AnnotateTest, ProjectNarrowsSchema) {
  auto g = Annotate(SeqRef("ibm").Project({"close"}, {"c"}).Build());
  EXPECT_EQ(g->meta().schema->ToString(), "<c:double>");
  EXPECT_EQ(g->meta().stats_store, nullptr);  // renamed -> stats dropped
  auto same = Annotate(SeqRef("ibm").Project({"close"}).Build());
  EXPECT_NE(same->meta().stats_store, nullptr);  // no rename -> stats kept
}

TEST_F(AnnotateTest, PositionalOffsetShiftsSpan) {
  auto g = Annotate(SeqRef("ibm").Offset(50).Build());
  // out(i) = in(i+50): span moves down by 50.
  EXPECT_EQ(g->meta().span, Span::Of(150, 450));
}

TEST_F(AnnotateTest, ValueOffsetSpans) {
  auto prev = Annotate(SeqRef("ibm").Prev().Build());
  EXPECT_EQ(prev->meta().span.start, 201);
  EXPECT_GE(prev->meta().span.end, kMaxPosition);
  EXPECT_DOUBLE_EQ(prev->meta().density, 1.0);

  auto next = Annotate(SeqRef("ibm").Next().Build());
  EXPECT_LE(next->meta().span.start, kMinPosition);
  EXPECT_EQ(next->meta().span.end, 499);
}

TEST_F(AnnotateTest, WindowAggExtendsSpanAndDensifies) {
  auto g = Annotate(SeqRef("dec").Agg(AggFunc::kSum, "close", 5).Build());
  EXPECT_EQ(g->meta().span, Span::Of(1, 354));
  // 1 - (1 - 0.7)^5 ~ 0.998.
  EXPECT_GT(g->meta().density, 0.9);
  EXPECT_EQ(g->meta().schema->ToString(), "<sum_close:double>");
}

TEST_F(AnnotateTest, AggTypeRules) {
  auto sum_volume =
      Annotate(SeqRef("ibm").Agg(AggFunc::kSum, "volume", 3).Build());
  EXPECT_EQ(sum_volume->meta().schema->field(0).type, TypeId::kInt64);
  auto avg_volume =
      Annotate(SeqRef("ibm").Agg(AggFunc::kAvg, "volume", 3).Build());
  EXPECT_EQ(avg_volume->meta().schema->field(0).type, TypeId::kDouble);
  auto count =
      Annotate(SeqRef("ibm").Agg(AggFunc::kCount, "volume", 3).Build());
  EXPECT_EQ(count->meta().schema->field(0).type, TypeId::kInt64);
}

TEST_F(AnnotateTest, ComposeIntersectsSpans) {
  auto g = Annotate(SeqRef("ibm").ComposeWith(SeqRef("dec")).Build());
  // [200,500] ∩ [1,350] = [200,350].
  EXPECT_EQ(g->meta().span, Span::Of(200, 350));
  EXPECT_EQ(g->meta().schema->num_fields(), 10u);
  EXPECT_EQ(g->meta().source_names.size(), 2u);
}

TEST_F(AnnotateTest, ComposeUsesCorrelation) {
  auto independent =
      Annotate(SeqRef("ibm").ComposeWith(SeqRef("dec")).Build());
  catalog_.SetNullCorrelation("ibm", "dec", 1.0);
  auto correlated =
      Annotate(SeqRef("ibm").ComposeWith(SeqRef("dec")).Build());
  EXPECT_GT(correlated->meta().density, independent->meta().density);
}

TEST_F(AnnotateTest, CollapseDividesSpan) {
  auto g =
      Annotate(SeqRef("hp").Collapse(7, AggFunc::kAvg, "close").Build());
  EXPECT_EQ(g->meta().span, Span::Of(0, 107));  // floor(1/7)..floor(750/7)
  EXPECT_EQ(g->meta().schema->field(0).type, TypeId::kDouble);
}

// --- top-down span pushdown (Fig. 3) ------------------------------------------

TEST_F(AnnotateTest, Fig3ComposeNarrowsBothInputs) {
  // compose(dec, select(compose(ibm, hp), ...)): all three bases restrict
  // to [200, 350].
  auto q = SeqRef("dec")
               .ComposeWith(SeqRef("ibm").ComposeWith(
                   SeqRef("hp"),
                   Gt(Col("close", 0), Col("close", 1))))
               .Build();
  auto g = AnnotateAndPush(q, Span::Unbounded());
  // Walk to the leaves.
  const LogicalOp* dec = g->input(0).get();
  const LogicalOp* inner = g->input(1).get();
  const LogicalOp* ibm = inner->input(0).get();
  const LogicalOp* hp = inner->input(1).get();
  EXPECT_EQ(dec->meta().required, Span::Of(200, 350));
  EXPECT_EQ(ibm->meta().required, Span::Of(200, 350));
  EXPECT_EQ(hp->meta().required, Span::Of(200, 350));
}

TEST_F(AnnotateTest, RequestedRangeNarrowsFurther) {
  auto q = SeqRef("ibm").ComposeWith(SeqRef("hp")).Build();
  auto g = AnnotateAndPush(q, Span::Of(250, 280));
  EXPECT_EQ(g->input(0)->meta().required, Span::Of(250, 280));
  EXPECT_EQ(g->input(1)->meta().required, Span::Of(250, 280));
}

TEST_F(AnnotateTest, LooseModeSkipsSiblingNarrowing) {
  auto q = SeqRef("ibm").ComposeWith(SeqRef("dec")).Build();
  auto g = AnnotateAndPush(q, Span::Of(1, 750), /*narrow=*/false);
  // Without the Fig. 3 optimization the inputs keep the whole requested
  // window (their scans still self-limit to their own spans).
  EXPECT_EQ(g->input(0)->meta().required, Span::Of(1, 750));
  EXPECT_EQ(g->input(1)->meta().required, Span::Of(1, 750));
}

TEST_F(AnnotateTest, WindowAggWidensChildRequirement) {
  auto q = SeqRef("hp").Agg(AggFunc::kSum, "close", 10).Build();
  auto g = AnnotateAndPush(q, Span::Of(100, 200));
  EXPECT_EQ(g->input()->meta().required, Span::Of(91, 200));
}

TEST_F(AnnotateTest, OffsetShiftsRequirement) {
  auto q = SeqRef("hp").Offset(25).Build();
  auto g = AnnotateAndPush(q, Span::Of(100, 200));
  EXPECT_EQ(g->input()->meta().required, Span::Of(125, 225));
}

TEST_F(AnnotateTest, PreviousRequiresHistoryFromSpanStart) {
  auto q = SeqRef("hp").Prev().Build();
  auto g = AnnotateAndPush(q, Span::Of(100, 200));
  EXPECT_EQ(g->input()->meta().required, Span::Of(1, 199));
}

TEST_F(AnnotateTest, OverallAggCannotNarrow) {
  auto q = SeqRef("hp").OverallAgg(AggFunc::kMax, "close").Build();
  auto g = AnnotateAndPush(q, Span::Of(100, 120));
  EXPECT_EQ(g->input()->meta().required, Span::Of(1, 750));
}

TEST_F(AnnotateTest, CollapseScalesRequirement) {
  auto q = SeqRef("hp").Collapse(7, AggFunc::kSum, "close").Build();
  auto g = AnnotateAndPush(q, Span::Of(10, 20));
  EXPECT_EQ(g->input()->meta().required, Span::Of(70, 146));
}

TEST_F(AnnotateTest, EmptyIntersectionPropagatesEmpty) {
  auto q = SeqRef("ibm").Build();
  auto g = AnnotateAndPush(q, Span::Of(600, 700));
  EXPECT_TRUE(g->meta().required.IsEmpty());
}

}  // namespace
}  // namespace seq
