// Operator-state checkpointing: suspend/resume robustness suite
// (docs/robustness.md). The invariants:
//
//   * a run suspended at ANY chunk boundary and resumed — in the same
//     engine or a freshly built one — produces rows and stats identical
//     to an uninterrupted checkpointed run, across batch/tuple x
//     stream/probed x serial/4-worker,
//   * a stale checkpoint (catalog version, optimizer-options fingerprint
//     or plan signature changed) is rejected with FailedPrecondition
//     naming the mismatch,
//   * a torn or corrupt checkpoint file fails closed with DataLoss —
//     never a crash, never wrong rows — including under injected
//     checkpoint-write/checkpoint-read faults,
//   * scheduler parking (preempt flag) round-trips through the file and
//     still completes with identical results.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "exec/checkpoint.h"
#include "exec/fault_injector.h"
#include "exec/scheduler.h"
#include "exec/stream_session.h"
#include "obs/metrics.h"
#include "obs/query_registry.h"
#include "optimizer/plan_template.h"
#include "storage/checkpoint_file.h"
#include "workload/generators.h"

namespace seq {
namespace {

std::string TmpPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

// Exact equality including simulated_cost: the chunk grid of a resumed run
// replays the original boundary sequence, so even the floating-point
// charge order must reproduce bit-for-bit.
void ExpectIdenticalStats(const AccessStats& want, const AccessStats& got,
                          const std::string& label) {
  EXPECT_EQ(want.stream_records, got.stream_records) << label;
  EXPECT_EQ(want.stream_pages, got.stream_pages) << label;
  EXPECT_EQ(want.probes, got.probes) << label;
  EXPECT_EQ(want.probe_pages, got.probe_pages) << label;
  EXPECT_EQ(want.cache_stores, got.cache_stores) << label;
  EXPECT_EQ(want.cache_hits, got.cache_hits) << label;
  EXPECT_EQ(want.predicate_evals, got.predicate_evals) << label;
  EXPECT_EQ(want.agg_steps, got.agg_steps) << label;
  EXPECT_EQ(want.records_output, got.records_output) << label;
  EXPECT_EQ(want.simulated_cost, got.simulated_cost) << label;
}

void ExpectSameRows(const QueryResult& want, const QueryResult& got,
                    const std::string& label) {
  ASSERT_EQ(want.records.size(), got.records.size()) << label;
  for (size_t i = 0; i < want.records.size(); ++i) {
    EXPECT_EQ(want.records[i].pos, got.records[i].pos)
        << label << " row " << i;
    ASSERT_EQ(want.records[i].rec.size(), got.records[i].rec.size())
        << label << " row " << i;
    for (size_t j = 0; j < want.records[i].rec.size(); ++j) {
      EXPECT_EQ(want.records[i].rec[j], got.records[i].rec[j])
          << label << " row " << i << " col " << j;
    }
  }
}

struct ChainOutcome {
  Status status = Status::OK();
  QueryResult result;
  AccessStats stats;
  int suspensions = 0;
};

/// Runs `query` with a suspend trigger after every `suspend_every` chunks,
/// then resumes the chain of checkpoints until the run completes. Each
/// intermediate file is deleted after its resume: the stats/rows prefix
/// must travel through the files, not through the caller.
ChainOutcome RunSuspendChain(const Engine& engine, const Query& query,
                             RunOptions opts, int64_t suspend_every) {
  ChainOutcome out;
  opts.exec.checkpoint.enabled = true;
  opts.exec.checkpoint.suspend_every_chunks = suspend_every;
  opts.stats = &out.stats;
  Result<QueryResult> r = engine.Run(query, opts);
  while (!r.ok() && IsQuerySuspended(r.status())) {
    ++out.suspensions;
    if (out.suspensions > 1000) break;  // runaway-chain backstop
    const std::string path = SuspendedCheckpointPath(r.status());
    r = engine.Resume(path, opts);
    std::remove(path.c_str());
  }
  out.status = r.status();
  if (r.ok()) out.result = std::move(r).value();
  return out;
}

// --- checkpoint file format -------------------------------------------------

CheckpointImage SampleImage() {
  CheckpointImage image;
  image.catalog_version = 7;
  image.options_fingerprint = "fp|1|2";
  image.plan_signature = "sig|range=none";
  image.query_text = "out = s.select(value > 3);";
  image.probed = true;
  image.has_range = true;
  image.span_start = -5;
  image.span_end = 900;
  image.positions = {1, 2, 500};
  image.position_sequence = "ticks";
  image.watermark = 123;
  image.next_index = 2;
  image.chunks_done = 3;
  image.chunk_len = 64;
  image.stats.stream_records = 10;
  image.stats.probe_pages = 4;
  image.stats.simulated_cost = 12.625;
  image.rows.push_back(
      PosRecord{42, {Value::Int64(-9), Value::Double(2.5), Value::Bool(true),
                     Value::String("hello")}});
  image.rows.push_back(PosRecord{43, {Value::Int64(11)}});
  image.op_state = std::string("\xA1\x01\x00tail", 7);
  return image;
}

TEST(CheckpointFileTest, RoundTrip) {
  const std::string path = TmpPath("ckpt_roundtrip.ckpt");
  const CheckpointImage image = SampleImage();
  ASSERT_TRUE(SaveCheckpoint(image, path).ok());
  auto loaded = LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->catalog_version, image.catalog_version);
  EXPECT_EQ(loaded->options_fingerprint, image.options_fingerprint);
  EXPECT_EQ(loaded->plan_signature, image.plan_signature);
  EXPECT_EQ(loaded->query_text, image.query_text);
  EXPECT_EQ(loaded->probed, image.probed);
  EXPECT_EQ(loaded->has_range, image.has_range);
  EXPECT_EQ(loaded->span_start, image.span_start);
  EXPECT_EQ(loaded->span_end, image.span_end);
  EXPECT_EQ(loaded->positions, image.positions);
  EXPECT_EQ(loaded->position_sequence, image.position_sequence);
  EXPECT_EQ(loaded->watermark, image.watermark);
  EXPECT_EQ(loaded->next_index, image.next_index);
  EXPECT_EQ(loaded->chunks_done, image.chunks_done);
  EXPECT_EQ(loaded->chunk_len, image.chunk_len);
  EXPECT_EQ(loaded->op_state, image.op_state);
  ExpectIdenticalStats(image.stats, loaded->stats, "roundtrip stats");
  ASSERT_EQ(loaded->rows.size(), image.rows.size());
  EXPECT_EQ(loaded->rows[0].pos, 42);
  EXPECT_EQ(loaded->rows[0].rec, image.rows[0].rec);
  std::remove(path.c_str());
}

TEST(CheckpointFileTest, TruncationIsDataLoss) {
  const std::string path = TmpPath("ckpt_torn.ckpt");
  ASSERT_TRUE(SaveCheckpoint(SampleImage(), path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 40u);
  // A torn write can stop anywhere: header-only, mid-body, one byte short.
  for (size_t keep : {size_t{10}, bytes.size() / 2, bytes.size() - 1}) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();
    auto loaded = LoadCheckpoint(path);
    ASSERT_FALSE(loaded.ok()) << "keep=" << keep;
    EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
        << "keep=" << keep << ": " << loaded.status();
  }
  std::remove(path.c_str());
}

TEST(CheckpointFileTest, BitFlipIsDataLoss) {
  const std::string path = TmpPath("ckpt_flip.ckpt");
  ASSERT_TRUE(SaveCheckpoint(SampleImage(), path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  // Flip one bit in the body: the checksum must catch it.
  bytes[bytes.size() - 3] = static_cast<char>(bytes[bytes.size() - 3] ^ 0x10);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  auto loaded = LoadCheckpoint(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(CheckpointFileTest, BadMagicIsInvalidArgument) {
  const std::string path = TmpPath("ckpt_magic.ckpt");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << "NOTACKPTxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx";
  out.close();
  auto loaded = LoadCheckpoint(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointFileTest, MissingFileIsNotFound) {
  auto loaded = LoadCheckpoint(TmpPath("ckpt_never_written.ckpt"));
  ASSERT_FALSE(loaded.ok());
}

// --- suspend/resume parity --------------------------------------------------

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterAll(engine_); }

  // Identical content (same seeds) so a second engine reaches the same
  // catalog version with the same stores — the fresh-process resume case.
  static void RegisterAll(Engine& engine) {
    IntSeriesOptions dense;
    dense.span = Span::Of(0, 63);
    dense.density = 1.0;
    dense.seed = 7;
    dense.records_per_page = 16;
    ASSERT_TRUE(engine.RegisterBase("s", *MakeIntSeries(dense)).ok());
    IntSeriesOptions sparse;
    sparse.span = Span::Of(0, 63);
    sparse.density = 0.6;
    sparse.seed = 9;
    sparse.records_per_page = 16;
    ASSERT_TRUE(engine.RegisterBase("sp", *MakeIntSeries(sparse)).ok());
  }

  Engine engine_;
};

TEST_F(CheckpointTest, SuspendAtEveryBoundaryMatchesUninterruptedRun) {
  struct Shape {
    std::string name;
    LogicalOpPtr graph;
    // Shapes whose plans cannot chunk (materialized running aggregate,
    // lock-step compose) fall back to an uninterrupted run: suspend
    // triggers are ignored, but every parity check below still holds.
    bool chunkable = true;
  };
  const std::vector<Shape> shapes = {
      {"window-chain", SeqRef("s")
                           .Select(Gt(Col("value"), Lit(int64_t{100})))
                           .Agg(AggFunc::kAvg, "value", 8)
                           .Offset(1)
                           .Build()},
      {"scan-select",
       SeqRef("s").Select(Gt(Col("value"), Lit(int64_t{100}))).Build()},
      {"pos-offset", SeqRef("s").Offset(3).Project({"value"}).Build()},
      {"running-sum", SeqRef("s").RunningAgg(AggFunc::kSum, "value").Build(),
       /*chunkable=*/false},
      {"compose", SeqRef("s").ComposeWith(SeqRef("sp").Prev()).Build(),
       /*chunkable=*/false},
  };
  for (bool probed : {false, true}) {
    engine_.options().force_root_mode =
        probed ? std::optional<AccessMode>(AccessMode::kProbed) : std::nullopt;
    for (const Shape& shape : shapes) {
      Query query;
      query.graph = shape.graph;
      query.range = Span::Of(0, 63);
      for (bool use_batch : {true, false}) {
        for (int workers : {1, 4}) {
          RunOptions opts;
          opts.exec.use_batch = use_batch;
          opts.exec.parallelism = workers;
          opts.exec.checkpoint.chunk = 8;
          const std::string ctx = shape.name +
                                  (use_batch ? " [batch" : " [tuple") +
                                  (probed ? ",probed" : ",stream") + ",x" +
                                  std::to_string(workers) + "]";

          // Uninterrupted checkpointed run: the parity baseline.
          ChainOutcome base = RunSuspendChain(engine_, query, opts,
                                              /*suspend_every=*/0);
          ASSERT_TRUE(base.status.ok()) << ctx << ": " << base.status;
          EXPECT_EQ(base.suspensions, 0) << ctx;

          // The plain path must agree on rows (and integer counters —
          // simulated_cost may sum in a different order across chunks).
          RunOptions plain_opts;
          plain_opts.exec.use_batch = use_batch;
          plain_opts.exec.parallelism = workers;
          AccessStats plain_stats;
          plain_opts.stats = &plain_stats;
          auto plain = engine_.Run(query, plain_opts);
          ASSERT_TRUE(plain.ok()) << ctx << ": " << plain.status();
          ExpectSameRows(*plain, base.result, ctx + " vs plain");
          EXPECT_EQ(plain_stats.records_output, base.stats.records_output)
              << ctx;
          EXPECT_NEAR(plain_stats.simulated_cost, base.stats.simulated_cost,
                      1e-9 * (1.0 + std::abs(plain_stats.simulated_cost)))
              << ctx;

          // Suspend after every k-th chunk and resume the chain to the
          // end: rows AND stats must be identical to the uninterrupted
          // checkpointed run — including simulated_cost, bit for bit.
          for (int64_t k : {int64_t{1}, int64_t{2}, int64_t{3}}) {
            ChainOutcome got = RunSuspendChain(engine_, query, opts, k);
            const std::string label = ctx + " k=" + std::to_string(k);
            ASSERT_TRUE(got.status.ok()) << label << ": " << got.status;
            if (shape.chunkable) {
              EXPECT_GE(got.suspensions, 1) << label;
            }
            ExpectSameRows(base.result, got.result, label);
            ExpectIdenticalStats(base.stats, got.stats, label);
          }
        }
      }
    }
  }
  engine_.options().force_root_mode = std::nullopt;
}

TEST_F(CheckpointTest, ProbedPositionListSuspendsBetweenProbeChunks) {
  engine_.options().force_root_mode = AccessMode::kProbed;
  Query query;
  query.graph = SeqRef("s").Agg(AggFunc::kSum, "value", 5).Build();
  query.positions = {2, 3, 10, 17, 18, 25, 33, 40, 41, 55, 60, 63};
  RunOptions opts;
  opts.exec.checkpoint.chunk = 4;  // 3 chunks of the 12-entry probe list
  ChainOutcome base = RunSuspendChain(engine_, query, opts, 0);
  ASSERT_TRUE(base.status.ok()) << base.status;
  ChainOutcome got = RunSuspendChain(engine_, query, opts, 1);
  ASSERT_TRUE(got.status.ok()) << got.status;
  EXPECT_GE(got.suspensions, 1);
  ExpectSameRows(base.result, got.result, "probed position list");
  ExpectIdenticalStats(base.stats, got.stats, "probed position list");
  engine_.options().force_root_mode = std::nullopt;
}

TEST_F(CheckpointTest, ResumeInFreshEngineProcess) {
  Query query;
  query.graph = SeqRef("s").Agg(AggFunc::kAvg, "value", 8).Build();
  query.range = Span::Of(0, 63);
  RunOptions opts;
  opts.exec.checkpoint.enabled = true;
  opts.exec.checkpoint.chunk = 8;
  opts.exec.checkpoint.suspend_every_chunks = 2;
  opts.exec.checkpoint.path = TmpPath("ckpt_fresh_engine.ckpt");
  auto suspended = engine_.Run(query, opts);
  ASSERT_FALSE(suspended.ok());
  ASSERT_TRUE(IsQuerySuspended(suspended.status())) << suspended.status();
  const std::string path = SuspendedCheckpointPath(suspended.status());
  EXPECT_EQ(path, opts.exec.checkpoint.path);

  // Same registrations in the same order = same catalog version and same
  // stores: the checkpoint written by engine_ resumes in a fresh engine,
  // exactly as crash recovery in a new process would.
  Engine fresh;
  RegisterAll(fresh);
  RunOptions resume_opts;
  resume_opts.exec.checkpoint.chunk = 8;
  AccessStats stats;
  resume_opts.stats = &stats;
  auto resumed = fresh.Resume(path, resume_opts);
  ASSERT_TRUE(resumed.ok()) << resumed.status();

  RunOptions base_opts;
  base_opts.exec.checkpoint.chunk = 8;
  ChainOutcome base = RunSuspendChain(fresh, query, base_opts, 0);
  ASSERT_TRUE(base.status.ok());
  ExpectSameRows(base.result, *resumed, "fresh-engine resume");
  ExpectIdenticalStats(base.stats, stats, "fresh-engine resume");
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, UserRequestFlagSuspends) {
  std::atomic<bool> request{true};
  Query query;
  query.graph = SeqRef("s").Agg(AggFunc::kSum, "value", 8).Build();
  query.range = Span::Of(0, 63);
  RunOptions opts;
  opts.exec.checkpoint.enabled = true;
  opts.exec.checkpoint.chunk = 8;
  opts.exec.checkpoint.request = &request;
  opts.exec.checkpoint.path = TmpPath("ckpt_user_request.ckpt");
  auto r = engine_.Run(query, opts);
  ASSERT_FALSE(r.ok());
  ASSERT_TRUE(IsQuerySuspended(r.status())) << r.status();
  EXPECT_NE(r.status().message().find("user"), std::string::npos)
      << r.status();

  request.store(false);
  RunOptions resume_opts;
  resume_opts.exec.checkpoint.chunk = 8;
  auto resumed = engine_.Resume(opts.exec.checkpoint.path, resume_opts);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  auto plain = engine_.Run(query, RunOptions{});
  ASSERT_TRUE(plain.ok());
  ExpectSameRows(*plain, *resumed, "user-request resume");
  std::remove(opts.exec.checkpoint.path.c_str());
}

TEST_F(CheckpointTest, RegistryRequestSuspendFlagsLiveQuery) {
  EXPECT_FALSE(Engine::RequestSuspend(999999999));

  // A deliberately long checkpointed run; the main thread finds it in the
  // live-query registry and flags it, exactly as seqsh `.suspend <id>`
  // does. If the run wins the race and finishes first, RequestSuspend
  // stays false and the run must simply have succeeded.
  Engine big;
  IntSeriesOptions series;
  series.span = Span::Of(0, 199999);
  series.density = 1.0;
  series.seed = 11;
  ASSERT_TRUE(big.RegisterBase("big", *MakeIntSeries(series)).ok());
  Query query;
  query.graph = SeqRef("big").Agg(AggFunc::kSum, "value", 8).Build();
  query.range = Span::Of(0, 199999);
  RunOptions opts;
  opts.exec.checkpoint.enabled = true;
  opts.exec.checkpoint.chunk = 512;
  opts.exec.checkpoint.path = TmpPath("ckpt_registry_request.ckpt");

  Result<QueryResult> outcome = Status::OK();
  std::thread runner([&] { outcome = big.Run(query, opts); });
  bool flagged = false;
  for (int i = 0; i < 200000 && !flagged; ++i) {
    for (const LiveQueryInfo& live : QueryRegistry::Global().Live()) {
      if (Engine::RequestSuspend(live.id)) {
        flagged = true;
        break;
      }
    }
  }
  runner.join();
  if (flagged && !outcome.ok()) {
    ASSERT_TRUE(IsQuerySuspended(outcome.status())) << outcome.status();
    auto resumed = big.Resume(SuspendedCheckpointPath(outcome.status()));
    ASSERT_TRUE(resumed.ok()) << resumed.status();
    EXPECT_EQ(resumed->records.size(), 200000u);
  } else {
    // Raced to completion (or the flag landed after the last boundary).
    ASSERT_TRUE(outcome.ok()) << outcome.status();
  }
  std::remove(opts.exec.checkpoint.path.c_str());
}

// --- stale-checkpoint rejection ---------------------------------------------

class CheckpointStaleTest : public CheckpointTest {
 protected:
  /// Suspends a window-aggregate run after its first chunk and returns the
  /// checkpoint path.
  std::string SuspendOnce(const std::string& file) {
    Query query;
    query.graph = SeqRef("s").Agg(AggFunc::kAvg, "value", 8).Build();
    query.range = Span::Of(0, 63);
    RunOptions opts;
    opts.exec.checkpoint.enabled = true;
    opts.exec.checkpoint.chunk = 8;
    opts.exec.checkpoint.suspend_every_chunks = 1;
    opts.exec.checkpoint.path = TmpPath(file);
    auto r = engine_.Run(query, opts);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(IsQuerySuspended(r.status())) << r.status();
    return opts.exec.checkpoint.path;
  }
};

TEST_F(CheckpointStaleTest, CatalogVersionMismatchRejected) {
  const std::string path = SuspendOnce("ckpt_stale_catalog.ckpt");
  IntSeriesOptions extra;
  extra.span = Span::Of(0, 7);
  extra.seed = 3;
  ASSERT_TRUE(engine_.RegisterBase("extra", *MakeIntSeries(extra)).ok());
  auto resumed = engine_.Resume(path);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(resumed.status().message().find("catalog version"),
            std::string::npos)
      << resumed.status();
  std::remove(path.c_str());
}

TEST_F(CheckpointStaleTest, OptionsFingerprintMismatchRejected) {
  const std::string path = SuspendOnce("ckpt_stale_options.ckpt");
  engine_.options().cost_params.disable_window_cache = true;
  auto resumed = engine_.Resume(path);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(resumed.status().message().find("fingerprint"),
            std::string::npos)
      << resumed.status();
  std::remove(path.c_str());
}

TEST_F(CheckpointStaleTest, PlanSignatureMismatchRejected) {
  const std::string path = SuspendOnce("ckpt_stale_signature.ckpt");
  // Tamper with the stored shape signature (checksum recomputed by the
  // save): the re-planned query no longer matches and must be rejected.
  auto image = LoadCheckpoint(path);
  ASSERT_TRUE(image.ok()) << image.status();
  image->plan_signature = "not|the|same|shape";
  ASSERT_TRUE(SaveCheckpoint(*image, path).ok());
  auto resumed = engine_.Resume(path);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(resumed.status().message().find("plan signature"),
            std::string::npos)
      << resumed.status();
  std::remove(path.c_str());
}

TEST_F(CheckpointStaleTest, ResumeRejectsProfileAndSink) {
  const std::string path = SuspendOnce("ckpt_resume_modes.ckpt");
  RunOptions profile_opts;
  profile_opts.profile = true;
  auto profiled = engine_.Resume(path, profile_opts);
  ASSERT_FALSE(profiled.ok());
  EXPECT_EQ(profiled.status().code(), StatusCode::kInvalidArgument);

  RunOptions sink_opts;
  sink_opts.sink = [](Position, const Record&) {};
  auto sunk = engine_.Resume(path, sink_opts);
  ASSERT_FALSE(sunk.ok());
  EXPECT_EQ(sunk.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, CheckpointedRunRejectsSink) {
  Query query;
  query.graph = SeqRef("s").Build();
  query.range = Span::Of(0, 63);
  RunOptions opts;
  opts.exec.checkpoint.enabled = true;
  opts.sink = [](Position, const Record&) {};
  auto r = engine_.Run(query, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// --- injected checkpoint faults ---------------------------------------------

TEST_F(CheckpointTest, CheckpointWriteFaultFailsClosedAndTearsFile) {
  FaultInjector injector(/*seed=*/42);
  injector.ArmAfter(FaultSite::kCheckpointWrite, 1);
  Query query;
  query.graph = SeqRef("s").Agg(AggFunc::kAvg, "value", 8).Build();
  query.range = Span::Of(0, 63);
  RunOptions opts;
  opts.exec.checkpoint.enabled = true;
  opts.exec.checkpoint.chunk = 8;
  opts.exec.checkpoint.suspend_every_chunks = 1;
  opts.exec.checkpoint.path = TmpPath("ckpt_write_fault.ckpt");
  opts.exec.fault_injector = &injector;
  auto r = engine_.Run(query, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(injector.fired(), 1);
  EXPECT_FALSE(IsQuerySuspended(r.status())) << r.status();
  EXPECT_NE(r.status().message().find("injected fault"), std::string::npos)
      << r.status();
  // The torn file the failed write left behind must never resume: loading
  // it is DataLoss, end to end.
  auto loaded = LoadCheckpoint(opts.exec.checkpoint.path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  auto resumed = engine_.Resume(opts.exec.checkpoint.path);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kDataLoss);
  std::remove(opts.exec.checkpoint.path.c_str());
}

TEST_F(CheckpointTest, CheckpointReadFaultFailsClosed) {
  Query query;
  query.graph = SeqRef("s").Agg(AggFunc::kAvg, "value", 8).Build();
  query.range = Span::Of(0, 63);
  RunOptions opts;
  opts.exec.checkpoint.enabled = true;
  opts.exec.checkpoint.chunk = 8;
  opts.exec.checkpoint.suspend_every_chunks = 1;
  opts.exec.checkpoint.path = TmpPath("ckpt_read_fault.ckpt");
  auto r = engine_.Run(query, opts);
  ASSERT_FALSE(r.ok());
  ASSERT_TRUE(IsQuerySuspended(r.status())) << r.status();

  FaultInjector injector(/*seed=*/42);
  injector.ArmAfter(FaultSite::kCheckpointRead, 1);
  RunOptions resume_opts;
  resume_opts.exec.fault_injector = &injector;
  auto resumed = engine_.Resume(opts.exec.checkpoint.path, resume_opts);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(injector.fired(), 1);
  EXPECT_EQ(resumed.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(resumed.status().message().find("injected fault"),
            std::string::npos)
      << resumed.status();

  // The same file resumes fine once the fault is gone: the injected read
  // failure was transient, the file itself is intact.
  auto clean = engine_.Resume(opts.exec.checkpoint.path);
  EXPECT_TRUE(clean.ok()) << clean.status();
  std::remove(opts.exec.checkpoint.path.c_str());
}

// --- cache-budget parking ---------------------------------------------------

TEST_F(CheckpointTest, CacheBudgetParksInsteadOfDegrading) {
  Query query;
  query.graph = SeqRef("s").Agg(AggFunc::kAvg, "value", 16).Build();
  query.range = Span::Of(0, 63);
  auto plain = engine_.Run(query, RunOptions{});
  ASSERT_TRUE(plain.ok());

  RunOptions opts;
  opts.exec.checkpoint.enabled = true;
  opts.exec.checkpoint.chunk = 8;
  opts.exec.checkpoint.park_on_cache_budget = true;
  opts.exec.checkpoint.path = TmpPath("ckpt_cache_budget.ckpt");
  opts.exec.guards.max_cache_bytes = 64;  // a 16-entry window cannot fit
  auto parked = engine_.Run(query, opts);
  ASSERT_FALSE(parked.ok());
  ASSERT_TRUE(IsQuerySuspended(parked.status())) << parked.status();
  EXPECT_NE(parked.status().message().find("cache"), std::string::npos)
      << parked.status();

  // Resume with a workable budget: the parked query completes with the
  // answer it would always have produced.
  RunOptions resume_opts;
  resume_opts.exec.checkpoint.chunk = 8;
  auto resumed = engine_.Resume(opts.exec.checkpoint.path, resume_opts);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  ExpectSameRows(*plain, *resumed, "cache-budget park");
  std::remove(opts.exec.checkpoint.path.c_str());
}

// --- scheduler preemption ---------------------------------------------------

TEST_F(CheckpointTest, PreemptFlagParksThroughFileAndCompletes) {
  Query query;
  query.graph = SeqRef("s").Agg(AggFunc::kAvg, "value", 8).Build();
  query.range = Span::Of(0, 63);
  RunOptions opts;
  opts.exec.checkpoint.chunk = 8;
  ChainOutcome base = RunSuspendChain(engine_, query, opts, 0);
  ASSERT_TRUE(base.status.ok());

  // A permanently raised preempt flag parks the run at EVERY chunk
  // boundary: checkpoint written, slot re-requested from the (idle)
  // global scheduler, state reloaded from the file — the full in-place
  // park loop — and the answer must still come out identical.
  MetricsRegistry& metrics = MetricsRegistry::Global();
  const int64_t parked_before = metrics.Get("engine.checkpoints.parked");
  std::atomic<bool> preempt{true};
  RunOptions park_opts;
  park_opts.exec.checkpoint.enabled = true;
  park_opts.exec.checkpoint.chunk = 8;
  park_opts.exec.checkpoint.preempt = &preempt;
  park_opts.exec.checkpoint.path = TmpPath("ckpt_preempt.ckpt");
  AccessStats stats;
  park_opts.stats = &stats;
  auto r = engine_.Run(query, park_opts);
  ASSERT_TRUE(r.ok()) << r.status();
  ExpectSameRows(base.result, *r, "preempt park");
  ExpectIdenticalStats(base.stats, stats, "preempt park");
  EXPECT_GE(metrics.Get("engine.checkpoints.parked") - parked_before, 1);
  std::remove(park_opts.exec.checkpoint.path.c_str());
}

TEST(SchedulerPreemptionTest, QueuePressureFlagsLowestPriorityRunner) {
  QueryScheduler sched;
  sched.SetMaxRunning(1);
  QueryScheduler::AdmitRequest first;
  auto slot = sched.Admit(first);
  ASSERT_TRUE(slot.ok());

  QueryScheduler::Preemption low = sched.RegisterPreemptible(
      QueryPriority::kLow);
  QueryScheduler::Preemption normal = sched.RegisterPreemptible(
      QueryPriority::kNormal);
  EXPECT_EQ(sched.Stats().preemptible, 2u);
  EXPECT_FALSE(low.flag()->load());

  // A high-priority waiter queues -> the scheduler must flag the LOWEST
  // priority registered runner (strictly below the waiter), exactly once.
  std::thread waiter([&] {
    QueryScheduler::AdmitRequest high;
    high.priority = QueryPriority::kHigh;
    auto s = sched.Admit(high);
    if (s.ok()) s.value().Release();
  });
  while (sched.Stats().queued == 0) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(low.flag()->load());
  EXPECT_FALSE(normal.flag()->load());
  EXPECT_EQ(sched.Stats().suspend_requests, 1);
  EXPECT_NE(sched.ToString().find("suspend request"), std::string::npos);

  low.Rearm();
  EXPECT_FALSE(low.flag()->load());
  slot.value().Release();
  waiter.join();
}

// --- non-chunkable shapes ---------------------------------------------------

TEST_F(CheckpointTest, NonChunkablePlanIgnoresSuspendAndCompletes) {
  // Point positions on a stream root cannot chunk: the run must ignore
  // the trigger and complete normally instead of suspending or failing.
  engine_.options().force_root_mode = AccessMode::kStream;
  Query query;
  query.graph = SeqRef("s").Agg(AggFunc::kSum, "value", 5).Build();
  query.positions = {5, 9, 22, 41};
  auto plain = engine_.Run(query, RunOptions{});
  ASSERT_TRUE(plain.ok());

  RunOptions opts;
  opts.exec.checkpoint.enabled = true;
  opts.exec.checkpoint.suspend_every_chunks = 1;
  auto r = engine_.Run(query, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  ExpectSameRows(*plain, *r, "non-chunkable");
  engine_.options().force_root_mode = std::nullopt;
}

// --- metrics & registry accounting ------------------------------------------

TEST_F(CheckpointTest, SuspensionCountsAsCheckpointNotFailure) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  const int64_t written_before = metrics.Get("engine.checkpoints.written");
  const int64_t failed_before = metrics.Get("engine.failed_runs");
  Query query;
  query.graph = SeqRef("s").Agg(AggFunc::kAvg, "value", 8).Build();
  query.range = Span::Of(0, 63);
  RunOptions opts;
  opts.exec.checkpoint.enabled = true;
  opts.exec.checkpoint.chunk = 8;
  opts.exec.checkpoint.suspend_every_chunks = 1;
  opts.exec.checkpoint.path = TmpPath("ckpt_metrics.ckpt");
  auto r = engine_.Run(query, opts);
  ASSERT_FALSE(r.ok());
  ASSERT_TRUE(IsQuerySuspended(r.status()));
  EXPECT_GE(metrics.Get("engine.checkpoints.written") - written_before, 1);
  // A suspension is a parked query, not a failed one.
  EXPECT_EQ(metrics.Get("engine.failed_runs"), failed_before);

  const int64_t resumed_before = metrics.Get("engine.checkpoints.resumed");
  auto resumed = engine_.Resume(opts.exec.checkpoint.path);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_GE(metrics.Get("engine.checkpoints.resumed") - resumed_before, 1);
  std::remove(opts.exec.checkpoint.path.c_str());
}

TEST(QueryStateTest, SuspendedStateHasAName) {
  EXPECT_STREQ(QueryStateName(QueryState::kSuspended), "suspended");
}

// --- stream sessions --------------------------------------------------------

TEST(StreamSessionCheckpointTest, SuspendResumeContinuesWhereItStopped) {
  SchemaPtr schema = Schema::Make({Field{"v", TypeId::kInt64}});
  Catalog catalog;
  auto store = std::make_shared<BaseSequenceStore>(schema, 16);
  ASSERT_TRUE(catalog.RegisterBase("live", store).ok());
  StreamSession session(&catalog,
                        SeqRef("live").Agg(AggFunc::kSum, "v", 4).Build());
  for (Position p = 0; p < 64; ++p) {
    ASSERT_TRUE(session.Append("live", p, {Value::Int64(p)}).ok());
  }
  auto first = session.Poll();
  ASSERT_TRUE(first.ok()) << first.status();
  const Position mark = session.high_water_mark();

  const std::string path = TmpPath("ckpt_stream_session.ckpt");
  ASSERT_TRUE(session.Suspend(path).ok());

  auto resumed = StreamSession::Resume(&catalog, path);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ(resumed->high_water_mark(), mark);
  EXPECT_FALSE(resumed->degraded());

  // New arrivals after the restart: the resumed session emits exactly the
  // answers the suspended one had not yet emitted.
  for (Position p = 64; p < 100; ++p) {
    ASSERT_TRUE(resumed->Append("live", p, {Value::Int64(p)}).ok());
  }
  auto second = resumed->Poll();
  ASSERT_TRUE(second.ok()) << second.status();

  Catalog control_catalog;
  auto control_store = std::make_shared<BaseSequenceStore>(schema, 16);
  ASSERT_TRUE(control_catalog.RegisterBase("live", control_store).ok());
  StreamSession control(&control_catalog,
                        SeqRef("live").Agg(AggFunc::kSum, "v", 4).Build());
  for (Position p = 0; p < 100; ++p) {
    ASSERT_TRUE(control.Append("live", p, {Value::Int64(p)}).ok());
  }
  auto all = control.Poll();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(first->size() + second->size(), all->size());
  for (size_t i = 0; i < all->size(); ++i) {
    const PosRecord& got =
        i < first->size() ? (*first)[i] : (*second)[i - first->size()];
    EXPECT_EQ(got.pos, (*all)[i].pos) << "row " << i;
    EXPECT_EQ(got.rec, (*all)[i].rec) << "row " << i;
  }
  std::remove(path.c_str());
}

TEST(StreamSessionCheckpointTest, StaleSessionCheckpointRejected) {
  SchemaPtr schema = Schema::Make({Field{"v", TypeId::kInt64}});
  Catalog catalog;
  auto store = std::make_shared<BaseSequenceStore>(schema, 16);
  ASSERT_TRUE(catalog.RegisterBase("live", store).ok());
  StreamSession session(&catalog, SeqRef("live").Prev().Build());
  const std::string path = TmpPath("ckpt_stream_stale.ckpt");
  ASSERT_TRUE(session.Suspend(path).ok());

  // The catalog moved on (new sequence registered): resuming against it
  // must be rejected, not silently re-attached.
  auto other = std::make_shared<BaseSequenceStore>(schema, 16);
  ASSERT_TRUE(catalog.RegisterBase("other", other).ok());
  auto resumed = StreamSession::Resume(&catalog, path);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(resumed.status().message().find("catalog version"),
            std::string::npos)
      << resumed.status();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace seq
