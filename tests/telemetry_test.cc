// Tests for the always-on telemetry layer: query-text digest
// normalization, the live query registry, the slow-query digest log, the
// Prometheus/JSON exporters, and the engine integration that ties them
// together (docs/observability.md).
//
// These tests exercise the PROCESS-GLOBAL registries (that is the layer
// under test), so each test resets them on entry; do not run tests from
// this binary in parallel within one process.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/query_registry.h"
#include "obs/slow_query_log.h"
#include "workload/generators.h"
#include "json_test_util.h"

namespace seq {
namespace {

using testutil::JsonParser;
using testutil::JsonValue;

// --- digest normalization ---------------------------------------------------

TEST(DigestTest, ParameterizesLiteralsFoldsCaseAndWhitespace) {
  // The contract from slow_query_log.h: literals -> `?`, ASCII case
  // folded, tokens joined by single spaces.
  EXPECT_EQ(NormalizeQueryText("select(IBM, close > 100.0)"),
            NormalizeQueryText("SELECT( ibm,close>7 )"));
  EXPECT_EQ(NormalizeQueryText("select(IBM, close > 100.0)"),
            "select ( ibm , close > ? )");

  // Number shapes: integers, decimals, exponents all collapse to one `?`.
  EXPECT_EQ(NormalizeQueryText("x > 7"), NormalizeQueryText("x > 1.5e-3"));
  // String literals are parameterized too.
  EXPECT_EQ(NormalizeQueryText("name = \"Acme\""),
            NormalizeQueryText("name = \"Globex\""));
  // Layout never matters.
  EXPECT_EQ(NormalizeQueryText("a  >\n\t b"), "a > b");
  // Different shapes stay different.
  EXPECT_NE(NormalizeQueryText("select(s, a > 1)"),
            NormalizeQueryText("select(s, a < 1)"));
}

// --- QueryRegistry ----------------------------------------------------------

TEST(QueryRegistryTest, StartLiveFinishRing) {
  QueryRegistry registry;
  EXPECT_EQ(registry.live_count(), 0u);

  QueryRegistry::Ticket t = registry.Start("q1 text", "q1 digest");
  ASSERT_TRUE(t.active());
  ASSERT_NE(t.telemetry(), nullptr);
  t.telemetry()->rows.store(42, std::memory_order_relaxed);
  t.telemetry()->pages.store(7, std::memory_order_relaxed);
  t.set_state(QueryState::kExecuting);

  std::vector<LiveQueryInfo> live = registry.Live();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].id, t.id());
  EXPECT_EQ(live[0].text, "q1 text");
  EXPECT_EQ(live[0].digest, "q1 digest");
  EXPECT_EQ(live[0].state, QueryState::kExecuting);
  EXPECT_EQ(live[0].rows, 42);
  EXPECT_EQ(live[0].pages, 7);

  CompletedQueryInfo done = t.Finish(true, "OK");
  EXPECT_EQ(done.rows, 42);
  EXPECT_EQ(done.pages, 7);
  EXPECT_TRUE(done.ok);
  EXPECT_EQ(registry.live_count(), 0u);
  EXPECT_EQ(registry.started(), 1);
  EXPECT_EQ(registry.completed(), 1);

  std::vector<CompletedQueryInfo> recent = registry.Recent();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].id, done.id);
  EXPECT_EQ(recent[0].status, "OK");

  // Finish is idempotent: a second call does not double-count.
  t.Finish(true, "OK");
  EXPECT_EQ(registry.completed(), 1);
}

TEST(QueryRegistryTest, RingCapsAtConfiguredSizeNewestFirst) {
  QueryRegistry registry;
  registry.set_ring_capacity(3);
  for (int i = 0; i < 5; ++i) {
    QueryRegistry::Ticket t =
        registry.Start("q" + std::to_string(i), "digest");
    t.Finish(true, "OK");
  }
  std::vector<CompletedQueryInfo> recent = registry.Recent();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[0].text, "q4");  // most recent first
  EXPECT_EQ(recent[1].text, "q3");
  EXPECT_EQ(recent[2].text, "q2");
  EXPECT_EQ(registry.completed(), 5);
}

TEST(QueryRegistryTest, AbandonedTicketFinishesAsInternalFailure) {
  QueryRegistry registry;
  { QueryRegistry::Ticket t = registry.Start("doomed", "doomed"); }
  std::vector<CompletedQueryInfo> recent = registry.Recent();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_FALSE(recent[0].ok);
  EXPECT_EQ(recent[0].status, "Internal");
}

TEST(QueryRegistryTest, DisabledRegistryHandsOutInactiveTickets) {
  QueryRegistry registry;
  registry.set_enabled(false);
  QueryRegistry::Ticket t = registry.Start("q", "q");
  EXPECT_FALSE(t.active());
  EXPECT_EQ(t.telemetry(), nullptr);
  t.set_state(QueryState::kExecuting);  // all no-ops, must not crash
  EXPECT_EQ(t.Finish(true, "OK").id, 0u);
  EXPECT_EQ(registry.started(), 0);
  EXPECT_EQ(registry.Live().size(), 0u);
  EXPECT_EQ(registry.Recent().size(), 0u);
}

TEST(QueryRegistryTest, MovedTicketTransfersOwnership) {
  QueryRegistry registry;
  QueryRegistry::Ticket a = registry.Start("q", "q");
  QueryRegistry::Ticket b = std::move(a);
  EXPECT_FALSE(a.active());
  EXPECT_TRUE(b.active());
  b.Finish(true, "OK");
  EXPECT_EQ(registry.completed(), 1);
}

// --- SlowQueryLog -----------------------------------------------------------

TEST(SlowQueryLogTest, ThresholdSemantics) {
  SlowQueryLog log;
  log.set_threshold_ms(10.0);
  EXPECT_FALSE(log.ShouldLog(9999.0));   // 9.999 ms
  EXPECT_TRUE(log.ShouldLog(10000.0));   // exactly the threshold
  log.set_threshold_ms(0.0);
  EXPECT_TRUE(log.ShouldLog(0.0));       // zero logs everything
  log.set_threshold_ms(-1.0);
  EXPECT_FALSE(log.ShouldLog(1e12));     // negative disables
}

TEST(SlowQueryLogTest, AccumulatesPerDigestAndKeepsWorstExemplar) {
  SlowQueryLog log;
  log.set_threshold_ms(0.0);
  log.Record("q = select ( s , x > ? )", "q = select(s, x > 1)", 1, 1000.0,
             10, 2, "OK");
  log.Record("q = select ( s , x > ? )", "q = select(s, x > 99)", 2, 5000.0,
             50, 8, "OK");
  log.Record("q = select ( s , x > ? )", "q = select(s, x > 5)", 3, 2000.0,
             20, 4, "DeadlineExceeded");
  log.Record("other", "other", 4, 100.0, 1, 1, "OK");

  std::vector<SlowQueryDigestStats> snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  // Sorted by total time descending.
  EXPECT_EQ(snap[0].digest, "q = select ( s , x > ? )");
  EXPECT_EQ(snap[0].count, 3);
  EXPECT_DOUBLE_EQ(snap[0].total_us, 8000.0);
  EXPECT_DOUBLE_EQ(snap[0].min_us, 1000.0);
  EXPECT_DOUBLE_EQ(snap[0].max_us, 5000.0);
  EXPECT_EQ(snap[0].total_rows, 80);
  EXPECT_EQ(snap[0].total_pages, 14);
  // The worst exemplar keeps the original literals of the slowest run.
  EXPECT_EQ(snap[0].worst_text, "q = select(s, x > 99)");
  EXPECT_EQ(snap[0].worst_query_id, 2u);
  EXPECT_DOUBLE_EQ(snap[0].worst_us, 5000.0);
  EXPECT_EQ(snap[0].last_status, "DeadlineExceeded");

  std::string text = log.ToString();
  EXPECT_NE(text.find("q = select ( s , x > ? )"), std::string::npos);
  EXPECT_NE(text.find("q = select(s, x > 99)"), std::string::npos);

  log.Reset();
  EXPECT_EQ(log.Snapshot().size(), 0u);
}

TEST(SlowQueryLogTest, DigestCapCountsDropsWithoutGrowing) {
  SlowQueryLog log;
  log.set_threshold_ms(0.0);
  for (size_t i = 0; i < SlowQueryLog::kMaxDigests + 10; ++i) {
    log.Record("digest" + std::to_string(i), "text", i, 1.0, 0, 0, "OK");
  }
  EXPECT_EQ(log.Snapshot().size(), SlowQueryLog::kMaxDigests);
  EXPECT_EQ(log.dropped_digests(), 10);
  // Known digests keep accumulating even at the cap.
  log.Record("digest0", "text", 999, 1.0, 0, 0, "OK");
  EXPECT_EQ(log.dropped_digests(), 10);
}

// --- engine integration -----------------------------------------------------

class TelemetryEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    QueryRegistry::Global().Reset();
    QueryRegistry::Global().set_enabled(true);
    SlowQueryLog::Global().Reset();
    SlowQueryLog::Global().set_threshold_ms(-1.0);  // quiet by default

    IntSeriesOptions options;
    options.span = Span::Of(0, 1999);
    options.density = 0.9;
    options.seed = 11;
    ASSERT_TRUE(engine_.RegisterBase("s", *MakeIntSeries(options)).ok());
  }
  void TearDown() override {
    SlowQueryLog::Global().Reset();
    SlowQueryLog::Global().set_threshold_ms(100.0);
  }

  Query SelectQuery(int64_t bound) const {
    Query q;
    q.graph = SeqRef("s").Select(Gt(Col("value"), Lit(bound))).Build();
    return q;
  }

  Engine engine_;
};

TEST_F(TelemetryEngineTest, RunLandsInRegistryWithRowsAndPages) {
  const int64_t runs_before = MetricsRegistry::Global().Get("engine.runs");
  auto result = engine_.Run(SelectQuery(500), RunOptions{});
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_GT(result->records.size(), 0u);

  std::vector<CompletedQueryInfo> recent = QueryRegistry::Global().Recent();
  ASSERT_GE(recent.size(), 1u);
  const CompletedQueryInfo& done = recent[0];
  EXPECT_TRUE(done.ok);
  EXPECT_EQ(done.status, "OK");
  EXPECT_EQ(done.rows, static_cast<int64_t>(result->records.size()));
  EXPECT_GT(done.pages, 0);
  EXPECT_GE(done.wall_us, 0);
  // The registry text is the unparsed query; the digest parameterizes it.
  EXPECT_NE(done.text.find("select"), std::string::npos) << done.text;
  EXPECT_NE(done.digest.find("?"), std::string::npos) << done.digest;
  EXPECT_EQ(QueryRegistry::Global().live_count(), 0u);
  EXPECT_EQ(MetricsRegistry::Global().Get("engine.runs"), runs_before + 1);
}

TEST_F(TelemetryEngineTest, FailedRunRecordsFailureStatus) {
  const int64_t failed_before =
      MetricsRegistry::Global().Get("engine.failed_runs");
  Query q;
  q.graph = SeqRef("missing_sequence").Build();
  auto result = engine_.Run(q, RunOptions{});
  ASSERT_FALSE(result.ok());

  std::vector<CompletedQueryInfo> recent = QueryRegistry::Global().Recent();
  ASSERT_GE(recent.size(), 1u);
  EXPECT_FALSE(recent[0].ok);
  EXPECT_NE(recent[0].status, "OK");
  EXPECT_EQ(MetricsRegistry::Global().Get("engine.failed_runs"),
            failed_before + 1);
}

TEST_F(TelemetryEngineTest, SinkRunIsVisibleLiveWhileExecuting) {
  // The sink runs inside execution, so it can observe the registry
  // mid-query — the serial (ExecuteVisit) path with one worker.
  bool saw_live = false;
  LiveQueryInfo observed;
  RunOptions opts;
  opts.sink = [&](Position, const Record&) {
    if (saw_live) return;
    for (const LiveQueryInfo& info : QueryRegistry::Global().Live()) {
      if (info.state == QueryState::kExecuting && info.workers >= 1) {
        observed = info;
        saw_live = true;
      }
    }
  };
  auto result = engine_.Run(SelectQuery(100), opts);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(saw_live);
  EXPECT_NE(observed.text.find("select"), std::string::npos);
  EXPECT_EQ(QueryRegistry::Global().live_count(), 0u);
}

TEST_F(TelemetryEngineTest, ParallelRunReportsMorselsAndWorkers) {
  const int64_t morsels_before = MetricsRegistry::Global().Get("exec.morsels");
  RunOptions opts;
  opts.exec.use_batch = true;  // morsel parallelism needs batch driving,
                               // even when SEQ_USE_BATCH=0 is the default
  opts.exec.parallelism = 4;
  opts.exec.morsel_size = 256;  // ~8 morsels over the 2000-position span
  auto result = engine_.Run(SelectQuery(100), opts);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_GT(result->records.size(), 0u);

  // The run completed: its morsels were counted in the always-on metric
  // and its per-morsel latencies landed in the histogram.
  const int64_t morsels = MetricsRegistry::Global().Get("exec.morsels");
  EXPECT_GE(morsels, morsels_before + 2) << "expected a parallel run";
  EXPECT_GT(
      MetricsRegistry::Global().GetHistogramSnapshot("exec.morsel_us").count,
      0);

  std::vector<CompletedQueryInfo> recent = QueryRegistry::Global().Recent();
  ASSERT_GE(recent.size(), 1u);
  EXPECT_EQ(recent[0].rows, static_cast<int64_t>(result->records.size()));
  EXPECT_GT(recent[0].pages, 0);
}

TEST_F(TelemetryEngineTest, PreparedRunUsesCapturedTextAndDigest) {
  auto prepared = engine_.Prepare(SelectQuery(500));
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  auto result = prepared->Run(RunOptions{});
  ASSERT_TRUE(result.ok()) << result.status();

  std::vector<CompletedQueryInfo> recent = QueryRegistry::Global().Recent();
  ASSERT_GE(recent.size(), 1u);
  EXPECT_NE(recent[0].text.find("select"), std::string::npos);
  EXPECT_NE(recent[0].digest.find("?"), std::string::npos);
  EXPECT_EQ(recent[0].rows, static_cast<int64_t>(result->records.size()));
}

TEST_F(TelemetryEngineTest, SlowLogCapturesRunAtThresholdZero) {
  SlowQueryLog::Global().set_threshold_ms(0.0);
  auto result = engine_.Run(SelectQuery(750), RunOptions{});
  ASSERT_TRUE(result.ok()) << result.status();

  std::vector<SlowQueryDigestStats> snap = SlowQueryLog::Global().Snapshot();
  ASSERT_GE(snap.size(), 1u);
  EXPECT_EQ(snap[0].count, 1);
  EXPECT_NE(snap[0].digest.find("?"), std::string::npos) << snap[0].digest;
  // The exemplar keeps the literal that ran.
  EXPECT_NE(snap[0].worst_text.find("750"), std::string::npos)
      << snap[0].worst_text;

  // Same shape, different literal: one digest, two observations.
  ASSERT_TRUE(engine_.Run(SelectQuery(900), RunOptions{}).ok());
  snap = SlowQueryLog::Global().Snapshot();
  ASSERT_GE(snap.size(), 1u);
  EXPECT_EQ(snap[0].count, 2);
}

TEST_F(TelemetryEngineTest, DisabledRegistrySkipsRegistration) {
  QueryRegistry::Global().set_enabled(false);
  auto result = engine_.Run(SelectQuery(500), RunOptions{});
  QueryRegistry::Global().set_enabled(true);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(QueryRegistry::Global().Recent().size(), 0u);
  EXPECT_EQ(QueryRegistry::Global().started(), 0);
}

// --- exporters --------------------------------------------------------------

TEST_F(TelemetryEngineTest, PrometheusExportHasWellFormedSeries) {
  SlowQueryLog::Global().set_threshold_ms(0.0);
  ASSERT_TRUE(engine_.Run(SelectQuery(500), RunOptions{}).ok());

  TelemetrySnapshot snap = CaptureTelemetry();
  EXPECT_GE(snap.queries_started, 1);
  EXPECT_GE(snap.queries_completed, 1);
  ASSERT_GE(snap.slow.size(), 1u);

  std::string prom = RenderPrometheus(snap);
  // Counter with sanitized name.
  EXPECT_NE(prom.find("# TYPE seq_engine_runs counter"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("\nseq_engine_runs "), std::string::npos);
  // Histogram series: cumulative buckets plus +Inf, _sum and _count.
  EXPECT_NE(prom.find("# TYPE seq_engine_run_us histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("seq_engine_run_us_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("seq_engine_run_us_sum"), std::string::npos);
  EXPECT_NE(prom.find("seq_engine_run_us_count"), std::string::npos);
  // Dist summary and registry gauges.
  EXPECT_NE(prom.find("seq_engine_rows_count"), std::string::npos);
  EXPECT_NE(prom.find("seq_queries_live "), std::string::npos);
  EXPECT_NE(prom.find("seq_queries_started "), std::string::npos);
  EXPECT_NE(prom.find("seq_slow_query_threshold_ms "), std::string::npos);
  // Every non-comment line is "name{labels} value" or "name value".
  size_t pos = 0;
  while (pos < prom.size()) {
    size_t eol = prom.find('\n', pos);
    if (eol == std::string::npos) eol = prom.size();
    std::string line = prom.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_GT(space, 0u) << line;
    // The value parses as a double.
    EXPECT_NO_THROW(std::stod(line.substr(space + 1))) << line;
  }
}

TEST_F(TelemetryEngineTest, JsonExportParsesAndMatchesSnapshot) {
  SlowQueryLog::Global().set_threshold_ms(0.0);
  ASSERT_TRUE(engine_.Run(SelectQuery(500), RunOptions{}).ok());
  ASSERT_TRUE(engine_.Run(SelectQuery(900), RunOptions{}).ok());

  TelemetrySnapshot snap = CaptureTelemetry();
  std::string json = RenderJson(snap);
  JsonValue doc;
  ASSERT_TRUE(JsonParser(json).Parse(&doc)) << json;
  ASSERT_EQ(doc.kind, JsonValue::Kind::kObject);

  const JsonValue* counters = doc.Get("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* runs = counters->Get("engine.runs");
  ASSERT_NE(runs, nullptr);
  EXPECT_EQ(runs->num_value,
            static_cast<double>(snap.counters.at("engine.runs")));

  const JsonValue* queries = doc.Get("queries");
  ASSERT_NE(queries, nullptr);
  EXPECT_EQ(queries->Get("started")->num_value,
            static_cast<double>(snap.queries_started));
  const JsonValue* recent = queries->Get("recent");
  ASSERT_NE(recent, nullptr);
  ASSERT_EQ(recent->kind, JsonValue::Kind::kArray);
  ASSERT_GE(recent->array.size(), 2u);
  const JsonValue& last = recent->array[0];
  EXPECT_EQ(last.Get("status")->str_value, "OK");
  EXPECT_GT(last.Get("rows")->num_value, 0.0);

  const JsonValue* slow = doc.Get("slow_query_log");
  ASSERT_NE(slow, nullptr);
  const JsonValue* digests = slow->Get("digests");
  ASSERT_NE(digests, nullptr);
  ASSERT_GE(digests->array.size(), 1u);
  EXPECT_EQ(digests->array[0].Get("count")->num_value, 2.0);

  const JsonValue* hists = doc.Get("histograms");
  ASSERT_NE(hists, nullptr);
  const JsonValue* run_us = hists->Get("engine.run_us");
  ASSERT_NE(run_us, nullptr);
  EXPECT_GE(run_us->Get("count")->num_value, 2.0);
  EXPECT_NE(run_us->Get("p99"), nullptr);
}

// --- concurrency ------------------------------------------------------------

// Stress the always-on layer the way production uses it: many threads
// running engine queries (registry Start/Finish, counters, histograms,
// slow log) while other threads continuously snapshot everything. Run
// under the ThreadSanitizer CI job; sized to finish quickly there.
TEST_F(TelemetryEngineTest, ConcurrentRunsAndSnapshotsAreRaceFree) {
  SlowQueryLog::Global().set_threshold_ms(0.0);
  constexpr int kWriters = 4;
  constexpr int kRunsPerWriter = 12;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  threads.reserve(kWriters + 2);
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([this, t, &failures] {
      for (int i = 0; i < kRunsPerWriter; ++i) {
        RunOptions opts;
        if (i % 3 == 0) {
          opts.exec.use_batch = true;
          opts.exec.parallelism = 2;
          opts.exec.morsel_size = 512;
        }
        auto result = engine_.Run(SelectQuery(100 + 50 * t + i), opts);
        if (!result.ok()) failures.fetch_add(1);
      }
    });
  }
  // Readers: registry snapshots, full telemetry captures, both exports.
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        (void)QueryRegistry::Global().Live();
        (void)QueryRegistry::Global().Recent();
        TelemetrySnapshot snap = CaptureTelemetry();
        (void)RenderPrometheus(snap);
        (void)RenderJson(snap);
        (void)MetricsRegistry::Global().ToString();
        (void)SlowQueryLog::Global().ToString();
        std::this_thread::yield();
      }
    });
  }
  for (int t = 0; t < kWriters; ++t) threads[t].join();
  stop.store(true);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(QueryRegistry::Global().live_count(), 0u);
  EXPECT_GE(QueryRegistry::Global().completed(), kWriters * kRunsPerWriter);
  std::vector<SlowQueryDigestStats> snap = SlowQueryLog::Global().Snapshot();
  int64_t total = 0;
  for (const SlowQueryDigestStats& d : snap) total += d.count;
  EXPECT_EQ(total, kWriters * kRunsPerWriter);
}

}  // namespace
}  // namespace seq
