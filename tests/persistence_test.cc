// Tests for binary sequence persistence and whole-database save/load.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/database_io.h"
#include "core/engine.h"
#include "storage/file_format.h"
#include "workload/generators.h"

namespace seq {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() / ("seq_test_" + name)).string();
}

class PersistenceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& path : cleanup_) {
      std::error_code ec;
      fs::remove_all(path, ec);
    }
  }
  std::string Track(std::string path) {
    cleanup_.push_back(path);
    return path;
  }
  std::vector<std::string> cleanup_;
};

TEST_F(PersistenceTest, SequenceRoundTrip) {
  SchemaPtr schema = Schema::Make({Field{"i", TypeId::kInt64},
                                   Field{"d", TypeId::kDouble},
                                   Field{"b", TypeId::kBool},
                                   Field{"s", TypeId::kString}});
  AccessCosts costs;
  costs.page_cost = 3.5;
  costs.probe_cost = 7.25;
  costs.clustered = false;
  auto store = std::make_shared<BaseSequenceStore>(schema, 16, costs);
  ASSERT_TRUE(store->DeclareSpan(Span::Of(-5, 100)).ok());
  ASSERT_TRUE(store
                  ->Append(-3, {Value::Int64(-42), Value::Double(2.5),
                                Value::Bool(true), Value::String("hello")})
                  .ok());
  ASSERT_TRUE(store
                  ->Append(7, {Value::Int64(9), Value::Double(-0.25),
                               Value::Bool(false),
                               Value::String("two words")})
                  .ok());
  std::string path = Track(TempPath("roundtrip.seq1"));
  ASSERT_TRUE(SaveSequence(*store, path).ok());

  auto loaded = LoadSequence(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE((*loaded)->schema()->Equals(*schema));
  EXPECT_EQ((*loaded)->span(), Span::Of(-5, 100));
  EXPECT_EQ((*loaded)->records_per_page(), 16);
  EXPECT_DOUBLE_EQ((*loaded)->costs().page_cost, 3.5);
  EXPECT_FALSE((*loaded)->costs().clustered);
  ASSERT_EQ((*loaded)->num_records(), 2);
  EXPECT_EQ((*loaded)->records()[0].pos, -3);
  EXPECT_EQ((*loaded)->records()[0].rec, store->records()[0].rec);
  EXPECT_EQ((*loaded)->records()[1].rec[3].str(), "two words");
}

TEST_F(PersistenceTest, LoadRejectsGarbage) {
  std::string path = Track(TempPath("garbage.seq1"));
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a seq file at all";
  }
  auto r = LoadSequence(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(LoadSequence(TempPath("missing.seq1")).ok());
}

TEST_F(PersistenceTest, LoadRejectsTruncation) {
  SchemaPtr schema = Schema::Make({Field{"v", TypeId::kInt64}});
  auto store = std::make_shared<BaseSequenceStore>(schema, 8);
  for (Position p = 0; p < 50; ++p) {
    ASSERT_TRUE(store->Append(p, {Value::Int64(p)}).ok());
  }
  std::string path = Track(TempPath("trunc.seq1"));
  ASSERT_TRUE(SaveSequence(*store, path).ok());
  // Chop the file.
  auto size = fs::file_size(path);
  fs::resize_file(path, size / 2);
  auto r = LoadSequence(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

TEST_F(PersistenceTest, DatabaseRoundTrip) {
  Engine engine;
  StockSeriesOptions stock;
  stock.span = Span::Of(1, 400);
  stock.density = 0.8;
  stock.seed = 5;
  ASSERT_TRUE(engine.RegisterBase("prices", *MakeStockSeries(stock)).ok());
  IntSeriesOptions ints;
  ints.span = Span::Of(1, 400);
  ints.seed = 6;
  ASSERT_TRUE(engine.RegisterBase("marks", *MakeIntSeries(ints)).ok());
  SchemaPtr cschema = Schema::Make({Field{"k", TypeId::kDouble}});
  ASSERT_TRUE(
      engine.RegisterConstant("limit", cschema, {Value::Double(99.5)}).ok());
  engine.catalog().SetNullCorrelation("prices", "marks", 0.75);
  ASSERT_TRUE(engine
                  .DefineView("warm", SeqRef("prices")
                                          .Select(Gt(Col("close"),
                                                     Lit(100.0)))
                                          .Agg(AggFunc::kAvg, "close", 5)
                                          .Build())
                  .ok());

  std::string dir = Track(TempPath("dbdir"));
  ASSERT_TRUE(SaveDatabase(engine, dir).ok());

  Engine loaded;
  Status s = LoadDatabase(dir, &loaded);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_EQ(loaded.catalog().ListSequences(),
            (std::vector<std::string>{"limit", "marks", "prices"}));
  EXPECT_DOUBLE_EQ(loaded.catalog().NullCorrelation("marks", "prices"),
                   0.75);
  ASSERT_EQ(loaded.views().count("warm"), 1u);

  // The reloaded database answers queries identically.
  auto q = SeqRef("warm").Build();
  auto before = engine.Run(q);
  auto after = loaded.Run(q);
  ASSERT_TRUE(before.ok()) << before.status();
  ASSERT_TRUE(after.ok()) << after.status();
  ASSERT_EQ(before->records.size(), after->records.size());
  for (size_t i = 0; i < before->records.size(); ++i) {
    EXPECT_EQ(before->records[i].pos, after->records[i].pos);
    EXPECT_EQ(before->records[i].rec, after->records[i].rec);
  }

  // Constants survive too.
  auto with_const = loaded.Run(SeqRef("prices")
                                   .ComposeWith(ConstRef("limit"))
                                   .Build());
  ASSERT_TRUE(with_const.ok()) << with_const.status();
  EXPECT_DOUBLE_EQ(with_const->records[0].rec[5].dbl(), 99.5);
}

TEST_F(PersistenceTest, LoadRejectsBadManifest) {
  std::string dir = Track(TempPath("baddb"));
  fs::create_directories(dir);
  {
    std::ofstream out(dir + "/manifest.seqdb");
    out << "seqdb 1\nfrobnicate x y\n";
  }
  Engine engine;
  Status s = LoadDatabase(dir, &engine);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("unknown entry kind"), std::string::npos);
  Engine engine2;
  EXPECT_FALSE(LoadDatabase(TempPath("no_such_dir"), &engine2).ok());
}

}  // namespace
}  // namespace seq
