// Tests for the CSV loader/writer.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "workload/csv.h"

namespace seq {
namespace {

TEST(CsvTest, ParsesTypedColumns) {
  auto store = ParseCsvSequence(
      "day,close,volume,hot,tag\n"
      "1,10.5,100,true,alpha\n"
      "2,11.0,200,false,beta\n"
      "4,9.25,50,true,gamma\n");
  ASSERT_TRUE(store.ok()) << store.status();
  const Schema& schema = *(*store)->schema();
  EXPECT_EQ(schema.ToString(),
            "<close:double, volume:int64, hot:bool, tag:string>");
  EXPECT_EQ((*store)->num_records(), 3);
  EXPECT_EQ((*store)->span(), Span::Of(1, 4));
  const PosRecord& pr = (*store)->records()[2];
  EXPECT_EQ(pr.pos, 4);
  EXPECT_DOUBLE_EQ(pr.rec[0].dbl(), 9.25);
  EXPECT_EQ(pr.rec[1].int64(), 50);
  EXPECT_TRUE(pr.rec[2].boolean());
  EXPECT_EQ(pr.rec[3].str(), "gamma");
}

TEST(CsvTest, IntColumnWithOneFloatBecomesDouble) {
  auto store = ParseCsvSequence("p,v\n1,10\n2,10.5\n");
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->schema()->field(0).type, TypeId::kDouble);
}

TEST(CsvTest, MixedUnparseableBecomesString) {
  auto store = ParseCsvSequence("p,v\n1,10\n2,ten\n");
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->schema()->field(0).type, TypeId::kString);
}

TEST(CsvTest, NamedPositionColumn) {
  CsvOptions by_t;
  by_t.position_column = "t";
  auto store = ParseCsvSequence("v,t\n5.5,10\n6.5,20\n", by_t);
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_EQ((*store)->schema()->ToString(), "<v:double>");
  EXPECT_EQ((*store)->records()[0].pos, 10);
}

TEST(CsvTest, UnsortedRowsAreSorted) {
  auto store = ParseCsvSequence("p,v\n30,3\n10,1\n20,2\n");
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_EQ((*store)->records()[0].pos, 10);
  EXPECT_EQ((*store)->records()[2].pos, 30);
}

TEST(CsvTest, NoHeaderMode) {
  CsvOptions headerless;
  headerless.header = false;
  auto store = ParseCsvSequence("1,5\n2,6\n", headerless);
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_EQ((*store)->schema()->field(0).name, "c1");
}

TEST(CsvTest, Errors) {
  EXPECT_FALSE(ParseCsvSequence("").ok());
  EXPECT_FALSE(ParseCsvSequence("p,v\n1\n").ok());     // arity mismatch
  EXPECT_FALSE(ParseCsvSequence("p,v\nx,1\n").ok());   // bad position
  EXPECT_FALSE(ParseCsvSequence("p,v\n1,1\n1,2\n").ok());  // dup position
  CsvOptions bad_pos;
  bad_pos.position_column = "zz";
  EXPECT_FALSE(ParseCsvSequence("p,v\n1,2\n", bad_pos).ok());
  EXPECT_FALSE(ParseCsvSequence("p\n1\n").ok());  // only the position col
  EXPECT_FALSE(LoadCsvSequence("/no/such/file.csv").ok());
}

TEST(CsvTest, RoundTrip) {
  auto store = ParseCsvSequence(
      "pos,close,volume\n1,10.5,100\n3,11.25,250\n");
  ASSERT_TRUE(store.ok());
  std::string csv = SequenceToCsv(**store);
  auto reparsed = ParseCsvSequence(csv);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  ASSERT_EQ((*reparsed)->num_records(), 2);
  EXPECT_TRUE((*reparsed)->schema()->Equals(*(*store)->schema()));
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ((*reparsed)->records()[i].pos, (*store)->records()[i].pos);
    EXPECT_EQ((*reparsed)->records()[i].rec, (*store)->records()[i].rec);
  }
}

TEST(CsvTest, LoadedSequenceIsQueryable) {
  Engine engine;
  auto store = ParseCsvSequence(
      "day,temp\n1,20.5\n2,21.0\n3,19.0\n5,25.0\n");
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(engine.RegisterBase("weather", *store).ok());
  auto result = engine.Run(
      SeqRef("weather").Select(Gt(Col("temp"), Lit(20.0))).Build());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->records.size(), 3u);
}

}  // namespace
}  // namespace seq
