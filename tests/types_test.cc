// Unit tests for the types module: Span arithmetic, Value semantics,
// Schema operations, Record helpers.

#include <gtest/gtest.h>

#include "types/record.h"
#include "types/schema.h"
#include "types/span.h"
#include "types/value.h"

namespace seq {
namespace {

// --- Span -------------------------------------------------------------------

TEST(SpanTest, DefaultIsEmpty) {
  Span s;
  EXPECT_TRUE(s.IsEmpty());
  EXPECT_EQ(s.Length(), 0);
}

TEST(SpanTest, BasicProperties) {
  Span s = Span::Of(10, 20);
  EXPECT_FALSE(s.IsEmpty());
  EXPECT_FALSE(s.IsUnbounded());
  EXPECT_EQ(s.Length(), 11);
  EXPECT_TRUE(s.Contains(10));
  EXPECT_TRUE(s.Contains(20));
  EXPECT_FALSE(s.Contains(9));
  EXPECT_FALSE(s.Contains(21));
}

TEST(SpanTest, PointSpan) {
  Span s = Span::Point(5);
  EXPECT_EQ(s.Length(), 1);
  EXPECT_TRUE(s.Contains(5));
}

TEST(SpanTest, UnboundedProperties) {
  Span u = Span::Unbounded();
  EXPECT_TRUE(u.IsUnbounded());
  EXPECT_FALSE(u.IsEmpty());
  EXPECT_TRUE(u.Contains(0));
  EXPECT_TRUE(u.Contains(kMaxPosition));
}

TEST(SpanTest, IntersectOverlapping) {
  EXPECT_EQ(Span::Of(1, 10).Intersect(Span::Of(5, 20)), Span::Of(5, 10));
}

TEST(SpanTest, IntersectDisjointIsEmpty) {
  EXPECT_TRUE(Span::Of(1, 4).Intersect(Span::Of(5, 9)).IsEmpty());
}

TEST(SpanTest, IntersectWithEmpty) {
  EXPECT_TRUE(Span::Of(1, 10).Intersect(Span::Empty()).IsEmpty());
  EXPECT_TRUE(Span::Empty().Intersect(Span::Of(1, 10)).IsEmpty());
}

TEST(SpanTest, IntersectWithUnbounded) {
  EXPECT_EQ(Span::Of(3, 7).Intersect(Span::Unbounded()), Span::Of(3, 7));
}

TEST(SpanTest, HullMergesAndIgnoresEmpty) {
  EXPECT_EQ(Span::Of(1, 3).Hull(Span::Of(10, 12)), Span::Of(1, 12));
  EXPECT_EQ(Span::Empty().Hull(Span::Of(2, 4)), Span::Of(2, 4));
  EXPECT_EQ(Span::Of(2, 4).Hull(Span::Empty()), Span::Of(2, 4));
}

TEST(SpanTest, ShiftMovesBothBounds) {
  EXPECT_EQ(Span::Of(5, 10).Shift(3), Span::Of(8, 13));
  EXPECT_EQ(Span::Of(5, 10).Shift(-5), Span::Of(0, 5));
}

TEST(SpanTest, ShiftKeepsSentinelsSticky) {
  Span u = Span::Unbounded();
  EXPECT_TRUE(u.Shift(1000).IsUnbounded());
  Span half = Span::Of(kMinPosition, 100);
  Span shifted = half.Shift(10);
  EXPECT_EQ(shifted.start, kMinPosition);
  EXPECT_EQ(shifted.end, 110);
}

TEST(SpanTest, ExtendEnd) {
  EXPECT_EQ(Span::Of(1, 5).ExtendEnd(3), Span::Of(1, 8));
  EXPECT_TRUE(Span::Empty().ExtendEnd(3).IsEmpty());
}

TEST(SpanTest, EqualityTreatsAllEmptyAsEqual) {
  EXPECT_EQ(Span::Empty(), Span::Of(10, 5));
  EXPECT_NE(Span::Of(1, 2), Span::Of(1, 3));
}

TEST(SpanTest, ToStringForms) {
  EXPECT_EQ(Span::Of(1, 5).ToString(), "[1,5]");
  EXPECT_EQ(Span::Empty().ToString(), "(empty)");
  EXPECT_EQ(Span::Unbounded().ToString(), "[-inf,+inf]");
}

// --- Value ------------------------------------------------------------------

TEST(ValueTest, TypeAccessors) {
  EXPECT_EQ(Value::Int64(3).int64(), 3);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).dbl(), 2.5);
  EXPECT_TRUE(Value::Bool(true).boolean());
  EXPECT_EQ(Value::String("abc").str(), "abc");
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value::Int64(3).Compare(Value::Double(3.0)), 0);
  EXPECT_LT(Value::Int64(3).Compare(Value::Double(3.5)), 0);
  EXPECT_GT(Value::Double(4.0).Compare(Value::Int64(3)), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value::String("apple").Compare(Value::String("banana")), 0);
  EXPECT_EQ(Value::String("x").Compare(Value::String("x")), 0);
}

TEST(ValueTest, BoolComparison) {
  EXPECT_LT(Value::Bool(false).Compare(Value::Bool(true)), 0);
  EXPECT_EQ(Value::Bool(true), Value::Bool(true));
}

TEST(ValueTest, EqualNumericsHashEqual) {
  EXPECT_EQ(Value::Int64(7).Hash(), Value::Double(7.0).Hash());
}

TEST(ValueTest, AsDoubleCoercesIntegers) {
  EXPECT_DOUBLE_EQ(Value::Int64(4).AsDouble(), 4.0);
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Int64(42).ToString(), "42");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::String("hi").ToString(), "\"hi\"");
}

TEST(ValueTest, TypeNames) {
  EXPECT_STREQ(TypeName(TypeId::kInt64), "int64");
  EXPECT_STREQ(TypeName(TypeId::kString), "string");
  EXPECT_TRUE(IsNumeric(TypeId::kDouble));
  EXPECT_FALSE(IsNumeric(TypeId::kBool));
}

// --- Schema -----------------------------------------------------------------

SchemaPtr TwoFields() {
  return Schema::Make(
      {Field{"a", TypeId::kInt64}, Field{"b", TypeId::kDouble}});
}

TEST(SchemaTest, FindField) {
  SchemaPtr s = TwoFields();
  EXPECT_EQ(*s->FindField("a"), 0u);
  EXPECT_EQ(*s->FindField("b"), 1u);
  EXPECT_FALSE(s->FindField("c").has_value());
}

TEST(SchemaTest, FieldIndexErrors) {
  SchemaPtr s = TwoFields();
  EXPECT_TRUE(s->FieldIndex("a").ok());
  auto missing = s->FieldIndex("zzz");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, ProjectReordersAndRenames) {
  SchemaPtr s = TwoFields();
  SchemaPtr p = s->Project({1, 0}, {"bee", ""});
  ASSERT_EQ(p->num_fields(), 2u);
  EXPECT_EQ(p->field(0).name, "bee");
  EXPECT_EQ(p->field(0).type, TypeId::kDouble);
  EXPECT_EQ(p->field(1).name, "a");
}

TEST(SchemaTest, ConcatWithoutClash) {
  SchemaPtr l = TwoFields();
  SchemaPtr r = Schema::Make({Field{"c", TypeId::kBool}});
  SchemaPtr c = Schema::Concat(*l, *r);
  ASSERT_EQ(c->num_fields(), 3u);
  EXPECT_EQ(c->field(2).name, "c");
}

TEST(SchemaTest, ConcatRenamesClashes) {
  SchemaPtr l = TwoFields();
  SchemaPtr c = Schema::Concat(*l, *l);
  ASSERT_EQ(c->num_fields(), 4u);
  EXPECT_EQ(c->field(2).name, "a_r");
  EXPECT_EQ(c->field(3).name, "b_r");
}

TEST(SchemaTest, ConcatRenamesRepeatedClashes) {
  SchemaPtr one = Schema::Make({Field{"x", TypeId::kInt64}});
  SchemaPtr two = Schema::Concat(*one, *one);  // x, x_r
  SchemaPtr three = Schema::Concat(*two, *one);
  ASSERT_EQ(three->num_fields(), 3u);
  EXPECT_EQ(three->field(2).name, "x_r2");
}

TEST(SchemaTest, ConcatFieldsTrackOrigins) {
  SchemaPtr l = TwoFields();
  SchemaPtr r = Schema::Make({Field{"a", TypeId::kBool}});
  auto origins = Schema::ConcatFields(*l, *r);
  ASSERT_EQ(origins.size(), 3u);
  EXPECT_EQ(origins[0].side, 0);
  EXPECT_EQ(origins[0].out_name, "a");
  EXPECT_EQ(origins[2].side, 1);
  EXPECT_EQ(origins[2].index, 0u);
  EXPECT_EQ(origins[2].out_name, "a_r");
}

TEST(SchemaTest, ToStringListsFields) {
  EXPECT_EQ(TwoFields()->ToString(), "<a:int64, b:double>");
}

// --- Record -----------------------------------------------------------------

TEST(RecordTest, MatchesSchema) {
  SchemaPtr s = TwoFields();
  Record good{Value::Int64(1), Value::Double(2.0)};
  Record wrong_arity{Value::Int64(1)};
  Record wrong_type{Value::Int64(1), Value::Bool(true)};
  EXPECT_TRUE(RecordMatchesSchema(good, *s));
  EXPECT_FALSE(RecordMatchesSchema(wrong_arity, *s));
  EXPECT_FALSE(RecordMatchesSchema(wrong_type, *s));
}

TEST(RecordTest, ToStringIncludesNamesAndPosition) {
  SchemaPtr s = TwoFields();
  PosRecord pr{7, Record{Value::Int64(1), Value::Double(2.5)}};
  EXPECT_EQ(PosRecordToString(pr, *s), "7: (a=1, b=2.5)");
}

}  // namespace
}  // namespace seq
