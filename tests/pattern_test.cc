// Tests for the composite-event pattern compiler: hand-checked scenarios
// plus a brute-force matcher oracle over random event streams.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/engine.h"
#include "pattern/pattern.h"

namespace seq {
namespace {

SchemaPtr EventSchema() {
  return Schema::Make({Field{"kind", TypeId::kString}});
}

BaseSequencePtr Events(
    std::initializer_list<std::pair<Position, const char*>> events) {
  auto store = std::make_shared<BaseSequenceStore>(EventSchema(), 8);
  for (auto [pos, kind] : events) {
    EXPECT_TRUE(store->Append(pos, Record{Value::String(kind)}).ok());
  }
  return store;
}

ExprPtr Kind(const char* k) { return Eq(Col("kind"), Lit(k)); }

std::vector<Position> MatchPositions(Engine* engine, const Pattern& pattern,
                                     Span range) {
  auto graph = pattern.Compile(engine->catalog(), "events");
  EXPECT_TRUE(graph.ok()) << graph.status();
  auto result = engine->Run(*graph, range);
  EXPECT_TRUE(result.ok()) << result.status();
  std::vector<Position> out;
  for (const PosRecord& pr : result->records) out.push_back(pr.pos);
  return out;
}

TEST(PatternTest, SingleStepIsSelection) {
  Engine engine;
  ASSERT_TRUE(engine
                  .RegisterBase("events", Events({{1, "a"},
                                                  {2, "b"},
                                                  {5, "a"}}))
                  .ok());
  Pattern p = Pattern::Start(Kind("a"));
  EXPECT_EQ(MatchPositions(&engine, p, Span::Of(1, 10)),
            (std::vector<Position>{1, 5}));
}

TEST(PatternTest, TwoStepWithinGap) {
  Engine engine;
  // a@1, b@3 (gap 2 after a), b@10 (too far), a@12, b@13.
  ASSERT_TRUE(engine
                  .RegisterBase("events", Events({{1, "a"},
                                                  {3, "b"},
                                                  {10, "b"},
                                                  {12, "a"},
                                                  {13, "b"}}))
                  .ok());
  Pattern p = Pattern::Start(Kind("a")).Then(Kind("b"), 3);
  EXPECT_EQ(MatchPositions(&engine, p, Span::Of(1, 20)),
            (std::vector<Position>{3, 13}));
}

TEST(PatternTest, GapIsStrictlyAfter) {
  Engine engine;
  // a and b at the same position do NOT chain (step requires j < i).
  ASSERT_TRUE(
      engine.RegisterBase("events", Events({{5, "a"}, {6, "b"}})).ok());
  Pattern same = Pattern::Start(Kind("a")).Then(Kind("a"), 5);
  EXPECT_TRUE(MatchPositions(&engine, same, Span::Of(1, 10)).empty());
  Pattern p = Pattern::Start(Kind("a")).Then(Kind("b"), 1);
  EXPECT_EQ(MatchPositions(&engine, p, Span::Of(1, 10)),
            (std::vector<Position>{6}));
}

TEST(PatternTest, ThreeStepFraudShape) {
  Engine engine;
  // Two failed logins within 10 of each other, then a transfer within 100.
  ASSERT_TRUE(engine
                  .RegisterBase(
                      "events",
                      Events({{1, "login_fail"},
                              {5, "login_fail"},      // chains with @1
                              {50, "transfer"},        // within 100 of @5
                              {300, "login_fail"},
                              {400, "transfer"}}))     // no 2nd fail near 300
                  .ok());
  Pattern p = Pattern::Start(Kind("login_fail"))
                  .Then(Kind("login_fail"), 10)
                  .Then(Kind("transfer"), 100);
  EXPECT_EQ(MatchPositions(&engine, p, Span::Of(1, 500)),
            (std::vector<Position>{50}));
}

TEST(PatternTest, Errors) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterBase("events", Events({{1, "a"}})).ok());
  Pattern bad_gap = Pattern::Start(Kind("a")).Then(Kind("b"), 0);
  EXPECT_FALSE(bad_gap.Compile(engine.catalog(), "events").ok());
  Pattern p = Pattern::Start(Kind("a"));
  EXPECT_FALSE(p.Compile(engine.catalog(), "ghost").ok());
}

// Brute-force oracle: dynamic-programming match over the raw event list.
std::vector<Position> BruteForce(
    const std::vector<std::pair<Position, std::string>>& events,
    const std::vector<std::pair<std::string, int64_t>>& steps) {
  // match[k] = positions where step k matched.
  std::vector<std::vector<Position>> match(steps.size());
  for (const auto& [pos, kind] : events) {
    if (kind == steps[0].first) match[0].push_back(pos);
  }
  for (size_t k = 1; k < steps.size(); ++k) {
    for (const auto& [pos, kind] : events) {
      if (kind != steps[k].first) continue;
      for (Position j : match[k - 1]) {
        if (j < pos && j >= pos - steps[k].second) {
          match[k].push_back(pos);
          break;
        }
      }
    }
  }
  return match.back();
}

class PatternOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PatternOracleTest, CompiledPatternMatchesBruteForce) {
  Rng rng(GetParam());
  const char* kinds[] = {"a", "b", "c"};
  std::vector<std::pair<Position, std::string>> events;
  Position p = 0;
  for (int i = 0; i < 120; ++i) {
    p += rng.UniformInt(1, 6);
    events.emplace_back(p, kinds[rng.UniformInt(0, 2)]);
  }
  Engine engine;
  auto store = std::make_shared<BaseSequenceStore>(EventSchema(), 16);
  for (const auto& [pos, kind] : events) {
    ASSERT_TRUE(store->Append(pos, Record{Value::String(kind)}).ok());
  }
  ASSERT_TRUE(engine.RegisterBase("events", store).ok());

  for (int trial = 0; trial < 4; ++trial) {
    int64_t g1 = rng.UniformInt(1, 12);
    int64_t g2 = rng.UniformInt(1, 12);
    Pattern pattern = Pattern::Start(Kind("a"))
                          .Then(Kind("b"), g1)
                          .Then(Kind("c"), g2);
    std::vector<Position> got =
        MatchPositions(&engine, pattern, Span::Of(0, p + 20));
    std::vector<Position> want =
        BruteForce(events, {{"a", 0}, {"b", g1}, {"c", g2}});
    EXPECT_EQ(got, want) << "g1=" << g1 << " g2=" << g2;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatternOracleTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace seq
