// Fault-matrix robustness suite: every operator shape is driven in both
// access modes (range stream / point probes) and both driving modes
// (batch / tuple) under deterministic injected faults at every fault
// site, sweeping the trigger count. The invariants:
//
//   * never a crash (ASan/UBSan in CI also check: never a leak),
//   * the query returns a non-OK Status exactly when the injector fired,
//   * an armed-but-unfired injector changes nothing: identical rows and
//     identical AccessStats vs the fault-free baseline.
//
// Plus the budget guards (rows/pages/deadline/cancel) and the graceful
// cache-degradation path (Engine re-plans cache-free instead of failing).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.h"
#include "exec/checkpoint.h"
#include "exec/exec_context.h"
#include "exec/fault_injector.h"
#include "exec/stream_session.h"
#include "workload/generators.h"

namespace seq {
namespace {

struct Shape {
  std::string name;
  LogicalOpPtr graph;
};

struct Outcome {
  Status status = Status::OK();
  QueryResult result;
  AccessStats stats;
};

void ExpectSameStats(const AccessStats& want, const AccessStats& got,
                     const std::string& label) {
  EXPECT_EQ(want.stream_records, got.stream_records) << label;
  EXPECT_EQ(want.stream_pages, got.stream_pages) << label;
  EXPECT_EQ(want.probes, got.probes) << label;
  EXPECT_EQ(want.probe_pages, got.probe_pages) << label;
  EXPECT_EQ(want.cache_stores, got.cache_stores) << label;
  EXPECT_EQ(want.cache_hits, got.cache_hits) << label;
  EXPECT_EQ(want.predicate_evals, got.predicate_evals) << label;
  EXPECT_EQ(want.agg_steps, got.agg_steps) << label;
  EXPECT_EQ(want.records_output, got.records_output) << label;
  // The armed-but-unfired path may take the per-record loop instead of the
  // bulk charge: same events, different summation order.
  EXPECT_NEAR(want.simulated_cost, got.simulated_cost,
              1e-9 * (1.0 + std::abs(want.simulated_cost)))
      << label;
}

void ExpectSameRows(const QueryResult& want, const QueryResult& got,
                    const std::string& label) {
  ASSERT_EQ(want.records.size(), got.records.size()) << label;
  for (size_t i = 0; i < want.records.size(); ++i) {
    EXPECT_EQ(want.records[i].pos, got.records[i].pos) << label << " row "
                                                       << i;
    ASSERT_EQ(want.records[i].rec.size(), got.records[i].rec.size())
        << label << " row " << i;
    for (size_t j = 0; j < want.records[i].rec.size(); ++j) {
      EXPECT_EQ(want.records[i].rec[j], got.records[i].rec[j])
          << label << " row " << i << " col " << j;
    }
  }
}

class FaultMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    IntSeriesOptions dense;
    dense.span = Span::Of(0, 63);
    dense.density = 1.0;
    dense.seed = 7;
    dense.records_per_page = 16;
    ASSERT_TRUE(engine_.RegisterBase("s", *MakeIntSeries(dense)).ok());
    IntSeriesOptions sparse;
    sparse.span = Span::Of(0, 63);
    sparse.density = 0.6;
    sparse.seed = 9;
    sparse.records_per_page = 16;
    ASSERT_TRUE(engine_.RegisterBase("sp", *MakeIntSeries(sparse)).ok());
    SchemaPtr cschema = Schema::Make({Field{"k", TypeId::kInt64}});
    ASSERT_TRUE(
        engine_.RegisterConstant("c", cschema, Record{Value::Int64(7)})
            .ok());
  }

  // One query per operator kind (plus a deep chain); which physical
  // operator serves each (cached vs naive, lockstep vs probe) depends on
  // the access mode and the cache ablation toggled by the matrix.
  std::vector<Shape> Shapes() const {
    return {
        {"scan", SeqRef("s").Build()},
        {"constant", ConstRef("c").Build()},
        {"select",
         SeqRef("s").Select(Gt(Col("value"), Lit(int64_t{300}))).Build()},
        {"project", SeqRef("s").Project({"value"}).Build()},
        {"pos-offset", SeqRef("s").Offset(3).Build()},
        {"value-offset", SeqRef("sp").Prev().Build()},
        {"window-agg", SeqRef("s").Agg(AggFunc::kAvg, "value", 8).Build()},
        {"running-agg",
         SeqRef("s").RunningAgg(AggFunc::kSum, "value").Build()},
        {"overall-agg",
         SeqRef("s").OverallAgg(AggFunc::kMax, "value").Build()},
        {"compose-pred",
         SeqRef("s")
             .ComposeWith(SeqRef("sp"), Gt(Col("value", 0), Col("value", 1)))
             .Build()},
        {"compose-offset",
         SeqRef("s").ComposeWith(SeqRef("sp").Prev()).Build()},
        {"collapse",
         SeqRef("s").Collapse(4, AggFunc::kSum, "value").Build()},
        {"expand",
         SeqRef("s").Collapse(4, AggFunc::kAvg, "value").Expand(4).Build()},
        {"chain", SeqRef("s")
                      .Select(Gt(Col("value"), Lit(int64_t{100})))
                      .Agg(AggFunc::kMin, "value", 5)
                      .Offset(1)
                      .Build()},
    };
  }

  Outcome RunShape(const Shape& shape, bool probed) {
    Outcome out;
    RunOptions opts = run_opts_;
    opts.stats = &out.stats;
    Result<QueryResult> r =
        probed ? engine_.RunAt(shape.graph, {5, 9, 22, 41}, opts)
               : engine_.Run(shape.graph, Span::Of(0, 63), opts);
    out.status = r.status();
    if (r.ok()) out.result = std::move(r).value();
    return out;
  }

  Engine engine_;
  // Per-query execution knobs the matrix sweeps; RunShape copies these
  // into each run instead of mutating engine-wide state.
  RunOptions run_opts_;
};

TEST_F(FaultMatrixTest, TriggerSweepAcrossShapesModesAndSites) {
  const FaultSite kSites[] = {FaultSite::kPageRead, FaultSite::kOperatorOpen,
                              FaultSite::kExprEval};
  const int64_t kTriggers[] = {1, 2, 7, 1000000000};
  for (bool disable_caches : {false, true}) {
    engine_.options().cost_params.disable_window_cache = disable_caches;
    engine_.options().cost_params.disable_incremental_value_offset =
        disable_caches;
    for (const Shape& shape : Shapes()) {
      for (bool use_batch : {true, false}) {
        run_opts_.exec.use_batch = use_batch;
        for (bool probed : {false, true}) {
          std::string ctx = shape.name +
                            (use_batch ? " [batch" : " [tuple") +
                            (probed ? ",probed" : ",stream") +
                            (disable_caches ? ",nocache]" : ",cached]");
          run_opts_.exec.fault_injector = nullptr;
          Outcome baseline = RunShape(shape, probed);
          ASSERT_TRUE(baseline.status.ok())
              << ctx << ": " << baseline.status;
          for (FaultSite site : kSites) {
            for (int64_t k : kTriggers) {
              FaultInjector injector(/*seed=*/42);
              injector.ArmAfter(site, k);
              run_opts_.exec.fault_injector = &injector;
              Outcome got = RunShape(shape, probed);
              std::string label = ctx + " site=" +
                                  FaultSiteName(site) + " k=" +
                                  std::to_string(k);
              if (injector.fired() > 0) {
                EXPECT_FALSE(got.status.ok()) << label;
                EXPECT_NE(got.status.message().find("injected fault"),
                          std::string::npos)
                    << label << ": " << got.status;
              } else {
                ASSERT_TRUE(got.status.ok())
                    << label << ": " << got.status;
                ExpectSameRows(baseline.result, got.result, label);
                ExpectSameStats(baseline.stats, got.stats, label);
              }
            }
          }
          run_opts_.exec.fault_injector = nullptr;
        }
      }
    }
  }
}

TEST_F(FaultMatrixTest, CheckpointSiteTriggerSweep) {
  // Checkpoint fault sites, same contract as the storage/operator sites:
  // a fired kCheckpointWrite fails the suspending run closed and the torn
  // file it leaves behind refuses to resume (DataLoss); a fired
  // kCheckpointRead fails Resume closed (DataLoss). Armed-but-unfired
  // injectors change nothing — the suspend/resume chain still reproduces
  // the uninterrupted checkpointed run's rows and stats.
  Query query;
  query.graph = SeqRef("s").Agg(AggFunc::kAvg, "value", 8).Build();
  query.range = Span::Of(0, 63);
  const std::string path =
      ::testing::TempDir() + "fault_matrix_checkpoint.ckpt";

  for (bool use_batch : {true, false}) {
    const std::string ctx = use_batch ? "[batch]" : "[tuple]";
    RunOptions opts;
    opts.exec.use_batch = use_batch;
    opts.exec.checkpoint.enabled = true;
    opts.exec.checkpoint.chunk = 8;
    opts.exec.checkpoint.suspend_every_chunks = 1;
    opts.exec.checkpoint.path = path;

    AccessStats baseline_stats;
    RunOptions baseline_opts = opts;
    baseline_opts.exec.checkpoint.suspend_every_chunks = 0;
    baseline_opts.stats = &baseline_stats;
    Result<QueryResult> baseline = engine_.Run(query, baseline_opts);
    ASSERT_TRUE(baseline.ok()) << ctx << ": " << baseline.status();

    for (int64_t k : {int64_t{1}, int64_t{2}, int64_t{1000000000}}) {
      {
        FaultInjector injector(/*seed=*/42);
        injector.ArmAfter(FaultSite::kCheckpointWrite, k);
        AccessStats stats;
        RunOptions attempt = opts;
        attempt.exec.fault_injector = &injector;
        attempt.stats = &stats;
        std::string label =
            ctx + " site=checkpoint-write k=" + std::to_string(k);
        Result<QueryResult> r = engine_.Run(query, attempt);
        int resumes = 0;
        while (!r.ok() && IsQuerySuspended(r.status())) {
          ASSERT_LT(++resumes, 100) << label;
          r = engine_.Resume(path, attempt);
        }
        if (injector.fired() > 0) {
          ASSERT_FALSE(r.ok()) << label;
          EXPECT_NE(r.status().message().find("injected fault"),
                    std::string::npos)
              << label << ": " << r.status();
          Result<QueryResult> torn = engine_.Resume(path);
          ASSERT_FALSE(torn.ok()) << label;
          EXPECT_EQ(torn.status().code(), StatusCode::kDataLoss) << label;
        } else {
          ASSERT_TRUE(r.ok()) << label << ": " << r.status();
          ExpectSameRows(baseline.value(), r.value(), label);
          ExpectSameStats(baseline_stats, stats, label);
        }
        std::remove(path.c_str());
      }
      {
        // Suspend cleanly, then resume under an armed read fault; the
        // resumed leg runs to completion so exactly one checkpoint read
        // happens (k=1 fires, larger triggers stay armed-but-unfired).
        Result<QueryResult> r = engine_.Run(query, opts);
        ASSERT_TRUE(!r.ok() && IsQuerySuspended(r.status()))
            << ctx << ": " << r.status();

        FaultInjector injector(/*seed=*/42);
        injector.ArmAfter(FaultSite::kCheckpointRead, k);
        AccessStats stats;
        RunOptions resume_opts = opts;
        resume_opts.exec.fault_injector = &injector;
        resume_opts.stats = &stats;
        resume_opts.exec.checkpoint.suspend_every_chunks = 0;
        std::string label =
            ctx + " site=checkpoint-read k=" + std::to_string(k);
        Result<QueryResult> resumed = engine_.Resume(path, resume_opts);
        if (injector.fired() > 0) {
          ASSERT_FALSE(resumed.ok()) << label;
          EXPECT_EQ(resumed.status().code(), StatusCode::kDataLoss) << label;
          EXPECT_NE(resumed.status().message().find("injected fault"),
                    std::string::npos)
              << label << ": " << resumed.status();
        } else {
          ASSERT_TRUE(resumed.ok()) << label << ": " << resumed.status();
          ExpectSameRows(baseline.value(), resumed.value(), label);
          ExpectSameStats(baseline_stats, stats, label);
        }
        std::remove(path.c_str());
      }
    }
  }
}

TEST_F(FaultMatrixTest, RandomizedProbabilityFaults) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    for (const Shape& shape : Shapes()) {
      for (bool use_batch : {true, false}) {
        run_opts_.exec.use_batch = use_batch;
        FaultInjector injector(seed);
        injector.ArmProbability(FaultSite::kPageRead, 0.02);
        injector.ArmProbability(FaultSite::kOperatorOpen, 0.02);
        injector.ArmProbability(FaultSite::kExprEval, 0.02);
        run_opts_.exec.fault_injector = &injector;
        Outcome got = RunShape(shape, /*probed=*/false);
        std::string label = shape.name + " seed=" + std::to_string(seed);
        EXPECT_EQ(got.status.ok(), injector.fired() == 0)
            << label << ": " << got.status;
        run_opts_.exec.fault_injector = nullptr;
      }
    }
  }
}

// --- budgets ----------------------------------------------------------------

TEST_F(FaultMatrixTest, RowBudgetTripsCleanly) {
  RunOptions opts;
  opts.exec.guards.max_rows = 10;
  auto r = engine_.Run(SeqRef("s").Build(), Span::Of(0, 63), opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find("row budget"), std::string::npos);
}

TEST_F(FaultMatrixTest, PageBudgetTripsEvenWithoutCallerStats) {
  RunOptions opts;
  opts.exec.guards.max_pages = 1;
  // No AccessStats passed: the executor must supply its own counters so
  // the page budget still binds (4 pages of 16 records here).
  auto r = engine_.Run(SeqRef("s").Build(), Span::Of(0, 63), opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find("page-access budget"),
            std::string::npos);
}

TEST_F(FaultMatrixTest, DeadlineTripsOnLongQuery) {
  RunOptions opts;
  opts.exec.guards.max_wall_ms = 1;
  // A dense constant over half a million positions takes well over 1ms to
  // drive; the deadline check at batch boundaries must stop it cleanly.
  auto r = engine_.Run(ConstRef("c").Build(), Span::Of(1, 500000), opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(FaultMatrixTest, CancellationFlagStopsQuery) {
  std::atomic<bool> cancel{true};
  RunOptions opts;
  opts.exec.guards.cancel = &cancel;
  auto r = engine_.Run(SeqRef("s").Build(), Span::Of(0, 63), opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST_F(FaultMatrixTest, BudgetsUnarmedChangeNothing) {
  AccessStats plain;
  auto base = engine_.Run(SeqRef("s").Agg(AggFunc::kAvg, "value", 8).Build(),
                          Span::Of(0, 63), &plain);
  ASSERT_TRUE(base.ok());
  RunOptions opts;
  opts.exec.guards.max_rows = 1000000;
  opts.exec.guards.max_pages = 1000000;
  opts.exec.guards.max_wall_ms = 60000;
  AccessStats guarded;
  opts.stats = &guarded;
  auto got = engine_.Run(SeqRef("s").Agg(AggFunc::kAvg, "value", 8).Build(),
                         Span::Of(0, 63), opts);
  ASSERT_TRUE(got.ok()) << got.status();
  ExpectSameRows(*base, *got, "generous budgets");
  ExpectSameStats(plain, guarded, "generous budgets");
}

// --- graceful cache degradation ---------------------------------------------

TEST_F(FaultMatrixTest, WindowCacheBudgetDegradesInsteadOfFailing) {
  auto query = SeqRef("s").Agg(AggFunc::kAvg, "value", 16).Build();
  auto baseline = engine_.Run(query, Span::Of(0, 63));
  ASSERT_TRUE(baseline.ok());
  // A 16-entry Cache-A window cannot fit in 64 bytes; the engine must
  // re-plan cache-free and still answer, with the event in the profile.
  RunOptions opts;
  opts.exec.guards.max_cache_bytes = 64;
  auto degraded = engine_.Run(query, Span::Of(0, 63), opts);
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  ExpectSameRows(*baseline, *degraded, "window degradation");

  Query q;
  q.graph = query;
  q.range = Span::Of(0, 63);
  opts.profile = true;
  auto profiled = engine_.Run(q, opts);
  ASSERT_TRUE(profiled.ok()) << profiled.status();
  ASSERT_TRUE(profiled->profile.has_value());
  ASSERT_FALSE(profiled->profile->notes.empty());
  EXPECT_NE(profiled->profile->notes[0].find("degraded"), std::string::npos);
  EXPECT_NE(profiled->profile->ToString().find("degraded"),
            std::string::npos);
}

TEST_F(FaultMatrixTest, ValueOffsetCacheBudgetDegradesInsteadOfFailing) {
  auto query = SeqRef("sp").Prev().Build();
  auto baseline = engine_.Run(query, Span::Of(0, 63));
  ASSERT_TRUE(baseline.ok());
  RunOptions opts;
  opts.exec.guards.max_cache_bytes = 16;
  auto degraded = engine_.Run(query, Span::Of(0, 63), opts);
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  ExpectSameRows(*baseline, *degraded, "value-offset degradation");
}

TEST_F(FaultMatrixTest, MaterializationsAreExemptFromCacheBudget) {
  // Running-aggregate checkpoints are a materialization, not an operator
  // cache: a tiny cache budget must not fail or degrade the query.
  RunOptions opts;
  opts.exec.guards.max_cache_bytes = 16;
  opts.profile = true;
  Query q;
  q.graph = SeqRef("s").RunningAgg(AggFunc::kSum, "value").Build();
  q.positions = {5, 9, 22};
  auto profiled = engine_.Run(q, opts);
  ASSERT_TRUE(profiled.ok()) << profiled.status();
  ASSERT_TRUE(profiled->profile.has_value());
  for (const std::string& note : profiled->profile->notes) {
    EXPECT_EQ(note.find("degraded"), std::string::npos) << note;
  }
}

TEST(StreamSessionDegradationTest, PollFallsBackToCacheFreePlans) {
  Catalog catalog;
  SchemaPtr schema = Schema::Make({Field{"v", TypeId::kInt64}});
  auto store = std::make_shared<BaseSequenceStore>(schema, 16);
  ASSERT_TRUE(catalog.RegisterBase("live", store).ok());
  ExecOptions exec_options;
  exec_options.guards.max_cache_bytes = 64;
  StreamSession session(&catalog,
                        SeqRef("live").Agg(AggFunc::kSum, "v", 16).Build(),
                        OptimizerOptions{}, 1024, exec_options);
  for (Position p = 0; p < 64; ++p) {
    ASSERT_TRUE(session.Append("live", p, {Value::Int64(p)}).ok());
  }
  auto rows = session.Poll();
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_TRUE(session.degraded());
  EXPECT_FALSE(rows->empty());

  // Same data, no budget: the undegraded session must agree.
  Catalog catalog2;
  auto store2 = std::make_shared<BaseSequenceStore>(schema, 16);
  ASSERT_TRUE(catalog2.RegisterBase("live", store2).ok());
  StreamSession plain(&catalog2,
                      SeqRef("live").Agg(AggFunc::kSum, "v", 16).Build());
  for (Position p = 0; p < 64; ++p) {
    ASSERT_TRUE(plain.Append("live", p, {Value::Int64(p)}).ok());
  }
  auto expected = plain.Poll();
  ASSERT_TRUE(expected.ok());
  EXPECT_FALSE(plain.degraded());
  ASSERT_EQ(rows->size(), expected->size());
  for (size_t i = 0; i < rows->size(); ++i) {
    EXPECT_EQ((*rows)[i].pos, (*expected)[i].pos);
    EXPECT_EQ((*rows)[i].rec, (*expected)[i].rec);
  }
}

}  // namespace
}  // namespace seq
