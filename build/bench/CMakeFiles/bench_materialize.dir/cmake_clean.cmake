file(REMOVE_RECURSE
  "CMakeFiles/bench_materialize.dir/bench_materialize.cc.o"
  "CMakeFiles/bench_materialize.dir/bench_materialize.cc.o.d"
  "bench_materialize"
  "bench_materialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_materialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
