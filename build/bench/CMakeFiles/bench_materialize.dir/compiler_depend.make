# Empty compiler generated dependencies file for bench_materialize.
# This may be replaced when dependencies are built.
