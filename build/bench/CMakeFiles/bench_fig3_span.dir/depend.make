# Empty dependencies file for bench_fig3_span.
# This may be replaced when dependencies are built.
