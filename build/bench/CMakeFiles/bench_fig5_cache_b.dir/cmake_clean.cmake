file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_cache_b.dir/bench_fig5_cache_b.cc.o"
  "CMakeFiles/bench_fig5_cache_b.dir/bench_fig5_cache_b.cc.o.d"
  "bench_fig5_cache_b"
  "bench_fig5_cache_b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_cache_b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
