# Empty compiler generated dependencies file for bench_fig5_cache_b.
# This may be replaced when dependencies are built.
