file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_cache_a.dir/bench_fig5_cache_a.cc.o"
  "CMakeFiles/bench_fig5_cache_a.dir/bench_fig5_cache_a.cc.o.d"
  "bench_fig5_cache_a"
  "bench_fig5_cache_a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_cache_a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
