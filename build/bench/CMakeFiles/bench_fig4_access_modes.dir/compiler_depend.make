# Empty compiler generated dependencies file for bench_fig4_access_modes.
# This may be replaced when dependencies are built.
