file(REMOVE_RECURSE
  "CMakeFiles/bench_prop41_enumeration.dir/bench_prop41_enumeration.cc.o"
  "CMakeFiles/bench_prop41_enumeration.dir/bench_prop41_enumeration.cc.o.d"
  "bench_prop41_enumeration"
  "bench_prop41_enumeration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prop41_enumeration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
