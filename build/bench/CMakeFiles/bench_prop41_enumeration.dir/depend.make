# Empty dependencies file for bench_prop41_enumeration.
# This may be replaced when dependencies are built.
