file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_scope_chains.dir/bench_fig2_scope_chains.cc.o"
  "CMakeFiles/bench_fig2_scope_chains.dir/bench_fig2_scope_chains.cc.o.d"
  "bench_fig2_scope_chains"
  "bench_fig2_scope_chains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_scope_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
