# Empty compiler generated dependencies file for bench_fig2_scope_chains.
# This may be replaced when dependencies are built.
