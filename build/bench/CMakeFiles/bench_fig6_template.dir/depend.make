# Empty dependencies file for bench_fig6_template.
# This may be replaced when dependencies are built.
