file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_template.dir/bench_fig6_template.cc.o"
  "CMakeFiles/bench_fig6_template.dir/bench_fig6_template.cc.o.d"
  "bench_fig6_template"
  "bench_fig6_template.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_template.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
