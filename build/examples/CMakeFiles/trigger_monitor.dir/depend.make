# Empty dependencies file for trigger_monitor.
# This may be replaced when dependencies are built.
