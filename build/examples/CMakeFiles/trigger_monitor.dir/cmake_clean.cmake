file(REMOVE_RECURSE
  "CMakeFiles/trigger_monitor.dir/trigger_monitor.cpp.o"
  "CMakeFiles/trigger_monitor.dir/trigger_monitor.cpp.o.d"
  "trigger_monitor"
  "trigger_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trigger_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
