# Empty compiler generated dependencies file for stock_analysis.
# This may be replaced when dependencies are built.
