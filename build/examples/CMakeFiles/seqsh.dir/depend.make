# Empty dependencies file for seqsh.
# This may be replaced when dependencies are built.
