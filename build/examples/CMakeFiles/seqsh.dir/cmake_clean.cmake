file(REMOVE_RECURSE
  "CMakeFiles/seqsh.dir/seqsh.cpp.o"
  "CMakeFiles/seqsh.dir/seqsh.cpp.o.d"
  "seqsh"
  "seqsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seqsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
