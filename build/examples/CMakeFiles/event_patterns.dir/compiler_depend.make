# Empty compiler generated dependencies file for event_patterns.
# This may be replaced when dependencies are built.
