file(REMOVE_RECURSE
  "CMakeFiles/event_patterns.dir/event_patterns.cpp.o"
  "CMakeFiles/event_patterns.dir/event_patterns.cpp.o.d"
  "event_patterns"
  "event_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
