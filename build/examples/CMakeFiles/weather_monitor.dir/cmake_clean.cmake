file(REMOVE_RECURSE
  "CMakeFiles/weather_monitor.dir/weather_monitor.cpp.o"
  "CMakeFiles/weather_monitor.dir/weather_monitor.cpp.o.d"
  "weather_monitor"
  "weather_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weather_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
