# Empty dependencies file for weather_monitor.
# This may be replaced when dependencies are built.
