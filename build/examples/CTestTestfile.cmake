# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_weather_monitor "/root/repo/build/examples/weather_monitor")
set_tests_properties(example_weather_monitor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stock_analysis "/root/repo/build/examples/stock_analysis")
set_tests_properties(example_stock_analysis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trigger_monitor "/root/repo/build/examples/trigger_monitor")
set_tests_properties(example_trigger_monitor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_event_patterns "/root/repo/build/examples/event_patterns")
set_tests_properties(example_event_patterns PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_seqsh_script "/root/repo/build/examples/seqsh" "/root/repo/examples/demo.seq")
set_tests_properties(example_seqsh_script PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
