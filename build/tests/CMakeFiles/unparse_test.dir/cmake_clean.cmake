file(REMOVE_RECURSE
  "CMakeFiles/unparse_test.dir/unparse_test.cc.o"
  "CMakeFiles/unparse_test.dir/unparse_test.cc.o.d"
  "unparse_test"
  "unparse_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unparse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
