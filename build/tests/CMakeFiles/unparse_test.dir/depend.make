# Empty dependencies file for unparse_test.
# This may be replaced when dependencies are built.
