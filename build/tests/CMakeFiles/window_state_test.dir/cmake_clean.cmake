file(REMOVE_RECURSE
  "CMakeFiles/window_state_test.dir/window_state_test.cc.o"
  "CMakeFiles/window_state_test.dir/window_state_test.cc.o.d"
  "window_state_test"
  "window_state_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
