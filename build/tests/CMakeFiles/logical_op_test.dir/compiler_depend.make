# Empty compiler generated dependencies file for logical_op_test.
# This may be replaced when dependencies are built.
