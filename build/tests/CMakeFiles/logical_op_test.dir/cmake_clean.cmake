file(REMOVE_RECURSE
  "CMakeFiles/logical_op_test.dir/logical_op_test.cc.o"
  "CMakeFiles/logical_op_test.dir/logical_op_test.cc.o.d"
  "logical_op_test"
  "logical_op_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logical_op_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
