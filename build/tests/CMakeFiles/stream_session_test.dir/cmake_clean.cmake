file(REMOVE_RECURSE
  "CMakeFiles/stream_session_test.dir/stream_session_test.cc.o"
  "CMakeFiles/stream_session_test.dir/stream_session_test.cc.o.d"
  "stream_session_test"
  "stream_session_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
