file(REMOVE_RECURSE
  "CMakeFiles/seq_test_oracle.dir/reference_eval.cc.o"
  "CMakeFiles/seq_test_oracle.dir/reference_eval.cc.o.d"
  "libseq_test_oracle.a"
  "libseq_test_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_test_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
