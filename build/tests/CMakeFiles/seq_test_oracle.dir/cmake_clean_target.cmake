file(REMOVE_RECURSE
  "libseq_test_oracle.a"
)
