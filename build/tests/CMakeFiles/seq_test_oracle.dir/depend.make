# Empty dependencies file for seq_test_oracle.
# This may be replaced when dependencies are built.
