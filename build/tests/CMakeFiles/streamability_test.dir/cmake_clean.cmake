file(REMOVE_RECURSE
  "CMakeFiles/streamability_test.dir/streamability_test.cc.o"
  "CMakeFiles/streamability_test.dir/streamability_test.cc.o.d"
  "streamability_test"
  "streamability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
