# Empty compiler generated dependencies file for streamability_test.
# This may be replaced when dependencies are built.
