
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rewriter_test.cc" "tests/CMakeFiles/rewriter_test.dir/rewriter_test.cc.o" "gcc" "tests/CMakeFiles/rewriter_test.dir/rewriter_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/seq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/seq_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/seq_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/seq_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/interval/CMakeFiles/seq_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/grouping/CMakeFiles/seq_grouping.dir/DependInfo.cmake"
  "/root/repo/build/src/pattern/CMakeFiles/seq_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/ordering/CMakeFiles/seq_ordering.dir/DependInfo.cmake"
  "/root/repo/build/tests/CMakeFiles/seq_test_oracle.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/seq_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/seq_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/seq_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/logical/CMakeFiles/seq_logical.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/seq_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/seq_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/seq_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/seq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
