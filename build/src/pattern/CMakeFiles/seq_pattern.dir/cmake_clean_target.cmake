file(REMOVE_RECURSE
  "libseq_pattern.a"
)
