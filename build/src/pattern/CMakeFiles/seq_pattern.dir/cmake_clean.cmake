file(REMOVE_RECURSE
  "CMakeFiles/seq_pattern.dir/pattern.cc.o"
  "CMakeFiles/seq_pattern.dir/pattern.cc.o.d"
  "libseq_pattern.a"
  "libseq_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
