# Empty dependencies file for seq_pattern.
# This may be replaced when dependencies are built.
