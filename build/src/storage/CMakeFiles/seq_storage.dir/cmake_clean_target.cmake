file(REMOVE_RECURSE
  "libseq_storage.a"
)
