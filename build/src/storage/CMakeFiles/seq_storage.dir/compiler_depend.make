# Empty compiler generated dependencies file for seq_storage.
# This may be replaced when dependencies are built.
