file(REMOVE_RECURSE
  "CMakeFiles/seq_storage.dir/access_stats.cc.o"
  "CMakeFiles/seq_storage.dir/access_stats.cc.o.d"
  "CMakeFiles/seq_storage.dir/base_sequence.cc.o"
  "CMakeFiles/seq_storage.dir/base_sequence.cc.o.d"
  "CMakeFiles/seq_storage.dir/file_format.cc.o"
  "CMakeFiles/seq_storage.dir/file_format.cc.o.d"
  "CMakeFiles/seq_storage.dir/statistics.cc.o"
  "CMakeFiles/seq_storage.dir/statistics.cc.o.d"
  "libseq_storage.a"
  "libseq_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
