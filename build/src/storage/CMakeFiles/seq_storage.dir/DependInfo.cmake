
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/access_stats.cc" "src/storage/CMakeFiles/seq_storage.dir/access_stats.cc.o" "gcc" "src/storage/CMakeFiles/seq_storage.dir/access_stats.cc.o.d"
  "/root/repo/src/storage/base_sequence.cc" "src/storage/CMakeFiles/seq_storage.dir/base_sequence.cc.o" "gcc" "src/storage/CMakeFiles/seq_storage.dir/base_sequence.cc.o.d"
  "/root/repo/src/storage/file_format.cc" "src/storage/CMakeFiles/seq_storage.dir/file_format.cc.o" "gcc" "src/storage/CMakeFiles/seq_storage.dir/file_format.cc.o.d"
  "/root/repo/src/storage/statistics.cc" "src/storage/CMakeFiles/seq_storage.dir/statistics.cc.o" "gcc" "src/storage/CMakeFiles/seq_storage.dir/statistics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/types/CMakeFiles/seq_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/seq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
