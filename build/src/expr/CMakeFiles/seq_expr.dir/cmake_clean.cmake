file(REMOVE_RECURSE
  "CMakeFiles/seq_expr.dir/compiled_expr.cc.o"
  "CMakeFiles/seq_expr.dir/compiled_expr.cc.o.d"
  "CMakeFiles/seq_expr.dir/expr.cc.o"
  "CMakeFiles/seq_expr.dir/expr.cc.o.d"
  "libseq_expr.a"
  "libseq_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
