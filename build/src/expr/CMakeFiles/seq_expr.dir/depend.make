# Empty dependencies file for seq_expr.
# This may be replaced when dependencies are built.
