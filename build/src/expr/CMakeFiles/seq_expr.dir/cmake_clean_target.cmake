file(REMOVE_RECURSE
  "libseq_expr.a"
)
