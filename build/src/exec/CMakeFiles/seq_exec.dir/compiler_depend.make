# Empty compiler generated dependencies file for seq_exec.
# This may be replaced when dependencies are built.
