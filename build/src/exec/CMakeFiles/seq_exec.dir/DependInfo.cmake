
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/agg_ops.cc" "src/exec/CMakeFiles/seq_exec.dir/agg_ops.cc.o" "gcc" "src/exec/CMakeFiles/seq_exec.dir/agg_ops.cc.o.d"
  "/root/repo/src/exec/collapse_ops.cc" "src/exec/CMakeFiles/seq_exec.dir/collapse_ops.cc.o" "gcc" "src/exec/CMakeFiles/seq_exec.dir/collapse_ops.cc.o.d"
  "/root/repo/src/exec/compose_ops.cc" "src/exec/CMakeFiles/seq_exec.dir/compose_ops.cc.o" "gcc" "src/exec/CMakeFiles/seq_exec.dir/compose_ops.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/exec/CMakeFiles/seq_exec.dir/executor.cc.o" "gcc" "src/exec/CMakeFiles/seq_exec.dir/executor.cc.o.d"
  "/root/repo/src/exec/offset_ops.cc" "src/exec/CMakeFiles/seq_exec.dir/offset_ops.cc.o" "gcc" "src/exec/CMakeFiles/seq_exec.dir/offset_ops.cc.o.d"
  "/root/repo/src/exec/stream_session.cc" "src/exec/CMakeFiles/seq_exec.dir/stream_session.cc.o" "gcc" "src/exec/CMakeFiles/seq_exec.dir/stream_session.cc.o.d"
  "/root/repo/src/exec/unary_ops.cc" "src/exec/CMakeFiles/seq_exec.dir/unary_ops.cc.o" "gcc" "src/exec/CMakeFiles/seq_exec.dir/unary_ops.cc.o.d"
  "/root/repo/src/exec/window_state.cc" "src/exec/CMakeFiles/seq_exec.dir/window_state.cc.o" "gcc" "src/exec/CMakeFiles/seq_exec.dir/window_state.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/optimizer/CMakeFiles/seq_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/seq_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/logical/CMakeFiles/seq_logical.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/seq_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/seq_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/seq_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/seq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
