# Empty dependencies file for seq_exec.
# This may be replaced when dependencies are built.
