file(REMOVE_RECURSE
  "libseq_exec.a"
)
