file(REMOVE_RECURSE
  "CMakeFiles/seq_exec.dir/agg_ops.cc.o"
  "CMakeFiles/seq_exec.dir/agg_ops.cc.o.d"
  "CMakeFiles/seq_exec.dir/collapse_ops.cc.o"
  "CMakeFiles/seq_exec.dir/collapse_ops.cc.o.d"
  "CMakeFiles/seq_exec.dir/compose_ops.cc.o"
  "CMakeFiles/seq_exec.dir/compose_ops.cc.o.d"
  "CMakeFiles/seq_exec.dir/executor.cc.o"
  "CMakeFiles/seq_exec.dir/executor.cc.o.d"
  "CMakeFiles/seq_exec.dir/offset_ops.cc.o"
  "CMakeFiles/seq_exec.dir/offset_ops.cc.o.d"
  "CMakeFiles/seq_exec.dir/stream_session.cc.o"
  "CMakeFiles/seq_exec.dir/stream_session.cc.o.d"
  "CMakeFiles/seq_exec.dir/unary_ops.cc.o"
  "CMakeFiles/seq_exec.dir/unary_ops.cc.o.d"
  "CMakeFiles/seq_exec.dir/window_state.cc.o"
  "CMakeFiles/seq_exec.dir/window_state.cc.o.d"
  "libseq_exec.a"
  "libseq_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
