# Empty compiler generated dependencies file for seq_types.
# This may be replaced when dependencies are built.
