file(REMOVE_RECURSE
  "libseq_types.a"
)
