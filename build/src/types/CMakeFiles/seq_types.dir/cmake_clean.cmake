file(REMOVE_RECURSE
  "CMakeFiles/seq_types.dir/record.cc.o"
  "CMakeFiles/seq_types.dir/record.cc.o.d"
  "CMakeFiles/seq_types.dir/schema.cc.o"
  "CMakeFiles/seq_types.dir/schema.cc.o.d"
  "CMakeFiles/seq_types.dir/span.cc.o"
  "CMakeFiles/seq_types.dir/span.cc.o.d"
  "CMakeFiles/seq_types.dir/value.cc.o"
  "CMakeFiles/seq_types.dir/value.cc.o.d"
  "libseq_types.a"
  "libseq_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
