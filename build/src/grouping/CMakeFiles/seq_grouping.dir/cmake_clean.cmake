file(REMOVE_RECURSE
  "CMakeFiles/seq_grouping.dir/sequence_group.cc.o"
  "CMakeFiles/seq_grouping.dir/sequence_group.cc.o.d"
  "libseq_grouping.a"
  "libseq_grouping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_grouping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
