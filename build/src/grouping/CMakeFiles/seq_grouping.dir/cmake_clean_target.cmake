file(REMOVE_RECURSE
  "libseq_grouping.a"
)
