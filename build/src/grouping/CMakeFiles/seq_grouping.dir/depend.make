# Empty dependencies file for seq_grouping.
# This may be replaced when dependencies are built.
