# Empty dependencies file for seq_workload.
# This may be replaced when dependencies are built.
