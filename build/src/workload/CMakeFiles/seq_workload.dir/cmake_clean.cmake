file(REMOVE_RECURSE
  "CMakeFiles/seq_workload.dir/csv.cc.o"
  "CMakeFiles/seq_workload.dir/csv.cc.o.d"
  "CMakeFiles/seq_workload.dir/generators.cc.o"
  "CMakeFiles/seq_workload.dir/generators.cc.o.d"
  "libseq_workload.a"
  "libseq_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
