file(REMOVE_RECURSE
  "libseq_workload.a"
)
