# Empty dependencies file for seq_common.
# This may be replaced when dependencies are built.
