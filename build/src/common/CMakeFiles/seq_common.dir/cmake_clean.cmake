file(REMOVE_RECURSE
  "CMakeFiles/seq_common.dir/logging.cc.o"
  "CMakeFiles/seq_common.dir/logging.cc.o.d"
  "CMakeFiles/seq_common.dir/status.cc.o"
  "CMakeFiles/seq_common.dir/status.cc.o.d"
  "CMakeFiles/seq_common.dir/string_util.cc.o"
  "CMakeFiles/seq_common.dir/string_util.cc.o.d"
  "libseq_common.a"
  "libseq_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
