file(REMOVE_RECURSE
  "libseq_common.a"
)
