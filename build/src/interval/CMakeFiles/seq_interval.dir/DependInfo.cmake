
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interval/interval_ops.cc" "src/interval/CMakeFiles/seq_interval.dir/interval_ops.cc.o" "gcc" "src/interval/CMakeFiles/seq_interval.dir/interval_ops.cc.o.d"
  "/root/repo/src/interval/interval_set.cc" "src/interval/CMakeFiles/seq_interval.dir/interval_set.cc.o" "gcc" "src/interval/CMakeFiles/seq_interval.dir/interval_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/expr/CMakeFiles/seq_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/seq_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/seq_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/seq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
