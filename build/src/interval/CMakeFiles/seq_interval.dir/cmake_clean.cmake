file(REMOVE_RECURSE
  "CMakeFiles/seq_interval.dir/interval_ops.cc.o"
  "CMakeFiles/seq_interval.dir/interval_ops.cc.o.d"
  "CMakeFiles/seq_interval.dir/interval_set.cc.o"
  "CMakeFiles/seq_interval.dir/interval_set.cc.o.d"
  "libseq_interval.a"
  "libseq_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
