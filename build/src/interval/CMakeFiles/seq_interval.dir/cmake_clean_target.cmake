file(REMOVE_RECURSE
  "libseq_interval.a"
)
