# Empty compiler generated dependencies file for seq_interval.
# This may be replaced when dependencies are built.
