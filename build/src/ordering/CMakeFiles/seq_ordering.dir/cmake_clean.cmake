file(REMOVE_RECURSE
  "CMakeFiles/seq_ordering.dir/multi_ordered.cc.o"
  "CMakeFiles/seq_ordering.dir/multi_ordered.cc.o.d"
  "libseq_ordering.a"
  "libseq_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
