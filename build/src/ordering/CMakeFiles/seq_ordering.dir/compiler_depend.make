# Empty compiler generated dependencies file for seq_ordering.
# This may be replaced when dependencies are built.
