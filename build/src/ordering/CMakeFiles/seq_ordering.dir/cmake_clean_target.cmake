file(REMOVE_RECURSE
  "libseq_ordering.a"
)
