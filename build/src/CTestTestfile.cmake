# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("types")
subdirs("expr")
subdirs("storage")
subdirs("catalog")
subdirs("interval")
subdirs("logical")
subdirs("optimizer")
subdirs("exec")
subdirs("parser")
subdirs("ordering")
subdirs("pattern")
subdirs("core")
subdirs("grouping")
subdirs("relational")
subdirs("workload")
