
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optimizer/annotate.cc" "src/optimizer/CMakeFiles/seq_optimizer.dir/annotate.cc.o" "gcc" "src/optimizer/CMakeFiles/seq_optimizer.dir/annotate.cc.o.d"
  "/root/repo/src/optimizer/cost_model.cc" "src/optimizer/CMakeFiles/seq_optimizer.dir/cost_model.cc.o" "gcc" "src/optimizer/CMakeFiles/seq_optimizer.dir/cost_model.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/optimizer/CMakeFiles/seq_optimizer.dir/optimizer.cc.o" "gcc" "src/optimizer/CMakeFiles/seq_optimizer.dir/optimizer.cc.o.d"
  "/root/repo/src/optimizer/physical_plan.cc" "src/optimizer/CMakeFiles/seq_optimizer.dir/physical_plan.cc.o" "gcc" "src/optimizer/CMakeFiles/seq_optimizer.dir/physical_plan.cc.o.d"
  "/root/repo/src/optimizer/planner.cc" "src/optimizer/CMakeFiles/seq_optimizer.dir/planner.cc.o" "gcc" "src/optimizer/CMakeFiles/seq_optimizer.dir/planner.cc.o.d"
  "/root/repo/src/optimizer/rewriter.cc" "src/optimizer/CMakeFiles/seq_optimizer.dir/rewriter.cc.o" "gcc" "src/optimizer/CMakeFiles/seq_optimizer.dir/rewriter.cc.o.d"
  "/root/repo/src/optimizer/selectivity.cc" "src/optimizer/CMakeFiles/seq_optimizer.dir/selectivity.cc.o" "gcc" "src/optimizer/CMakeFiles/seq_optimizer.dir/selectivity.cc.o.d"
  "/root/repo/src/optimizer/streamability.cc" "src/optimizer/CMakeFiles/seq_optimizer.dir/streamability.cc.o" "gcc" "src/optimizer/CMakeFiles/seq_optimizer.dir/streamability.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/catalog/CMakeFiles/seq_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/logical/CMakeFiles/seq_logical.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/seq_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/seq_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/seq_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/seq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
