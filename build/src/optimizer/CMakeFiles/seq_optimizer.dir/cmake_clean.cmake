file(REMOVE_RECURSE
  "CMakeFiles/seq_optimizer.dir/annotate.cc.o"
  "CMakeFiles/seq_optimizer.dir/annotate.cc.o.d"
  "CMakeFiles/seq_optimizer.dir/cost_model.cc.o"
  "CMakeFiles/seq_optimizer.dir/cost_model.cc.o.d"
  "CMakeFiles/seq_optimizer.dir/optimizer.cc.o"
  "CMakeFiles/seq_optimizer.dir/optimizer.cc.o.d"
  "CMakeFiles/seq_optimizer.dir/physical_plan.cc.o"
  "CMakeFiles/seq_optimizer.dir/physical_plan.cc.o.d"
  "CMakeFiles/seq_optimizer.dir/planner.cc.o"
  "CMakeFiles/seq_optimizer.dir/planner.cc.o.d"
  "CMakeFiles/seq_optimizer.dir/rewriter.cc.o"
  "CMakeFiles/seq_optimizer.dir/rewriter.cc.o.d"
  "CMakeFiles/seq_optimizer.dir/selectivity.cc.o"
  "CMakeFiles/seq_optimizer.dir/selectivity.cc.o.d"
  "CMakeFiles/seq_optimizer.dir/streamability.cc.o"
  "CMakeFiles/seq_optimizer.dir/streamability.cc.o.d"
  "libseq_optimizer.a"
  "libseq_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
