file(REMOVE_RECURSE
  "libseq_optimizer.a"
)
