# Empty dependencies file for seq_optimizer.
# This may be replaced when dependencies are built.
