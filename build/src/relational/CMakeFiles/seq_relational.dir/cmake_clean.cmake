file(REMOVE_RECURSE
  "CMakeFiles/seq_relational.dir/operators.cc.o"
  "CMakeFiles/seq_relational.dir/operators.cc.o.d"
  "CMakeFiles/seq_relational.dir/table.cc.o"
  "CMakeFiles/seq_relational.dir/table.cc.o.d"
  "CMakeFiles/seq_relational.dir/volcano_sql.cc.o"
  "CMakeFiles/seq_relational.dir/volcano_sql.cc.o.d"
  "libseq_relational.a"
  "libseq_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
