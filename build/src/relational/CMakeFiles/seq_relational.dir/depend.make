# Empty dependencies file for seq_relational.
# This may be replaced when dependencies are built.
