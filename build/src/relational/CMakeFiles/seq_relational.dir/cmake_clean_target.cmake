file(REMOVE_RECURSE
  "libseq_relational.a"
)
