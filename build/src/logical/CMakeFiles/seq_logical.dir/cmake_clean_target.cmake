file(REMOVE_RECURSE
  "libseq_logical.a"
)
