# Empty dependencies file for seq_logical.
# This may be replaced when dependencies are built.
