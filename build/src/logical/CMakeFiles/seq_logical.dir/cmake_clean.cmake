file(REMOVE_RECURSE
  "CMakeFiles/seq_logical.dir/logical_op.cc.o"
  "CMakeFiles/seq_logical.dir/logical_op.cc.o.d"
  "CMakeFiles/seq_logical.dir/scope.cc.o"
  "CMakeFiles/seq_logical.dir/scope.cc.o.d"
  "libseq_logical.a"
  "libseq_logical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_logical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
