# Empty dependencies file for seq_parser.
# This may be replaced when dependencies are built.
