file(REMOVE_RECURSE
  "libseq_parser.a"
)
