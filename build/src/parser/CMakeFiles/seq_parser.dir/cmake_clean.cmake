file(REMOVE_RECURSE
  "CMakeFiles/seq_parser.dir/lexer.cc.o"
  "CMakeFiles/seq_parser.dir/lexer.cc.o.d"
  "CMakeFiles/seq_parser.dir/parser.cc.o"
  "CMakeFiles/seq_parser.dir/parser.cc.o.d"
  "CMakeFiles/seq_parser.dir/unparse.cc.o"
  "CMakeFiles/seq_parser.dir/unparse.cc.o.d"
  "libseq_parser.a"
  "libseq_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
