# Empty dependencies file for seq_catalog.
# This may be replaced when dependencies are built.
