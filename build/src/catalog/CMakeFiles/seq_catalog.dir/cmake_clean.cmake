file(REMOVE_RECURSE
  "CMakeFiles/seq_catalog.dir/catalog.cc.o"
  "CMakeFiles/seq_catalog.dir/catalog.cc.o.d"
  "libseq_catalog.a"
  "libseq_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
