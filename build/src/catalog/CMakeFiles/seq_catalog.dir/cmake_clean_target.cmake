file(REMOVE_RECURSE
  "libseq_catalog.a"
)
