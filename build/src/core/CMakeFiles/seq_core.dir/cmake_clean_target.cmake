file(REMOVE_RECURSE
  "libseq_core.a"
)
