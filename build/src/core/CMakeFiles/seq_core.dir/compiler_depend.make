# Empty compiler generated dependencies file for seq_core.
# This may be replaced when dependencies are built.
