file(REMOVE_RECURSE
  "CMakeFiles/seq_core.dir/database_io.cc.o"
  "CMakeFiles/seq_core.dir/database_io.cc.o.d"
  "CMakeFiles/seq_core.dir/engine.cc.o"
  "CMakeFiles/seq_core.dir/engine.cc.o.d"
  "CMakeFiles/seq_core.dir/views.cc.o"
  "CMakeFiles/seq_core.dir/views.cc.o.d"
  "libseq_core.a"
  "libseq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
