
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/database_io.cc" "src/core/CMakeFiles/seq_core.dir/database_io.cc.o" "gcc" "src/core/CMakeFiles/seq_core.dir/database_io.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/seq_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/seq_core.dir/engine.cc.o.d"
  "/root/repo/src/core/views.cc" "src/core/CMakeFiles/seq_core.dir/views.cc.o" "gcc" "src/core/CMakeFiles/seq_core.dir/views.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/seq_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/seq_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/seq_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/seq_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/logical/CMakeFiles/seq_logical.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/seq_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/seq_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/seq_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/seq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
