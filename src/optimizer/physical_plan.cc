#include "optimizer/physical_plan.h"

#include <sstream>

#include "common/string_util.h"

namespace seq {

const char* AccessModeName(AccessMode mode) {
  return mode == AccessMode::kStream ? "stream" : "probed";
}

const char* JoinStrategyName(JoinStrategy strategy) {
  switch (strategy) {
    case JoinStrategy::kStreamBoth:
      return "B:stream-both";
    case JoinStrategy::kStreamLeftProbeRight:
      return "A:stream-left-probe-right";
    case JoinStrategy::kStreamRightProbeLeft:
      return "A:stream-right-probe-left";
    case JoinStrategy::kProbeBoth:
      return "probe-both";
  }
  return "?";
}

const char* AggStrategyName(AggStrategy strategy) {
  return strategy == AggStrategy::kCacheA ? "cache-A" : "naive-probe";
}

const char* OffsetStrategyName(OffsetStrategy strategy) {
  return strategy == OffsetStrategy::kIncrementalCacheB ? "cache-B"
                                                        : "naive-search";
}

std::string PhysNode::Label() const {
  std::ostringstream oss;
  oss << OpKindName(op) << " [" << AccessModeName(mode);
  switch (op) {
    case OpKind::kCompose:
      oss << ", " << JoinStrategyName(join_strategy);
      break;
    case OpKind::kWindowAgg:
      if (window_kind == WindowKind::kTrailing) {
        oss << ", " << AggStrategyName(agg_strategy);
      }
      break;
    case OpKind::kValueOffset:
      oss << ", " << OffsetStrategyName(offset_strategy);
      break;
    default:
      break;
  }
  oss << "]";
  switch (op) {
    case OpKind::kBaseRef:
    case OpKind::kConstantRef:
      oss << " " << seq_name;
      break;
    case OpKind::kSelect:
      oss << " " << predicate->ToString();
      break;
    case OpKind::kProject:
      oss << " " << Join(columns, ", ");
      break;
    case OpKind::kPositionalOffset:
    case OpKind::kValueOffset:
      oss << " l=" << offset;
      break;
    case OpKind::kWindowAgg:
      oss << " " << AggFuncName(agg_func) << "(" << agg_column << ")";
      if (window_kind == WindowKind::kTrailing) {
        oss << " over " << window;
      } else if (window_kind == WindowKind::kRunning) {
        oss << " running";
      } else {
        oss << " over all";
      }
      break;
    case OpKind::kCompose:
      if (predicate != nullptr) oss << " on " << predicate->ToString();
      break;
    case OpKind::kCollapse:
      oss << " " << AggFuncName(agg_func) << "(" << agg_column << ") by "
          << offset;
      break;
    case OpKind::kExpand:
      oss << " by " << offset;
      break;
  }
  return oss.str();
}

double PhysNode::EstRows() const {
  if (required.IsEmpty() || required.IsUnbounded()) return 0.0;
  return est_density * static_cast<double>(required.Length());
}

std::string PhysNode::Explain(int indent) const {
  std::ostringstream oss;
  oss << std::string(static_cast<size_t>(indent) * 2, ' ') << Label();
  oss << "  {required=" << required.ToString()
      << " density=" << FormatDouble(est_density)
      << " cost=" << FormatDouble(est_cost);
  if (cache_size > 0) oss << " cache=" << cache_size;
  oss << "}\n";
  for (const PhysNodePtr& child : children) {
    oss << child->Explain(indent + 1);
  }
  return oss.str();
}

std::string PhysicalPlan::Explain() const {
  std::ostringstream oss;
  oss << "Start [" << AccessModeName(root_mode);
  if (root_mode == AccessMode::kStream) {
    oss << " over " << output_span.ToString();
  } else {
    oss << " at " << positions.size() << " positions";
  }
  oss << "] est_cost=" << FormatDouble(est_cost) << "\n";
  if (root != nullptr) oss << root->Explain(1);
  return oss.str();
}

}  // namespace seq
