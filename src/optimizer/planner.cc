#include "optimizer/planner.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "optimizer/selectivity.h"

namespace seq {
namespace {

Result<int64_t> RequireBoundedLength(const Span& span, const char* what) {
  if (span.IsEmpty()) return int64_t{0};
  if (span.IsUnbounded()) {
    return Status::InvalidArgument(
        std::string("cannot plan over an unbounded required span for ") +
        what + "; bound the query range");
  }
  return span.Length();
}

std::shared_ptr<PhysNode> NewNode(OpKind op, AccessMode mode) {
  auto node = std::make_shared<PhysNode>();
  node->op = op;
  node->mode = mode;
  return node;
}

/// Copies the logical parameters shared by both modes of an operator.
void FillCommon(PhysNode* node, const LogicalOp& op) {
  node->seq_name = op.seq_name();
  node->predicate = op.predicate();
  node->columns = op.columns();
  node->renames = op.renames();
  node->offset = op.offset();
  node->agg_func = op.agg_func();
  node->window_kind = op.window_kind();
  node->window = op.window();
  node->agg_column = op.agg_column();
  node->output_name = op.output_name();
  node->out_schema = op.meta().schema;
  node->out_span = op.meta().span;
  node->required = op.meta().required;
  node->est_density = op.meta().density;
}

}  // namespace

Result<PlannedSeq> Planner::Plan(const LogicalOp& op) {
  SEQ_CHECK_MSG(op.meta().annotated, "Plan requires an annotated graph");
  switch (op.kind()) {
    case OpKind::kBaseRef:
      return PlanBaseRef(op);
    case OpKind::kConstantRef:
      return PlanConstantRef(op);
    case OpKind::kSelect:
      return PlanSelect(op);
    case OpKind::kProject:
      return PlanProject(op);
    case OpKind::kPositionalOffset:
      return PlanPositionalOffset(op);
    case OpKind::kValueOffset:
      return PlanValueOffset(op);
    case OpKind::kWindowAgg:
      return PlanWindowAgg(op);
    case OpKind::kCollapse:
      return PlanCollapse(op);
    case OpKind::kExpand:
      return PlanExpand(op);
    case OpKind::kCompose:
      return PlanComposeBlock(op);
  }
  return Status::Internal("unknown operator kind");
}

Result<PlannedSeq> Planner::PlanBaseRef(const LogicalOp& op) {
  SEQ_ASSIGN_OR_RETURN(const CatalogEntry* entry,
                       catalog_.Lookup(op.seq_name()));
  const Span required = op.meta().required;
  SEQ_RETURN_IF_ERROR(RequireBoundedLength(required, "base scan").status());
  AccessEst est = BaseSequenceCosts(*entry->store, required);

  PlannedSeq out;
  out.required = required;
  out.schema = op.meta().schema;
  out.density = op.meta().density;
  out.single_source = op.seq_name();
  out.stream_cost = est.stream_cost;
  out.probed_cost = est.probed_cost;

  auto stream = NewNode(OpKind::kBaseRef, AccessMode::kStream);
  FillCommon(stream.get(), op);
  stream->est_cost = est.stream_cost;
  out.stream_plan = stream;

  auto probed = NewNode(OpKind::kBaseRef, AccessMode::kProbed);
  FillCommon(probed.get(), op);
  probed->est_cost = est.probed_cost;
  out.probed_plan = probed;
  return out;
}

Result<PlannedSeq> Planner::PlanConstantRef(const LogicalOp& op) {
  const Span required = op.meta().required;
  SEQ_RETURN_IF_ERROR(
      RequireBoundedLength(required, "constant sequence").status());
  PlannedSeq out;
  out.required = required;
  out.schema = op.meta().schema;
  out.density = 1.0;
  out.stream_cost = 0.0;
  out.probed_cost = 0.0;

  auto stream = NewNode(OpKind::kConstantRef, AccessMode::kStream);
  FillCommon(stream.get(), op);
  stream->est_cost = 0.0;
  out.stream_plan = stream;

  auto probed = NewNode(OpKind::kConstantRef, AccessMode::kProbed);
  FillCommon(probed.get(), op);
  probed->est_cost = 0.0;
  out.probed_plan = probed;
  return out;
}

Result<PlannedSeq> Planner::PlanSelect(const LogicalOp& op) {
  SEQ_ASSIGN_OR_RETURN(PlannedSeq child, Plan(*op.input()));
  double sel = EstimateSelectivity(op.predicate(),
                                   op.input()->meta().stats_store, params_);
  double eval_cost = child.ToAccessEst().Records() *
                     params_.select_predicate_cost;

  PlannedSeq out;
  out.required = op.meta().required;
  out.schema = op.meta().schema;
  out.density = std::clamp(child.density * sel, 0.0, 1.0);
  out.single_source = child.single_source;
  out.stream_cost = child.stream_cost + eval_cost;
  out.probed_cost = child.probed_cost + eval_cost;

  auto stream = NewNode(OpKind::kSelect, AccessMode::kStream);
  FillCommon(stream.get(), op);
  stream->children = {child.stream_plan};
  stream->est_cost = out.stream_cost;
  stream->est_density = out.density;
  out.stream_plan = stream;

  auto probed = NewNode(OpKind::kSelect, AccessMode::kProbed);
  FillCommon(probed.get(), op);
  probed->children = {child.probed_plan};
  probed->est_cost = out.probed_cost;
  probed->est_density = out.density;
  out.probed_plan = probed;
  return out;
}

Result<PlannedSeq> Planner::PlanProject(const LogicalOp& op) {
  SEQ_ASSIGN_OR_RETURN(PlannedSeq child, Plan(*op.input()));
  double compute = child.ToAccessEst().Records() * params_.compute_cost;

  PlannedSeq out;
  out.required = op.meta().required;
  out.schema = op.meta().schema;
  out.density = child.density;
  out.single_source = child.single_source;
  out.stream_cost = child.stream_cost + compute;
  out.probed_cost = child.probed_cost + compute;

  auto stream = NewNode(OpKind::kProject, AccessMode::kStream);
  FillCommon(stream.get(), op);
  stream->children = {child.stream_plan};
  stream->est_cost = out.stream_cost;
  out.stream_plan = stream;

  auto probed = NewNode(OpKind::kProject, AccessMode::kProbed);
  FillCommon(probed.get(), op);
  probed->children = {child.probed_plan};
  probed->est_cost = out.probed_cost;
  out.probed_plan = probed;
  return out;
}

Result<PlannedSeq> Planner::PlanPositionalOffset(const LogicalOp& op) {
  // Pure position relabeling: out(i) = in(i + l). In a pull pipeline each
  // input keeps its own cursor, so the §3.4 effective-scope broadening
  // appears as cursor lead/lag rather than an explicit buffer; no extra
  // cost beyond the child's.
  SEQ_ASSIGN_OR_RETURN(PlannedSeq child, Plan(*op.input()));

  PlannedSeq out;
  out.required = op.meta().required;
  out.schema = op.meta().schema;
  out.density = child.density;
  out.single_source = child.single_source;
  out.stream_cost = child.stream_cost;
  out.probed_cost = child.probed_cost;

  auto stream = NewNode(OpKind::kPositionalOffset, AccessMode::kStream);
  FillCommon(stream.get(), op);
  stream->children = {child.stream_plan};
  stream->est_cost = out.stream_cost;
  out.stream_plan = stream;

  auto probed = NewNode(OpKind::kPositionalOffset, AccessMode::kProbed);
  FillCommon(probed.get(), op);
  probed->children = {child.probed_plan};
  probed->est_cost = out.probed_cost;
  out.probed_plan = probed;
  return out;
}

Result<PlannedSeq> Planner::PlanValueOffset(const LogicalOp& op) {
  ++stats_->nonunit_blocks;
  // Whether OUR consumers probe this node monotonically (gates the probed
  // incremental candidate below). The naive-search candidate probes the
  // child positionally backward/forward from each output position, so the
  // child subtree is planned under a cleared flag — conservative for the
  // incremental candidate's (stream) child, which ignores it.
  const bool monotone = probed_monotone_;
  probed_monotone_ = false;
  Result<PlannedSeq> child_res = Plan(*op.input());
  probed_monotone_ = monotone;
  SEQ_RETURN_IF_ERROR(child_res.status());
  PlannedSeq child = std::move(child_res).value();
  SEQ_ASSIGN_OR_RETURN(int64_t span_len,
                       RequireBoundedLength(op.meta().required,
                                            "value offset"));
  AccessEst child_est = child.ToAccessEst();
  int64_t magnitude = std::abs(op.offset());

  PlannedSeq out;
  out.required = op.meta().required;
  out.schema = op.meta().schema;
  out.density = op.meta().density;
  out.single_source = child.single_source;

  double expected_scan =
      static_cast<double>(magnitude) / std::max(child.density, 1e-6);

  // Stream mode — the incremental algorithm (Cache-Strategy-B, §3.5):
  // out(i) follows from out(i-1) and the |l| most recent cached inputs.
  // The alternative (naive search from every output position via probes on
  // the input) is only taken under ablation.
  double incremental_cost =
      child.stream_cost +
      static_cast<double>(span_len) * params_.cache_access_cost +
      child_est.Records() * params_.cache_store_cost;
  double naive_stream_cost = static_cast<double>(span_len) *
                             (expected_scan * child_est.PerProbe());
  bool use_incremental = !params_.disable_incremental_value_offset;
  if (trace_ != nullptr) {
    trace_->Add("candidate", "value-offset stream: incremental cache-B",
                incremental_cost, use_incremental);
    trace_->Add("candidate", "value-offset stream: naive-search",
                naive_stream_cost, !use_incremental);
  }

  auto stream = NewNode(OpKind::kValueOffset, AccessMode::kStream);
  FillCommon(stream.get(), op);
  if (use_incremental) {
    out.stream_cost = incremental_cost;
    stream->offset_strategy = OffsetStrategy::kIncrementalCacheB;
    stream->children = {child.stream_plan};
    stream->cache_size = magnitude;
  } else {
    out.stream_cost = naive_stream_cost;
    stream->offset_strategy = OffsetStrategy::kNaiveSearch;
    stream->children = {child.probed_plan};
  }
  stream->est_cost = out.stream_cost;
  out.stream_plan = stream;

  // Probed mode — two candidates. Naive: from each probed position,
  // search positionally until |l| non-empty input positions have been
  // found; expected |l| / density probes each (§4.1.2: "estimate ... from
  // the density of the input sequence"). Incremental: when every consumer
  // above probes at non-decreasing positions — the discipline the
  // executor's probed driving guarantees at the root — the Cache-B
  // operator serves probes exactly as it serves a stream, consuming its
  // (streamed) input forward-only; same cost shape as the stream side.
  double naive_probed_cost = static_cast<double>(span_len) *
                             (expected_scan * child_est.PerProbe());
  double incremental_probed_cost = incremental_cost;
  bool probed_incremental = monotone &&
                            !params_.disable_incremental_value_offset &&
                            incremental_probed_cost < naive_probed_cost;
  if (trace_ != nullptr) {
    trace_->Add("candidate", "value-offset probed: incremental cache-B",
                incremental_probed_cost, probed_incremental);
    trace_->Add("candidate", "value-offset probed: naive-search",
                naive_probed_cost, !probed_incremental);
  }
  auto probed = NewNode(OpKind::kValueOffset, AccessMode::kProbed);
  FillCommon(probed.get(), op);
  if (probed_incremental) {
    out.probed_cost = incremental_probed_cost;
    probed->offset_strategy = OffsetStrategy::kIncrementalCacheB;
    probed->children = {child.stream_plan};
    probed->cache_size = magnitude;
  } else {
    out.probed_cost = naive_probed_cost;
    probed->offset_strategy = OffsetStrategy::kNaiveSearch;
    probed->children = {child.probed_plan};
  }
  probed->est_cost = out.probed_cost;
  out.probed_plan = probed;
  return out;
}

Result<PlannedSeq> Planner::PlanWindowAgg(const LogicalOp& op) {
  ++stats_->nonunit_blocks;
  // Naive trailing-window probing backtracks over the child's window at
  // every position, so the child subtree is planned under a cleared
  // monotone-probes flag; running/overall consume a stream child only.
  const bool saved_monotone = probed_monotone_;
  if (op.window_kind() == WindowKind::kTrailing) probed_monotone_ = false;
  Result<PlannedSeq> child_res = Plan(*op.input());
  probed_monotone_ = saved_monotone;
  SEQ_RETURN_IF_ERROR(child_res.status());
  PlannedSeq child = std::move(child_res).value();
  SEQ_ASSIGN_OR_RETURN(int64_t span_len,
                       RequireBoundedLength(op.meta().required, "aggregate"));
  AccessEst child_est = child.ToAccessEst();
  double out_records = op.meta().density * static_cast<double>(span_len);

  PlannedSeq out;
  out.required = op.meta().required;
  out.schema = op.meta().schema;
  out.density = op.meta().density;
  out.single_source = child.single_source;

  auto stream = NewNode(OpKind::kWindowAgg, AccessMode::kStream);
  FillCommon(stream.get(), op);
  stream->children = {child.stream_plan};
  auto probed = NewNode(OpKind::kWindowAgg, AccessMode::kProbed);
  FillCommon(probed.get(), op);
  probed->children = {child.probed_plan};

  switch (op.window_kind()) {
    case WindowKind::kTrailing: {
      int64_t w = op.window();
      // Expected aggregate-state steps: Cache-Strategy-A folds each input
      // record in once; the naive algorithms re-fold the whole window at
      // every position.
      double window_steps = static_cast<double>(span_len) *
                            static_cast<double>(w) * child.density *
                            params_.agg_step_cost;
      // Cache-Strategy-A: the scope-sized cache turns every input record
      // into one store, every output into one cache window access.
      double cache_a_cost =
          child.stream_cost +
          child_est.Records() *
              (params_.cache_store_cost + params_.agg_step_cost) +
          out_records * (params_.cache_access_cost + params_.compute_cost);
      // Scope too large to cache (§4.1.2) or ablated: naive re-probing
      // of the whole window at every position in the range.
      double naive_cost =
          static_cast<double>(span_len) * static_cast<double>(w) *
              child_est.PerProbe() +
          window_steps + out_records * params_.compute_cost;
      bool use_cache =
          w <= params_.max_cached_scope && !params_.disable_window_cache;
      if (trace_ != nullptr) {
        trace_->Add("candidate", "window-agg stream: cache-A", cache_a_cost,
                    use_cache);
        trace_->Add("candidate", "window-agg stream: naive-probe",
                    naive_cost, !use_cache);
      }
      if (use_cache) {
        out.stream_cost = cache_a_cost;
        stream->agg_strategy = AggStrategy::kCacheA;
        stream->cache_size = w;
      } else {
        out.stream_cost = naive_cost;
        stream->agg_strategy = AggStrategy::kNaiveProbe;
        stream->children = {child.probed_plan};
      }
      // Probed: probe the whole window for every requested position.
      out.probed_cost =
          static_cast<double>(span_len) *
              (static_cast<double>(w) * child_est.PerProbe() +
               params_.compute_cost) +
          window_steps;
      probed->agg_strategy = AggStrategy::kNaiveProbe;
      break;
    }
    case WindowKind::kRunning:
    case WindowKind::kAll: {
      double fold_steps = child_est.Records() * params_.agg_step_cost;
      out.stream_cost = child.stream_cost + fold_steps +
                        out_records * params_.compute_cost;
      stream->cache_size = 1;
      // Probed mode materializes the aggregate in one stream pass of the
      // input, then serves each probe from the materialization (§5.3 lists
      // materialization as the fallback when stream access is unavailable).
      out.probed_cost = child.stream_cost + fold_steps +
                        static_cast<double>(span_len) *
                            params_.cache_access_cost;
      probed->children = {child.stream_plan};
      break;
    }
  }
  stream->est_cost = out.stream_cost;
  probed->est_cost = out.probed_cost;
  out.stream_plan = stream;
  out.probed_plan = probed;
  return out;
}

Result<PlannedSeq> Planner::PlanCollapse(const LogicalOp& op) {
  ++stats_->nonunit_blocks;
  SEQ_ASSIGN_OR_RETURN(PlannedSeq child, Plan(*op.input()));
  SEQ_ASSIGN_OR_RETURN(int64_t span_len,
                       RequireBoundedLength(op.meta().required, "collapse"));
  double out_records = op.meta().density * static_cast<double>(span_len);
  // Every input record is folded into its bucket's aggregate state once.
  double fold_steps = child.ToAccessEst().Records() * params_.agg_step_cost;

  PlannedSeq out;
  out.required = op.meta().required;
  out.schema = op.meta().schema;
  out.density = op.meta().density;
  out.single_source = child.single_source;
  out.stream_cost = child.stream_cost + fold_steps +
                    out_records * params_.compute_cost;
  // Probed mode materializes the collapsed sequence on first probe.
  out.probed_cost = child.stream_cost + fold_steps +
                    static_cast<double>(span_len) * params_.cache_access_cost;

  auto stream = NewNode(OpKind::kCollapse, AccessMode::kStream);
  FillCommon(stream.get(), op);
  stream->children = {child.stream_plan};
  stream->est_cost = out.stream_cost;
  out.stream_plan = stream;

  auto probed = NewNode(OpKind::kCollapse, AccessMode::kProbed);
  FillCommon(probed.get(), op);
  probed->children = {child.stream_plan};  // materializes via one stream pass
  probed->est_cost = out.probed_cost;
  out.probed_plan = probed;
  return out;
}

Result<PlannedSeq> Planner::PlanExpand(const LogicalOp& op) {
  ++stats_->nonunit_blocks;
  SEQ_ASSIGN_OR_RETURN(PlannedSeq child, Plan(*op.input()));
  SEQ_ASSIGN_OR_RETURN(int64_t span_len,
                       RequireBoundedLength(op.meta().required, "expand"));
  double out_records = op.meta().density * static_cast<double>(span_len);

  PlannedSeq out;
  out.required = op.meta().required;
  out.schema = op.meta().schema;
  out.density = op.meta().density;
  out.single_source = child.single_source;
  // Stream: one pass of the input, each record replicated factor times.
  out.stream_cost = child.stream_cost + out_records * params_.compute_cost;
  // Probed: one input probe at floor(p / factor) per output probe.
  out.probed_cost = child.probed_cost / static_cast<double>(
                        std::max<int64_t>(op.expand_factor(), 1)) +
                    static_cast<double>(span_len) * params_.compute_cost;

  auto stream = NewNode(OpKind::kExpand, AccessMode::kStream);
  FillCommon(stream.get(), op);
  stream->children = {child.stream_plan};
  stream->est_cost = out.stream_cost;
  out.stream_plan = stream;

  auto probed = NewNode(OpKind::kExpand, AccessMode::kProbed);
  FillCommon(probed.get(), op);
  probed->children = {child.probed_plan};
  probed->est_cost = out.probed_cost;
  out.probed_plan = probed;
  return out;
}

// ---------------------------------------------------------------------------
// Compose blocks: flatten, then Selinger-style DP (§4.1.3).
// ---------------------------------------------------------------------------

namespace {

std::string UniqueFieldName(int item, const std::string& name) {
  return "_i" + std::to_string(item) + "_" + name;
}

struct FlatPred {
  ExprPtr expr;   // side-0 references to unique field names
  uint32_t mask;  // items referenced
};

/// Flattens the maximal compose subtree rooted at `node` into join items
/// (non-compose subtrees) and join predicates. Returns, for each output
/// field of `node`, the (item, field) pair it originates from.
Result<std::vector<std::pair<int, int>>> FlattenCompose(
    const LogicalOp& node, std::vector<const LogicalOp*>* items,
    std::vector<FlatPred>* preds) {
  if (node.kind() != OpKind::kCompose) {
    int idx = static_cast<int>(items->size());
    items->push_back(&node);
    std::vector<std::pair<int, int>> map;
    const Schema& schema = *node.meta().schema;
    map.reserve(schema.num_fields());
    for (size_t f = 0; f < schema.num_fields(); ++f) {
      map.emplace_back(idx, static_cast<int>(f));
    }
    return map;
  }
  SEQ_ASSIGN_OR_RETURN(auto lmap,
                       FlattenCompose(*node.input(0), items, preds));
  SEQ_ASSIGN_OR_RETURN(auto rmap,
                       FlattenCompose(*node.input(1), items, preds));
  if (node.predicate() != nullptr) {
    const Schema& lschema = *node.input(0)->meta().schema;
    const Schema& rschema = *node.input(1)->meta().schema;
    // Remap (side, name) references to unique names over the flat join.
    std::map<std::pair<int, std::string>, std::pair<int, std::string>> remap;
    uint32_t mask = 0;
    std::vector<std::pair<int, std::string>> cols;
    node.predicate()->CollectColumns(&cols);
    for (const auto& [side, name] : cols) {
      const Schema& schema = (side == 0) ? lschema : rschema;
      const auto& fmap = (side == 0) ? lmap : rmap;
      std::optional<size_t> idx = schema.FindField(name);
      if (!idx.has_value()) {
        return Status::Internal("compose predicate references unknown '" +
                                name + "'");
      }
      auto [item, field] = fmap[*idx];
      const Schema& item_schema = *(*items)[item]->meta().schema;
      remap[{side, name}] = {
          0, UniqueFieldName(item, item_schema.field(field).name)};
      mask |= (1u << item);
    }
    preds->push_back(FlatPred{node.predicate()->RemapColumns(remap), mask});
  }
  lmap.insert(lmap.end(), rmap.begin(), rmap.end());
  return lmap;
}

/// A DP candidate: the cheapest known stream- and probed-mode plans for one
/// subset of join items. Stream and probed winners may come from different
/// join orders; schemas carry the same (unique) field names either way.
struct Cand {
  PhysNodePtr stream_plan;
  double stream_cost = 0.0;
  SchemaPtr stream_schema;
  PhysNodePtr probed_plan;
  double probed_cost = 0.0;
  SchemaPtr probed_schema;
  double density = 0.0;
  Span required = Span::Empty();
  std::string single_source;

  AccessEst ToAccessEst() const {
    AccessEst est;
    est.stream_cost = stream_cost;
    est.probed_cost = probed_cost;
    est.density = density;
    est.span_len = required.IsEmpty() ? 0 : required.Length();
    return est;
  }
};

PhysNodePtr MakeRenameProject(const PhysNodePtr& child,
                              const std::vector<std::string>& columns,
                              const std::vector<std::string>& renames,
                              SchemaPtr out_schema, double density,
                              double cost) {
  auto node = std::make_shared<PhysNode>();
  node->op = OpKind::kProject;
  node->mode = child->mode;
  node->children = {child};
  node->columns = columns;
  node->renames = renames;
  node->out_schema = std::move(out_schema);
  node->out_span = child->out_span;
  node->required = child->required;
  node->est_density = density;
  node->est_cost = cost;
  return node;
}

}  // namespace

Result<PlannedSeq> Planner::PlanComposeBlock(const LogicalOp& op) {
  ++stats_->join_blocks;
  std::vector<const LogicalOp*> items;
  std::vector<FlatPred> preds;
  SEQ_ASSIGN_OR_RETURN(auto root_field_map,
                       FlattenCompose(op, &items, &preds));
  int n = static_cast<int>(items.size());
  stats_->largest_block = std::max<int64_t>(stats_->largest_block, n);
  if (n > 31) {
    return Status::InvalidArgument("compose block with more than 31 inputs");
  }
  SEQ_RETURN_IF_ERROR(
      RequireBoundedLength(op.meta().required, "compose block").status());

  // Plan each item, then rename its fields to block-unique names so join
  // order cannot create name clashes.
  std::vector<bool> applied_at_unit(preds.size(), false);
  std::vector<Cand> unit(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    SEQ_ASSIGN_OR_RETURN(PlannedSeq item, Plan(*items[i]));
    std::vector<std::string> columns;
    std::vector<std::string> renames;
    std::vector<Field> fields;
    for (const Field& f : item.schema->fields()) {
      columns.push_back(f.name);
      renames.push_back(UniqueFieldName(i, f.name));
      fields.push_back(Field{renames.back(), f.type});
    }
    SchemaPtr renamed = Schema::Make(std::move(fields));
    Cand& cand = unit[static_cast<size_t>(i)];
    cand.density = item.density;
    cand.required = item.required;
    cand.single_source = item.single_source;
    cand.stream_cost = item.stream_cost;
    cand.stream_schema = renamed;
    cand.stream_plan = MakeRenameProject(item.stream_plan, columns, renames,
                                         renamed, item.density,
                                         item.stream_cost);
    cand.probed_cost = item.probed_cost;
    cand.probed_schema = renamed;
    cand.probed_plan = MakeRenameProject(item.probed_plan, columns, renames,
                                         renamed, item.density,
                                         item.probed_cost);
    // Apply single-item predicates (possible when the user attached a
    // one-sided predicate directly to a compose) as selections here —
    // except on dense derived items (value offsets, non-trailing
    // aggregates): filtering those below the join would degrade the
    // lock-step skip into a positional scan, so their predicates stay
    // with the join (handled in join_step).
    std::vector<ExprPtr> local;
    if (!items[i]->IsNonUnitScope()) {
      for (size_t pi = 0; pi < preds.size(); ++pi) {
        if (preds[pi].mask == (1u << i)) {
          local.push_back(preds[pi].expr);
          applied_at_unit[pi] = true;
        }
      }
    }
    if (!local.empty()) {
      ExprPtr pred = ConjoinAll(local);
      double sel = EstimateSelectivity(pred, nullptr, params_);
      double eval = cand.ToAccessEst().Records() *
                    params_.select_predicate_cost;
      for (AccessMode mode : {AccessMode::kStream, AccessMode::kProbed}) {
        auto node = std::make_shared<PhysNode>();
        node->op = OpKind::kSelect;
        node->mode = mode;
        node->predicate = pred;
        node->out_schema = renamed;
        node->required = cand.required;
        node->est_density = cand.density * sel;
        if (mode == AccessMode::kStream) {
          node->children = {cand.stream_plan};
          node->est_cost = cand.stream_cost + eval;
          cand.stream_plan = node;
          cand.stream_cost = node->est_cost;
        } else {
          node->children = {cand.probed_plan};
          node->est_cost = cand.probed_cost + eval;
          cand.probed_plan = node;
          cand.probed_cost = node->est_cost;
        }
      }
      cand.density = std::clamp(cand.density * sel, 0.0, 1.0);
    }
  }

  // Joins a subset candidate with one unit item, applying every join
  // predicate that first becomes evaluable.
  auto join_step = [&](const Cand& s, uint32_t s_mask, const Cand& x,
                       int x_idx) -> Cand {
    ++stats_->plans_considered;
    uint32_t new_mask = s_mask | (1u << x_idx);
    std::vector<ExprPtr> applicable;
    double sel = 1.0;
    for (size_t pi = 0; pi < preds.size(); ++pi) {
      const FlatPred& p = preds[pi];
      if (p.mask == 0 || (p.mask & ~new_mask) != 0) continue;
      if (applied_at_unit[pi]) continue;
      // A predicate whose items were all inside S was applied at the join
      // that completed it — except when S is still the seed singleton.
      bool inside_s = (p.mask & ~s_mask) == 0;
      if (inside_s && (s_mask & (s_mask - 1)) != 0) continue;
      // Deferred single-item predicates on x apply at this (first) join.
      applicable.push_back(p.expr);
      sel *= EstimateSelectivity(p.expr, nullptr, params_);
    }
    ExprPtr join_pred = ConjoinAll(applicable);

    double corr = 0.0;
    if (!s.single_source.empty() && !x.single_source.empty()) {
      corr = catalog_.NullCorrelation(s.single_source, x.single_source);
    }
    double joint = Catalog::JointDensity(s.density, x.density, corr);
    Cand out;
    out.required = s.required.Intersect(x.required);
    int64_t span_len = out.required.IsEmpty() ? 0 : out.required.Length();
    out.density = std::clamp(joint * sel, 0.0, 1.0);
    out.single_source = "";  // multiple sources

    ComposeCostResult costs = ComposeCosts(s.ToAccessEst(), x.ToAccessEst(),
                                           joint, span_len, params_);
    double out_compute =
        out.density * static_cast<double>(span_len) * params_.compute_cost;

    // Stream plan.
    auto stream = std::make_shared<PhysNode>();
    stream->op = OpKind::kCompose;
    stream->mode = AccessMode::kStream;
    stream->join_strategy = costs.stream_strategy;
    switch (costs.stream_strategy) {
      case JoinStrategy::kStreamBoth:
        stream->children = {s.stream_plan, x.stream_plan};
        stream->out_schema = Schema::Concat(*s.stream_schema,
                                            *x.stream_schema);
        break;
      case JoinStrategy::kStreamLeftProbeRight:
        stream->children = {s.stream_plan, x.probed_plan};
        stream->out_schema = Schema::Concat(*s.stream_schema,
                                            *x.probed_schema);
        break;
      case JoinStrategy::kStreamRightProbeLeft:
        stream->children = {s.probed_plan, x.stream_plan};
        stream->out_schema = Schema::Concat(*s.probed_schema,
                                            *x.stream_schema);
        break;
      case JoinStrategy::kProbeBoth:
        SEQ_CHECK(false);
        break;
    }
    stream->predicate = join_pred;
    stream->required = out.required;
    stream->est_density = out.density;
    stream->est_cost = costs.stream_cost + out_compute;
    out.stream_plan = stream;
    out.stream_cost = stream->est_cost;
    out.stream_schema = stream->out_schema;

    // Probed plan.
    auto probed = std::make_shared<PhysNode>();
    probed->op = OpKind::kCompose;
    probed->mode = AccessMode::kProbed;
    probed->join_strategy = JoinStrategy::kProbeBoth;
    probed->probe_left_first = costs.probe_left_first;
    probed->children = {s.probed_plan, x.probed_plan};
    probed->out_schema = Schema::Concat(*s.probed_schema, *x.probed_schema);
    probed->predicate = join_pred;
    probed->required = out.required;
    probed->est_density = out.density;
    probed->est_cost = costs.probed_cost + out_compute;
    out.probed_plan = probed;
    out.probed_cost = probed->est_cost;
    out.probed_schema = probed->out_schema;

    if (trace_ != nullptr) {
      std::ostringstream oss;
      oss << "join {";
      bool first = true;
      for (int i = 0; i < n; ++i) {
        if ((s_mask & (1u << i)) == 0) continue;
        if (!first) oss << ",";
        oss << i;
        first = false;
      }
      oss << "}+" << x_idx << ": stream "
          << JoinStrategyName(costs.stream_strategy) << " cost="
          << out.stream_cost << ", probed cost=" << out.probed_cost;
      trace_->Add("candidate", oss.str(), out.stream_cost);
    }
    return out;
  };

  Cand final_cand;
  int dp_limit = std::min<int>(kMaxDpItems, params_.max_dp_items);
  if (n == 1) {
    final_cand = unit[0];
  } else if (n <= dp_limit) {
    // Level-wise left-deep DP. Only the current level is retained (plus the
    // unit candidates), matching the paper's space analysis.
    std::map<uint32_t, Cand> level;
    for (int i = 0; i < n; ++i) level.emplace(1u << i, unit[i]);
    stats_->plans_retained_max =
        std::max<int64_t>(stats_->plans_retained_max,
                          static_cast<int64_t>(level.size()));
    for (int size = 1; size < n; ++size) {
      std::map<uint32_t, Cand> next;
      for (const auto& [mask, cand] : level) {
        for (int x = 0; x < n; ++x) {
          if (mask & (1u << x)) continue;
          Cand joined = join_step(cand, mask, unit[x], x);
          uint32_t new_mask = mask | (1u << x);
          auto it = next.find(new_mask);
          if (it == next.end()) {
            next.emplace(new_mask, std::move(joined));
          } else {
            // Keep the cheapest plan per access mode independently (the
            // sequence analogue of Selinger's interesting orders).
            Cand& best = it->second;
            if (joined.stream_cost < best.stream_cost) {
              best.stream_plan = joined.stream_plan;
              best.stream_cost = joined.stream_cost;
              best.stream_schema = joined.stream_schema;
            }
            if (joined.probed_cost < best.probed_cost) {
              best.probed_plan = joined.probed_plan;
              best.probed_cost = joined.probed_cost;
              best.probed_schema = joined.probed_schema;
            }
          }
        }
      }
      stats_->plans_retained_max = std::max<int64_t>(
          stats_->plans_retained_max, static_cast<int64_t>(next.size()));
      level = std::move(next);
    }
    SEQ_CHECK(level.size() == 1);
    final_cand = level.begin()->second;
  } else {
    // Greedy left-deep fallback in input order for very wide blocks.
    Cand acc = unit[0];
    uint32_t mask = 1u;
    for (int x = 1; x < n; ++x) {
      acc = join_step(acc, mask, unit[x], x);
      mask |= (1u << x);
    }
    final_cand = acc;
  }

  // Column-free predicates (e.g. pos()-only) have an empty item mask and
  // were skipped by the DP; apply them once over the final join.
  std::vector<ExprPtr> maskless;
  for (const FlatPred& p : preds) {
    if (p.mask == 0) maskless.push_back(p.expr);
  }
  if (!maskless.empty()) {
    ExprPtr pred = ConjoinAll(maskless);
    double sel = EstimateSelectivity(pred, nullptr, params_);
    double eval =
        final_cand.ToAccessEst().Records() * params_.select_predicate_cost;
    for (AccessMode mode : {AccessMode::kStream, AccessMode::kProbed}) {
      auto node = std::make_shared<PhysNode>();
      node->op = OpKind::kSelect;
      node->mode = mode;
      node->predicate = pred;
      node->required = final_cand.required;
      node->est_density = std::clamp(final_cand.density * sel, 0.0, 1.0);
      if (mode == AccessMode::kStream) {
        node->out_schema = final_cand.stream_schema;
        node->children = {final_cand.stream_plan};
        node->est_cost = final_cand.stream_cost + eval;
        final_cand.stream_plan = node;
        final_cand.stream_cost = node->est_cost;
      } else {
        node->out_schema = final_cand.probed_schema;
        node->children = {final_cand.probed_plan};
        node->est_cost = final_cand.probed_cost + eval;
        final_cand.probed_plan = node;
        final_cand.probed_cost = node->est_cost;
      }
    }
    final_cand.density = std::clamp(final_cand.density * sel, 0.0, 1.0);
  }

  // Restore the original compose output schema (names and order).
  const Schema& out_schema = *op.meta().schema;
  SEQ_CHECK(root_field_map.size() == out_schema.num_fields());
  std::vector<std::string> columns;
  std::vector<std::string> renames;
  for (size_t k = 0; k < root_field_map.size(); ++k) {
    auto [item, field] = root_field_map[k];
    const Schema& item_schema = *items[item]->meta().schema;
    columns.push_back(UniqueFieldName(item, item_schema.field(field).name));
    renames.push_back(out_schema.field(k).name);
  }

  PlannedSeq out;
  out.required = op.meta().required;
  out.schema = op.meta().schema;
  out.density = final_cand.density;
  out.stream_cost = final_cand.stream_cost;
  out.probed_cost = final_cand.probed_cost;
  out.stream_plan =
      MakeRenameProject(final_cand.stream_plan, columns, renames,
                        op.meta().schema, out.density, out.stream_cost);
  out.probed_plan =
      MakeRenameProject(final_cand.probed_plan, columns, renames,
                        op.meta().schema, out.density, out.probed_cost);
  return out;
}

}  // namespace seq
