#include "optimizer/rewriter.h"

#include <map>
#include <utility>

#include "common/logging.h"

namespace seq {
namespace {

constexpr int kMaxPasses = 32;

/// Minimal meta for a freshly created unit-scope wrapper so later rules can
/// keep consulting schemas; full re-annotation happens after rewriting.
void InheritSchema(LogicalOp* op) {
  SEQ_CHECK(op->arity() >= 1);
  const SeqMeta& in = op->input()->meta();
  SeqMeta& meta = op->mutable_meta();
  meta.annotated = in.annotated;
  meta.schema = in.schema;
  meta.span = in.span;
  meta.density = in.density;
  meta.source_names = in.source_names;
  meta.stats_store = in.stats_store;
  meta.required = in.required;
}

/// Output name of field `i` of a projection.
std::string ProjectOutputName(const LogicalOp& project, size_t i) {
  if (i < project.renames().size() && !project.renames()[i].empty()) {
    return project.renames()[i];
  }
  return project.columns()[i];
}

}  // namespace

Status Rewriter::Rewrite(LogicalOpPtr* root) {
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    if (!RewriteNode(root)) return Status::OK();
  }
  return Status::OK();  // fixpoint not reached; tree is still equivalent
}

bool Rewriter::RewriteNode(LogicalOpPtr* node) {
  bool changed = false;
  // Children first so parent rules see settled subtrees.
  for (size_t i = 0; i < (*node)->arity(); ++i) {
    changed |= RewriteNode(&(*node)->mutable_input(i));
  }
  switch ((*node)->kind()) {
    case OpKind::kSelect:
      changed |= RewriteSelect(node);
      break;
    case OpKind::kProject:
      changed |= RewriteProject(node);
      break;
    case OpKind::kPositionalOffset:
      changed |= RewriteOffset(node);
      break;
    default:
      break;
  }
  return changed;
}

bool Rewriter::RewriteSelect(LogicalOpPtr* node) {
  LogicalOpPtr select = *node;
  LogicalOpPtr child = select->input();
  switch (child->kind()) {
    case OpKind::kSelect: {
      // merge-selects: two successive selections combine (§3.1).
      LogicalOpPtr merged = LogicalOp::Select(
          child->input(), And(child->predicate(), select->predicate()));
      InheritSchema(merged.get());
      *node = std::move(merged);
      Log("merge-selects");
      return true;
    }
    case OpKind::kProject: {
      // select-through-project: all predicate attributes exist below the
      // projection by construction; rename them back to source names.
      std::map<std::string, std::string> back;
      for (size_t i = 0; i < child->columns().size(); ++i) {
        back[ProjectOutputName(*child, i)] = child->columns()[i];
      }
      ExprPtr pred = select->predicate()->RenameColumns(back);
      LogicalOpPtr pushed = LogicalOp::Select(child->input(), pred);
      InheritSchema(pushed.get());
      LogicalOpPtr project =
          LogicalOp::Project(pushed, child->columns(), child->renames());
      project->mutable_meta() = child->meta();
      *node = std::move(project);
      Log("select-through-project");
      return true;
    }
    case OpKind::kPositionalOffset: {
      // select-through-offset: legal because a positional offset carries
      // records unchanged; a pos()-dependent predicate must stay put.
      if (select->predicate()->ContainsPosition()) {
        LogRejected("select-through-offset", "predicate references pos()");
        return false;
      }
      LogicalOpPtr pushed =
          LogicalOp::Select(child->input(), select->predicate());
      InheritSchema(pushed.get());
      LogicalOpPtr offset =
          LogicalOp::PositionalOffset(pushed, child->offset());
      offset->mutable_meta() = child->meta();
      *node = std::move(offset);
      Log("select-through-offset");
      return true;
    }
    case OpKind::kCompose: {
      // select-into-compose: route each conjunct to the input whose
      // attributes it references; mixed conjuncts join the compose
      // predicate. Requires annotated compose inputs for the name map.
      const SeqMeta& lmeta = child->input(0)->meta();
      const SeqMeta& rmeta = child->input(1)->meta();
      if (!lmeta.annotated || !rmeta.annotated) {
        LogRejected("select-into-compose", "compose inputs not annotated");
        return false;
      }
      std::vector<Schema::ConcatField> origins =
          Schema::ConcatFields(*lmeta.schema, *rmeta.schema);
      // Concat-output name -> (side, original name).
      std::map<std::string, std::pair<int, std::string>> origin_of;
      for (const Schema::ConcatField& cf : origins) {
        const Schema& src = cf.side == 0 ? *lmeta.schema : *rmeta.schema;
        origin_of[cf.out_name] = {cf.side, src.field(cf.index).name};
      }
      // Selections on a *dense derived* input (value offsets and
      // running/overall aggregates are non-null at essentially every
      // position) are better applied at the join: pushing them below the
      // compose would make the join's lock-step skip degrade into a
      // position-by-position scan of the dense side.
      bool left_dense = child->input(0)->IsNonUnitScope();
      bool right_dense = child->input(1)->IsNonUnitScope();
      std::vector<ExprPtr> conjuncts;
      SplitConjuncts(select->predicate(), &conjuncts);
      std::vector<ExprPtr> left_only, right_only, mixed;
      for (const ExprPtr& conj : conjuncts) {
        std::vector<std::pair<int, std::string>> cols;
        conj->CollectColumns(&cols);
        bool any_left = false, any_right = false, unknown = false;
        for (const auto& [side, name] : cols) {
          (void)side;  // select predicates are all side 0
          auto it = origin_of.find(name);
          if (it == origin_of.end()) {
            unknown = true;
            break;
          }
          (it->second.first == 0 ? any_left : any_right) = true;
        }
        if (unknown) {  // inconsistent annotation; leave alone
          LogRejected("select-into-compose",
                      "predicate column not in concat schema");
          return false;
        }
        // Rewrite concat names back to input-relative (side, name) refs.
        std::map<std::pair<int, std::string>, std::pair<int, std::string>>
            remap;
        for (const auto& [out_name, origin] : origin_of) {
          remap[{0, out_name}] = origin;
        }
        ExprPtr remapped = conj->RemapColumns(remap);
        if (any_left && any_right) {
          mixed.push_back(remapped);
        } else if (any_right) {
          if (right_dense) {
            mixed.push_back(remapped);
          } else {
            // All references are side 1 now; a selection on the right
            // input sees them as side 0.
            right_only.push_back(remapped->WithAllSides(0));
          }
        } else if (any_left && left_dense) {
          mixed.push_back(remapped);
        } else {
          // Left-only (or column-free): left names are unchanged by concat.
          left_only.push_back(remapped);
        }
      }
      // Even all-mixed predicates are worth absorbing: they become join
      // predicates the block planner can apply during the positional join.
      LogicalOpPtr new_left = child->input(0);
      if (ExprPtr lp = ConjoinAll(left_only); lp != nullptr) {
        new_left = LogicalOp::Select(new_left, lp);
        InheritSchema(new_left.get());
      }
      LogicalOpPtr new_right = child->input(1);
      if (ExprPtr rp = ConjoinAll(right_only); rp != nullptr) {
        new_right = LogicalOp::Select(new_right, rp);
        InheritSchema(new_right.get());
      }
      std::vector<ExprPtr> join_terms = {child->predicate()};
      join_terms.insert(join_terms.end(), mixed.begin(), mixed.end());
      LogicalOpPtr compose = LogicalOp::Compose(new_left, new_right,
                                                ConjoinAll(join_terms));
      compose->mutable_meta() = child->meta();
      *node = std::move(compose);
      Log("select-into-compose");
      return true;
    }
    default:
      // Deliberately no rule for kValueOffset / kWindowAgg / kCollapse:
      // "a selection cannot be pushed through an aggregate operator or a
      // value offset operator" (§3.1).
      return false;
  }
}

bool Rewriter::RewriteProject(LogicalOpPtr* node) {
  LogicalOpPtr project = *node;
  LogicalOpPtr child = project->input();
  if (child->kind() == OpKind::kProject) {
    // merge-projects: resolve outer column names against the inner
    // projection's outputs.
    std::vector<std::string> columns;
    std::vector<std::string> renames;
    for (size_t i = 0; i < project->columns().size(); ++i) {
      const std::string& outer_col = project->columns()[i];
      bool found = false;
      for (size_t j = 0; j < child->columns().size(); ++j) {
        if (ProjectOutputName(*child, j) == outer_col) {
          columns.push_back(child->columns()[j]);
          renames.push_back(ProjectOutputName(*project, i));
          found = true;
          break;
        }
      }
      if (!found) return false;  // ill-formed; let annotation report it
    }
    LogicalOpPtr merged =
        LogicalOp::Project(child->input(), std::move(columns),
                           std::move(renames));
    merged->mutable_meta() = project->meta();
    *node = std::move(merged);
    Log("merge-projects");
    return true;
  }
  // drop-identity-project.
  const SeqMeta& in = child->meta();
  if (in.annotated && in.schema != nullptr &&
      project->columns().size() == in.schema->num_fields()) {
    bool identity = true;
    for (size_t i = 0; i < project->columns().size(); ++i) {
      if (project->columns()[i] != in.schema->field(i).name ||
          ProjectOutputName(*project, i) != in.schema->field(i).name) {
        identity = false;
        break;
      }
    }
    if (identity) {
      *node = child;
      Log("drop-identity-project");
      return true;
    }
  }
  return false;
}

bool Rewriter::RewriteOffset(LogicalOpPtr* node) {
  LogicalOpPtr offset = *node;
  if (offset->offset() == 0) {
    *node = offset->input();
    Log("drop-zero-offset");
    return true;
  }
  LogicalOpPtr child = offset->input();
  int64_t l = offset->offset();
  switch (child->kind()) {
    case OpKind::kPositionalOffset: {
      LogicalOpPtr merged =
          LogicalOp::PositionalOffset(child->input(), l + child->offset());
      InheritSchema(merged.get());
      *node = std::move(merged);
      Log("merge-offsets");
      return true;
    }
    // No offset-through-select rule: its inverse (select-through-offset)
    // defines the normal form — selections sit below positional offsets —
    // and having both would oscillate.
    case OpKind::kProject: {
      LogicalOpPtr inner = LogicalOp::PositionalOffset(child->input(), l);
      InheritSchema(inner.get());
      LogicalOpPtr project =
          LogicalOp::Project(inner, child->columns(), child->renames());
      project->mutable_meta() = child->meta();
      *node = std::move(project);
      Log("offset-through-project");
      return true;
    }
    case OpKind::kCompose: {
      // A positional offset distributes over a positional join: shifting
      // the joined sequence equals joining the shifted inputs (compose has
      // unit, relative scope on both inputs).
      if (child->predicate() != nullptr &&
          child->predicate()->ContainsPosition()) {
        LogRejected("offset-through-compose",
                    "join predicate references pos()");
        return false;
      }
      LogicalOpPtr left = LogicalOp::PositionalOffset(child->input(0), l);
      InheritSchema(left.get());
      LogicalOpPtr right = LogicalOp::PositionalOffset(child->input(1), l);
      InheritSchema(right.get());
      LogicalOpPtr compose =
          LogicalOp::Compose(left, right, child->predicate());
      compose->mutable_meta() = child->meta();
      *node = std::move(compose);
      Log("offset-through-compose");
      return true;
    }
    case OpKind::kWindowAgg: {
      // Trailing windows have relative scope, so the offset commutes
      // (§3.1: "a positional offset can be pushed through any operator of
      // relative scope"); running/overall aggregates do not.
      if (child->window_kind() != WindowKind::kTrailing) {
        LogRejected("offset-through-trailing-agg",
                    "aggregate window is not trailing");
        return false;
      }
      LogicalOpPtr inner = LogicalOp::PositionalOffset(child->input(), l);
      InheritSchema(inner.get());
      LogicalOpPtr agg = LogicalOp::WindowAgg(inner, child->agg_func(),
                                              child->agg_column(),
                                              child->window(),
                                              child->output_name());
      agg->mutable_meta() = child->meta();
      *node = std::move(agg);
      Log("offset-through-trailing-agg");
      return true;
    }
    default:
      // No rule for kValueOffset (non-relative scope).
      return false;
  }
}

}  // namespace seq
