#include "optimizer/annotate.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "expr/compiled_expr.h"
#include "optimizer/selectivity.h"

namespace seq {
namespace {

// Clamped helpers: sentinel (±kMaxPosition) bounds stay sentinels under
// arithmetic so unbounded spans remain unbounded.
Position AddSticky(Position p, int64_t delta) {
  if (p <= kMinPosition) return kMinPosition;
  if (p >= kMaxPosition) return kMaxPosition;
  return p + delta;
}

Position MulClamp(Position p, int64_t factor) {
  if (p <= kMinPosition / factor) return kMinPosition;
  if (p >= kMaxPosition / factor) return kMaxPosition;
  return p * factor;
}

Result<TypeId> AggOutputType(AggFunc func, TypeId column_type) {
  switch (func) {
    case AggFunc::kCount:
      return TypeId::kInt64;
    case AggFunc::kAvg:
      if (!IsNumeric(column_type)) {
        return Status::TypeError("avg requires a numeric column");
      }
      return TypeId::kDouble;
    case AggFunc::kSum:
      if (!IsNumeric(column_type)) {
        return Status::TypeError("sum requires a numeric column");
      }
      return column_type;
    case AggFunc::kMin:
    case AggFunc::kMax:
      if (!IsNumeric(column_type) && column_type != TypeId::kString) {
        return Status::TypeError("min/max requires an orderable column");
      }
      return column_type;
  }
  return Status::Internal("unknown aggregate function");
}

std::string AggOutputName(const LogicalOp& op) {
  if (!op.output_name().empty()) return op.output_name();
  return std::string(AggFuncName(op.agg_func())) + "_" + op.agg_column();
}

}  // namespace

Status Annotator::AnnotateBottomUp(LogicalOp* op) const {
  for (size_t i = 0; i < op->arity(); ++i) {
    SEQ_RETURN_IF_ERROR(AnnotateBottomUp(op->mutable_input(i).get()));
  }
  return AnnotateNode(op);
}

Status Annotator::AnnotateNode(LogicalOp* op) const {
  SeqMeta& meta = op->mutable_meta();
  meta.annotated = false;
  switch (op->kind()) {
    case OpKind::kBaseRef: {
      SEQ_ASSIGN_OR_RETURN(const CatalogEntry* entry,
                           catalog_.Lookup(op->seq_name()));
      if (entry->kind != CatalogEntry::Kind::kBase) {
        return Status::InvalidArgument("'" + op->seq_name() +
                                       "' is not a base sequence");
      }
      meta.schema = entry->schema;
      meta.span = entry->span();
      meta.density = entry->density();
      meta.source_names = {op->seq_name()};
      meta.stats_store = entry->store.get();
      break;
    }
    case OpKind::kConstantRef: {
      SEQ_ASSIGN_OR_RETURN(const CatalogEntry* entry,
                           catalog_.Lookup(op->seq_name()));
      if (entry->kind != CatalogEntry::Kind::kConstant) {
        return Status::InvalidArgument("'" + op->seq_name() +
                                       "' is not a constant sequence");
      }
      meta.schema = entry->schema;
      meta.span = Span::Unbounded();
      meta.density = 1.0;
      meta.source_names.clear();
      meta.stats_store = nullptr;
      break;
    }
    case OpKind::kSelect: {
      const SeqMeta& in = op->input()->meta();
      // Type check the predicate.
      SEQ_RETURN_IF_ERROR(
          CompiledExpr::CompilePredicate(op->predicate(), *in.schema)
              .status());
      meta.schema = in.schema;
      meta.span = in.span;
      double sel =
          EstimateSelectivity(op->predicate(), in.stats_store, params_);
      meta.density = in.density * sel;
      meta.source_names = in.source_names;
      meta.stats_store = in.stats_store;
      break;
    }
    case OpKind::kProject: {
      const SeqMeta& in = op->input()->meta();
      std::vector<size_t> indices;
      indices.reserve(op->columns().size());
      for (const std::string& col : op->columns()) {
        SEQ_ASSIGN_OR_RETURN(size_t idx, in.schema->FieldIndex(col));
        indices.push_back(idx);
      }
      meta.schema = in.schema->Project(indices, op->renames());
      meta.span = in.span;
      meta.density = in.density;
      meta.source_names = in.source_names;
      bool renames_identity = true;
      for (size_t i = 0; i < op->renames().size(); ++i) {
        if (!op->renames()[i].empty() &&
            op->renames()[i] != op->columns()[i]) {
          renames_identity = false;
        }
      }
      // Column statistics remain addressable by name only when the
      // projection does not rename.
      meta.stats_store = renames_identity ? in.stats_store : nullptr;
      break;
    }
    case OpKind::kPositionalOffset: {
      const SeqMeta& in = op->input()->meta();
      meta.schema = in.schema;
      // out(i) = in(i + l): non-null where i + l falls in the input span.
      meta.span = in.span.Shift(-op->offset());
      meta.density = in.density;
      meta.source_names = in.source_names;
      meta.stats_store = in.stats_store;
      break;
    }
    case OpKind::kValueOffset: {
      const SeqMeta& in = op->input()->meta();
      meta.schema = in.schema;
      if (in.span.IsEmpty()) {
        meta.span = Span::Empty();
        meta.density = 0.0;
      } else if (op->offset() < 0) {
        // Previous-style: once |l| records have been seen the output stays
        // non-null at every later position, indefinitely.
        meta.span = Span::Of(AddSticky(in.span.start, -op->offset()),
                             kMaxPosition);
        meta.density = 1.0;
      } else {
        meta.span = Span::Of(kMinPosition,
                             AddSticky(in.span.end, -op->offset()));
        meta.density = 1.0;
      }
      meta.source_names = in.source_names;
      meta.stats_store = in.stats_store;  // records are input records
      break;
    }
    case OpKind::kWindowAgg: {
      const SeqMeta& in = op->input()->meta();
      SEQ_ASSIGN_OR_RETURN(size_t col_idx,
                           in.schema->FieldIndex(op->agg_column()));
      SEQ_ASSIGN_OR_RETURN(
          TypeId out_type,
          AggOutputType(op->agg_func(), in.schema->field(col_idx).type));
      meta.schema = Schema::Make({Field{AggOutputName(*op), out_type}});
      switch (op->window_kind()) {
        case WindowKind::kTrailing:
          // Non-null wherever the trailing window holds >= 1 record.
          meta.span = in.span.ExtendEnd(op->window() - 1);
          meta.density =
              1.0 - std::pow(1.0 - std::min(in.density, 1.0),
                             static_cast<double>(op->window()));
          break;
        case WindowKind::kRunning:
          meta.span = in.span.IsEmpty()
                          ? Span::Empty()
                          : Span::Of(in.span.start, kMaxPosition);
          meta.density = 1.0;
          break;
        case WindowKind::kAll:
          // Defined everywhere; reported within the input span.
          meta.span = in.span;
          meta.density = in.span.IsEmpty() ? 0.0 : 1.0;
          break;
      }
      meta.source_names = in.source_names;
      meta.stats_store = nullptr;
      break;
    }
    case OpKind::kCompose: {
      const SeqMeta& l = op->input(0)->meta();
      const SeqMeta& r = op->input(1)->meta();
      meta.schema = Schema::Concat(*l.schema, *r.schema);
      meta.span = l.span.Intersect(r.span);
      double corr = 0.0;
      if (l.source_names.size() == 1 && r.source_names.size() == 1) {
        corr = catalog_.NullCorrelation(l.source_names[0], r.source_names[0]);
      }
      double joint = Catalog::JointDensity(l.density, r.density, corr);
      double sel = 1.0;
      if (op->predicate() != nullptr) {
        SEQ_RETURN_IF_ERROR(CompiledExpr::CompilePredicate(
                                op->predicate(), *l.schema, r.schema.get())
                                .status());
        sel = EstimateSelectivity(op->predicate(), nullptr, params_);
      }
      meta.density = joint * sel;
      meta.source_names = l.source_names;
      meta.source_names.insert(meta.source_names.end(),
                               r.source_names.begin(), r.source_names.end());
      meta.stats_store = nullptr;
      break;
    }
    case OpKind::kCollapse: {
      const SeqMeta& in = op->input()->meta();
      SEQ_ASSIGN_OR_RETURN(size_t col_idx,
                           in.schema->FieldIndex(op->agg_column()));
      SEQ_ASSIGN_OR_RETURN(
          TypeId out_type,
          AggOutputType(op->agg_func(), in.schema->field(col_idx).type));
      std::string name = op->output_name().empty()
                             ? std::string(AggFuncName(op->agg_func())) + "_" +
                                   op->agg_column()
                             : op->output_name();
      meta.schema = Schema::Make({Field{name, out_type}});
      int64_t f = op->collapse_factor();
      if (in.span.IsEmpty()) {
        meta.span = Span::Empty();
        meta.density = 0.0;
      } else {
        Position s = in.span.start <= kMinPosition
                         ? kMinPosition
                         : static_cast<Position>(
                               std::floor(static_cast<double>(in.span.start) /
                                          static_cast<double>(f)));
        Position e = in.span.end >= kMaxPosition
                         ? kMaxPosition
                         : static_cast<Position>(
                               std::floor(static_cast<double>(in.span.end) /
                                          static_cast<double>(f)));
        meta.span = Span::Of(s, e);
        meta.density = 1.0 - std::pow(1.0 - std::min(in.density, 1.0),
                                      static_cast<double>(f));
      }
      meta.source_names = in.source_names;
      meta.stats_store = nullptr;
      break;
    }
    case OpKind::kExpand: {
      const SeqMeta& in = op->input()->meta();
      meta.schema = in.schema;
      int64_t f = op->expand_factor();
      if (in.span.IsEmpty()) {
        meta.span = Span::Empty();
        meta.density = 0.0;
      } else {
        // out(i) = in(floor(i/f)): input bucket b surfaces at positions
        // [b*f, (b+1)*f - 1].
        meta.span = Span::Of(MulClamp(in.span.start, f),
                             AddSticky(MulClamp(AddSticky(in.span.end, 1), f),
                                       -1));
        meta.density = in.density;
      }
      meta.source_names = in.source_names;
      meta.stats_store = in.stats_store;  // records are input records
      break;
    }
  }
  meta.density = std::clamp(meta.density, 0.0, 1.0);
  meta.required = meta.span;
  meta.annotated = true;
  return Status::OK();
}

void Annotator::PushRequiredSpans(LogicalOp* op, Span required,
                                  bool narrow) const {
  SeqMeta& meta = op->mutable_meta();
  SEQ_CHECK_MSG(meta.annotated, "PushRequiredSpans before AnnotateBottomUp");
  Span eff = narrow ? required.Intersect(meta.span) : required;
  meta.required = eff;
  switch (op->kind()) {
    case OpKind::kBaseRef:
    case OpKind::kConstantRef:
      return;
    case OpKind::kSelect:
    case OpKind::kProject:
      PushRequiredSpans(op->mutable_input().get(), eff, narrow);
      return;
    case OpKind::kPositionalOffset:
      PushRequiredSpans(op->mutable_input().get(), eff.Shift(op->offset()), narrow);
      return;
    case OpKind::kValueOffset: {
      const Span in_span = op->input()->meta().span;
      Span child_req;
      if (eff.IsEmpty() || in_span.IsEmpty()) {
        child_req = Span::Empty();
      } else if (op->offset() < 0) {
        // out(i) reads records strictly before i, potentially back to the
        // input's start.
        child_req = Span::Of(in_span.start, AddSticky(eff.end, -1));
      } else {
        child_req = Span::Of(AddSticky(eff.start, 1), in_span.end);
      }
      PushRequiredSpans(op->mutable_input().get(), child_req, narrow);
      return;
    }
    case OpKind::kWindowAgg: {
      const Span in_span = op->input()->meta().span;
      Span child_req;
      if (eff.IsEmpty()) {
        child_req = Span::Empty();
      } else {
        switch (op->window_kind()) {
          case WindowKind::kTrailing:
            child_req = Span::Of(AddSticky(eff.start, -(op->window() - 1)),
                                 eff.end);
            break;
          case WindowKind::kRunning:
            child_req = in_span.IsEmpty()
                            ? Span::Empty()
                            : Span::Of(in_span.start, eff.end);
            break;
          case WindowKind::kAll:
            child_req = in_span;  // cannot be narrowed
            break;
        }
      }
      PushRequiredSpans(op->mutable_input().get(), child_req, narrow);
      return;
    }
    case OpKind::kCompose: {
      // The Fig. 3 optimization: each input only needs positions where the
      // *other* input can also be non-null, intersected with what the
      // consumer asked for. meta.span is already the intersection of the
      // input spans, so pushing `eff` into both sides narrows each input by
      // the other's span.
      PushRequiredSpans(op->mutable_input(0).get(), eff, narrow);
      PushRequiredSpans(op->mutable_input(1).get(), eff, narrow);
      return;
    }
    case OpKind::kCollapse: {
      int64_t f = op->collapse_factor();
      Span child_req =
          eff.IsEmpty()
              ? Span::Empty()
              : Span::Of(MulClamp(eff.start, f),
                         AddSticky(MulClamp(AddSticky(eff.end, 1), f), -1));
      PushRequiredSpans(op->mutable_input().get(), child_req, narrow);
      return;
    }
    case OpKind::kExpand: {
      int64_t f = op->expand_factor();
      Span child_req;
      if (eff.IsEmpty()) {
        child_req = Span::Empty();
      } else {
        auto floor_div = [](Position p, int64_t d) {
          if (p <= kMinPosition || p >= kMaxPosition) return p;
          Position q = p / d;
          if (p % d != 0 && p < 0) --q;
          return q;
        };
        child_req = Span::Of(floor_div(eff.start, f), floor_div(eff.end, f));
      }
      PushRequiredSpans(op->mutable_input().get(), child_req, narrow);
      return;
    }
  }
}

}  // namespace seq
