#ifndef SEQ_OPTIMIZER_PLANNER_H_
#define SEQ_OPTIMIZER_PLANNER_H_

#include <cstdint>
#include <string>

#include "catalog/catalog.h"
#include "catalog/cost_params.h"
#include "common/result.h"
#include "logical/logical_op.h"
#include "obs/opt_trace.h"
#include "optimizer/cost_model.h"
#include "optimizer/physical_plan.h"

namespace seq {

/// Enumeration counters for the Property 4.1 analysis: the number of join
/// plans evaluated (O(N·2^{N-1}) per block) and the maximum number of plans
/// retained simultaneously (O(C(N, ceil(N/2))) with level-wise freeing).
struct PlannerStats {
  int64_t plans_considered = 0;
  int64_t plans_retained_max = 0;
  int64_t join_blocks = 0;
  int64_t largest_block = 0;
  int64_t nonunit_blocks = 0;
};

/// The cheapest plans found for one (derived) sequence, in both access
/// modes, over its required range (paper §4.1: "plans and cost estimates
/// for the output sequence of the block accessed in both stream and probed
/// modes").
struct PlannedSeq {
  PhysNodePtr stream_plan;
  PhysNodePtr probed_plan;
  double stream_cost = 0.0;
  double probed_cost = 0.0;  // total for probing every position in range
  double density = 0.0;
  Span required = Span::Empty();
  SchemaPtr schema;
  /// Name of the single base sequence feeding this plan, if exactly one
  /// (for null-correlation lookups); empty otherwise.
  std::string single_source;

  AccessEst ToAccessEst() const {
    AccessEst est;
    est.stream_cost = stream_cost;
    est.probed_cost = probed_cost;
    est.density = density;
    est.span_len = required.IsEmpty() ? 0 : required.Length();
    return est;
  }
};

/// Bottom-up, block-wise plan generation (paper §4, Steps 4–5).
///
/// Non-unit-scope operators (aggregates, value offsets, collapse) cut the
/// graph into blocks. Within a block of positional joins the compose tree
/// is flattened and join order chosen by a Selinger-style left-deep DP that
/// retains, per input subset, the cheapest stream-mode and cheapest
/// probed-mode candidate (the sequence analogue of interesting orders).
/// Non-unit-scope blocks choose between the naive and incremental
/// algorithms and between Cache-Strategy-A and probing per §4.1.2.
///
/// Requires a fully annotated graph (bottom-up meta plus required spans);
/// every node's `required` span must be bounded.
class Planner {
 public:
  /// Hard ceiling on DP width (CostParams::max_dp_items may lower it).
  static constexpr int kMaxDpItems = 16;

  /// `trace`, when non-null, receives one entry per strategy candidate
  /// considered (cache vs naive algorithms, every DP join step).
  Planner(const Catalog& catalog, const CostParams& params,
          PlannerStats* stats, OptTrace* trace = nullptr)
      : catalog_(catalog), params_(params), stats_(stats), trace_(trace) {}

  Result<PlannedSeq> Plan(const LogicalOp& op);

 private:
  Result<PlannedSeq> PlanBaseRef(const LogicalOp& op);
  Result<PlannedSeq> PlanConstantRef(const LogicalOp& op);
  Result<PlannedSeq> PlanSelect(const LogicalOp& op);
  Result<PlannedSeq> PlanProject(const LogicalOp& op);
  Result<PlannedSeq> PlanPositionalOffset(const LogicalOp& op);
  Result<PlannedSeq> PlanValueOffset(const LogicalOp& op);
  Result<PlannedSeq> PlanWindowAgg(const LogicalOp& op);
  Result<PlannedSeq> PlanCollapse(const LogicalOp& op);
  Result<PlannedSeq> PlanExpand(const LogicalOp& op);
  Result<PlannedSeq> PlanComposeBlock(const LogicalOp& op);

  const Catalog& catalog_;
  CostParams params_;
  PlannerStats* stats_;
  OptTrace* trace_ = nullptr;

  /// Planning context: true while every consumer on the path above would
  /// probe the current subtree at non-decreasing positions (the executor
  /// drives probed roots that way, and unit-scope operators preserve
  /// order). The incremental Cache-B value offset consumes its input
  /// forward-only, so its probed form is only offered while this holds;
  /// non-monotone probe consumers (naive value-offset search, naive
  /// window probing) clear it around their child recursion.
  bool probed_monotone_ = true;
};

}  // namespace seq

#endif  // SEQ_OPTIMIZER_PLANNER_H_
