#ifndef SEQ_OPTIMIZER_REWRITER_H_
#define SEQ_OPTIMIZER_REWRITER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "logical/logical_op.h"

namespace seq {

/// Equivalence-preserving graph transformations (paper §3.1, Step 3).
///
/// Implemented rules (each local to a pair of operators, per Prop. 3.1):
///   merge-selects           σp2(σp1(x))            → σ(p1 ∧ p2)(x)
///   merge-projects          π2(π1(x))              → π'(x)
///   merge-offsets           offa(offb(x))          → off(a+b)(x)
///   drop-identity-project   π(all columns, no renames)(x) → x
///   select-through-project  σ(π(x))                → π(σ'(x))
///   select-through-offset   σ(off(x))              → off(σ(x))   [no pos()]
///   select-into-compose     σ(A ∘ B): single-side conjuncts move onto the
///                           referenced input; mixed conjuncts become the
///                           compose's join predicate
///   offset-through-project / offset-through-compose /
///   offset-through-trailing-agg: positional offsets sink through
///                           relative-scope operators (§3.1); offsets stay
///                           above selections — select-through-offset
///                           defines that normal form
///
/// The paper's *illegal* transformations are enforced by omission: no rule
/// moves a selection or positional offset across a value offset or a
/// non-trailing aggregate, and no rule moves non-unit-scope operators
/// across a compose.
///
/// The rewriter requires a bottom-up-annotated tree (it consults child
/// schemas to route compose conjuncts) and leaves stale annotations above
/// changed nodes; the optimizer re-annotates afterwards.
class Rewriter {
 public:
  Rewriter() = default;

  /// Rewrites to a fixpoint (bounded). Returns the rule applications in
  /// order for explain/tests.
  Status Rewrite(LogicalOpPtr* root);

  const std::vector<std::string>& applied() const { return applied_; }

  /// Rules that matched a pattern but were rejected by a legality guard,
  /// as "rule: reason" strings (for the optimizer trace).
  const std::vector<std::string>& rejected() const { return rejected_; }

 private:
  /// Applies rules rooted at *node once; true if anything changed.
  bool RewriteNode(LogicalOpPtr* node);
  bool RewriteSelect(LogicalOpPtr* node);
  bool RewriteProject(LogicalOpPtr* node);
  bool RewriteOffset(LogicalOpPtr* node);

  void Log(const std::string& rule) { applied_.push_back(rule); }
  void LogRejected(const std::string& rule, const std::string& reason) {
    // Guards re-run every fixpoint pass; record each rejection once.
    std::string entry = rule + ": " + reason;
    for (const std::string& r : rejected_) {
      if (r == entry) return;
    }
    rejected_.push_back(std::move(entry));
  }

  std::vector<std::string> applied_;
  std::vector<std::string> rejected_;
};

}  // namespace seq

#endif  // SEQ_OPTIMIZER_REWRITER_H_
