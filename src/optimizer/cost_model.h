#ifndef SEQ_OPTIMIZER_COST_MODEL_H_
#define SEQ_OPTIMIZER_COST_MODEL_H_

#include <cstdint>

#include "catalog/cost_params.h"
#include "optimizer/physical_plan.h"
#include "storage/base_sequence.h"
#include "types/span.h"

namespace seq {

/// Cost summary of accessing one (possibly derived) sequence over its
/// required range, in both access modes. `stream_cost` is the total cost of
/// producing every record by a single positional-order scan; `probed_cost`
/// is the total cost of probing *every* position in the range (the paper's
/// a1/a2 convention, §4.1.3) — divide by `span_len` for a per-probe price.
struct AccessEst {
  double stream_cost = 0.0;
  double probed_cost = 0.0;
  double density = 0.0;
  int64_t span_len = 0;

  double PerProbe() const {
    return span_len > 0 ? probed_cost / static_cast<double>(span_len) : 0.0;
  }
  /// Expected number of non-null records in the range.
  double Records() const {
    return density * static_cast<double>(span_len);
  }
};

/// §4.1.1 — access costs to base sequences. Stream cost is pages touched ×
/// page cost; probed cost is per-probe cost × positions in range.
AccessEst BaseSequenceCosts(const BaseSequenceStore& store, Span range);

/// Constant sequences have no access cost and density one (§4.1.1).
AccessEst ConstantSequenceCosts(Span range);

/// Outcome of costing a positional join of two inputs (§4.1.3).
struct ComposeCostResult {
  double stream_cost = 0.0;
  JoinStrategy stream_strategy = JoinStrategy::kStreamBoth;
  double probed_cost = 0.0;
  JoinStrategy probed_strategy = JoinStrategy::kProbeBoth;  // direction below
  bool probe_left_first = false;  ///< probed mode: probe left, then right?
};

/// §4.1.3 cost formulas. `out_density` is the post-join output density
/// (joint density × predicate selectivity) and `joint_density` the density
/// of positions where both inputs are non-null (predicate application
/// count). `out_span_len` is the length of the join's required range.
///
///   stream = min(A1 + d1·a2, A2 + d2·a1, A1 + A2) + joint·span·K
///   probed = min(a1 + d1·a2, a2 + d2·a1)          + joint·span·K
ComposeCostResult ComposeCosts(const AccessEst& left, const AccessEst& right,
                               double joint_density, int64_t out_span_len,
                               const CostParams& params);

}  // namespace seq

#endif  // SEQ_OPTIMIZER_COST_MODEL_H_
