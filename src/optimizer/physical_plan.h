#ifndef SEQ_OPTIMIZER_PHYSICAL_PLAN_H_
#define SEQ_OPTIMIZER_PHYSICAL_PLAN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "logical/logical_op.h"
#include "types/schema.h"
#include "types/span.h"

namespace seq {

/// The access mode an operator offers to its consumer (paper §3.3): stream
/// ("get the next non-Null record") or probed ("get the record at a
/// specific position").
enum class AccessMode : uint8_t { kStream, kProbed };

const char* AccessModeName(AccessMode mode);

/// Physical strategies for the compose operator (paper §3.3, Fig. 4).
enum class JoinStrategy : uint8_t {
  kStreamBoth,            // Join-Strategy-B: lock-step scan of both inputs
  kStreamLeftProbeRight,  // Join-Strategy-A: stream left, probe right
  kStreamRightProbeLeft,  // Join-Strategy-A mirrored
  kProbeBoth,             // probed-mode output: probe both inputs
};

const char* JoinStrategyName(JoinStrategy strategy);

/// Physical strategies for windowed aggregates (paper §3.5, Fig. 5.A).
enum class AggStrategy : uint8_t {
  kCacheA,      // ring cache holding the scope; each input touched once
  kNaiveProbe,  // re-probe the whole window for every output position
};

const char* AggStrategyName(AggStrategy strategy);

/// Physical strategies for value offsets (paper §3.5, Fig. 5.B).
enum class OffsetStrategy : uint8_t {
  kIncrementalCacheB,  // derive out(i) from out(i-1) and the cached input
  kNaiveSearch,        // search backward/forward from every position
};

const char* OffsetStrategyName(OffsetStrategy strategy);

struct PhysNode;
using PhysNodePtr = std::shared_ptr<const PhysNode>;

/// An immutable physical-plan node: a logical operator with its access
/// mode, physical strategy, evaluation range and cost estimate fixed.
/// The execution engine instantiates operator objects from these
/// descriptors in one table-driven pass indexed by `op`
/// (exec/executor.cc); `mode` and the strategy fields select the
/// construction shape of a single unified operator per node, so every
/// strategy the cost model prices corresponds to exactly one executor
/// lowering: ValueOffset+kIncrementalCacheB -> ValueOffsetOp (stream or
/// probed), +kNaiveSearch -> ValueOffsetNaiveOp; WindowAgg+kCacheA ->
/// WindowAggCachedOp, +kNaiveProbe -> WindowAggNaiveOp; Compose
/// strategies -> ComposeLockstepOp / ComposeStreamProbeOp /
/// ComposeProbeBothOp. The optimizer's DP shares subplans freely.
struct PhysNode {
  OpKind op = OpKind::kBaseRef;
  AccessMode mode = AccessMode::kStream;
  JoinStrategy join_strategy = JoinStrategy::kStreamBoth;
  AggStrategy agg_strategy = AggStrategy::kCacheA;
  OffsetStrategy offset_strategy = OffsetStrategy::kIncrementalCacheB;
  /// kProbeBoth composes: probe the left child first (cheaper rejection)?
  bool probe_left_first = true;

  std::vector<PhysNodePtr> children;

  // Operator parameters (mirrors LogicalOp).
  std::string seq_name;
  ExprPtr predicate;
  std::vector<std::string> columns;
  std::vector<std::string> renames;
  int64_t offset = 0;  // positional/value offset; collapse factor
  AggFunc agg_func = AggFunc::kSum;
  WindowKind window_kind = WindowKind::kTrailing;
  int64_t window = 1;
  std::string agg_column;
  std::string output_name;

  // Annotation.
  SchemaPtr out_schema;
  Span out_span = Span::Empty();   ///< where output records may exist
  Span required = Span::Empty();   ///< range this node will be evaluated on
  double est_density = 0.0;
  double est_cost = 0.0;           ///< estimated cost in `mode` over `required`
  int64_t cache_size = 0;          ///< operator cache records (§3.5)

  // Morsel-parallel annotations, set only on the per-morsel node clones the
  // executor derives from the optimizer's plan (exec/executor.cc,
  // CloneForMorsel). Never set by the optimizer itself.
  /// For a clipped base scan: the start of the span the ORIGINAL (serial)
  /// leaf covered. The preceding span is streamed by earlier morsels, so
  /// the scan opens its cursor "resumed" — the page holding the record
  /// just before the clip is treated as already fetched, keeping
  /// stream_pages totals identical to one serial scan.
  std::optional<Position> resume_covered_from;
  /// True on sequential-aggregate clones whose children[1] is an uncharged
  /// carry-in subtree: the operator streams it to completion at Open to
  /// rebuild the aggregate state the serial run would have at the morsel
  /// boundary, charging nothing (earlier morsels charge those reads).
  bool morsel_carry = false;

  /// One-line description of the node: operator, mode, strategy and
  /// parameters — shared by Explain and the runtime profile labels.
  std::string Label() const;

  /// Expected number of output records over the required span.
  double EstRows() const;

  /// Indented, annotated rendering.
  std::string Explain(int indent = 0) const;
};

/// A complete query evaluation plan: the Start operator's input plus how
/// the root is driven (full-range stream or explicit-position probes,
/// Fig. 6 query template).
struct PhysicalPlan {
  PhysNodePtr root;
  AccessMode root_mode = AccessMode::kStream;
  Span output_span = Span::Empty();       ///< range queried (stream driving)
  std::vector<Position> positions;        ///< explicit positions (probed driving)
  SchemaPtr schema;
  double est_cost = 0.0;

  std::string Explain() const;
};

}  // namespace seq

#endif  // SEQ_OPTIMIZER_PHYSICAL_PLAN_H_
