#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

namespace seq {

AccessEst BaseSequenceCosts(const BaseSequenceStore& store, Span range) {
  AccessEst est;
  Span effective = range.Intersect(store.span());
  if (effective.IsEmpty()) return est;
  est.span_len = effective.Length();
  est.density = store.density();
  double records = est.density * static_cast<double>(est.span_len);
  double pages = store.costs().clustered
                     ? std::ceil(records / store.records_per_page())
                     : records;  // unclustered: a page fetch per record
  est.stream_cost = pages * store.costs().page_cost;
  est.probed_cost =
      static_cast<double>(est.span_len) * store.costs().probe_cost;
  return est;
}

AccessEst ConstantSequenceCosts(Span range) {
  AccessEst est;
  est.span_len = range.IsEmpty() ? 0 : range.Length();
  est.density = 1.0;
  est.stream_cost = 0.0;
  est.probed_cost = 0.0;
  return est;
}

ComposeCostResult ComposeCosts(const AccessEst& left, const AccessEst& right,
                               double joint_density, int64_t out_span_len,
                               const CostParams& params) {
  ComposeCostResult result;
  double span = static_cast<double>(std::max<int64_t>(out_span_len, 0));
  double predicate_cost =
      joint_density * span * params.join_predicate_cost;

  // Stream mode: Join-Strategy-A in both directions vs. Join-Strategy-B.
  double a_stream_lr = left.stream_cost + left.Records() * right.PerProbe();
  double a_stream_rl = right.stream_cost + right.Records() * left.PerProbe();
  double b_stream = left.stream_cost + right.stream_cost;
  if (params.force_join_strategy == 0) {
    result.stream_cost = b_stream;
    result.stream_strategy = JoinStrategy::kStreamBoth;
  } else if (params.force_join_strategy == 1) {
    result.stream_cost = a_stream_lr;
    result.stream_strategy = JoinStrategy::kStreamLeftProbeRight;
  } else if (params.force_join_strategy == 2) {
    result.stream_cost = a_stream_rl;
    result.stream_strategy = JoinStrategy::kStreamRightProbeLeft;
  } else {
    result.stream_cost = a_stream_lr;
    result.stream_strategy = JoinStrategy::kStreamLeftProbeRight;
    if (a_stream_rl < result.stream_cost) {
      result.stream_cost = a_stream_rl;
      result.stream_strategy = JoinStrategy::kStreamRightProbeLeft;
    }
    if (b_stream < result.stream_cost) {
      result.stream_cost = b_stream;
      result.stream_strategy = JoinStrategy::kStreamBoth;
    }
  }
  result.stream_cost += predicate_cost;

  // Probed mode: probe one side at every requested position, the other
  // only where the first was non-null.
  double probe_lr = left.probed_cost + left.density * right.probed_cost;
  double probe_rl = right.probed_cost + right.density * left.probed_cost;
  if (probe_lr <= probe_rl) {
    result.probed_cost = probe_lr;
    result.probe_left_first = true;
  } else {
    result.probed_cost = probe_rl;
    result.probe_left_first = false;
  }
  result.probed_cost += predicate_cost;
  result.probed_strategy = JoinStrategy::kProbeBoth;
  return result;
}

}  // namespace seq
