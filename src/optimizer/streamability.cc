#include "optimizer/streamability.h"

#include <cstdlib>
#include <sstream>

namespace seq {
namespace {

const char* ModeName(StreamabilityReport::Mode mode) {
  switch (mode) {
    case StreamabilityReport::Mode::kDirect:
      return "direct (Thm 3.1)";
    case StreamabilityReport::Mode::kEffective:
      return "effective scope (Lemma 3.2)";
    case StreamabilityReport::Mode::kIncremental:
      return "incremental (Cache-Strategy-B)";
    case StreamabilityReport::Mode::kBlocked:
      return "blocked";
  }
  return "?";
}

void Analyze(const LogicalOp& op, StreamabilityReport* report) {
  for (const LogicalOpPtr& input : op.inputs()) {
    Analyze(*input, report);
  }
  StreamabilityReport::OperatorEntry entry{&op,
                                           StreamabilityReport::Mode::kDirect,
                                           0};
  switch (op.kind()) {
    case OpKind::kBaseRef:
    case OpKind::kConstantRef:
      return;  // leaves hold no cache
    case OpKind::kSelect:
    case OpKind::kProject:
      entry.mode = StreamabilityReport::Mode::kDirect;
      entry.cache_records = 0;
      break;
    case OpKind::kCompose:
      // Unit scope on both inputs; the lock-step merge holds one pending
      // record per input.
      entry.mode = StreamabilityReport::Mode::kDirect;
      entry.cache_records = 2;
      break;
    case OpKind::kPositionalOffset:
      // Fixed size-one scope, not sequential (§2.3); the effective scope
      // of §3.4 broadens it to a sequential window of |l| + 1.
      entry.mode = StreamabilityReport::Mode::kEffective;
      entry.cache_records = std::abs(op.offset()) + 1;
      break;
    case OpKind::kValueOffset:
      // Literal scope unbounded; Cache-Strategy-B (§3.5) derives out(i)
      // from out(i-1) with the |l| most recent inputs cached.
      entry.mode = StreamabilityReport::Mode::kIncremental;
      entry.cache_records = std::abs(op.offset());
      break;
    case OpKind::kWindowAgg:
      switch (op.window_kind()) {
        case WindowKind::kTrailing:
          // Sequential fixed scope of size W: the Thm 3.1 case proper.
          entry.mode = StreamabilityReport::Mode::kDirect;
          entry.cache_records = op.window();
          break;
        case WindowKind::kRunning:
        case WindowKind::kAll:
          // Unbounded scope, but an O(1) accumulator substitutes for
          // caching the scope (the incremental idea applied to
          // aggregation). Note kAll delays output until the input ends;
          // it is still one scan with constant memory.
          entry.mode = StreamabilityReport::Mode::kIncremental;
          entry.cache_records = 1;
          break;
      }
      break;
    case OpKind::kCollapse:
      entry.mode = StreamabilityReport::Mode::kIncremental;
      entry.cache_records = 1;  // one bucket accumulator
      break;
    case OpKind::kExpand:
      entry.mode = StreamabilityReport::Mode::kEffective;
      entry.cache_records = 1;  // the input record being replicated
      break;
  }
  if (entry.mode == StreamabilityReport::Mode::kBlocked) {
    report->stream_access = false;
  }
  report->total_cache_records += entry.cache_records;
  report->operators.push_back(entry);
}

}  // namespace

StreamabilityReport AnalyzeStreamability(const LogicalOp& graph) {
  StreamabilityReport report;
  Analyze(graph, &report);
  return report;
}

std::string StreamabilityReport::ToString() const {
  std::ostringstream oss;
  oss << (stream_access ? "stream-access evaluation: YES"
                        : "stream-access evaluation: NO")
      << ", total cache " << total_cache_records << " records\n";
  for (const OperatorEntry& entry : operators) {
    oss << "  " << entry.op->Describe() << ": " << ModeName(entry.mode)
        << ", cache " << entry.cache_records << "\n";
  }
  return oss.str();
}

}  // namespace seq
