#ifndef SEQ_OPTIMIZER_STREAMABILITY_H_
#define SEQ_OPTIMIZER_STREAMABILITY_H_

#include <string>
#include <vector>

#include "logical/logical_op.h"

namespace seq {

/// Static stream-access analysis (paper §3.4): Theorem 3.1 — "if every
/// operator in a query graph has a sequential, fixed-size scope on all its
/// inputs, and if caches of the size of the scopes are used, then the
/// query has a stream-access evaluation" — extended per Lemma 3.2 with
/// *effective* scopes, and per §3.5 with the incremental algorithm
/// (Cache-Strategy-B), which restores cache-finiteness for value offsets
/// whose literal scope is unbounded.
struct StreamabilityReport {
  /// How one operator can participate in a single-scan evaluation.
  enum class Mode {
    kDirect,       // sequential fixed scope (Thm 3.1)
    kEffective,    // broadened to a sequential fixed effective scope (L3.2)
    kIncremental,  // Cache-Strategy-B derives out(i) from out(i-1) (§3.5)
    kBlocked,      // needs unbounded state (e.g. whole-sequence aggregate)
  };

  struct OperatorEntry {
    const LogicalOp* op;
    Mode mode;
    int64_t cache_records;  // bound on the operator's cache size
  };

  /// True iff every operator admits one of the cache-finite modes: the
  /// evaluation is a single scan of the base sequences with caches of
  /// constant total size (the paper's "stream-access property").
  bool stream_access = true;

  /// Σ cache bounds over all operators when stream_access holds.
  int64_t total_cache_records = 0;

  std::vector<OperatorEntry> operators;

  std::string ToString() const;
};

/// Analyzes the graph structurally (no catalog needed).
StreamabilityReport AnalyzeStreamability(const LogicalOp& graph);

}  // namespace seq

#endif  // SEQ_OPTIMIZER_STREAMABILITY_H_
