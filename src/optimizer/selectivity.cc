#include "optimizer/selectivity.h"

#include <algorithm>
#include <optional>

namespace seq {
namespace {

constexpr double kMinSelectivity = 0.0005;

double Clamp(double s) { return std::clamp(s, kMinSelectivity, 1.0); }

/// Column statistics for `name` in the stats store, if usable.
const ColumnStats* FindStats(const BaseSequenceStore* store,
                             const std::string& name) {
  if (store == nullptr) return nullptr;
  std::optional<size_t> idx = store->schema()->FindField(name);
  if (!idx.has_value()) return nullptr;
  const std::vector<ColumnStats>& all = store->column_stats();
  if (*idx >= all.size()) return nullptr;
  const ColumnStats& cs = all[*idx];
  return cs.count > 0 ? &cs : nullptr;
}

double EstimateComparison(BinaryOp op, const Expr& lhs, const Expr& rhs,
                          const BaseSequenceStore* store,
                          const CostParams& params) {
  // Only the (column cmp literal) and (literal cmp column) shapes get a
  // statistics-driven estimate; everything else takes the defaults.
  const Expr* col = nullptr;
  const Expr* lit = nullptr;
  bool column_on_left = false;
  if (lhs.kind() == ExprKind::kColumn && rhs.kind() == ExprKind::kLiteral) {
    col = &lhs;
    lit = &rhs;
    column_on_left = true;
  } else if (lhs.kind() == ExprKind::kLiteral &&
             rhs.kind() == ExprKind::kColumn) {
    col = &rhs;
    lit = &lhs;
  }
  if (col == nullptr || !IsNumeric(lit->literal().type())) {
    return (op == BinaryOp::kEq) ? params.default_eq_selectivity
           : (op == BinaryOp::kNe)
               ? 1.0 - params.default_eq_selectivity
               : params.default_range_selectivity;
  }
  const ColumnStats* cs = FindStats(store, col->column_name());
  if (cs == nullptr) {
    return (op == BinaryOp::kEq) ? params.default_eq_selectivity
           : (op == BinaryOp::kNe)
               ? 1.0 - params.default_eq_selectivity
               : params.default_range_selectivity;
  }
  double v = lit->literal().AsDouble();
  double below = cs->FractionBelow(v);  // P(col < v)
  // Normalize to "column OP literal".
  switch (op) {
    case BinaryOp::kEq:
      return cs->distinct > 0 ? 1.0 / static_cast<double>(cs->distinct)
                              : params.default_eq_selectivity;
    case BinaryOp::kNe:
      return cs->distinct > 0 ? 1.0 - 1.0 / static_cast<double>(cs->distinct)
                              : 1.0 - params.default_eq_selectivity;
    case BinaryOp::kLt:
    case BinaryOp::kLe:
      return column_on_left ? below : 1.0 - below;
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return column_on_left ? 1.0 - below : below;
    default:
      return params.default_range_selectivity;
  }
}

double EstimateImpl(const Expr& pred, const BaseSequenceStore* store,
                    const CostParams& params) {
  switch (pred.kind()) {
    case ExprKind::kLiteral:
      if (pred.literal().type() == TypeId::kBool) {
        return pred.literal().boolean() ? 1.0 : kMinSelectivity;
      }
      return 1.0;
    case ExprKind::kColumn:
      // A bare bool column as predicate: assume half.
      return 0.5;
    case ExprKind::kPosition:
      return 1.0;
    case ExprKind::kUnary:
      if (pred.unary_op() == UnaryOp::kNot) {
        return 1.0 - EstimateImpl(*pred.operand(), store, params);
      }
      return 1.0;
    case ExprKind::kBinary: {
      BinaryOp op = pred.binary_op();
      if (op == BinaryOp::kAnd) {
        return EstimateImpl(*pred.left(), store, params) *
               EstimateImpl(*pred.right(), store, params);
      }
      if (op == BinaryOp::kOr) {
        double a = EstimateImpl(*pred.left(), store, params);
        double b = EstimateImpl(*pred.right(), store, params);
        return a + b - a * b;
      }
      if (IsComparison(op)) {
        return EstimateComparison(op, *pred.left(), *pred.right(), store,
                                  params);
      }
      return 1.0;  // arithmetic subtree — not a predicate by itself
    }
  }
  return 1.0;
}

}  // namespace

double EstimateSelectivity(const ExprPtr& pred,
                           const BaseSequenceStore* stats_store,
                           const CostParams& params) {
  if (pred == nullptr) return 1.0;
  return Clamp(EstimateImpl(*pred, stats_store, params));
}

}  // namespace seq
