#ifndef SEQ_OPTIMIZER_SELECTIVITY_H_
#define SEQ_OPTIMIZER_SELECTIVITY_H_

#include "catalog/cost_params.h"
#include "expr/expr.h"
#include "storage/base_sequence.h"
#include "types/schema.h"

namespace seq {

/// Estimates the fraction of records satisfying `pred` (paper §3:
/// "distributions of values in the columns ... used to determine the
/// selectivity of predicates").
///
/// When `stats_store` is non-null and its schema still names the predicate's
/// columns, range predicates against literals interpolate on [min, max] and
/// equality predicates use 1/distinct; otherwise the CostParams defaults
/// apply. Conjunctions multiply, disjunctions use inclusion–exclusion,
/// negation complements. Estimates are clamped to [0.0005, 1].
double EstimateSelectivity(const ExprPtr& pred,
                           const BaseSequenceStore* stats_store,
                           const CostParams& params);

}  // namespace seq

#endif  // SEQ_OPTIMIZER_SELECTIVITY_H_
