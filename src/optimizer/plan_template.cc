#include "optimizer/plan_template.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "common/query_digest.h"
#include "common/string_util.h"
#include "optimizer/selectivity.h"

namespace seq {

namespace {

char TypeChar(TypeId type) {
  switch (type) {
    case TypeId::kInt64:
      return 'i';
    case TypeId::kDouble:
      return 'd';
    case TypeId::kBool:
      return 'b';
    case TypeId::kString:
      return 's';
  }
  return '?';
}

/// Rebuilds `expr` with literals tagged as parameters in pre-order, while
/// emitting the expression's shape (literals as `?index:type`) into `sig`
/// and its values into `params`. One traversal produces tag, signature and
/// value list, so the three can never disagree on ordering.
ExprPtr TagLiterals(const ExprPtr& expr, std::vector<Value>* params,
                    std::string* sig) {
  if (expr == nullptr) {
    sig->push_back('-');
    return nullptr;
  }
  switch (expr->kind()) {
    case ExprKind::kColumn: {
      *sig += 'c';
      *sig += std::to_string(expr->side());
      *sig += ':';
      *sig += expr->column_name();
      *sig += ';';
      return expr;
    }
    case ExprKind::kLiteral: {
      const int index = static_cast<int>(params->size());
      *sig += '?';
      *sig += std::to_string(index);
      *sig += ':';
      *sig += TypeChar(expr->literal().type());
      *sig += ';';
      params->push_back(expr->literal());
      return Expr::ParamLiteral(expr->literal(), index);
    }
    case ExprKind::kPosition: {
      *sig += "p;";
      return expr;
    }
    case ExprKind::kUnary: {
      *sig += 'u';
      *sig += std::to_string(static_cast<int>(expr->unary_op()));
      *sig += '(';
      ExprPtr operand = TagLiterals(expr->operand(), params, sig);
      *sig += ')';
      return Expr::Unary(expr->unary_op(), std::move(operand));
    }
    case ExprKind::kBinary: {
      *sig += 'b';
      *sig += std::to_string(static_cast<int>(expr->binary_op()));
      *sig += '(';
      ExprPtr left = TagLiterals(expr->left(), params, sig);
      *sig += ',';
      ExprPtr right = TagLiterals(expr->right(), params, sig);
      *sig += ')';
      return Expr::Binary(expr->binary_op(), std::move(left),
                          std::move(right));
    }
  }
  SEQ_CHECK(false);
  return nullptr;
}

/// Emits one node's structural header (everything that shapes the plan
/// except predicate literals), recurses into children, then tags the
/// node's predicate in place. Node order: header, children left-to-right,
/// predicate — fixed so parameter indices are a pure function of shape.
void TagGraph(const LogicalOpPtr& node, std::vector<Value>* params,
              std::string* sig) {
  *sig += OpKindName(node->kind());
  *sig += '[';
  *sig += node->seq_name();
  *sig += '|';
  *sig += Join(node->columns(), ",");
  *sig += '|';
  *sig += Join(node->renames(), ",");
  *sig += '|';
  *sig += std::to_string(node->offset());
  *sig += '|';
  *sig += AggFuncName(node->agg_func());
  *sig += std::to_string(static_cast<int>(node->window_kind()));
  *sig += ':';
  *sig += std::to_string(node->window());
  *sig += ':';
  *sig += node->agg_column();
  *sig += ':';
  *sig += node->output_name();
  *sig += "](";
  for (const LogicalOpPtr& input : node->inputs()) {
    TagGraph(input, params, sig);
    *sig += ',';
  }
  *sig += ')';
  if (node->predicate() != nullptr) {
    *sig += '{';
    node->set_predicate(TagLiterals(node->predicate(), params, sig));
    *sig += '}';
  }
}

bool ExprHasParam(const ExprPtr& expr) {
  if (expr == nullptr) return false;
  switch (expr->kind()) {
    case ExprKind::kLiteral:
      return expr->param_index() >= 0;
    case ExprKind::kColumn:
    case ExprKind::kPosition:
      return false;
    case ExprKind::kUnary:
      return ExprHasParam(expr->operand());
    case ExprKind::kBinary:
      return ExprHasParam(expr->left()) || ExprHasParam(expr->right());
  }
  return false;
}

PhysNodePtr BindNodeParams(const PhysNodePtr& node,
                           const std::vector<Value>& params) {
  if (node == nullptr) return node;
  ExprPtr bound_pred = BindExprParams(node->predicate, params);
  std::vector<PhysNodePtr> bound_children;
  bool child_changed = false;
  bound_children.reserve(node->children.size());
  for (const PhysNodePtr& child : node->children) {
    PhysNodePtr bound = BindNodeParams(child, params);
    if (bound != child) child_changed = true;
    bound_children.push_back(std::move(bound));
  }
  if (bound_pred == node->predicate && !child_changed) return node;
  auto copy = std::make_shared<PhysNode>(*node);
  copy->predicate = std::move(bound_pred);
  copy->children = std::move(bound_children);
  return copy;
}

void CollectExprParamIndices(const ExprPtr& expr, std::vector<int>* out) {
  if (expr == nullptr) return;
  switch (expr->kind()) {
    case ExprKind::kLiteral:
      if (expr->param_index() >= 0) out->push_back(expr->param_index());
      return;
    case ExprKind::kColumn:
    case ExprKind::kPosition:
      return;
    case ExprKind::kUnary:
      CollectExprParamIndices(expr->operand(), out);
      return;
    case ExprKind::kBinary:
      CollectExprParamIndices(expr->left(), out);
      CollectExprParamIndices(expr->right(), out);
      return;
  }
}

void CollectNodeParamIndices(const PhysNodePtr& node, std::vector<int>* out) {
  if (node == nullptr) return;
  CollectExprParamIndices(node->predicate, out);
  for (const PhysNodePtr& child : node->children) {
    CollectNodeParamIndices(child, out);
  }
}

/// Resolves the raw stats-store pointer annotated on a node back to the
/// owning shared_ptr via the node's source names.
BaseSequencePtr ResolveStatsStore(const SeqMeta& meta,
                                  const Catalog& catalog) {
  if (meta.stats_store == nullptr) return nullptr;
  for (const std::string& name : meta.source_names) {
    auto entry = catalog.Lookup(name);
    if (!entry.ok()) continue;
    if ((*entry)->store != nullptr && (*entry)->store.get() == meta.stats_store) {
      return (*entry)->store;
    }
  }
  return nullptr;
}

void CaptureRecostChecksImpl(const LogicalOpPtr& node, const Catalog& catalog,
                             const CostParams& params,
                             std::vector<RecostCheck>* out) {
  if (node == nullptr) return;
  if (node->kind() == OpKind::kSelect && ExprHasParam(node->predicate())) {
    BaseSequencePtr store =
        ResolveStatsStore(node->input()->meta(), catalog);
    if (store != nullptr) {
      RecostCheck check;
      check.predicate = node->predicate();
      check.store = store;
      check.planned_selectivity =
          EstimateSelectivity(node->predicate(), store.get(), params);
      out->push_back(std::move(check));
    }
  }
  for (const LogicalOpPtr& input : node->inputs()) {
    CaptureRecostChecksImpl(input, catalog, params, out);
  }
}

}  // namespace

ParameterizedQuery ParameterizeQuery(const Query& query) {
  ParameterizedQuery out;
  out.query.graph = query.graph->Clone();
  out.query.range = query.range;
  out.query.positions = query.positions;
  out.query.position_sequence = query.position_sequence;
  TagGraph(out.query.graph, &out.params, &out.signature);
  // The driving range/positions are baked into the plan by span pushdown,
  // so they are part of the shape, not parameters.
  out.signature += "|range=";
  if (query.range.has_value()) {
    out.signature += std::to_string(query.range->start);
    out.signature += ':';
    out.signature += std::to_string(query.range->end);
  } else {
    out.signature += "none";
  }
  out.signature += "|posseq=";
  out.signature += query.position_sequence;
  if (!query.positions.empty()) {
    // Hash the position list instead of serializing it (point queries can
    // carry thousands of positions). Collisions are insured against at
    // lookup time: the engine verifies the cached plan's position list
    // matches before reuse.
    std::string pos_bytes(
        reinterpret_cast<const char*>(query.positions.data()),
        query.positions.size() * sizeof(Position));
    out.signature += "|npos=";
    out.signature += std::to_string(query.positions.size());
    out.signature += ":";
    out.signature += std::to_string(Fnv1a64(pos_bytes));
  }
  return out;
}

ExprPtr BindExprParams(const ExprPtr& expr, const std::vector<Value>& params) {
  if (expr == nullptr) return expr;
  switch (expr->kind()) {
    case ExprKind::kLiteral: {
      const int index = expr->param_index();
      if (index < 0 || static_cast<size_t>(index) >= params.size()) {
        return expr;
      }
      // Re-binding an equal value keeps the node shared.
      const Value& v = params[static_cast<size_t>(index)];
      if (v.type() == expr->literal().type() && v == expr->literal()) {
        return expr;
      }
      return Expr::ParamLiteral(v, index);
    }
    case ExprKind::kColumn:
    case ExprKind::kPosition:
      return expr;
    case ExprKind::kUnary: {
      ExprPtr operand = BindExprParams(expr->operand(), params);
      if (operand == expr->operand()) return expr;
      return Expr::Unary(expr->unary_op(), std::move(operand));
    }
    case ExprKind::kBinary: {
      ExprPtr left = BindExprParams(expr->left(), params);
      ExprPtr right = BindExprParams(expr->right(), params);
      if (left == expr->left() && right == expr->right()) return expr;
      return Expr::Binary(expr->binary_op(), std::move(left),
                          std::move(right));
    }
  }
  SEQ_CHECK(false);
  return nullptr;
}

PhysicalPlan BindPlanParams(const PhysicalPlan& plan,
                            const std::vector<Value>& params) {
  PhysicalPlan out = plan;
  out.root = BindNodeParams(plan.root, params);
  return out;
}

void CollectPlanParamIndices(const PhysicalPlan& plan,
                             std::vector<int>* out) {
  CollectNodeParamIndices(plan.root, out);
}

bool PlanCoversAllParams(const PhysicalPlan& plan, size_t param_count) {
  if (param_count == 0) return true;
  std::vector<bool> seen(param_count, false);
  std::vector<int> indices;
  CollectPlanParamIndices(plan, &indices);
  for (int index : indices) {
    if (index >= 0 && static_cast<size_t>(index) < param_count) {
      seen[static_cast<size_t>(index)] = true;
    }
  }
  return std::all_of(seen.begin(), seen.end(), [](bool b) { return b; });
}

std::string FingerprintOptimizerOptions(const OptimizerOptions& options) {
  const CostParams& p = options.cost_params;
  std::ostringstream oss;
  oss << p.join_predicate_cost << '|' << p.select_predicate_cost << '|'
      << p.cache_store_cost << '|' << p.cache_access_cost << '|'
      << p.compute_cost << '|' << p.agg_step_cost << '|'
      << p.default_eq_selectivity << '|' << p.default_range_selectivity << '|'
      << p.max_cached_scope << '|' << p.disable_incremental_value_offset
      << '|' << p.disable_window_cache << '|' << p.max_dp_items << '|'
      << p.force_join_strategy << '|' << options.enable_rewrites << '|'
      << options.enable_span_pushdown << '|';
  if (options.force_root_mode.has_value()) {
    oss << static_cast<int>(*options.force_root_mode);
  } else {
    oss << '-';
  }
  return oss.str();
}

std::vector<RecostCheck> CaptureRecostChecks(const LogicalOpPtr& graph,
                                             const Catalog& catalog,
                                             const CostParams& params) {
  std::vector<RecostCheck> out;
  CaptureRecostChecksImpl(graph, catalog, params, &out);
  return out;
}

bool RecostWithinThreshold(const std::vector<RecostCheck>& checks,
                           const std::vector<Value>& params,
                           const CostParams& cost_params, double threshold) {
  for (const RecostCheck& check : checks) {
    ExprPtr bound = BindExprParams(check.predicate, params);
    const double now =
        EstimateSelectivity(bound, check.store.get(), cost_params);
    const double planned = check.planned_selectivity;
    const double lo = std::min(now, planned);
    const double hi = std::max(now, planned);
    if (lo <= 0.0) {
      if (hi > 0.0) return false;
      continue;
    }
    if (hi / lo > threshold) return false;
  }
  return true;
}

}  // namespace seq
