#ifndef SEQ_OPTIMIZER_OPTIMIZER_H_
#define SEQ_OPTIMIZER_OPTIMIZER_H_

#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/cost_params.h"
#include "common/result.h"
#include "logical/logical_op.h"
#include "optimizer/physical_plan.h"
#include "optimizer/planner.h"

namespace seq {

/// A sequence query per the Fig. 6 template: a sequence query graph plus
/// how it is asked — all positions in a range, or a list of specific
/// positions (the Position Sequence of the template).
struct Query {
  LogicalOpPtr graph;

  /// Range query: all positions in `range` (if unset, the graph's own span
  /// bounded by its base sequences).
  std::optional<Span> range;

  /// Point query: exactly these positions (overrides `range` when
  /// non-empty). Must be sorted ascending.
  std::vector<Position> positions;

  /// Fig. 6's Position Sequence proper: the name of a base sequence whose
  /// record positions are the positions queried (intersected with `range`
  /// when set). Overrides `positions`.
  std::string position_sequence;
};

/// Switches for ablation benchmarks; everything on by default.
struct OptimizerOptions {
  CostParams cost_params;
  bool enable_rewrites = true;       ///< §3.1 transformations (Step 3)
  bool enable_span_pushdown = true;  ///< §3.2 top-down span pass (Step 2.b)
  /// Force the root access mode instead of costing both (for experiments).
  std::optional<AccessMode> force_root_mode;
  /// Record an OptTrace of rewrites, plan candidates and choices (see
  /// Optimizer::trace()). Off by default; Optimize pays nothing when off.
  bool collect_trace = false;
};

/// The sequence query optimizer (paper §4): bottom-up, cost-based plan
/// generation over the annotated, rewritten query graph.
class Optimizer {
 public:
  explicit Optimizer(const Catalog& catalog, OptimizerOptions options = {})
      : catalog_(catalog), options_(std::move(options)) {}

  /// Runs Steps 1–6 and returns the selected evaluation plan. The input
  /// graph is cloned; the caller's graph is never modified.
  Result<PhysicalPlan> Optimize(const Query& query);

  /// Enumeration counters of the last Optimize call (Property 4.1).
  const PlannerStats& planner_stats() const { return planner_stats_; }

  /// Rewrite-rule applications of the last Optimize call.
  const std::vector<std::string>& rewrites_applied() const {
    return rewrites_applied_;
  }

  /// The annotated, rewritten logical graph of the last Optimize call
  /// (for explain / tests).
  const LogicalOpPtr& optimized_graph() const { return optimized_graph_; }

  /// Decision trace of the last Optimize call. Only populated when
  /// OptimizerOptions::collect_trace was set.
  const OptTrace& trace() const { return trace_; }

 private:
  const Catalog& catalog_;
  OptimizerOptions options_;
  PlannerStats planner_stats_;
  std::vector<std::string> rewrites_applied_;
  LogicalOpPtr optimized_graph_;
  OptTrace trace_;
};

}  // namespace seq

#endif  // SEQ_OPTIMIZER_OPTIMIZER_H_
