#ifndef SEQ_OPTIMIZER_PLAN_TEMPLATE_H_
#define SEQ_OPTIMIZER_PLAN_TEMPLATE_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/cost_params.h"
#include "expr/expr.h"
#include "logical/logical_op.h"
#include "optimizer/optimizer.h"
#include "optimizer/physical_plan.h"
#include "types/value.h"

namespace seq {

/// A query split into its shape and its literals, the unit the plan cache
/// keys on. `query` is a deep clone of the input whose expression literals
/// carry bind-parameter tags (Expr::param_index, assigned in traversal
/// order); `params` holds the literal values in tag order; `signature` is
/// the canonical shape string — two queries that differ only in expression
/// literals produce identical signatures and differ only in `params`.
///
/// Structural integers (positional/value offsets, window sizes, collapse
/// and expand factors) are part of the signature VERBATIM, not parameters:
/// they change the plan's span arithmetic and operator shapes, so a plan
/// template must never be reused across them. Only literals inside
/// selection/compose predicates are parameterized. The query's range and
/// positions also go into the signature (span pushdown bakes them into the
/// plan), so a cached template is only reused for the exact same driving
/// range / position list.
struct ParameterizedQuery {
  Query query;
  std::string signature;
  std::vector<Value> params;
};

/// Parameterizes `query` (see ParameterizedQuery). The input is not
/// modified.
ParameterizedQuery ParameterizeQuery(const Query& query);

/// Rebuilds `expr` with every tagged literal re-bound to
/// `params[param_index]`. Untouched subtrees are shared, not copied;
/// returns `expr` itself when it contains no parameters. Tags are kept on
/// the rebound nodes so a bound tree can be re-bound again.
ExprPtr BindExprParams(const ExprPtr& expr, const std::vector<Value>& params);

/// Rebuilds `plan` with `params` bound into every tagged literal. Only
/// nodes on a path to a parameterized predicate are copied; all other
/// nodes (and the whole tree when there are no parameters) are shared with
/// the template.
PhysicalPlan BindPlanParams(const PhysicalPlan& plan,
                            const std::vector<Value>& params);

/// Appends the param_index of every tagged literal reachable from `plan`'s
/// operator predicates to `out` (duplicates possible). Used for the
/// coverage guard: a template whose plan no longer mentions every extracted
/// parameter (a rewrite dropped or folded a predicate) must not be rebound
/// with fresh literals — the dropped literal's value is baked into the
/// plan's shape decisions.
void CollectPlanParamIndices(const PhysicalPlan& plan, std::vector<int>* out);

/// True when every parameter 0..param_count-1 appears at least once in
/// `plan`'s predicates (trivially true for param_count == 0).
bool PlanCoversAllParams(const PhysicalPlan& plan, size_t param_count);

/// Canonical fingerprint of every planning-relevant OptimizerOptions field
/// (all CostParams members plus rewrite/pushdown/root-mode switches;
/// collect_trace excluded — it does not change the chosen plan). Two
/// option sets with equal fingerprints always produce the same plan for
/// the same query and catalog.
std::string FingerprintOptimizerOptions(const OptimizerOptions& options);

/// One literal-sensitive costing assumption captured from an optimized
/// plan: a selection predicate (tagged literals), the base-sequence store
/// whose column statistics priced it, and the selectivity the planner
/// assumed. The store is held by shared_ptr so a cached check can never
/// dangle after the catalog changes.
struct RecostCheck {
  ExprPtr predicate;
  BaseSequencePtr store;
  double planned_selectivity = 0.0;
};

/// Walks the optimizer's annotated output graph and captures a RecostCheck
/// for every selection whose predicate contains bind parameters and whose
/// input offers column statistics. `catalog` resolves the raw stats-store
/// pointer in the node meta back to an owning BaseSequencePtr.
std::vector<RecostCheck> CaptureRecostChecks(const LogicalOpPtr& graph,
                                             const Catalog& catalog,
                                             const CostParams& params);

/// Re-estimates every check with `params` bound and compares against the
/// planned selectivity. Returns false — the caller must fall back to a
/// full optimize — when any estimate deviates by more than `threshold`
/// (ratio of the larger to the smaller; threshold 4.0 means "off by more
/// than 4x either way").
bool RecostWithinThreshold(const std::vector<RecostCheck>& checks,
                           const std::vector<Value>& params,
                           const CostParams& cost_params, double threshold);

}  // namespace seq

#endif  // SEQ_OPTIMIZER_PLAN_TEMPLATE_H_
