#ifndef SEQ_OPTIMIZER_ANNOTATE_H_
#define SEQ_OPTIMIZER_ANNOTATE_H_

#include "catalog/catalog.h"
#include "catalog/cost_params.h"
#include "common/status.h"
#include "logical/logical_op.h"

namespace seq {

/// Meta-information propagation over the query graph (paper §4, Step 2).
class Annotator {
 public:
  Annotator(const Catalog& catalog, const CostParams& params)
      : catalog_(catalog), params_(params) {}

  /// Step 2.a — bottom-up annotation: type checks the graph and fills in
  /// every node's schema, span, density and provenance, using each
  /// operator's semantics to propagate spans and densities from the base
  /// sequences upward.
  Status AnnotateBottomUp(LogicalOp* op) const;

  /// Step 2.b — top-down annotation (the Fig. 3 span optimization): given
  /// the span requested at the root, narrows every node's `required` span;
  /// a compose operator propagates the *intersection* of its inputs' spans
  /// into both inputs, shrinking base-sequence scan ranges.
  /// Requires AnnotateBottomUp to have run.
  ///
  /// With `narrow` false (the Fig. 3 ablation), the requested range is
  /// still propagated vertically — evaluation must be bounded — but no
  /// node's required span is tightened by its own or a sibling's span, so
  /// base sequences are scanned over the full requested window.
  void PushRequiredSpans(LogicalOp* op, Span required,
                         bool narrow = true) const;

 private:
  Status AnnotateNode(LogicalOp* op) const;

  const Catalog& catalog_;
  CostParams params_;
};

}  // namespace seq

#endif  // SEQ_OPTIMIZER_ANNOTATE_H_
