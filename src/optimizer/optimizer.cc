#include "optimizer/optimizer.h"

#include <algorithm>
#include <chrono>

#include "optimizer/annotate.h"
#include "optimizer/rewriter.h"

namespace seq {
namespace {

/// Hull of the base-sequence spans under `op`; used to bound queries whose
/// graphs have unbounded spans (value offsets, constants).
Span BaseSpanHull(const LogicalOp& op) {
  if (op.arity() == 0) {
    if (op.kind() == OpKind::kBaseRef) return op.meta().span;
    return Span::Empty();  // constants do not bound anything
  }
  Span hull = Span::Empty();
  for (const LogicalOpPtr& in : op.inputs()) {
    hull = hull.Hull(BaseSpanHull(*in));
  }
  // An ancestor offset shifts where those base positions surface, but for
  // bounding purposes the hull of leaf spans is a serviceable default.
  return hull;
}

}  // namespace

Result<PhysicalPlan> Optimizer::Optimize(const Query& query) {
  if (query.graph == nullptr) {
    return Status::InvalidArgument("query has no graph");
  }
  planner_stats_ = PlannerStats{};
  rewrites_applied_.clear();
  trace_ = OptTrace{};
  OptTrace* trace = options_.collect_trace ? &trace_ : nullptr;
  auto opt_start = std::chrono::steady_clock::now();
  auto finish_trace = [&] {
    if (trace == nullptr) return;
    trace_.plans_considered = planner_stats_.plans_considered;
    trace_.plans_retained_max = planner_stats_.plans_retained_max;
    trace_.join_blocks = planner_stats_.join_blocks;
    trace_.largest_block = planner_stats_.largest_block;
    trace_.nonunit_blocks = planner_stats_.nonunit_blocks;
    trace_.optimize_us = std::chrono::duration_cast<std::chrono::microseconds>(
                             std::chrono::steady_clock::now() - opt_start)
                             .count();
  };

  // Step 1 — specification: work on a private clone.
  LogicalOpPtr graph = query.graph->Clone();

  // Step 2.a — bottom-up annotation (type check, span/density propagation).
  Annotator annotator(catalog_, options_.cost_params);
  SEQ_RETURN_IF_ERROR(annotator.AnnotateBottomUp(graph.get()));

  // Step 3 — equivalence transformations, then re-annotate since spans,
  // densities and schemas of intermediate nodes moved.
  if (options_.enable_rewrites) {
    Rewriter rewriter;
    SEQ_RETURN_IF_ERROR(rewriter.Rewrite(&graph));
    rewrites_applied_ = rewriter.applied();
    if (trace != nullptr) {
      for (const std::string& rule : rewriter.applied()) {
        trace->Add("rewrite", rule);
      }
      for (const std::string& rejection : rewriter.rejected()) {
        trace->Add("rewrite-rejected", rejection);
      }
    }
    SEQ_RETURN_IF_ERROR(annotator.AnnotateBottomUp(graph.get()));
  }

  // Resolve the requested range (the Fig. 6 position-sequence template).
  Query resolved_query;
  const Query* active = &query;
  if (!query.position_sequence.empty()) {
    // A named Position Sequence: its non-null record positions are the
    // positions asked for.
    SEQ_ASSIGN_OR_RETURN(const CatalogEntry* entry,
                         catalog_.Lookup(query.position_sequence));
    if (entry->kind != CatalogEntry::Kind::kBase) {
      return Status::InvalidArgument("position sequence '" +
                                     query.position_sequence +
                                     "' must be a base sequence");
    }
    resolved_query = query;
    resolved_query.positions.clear();
    for (const PosRecord& pr : entry->store->records()) {
      if (!query.range.has_value() || query.range->Contains(pr.pos)) {
        resolved_query.positions.push_back(pr.pos);
      }
    }
    if (resolved_query.positions.empty()) {
      PhysicalPlan empty;
      empty.schema = graph->meta().schema;
      empty.output_span = Span::Empty();
      optimized_graph_ = graph;
      // A plan over an empty position set: keep a valid root for explain.
      Planner empty_planner(catalog_, options_.cost_params,
                            &planner_stats_, trace);
      annotator.PushRequiredSpans(graph.get(), Span::Empty(),
                                  options_.enable_span_pushdown);
      SEQ_ASSIGN_OR_RETURN(PlannedSeq planned, empty_planner.Plan(*graph));
      empty.root = planned.stream_plan;
      empty.root_mode = AccessMode::kStream;
      finish_trace();
      return empty;
    }
    resolved_query.range.reset();
    active = &resolved_query;
  }
  const Query& q = *active;

  Span requested;
  if (!q.positions.empty()) {
    for (size_t i = 1; i < q.positions.size(); ++i) {
      if (q.positions[i] <= q.positions[i - 1]) {
        return Status::InvalidArgument(
            "query positions must be strictly ascending");
      }
    }
    requested = Span::Of(q.positions.front(), q.positions.back());
  } else if (q.range.has_value()) {
    requested = *q.range;
  } else {
    requested = graph->meta().span;
  }
  if (requested.IsUnbounded()) {
    Span hull = BaseSpanHull(*graph);
    if (hull.IsEmpty() || hull.IsUnbounded()) {
      return Status::InvalidArgument(
          "query range is unbounded (no base sequence bounds it); specify "
          "an explicit range");
    }
    requested = requested.Intersect(hull);
  }

  // Step 2.b — top-down span propagation (or plain vertical bounding when
  // the Fig. 3 optimization is disabled).
  annotator.PushRequiredSpans(graph.get(), requested,
                              options_.enable_span_pushdown);

  // Steps 4 & 5 — block identification and block-wise plan generation.
  Planner planner(catalog_, options_.cost_params, &planner_stats_, trace);
  SEQ_ASSIGN_OR_RETURN(PlannedSeq planned, planner.Plan(*graph));

  optimized_graph_ = graph;

  // Step 6 — plan selection at the Start operator.
  PhysicalPlan plan;
  plan.schema = planned.schema;
  plan.output_span = requested;
  plan.positions = q.positions;

  double stream_cost = planned.stream_cost;
  double probed_cost;
  if (!q.positions.empty()) {
    // Point queries probe exactly |positions| positions.
    probed_cost = planned.ToAccessEst().PerProbe() *
                  static_cast<double>(q.positions.size());
  } else {
    probed_cost = planned.probed_cost;
  }

  AccessMode mode;
  if (options_.force_root_mode.has_value()) {
    mode = *options_.force_root_mode;
    if (trace != nullptr) {
      trace->Add("choice",
                 std::string("root mode forced to ") + AccessModeName(mode));
    }
  } else {
    mode = (stream_cost <= probed_cost) ? AccessMode::kStream
                                        : AccessMode::kProbed;
  }
  if (trace != nullptr) {
    trace->Add("choice", "root: stream driving", stream_cost,
               mode == AccessMode::kStream);
    trace->Add("choice", "root: probed driving", probed_cost,
               mode == AccessMode::kProbed);
  }
  if (mode == AccessMode::kStream) {
    plan.root = planned.stream_plan;
    plan.root_mode = AccessMode::kStream;
    plan.est_cost = stream_cost;
  } else {
    plan.root = planned.probed_plan;
    plan.root_mode = AccessMode::kProbed;
    plan.est_cost = probed_cost;
  }
  finish_trace();
  return plan;
}

}  // namespace seq
