#include "core/database_io.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "parser/parser.h"
#include "parser/unparse.h"
#include "storage/file_format.h"

namespace seq {
namespace {

namespace fs = std::filesystem;

constexpr char kManifestName[] = "manifest.seqdb";

bool SafeName(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

Status SaveDatabase(const Engine& engine, const std::string& directory) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return Status::InvalidArgument("cannot create '" + directory +
                                   "': " + ec.message());
  }
  std::ostringstream manifest;
  manifest << "seqdb 1\n";
  for (const std::string& name : engine.catalog().ListSequences()) {
    if (!SafeName(name)) {
      return Status::InvalidArgument("sequence name '" + name +
                                     "' is not file-safe");
    }
    auto entry = engine.catalog().Lookup(name);
    SEQ_RETURN_IF_ERROR(entry.status());
    if ((*entry)->kind == CatalogEntry::Kind::kBase) {
      std::string file = name + ".seq1";
      SEQ_RETURN_IF_ERROR(
          SaveSequence(*(*entry)->store, directory + "/" + file));
      manifest << "base " << name << " " << file << "\n";
    } else {
      // Persist the constant's schema + record as a one-record store.
      BaseSequenceStore holder((*entry)->schema);
      SEQ_RETURN_IF_ERROR(holder.Append(0, (*entry)->constant));
      std::string file = name + ".const.seq1";
      SEQ_RETURN_IF_ERROR(SaveSequence(holder, directory + "/" + file));
      manifest << "constant " << name << " " << file << "\n";
    }
  }
  for (const auto& [a, b, value] : engine.catalog().ListCorrelations()) {
    manifest << "corr " << a << " " << b << " " << value << "\n";
  }
  for (const auto& [name, graph] : engine.views()) {
    if (!SafeName(name)) {
      return Status::InvalidArgument("view name '" + name +
                                     "' is not file-safe");
    }
    SEQ_ASSIGN_OR_RETURN(std::string text, UnparseQuery(*graph, name));
    std::string file = name + ".sequin";
    std::ofstream out(directory + "/" + file);
    out << text << "\n";
    if (!out) {
      return Status::Internal("write of view '" + name + "' failed");
    }
    manifest << "view " << name << " " << file << "\n";
  }
  std::ofstream out(directory + "/" + kManifestName);
  out << manifest.str();
  if (!out) {
    return Status::Internal("write of manifest failed");
  }
  return Status::OK();
}

Status LoadDatabase(const std::string& directory, Engine* engine) {
  if (engine == nullptr) {
    return Status::InvalidArgument("null engine");
  }
  std::ifstream in(directory + "/" + kManifestName);
  if (!in) {
    return Status::NotFound("no manifest in '" + directory + "'");
  }
  std::string line;
  if (!std::getline(in, line) || line != "seqdb 1") {
    return Status::InvalidArgument("unsupported manifest header: " + line);
  }
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    auto bad = [&](const std::string& why) {
      return Status::InvalidArgument("manifest line " +
                                     std::to_string(line_no) + ": " + why);
    };
    if (kind == "base" || kind == "constant") {
      std::string name, file;
      if (!(fields >> name >> file) || !SafeName(name)) {
        return bad("malformed sequence entry");
      }
      SEQ_ASSIGN_OR_RETURN(BaseSequencePtr store,
                           LoadSequence(directory + "/" + file));
      if (kind == "base") {
        SEQ_RETURN_IF_ERROR(engine->RegisterBase(name, std::move(store)));
      } else {
        if (store->num_records() != 1) {
          return bad("constant file must hold exactly one record");
        }
        SEQ_RETURN_IF_ERROR(engine->RegisterConstant(
            name, store->schema(), store->records()[0].rec));
      }
    } else if (kind == "corr") {
      std::string a, b;
      double value = 0;
      if (!(fields >> a >> b >> value) || value < 0.0 || value > 1.0) {
        return bad("malformed correlation entry");
      }
      engine->catalog().SetNullCorrelation(a, b, value);
    } else if (kind == "view") {
      std::string name, file;
      if (!(fields >> name >> file) || !SafeName(name)) {
        return bad("malformed view entry");
      }
      std::ifstream vin(directory + "/" + file);
      if (!vin) {
        return bad("missing view file '" + file + "'");
      }
      std::ostringstream text;
      text << vin.rdbuf();
      SEQ_ASSIGN_OR_RETURN(LogicalOpPtr graph,
                           ParseSequinQuery(text.str()));
      SEQ_RETURN_IF_ERROR(engine->DefineView(name, std::move(graph)));
    } else {
      return bad("unknown entry kind '" + kind + "'");
    }
  }
  return Status::OK();
}

}  // namespace seq
