#include "core/views.h"

#include <set>

namespace seq {
namespace {

Result<LogicalOpPtr> InlineImpl(const LogicalOpPtr& node,
                                const ViewMap& views,
                                std::set<std::string>* expanding) {
  if (node->kind() == OpKind::kBaseRef) {
    auto it = views.find(node->seq_name());
    if (it == views.end()) return node->Clone();
    if (!expanding->insert(node->seq_name()).second) {
      return Status::InvalidArgument("cyclic view definition through '" +
                                     node->seq_name() + "'");
    }
    SEQ_ASSIGN_OR_RETURN(LogicalOpPtr inlined,
                         InlineImpl(it->second, views, expanding));
    expanding->erase(node->seq_name());
    return inlined;
  }
  LogicalOpPtr clone = node->Clone();
  for (size_t i = 0; i < clone->arity(); ++i) {
    SEQ_ASSIGN_OR_RETURN(clone->mutable_input(i),
                         InlineImpl(clone->input(i), views, expanding));
  }
  return clone;
}

}  // namespace

Result<LogicalOpPtr> InlineViews(const LogicalOpPtr& graph,
                                 const ViewMap& views) {
  if (graph == nullptr) {
    return Status::InvalidArgument("null graph");
  }
  if (views.empty()) return graph;
  std::set<std::string> expanding;
  return InlineImpl(graph, views, &expanding);
}

}  // namespace seq
