#include "core/plan_cache.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/query_digest.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace seq {

namespace {

struct PlanCacheMetrics {
  MetricCounter& hits;
  MetricCounter& misses;
  MetricCounter& inserts;
  MetricCounter& evictions;
  MetricCounter& invalidations;
  MetricCounter& recost_fallbacks;
};

PlanCacheMetrics& Metrics() {
  static PlanCacheMetrics* m = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    return new PlanCacheMetrics{
        reg.Counter("engine.plan_cache.hits"),
        reg.Counter("engine.plan_cache.misses"),
        reg.Counter("engine.plan_cache.inserts"),
        reg.Counter("engine.plan_cache.evictions"),
        reg.Counter("engine.plan_cache.invalidations"),
        reg.Counter("engine.plan_cache.recost_fallbacks"),
    };
  }();
  return *m;
}

size_t EnvSize(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(env, &end, 10);
  if (end == env || v <= 0) return fallback;
  return static_cast<size_t>(v);
}

}  // namespace

PlanCache::PlanCache(size_t max_entries, size_t max_bytes)
    : max_entries_(std::max<size_t>(max_entries, kShards)),
      max_bytes_(std::max<size_t>(max_bytes, 1)) {}

PlanCache::Shard& PlanCache::ShardFor(const std::string& key) {
  return shards_[Fnv1a64(key) % kShards];
}

PlanCacheEntryPtr PlanCache::Lookup(const std::string& key) {
  if (!enabled()) return nullptr;
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
      it->second.entry->hits.fetch_add(1, std::memory_order_relaxed);
      hits_.fetch_add(1, std::memory_order_relaxed);
      Metrics().hits.Add();
      return it->second.entry;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  Metrics().misses.Add();
  return nullptr;
}

void PlanCache::EvictLocked(Shard& shard) {
  const size_t shard_entries = std::max<size_t>(max_entries_ / kShards, 1);
  const size_t shard_bytes = std::max<size_t>(max_bytes_ / kShards, 1);
  while (!shard.lru.empty() &&
         (shard.map.size() > shard_entries || shard.bytes > shard_bytes)) {
    const std::string& victim = shard.lru.back();
    auto it = shard.map.find(victim);
    if (it != shard.map.end()) {
      shard.bytes -= std::min(shard.bytes, it->second.entry->bytes);
      shard.map.erase(it);
    }
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    Metrics().evictions.Add();
  }
}

void PlanCache::Insert(const std::string& key, PlanCacheEntryPtr entry) {
  if (!enabled() || entry == nullptr) return;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    shard.bytes -= std::min(shard.bytes, it->second.entry->bytes);
    shard.bytes += entry->bytes;
    it->second.entry = std::move(entry);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  } else {
    shard.lru.push_front(key);
    shard.bytes += entry->bytes;
    shard.map.emplace(key, Shard::Slot{std::move(entry), shard.lru.begin()});
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
  Metrics().inserts.Add();
  EvictLocked(shard);
}

void PlanCache::CountRecostFallback() {
  recost_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  Metrics().recost_fallbacks.Add();
}

std::shared_ptr<const TextShapeEntry> PlanCache::LookupText(
    const std::string& key) {
  if (!enabled()) return nullptr;
  std::lock_guard<std::mutex> lock(text_mu_);
  auto it = text_map_.find(key);
  if (it == text_map_.end()) return nullptr;
  text_lru_.splice(text_lru_.begin(), text_lru_, it->second.lru_it);
  text_hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.entry;
}

void PlanCache::InsertText(const std::string& key,
                           std::shared_ptr<const TextShapeEntry> entry) {
  if (!enabled() || entry == nullptr) return;
  std::lock_guard<std::mutex> lock(text_mu_);
  auto it = text_map_.find(key);
  if (it != text_map_.end()) {
    it->second.entry = std::move(entry);
    text_lru_.splice(text_lru_.begin(), text_lru_, it->second.lru_it);
    return;
  }
  text_lru_.push_front(key);
  text_map_.emplace(key,
                    TextSlot{std::move(entry), text_lru_.begin()});
  while (text_map_.size() > max_entries_ && !text_lru_.empty()) {
    text_map_.erase(text_lru_.back());
    text_lru_.pop_back();
  }
}

void PlanCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
    shard.lru.clear();
    shard.bytes = 0;
  }
  std::lock_guard<std::mutex> lock(text_mu_);
  text_map_.clear();
  text_lru_.clear();
}

void PlanCache::InvalidateEngine(uint64_t engine_id) {
  uint64_t dropped = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.map.begin(); it != shard.map.end();) {
      if (it->second.entry->engine_id == engine_id) {
        shard.bytes -= std::min(shard.bytes, it->second.entry->bytes);
        shard.lru.erase(it->second.lru_it);
        it = shard.map.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(text_mu_);
    for (auto it = text_map_.begin(); it != text_map_.end();) {
      if (it->second.entry->engine_id == engine_id) {
        text_lru_.erase(it->second.lru_it);
        it = text_map_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (dropped > 0) {
    invalidations_.fetch_add(dropped, std::memory_order_relaxed);
    Metrics().invalidations.Add(static_cast<int64_t>(dropped));
  }
}

void PlanCache::set_enabled(bool enabled) {
  const bool was = enabled_.exchange(enabled, std::memory_order_relaxed);
  if (was && !enabled) Clear();
}

PlanCacheStats PlanCache::Stats() const {
  PlanCacheStats out;
  out.enabled = enabled();
  out.max_entries = max_entries_;
  out.max_bytes = max_bytes_;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.entries += shard.map.size();
    out.bytes += shard.bytes;
  }
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.inserts = inserts_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.invalidations = invalidations_.load(std::memory_order_relaxed);
  out.recost_fallbacks = recost_fallbacks_.load(std::memory_order_relaxed);
  out.text_hits = text_hits_.load(std::memory_order_relaxed);
  return out;
}

std::string PlanCache::ToString(size_t limit) const {
  const PlanCacheStats s = Stats();
  std::ostringstream oss;
  oss << "plan cache: " << (s.enabled ? "on" : "off") << ", " << s.entries
      << " entr" << (s.entries == 1 ? "y" : "ies") << ", " << s.bytes
      << " bytes (caps: " << s.max_entries << " entries, " << s.max_bytes
      << " bytes)\n";
  const uint64_t lookups = s.hits + s.misses;
  oss << "  hits=" << s.hits << " misses=" << s.misses << " (hit-rate ";
  if (lookups > 0) {
    oss << FormatDouble(100.0 * static_cast<double>(s.hits) /
                        static_cast<double>(lookups))
        << "%";
  } else {
    oss << "n/a";
  }
  oss << ") text_hits=" << s.text_hits << "\n";
  oss << "  inserts=" << s.inserts << " evictions=" << s.evictions
      << " invalidations=" << s.invalidations
      << " recost_fallbacks=" << s.recost_fallbacks << "\n";
  // Hottest entries across all shards.
  struct Row {
    uint64_t hits;
    std::string display;
  };
  std::vector<Row> rows;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, slot] : shard.map) {
      rows.push_back(Row{slot.entry->hits.load(std::memory_order_relaxed),
                         slot.entry->display});
    }
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.hits != b.hits) return a.hits > b.hits;
    return a.display < b.display;
  });
  const size_t shown = std::min(limit, rows.size());
  for (size_t i = 0; i < shown; ++i) {
    oss << "  [" << rows[i].hits << "x] " << rows[i].display << "\n";
  }
  if (rows.size() > shown) {
    oss << "  ... (" << rows.size() << " entries total)\n";
  }
  return oss.str();
}

PlanCache& PlanCache::Global() {
  static PlanCache* cache = [] {
    auto* c = new PlanCache(
        EnvSize("SEQ_PLAN_CACHE_ENTRIES", kDefaultMaxEntries),
        EnvSize("SEQ_PLAN_CACHE_BYTES", kDefaultMaxBytes));
    // SEQ_PLAN_CACHE=0/off/false starts the cache disabled; anything else
    // (including unset) leaves it on. ExecOptions::use_plan_cache reads
    // the same variable for the per-query default.
    if (const char* env = std::getenv("SEQ_PLAN_CACHE")) {
      const std::string_view v(env);
      if (v == "0" || v == "off" || v == "false") c->set_enabled(false);
    }
    return c;
  }();
  return *cache;
}

uint64_t PlanCache::NextEngineId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace seq
