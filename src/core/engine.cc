#include "core/engine.h"

#include <chrono>
#include <sstream>

#include "obs/metrics.h"
#include "obs/query_registry.h"
#include "obs/slow_query_log.h"
#include "parser/unparse.h"

namespace seq {

Result<PhysicalPlan> Engine::Plan(const Query& query) const {
  Query inlined = query;
  SEQ_ASSIGN_OR_RETURN(inlined.graph, InlineViews(query.graph, views_));
  Optimizer optimizer(catalog_, options_);
  return optimizer.Optimize(inlined);
}

namespace {

/// Optimizer options for the graceful-degradation retry: the same query,
/// planned with every operator cache (Cache-Strategy-A windows,
/// Cache-Strategy-B offset caches) disabled, so the fallback plan cannot
/// hit QueryGuards::max_cache_bytes again.
OptimizerOptions CacheFreeOptions(const OptimizerOptions& options) {
  OptimizerOptions degraded = options;
  degraded.cost_params.disable_window_cache = true;
  degraded.cost_params.disable_incremental_value_offset = true;
  return degraded;
}

/// Display text for the query registry and slow-query log: the query
/// rendered back to Sequin, with the range/point request appended. Only
/// called when the registry is enabled — the disabled fast path never
/// pays the unparse.
std::string QueryDisplayText(const Query& query) {
  std::string text = "<unprintable query>";
  if (query.graph != nullptr) {
    Result<std::string> unparsed = UnparseQuery(*query.graph);
    if (unparsed.ok()) text = std::move(unparsed).value();
  }
  if (!query.positions.empty()) {
    text += " at " + std::to_string(query.positions.size()) + " positions";
  } else if (query.range.has_value()) {
    text += " over " + query.range->ToString();
  }
  return text;
}

/// Always-on completion accounting shared by Engine::Run and
/// PreparedQuery::Run: per-run counters and the latency histogram, the
/// registry completion record, and the slow-query digest log. The hot
/// metric objects are resolved once and cached — the registries are
/// leaked process singletons, so the references never dangle.
void RecordRunCompletion(QueryRegistry::Ticket& ticket, const Status& status,
                         double wall_us) {
  static MetricCounter& runs = MetricsRegistry::Global().Counter("engine.runs");
  static MetricCounter& failed =
      MetricsRegistry::Global().Counter("engine.failed_runs");
  static Histogram& run_us =
      MetricsRegistry::Global().GetHistogram("engine.run_us");
  runs.Add();
  if (!status.ok()) failed.Add();
  run_us.Record(wall_us);
  if (!ticket.active()) return;
  CompletedQueryInfo done = ticket.Finish(
      status.ok(), status.ok() ? "OK" : StatusCodeName(status.code()));
  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.Observe("engine.rows", static_cast<double>(done.rows));
  metrics.Observe("engine.pages", static_cast<double>(done.pages));
  SlowQueryLog& slow = SlowQueryLog::Global();
  if (slow.ShouldLog(static_cast<double>(done.wall_us))) {
    slow.Record(done.digest, done.text, done.id,
                static_cast<double>(done.wall_us), done.rows, done.pages,
                done.status);
  }
}

}  // namespace

Status Engine::DefineView(std::string name, LogicalOpPtr graph) {
  if (graph == nullptr) {
    return Status::InvalidArgument("null view definition");
  }
  if (catalog_.Contains(name)) {
    return Status::InvalidArgument("view '" + name +
                                   "' shadows a catalog sequence");
  }
  if (views_.count(name) > 0) {
    return Status::InvalidArgument("view '" + name + "' already defined");
  }
  // Inline existing views now so later definitions cannot create cycles.
  SEQ_ASSIGN_OR_RETURN(LogicalOpPtr inlined, InlineViews(graph, views_));
  views_.emplace(std::move(name), std::move(inlined));
  return Status::OK();
}

Status Engine::Materialize(const std::string& name,
                           const LogicalOpPtr& graph,
                           std::optional<Span> range, int records_per_page,
                           AccessCosts costs) {
  if (catalog_.Contains(name) || views_.count(name) > 0) {
    return Status::InvalidArgument("'" + name + "' already exists");
  }
  SEQ_ASSIGN_OR_RETURN(QueryResult result, Run(graph, range));
  SEQ_ASSIGN_OR_RETURN(
      BaseSequencePtr store,
      BaseSequenceStore::FromRecords(result.schema,
                                     std::move(result.records),
                                     records_per_page, costs));
  return catalog_.RegisterBase(name, std::move(store));
}

Result<Engine::PreparedQuery> Engine::Prepare(const Query& query) const {
  SEQ_ASSIGN_OR_RETURN(PhysicalPlan plan, Plan(query));
  // Registry identity is captured once here; every Run of the prepared
  // query registers under the same text and digest without re-unparsing.
  std::string text;
  std::string digest;
  if (QueryRegistry::Global().enabled()) {
    text = QueryDisplayText(query);
    digest = NormalizeQueryText(text);
  }
  return PreparedQuery(&catalog_, options_.cost_params, exec_options_,
                       std::move(plan), std::move(text), std::move(digest));
}

Result<QueryResult> Engine::RunWithOptions(const Query& query,
                                           const ExecOptions& exec,
                                           bool profile, const RowSink& sink,
                                           AccessStats* stats) const {
  if (profile && sink) {
    return Status::InvalidArgument(
        "RunOptions::profile cannot be combined with RunOptions::sink: the "
        "batch sink hands out reusable slot buffers that the profiling shims "
        "do not wrap");
  }

  // The always-on telemetry envelope: register the query (live in
  // `.queries` from here), thread its progress counters through the
  // executor, and on every exit path complete the ticket into the recent
  // ring, the run metrics and the slow-query log.
  QueryRegistry& registry = QueryRegistry::Global();
  QueryRegistry::Ticket ticket;
  if (registry.enabled()) {
    std::string text = QueryDisplayText(query);
    std::string digest = NormalizeQueryText(text);
    ticket = registry.Start(std::move(text), std::move(digest));
  }
  ExecOptions run_exec = exec;
  run_exec.telemetry = ticket.telemetry();

  const auto start = std::chrono::steady_clock::now();
  Result<QueryResult> result =
      RunWithOptionsImpl(query, run_exec, profile, sink, stats, ticket);
  const double wall_us =
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
          std::chrono::steady_clock::now() - start)
          .count();
  RecordRunCompletion(ticket, result.status(), wall_us);
  return result;
}

Result<QueryResult> Engine::RunWithOptionsImpl(
    const Query& query, const ExecOptions& exec, bool profile,
    const RowSink& sink, AccessStats* stats,
    QueryRegistry::Ticket& ticket) const {
  MetricsRegistry& metrics = MetricsRegistry::Global();

  Query inlined = query;
  SEQ_ASSIGN_OR_RETURN(inlined.graph, InlineViews(query.graph, views_));
  OptimizerOptions opt_options = options_;
  if (profile) opt_options.collect_trace = true;
  Optimizer optimizer(catalog_, opt_options);
  SEQ_ASSIGN_OR_RETURN(PhysicalPlan plan, optimizer.Optimize(inlined));
  ticket.set_state(QueryState::kExecuting);
  Executor executor(catalog_, opt_options.cost_params, exec);

  if (sink) {
    // Streaming path: rows already handed to the sink cannot be taken
    // back, so there is no graceful-degradation retry here — a cache
    // budget trip surfaces as its ResourceExhausted status.
    SEQ_RETURN_IF_ERROR(executor.ExecuteVisit(plan, sink, stats));
    QueryResult out;
    out.schema = plan.schema;
    return out;
  }

  QueryProfile prof;
  // The first attempt charges into local stats so a degraded retry does not
  // leak the aborted attempt's counters into the caller's totals.
  AccessStats attempt_stats;
  AccessStats* attempt = stats != nullptr ? &attempt_stats : nullptr;
  Result<QueryResult> result =
      profile ? executor.ExecuteProfiled(plan, &prof, attempt)
              : executor.Execute(plan, attempt);
  // ExecuteProfiled resets the profile, so the trace is attached after.
  OptTrace trace = optimizer.trace();
  MorselPlan morsels;
  if (profile) morsels = executor.PlanMorsels(plan);
  std::string degradation_note;
  if (!result.ok() && IsCacheBudgetExceeded(result.status())) {
    // Graceful degradation: the query is fine, only its cached plan does not
    // fit max_cache_bytes. Re-plan with operator caches disabled and run the
    // (slower, memory-flat) naive plan instead of failing.
    metrics.Add("engine.cache_degradations");
    ticket.set_state(QueryState::kDegraded);
    degradation_note =
        "degraded: " + result.status().message() +
        "; re-planned with operator caches disabled";
    OptimizerOptions degraded = CacheFreeOptions(opt_options);
    Optimizer degraded_optimizer(catalog_, degraded);
    SEQ_ASSIGN_OR_RETURN(PhysicalPlan fallback,
                         degraded_optimizer.Optimize(inlined));
    Executor degraded_executor(catalog_, degraded.cost_params, exec);
    result = profile ? degraded_executor.ExecuteProfiled(fallback, &prof, stats)
                     : degraded_executor.Execute(fallback, stats);
    trace = degraded_optimizer.trace();
    if (profile) morsels = degraded_executor.PlanMorsels(fallback);
  } else if (result.ok() && stats != nullptr) {
    *stats += attempt_stats;
  }
  SEQ_RETURN_IF_ERROR(result.status());
  QueryResult out = std::move(result).value();

  if (profile) {
    // The driving decision is part of the query's explanation: surface it
    // in the trace (stage "execution") always, and as a profile note when
    // the run actually went parallel (serial is the unremarkable default).
    trace.Add("execution", morsels.reason, -1.0, morsels.parallel);
    prof.optimizer = std::move(trace);
    if (!degradation_note.empty()) {
      prof.notes.push_back(std::move(degradation_note));
    }
    if (morsels.parallel) {
      prof.notes.push_back("execution: " + morsels.reason);
    }
    metrics.Add("engine.profiled_runs");
    metrics.Observe("engine.optimize_us",
                    static_cast<double>(prof.optimizer.optimize_us));
    metrics.Observe("engine.execute_us",
                    static_cast<double>(prof.total_wall_ns) / 1000.0);
    out.profile = std::move(prof);
  }
  return out;
}

Result<QueryResult> Engine::Run(const Query& query,
                                const RunOptions& opts) const {
  return RunWithOptions(query, opts.exec, opts.profile, opts.sink, opts.stats);
}

Result<QueryResult> Engine::Run(const LogicalOpPtr& graph,
                                std::optional<Span> range,
                                const RunOptions& opts) const {
  Query query;
  query.graph = graph;
  query.range = range;
  return Run(query, opts);
}

Result<QueryResult> Engine::Run(const QueryBuilder& builder,
                                std::optional<Span> range,
                                const RunOptions& opts) const {
  return Run(builder.Build(), range, opts);
}

Result<QueryResult> Engine::RunAt(const LogicalOpPtr& graph,
                                  std::vector<Position> positions,
                                  const RunOptions& opts) const {
  Query query;
  query.graph = graph;
  query.positions = std::move(positions);
  return Run(query, opts);
}

Result<QueryResult> Engine::Run(const Query& query, AccessStats* stats) const {
  return RunWithOptions(query, exec_options_, /*profile=*/false, RowSink{},
                        stats);
}

Result<ProfiledQueryResult> Engine::RunProfiled(const Query& query,
                                                AccessStats* stats) const {
  SEQ_ASSIGN_OR_RETURN(
      QueryResult run,
      RunWithOptions(query, exec_options_, /*profile=*/true, RowSink{}, stats));
  ProfiledQueryResult out;
  out.profile = std::move(*run.profile);
  run.profile.reset();
  out.result = std::move(run);
  return out;
}

Result<std::string> Engine::ExplainAnalyze(const Query& query) const {
  SEQ_ASSIGN_OR_RETURN(
      QueryResult run,
      RunWithOptions(query, exec_options_, /*profile=*/true, RowSink{},
                     nullptr));
  return run.profile->ToString();
}

Result<std::string> Engine::ExplainAnalyze(const Query& query,
                                           const RunOptions& opts) const {
  if (opts.sink) {
    return Status::InvalidArgument(
        "ExplainAnalyze cannot stream to a sink: it must profile the run");
  }
  SEQ_ASSIGN_OR_RETURN(
      QueryResult run,
      RunWithOptions(query, opts.exec, /*profile=*/true, RowSink{},
                     opts.stats));
  return run.profile->ToString();
}

Result<QueryResult> Engine::Run(const LogicalOpPtr& graph,
                                std::optional<Span> range,
                                AccessStats* stats) const {
  Query query;
  query.graph = graph;
  query.range = range;
  return Run(query, stats);
}

Result<QueryResult> Engine::Run(const QueryBuilder& builder,
                                std::optional<Span> range,
                                AccessStats* stats) const {
  return Run(builder.Build(), range, stats);
}

Result<QueryResult> Engine::RunAt(const LogicalOpPtr& graph,
                                  std::vector<Position> positions,
                                  AccessStats* stats) const {
  Query query;
  query.graph = graph;
  query.positions = std::move(positions);
  return Run(query, stats);
}

Result<QueryResult> Engine::PreparedQuery::Run(const RunOptions& opts) const {
  if (opts.profile && opts.sink) {
    return Status::InvalidArgument(
        "RunOptions::profile cannot be combined with RunOptions::sink");
  }
  // Same telemetry envelope as Engine::Run, under the identity captured at
  // Prepare. The plan is already optimized, so the query registers
  // directly in the executing state.
  QueryRegistry& registry = QueryRegistry::Global();
  QueryRegistry::Ticket ticket;
  if (registry.enabled() && !text_.empty()) {
    ticket = registry.Start(text_, digest_);
    ticket.set_state(QueryState::kExecuting);
  }
  ExecOptions run_exec = opts.exec;
  run_exec.telemetry = ticket.telemetry();
  const auto start = std::chrono::steady_clock::now();

  Executor executor(*catalog_, params_, run_exec);
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    if (opts.sink) {
      SEQ_RETURN_IF_ERROR(executor.ExecuteVisit(plan_, opts.sink, opts.stats));
      QueryResult out;
      out.schema = plan_.schema;
      return out;
    }
    if (opts.profile) {
      QueryProfile prof;
      SEQ_ASSIGN_OR_RETURN(QueryResult run,
                           executor.ExecuteProfiled(plan_, &prof, opts.stats));
      const MorselPlan morsels = executor.PlanMorsels(plan_);
      if (morsels.parallel) {
        prof.notes.push_back("execution: " + morsels.reason);
      }
      run.profile = std::move(prof);
      return run;
    }
    return executor.Execute(plan_, opts.stats);
  }();

  const double wall_us =
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
          std::chrono::steady_clock::now() - start)
          .count();
  RecordRunCompletion(ticket, result.status(), wall_us);
  return result;
}

Result<std::string> Engine::Explain(const Query& query) const {
  Query inlined = query;
  SEQ_ASSIGN_OR_RETURN(inlined.graph, InlineViews(query.graph, views_));
  Optimizer optimizer(catalog_, options_);
  SEQ_ASSIGN_OR_RETURN(PhysicalPlan plan, optimizer.Optimize(inlined));
  std::ostringstream oss;
  oss << "=== logical (annotated, rewritten) ===\n";
  oss << optimizer.optimized_graph()->ToTreeString();
  if (!optimizer.rewrites_applied().empty()) {
    oss << "--- rewrites: ";
    for (size_t i = 0; i < optimizer.rewrites_applied().size(); ++i) {
      if (i > 0) oss << ", ";
      oss << optimizer.rewrites_applied()[i];
    }
    oss << "\n";
  }
  oss << "=== physical ===\n" << plan.Explain();
  return oss.str();
}

Result<std::map<std::string, QueryResult>> Engine::RunGrouped(
    const std::vector<std::string>& members,
    const std::function<LogicalOpPtr(const std::string&)>& graph_for,
    std::optional<Span> range, AccessStats* stats) const {
  std::map<std::string, QueryResult> out;
  for (const std::string& member : members) {
    LogicalOpPtr graph = graph_for(member);
    if (graph == nullptr) {
      return Status::InvalidArgument("grouped query produced no graph for '" +
                                     member + "'");
    }
    SEQ_ASSIGN_OR_RETURN(QueryResult result, Run(graph, range, stats));
    out.emplace(member, std::move(result));
  }
  return out;
}

}  // namespace seq
