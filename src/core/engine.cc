#include "core/engine.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <sstream>

#include "common/string_util.h"
#include "exec/scheduler.h"
#include "obs/metrics.h"
#include "obs/query_registry.h"
#include "obs/slow_query_log.h"
#include "optimizer/plan_template.h"
#include "parser/unparse.h"
#include "storage/checkpoint_file.h"

namespace seq {

Result<PhysicalPlan> Engine::Plan(const Query& query) const {
  Query inlined = query;
  SEQ_ASSIGN_OR_RETURN(inlined.graph, InlineViews(query.graph, views_));
  Optimizer optimizer(catalog_, options_);
  return optimizer.Optimize(inlined);
}

namespace {

/// Optimizer options for the graceful-degradation retry: the same query,
/// planned with every operator cache (Cache-Strategy-A windows,
/// Cache-Strategy-B offset caches) disabled, so the fallback plan cannot
/// hit QueryGuards::max_cache_bytes again.
OptimizerOptions CacheFreeOptions(const OptimizerOptions& options) {
  OptimizerOptions degraded = options;
  degraded.cost_params.disable_window_cache = true;
  degraded.cost_params.disable_incremental_value_offset = true;
  return degraded;
}

/// Display text for the query registry and slow-query log: the query
/// rendered back to Sequin, with the range/point request appended. Only
/// called when the registry is enabled — the disabled fast path never
/// pays the unparse.
std::string QueryDisplayText(const Query& query) {
  std::string text = "<unprintable query>";
  if (query.graph != nullptr) {
    Result<std::string> unparsed = UnparseQuery(*query.graph);
    if (unparsed.ok()) text = std::move(unparsed).value();
  }
  if (!query.positions.empty()) {
    text += " at " + std::to_string(query.positions.size()) + " positions";
  } else if (query.range.has_value()) {
    text += " over " + query.range->ToString();
  }
  return text;
}

/// Always-on completion accounting shared by Engine::Run and
/// PreparedQuery::Run: per-run counters and the latency histogram, the
/// registry completion record, and the slow-query digest log. The hot
/// metric objects are resolved once and cached — the registries are
/// leaked process singletons, so the references never dangle.
void RecordRunCompletion(QueryRegistry::Ticket& ticket, const Status& status,
                         double wall_us) {
  static MetricCounter& runs = MetricsRegistry::Global().Counter("engine.runs");
  static MetricCounter& failed =
      MetricsRegistry::Global().Counter("engine.failed_runs");
  static Histogram& run_us =
      MetricsRegistry::Global().GetHistogram("engine.run_us");
  // A suspended query is parked, not failed: its prefix sits in a valid
  // checkpoint file awaiting Resume.
  const bool suspended = IsQuerySuspended(status);
  runs.Add();
  if (!status.ok() && !suspended) failed.Add();
  run_us.Record(wall_us);
  if (!ticket.active()) return;
  CompletedQueryInfo done = ticket.Finish(
      status.ok() || suspended,
      status.ok() ? "OK"
                  : (suspended ? "Suspended" : StatusCodeName(status.code())));
  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.Observe("engine.rows", static_cast<double>(done.rows));
  metrics.Observe("engine.pages", static_cast<double>(done.pages));
  SlowQueryLog& slow = SlowQueryLog::Global();
  if (slow.ShouldLog(static_cast<double>(done.wall_us))) {
    slow.Record(done.digest, done.text, done.id,
                static_cast<double>(done.wall_us), done.rows, done.pages,
                done.status, static_cast<double>(done.queued_us));
  }
}

/// Converts one literal token captured by NormalizeAndExtract into the
/// Value the lexer would have produced, mirroring the lexer exactly:
/// string bodies are taken verbatim (escaped strings are never bindable —
/// the scanner marks them unclean), numbers with '.', 'e' or 'E' are
/// doubles, everything else must fit an int64. nullopt when the token
/// cannot round-trip (e.g. int64 overflow) — the caller falls back to the
/// parse path.
std::optional<Value> TokenToValue(const TextLiteral& lit) {
  if (lit.is_string) return Value::String(lit.text);
  errno = 0;
  char* end = nullptr;
  if (lit.is_double) {
    const double v = std::strtod(lit.text.c_str(), &end);
    if (errno != 0 || end != lit.text.c_str() + lit.text.size()) {
      return std::nullopt;
    }
    return Value::Double(v);
  }
  const long long v = std::strtoll(lit.text.c_str(), &end, 10);
  if (errno != 0 || end != lit.text.c_str() + lit.text.size()) {
    return std::nullopt;
  }
  return Value::Int64(static_cast<int64_t>(v));
}

size_t CountPlanNodes(const PhysNodePtr& node) {
  if (node == nullptr) return 0;
  size_t n = 1;
  for (const PhysNodePtr& child : node->children) n += CountPlanNodes(child);
  return n;
}

/// True when a cached entry is safe to reuse for this parameterization:
/// same parameter types in order (Value::Compare is cross-numeric, so the
/// type check is not redundant), the same explicit positions (the
/// signature only hashes them), and — for templates whose plan no longer
/// mentions every literal — exactly the same literal values.
bool EntryMatches(const PlanCacheEntry& entry, const ParameterizedQuery& pq) {
  if (entry.param_types.size() != pq.params.size()) return false;
  for (size_t i = 0; i < pq.params.size(); ++i) {
    if (entry.param_types[i] != pq.params[i].type()) return false;
  }
  if (entry.positions != pq.query.positions) return false;
  if (!entry.bindable && entry.bound_values != pq.params) return false;
  return true;
}

/// Where a suspension lands on disk: the caller-pinned path when one was
/// given, otherwise a unique name under SEQ_CHECKPOINT_DIR. Every
/// suspension in a multi-suspend chain gets a fresh auto name, so earlier
/// checkpoints stay replayable.
std::string CheckpointPathFor(const CheckpointConfig& ck, uint64_t query_id) {
  if (!ck.path.empty()) return ck.path;
  static std::atomic<uint64_t> next_seq{1};
  const uint64_t seq = next_seq.fetch_add(1, std::memory_order_relaxed);
  return DefaultCheckpointDir() + "/seq-q" + std::to_string(query_id) + "-" +
         std::to_string(seq) + ".ckpt";
}

ResumeState ResumeStateFromImage(CheckpointImage&& image) {
  ResumeState rs;
  rs.probed = image.probed;
  rs.watermark = image.watermark;
  rs.next_index = image.next_index;
  rs.chunks_done = image.chunks_done;
  rs.chunk_len = image.chunk_len;
  rs.op_state = std::move(image.op_state);
  rs.rows = std::move(image.rows);
  rs.stats = image.stats;
  return rs;
}

}  // namespace

std::string Engine::PlanKeyPrefix(const OptimizerOptions& opt_options) const {
  return "e" + std::to_string(plan_cache_id_.value()) + "|v" +
         std::to_string(catalog_.version()) + "|o" +
         FingerprintOptimizerOptions(opt_options) + "|";
}

void Engine::InsertPlanEntry(const std::string& key, ParameterizedQuery pq,
                             const PhysicalPlan& plan,
                             const Optimizer& optimizer,
                             const OptimizerOptions& opt_options,
                             const Query& inlined) const {
  auto entry = std::make_shared<PlanCacheEntry>();
  entry->plan = plan;
  entry->param_types.reserve(pq.params.size());
  for (const Value& v : pq.params) entry->param_types.push_back(v.type());
  entry->bindable = PlanCoversAllParams(plan, pq.params.size());
  entry->recost_checks = CaptureRecostChecks(optimizer.optimized_graph(),
                                             catalog_, opt_options.cost_params);
  entry->positions = pq.query.positions;
  entry->bound_values = std::move(pq.params);
  entry->engine_id = plan_cache_id_.value();
  entry->display = NormalizeQueryText(QueryDisplayText(inlined));
  entry->bytes = key.size() + entry->display.size() +
                 CountPlanNodes(plan.root) * (sizeof(PhysNode) + 64) +
                 entry->bound_values.size() * sizeof(Value) +
                 entry->positions.size() * sizeof(Position);
  PlanCache::Global().Insert(key, std::move(entry));
}

Result<PhysicalPlan> Engine::PlanViaCache(const Query& inlined,
                                          const OptimizerOptions& opt_options,
                                          Optimizer& optimizer, bool use_cache,
                                          bool allow_read,
                                          bool* from_cache) const {
  *from_cache = false;
  if (!use_cache) return optimizer.Optimize(inlined);

  PlanCache& cache = PlanCache::Global();
  ParameterizedQuery pq = ParameterizeQuery(inlined);
  const std::string key = PlanKeyPrefix(opt_options) + pq.signature;
  if (allow_read) {
    PlanCacheEntryPtr entry = cache.Lookup(key);
    if (entry != nullptr && EntryMatches(*entry, pq)) {
      if (entry->recost_checks.empty() ||
          RecostWithinThreshold(entry->recost_checks, pq.params,
                                opt_options.cost_params,
                                kPlanCacheRecostThreshold)) {
        *from_cache = true;
        if (entry->bindable) return BindPlanParams(entry->plan, pq.params);
        return entry->plan;  // exact literal values, reuse verbatim
      }
      // The bound literals moved a predicate's estimated selectivity past
      // the threshold: the cached plan may be badly shaped for them. Fall
      // through to a full optimize, which refreshes the template.
      cache.CountRecostFallback();
    }
  }

  // Miss: optimize the TAGGED clone, so the plan's literals carry their
  // parameter indices and the result can serve as a bindable template.
  SEQ_ASSIGN_OR_RETURN(PhysicalPlan plan, optimizer.Optimize(pq.query));
  InsertPlanEntry(key, std::move(pq), plan, optimizer, opt_options, inlined);
  return plan;
}

Status Engine::DefineView(std::string name, LogicalOpPtr graph) {
  if (graph == nullptr) {
    return Status::InvalidArgument("null view definition");
  }
  if (catalog_.Contains(name)) {
    return Status::InvalidArgument("view '" + name +
                                   "' shadows a catalog sequence");
  }
  if (views_.count(name) > 0) {
    return Status::InvalidArgument("view '" + name + "' already defined");
  }
  // Inline existing views now so later definitions cannot create cycles.
  SEQ_ASSIGN_OR_RETURN(LogicalOpPtr inlined, InlineViews(graph, views_));
  views_.emplace(std::move(name), std::move(inlined));
  return Status::OK();
}

Status Engine::Materialize(const std::string& name,
                           const LogicalOpPtr& graph,
                           std::optional<Span> range, int records_per_page,
                           AccessCosts costs) {
  if (catalog_.Contains(name) || views_.count(name) > 0) {
    return Status::InvalidArgument("'" + name + "' already exists");
  }
  SEQ_ASSIGN_OR_RETURN(QueryResult result, Run(graph, range));
  SEQ_ASSIGN_OR_RETURN(
      BaseSequencePtr store,
      BaseSequenceStore::FromRecords(result.schema,
                                     std::move(result.records),
                                     records_per_page, costs));
  // Through the wrapper: the new base sequence retires this engine's
  // cached plans (the catalog version bump already changed every key).
  return RegisterBase(name, std::move(store));
}

Result<Engine::PreparedQuery> Engine::Prepare(const Query& query) const {
  Query inlined = query;
  SEQ_ASSIGN_OR_RETURN(inlined.graph, InlineViews(query.graph, views_));
  Optimizer optimizer(catalog_, options_);
  const bool use_cache = ExecOptions{}.use_plan_cache &&
                         inlined.graph != nullptr &&
                         PlanCache::Global().enabled();
  bool from_cache = false;
  SEQ_ASSIGN_OR_RETURN(PhysicalPlan plan,
                       PlanViaCache(inlined, options_, optimizer, use_cache,
                                    /*allow_read=*/true, &from_cache));
  // Registry identity is captured once here; every Run of the prepared
  // query registers under the same text and digest without re-unparsing.
  std::string text;
  std::string digest;
  if (QueryRegistry::Global().enabled()) {
    text = QueryDisplayText(query);
    digest = NormalizeQueryText(text);
  }
  PreparedQuery prepared(&catalog_, options_.cost_params, std::move(plan),
                         std::move(text), std::move(digest));
  prepared.plan_cached_ = from_cache;
  return prepared;
}

Result<QueryResult> Engine::RunWithOptions(const Query& query,
                                           const ExecOptions& exec,
                                           bool profile, const RowSink& sink,
                                           AccessStats* stats) const {
  if (profile && sink) {
    return Status::InvalidArgument(
        "RunOptions::profile cannot be combined with RunOptions::sink: the "
        "batch sink hands out reusable slot buffers that the profiling shims "
        "do not wrap");
  }

  // The always-on telemetry envelope: register the query (live in
  // `.queries` from here), thread its progress counters through the
  // executor, and on every exit path complete the ticket into the recent
  // ring, the run metrics and the slow-query log.
  QueryRegistry& registry = QueryRegistry::Global();
  QueryRegistry::Ticket ticket;
  if (registry.enabled()) {
    std::string text = QueryDisplayText(query);
    std::string digest = NormalizeQueryText(text);
    ticket = registry.Start(std::move(text), std::move(digest),
                            exec.session_id);
  }
  ExecOptions run_exec = exec;
  run_exec.telemetry = ticket.telemetry();

  const auto start = std::chrono::steady_clock::now();
  Result<QueryResult> result =
      RunWithOptionsImpl(query, run_exec, profile, sink, stats, ticket);
  const double wall_us =
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
          std::chrono::steady_clock::now() - start)
          .count();
  RecordRunCompletion(ticket, result.status(), wall_us);
  return result;
}

Result<QueryResult> Engine::RunWithOptionsImpl(
    const Query& query, const ExecOptions& exec, bool profile,
    const RowSink& sink, AccessStats* stats,
    QueryRegistry::Ticket& ticket) const {
  MetricsRegistry& metrics = MetricsRegistry::Global();

  if (exec.checkpoint.enabled && sink) {
    return Status::InvalidArgument(
        "checkpointed runs cannot stream to a sink: rows already handed to "
        "the sink could not be replayed from the checkpoint on resume");
  }

  Query inlined = query;
  SEQ_ASSIGN_OR_RETURN(inlined.graph, InlineViews(query.graph, views_));
  OptimizerOptions opt_options = options_;
  if (profile) opt_options.collect_trace = true;
  Optimizer optimizer(catalog_, opt_options);
  // Profiled runs must produce a real optimizer trace, so they never READ
  // the plan cache — but they still refresh the template on the way.
  const bool use_cache = exec.use_plan_cache && inlined.graph != nullptr &&
                         PlanCache::Global().enabled();
  bool from_cache = false;
  SEQ_ASSIGN_OR_RETURN(
      PhysicalPlan plan,
      PlanViaCache(inlined, opt_options, optimizer, use_cache,
                   /*allow_read=*/!profile, &from_cache));
  if (from_cache) ticket.set_plan_cached();
  ticket.set_state(QueryState::kExecuting);
  Executor executor(catalog_, opt_options.cost_params, exec);

  if (sink) {
    // Streaming path: rows already handed to the sink cannot be taken
    // back, so there is no graceful-degradation retry here — a cache
    // budget trip surfaces as its ResourceExhausted status.
    SEQ_RETURN_IF_ERROR(executor.ExecuteVisit(plan, sink, stats));
    QueryResult out;
    out.schema = plan.schema;
    return out;
  }

  QueryProfile prof;
  // The first attempt charges into local stats so a degraded retry does not
  // leak the aborted attempt's counters into the caller's totals.
  AccessStats attempt_stats;
  AccessStats* attempt = stats != nullptr ? &attempt_stats : nullptr;
  // Checkpointed execution (profiled runs execute normally — a profile of
  // a partial run would be misleading, and the trace requirement already
  // forces the re-optimize path).
  const bool checkpointed = exec.checkpoint.enabled && !profile;
  Result<QueryResult> result =
      profile ? executor.ExecuteProfiled(plan, &prof, attempt)
      : checkpointed
          ? RunCheckpointed(inlined, plan, opt_options, exec, attempt, ticket)
          : executor.Execute(plan, attempt);
  // ExecuteProfiled resets the profile, so the trace is attached after.
  OptTrace trace = optimizer.trace();
  MorselPlan morsels;
  if (profile) morsels = executor.PlanMorsels(plan);
  std::string degradation_note;
  if (!result.ok() && IsCacheBudgetExceeded(result.status())) {
    // Graceful degradation: the query is fine, only its cached plan does not
    // fit max_cache_bytes. Re-plan with operator caches disabled and run the
    // (slower, memory-flat) naive plan instead of failing.
    metrics.Add("engine.cache_degradations");
    ticket.set_state(QueryState::kDegraded);
    degradation_note =
        "degraded: " + result.status().message() +
        "; re-planned with operator caches disabled";
    OptimizerOptions degraded = CacheFreeOptions(opt_options);
    Optimizer degraded_optimizer(catalog_, degraded);
    SEQ_ASSIGN_OR_RETURN(PhysicalPlan fallback,
                         degraded_optimizer.Optimize(inlined));
    Executor degraded_executor(catalog_, degraded.cost_params, exec);
    result = profile ? degraded_executor.ExecuteProfiled(fallback, &prof, stats)
                     : degraded_executor.Execute(fallback, stats);
    trace = degraded_optimizer.trace();
    if (profile) morsels = degraded_executor.PlanMorsels(fallback);
  } else if (result.ok() && stats != nullptr) {
    *stats += attempt_stats;
  }
  SEQ_RETURN_IF_ERROR(result.status());
  QueryResult out = std::move(result).value();

  if (profile) {
    // The driving decision is part of the query's explanation: surface it
    // in the trace (stage "execution") always, and as a profile note when
    // the run actually went parallel (serial is the unremarkable default).
    trace.Add("execution", morsels.reason, -1.0, morsels.parallel);
    prof.optimizer = std::move(trace);
    if (!degradation_note.empty()) {
      prof.notes.push_back(std::move(degradation_note));
    }
    if (morsels.parallel) {
      prof.notes.push_back("execution: " + morsels.reason);
    }
    if (use_cache) {
      prof.notes.push_back(
          "plan cache: template refreshed (profiled runs always re-optimize "
          "to produce the trace)");
    }
    metrics.Add("engine.profiled_runs");
    metrics.Observe("engine.optimize_us",
                    static_cast<double>(prof.optimizer.optimize_us));
    metrics.Observe("engine.execute_us",
                    static_cast<double>(prof.total_wall_ns) / 1000.0);
    out.profile = std::move(prof);
  }
  return out;
}

Result<QueryResult> Engine::RunCheckpointed(
    const Query& inlined, const PhysicalPlan& plan,
    const OptimizerOptions& opt_options, const ExecOptions& exec,
    AccessStats* stats, QueryRegistry::Ticket& ticket) const {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  ExecOptions run_exec = exec;
  SuspendCapture capture;
  run_exec.checkpoint.capture = &capture;
  // The `.suspend <id>` flag lives on the registry entry; adopt it when the
  // caller did not supply a request flag of their own.
  if (run_exec.checkpoint.request == nullptr &&
      ticket.telemetry() != nullptr) {
    run_exec.checkpoint.request = &ticket.telemetry()->suspend_requested;
  }
  // Register as preemptible for the duration of the run: under
  // admission-queue pressure the scheduler flags the lowest-priority
  // checkpointable runner, and the executor notices at the next chunk
  // boundary.
  QueryScheduler::Preemption preemption;
  if (run_exec.checkpoint.preempt == nullptr) {
    preemption =
        QueryScheduler::Global().RegisterPreemptible(run_exec.priority);
    run_exec.checkpoint.preempt = preemption.flag();
  }

  ResumeState park_resume;  // reloaded state across an in-place park
  for (;;) {
    Executor executor(catalog_, opt_options.cost_params, run_exec);
    Result<QueryResult> result = executor.ExecuteCheckpointed(plan, stats);
    if (!result.ok() || !capture.suspended) return result;

    // Suspended at a chunk boundary: persist the complete prefix.
    const std::string path =
        CheckpointPathFor(run_exec.checkpoint, ticket.id());
    CheckpointImage image;
    image.catalog_version = catalog_.version();
    image.options_fingerprint = FingerprintOptimizerOptions(options_);
    image.plan_signature = ParameterizeQuery(inlined).signature;
    Result<std::string> text = UnparseQuery(*inlined.graph);
    if (!text.ok()) return text.status();
    image.query_text = std::move(text).value();
    image.probed = capture.probed;
    image.has_range = inlined.range.has_value();
    if (image.has_range) {
      image.span_start = inlined.range->start;
      image.span_end = inlined.range->end;
    }
    image.positions = inlined.positions;
    image.position_sequence = inlined.position_sequence;
    image.watermark = capture.watermark;
    image.next_index = capture.next_index;
    image.chunks_done = capture.chunks_done;
    image.chunk_len = capture.chunk_len;
    image.stats = capture.stats;
    image.rows = std::move(capture.rows);
    image.op_state = std::move(capture.op_state);
    Status written = SaveCheckpoint(
        image, path, CheckpointWriteFaultHook(run_exec.fault_injector));
    if (!written.ok()) {
      metrics.Add("engine.checkpoints.write_failures");
      return written;
    }
    metrics.Add("engine.checkpoints.written");

    if (capture.reason != SuspendReason::kScheduler) {
      return MakeQuerySuspended(path, capture.reason);
    }

    // Scheduler preemption: park in place. Chunk admissions are per chunk,
    // so no slot is held here — wait in the admission queue at our own
    // priority and continue only once this query would be admitted again.
    metrics.Add("engine.checkpoints.parked");
    ticket.set_state(QueryState::kSuspended);
    QueryScheduler::AdmitRequest readmit;
    readmit.priority = run_exec.priority;
    readmit.timeout_ms = run_exec.admission_timeout_ms;
    readmit.cancel = run_exec.guards.cancel;
    Result<QueryScheduler::Admission> slot =
        QueryScheduler::Global().Admit(readmit);
    if (!slot.ok()) {
      // Could not re-admit (timeout / cancelled): leave the query parked —
      // the checkpoint stays on disk for a later Resume.
      return MakeQuerySuspended(path, capture.reason);
    }
    slot.value().Release();  // only waited for the turn; chunks re-admit
    preemption.Rearm();

    // Honest roundtrip: continue from the file just written, exactly as a
    // fresh process would.
    Result<CheckpointImage> loaded = LoadCheckpoint(
        path, CheckpointReadFaultHook(run_exec.fault_injector));
    if (!loaded.ok()) {
      metrics.Add("engine.checkpoints.resume_failures");
      return loaded.status();
    }
    metrics.Add("engine.checkpoints.resumed");
    park_resume = ResumeStateFromImage(std::move(loaded).value());
    run_exec.checkpoint.resume = &park_resume;
    ticket.set_state(QueryState::kExecuting);
  }
}

Result<QueryResult> Engine::Resume(const std::string& checkpoint_path,
                                   const RunOptions& opts) const {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  if (opts.profile || opts.sink) {
    return Status::InvalidArgument(
        "Resume cannot profile or stream to a sink: the suspended prefix is "
        "replayed from the checkpoint, not re-executed");
  }
  Result<CheckpointImage> loaded = LoadCheckpoint(
      checkpoint_path, CheckpointReadFaultHook(opts.exec.fault_injector));
  if (!loaded.ok()) {
    metrics.Add("engine.checkpoints.resume_failures");
    return loaded.status();
  }
  CheckpointImage image = std::move(loaded).value();

  // The validity tuple, checked with precise reasons: a stale checkpoint
  // must never resume against an engine it no longer matches.
  if (image.catalog_version != catalog_.version()) {
    metrics.Add("engine.checkpoints.resume_failures");
    return Status::FailedPrecondition(
        "checkpoint '" + checkpoint_path + "' is stale: catalog version " +
        std::to_string(image.catalog_version) + " at suspend, " +
        std::to_string(catalog_.version()) + " now");
  }
  const std::string fingerprint = FingerprintOptimizerOptions(options_);
  if (image.options_fingerprint != fingerprint) {
    metrics.Add("engine.checkpoints.resume_failures");
    return Status::FailedPrecondition(
        "checkpoint '" + checkpoint_path +
        "' is stale: optimizer-options fingerprint " +
        image.options_fingerprint + " at suspend, " + fingerprint + " now");
  }
  Result<ParsedProgram> program = ParseSequin(image.query_text);
  if (!program.ok() || program.value().main == nullptr) {
    metrics.Add("engine.checkpoints.resume_failures");
    return Status::DataLoss("checkpoint '" + checkpoint_path +
                            "' carries an unparseable query: " +
                            (program.ok() ? "no main statement"
                                          : program.status().message()));
  }

  Query query;
  query.graph = program.value().main;
  if (image.has_range) {
    query.range = Span::Of(image.span_start, image.span_end);
  }
  query.positions = image.positions;
  query.position_sequence = image.position_sequence;

  // The stored text is already view-inlined, so re-planning here cannot
  // pick up redefined views; the plan signature confirms the shape.
  Query inlined = query;
  Result<LogicalOpPtr> graph = InlineViews(query.graph, views_);
  if (!graph.ok()) return graph.status();
  inlined.graph = std::move(graph).value();
  if (ParameterizeQuery(inlined).signature != image.plan_signature) {
    metrics.Add("engine.checkpoints.resume_failures");
    return Status::FailedPrecondition(
        "checkpoint '" + checkpoint_path +
        "' is stale: plan signature does not match the re-planned query "
        "(the query graph or its driving range changed)");
  }
  metrics.Add("engine.checkpoints.resumed");

  ResumeState resume = ResumeStateFromImage(std::move(image));
  RunOptions run_opts = opts;
  run_opts.exec.checkpoint.enabled = true;
  run_opts.exec.checkpoint.resume = &resume;
  return Run(query, run_opts);
}

bool Engine::RequestSuspend(uint64_t query_id) {
  return QueryRegistry::Global().RequestSuspend(query_id);
}

Result<QueryResult> Engine::Run(const Query& query,
                                const RunOptions& opts) const {
  return RunWithOptions(query, opts.exec, opts.profile, opts.sink, opts.stats);
}

Result<QueryResult> Engine::Run(const LogicalOpPtr& graph,
                                std::optional<Span> range,
                                const RunOptions& opts) const {
  Query query;
  query.graph = graph;
  query.range = range;
  return Run(query, opts);
}

Result<QueryResult> Engine::Run(const QueryBuilder& builder,
                                std::optional<Span> range,
                                const RunOptions& opts) const {
  return Run(builder.Build(), range, opts);
}

Result<QueryResult> Engine::RunAt(const LogicalOpPtr& graph,
                                  std::vector<Position> positions,
                                  const RunOptions& opts) const {
  Query query;
  query.graph = graph;
  query.positions = std::move(positions);
  return Run(query, opts);
}

Result<QueryResult> Engine::Run(const Query& query, AccessStats* stats) const {
  return RunWithOptions(query, ExecOptions{}, /*profile=*/false, RowSink{},
                        stats);
}

Result<std::string> Engine::ExplainAnalyze(const Query& query) const {
  SEQ_ASSIGN_OR_RETURN(
      QueryResult run,
      RunWithOptions(query, ExecOptions{}, /*profile=*/true, RowSink{},
                     nullptr));
  return run.profile->ToString();
}

Result<std::string> Engine::ExplainAnalyze(const Query& query,
                                           const RunOptions& opts) const {
  if (opts.sink) {
    return Status::InvalidArgument(
        "ExplainAnalyze cannot stream to a sink: it must profile the run");
  }
  SEQ_ASSIGN_OR_RETURN(
      QueryResult run,
      RunWithOptions(query, opts.exec, /*profile=*/true, RowSink{},
                     opts.stats));
  return run.profile->ToString();
}

Result<QueryResult> Engine::Run(const LogicalOpPtr& graph,
                                std::optional<Span> range,
                                AccessStats* stats) const {
  Query query;
  query.graph = graph;
  query.range = range;
  return Run(query, stats);
}

Result<QueryResult> Engine::Run(const QueryBuilder& builder,
                                std::optional<Span> range,
                                AccessStats* stats) const {
  return Run(builder.Build(), range, stats);
}

Result<QueryResult> Engine::RunAt(const LogicalOpPtr& graph,
                                  std::vector<Position> positions,
                                  AccessStats* stats) const {
  Query query;
  query.graph = graph;
  query.positions = std::move(positions);
  return Run(query, stats);
}

Result<QueryResult> Engine::PreparedQuery::Run(const RunOptions& opts) const {
  if (opts.profile && opts.sink) {
    return Status::InvalidArgument(
        "RunOptions::profile cannot be combined with RunOptions::sink");
  }
  // Same telemetry envelope as Engine::Run, under the identity captured at
  // Prepare. The plan is already optimized, so the query registers
  // directly in the executing state.
  QueryRegistry& registry = QueryRegistry::Global();
  QueryRegistry::Ticket ticket;
  if (registry.enabled() && !text_.empty()) {
    ticket = registry.Start(text_, digest_, opts.exec.session_id);
    ticket.set_state(QueryState::kExecuting);
    if (plan_cached_) ticket.set_plan_cached();
  }
  ExecOptions run_exec = opts.exec;
  run_exec.telemetry = ticket.telemetry();
  const auto start = std::chrono::steady_clock::now();

  Executor executor(*catalog_, params_, run_exec);
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    if (opts.sink) {
      SEQ_RETURN_IF_ERROR(executor.ExecuteVisit(plan_, opts.sink, opts.stats));
      QueryResult out;
      out.schema = plan_.schema;
      return out;
    }
    if (opts.profile) {
      QueryProfile prof;
      SEQ_ASSIGN_OR_RETURN(QueryResult run,
                           executor.ExecuteProfiled(plan_, &prof, opts.stats));
      const MorselPlan morsels = executor.PlanMorsels(plan_);
      if (morsels.parallel) {
        prof.notes.push_back("execution: " + morsels.reason);
      }
      run.profile = std::move(prof);
      return run;
    }
    return executor.Execute(plan_, opts.stats);
  }();

  const double wall_us =
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
          std::chrono::steady_clock::now() - start)
          .count();
  RecordRunCompletion(ticket, result.status(), wall_us);
  return result;
}

Result<std::string> Engine::Explain(const Query& query) const {
  Query inlined = query;
  SEQ_ASSIGN_OR_RETURN(inlined.graph, InlineViews(query.graph, views_));
  Optimizer optimizer(catalog_, options_);
  SEQ_ASSIGN_OR_RETURN(PhysicalPlan plan, optimizer.Optimize(inlined));
  std::ostringstream oss;
  oss << "=== logical (annotated, rewritten) ===\n";
  oss << optimizer.optimized_graph()->ToTreeString();
  if (!optimizer.rewrites_applied().empty()) {
    oss << "--- rewrites: ";
    for (size_t i = 0; i < optimizer.rewrites_applied().size(); ++i) {
      if (i > 0) oss << ", ";
      oss << optimizer.rewrites_applied()[i];
    }
    oss << "\n";
  }
  oss << "=== physical ===\n" << plan.Explain();
  return oss.str();
}

Result<QueryResult> Engine::RunCachedPlanText(const std::string& source,
                                              const std::string& shape,
                                              const PhysicalPlan& plan,
                                              const RunOptions& opts,
                                              bool* budget_tripped) const {
  *budget_tripped = false;
  QueryRegistry& registry = QueryRegistry::Global();
  QueryRegistry::Ticket ticket;
  if (registry.enabled()) {
    ticket = registry.Start(std::string(StripAsciiWhitespace(source)), shape,
                            opts.exec.session_id);
    ticket.set_state(QueryState::kExecuting);
    ticket.set_plan_cached();
  }
  ExecOptions run_exec = opts.exec;
  run_exec.telemetry = ticket.telemetry();
  const auto start = std::chrono::steady_clock::now();

  Executor executor(catalog_, options_.cost_params, run_exec);
  // Attempt-stats pattern (as in RunWithOptionsImpl): a budget-tripped
  // attempt must not leak its counters into the caller's totals, because
  // the caller re-runs the query through the parse path.
  AccessStats attempt_stats;
  AccessStats* attempt = opts.stats != nullptr ? &attempt_stats : nullptr;
  Result<QueryResult> result = executor.Execute(plan, attempt);
  if (result.ok() && opts.stats != nullptr) *opts.stats += attempt_stats;
  if (!result.ok() && IsCacheBudgetExceeded(result.status())) {
    *budget_tripped = true;
  }

  const double wall_us =
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
          std::chrono::steady_clock::now() - start)
          .count();
  RecordRunCompletion(ticket, result.status(), wall_us);
  return result;
}

void Engine::InsertTextEntry(const std::string& text_key,
                             const NormalizedQuery& nq,
                             const ParsedProgram& program,
                             const Query& query) const {
  auto entry = std::make_shared<TextShapeEntry>();
  entry->engine_id = plan_cache_id_.value();

  // Resolve the plan key the graph tier files this query under (one extra
  // parameterization per text-shape miss — noise next to the parse and
  // optimize the miss already paid).
  Query inlined = query;
  Result<LogicalOpPtr> graph = InlineViews(query.graph, views_);
  if (!graph.ok()) return;
  inlined.graph = std::move(graph).value();
  ParameterizedQuery pq = ParameterizeQuery(inlined);
  entry->plan_key = PlanKeyPrefix(options_) + pq.signature;

  // Text-bindability: a future hit will map literal TOKENS positionally
  // onto the graph's parameters, so that mapping must be provably the
  // identity. That requires a single self-contained statement (definitions
  // inline by clone, reordering literals) scanned cleanly, with the
  // extracted tokens matching the parameters pairwise in count, type and
  // value. Anything else — bool literals, optimizer-relevant structural
  // integers (window sizes, offsets), folded predicates — fails the
  // pairwise check and stays on the parse path, which still hits the
  // graph-tier cache.
  bool bindable = program.order.size() == 1 && nq.clean &&
                  program.explain == ExplainMode::kNone &&
                  nq.literals.size() == pq.params.size();
  if (bindable) {
    for (size_t i = 0; i < nq.literals.size(); ++i) {
      std::optional<Value> v = TokenToValue(nq.literals[i]);
      if (!v.has_value() || v->type() != pq.params[i].type() ||
          !(*v == pq.params[i])) {
        bindable = false;
        entry->param_types.clear();
        break;
      }
      entry->param_types.push_back(v->type());
    }
  }
  entry->bindable = bindable;
  PlanCache::Global().InsertText(text_key, std::move(entry));
}

Result<QueryResult> Engine::RunText(const std::string& source,
                                    std::optional<Span> range,
                                    const RunOptions& opts) const {
  PlanCache& cache = PlanCache::Global();
  // Profiled and sink runs take the parse path: profiles need the
  // optimizer trace, and RunWithOptionsImpl owns the sink semantics.
  const bool use_cache = opts.exec.use_plan_cache && cache.enabled() &&
                         !opts.profile && !opts.sink;
  NormalizedQuery nq;
  std::string text_key;
  if (use_cache) {
    nq = NormalizeAndExtract(source);
    text_key = PlanKeyPrefix(options_) + "text|" +
               (range.has_value() ? range->ToString() : std::string("none")) +
               "|" + nq.shape;
    std::shared_ptr<const TextShapeEntry> shape = cache.LookupText(text_key);
    if (shape != nullptr && shape->bindable &&
        shape->engine_id == plan_cache_id_.value() &&
        nq.literals.size() == shape->param_types.size()) {
      // Re-lex just the literal tokens; any token the lexer would read
      // differently (or at a different type) falls back to the parse path.
      std::vector<Value> params;
      params.reserve(nq.literals.size());
      bool ok = true;
      for (size_t i = 0; i < nq.literals.size(); ++i) {
        std::optional<Value> v = TokenToValue(nq.literals[i]);
        if (!v.has_value() || v->type() != shape->param_types[i]) {
          ok = false;
          break;
        }
        params.push_back(std::move(*v));
      }
      if (ok) {
        PlanCacheEntryPtr entry = cache.Lookup(shape->plan_key);
        if (entry != nullptr && entry->bindable && entry->positions.empty() &&
            entry->param_types == shape->param_types) {
          if (entry->recost_checks.empty() ||
              RecostWithinThreshold(entry->recost_checks, params,
                                    options_.cost_params,
                                    kPlanCacheRecostThreshold)) {
            bool budget_tripped = false;
            Result<QueryResult> result =
                RunCachedPlanText(source, nq.shape,
                                  BindPlanParams(entry->plan, params), opts,
                                  &budget_tripped);
            // A cache-budget trip falls through to the parse path, whose
            // degradation machinery re-plans cache-free.
            if (!budget_tripped) return result;
          }
          // Re-cost guard tripped: take the parse path; its graph-tier
          // lookup re-checks, counts the fallback once and refreshes the
          // template.
        }
      }
    }
  }

  // Parse path: full pipeline, but Run()'s graph-tier cache still skips
  // the rewriter and planner for known shapes.
  SEQ_ASSIGN_OR_RETURN(ParsedProgram program, ParseSequin(source));
  if (program.explain != ExplainMode::kNone) {
    return Status::InvalidArgument(
        "RunText does not evaluate EXPLAIN programs; use Explain / "
        "ExplainAnalyze");
  }
  Query query;
  query.graph = program.main;
  query.range = range;
  Result<QueryResult> result = Run(query, opts);
  if (result.ok() && use_cache) {
    InsertTextEntry(text_key, nq, program, query);
  }
  return result;
}

Result<std::map<std::string, QueryResult>> Engine::RunGrouped(
    const std::vector<std::string>& members,
    const std::function<LogicalOpPtr(const std::string&)>& graph_for,
    std::optional<Span> range, AccessStats* stats) const {
  std::map<std::string, QueryResult> out;
  for (const std::string& member : members) {
    LogicalOpPtr graph = graph_for(member);
    if (graph == nullptr) {
      return Status::InvalidArgument("grouped query produced no graph for '" +
                                     member + "'");
    }
    SEQ_ASSIGN_OR_RETURN(QueryResult result, Run(graph, range, stats));
    out.emplace(member, std::move(result));
  }
  return out;
}

}  // namespace seq
