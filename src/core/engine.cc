#include "core/engine.h"

#include <sstream>

#include "obs/metrics.h"

namespace seq {

Result<PhysicalPlan> Engine::Plan(const Query& query) const {
  Query inlined = query;
  SEQ_ASSIGN_OR_RETURN(inlined.graph, InlineViews(query.graph, views_));
  Optimizer optimizer(catalog_, options_);
  return optimizer.Optimize(inlined);
}

namespace {

/// Optimizer options for the graceful-degradation retry: the same query,
/// planned with every operator cache (Cache-Strategy-A windows,
/// Cache-Strategy-B offset caches) disabled, so the fallback plan cannot
/// hit QueryGuards::max_cache_bytes again.
OptimizerOptions CacheFreeOptions(const OptimizerOptions& options) {
  OptimizerOptions degraded = options;
  degraded.cost_params.disable_window_cache = true;
  degraded.cost_params.disable_incremental_value_offset = true;
  return degraded;
}

}  // namespace

Status Engine::DefineView(std::string name, LogicalOpPtr graph) {
  if (graph == nullptr) {
    return Status::InvalidArgument("null view definition");
  }
  if (catalog_.Contains(name)) {
    return Status::InvalidArgument("view '" + name +
                                   "' shadows a catalog sequence");
  }
  if (views_.count(name) > 0) {
    return Status::InvalidArgument("view '" + name + "' already defined");
  }
  // Inline existing views now so later definitions cannot create cycles.
  SEQ_ASSIGN_OR_RETURN(LogicalOpPtr inlined, InlineViews(graph, views_));
  views_.emplace(std::move(name), std::move(inlined));
  return Status::OK();
}

Status Engine::Materialize(const std::string& name,
                           const LogicalOpPtr& graph,
                           std::optional<Span> range, int records_per_page,
                           AccessCosts costs) {
  if (catalog_.Contains(name) || views_.count(name) > 0) {
    return Status::InvalidArgument("'" + name + "' already exists");
  }
  SEQ_ASSIGN_OR_RETURN(QueryResult result, Run(graph, range));
  SEQ_ASSIGN_OR_RETURN(
      BaseSequencePtr store,
      BaseSequenceStore::FromRecords(result.schema,
                                     std::move(result.records),
                                     records_per_page, costs));
  return catalog_.RegisterBase(name, std::move(store));
}

Result<Engine::PreparedQuery> Engine::Prepare(const Query& query) const {
  SEQ_ASSIGN_OR_RETURN(PhysicalPlan plan, Plan(query));
  return PreparedQuery(&catalog_, options_.cost_params, exec_options_,
                       std::move(plan));
}

Result<QueryResult> Engine::Run(const Query& query, AccessStats* stats) const {
  MetricsRegistry::Global().Add("engine.runs");
  SEQ_ASSIGN_OR_RETURN(PhysicalPlan plan, Plan(query));
  Executor executor(catalog_, options_.cost_params, exec_options_);
  // The first attempt charges into local stats so a degraded retry does not
  // leak the aborted attempt's counters into the caller's totals.
  AccessStats attempt_stats;
  Result<QueryResult> result =
      executor.Execute(plan, stats != nullptr ? &attempt_stats : nullptr);
  if (result.ok()) {
    if (stats != nullptr) *stats += attempt_stats;
    return result;
  }
  if (!IsCacheBudgetExceeded(result.status())) return result;
  // Graceful degradation: the query is fine, only its cached plan does not
  // fit max_cache_bytes. Re-plan with operator caches disabled and run the
  // (slower, memory-flat) naive plan instead of failing.
  MetricsRegistry::Global().Add("engine.cache_degradations");
  Query inlined = query;
  SEQ_ASSIGN_OR_RETURN(inlined.graph, InlineViews(query.graph, views_));
  OptimizerOptions degraded = CacheFreeOptions(options_);
  Optimizer optimizer(catalog_, degraded);
  SEQ_ASSIGN_OR_RETURN(PhysicalPlan fallback, optimizer.Optimize(inlined));
  Executor degraded_executor(catalog_, degraded.cost_params, exec_options_);
  return degraded_executor.Execute(fallback, stats);
}

Result<ProfiledQueryResult> Engine::RunProfiled(const Query& query,
                                                AccessStats* stats) const {
  Query inlined = query;
  SEQ_ASSIGN_OR_RETURN(inlined.graph, InlineViews(query.graph, views_));
  OptimizerOptions opts = options_;
  opts.collect_trace = true;
  Optimizer optimizer(catalog_, opts);
  SEQ_ASSIGN_OR_RETURN(PhysicalPlan plan, optimizer.Optimize(inlined));

  Executor executor(catalog_, options_.cost_params, exec_options_);
  ProfiledQueryResult out;
  AccessStats attempt_stats;
  Result<QueryResult> result = executor.ExecuteProfiled(
      plan, &out.profile, stats != nullptr ? &attempt_stats : nullptr);
  // ExecuteProfiled resets the profile, so the trace is attached after.
  OptTrace trace = optimizer.trace();
  std::string degradation_note;
  if (!result.ok() && IsCacheBudgetExceeded(result.status())) {
    // Graceful degradation (see Run): re-plan cache-free, keep the event in
    // the profile so EXPLAIN ANALYZE shows why the naive plan ran.
    MetricsRegistry::Global().Add("engine.cache_degradations");
    degradation_note =
        "degraded: " + result.status().message() +
        "; re-planned with operator caches disabled";
    OptimizerOptions degraded = CacheFreeOptions(opts);
    Optimizer degraded_optimizer(catalog_, degraded);
    SEQ_ASSIGN_OR_RETURN(PhysicalPlan fallback,
                         degraded_optimizer.Optimize(inlined));
    Executor degraded_executor(catalog_, degraded.cost_params, exec_options_);
    result = degraded_executor.ExecuteProfiled(fallback, &out.profile, stats);
    trace = degraded_optimizer.trace();
  } else if (result.ok() && stats != nullptr) {
    *stats += attempt_stats;
  }
  SEQ_RETURN_IF_ERROR(result.status());
  out.result = std::move(result).value();
  out.profile.optimizer = std::move(trace);
  if (!degradation_note.empty()) {
    out.profile.notes.push_back(std::move(degradation_note));
  }

  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.Add("engine.profiled_runs");
  metrics.Observe("engine.optimize_us",
                  static_cast<double>(optimizer.trace().optimize_us));
  metrics.Observe("engine.execute_us",
                  static_cast<double>(out.profile.total_wall_ns) / 1000.0);
  return out;
}

Result<std::string> Engine::ExplainAnalyze(const Query& query) const {
  SEQ_ASSIGN_OR_RETURN(ProfiledQueryResult profiled, RunProfiled(query));
  return profiled.profile.ToString();
}

Result<QueryResult> Engine::Run(const LogicalOpPtr& graph,
                                std::optional<Span> range,
                                AccessStats* stats) const {
  Query query;
  query.graph = graph;
  query.range = range;
  return Run(query, stats);
}

Result<QueryResult> Engine::Run(const QueryBuilder& builder,
                                std::optional<Span> range,
                                AccessStats* stats) const {
  return Run(builder.Build(), range, stats);
}

Result<QueryResult> Engine::RunAt(const LogicalOpPtr& graph,
                                  std::vector<Position> positions,
                                  AccessStats* stats) const {
  Query query;
  query.graph = graph;
  query.positions = std::move(positions);
  return Run(query, stats);
}

Result<std::string> Engine::Explain(const Query& query) const {
  Query inlined = query;
  SEQ_ASSIGN_OR_RETURN(inlined.graph, InlineViews(query.graph, views_));
  Optimizer optimizer(catalog_, options_);
  SEQ_ASSIGN_OR_RETURN(PhysicalPlan plan, optimizer.Optimize(inlined));
  std::ostringstream oss;
  oss << "=== logical (annotated, rewritten) ===\n";
  oss << optimizer.optimized_graph()->ToTreeString();
  if (!optimizer.rewrites_applied().empty()) {
    oss << "--- rewrites: ";
    for (size_t i = 0; i < optimizer.rewrites_applied().size(); ++i) {
      if (i > 0) oss << ", ";
      oss << optimizer.rewrites_applied()[i];
    }
    oss << "\n";
  }
  oss << "=== physical ===\n" << plan.Explain();
  return oss.str();
}

Result<std::map<std::string, QueryResult>> Engine::RunGrouped(
    const std::vector<std::string>& members,
    const std::function<LogicalOpPtr(const std::string&)>& graph_for,
    std::optional<Span> range, AccessStats* stats) const {
  std::map<std::string, QueryResult> out;
  for (const std::string& member : members) {
    LogicalOpPtr graph = graph_for(member);
    if (graph == nullptr) {
      return Status::InvalidArgument("grouped query produced no graph for '" +
                                     member + "'");
    }
    SEQ_ASSIGN_OR_RETURN(QueryResult result, Run(graph, range, stats));
    out.emplace(member, std::move(result));
  }
  return out;
}

}  // namespace seq
