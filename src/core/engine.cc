#include "core/engine.h"

#include <sstream>

#include "obs/metrics.h"

namespace seq {

Result<PhysicalPlan> Engine::Plan(const Query& query) const {
  Query inlined = query;
  SEQ_ASSIGN_OR_RETURN(inlined.graph, InlineViews(query.graph, views_));
  Optimizer optimizer(catalog_, options_);
  return optimizer.Optimize(inlined);
}

Status Engine::DefineView(std::string name, LogicalOpPtr graph) {
  if (graph == nullptr) {
    return Status::InvalidArgument("null view definition");
  }
  if (catalog_.Contains(name)) {
    return Status::InvalidArgument("view '" + name +
                                   "' shadows a catalog sequence");
  }
  if (views_.count(name) > 0) {
    return Status::InvalidArgument("view '" + name + "' already defined");
  }
  // Inline existing views now so later definitions cannot create cycles.
  SEQ_ASSIGN_OR_RETURN(LogicalOpPtr inlined, InlineViews(graph, views_));
  views_.emplace(std::move(name), std::move(inlined));
  return Status::OK();
}

Status Engine::Materialize(const std::string& name,
                           const LogicalOpPtr& graph,
                           std::optional<Span> range, int records_per_page,
                           AccessCosts costs) {
  if (catalog_.Contains(name) || views_.count(name) > 0) {
    return Status::InvalidArgument("'" + name + "' already exists");
  }
  SEQ_ASSIGN_OR_RETURN(QueryResult result, Run(graph, range));
  SEQ_ASSIGN_OR_RETURN(
      BaseSequencePtr store,
      BaseSequenceStore::FromRecords(result.schema,
                                     std::move(result.records),
                                     records_per_page, costs));
  return catalog_.RegisterBase(name, std::move(store));
}

Result<Engine::PreparedQuery> Engine::Prepare(const Query& query) const {
  SEQ_ASSIGN_OR_RETURN(PhysicalPlan plan, Plan(query));
  return PreparedQuery(&catalog_, options_.cost_params, exec_options_,
                       std::move(plan));
}

Result<QueryResult> Engine::Run(const Query& query, AccessStats* stats) const {
  MetricsRegistry::Global().Add("engine.runs");
  SEQ_ASSIGN_OR_RETURN(PhysicalPlan plan, Plan(query));
  Executor executor(catalog_, options_.cost_params, exec_options_);
  return executor.Execute(plan, stats);
}

Result<ProfiledQueryResult> Engine::RunProfiled(const Query& query,
                                                AccessStats* stats) const {
  Query inlined = query;
  SEQ_ASSIGN_OR_RETURN(inlined.graph, InlineViews(query.graph, views_));
  OptimizerOptions opts = options_;
  opts.collect_trace = true;
  Optimizer optimizer(catalog_, opts);
  SEQ_ASSIGN_OR_RETURN(PhysicalPlan plan, optimizer.Optimize(inlined));

  Executor executor(catalog_, options_.cost_params, exec_options_);
  ProfiledQueryResult out;
  SEQ_ASSIGN_OR_RETURN(out.result,
                       executor.ExecuteProfiled(plan, &out.profile, stats));
  // ExecuteProfiled resets the profile, so the trace is attached after.
  out.profile.optimizer = optimizer.trace();

  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.Add("engine.profiled_runs");
  metrics.Observe("engine.optimize_us",
                  static_cast<double>(optimizer.trace().optimize_us));
  metrics.Observe("engine.execute_us",
                  static_cast<double>(out.profile.total_wall_ns) / 1000.0);
  return out;
}

Result<std::string> Engine::ExplainAnalyze(const Query& query) const {
  SEQ_ASSIGN_OR_RETURN(ProfiledQueryResult profiled, RunProfiled(query));
  return profiled.profile.ToString();
}

Result<QueryResult> Engine::Run(const LogicalOpPtr& graph,
                                std::optional<Span> range,
                                AccessStats* stats) const {
  Query query;
  query.graph = graph;
  query.range = range;
  return Run(query, stats);
}

Result<QueryResult> Engine::Run(const QueryBuilder& builder,
                                std::optional<Span> range,
                                AccessStats* stats) const {
  return Run(builder.Build(), range, stats);
}

Result<QueryResult> Engine::RunAt(const LogicalOpPtr& graph,
                                  std::vector<Position> positions,
                                  AccessStats* stats) const {
  Query query;
  query.graph = graph;
  query.positions = std::move(positions);
  return Run(query, stats);
}

Result<std::string> Engine::Explain(const Query& query) const {
  Query inlined = query;
  SEQ_ASSIGN_OR_RETURN(inlined.graph, InlineViews(query.graph, views_));
  Optimizer optimizer(catalog_, options_);
  SEQ_ASSIGN_OR_RETURN(PhysicalPlan plan, optimizer.Optimize(inlined));
  std::ostringstream oss;
  oss << "=== logical (annotated, rewritten) ===\n";
  oss << optimizer.optimized_graph()->ToTreeString();
  if (!optimizer.rewrites_applied().empty()) {
    oss << "--- rewrites: ";
    for (size_t i = 0; i < optimizer.rewrites_applied().size(); ++i) {
      if (i > 0) oss << ", ";
      oss << optimizer.rewrites_applied()[i];
    }
    oss << "\n";
  }
  oss << "=== physical ===\n" << plan.Explain();
  return oss.str();
}

Result<std::map<std::string, QueryResult>> Engine::RunGrouped(
    const std::vector<std::string>& members,
    const std::function<LogicalOpPtr(const std::string&)>& graph_for,
    std::optional<Span> range, AccessStats* stats) const {
  std::map<std::string, QueryResult> out;
  for (const std::string& member : members) {
    LogicalOpPtr graph = graph_for(member);
    if (graph == nullptr) {
      return Status::InvalidArgument("grouped query produced no graph for '" +
                                     member + "'");
    }
    SEQ_ASSIGN_OR_RETURN(QueryResult result, Run(graph, range, stats));
    out.emplace(member, std::move(result));
  }
  return out;
}

}  // namespace seq
