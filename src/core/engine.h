#ifndef SEQ_CORE_ENGINE_H_
#define SEQ_CORE_ENGINE_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "common/query_digest.h"
#include "common/result.h"
#include "core/plan_cache.h"
#include "core/views.h"
#include "exec/executor.h"
#include "logical/builder.h"
#include "optimizer/optimizer.h"
#include "parser/parser.h"

namespace seq {

/// Per-query run configuration — the one way to say HOW a query executes.
/// Replaces the old pattern of mutating engine-wide exec_options() between
/// queries: a RunOptions travels with the call, so concurrent queries on
/// one engine can use different budgets, parallelism, driving modes and
/// instrumentation without racing on shared engine state.
///
///   RunOptions opts;
///   opts.exec.guards.max_rows = 1000;
///   opts.exec.parallelism = 4;
///   opts.profile = true;
///   auto result = engine.Run(query, opts);          // result->profile set
struct RunOptions {
  /// Execution knobs for this run: driving mode, batch capacity, budgets,
  /// fault injection, morsel parallelism (a share cap on the process-wide
  /// scheduler pool), scheduler priority and admission timeout. Defaults
  /// are the library defaults (including SEQ_USE_BATCH / SEQ_PARALLELISM),
  /// NOT whatever was last poked into the deprecated engine-wide
  /// exec_options().
  ExecOptions exec;
  /// Collect the per-operator runtime profile and optimizer trace into
  /// QueryResult::profile. Slower (every operator call is timed); the
  /// unprofiled path is untouched when false.
  bool profile = false;
  /// When set, every answer row streams to this sink in position order and
  /// QueryResult::records stays empty — the allocation-free consumption
  /// path. The row reference is only valid during the callback. Cannot be
  /// combined with `profile`, and rows already visited before a mid-stream
  /// error or budget trip cannot be taken back (docs/robustness.md).
  RowSink sink;
  /// Simulated access/cache/predicate counters accumulate here when set.
  AccessStats* stats = nullptr;
};

/// The public facade of the SEQ library: a catalog of named sequences plus
/// optimize-and-evaluate entry points.
///
/// Thread safety: Plan/Run/RunAt/Explain are const and safe to call from
/// multiple threads concurrently, provided no thread mutates the engine
/// (RegisterBase/DefineView/Materialize/StreamSession appends) at the same
/// time — the usual "set up, then query in parallel" pattern. Per-query
/// behavior differences belong in RunOptions, which never touches engine
/// state.
///
///   Engine engine;
///   engine.RegisterBase("quakes", store);
///   auto result = engine.Run(SeqRef("quakes")
///                                .Select(Gt(Col("strength"), Lit(7.0)))
///                                .Build());
class Engine {
 public:
  explicit Engine(OptimizerOptions options = {})
      : options_(std::move(options)) {}

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  OptimizerOptions& options() { return options_; }

  /// Catalog mutations retire this engine's plan-cache entries eagerly.
  /// (The catalog version in every cache key already makes stale entries
  /// unreachable; invalidation reclaims their memory without waiting for
  /// LRU eviction.)
  Status RegisterBase(std::string name, BaseSequencePtr store) {
    Status s = catalog_.RegisterBase(std::move(name), std::move(store));
    if (s.ok()) PlanCache::Global().InvalidateEngine(plan_cache_id_.value());
    return s;
  }
  Status RegisterConstant(std::string name, SchemaPtr schema, Record value) {
    Status s = catalog_.RegisterConstant(std::move(name), std::move(schema),
                                         std::move(value));
    if (s.ok()) PlanCache::Global().InvalidateEngine(plan_cache_id_.value());
    return s;
  }

  /// Defines a named derived sequence (§5.2): queries referring to `name`
  /// inline a clone of `graph`. The name must not shadow a catalog
  /// sequence; definitions may reference earlier views but not cycle.
  Status DefineView(std::string name, LogicalOpPtr graph);
  const ViewMap& views() const { return views_; }

  /// Materializes a derived sequence (§5.3: "materialization of derived
  /// sequences ... is definitely an option"): evaluates `graph` over
  /// `range` (or its natural span) and registers the result as a new base
  /// sequence called `name` — with real column statistics, making it a
  /// first-class optimizer citizen for later queries.
  Status Materialize(const std::string& name, const LogicalOpPtr& graph,
                     std::optional<Span> range = std::nullopt,
                     int records_per_page = 64,
                     AccessCosts costs = AccessCosts{});

  /// Optimizes `query` and returns the selected plan without running it.
  Result<PhysicalPlan> Plan(const Query& query) const;

  /// THE run entry point: optimizes and evaluates `query` under `opts`.
  /// Covers what used to be four methods — Run (plain), RunProfiled
  /// (opts.profile), RunVisit/ExecuteVisit (opts.sink) — and applies
  /// graceful cache-budget degradation on every non-sink path.
  Result<QueryResult> Run(const Query& query, const RunOptions& opts) const;

  /// RunOptions conveniences mirroring the legacy range/point shapes.
  Result<QueryResult> Run(const LogicalOpPtr& graph, std::optional<Span> range,
                          const RunOptions& opts) const;
  Result<QueryResult> Run(const QueryBuilder& builder,
                          std::optional<Span> range,
                          const RunOptions& opts) const;
  Result<QueryResult> RunAt(const LogicalOpPtr& graph,
                            std::vector<Position> positions,
                            const RunOptions& opts) const;

  /// Conveniences: run with the library-default ExecOptions (including
  /// the SEQ_USE_BATCH / SEQ_PARALLELISM environment defaults).
  Result<QueryResult> Run(const Query& query,
                          AccessStats* stats = nullptr) const;
  Result<QueryResult> Run(const LogicalOpPtr& graph,
                          std::optional<Span> range = std::nullopt,
                          AccessStats* stats = nullptr) const;
  Result<QueryResult> Run(const QueryBuilder& builder,
                          std::optional<Span> range = std::nullopt,
                          AccessStats* stats = nullptr) const;
  Result<QueryResult> RunAt(const LogicalOpPtr& graph,
                            std::vector<Position> positions,
                            AccessStats* stats = nullptr) const;

  /// Runs a Sequin program from source text. The text fast path of the
  /// parameterized plan cache: when this exact query SHAPE (the text with
  /// literals stripped) has run before, the lexer, parser, rewriter and
  /// planner are all skipped — the literal tokens are bound straight into
  /// the cached plan template. First runs (and programs the text tier
  /// cannot safely bind: multi-statement definitions, bool literals,
  /// literals the optimizer folded away) take the normal parse-and-run
  /// path, which still hits the graph-tier plan cache. EXPLAIN programs
  /// are rejected — use Explain / ExplainAnalyze.
  Result<QueryResult> RunText(const std::string& source,
                              std::optional<Span> range = std::nullopt,
                              const RunOptions& opts = {}) const;

  /// Resumes a query suspended to `checkpoint_path` (by a run with
  /// RunOptions::exec.checkpoint.enabled — see docs/robustness.md).
  /// Validates the checkpoint's validity tuple against this engine —
  /// catalog version, optimizer-options fingerprint and plan signature
  /// must all match, or the resume is rejected with FailedPrecondition
  /// naming the mismatch. The query is re-planned from its stored text
  /// (through the plan cache), re-rooted at the stored watermark, its
  /// operator state restored, and run to completion — producing rows and
  /// stats byte-identical to an uninterrupted checkpointed run. The
  /// resumed run may itself suspend again (a new checkpoint file).
  /// `opts.profile` and `opts.sink` must be unset.
  Result<QueryResult> Resume(const std::string& checkpoint_path,
                             const RunOptions& opts = {}) const;

  /// Flags the live query `query_id` (a `.queries` id) for cooperative
  /// suspension at its next chunk boundary. Only checkpoint-enabled runs
  /// observe the flag; returns false when no such query is live.
  static bool RequestSuspend(uint64_t query_id);

  /// Annotated logical graph plus the physical plan, as text.
  Result<std::string> Explain(const Query& query) const;

  /// EXPLAIN ANALYZE: runs the query profiled and renders the plan tree
  /// with estimated vs actual rows/cost per operator, the optimizer trace,
  /// and the cost-model drift summary. The RunOptions overload profiles
  /// under the given execution knobs (opts.profile is implied; opts.sink
  /// must be unset).
  Result<std::string> ExplainAnalyze(const Query& query) const;
  Result<std::string> ExplainAnalyze(const Query& query,
                                     const RunOptions& opts) const;

  /// A query optimized once and executable many times — amortizes the
  /// fixed optimization cost for standing/repeated queries (the regime
  /// where E1's small-input nuance matters).
  class PreparedQuery {
   public:
    /// Executes the prepared plan under per-run options (profile, sink,
    /// budgets, parallelism). Unlike Engine::Run there is no degradation
    /// re-plan here — the plan is fixed; a cache-budget trip surfaces as
    /// the ResourceExhausted degradation signal for the caller to handle.
    Result<QueryResult> Run(const RunOptions& opts) const;

    /// Convenience: library-default RunOptions, stats collection only.
    Result<QueryResult> Run(AccessStats* stats = nullptr) const {
      RunOptions opts;
      opts.stats = stats;
      return Run(opts);
    }
    const PhysicalPlan& plan() const { return plan_; }

   private:
    friend class Engine;
    PreparedQuery(const Catalog* catalog, CostParams params, PhysicalPlan plan,
                  std::string text, std::string digest)
        : catalog_(catalog),
          params_(params),
          plan_(std::move(plan)),
          text_(std::move(text)),
          digest_(std::move(digest)) {}

    const Catalog* catalog_;  // owned by the Engine; must outlive this
    CostParams params_;
    PhysicalPlan plan_;
    // Query-registry identity, captured once at Prepare so repeated Runs
    // never re-unparse (empty when the registry was disabled then).
    std::string text_;
    std::string digest_;
    // True when Prepare itself was answered from the plan cache; surfaced
    // on every Run's registry record.
    bool plan_cached_ = false;
  };

  /// Optimizes once; the result stays valid while this engine (and its
  /// catalog contents) live and is safe to Run() from multiple threads.
  Result<PreparedQuery> Prepare(const Query& query) const;

  /// §5.1 sequence groupings: runs the same query graph template over a
  /// group of same-schema sequences. `graph_for` receives each member name
  /// and returns the graph to run. Returns results keyed by member name.
  Result<std::map<std::string, QueryResult>> RunGrouped(
      const std::vector<std::string>& members,
      const std::function<LogicalOpPtr(const std::string&)>& graph_for,
      std::optional<Span> range = std::nullopt,
      AccessStats* stats = nullptr) const;

 private:
  // The single execution workhorse behind every Run shape. The outer
  // RunWithOptions owns the always-on telemetry envelope — query-registry
  // ticket, run counters/latency histogram, slow-query log — around the
  // Impl, which optimizes (with trace when profiling), records the
  // morsel-parallelism decision, executes (plain / profiled / sink), and
  // re-plans cache-free on the cache-budget degradation signal (non-sink
  // paths only — sunk rows can't be unsent).
  Result<QueryResult> RunWithOptions(const Query& query,
                                     const ExecOptions& exec, bool profile,
                                     const RowSink& sink,
                                     AccessStats* stats) const;
  Result<QueryResult> RunWithOptionsImpl(const Query& query,
                                         const ExecOptions& exec, bool profile,
                                         const RowSink& sink,
                                         AccessStats* stats,
                                         QueryRegistry::Ticket& ticket) const;

  /// The checkpointed execution driver behind Run (exec.checkpoint.enabled)
  /// and Resume: drives Executor::ExecuteCheckpointed and, when a suspend
  /// trigger fires at a chunk boundary, persists the capture as a
  /// checkpoint file. User/cache-budget suspensions return the
  /// query-suspended status carrying the file path; scheduler preemptions
  /// park in place — write the file, release the slot, wait in the
  /// admission queue, then resume from the file just written.
  Result<QueryResult> RunCheckpointed(const Query& inlined,
                                      const PhysicalPlan& plan,
                                      const OptimizerOptions& opt_options,
                                      const ExecOptions& exec,
                                      AccessStats* stats,
                                      QueryRegistry::Ticket& ticket) const;

  // Plan-cache plumbing (docs/execution.md, "plan cache") ------------------

  /// Everything literal-independent that selects a plan: engine identity,
  /// catalog version and the planning-relevant optimizer options. The
  /// query-shape signature (graph tier) or normalized text (text tier) is
  /// appended to form the full cache key.
  std::string PlanKeyPrefix(const OptimizerOptions& opt_options) const;

  /// The one planning entry point behind Run/Prepare: answers from the
  /// plan cache when possible, otherwise optimizes `inlined` via
  /// `optimizer` and publishes the resulting template. `allow_read` is
  /// false for profiled runs — they must produce a real optimizer trace,
  /// so they always re-optimize but still refresh the cached template.
  /// Sets *from_cache when the returned plan skipped the optimizer.
  Result<PhysicalPlan> PlanViaCache(const Query& inlined,
                                    const OptimizerOptions& opt_options,
                                    Optimizer& optimizer, bool use_cache,
                                    bool allow_read, bool* from_cache) const;

  /// Publishes an optimized template (called on every cache miss).
  void InsertPlanEntry(const std::string& key, ParameterizedQuery pq,
                       const PhysicalPlan& plan, const Optimizer& optimizer,
                       const OptimizerOptions& opt_options,
                       const Query& inlined) const;

  /// Records the text-shape → plan-key resolution after a successful
  /// parse-path RunText, deciding whether the shape is text-bindable.
  void InsertTextEntry(const std::string& text_key, const NormalizedQuery& nq,
                       const ParsedProgram& program, const Query& query) const;

  /// Executes an already-bound cached plan for RunText with the full
  /// telemetry envelope. Sets *budget_tripped (and returns the error) when
  /// the run hit the cache-memory budget — the caller then falls back to
  /// the parse path, whose degradation re-plan handles it.
  Result<QueryResult> RunCachedPlanText(const std::string& source,
                                        const std::string& shape,
                                        const PhysicalPlan& plan,
                                        const RunOptions& opts,
                                        bool* budget_tripped) const;

  Catalog catalog_;
  OptimizerOptions options_;
  ViewMap views_;
  PlanCacheId plan_cache_id_;
};

}  // namespace seq

#endif  // SEQ_CORE_ENGINE_H_
