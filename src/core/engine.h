#ifndef SEQ_CORE_ENGINE_H_
#define SEQ_CORE_ENGINE_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "core/views.h"
#include "exec/executor.h"
#include "logical/builder.h"
#include "optimizer/optimizer.h"

namespace seq {

/// A query answer paired with its observability record: the per-operator
/// estimated-vs-actual profile and the optimizer's decision trace.
struct ProfiledQueryResult {
  QueryResult result;
  QueryProfile profile;
};

/// The public facade of the SEQ library: a catalog of named sequences plus
/// optimize-and-evaluate entry points.
///
/// Thread safety: Plan/Run/RunAt/Explain are const and safe to call from
/// multiple threads concurrently, provided no thread mutates the engine
/// (RegisterBase/DefineView/Materialize/StreamSession appends) at the same
/// time — the usual "set up, then query in parallel" pattern.
///
///   Engine engine;
///   engine.RegisterBase("quakes", store);
///   auto result = engine.Run(SeqRef("quakes")
///                                .Select(Gt(Col("strength"), Lit(7.0)))
///                                .Build());
class Engine {
 public:
  explicit Engine(OptimizerOptions options = {})
      : options_(std::move(options)) {}

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  OptimizerOptions& options() { return options_; }

  /// Execution knobs (batch vs tuple driving, batch capacity). Mutate
  /// before querying; e.g. `engine.exec_options().use_batch = false`
  /// forces the tuple-at-a-time baseline.
  ExecOptions& exec_options() { return exec_options_; }
  const ExecOptions& exec_options() const { return exec_options_; }

  Status RegisterBase(std::string name, BaseSequencePtr store) {
    return catalog_.RegisterBase(std::move(name), std::move(store));
  }
  Status RegisterConstant(std::string name, SchemaPtr schema, Record value) {
    return catalog_.RegisterConstant(std::move(name), std::move(schema),
                                     std::move(value));
  }

  /// Defines a named derived sequence (§5.2): queries referring to `name`
  /// inline a clone of `graph`. The name must not shadow a catalog
  /// sequence; definitions may reference earlier views but not cycle.
  Status DefineView(std::string name, LogicalOpPtr graph);
  const ViewMap& views() const { return views_; }

  /// Materializes a derived sequence (§5.3: "materialization of derived
  /// sequences ... is definitely an option"): evaluates `graph` over
  /// `range` (or its natural span) and registers the result as a new base
  /// sequence called `name` — with real column statistics, making it a
  /// first-class optimizer citizen for later queries.
  Status Materialize(const std::string& name, const LogicalOpPtr& graph,
                     std::optional<Span> range = std::nullopt,
                     int records_per_page = 64,
                     AccessCosts costs = AccessCosts{});

  /// Optimizes `query` and returns the selected plan without running it.
  Result<PhysicalPlan> Plan(const Query& query) const;

  /// Optimizes and evaluates. Simulated access counters accumulate into
  /// `stats` when provided.
  Result<QueryResult> Run(const Query& query,
                          AccessStats* stats = nullptr) const;

  /// Range-query conveniences.
  Result<QueryResult> Run(const LogicalOpPtr& graph,
                          std::optional<Span> range = std::nullopt,
                          AccessStats* stats = nullptr) const;
  Result<QueryResult> Run(const QueryBuilder& builder,
                          std::optional<Span> range = std::nullopt,
                          AccessStats* stats = nullptr) const;

  /// Point-query convenience (the Fig. 6 position-sequence template).
  Result<QueryResult> RunAt(const LogicalOpPtr& graph,
                            std::vector<Position> positions,
                            AccessStats* stats = nullptr) const;

  /// Annotated logical graph plus the physical plan, as text.
  Result<std::string> Explain(const Query& query) const;

  /// Optimizes with trace collection and evaluates with per-operator
  /// instrumentation. Slower than Run (every operator call is timed); the
  /// Run path itself is untouched.
  Result<ProfiledQueryResult> RunProfiled(const Query& query,
                                          AccessStats* stats = nullptr) const;

  /// EXPLAIN ANALYZE: runs the query profiled and renders the plan tree
  /// with estimated vs actual rows/cost per operator, the optimizer trace,
  /// and the cost-model drift summary.
  Result<std::string> ExplainAnalyze(const Query& query) const;

  /// A query optimized once and executable many times — amortizes the
  /// fixed optimization cost for standing/repeated queries (the regime
  /// where E1's small-input nuance matters).
  class PreparedQuery {
   public:
    Result<QueryResult> Run(AccessStats* stats = nullptr) const {
      Executor executor(*catalog_, params_, exec_options_);
      return executor.Execute(plan_, stats);
    }
    /// Streaming variant: hands every answer row to `sink` instead of
    /// materializing a QueryResult (see Executor::ExecuteVisit). The row
    /// reference is only valid during the callback.
    Status RunVisit(const RowSink& sink, AccessStats* stats = nullptr) const {
      Executor executor(*catalog_, params_, exec_options_);
      return executor.ExecuteVisit(plan_, sink, stats);
    }
    const PhysicalPlan& plan() const { return plan_; }

   private:
    friend class Engine;
    PreparedQuery(const Catalog* catalog, CostParams params,
                  ExecOptions exec_options, PhysicalPlan plan)
        : catalog_(catalog),
          params_(params),
          exec_options_(exec_options),
          plan_(std::move(plan)) {}

    const Catalog* catalog_;  // owned by the Engine; must outlive this
    CostParams params_;
    ExecOptions exec_options_;
    PhysicalPlan plan_;
  };

  /// Optimizes once; the result stays valid while this engine (and its
  /// catalog contents) live and is safe to Run() from multiple threads.
  Result<PreparedQuery> Prepare(const Query& query) const;

  /// §5.1 sequence groupings: runs the same query graph template over a
  /// group of same-schema sequences. `graph_for` receives each member name
  /// and returns the graph to run. Returns results keyed by member name.
  Result<std::map<std::string, QueryResult>> RunGrouped(
      const std::vector<std::string>& members,
      const std::function<LogicalOpPtr(const std::string&)>& graph_for,
      std::optional<Span> range = std::nullopt,
      AccessStats* stats = nullptr) const;

 private:
  Catalog catalog_;
  OptimizerOptions options_;
  ExecOptions exec_options_;
  ViewMap views_;
};

}  // namespace seq

#endif  // SEQ_CORE_ENGINE_H_
