#ifndef SEQ_CORE_VIEWS_H_
#define SEQ_CORE_VIEWS_H_

#include <map>
#include <string>

#include "common/result.h"
#include "logical/logical_op.h"

namespace seq {

/// Named derived sequences (§5.2's shared sub-expressions, kept within the
/// paper's tree-shaped graphs): a view maps a name to a query graph;
/// references inline a private clone of the definition, so a query using
/// the same view twice stays a tree while being written as a DAG.
using ViewMap = std::map<std::string, LogicalOpPtr>;

/// Returns `graph` with every BaseRef naming a view replaced by a clone of
/// the view's definition, recursively. Fails on cyclic definitions.
Result<LogicalOpPtr> InlineViews(const LogicalOpPtr& graph,
                                 const ViewMap& views);

}  // namespace seq

#endif  // SEQ_CORE_VIEWS_H_
