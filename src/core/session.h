#ifndef SEQ_CORE_SESSION_H_
#define SEQ_CORE_SESSION_H_

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/engine.h"

namespace seq {

/// What one Session request produced. `text` carries human-readable output
/// (EXPLAIN trees, "defined <name>" notes, command results); when
/// `is_rows` is set the request evaluated a query and `schema`/`rows`
/// carry the answer. `stats` is filled when the session collects access
/// counters (set_collect_stats).
struct ExecuteReply {
  bool is_rows = false;
  SchemaPtr schema;
  std::vector<PosRecord> rows;
  std::string text;
  bool has_stats = false;
  AccessStats stats;
};

/// The one client surface of the engine (docs/server.md): seqsh local
/// mode, seqsh --connect remote mode and every seqserved connection
/// handler speak this interface, so a command behaves identically however
/// the session reaches the engine.
///
/// A session owns the client-visible state that used to live ad hoc in
/// seqsh: the default RunOptions every query travels with (budgets,
/// parallelism share, priority, checkpointing), the evaluation range, a
/// table of prepared statements, and — for LocalSession — session-scoped
/// view definitions, so concurrent sessions on one server engine can both
/// say `q = ...` without colliding.
///
/// Lifecycle: Close() is idempotent and may be called from another thread
/// (the server's connection reader calls it on disconnect). It flips the
/// session's cooperative-cancel flag — wired into every run's
/// QueryGuards::cancel — so in-flight queries abort at their next check,
/// admission slots release via RAII, and subsequent calls fail with
/// Cancelled. Prepared statements are freed with the session.
class Session {
 public:
  virtual ~Session() = default;

  /// Process-unique session id; attributed on every run in the query
  /// registry (`.queries`, telemetry exporters).
  uint64_t id() const { return id_; }

  /// Per-session execution defaults: a copy travels with every query, so
  /// sessions on one engine never race on shared state. When
  /// `options().sink` is set, rows stream to it instead of materializing
  /// in the reply — the server uses this to forward row batches without
  /// buffering a whole result. `options().stats` is ignored; stats
  /// collection is set_collect_stats() and part of each reply.
  RunOptions& options() { return options_; }
  const RunOptions& options() const { return options_; }

  /// Evaluation range applied to every query (nullopt = natural span).
  std::optional<Span>& range() { return range_; }

  /// Collect simulated access counters into every reply's `stats`.
  void set_collect_stats(bool on) { collect_stats_ = on; }
  bool collect_stats() const { return collect_stats_; }

  /// Runs a Sequin fragment: definitions become session views, EXPLAIN
  /// programs return text, everything else evaluates the main expression
  /// under the session options and range.
  virtual Result<ExecuteReply> Execute(const std::string& source) = 0;

  /// Optimizes a Sequin statement once and stores it in the session's
  /// prepared-statement table; returns the statement id. Cache-backed:
  /// repeat shapes skip the optimizer via the process plan cache.
  virtual Result<uint64_t> Prepare(const std::string& source) = 0;
  virtual Result<ExecuteReply> ExecutePrepared(uint64_t statement_id) = 0;
  virtual Status CloseStatement(uint64_t statement_id) = 0;

  /// Flags live query `query_id` for cooperative suspension at its next
  /// chunk boundary (checkpoint-enabled runs only).
  virtual Status Suspend(uint64_t query_id) = 0;

  /// Resumes a suspended query from its checkpoint file.
  virtual Result<ExecuteReply> Resume(const std::string& checkpoint_path) = 0;

  /// Read-only telemetry snapshots, by kind: "metrics", "prom", "json",
  /// "queries", "sched", "plancache", "slowlog".
  virtual Result<std::string> Telemetry(const std::string& kind) = 0;

  /// Admin commands with textual results, shared verbatim between local
  /// and remote mode: gen, load, list, schema, materialize, save, savedb,
  /// opendb, plancache on|off|clear, slowlog clear|threshold <ms>,
  /// sched workers|limit <n>.
  virtual Result<std::string> Command(
      const std::vector<std::string>& args) = 0;

  /// Ends the session: cancels in-flight queries cooperatively and makes
  /// further calls fail with Cancelled. Idempotent; safe to call from a
  /// different thread than the one executing requests.
  virtual void Close() = 0;

 protected:
  Session() : id_(NextSessionId()) {}
  static uint64_t NextSessionId();

  uint64_t id_;
  RunOptions options_;
  std::optional<Span> range_;
  bool collect_stats_ = false;
};

/// A session executing directly against an Engine in this process.
///
/// Two modes: the default constructor owns a private engine (seqsh local
/// mode, tests); the sharing constructor attaches to a server engine
/// guarded by `gate` — queries take the gate shared, catalog mutations
/// (gen/load/materialize) take it exclusively, so one session's `.gen`
/// cannot race another's running query (Engine's documented thread
/// contract).
class LocalSession : public Session {
 public:
  /// Owns a fresh private engine.
  LocalSession();
  /// Shares `engine`; both pointers must outlive the session.
  LocalSession(Engine* engine, std::shared_mutex* gate);
  ~LocalSession() override;

  Engine& engine() { return *engine_; }

  Result<ExecuteReply> Execute(const std::string& source) override;
  Result<uint64_t> Prepare(const std::string& source) override;
  Result<ExecuteReply> ExecutePrepared(uint64_t statement_id) override;
  Status CloseStatement(uint64_t statement_id) override;
  Status Suspend(uint64_t query_id) override;
  Result<ExecuteReply> Resume(const std::string& checkpoint_path) override;
  Result<std::string> Telemetry(const std::string& kind) override;
  Result<std::string> Command(const std::vector<std::string>& args) override;
  void Close() override;

  /// The session's view definitions (`name = expr;` statements).
  const ViewMap& views() const { return views_; }

 private:
  /// Session exec options for one run: the session defaults plus the
  /// session id and — unless the caller supplied a cancel flag — the
  /// session's close-cancels-queries wiring.
  ExecOptions RunExec() const;
  Status CheckOpen() const;
  /// Resolves `name` against session views, then the engine's catalog and
  /// views.
  Result<LogicalOpPtr> ResolveName(const std::string& name) const;
  Result<ExecuteReply> RunGraph(const LogicalOpPtr& graph,
                                ExecuteReply reply);
  /// Evaluates a fully-inlined main graph under `mode`.
  Result<ExecuteReply> RunMain(const LogicalOpPtr& graph, ExecuteReply reply,
                               ExplainMode mode);

  std::unique_ptr<Engine> owned_;
  std::unique_ptr<std::shared_mutex> own_gate_;
  Engine* engine_;
  std::shared_mutex* gate_;
  ViewMap views_;
  std::map<uint64_t, Engine::PreparedQuery> statements_;
  uint64_t next_statement_ = 1;
  std::atomic<bool> closed_{false};
};

}  // namespace seq

#endif  // SEQ_CORE_SESSION_H_
