#ifndef SEQ_CORE_DATABASE_IO_H_
#define SEQ_CORE_DATABASE_IO_H_

#include <string>

#include "common/result.h"
#include "core/engine.h"

namespace seq {

/// Whole-database persistence: a directory holding one SEQ1 binary file
/// per base sequence plus a `manifest.seqdb` text file describing the
/// catalog — constant sequences (inline values), null-position
/// correlations, and views (serialized as Sequin text and re-parsed on
/// load). Optimizer options are not persisted; they belong to the session.

Status SaveDatabase(const Engine& engine, const std::string& directory);

/// Loads into `engine`, which must be freshly constructed (empty catalog).
Status LoadDatabase(const std::string& directory, Engine* engine);

}  // namespace seq

#endif  // SEQ_CORE_DATABASE_IO_H_
