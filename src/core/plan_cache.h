#ifndef SEQ_CORE_PLAN_CACHE_H_
#define SEQ_CORE_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "optimizer/physical_plan.h"
#include "optimizer/plan_template.h"
#include "types/value.h"

namespace seq {

/// Re-cost guard threshold: a cached plan is re-optimized when the bound
/// literals move any captured predicate's estimated selectivity by more
/// than this ratio (either direction) from what the planner assumed.
inline constexpr double kPlanCacheRecostThreshold = 4.0;

/// One cached optimized plan template. Immutable after insert (the hit
/// counter is the only mutable field); shared by reference with every
/// concurrent reader, so a hit never copies the plan tree — binding shares
/// all non-parameterized nodes with the template.
struct PlanCacheEntry {
  /// The optimized plan with the creating query's literals still bound
  /// (tagged with param indices when `bindable`).
  PhysicalPlan plan;
  /// Types of the extracted parameters, in tag order. A hit whose literal
  /// types differ is treated as a miss (defense in depth — the signature
  /// already encodes types).
  std::vector<TypeId> param_types;
  /// True when the plan mentions every extracted parameter, so new
  /// literals can be rebound. False when a rewrite dropped a literal from
  /// the plan — then the plan is only reused when `bound_values` match the
  /// incoming literals exactly (the dropped literal's value shaped the
  /// plan).
  bool bindable = true;
  /// The creating query's literal values; compared on hit when !bindable.
  std::vector<Value> bound_values;
  /// The creating query's explicit point positions. The signature only
  /// hashes the position list; this verbatim copy is compared on every hit
  /// so a hash collision can never execute the wrong positions.
  std::vector<Position> positions;
  /// Literal-sensitive costing assumptions for the re-cost guard.
  std::vector<RecostCheck> recost_checks;
  /// Owning engine (plans reference that engine's catalog stores).
  uint64_t engine_id = 0;
  /// Normalized display text for stats output.
  std::string display;
  /// Estimated footprint (key + plan tree), charged against the byte cap.
  size_t bytes = 0;

  mutable std::atomic<uint64_t> hits{0};
};

using PlanCacheEntryPtr = std::shared_ptr<const PlanCacheEntry>;

/// Resolution of a query text shape to a plan-cache key, cached so the
/// text fast path (Engine::RunText) can skip the lexer and parser
/// entirely: normalize the text, look up its shape here, bind the
/// extracted literal tokens straight into the plan found under
/// `plan_key`.
struct TextShapeEntry {
  std::string plan_key;
  std::vector<TypeId> param_types;
  /// False when the statement's extracted text literals do not correspond
  /// 1:1 with the graph's parameters (multi-statement programs, bool
  /// literals, folded predicates) — then the text tier only records the
  /// miss and the parse path is taken.
  bool bindable = false;
  uint64_t engine_id = 0;
};

/// Counters and occupancy snapshot for `.plancache stats`, tests and the
/// metrics exporters.
struct PlanCacheStats {
  bool enabled = true;
  size_t entries = 0;
  size_t bytes = 0;
  size_t max_entries = 0;
  size_t max_bytes = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;
  uint64_t recost_fallbacks = 0;
  uint64_t text_hits = 0;
};

/// The process-wide parameterized plan cache (docs/execution.md, "plan
/// cache"): optimized physical-plan templates keyed on query shape
/// signature + catalog version + planning-relevant options + engine
/// identity. Sharded LRU under per-shard mutexes; entries are immutable
/// shared_ptrs, so lookups hold a lock only for the map probe and LRU
/// splice, never during binding or execution. Capacity is bounded by both
/// entry count and estimated bytes (SEQ_PLAN_CACHE_ENTRIES /
/// SEQ_PLAN_CACHE_BYTES; SEQ_PLAN_CACHE=0 starts it disabled).
class PlanCache {
 public:
  static constexpr size_t kShards = 8;
  static constexpr size_t kDefaultMaxEntries = 256;
  static constexpr size_t kDefaultMaxBytes = 64u << 20;

  PlanCache(size_t max_entries, size_t max_bytes);

  /// Returns the entry under `key` (touching its LRU position) or null.
  /// Counts a hit or miss.
  PlanCacheEntryPtr Lookup(const std::string& key);

  /// Inserts or replaces the entry under `key`, evicting LRU entries as
  /// needed to respect the caps. No-op when the cache is disabled.
  void Insert(const std::string& key, PlanCacheEntryPtr entry);

  /// Records that a hit was discarded by the re-cost guard (the caller
  /// then re-optimizes and usually Inserts a refreshed entry).
  void CountRecostFallback();

  /// Text tier -------------------------------------------------------------
  /// Returns the text-shape resolution under `key`, or nullptr.
  std::shared_ptr<const TextShapeEntry> LookupText(const std::string& key);
  void InsertText(const std::string& key,
                  std::shared_ptr<const TextShapeEntry> entry);

  /// Maintenance ------------------------------------------------------------
  /// Drops every entry (both tiers). Counters are kept.
  void Clear();
  /// Drops every entry belonging to `engine_id` — called when an engine
  /// mutates its catalog (register/view/materialize) or is destroyed.
  /// Counts one invalidation per dropped plan entry.
  void InvalidateEngine(uint64_t engine_id);

  /// Runtime switch (seqsh `.plancache on|off`). Disabling also clears, so
  /// re-enabling starts cold.
  void set_enabled(bool enabled);
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  PlanCacheStats Stats() const;
  /// Human-readable summary plus the hottest entries, for `.plancache
  /// stats`.
  std::string ToString(size_t limit = 10) const;

  /// The process-global cache every engine shares. Capacity and the
  /// initial enabled state come from SEQ_PLAN_CACHE /
  /// SEQ_PLAN_CACHE_ENTRIES / SEQ_PLAN_CACHE_BYTES once at first use.
  static PlanCache& Global();

  /// Fresh id for an engine instance (plan keys embed it so two engines'
  /// plans can never collide, and invalidation is per engine).
  static uint64_t NextEngineId();

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<std::string> lru;
    struct Slot {
      PlanCacheEntryPtr entry;
      std::list<std::string>::iterator lru_it;
    };
    std::unordered_map<std::string, Slot> map;
    size_t bytes = 0;
  };

  Shard& ShardFor(const std::string& key);
  /// Evicts from `shard` until it fits the per-shard caps. Caller holds
  /// the shard mutex.
  void EvictLocked(Shard& shard);

  const size_t max_entries_;
  const size_t max_bytes_;
  std::atomic<bool> enabled_{true};

  Shard shards_[kShards];

  mutable std::mutex text_mu_;
  std::list<std::string> text_lru_;
  struct TextSlot {
    std::shared_ptr<const TextShapeEntry> entry;
    std::list<std::string>::iterator lru_it;
  };
  std::unordered_map<std::string, TextSlot> text_map_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
  std::atomic<uint64_t> recost_fallbacks_{0};
  std::atomic<uint64_t> text_hits_{0};
};

/// RAII engine identity for plan-cache keys. Every Engine owns one; its
/// value prefixes the engine's cache keys so two engines' plans can never
/// collide, and the destructor retires the engine's entries (they hold
/// shared_ptrs into the engine's catalog, so retirement is hygiene, not a
/// dangling-pointer fix). Copying an engine gives the copy a FRESH id —
/// the copy's catalog can diverge; moving transfers the id (the plans
/// stay valid for the moved-to engine) and re-arms the source with a
/// fresh, entry-less id.
class PlanCacheId {
 public:
  PlanCacheId() : id_(PlanCache::NextEngineId()) {}
  PlanCacheId(const PlanCacheId&) : id_(PlanCache::NextEngineId()) {}
  PlanCacheId& operator=(const PlanCacheId&) { return *this; }
  PlanCacheId(PlanCacheId&& other) noexcept : id_(other.id_) {
    other.id_ = PlanCache::NextEngineId();
  }
  PlanCacheId& operator=(PlanCacheId&& other) noexcept {
    if (this != &other) {
      PlanCache::Global().InvalidateEngine(id_);
      id_ = other.id_;
      other.id_ = PlanCache::NextEngineId();
    }
    return *this;
  }
  ~PlanCacheId() { PlanCache::Global().InvalidateEngine(id_); }

  uint64_t value() const { return id_; }

 private:
  uint64_t id_;
};

}  // namespace seq

#endif  // SEQ_CORE_PLAN_CACHE_H_
