#include "core/session.h"

#include <cctype>
#include <fstream>
#include <limits>
#include <mutex>
#include <sstream>
#include <string_view>

#include "common/string_util.h"
#include "core/database_io.h"
#include "exec/checkpoint.h"
#include "exec/scheduler.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/query_registry.h"
#include "obs/slow_query_log.h"
#include "parser/parser.h"
#include "workload/csv.h"
#include "workload/generators.h"

namespace seq {

namespace {

// Guarded numeric parsing for command arguments: stoll/stod throw on
// garbage or out-of-range input, which must never take down a session.
std::optional<int64_t> ParseInt64Arg(const std::string& s) {
  try {
    size_t used = 0;
    int64_t v = std::stoll(s, &used);
    if (used != s.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<double> ParseDoubleArg(const std::string& s) {
  try {
    size_t used = 0;
    double v = std::stod(s, &used);
    if (used != s.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// The `.queries` rendering, shared verbatim by local and remote mode.
/// Runs attributed to a session show its id as `s<id>`.
std::string FormatQueries() {
  std::ostringstream oss;
  QueryRegistry& registry = QueryRegistry::Global();
  const std::vector<LiveQueryInfo> live = registry.Live();
  oss << live.size() << " live, " << registry.completed() << " completed of "
      << registry.started() << " started\n";
  for (const LiveQueryInfo& q : live) {
    oss << "  #" << q.id;
    if (q.session_id != 0) oss << " s" << q.session_id;
    oss << " [" << QueryStateName(q.state) << "] " << q.rows << " rows, "
        << q.pages << " pages, " << q.workers << " worker(s)";
    if (q.morsels_total > 0) {
      oss << ", morsels " << q.morsels_done << "/" << q.morsels_total;
    }
    if (q.queued_us > 0) {
      oss << ", queued "
          << FormatDouble(static_cast<double>(q.queued_us) / 1000.0) << "ms";
    }
    oss << ", " << FormatDouble(static_cast<double>(q.elapsed_us) / 1000.0)
        << "ms: " << q.text << "\n";
  }
  const std::vector<CompletedQueryInfo> recent = registry.Recent();
  const size_t shown = std::min<size_t>(recent.size(), 10);
  for (size_t i = 0; i < shown; ++i) {
    const CompletedQueryInfo& q = recent[i];
    oss << "  #" << q.id;
    if (q.session_id != 0) oss << " s" << q.session_id;
    oss << " done [" << q.status << (q.degraded ? ", degraded" : "") << "] "
        << q.rows << " rows, " << q.pages << " pages, "
        << FormatDouble(static_cast<double>(q.wall_us) / 1000.0) << "ms";
    if (q.queued_us > 0) {
      oss << " (queued "
          << FormatDouble(static_cast<double>(q.queued_us) / 1000.0) << "ms)";
    }
    oss << ": " << q.text << "\n";
  }
  if (recent.size() > shown) {
    oss << "  ... (" << recent.size() << " recent total)\n";
  }
  return oss.str();
}

bool IsIdentifier(std::string_view s) {
  if (s.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_') {
    return false;
  }
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
      return false;
    }
  }
  return true;
}

/// Matches the bare-name programs the grammar has no production for —
/// "q;", "explain q;", "explain analyze q;" — so `.run q` resolves an
/// existing view or sequence instead of failing to parse.
bool MatchBareName(const std::string& source, std::string* name,
                   ExplainMode* mode) {
  std::string_view text = StripAsciiWhitespace(source);
  if (text.empty() || text.back() != ';') return false;
  text = StripAsciiWhitespace(text.substr(0, text.size() - 1));
  if (text.find(';') != std::string_view::npos) return false;
  std::vector<std::string_view> words;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) words.push_back(text.substr(start, i - start));
  }
  if (words.empty() || words.size() > 3 || !IsIdentifier(words.back())) {
    return false;
  }
  if (words.size() == 1) {
    *mode = ExplainMode::kNone;
  } else if (words.size() == 2 && words[0] == "explain") {
    *mode = ExplainMode::kExplain;
  } else if (words.size() == 3 && words[0] == "explain" &&
             words[1] == "analyze") {
    *mode = ExplainMode::kExplainAnalyze;
  } else {
    return false;
  }
  *name = std::string(words.back());
  return true;
}

}  // namespace

uint64_t Session::NextSessionId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

LocalSession::LocalSession()
    : owned_(std::make_unique<Engine>()),
      // The private gate is uncontended; taking it keeps one code path.
      own_gate_(std::make_unique<std::shared_mutex>()),
      engine_(owned_.get()),
      gate_(own_gate_.get()) {}

LocalSession::LocalSession(Engine* engine, std::shared_mutex* gate)
    : engine_(engine), gate_(gate) {}

LocalSession::~LocalSession() { Close(); }

void LocalSession::Close() { closed_.store(true, std::memory_order_release); }

Status LocalSession::CheckOpen() const {
  if (closed_.load(std::memory_order_acquire)) {
    return Status::Cancelled("session " + std::to_string(id_) + " is closed");
  }
  return Status::OK();
}

ExecOptions LocalSession::RunExec() const {
  ExecOptions exec = options_.exec;
  exec.session_id = id_;
  if (exec.guards.cancel == nullptr) exec.guards.cancel = &closed_;
  return exec;
}

Result<LogicalOpPtr> LocalSession::ResolveName(const std::string& name) const {
  auto it = views_.find(name);
  if (it != views_.end()) return it->second;
  std::shared_lock<std::shared_mutex> lock(*gate_);
  auto engine_view = engine_->views().find(name);
  if (engine_view != engine_->views().end()) return engine_view->second;
  if (engine_->catalog().Contains(name)) return LogicalOp::BaseRef(name);
  return Status::NotFound("no sequence or view named '" + name + "'");
}

Result<ExecuteReply> LocalSession::RunGraph(const LogicalOpPtr& graph,
                                            ExecuteReply reply) {
  RunOptions opts;
  opts.exec = RunExec();
  AccessStats stats;
  if (collect_stats_) opts.stats = &stats;
  if (options_.sink) opts.sink = options_.sink;
  std::shared_lock<std::shared_mutex> lock(*gate_);
  SEQ_ASSIGN_OR_RETURN(QueryResult result,
                       engine_->Run(graph, range_, opts));
  reply.is_rows = true;
  reply.schema = result.schema;
  reply.rows = std::move(result.records);
  if (collect_stats_) {
    reply.has_stats = true;
    reply.stats = stats;
  }
  return reply;
}

Result<ExecuteReply> LocalSession::RunMain(const LogicalOpPtr& graph,
                                           ExecuteReply reply,
                                           ExplainMode mode) {
  switch (mode) {
    case ExplainMode::kNone:
      return RunGraph(graph, std::move(reply));
    case ExplainMode::kExplain: {
      Query q;
      q.graph = graph;
      q.range = range_;
      std::shared_lock<std::shared_mutex> lock(*gate_);
      SEQ_ASSIGN_OR_RETURN(std::string text, engine_->Explain(q));
      reply.text += text;
      return reply;
    }
    case ExplainMode::kExplainAnalyze: {
      Query q;
      q.graph = graph;
      q.range = range_;
      RunOptions opts;
      opts.exec = RunExec();
      std::shared_lock<std::shared_mutex> lock(*gate_);
      SEQ_ASSIGN_OR_RETURN(std::string text, engine_->ExplainAnalyze(q, opts));
      reply.text += text;
      return reply;
    }
  }
  return Status::Internal("unhandled explain mode");
}

Result<ExecuteReply> LocalSession::Execute(const std::string& source) {
  SEQ_RETURN_IF_ERROR(CheckOpen());
  {
    std::string name;
    ExplainMode mode;
    if (MatchBareName(source, &name, &mode)) {
      SEQ_ASSIGN_OR_RETURN(LogicalOpPtr graph, ResolveName(name));
      return RunMain(graph, ExecuteReply{}, mode);
    }
  }
  SEQ_ASSIGN_OR_RETURN(ParsedProgram program, ParseSequin(source));
  ExecuteReply reply;
  for (const std::string& name : program.order) {
    if (views_.count(name) > 0) {
      return Status::InvalidArgument("view '" + name + "' already defined");
    }
    {
      std::shared_lock<std::shared_mutex> lock(*gate_);
      if (engine_->catalog().Contains(name) ||
          engine_->views().count(name) > 0) {
        return Status::InvalidArgument("view '" + name +
                                       "' shadows an engine sequence or view");
      }
    }
    // Inline earlier session views now, so definitions cannot cycle and
    // stored graphs only reference engine names.
    SEQ_ASSIGN_OR_RETURN(LogicalOpPtr inlined,
                         InlineViews(program.definitions[name], views_));
    views_.emplace(name, std::move(inlined));
    reply.text += "defined " + name + "\n";
  }
  if (program.main == nullptr) return reply;
  SEQ_ASSIGN_OR_RETURN(LogicalOpPtr main, InlineViews(program.main, views_));
  return RunMain(main, std::move(reply), program.explain);
}

Result<uint64_t> LocalSession::Prepare(const std::string& source) {
  SEQ_RETURN_IF_ERROR(CheckOpen());
  {
    std::string name;
    ExplainMode mode;
    if (MatchBareName(source, &name, &mode)) {
      if (mode != ExplainMode::kNone) {
        return Status::InvalidArgument("cannot prepare an EXPLAIN program");
      }
      Query query;
      SEQ_ASSIGN_OR_RETURN(query.graph, ResolveName(name));
      query.range = range_;
      std::shared_lock<std::shared_mutex> lock(*gate_);
      SEQ_ASSIGN_OR_RETURN(Engine::PreparedQuery prepared,
                           engine_->Prepare(query));
      const uint64_t id = next_statement_++;
      statements_.emplace(id, std::move(prepared));
      return id;
    }
  }
  SEQ_ASSIGN_OR_RETURN(ParsedProgram program, ParseSequin(source));
  if (program.explain != ExplainMode::kNone) {
    return Status::InvalidArgument("cannot prepare an EXPLAIN program");
  }
  if (program.main == nullptr) {
    return Status::InvalidArgument("nothing to prepare: no main expression");
  }
  // Program-local definitions inline into the statement without becoming
  // session views — a prepared statement is self-contained.
  ViewMap combined = views_;
  for (const std::string& name : program.order) {
    SEQ_ASSIGN_OR_RETURN(LogicalOpPtr inlined,
                         InlineViews(program.definitions[name], combined));
    combined[name] = std::move(inlined);
  }
  Query query;
  SEQ_ASSIGN_OR_RETURN(query.graph, InlineViews(program.main, combined));
  query.range = range_;
  std::shared_lock<std::shared_mutex> lock(*gate_);
  SEQ_ASSIGN_OR_RETURN(Engine::PreparedQuery prepared,
                       engine_->Prepare(query));
  const uint64_t id = next_statement_++;
  statements_.emplace(id, std::move(prepared));
  return id;
}

Result<ExecuteReply> LocalSession::ExecutePrepared(uint64_t statement_id) {
  SEQ_RETURN_IF_ERROR(CheckOpen());
  auto it = statements_.find(statement_id);
  if (it == statements_.end()) {
    return Status::NotFound("no prepared statement #" +
                            std::to_string(statement_id));
  }
  RunOptions opts;
  opts.exec = RunExec();
  AccessStats stats;
  if (collect_stats_) opts.stats = &stats;
  if (options_.sink) opts.sink = options_.sink;
  std::shared_lock<std::shared_mutex> lock(*gate_);
  SEQ_ASSIGN_OR_RETURN(QueryResult result, it->second.Run(opts));
  ExecuteReply reply;
  reply.is_rows = true;
  reply.schema = result.schema;
  reply.rows = std::move(result.records);
  if (collect_stats_) {
    reply.has_stats = true;
    reply.stats = stats;
  }
  return reply;
}

Status LocalSession::CloseStatement(uint64_t statement_id) {
  SEQ_RETURN_IF_ERROR(CheckOpen());
  if (statements_.erase(statement_id) == 0) {
    return Status::NotFound("no prepared statement #" +
                            std::to_string(statement_id));
  }
  return Status::OK();
}

Status LocalSession::Suspend(uint64_t query_id) {
  SEQ_RETURN_IF_ERROR(CheckOpen());
  if (!Engine::RequestSuspend(query_id)) {
    return Status::NotFound("no live query #" + std::to_string(query_id));
  }
  return Status::OK();
}

Result<ExecuteReply> LocalSession::Resume(const std::string& checkpoint_path) {
  SEQ_RETURN_IF_ERROR(CheckOpen());
  RunOptions opts;
  opts.exec = RunExec();
  AccessStats stats;
  if (collect_stats_) opts.stats = &stats;
  std::shared_lock<std::shared_mutex> lock(*gate_);
  SEQ_ASSIGN_OR_RETURN(QueryResult result,
                       engine_->Resume(checkpoint_path, opts));
  ExecuteReply reply;
  reply.is_rows = true;
  reply.schema = result.schema;
  reply.rows = std::move(result.records);
  if (collect_stats_) {
    reply.has_stats = true;
    reply.stats = stats;
  }
  return reply;
}

Result<std::string> LocalSession::Telemetry(const std::string& kind) {
  SEQ_RETURN_IF_ERROR(CheckOpen());
  if (kind == "metrics") return MetricsRegistry::Global().ToString();
  if (kind == "prom") return RenderPrometheus(CaptureTelemetry());
  if (kind == "json") return RenderJson(CaptureTelemetry()) + "\n";
  if (kind == "queries") return FormatQueries();
  if (kind == "sched") return QueryScheduler::Global().ToString();
  if (kind == "plancache") return PlanCache::Global().ToString();
  if (kind == "slowlog") return SlowQueryLog::Global().ToString();
  return Status::InvalidArgument(
      "unknown telemetry kind '" + kind +
      "' (metrics, prom, json, queries, sched, plancache, slowlog)");
}

Result<std::string> LocalSession::Command(
    const std::vector<std::string>& args) {
  SEQ_RETURN_IF_ERROR(CheckOpen());
  if (args.empty()) return Status::InvalidArgument("empty command");
  const std::string& cmd = args[0];

  if (cmd == "gen" && args.size() >= 5) {
    auto start = ParseInt64Arg(args[2]);
    auto end = ParseInt64Arg(args[3]);
    auto density = ParseDoubleArg(args[4]);
    std::optional<int64_t> seed =
        args.size() >= 6 ? ParseInt64Arg(args[5]) : std::optional<int64_t>(0);
    if (!start || !end || !density || !seed || *seed < 0) {
      return Status::InvalidArgument(
          "gen expects numeric <start> <end> <density> [seed]");
    }
    StockSeriesOptions options;
    options.span = Span::Of(*start, *end);
    options.density = *density;
    if (args.size() >= 6) options.seed = static_cast<uint64_t>(*seed);
    SEQ_ASSIGN_OR_RETURN(BaseSequencePtr store, MakeStockSeries(options));
    const std::string meta = store->DescribeMeta();
    std::unique_lock<std::shared_mutex> lock(*gate_);
    SEQ_RETURN_IF_ERROR(engine_->RegisterBase(args[1], std::move(store)));
    return "generated " + args[1] + ": " + meta + "\n";
  }
  if (cmd == "load" && args.size() >= 3) {
    CsvOptions options;
    if (args.size() >= 4) options.position_column = args[3];
    SEQ_ASSIGN_OR_RETURN(BaseSequencePtr store,
                         LoadCsvSequence(args[2], options));
    const std::string meta = store->DescribeMeta();
    std::unique_lock<std::shared_mutex> lock(*gate_);
    SEQ_RETURN_IF_ERROR(engine_->RegisterBase(args[1], std::move(store)));
    return "loaded " + args[1] + ": " + meta + "\n";
  }
  if (cmd == "list") {
    std::ostringstream oss;
    std::shared_lock<std::shared_mutex> lock(*gate_);
    for (const std::string& name : engine_->catalog().ListSequences()) {
      auto entry = engine_->catalog().Lookup(name);
      oss << "  " << name << "  " << (*entry)->schema->ToString();
      if ((*entry)->kind == CatalogEntry::Kind::kBase) {
        oss << "  " << (*entry)->store->DescribeMeta();
      } else {
        oss << "  (constant)";
      }
      oss << "\n";
    }
    for (const auto& [name, graph] : engine_->views()) {
      oss << "  " << name << "  (view) = " << graph->Describe() << "\n";
    }
    for (const auto& [name, graph] : views_) {
      oss << "  " << name << "  (session view) = " << graph->Describe()
          << "\n";
    }
    return oss.str();
  }
  if (cmd == "schema" && args.size() >= 2) {
    std::ostringstream oss;
    std::shared_lock<std::shared_mutex> lock(*gate_);
    SEQ_ASSIGN_OR_RETURN(const CatalogEntry* entry,
                         engine_->catalog().Lookup(args[1]));
    oss << entry->schema->ToString() << "\n";
    if (entry->kind == CatalogEntry::Kind::kBase) {
      oss << entry->store->DescribeMeta() << "\n";
      const auto& stats = entry->store->column_stats();
      for (size_t i = 0; i < stats.size(); ++i) {
        oss << "  " << entry->schema->field(i).name << ": "
            << stats[i].ToString() << "\n";
      }
    }
    return oss.str();
  }
  if (cmd == "materialize" && args.size() >= 3) {
    SEQ_ASSIGN_OR_RETURN(LogicalOpPtr graph, ResolveName(args[2]));
    std::unique_lock<std::shared_mutex> lock(*gate_);
    SEQ_RETURN_IF_ERROR(engine_->Materialize(args[1], graph, range_));
    auto entry = engine_->catalog().Lookup(args[1]);
    return "materialized " + args[1] + ": " + (*entry)->store->DescribeMeta() +
           "\n";
  }
  if (cmd == "save" && args.size() >= 3) {
    std::shared_lock<std::shared_mutex> lock(*gate_);
    auto entry = engine_->catalog().Lookup(args[1]);
    if (!entry.ok() || (*entry)->kind != CatalogEntry::Kind::kBase) {
      return Status::NotFound("no base sequence '" + args[1] + "'");
    }
    std::ofstream out(args[2]);
    if (!out) return Status::InvalidArgument("cannot open " + args[2]);
    out << SequenceToCsv(*(*entry)->store);
    return "wrote " + args[2] + "\n";
  }
  if (cmd == "savedb" && args.size() >= 2) {
    std::shared_lock<std::shared_mutex> lock(*gate_);
    SEQ_RETURN_IF_ERROR(SaveDatabase(*engine_, args[1]));
    return "saved database to " + args[1] + "\n";
  }
  if (cmd == "opendb" && args.size() >= 2) {
    if (owned_ == nullptr) {
      return Status::FailedPrecondition(
          "opendb replaces the engine and is not available on a shared "
          "server engine");
    }
    // Load into a fresh engine so a failed load leaves the session intact.
    auto fresh = std::make_unique<Engine>();
    SEQ_RETURN_IF_ERROR(LoadDatabase(args[1], fresh.get()));
    std::unique_lock<std::shared_mutex> lock(*gate_);
    owned_ = std::move(fresh);
    engine_ = owned_.get();
    return "opened " + args[1] + " (" +
           std::to_string(engine_->catalog().ListSequences().size()) +
           " sequences, " + std::to_string(engine_->views().size()) +
           " views)\n";
  }
  if (cmd == "plancache" && args.size() >= 2) {
    if (args[1] == "on") {
      PlanCache::Global().set_enabled(true);
      return std::string("plan cache on\n");
    }
    if (args[1] == "off") {
      // Disabling also drops every cached template; re-enabling starts cold.
      PlanCache::Global().set_enabled(false);
      return std::string("plan cache off (entries dropped)\n");
    }
    if (args[1] == "clear") {
      PlanCache::Global().Clear();
      return std::string("plan cache cleared\n");
    }
  }
  if (cmd == "slowlog" && args.size() >= 2 && args[1] == "clear") {
    SlowQueryLog::Global().Reset();
    return std::string("slow-query log cleared\n");
  }
  if (cmd == "slowlog" && args.size() >= 3 && args[1] == "threshold") {
    auto ms = ParseDoubleArg(args[2]);
    if (!ms) {
      return Status::InvalidArgument(
          "slowlog threshold expects milliseconds (0 logs all queries, "
          "negative disables)");
    }
    SlowQueryLog::Global().set_threshold_ms(*ms);
    return "slow-query threshold " + FormatDouble(*ms) + "ms\n";
  }
  if (cmd == "sched" && args.size() >= 3 && args[1] == "workers") {
    auto n = ParseInt64Arg(args[2]);
    if (!n || *n < 1) {
      return Status::InvalidArgument(
          "sched workers expects a thread count >= 1");
    }
    QueryScheduler::Global().SetWorkers(static_cast<int>(*n));
    return "scheduler workers " +
           std::to_string(QueryScheduler::Global().workers()) + "\n";
  }
  if (cmd == "sched" && args.size() >= 3 && args[1] == "limit") {
    auto n = ParseInt64Arg(args[2]);
    if (!n || *n < 0) {
      return Status::InvalidArgument(
          "sched limit expects a query count >= 0 (0 = unlimited)");
    }
    QueryScheduler::Global().SetMaxRunning(static_cast<int>(*n));
    return "scheduler limit " +
           (*n == 0 ? std::string("off") : std::to_string(*n)) + "\n";
  }
  return Status::InvalidArgument("unknown or incomplete command: " + cmd);
}

}  // namespace seq
