#ifndef SEQ_EXEC_CHECKPOINT_H_
#define SEQ_EXEC_CHECKPOINT_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/fault_injector.h"
#include "storage/access_stats.h"
#include "types/record.h"
#include "types/value.h"

namespace seq {

// ---------------------------------------------------------------------------
// Operator-state framing.
//
// A suspended query's live operator state (window contents, running
// aggregate carries) is serialized into one opaque blob: each stateful
// operator appends a tagged record in tree order during SaveState, and the
// isomorphic tree built on resume consumes the records in the same order
// during RestoreState. Tags are per-operator-class sanity checks — a blob
// replayed into a differently-shaped tree fails loudly (DataLoss at the
// engine), never silently misassigns state. Pass-through operators forward
// to their children and write nothing, so the blob stays proportional to
// the live aggregate state, which the streaming lower bounds say is small.
// ---------------------------------------------------------------------------

class OpStateWriter {
 public:
  void Tag(uint8_t t) { U8(t); }
  void U8(uint8_t v) { blob_.push_back(static_cast<char>(v)); }
  void I64(int64_t v) { AppendPod(v); }
  void F64(double v) { AppendPod(v); }
  void Val(const Value& v);

  const std::string& blob() const { return blob_; }

 private:
  template <typename T>
  void AppendPod(T v) {
    blob_.append(reinterpret_cast<const char*>(&v), sizeof(T));
  }
  std::string blob_;
};

class OpStateReader {
 public:
  explicit OpStateReader(const std::string& blob) : blob_(blob) {}

  /// Consumes one tag byte and checks it; false on mismatch or exhaustion.
  bool Tag(uint8_t expect) {
    uint8_t t = 0;
    return U8(&t) && t == expect;
  }
  bool U8(uint8_t* v);
  bool I64(int64_t* v);
  bool F64(double* v);
  bool Val(Value* v);

  /// True once every byte has been consumed — restore must end exactly at
  /// the blob's end, or the tree shape did not match the saved one.
  bool Exhausted() const { return off_ == blob_.size(); }

 private:
  template <typename T>
  bool ReadPod(T* v) {
    if (blob_.size() - off_ < sizeof(T)) return false;
    std::memcpy(v, blob_.data() + off_, sizeof(T));
    off_ += sizeof(T);
    return true;
  }
  const std::string& blob_;
  size_t off_ = 0;
};

// ---------------------------------------------------------------------------
// Suspend/resume plumbing between Engine and Executor.
// ---------------------------------------------------------------------------

/// Why a checkpointed query left execution at a chunk boundary.
enum class SuspendReason : uint8_t {
  kUser = 0,      ///< explicit Suspend request (.suspend / RequestSuspend)
  kScheduler,     ///< scheduler preemption under admission-queue pressure
  kCacheBudget,   ///< max_cache_bytes tripped; parked instead of degraded
};

const char* SuspendReasonName(SuspendReason reason);

/// Filled by the executor when a suspend trigger fires at a chunk
/// boundary: everything the engine needs to persist a CheckpointImage.
/// `rows`/`stats` are the COMPLETE prefix (including any prefix restored
/// from an earlier checkpoint), so multi-suspend chains compose.
struct SuspendCapture {
  bool suspended = false;
  SuspendReason reason = SuspendReason::kUser;
  bool probed = false;
  int64_t watermark = 0;    ///< stream: first output position not covered
  int64_t next_index = 0;   ///< probed: first position-list index not covered
  int64_t chunks_done = 0;
  int64_t chunk_len = 0;    ///< the grid actually used (resume re-derives it)
  std::string op_state;     ///< empty = rebuild via morsel carries on resume
  std::vector<PosRecord> rows;
  AccessStats stats;
  /// Set when the plan shape cannot execute in chunks (suspend requests
  /// are then ignored and the query runs to completion).
  std::string not_chunkable_reason;
};

/// Loaded from a CheckpointImage by the engine and handed to the executor:
/// execution continues at the watermark with the prefix pre-seeded.
struct ResumeState {
  bool probed = false;
  int64_t watermark = 0;
  int64_t next_index = 0;
  int64_t chunks_done = 0;
  int64_t chunk_len = 0;
  std::string op_state;
  std::vector<PosRecord> rows;
  AccessStats stats;
};

/// Checkpointing knobs inside ExecOptions. When `enabled`, chunkable plans
/// execute as a sequence of clip-span chunks with cooperative suspend
/// points at every chunk boundary (docs/robustness.md); non-chunkable
/// shapes run normally and never suspend. All pointers are owned by the
/// caller and must outlive the execution.
struct CheckpointConfig {
  bool enabled = false;
  /// Where the engine writes the checkpoint file when the run suspends.
  /// Empty auto-generates a unique name under DefaultCheckpointDir().
  /// (Read by the engine, not the executor.)
  std::string path;
  /// Chunk length in output positions (stream) or probe-list entries
  /// (probed). 0 adopts SEQ_CHECKPOINT_CHUNK (default 1024). Boundaries
  /// are snapped up into the plan's alignment class like morsel starts.
  int64_t chunk = 0;
  /// Deterministic test hook: request suspension after every k completed
  /// chunks (0 = off).
  int64_t suspend_every_chunks = 0;
  /// Cooperative user suspend request, polled at chunk boundaries.
  const std::atomic<bool>* request = nullptr;
  /// Scheduler preemption token, polled at chunk boundaries.
  const std::atomic<bool>* preempt = nullptr;
  /// Park instead of degrading to the cache-free plan when an operator
  /// cache trips max_cache_bytes: the tripping chunk is discarded and the
  /// query suspends at the last completed boundary.
  bool park_on_cache_budget = false;
  /// Non-null: continue a suspended query instead of starting fresh.
  ResumeState* resume = nullptr;
  /// Receives the suspend point when a trigger fires; required when
  /// `enabled`.
  SuspendCapture* capture = nullptr;
};

// ---------------------------------------------------------------------------
// The suspension signal.
//
// Mirrors the cache-budget degradation protocol (kCacheBudgetExceededPrefix
// in exec_context.h): a suspended query surfaces as a recognizable status
// carrying the checkpoint path, so sessions and tools can distinguish
// "parked, resumable from <file>" from real failures.
// ---------------------------------------------------------------------------

inline constexpr const char* kQuerySuspendedPrefix =
    "query suspended to checkpoint '";

Status MakeQuerySuspended(const std::string& path, SuspendReason reason);

bool IsQuerySuspended(const Status& status);

/// The checkpoint path carried by a suspension status ("" if `status` is
/// not one).
std::string SuspendedCheckpointPath(const Status& status);

// ---------------------------------------------------------------------------
// Fault-injection hooks for the storage layer.
//
// SaveCheckpoint/LoadCheckpoint (src/storage) know nothing about the
// executor's FaultInjector; these adapters poll the checkpoint-write /
// checkpoint-read sites and convert a firing into the standard
// injected-fault message — as DataLoss, because a torn or unreadable
// checkpoint is data loss to the resuming caller, whatever tore it.
// ---------------------------------------------------------------------------

std::function<Status()> CheckpointWriteFaultHook(FaultInjector* faults);
std::function<Status()> CheckpointReadFaultHook(FaultInjector* faults);

// ---------------------------------------------------------------------------
// Environment knobs (strict parsing; see docs/robustness.md).
// ---------------------------------------------------------------------------

/// SEQ_CHECKPOINT_DIR when set to an existing directory; otherwise "."
/// (with one stderr warning when the variable is set but unusable).
const std::string& DefaultCheckpointDir();

/// SEQ_CHECKPOINT_CHUNK validated as an integer >= 64 (default 1024).
int64_t DefaultCheckpointChunk();

}  // namespace seq

#endif  // SEQ_EXEC_CHECKPOINT_H_
