#ifndef SEQ_EXEC_WINDOW_STATE_H_
#define SEQ_EXEC_WINDOW_STATE_H_

#include <cstdint>
#include <deque>
#include <utility>

#include "exec/exec_context.h"
#include "logical/logical_op.h"
#include "types/value.h"

namespace seq {

/// Incremental aggregation state over a (possibly sliding) window of
/// values. Sum/Count/Avg use running accumulators; Min/Max use monotonic
/// deques, so both insertion and eviction are O(1) amortized — this is
/// what makes Cache-Strategy-A touch each input record exactly once.
class WindowState {
 public:
  WindowState(AggFunc func, TypeId value_type)
      : func_(func), value_type_(value_type) {}

  /// Adds the value at `pos`. Positions must be strictly increasing.
  void Add(Position pos, const Value& v, ExecContext* ctx);

  /// Removes every entry with position < `p`.
  void EvictBefore(Position p);

  int64_t count() const { return count_; }

  /// Aggregate of the live window. Requires count() > 0.
  Value Current() const;

 private:
  AggFunc func_;
  TypeId value_type_;

  // Live entries (needed to adjust accumulators on eviction).
  std::deque<std::pair<Position, Value>> window_;
  int64_t count_ = 0;
  double sum_d_ = 0.0;
  int64_t sum_i_ = 0;

  // Monotonic candidate queues for min (non-decreasing values) and max
  // (non-increasing values).
  std::deque<std::pair<Position, Value>> min_q_;
  std::deque<std::pair<Position, Value>> max_q_;
};

}  // namespace seq

#endif  // SEQ_EXEC_WINDOW_STATE_H_
