#ifndef SEQ_EXEC_WINDOW_STATE_H_
#define SEQ_EXEC_WINDOW_STATE_H_

#include <cstdint>
#include <deque>
#include <utility>

#include "common/logging.h"
#include "exec/checkpoint.h"
#include "exec/exec_context.h"
#include "logical/logical_op.h"
#include "types/value.h"

namespace seq {

/// Incremental aggregation state over a (possibly sliding) window of
/// values. Sum/Count/Avg use running accumulators; Min/Max use monotonic
/// deques, so both insertion and eviction are O(1) amortized — this is
/// what makes Cache-Strategy-A touch each input record exactly once.
///
/// Add/EvictBefore/Current are defined inline: aggregation touches them
/// once per record in both the tuple and batch paths, and keeping them in
/// the header lets the accumulators live in registers across an
/// operator's drive loop.
class WindowState {
 public:
  WindowState(AggFunc func, TypeId value_type)
      : func_(func), value_type_(value_type) {}

  /// Adds the value at `pos`. Positions must be strictly increasing.
  void Add(Position pos, const Value& v, ExecContext* ctx) {
    if (ctx != nullptr) ctx->ChargeAggStep();
    Entry e{pos, 0, 0.0};
    if (IsNumeric(v.type())) {
      if (value_type_ == TypeId::kInt64) {
        e.i = v.int64();
        e.d = static_cast<double>(e.i);
        sum_i_ += e.i;
      } else {
        e.d = v.AsDouble();
      }
      sum_d_ += e.d;
    }
    window_.push_back(e);
    ++count_;
    if (func_ == AggFunc::kMin) {
      while (!min_q_.empty() && min_q_.back().second.Compare(v) >= 0) {
        min_q_.pop_back();
      }
      min_q_.emplace_back(pos, v);
    } else if (func_ == AggFunc::kMax) {
      while (!max_q_.empty() && max_q_.back().second.Compare(v) <= 0) {
        max_q_.pop_back();
      }
      max_q_.emplace_back(pos, v);
    }
  }

  /// Removes every entry with position < `p`.
  void EvictBefore(Position p) {
    while (!window_.empty() && window_.front().pos < p) {
      const Entry& e = window_.front();
      --count_;
      sum_i_ -= e.i;
      sum_d_ -= e.d;
      window_.pop_front();
    }
    while (!min_q_.empty() && min_q_.front().first < p) min_q_.pop_front();
    while (!max_q_.empty() && max_q_.front().first < p) max_q_.pop_front();
  }

  int64_t count() const { return count_; }

  /// Approximate heap footprint of the live window in bytes, for the
  /// operator-cache memory budget (QueryGuards::max_cache_bytes). Entries
  /// dominate; the min/max candidate queues are bounded by the window.
  int64_t ApproxBytes() const {
    return static_cast<int64_t>(
        window_.size() * sizeof(Entry) +
        (min_q_.size() + max_q_.size()) *
            sizeof(std::pair<Position, Value>));
  }

  /// Serializes the live window into a checkpoint blob. Accumulators
  /// roundtrip as raw bits (I64/F64), so a restored state's future outputs
  /// are bit-identical to the uninterrupted run's — including the ulp-level
  /// effects of incremental double add/evict that a from-scratch rebuild
  /// would not reproduce.
  void SaveTo(OpStateWriter* w) const {
    w->U8(static_cast<uint8_t>(func_));
    w->U8(static_cast<uint8_t>(value_type_));
    w->I64(count_);
    w->I64(sum_i_);
    w->F64(sum_d_);
    w->I64(static_cast<int64_t>(window_.size()));
    for (const Entry& e : window_) {
      w->I64(e.pos);
      w->I64(e.i);
      w->F64(e.d);
    }
    w->I64(static_cast<int64_t>(min_q_.size()));
    for (const auto& [pos, v] : min_q_) {
      w->I64(pos);
      w->Val(v);
    }
    w->I64(static_cast<int64_t>(max_q_.size()));
    for (const auto& [pos, v] : max_q_) {
      w->I64(pos);
      w->Val(v);
    }
  }

  /// Restores what SaveTo captured. False when the blob does not describe
  /// a state of this function/type — the shape check that keeps a stale or
  /// misrouted blob from silently corrupting aggregates.
  bool RestoreFrom(OpStateReader* r) {
    uint8_t func = 0;
    uint8_t type = 0;
    if (!r->U8(&func) || func != static_cast<uint8_t>(func_) ||
        !r->U8(&type) || type != static_cast<uint8_t>(value_type_)) {
      return false;
    }
    int64_t n = 0;
    if (!r->I64(&count_) || !r->I64(&sum_i_) || !r->F64(&sum_d_) ||
        !r->I64(&n) || n < 0) {
      return false;
    }
    window_.clear();
    for (int64_t k = 0; k < n; ++k) {
      Entry e{0, 0, 0.0};
      if (!r->I64(&e.pos) || !r->I64(&e.i) || !r->F64(&e.d)) return false;
      window_.push_back(e);
    }
    for (std::deque<std::pair<Position, Value>>* q : {&min_q_, &max_q_}) {
      if (!r->I64(&n) || n < 0) return false;
      q->clear();
      for (int64_t k = 0; k < n; ++k) {
        Position pos = 0;
        Value v;
        if (!r->I64(&pos) || !r->Val(&v)) return false;
        q->emplace_back(pos, std::move(v));
      }
    }
    return true;
  }

  /// Aggregate of the live window. Requires count() > 0.
  Value Current() const {
    SEQ_CHECK(count_ > 0);
    switch (func_) {
      case AggFunc::kCount:
        return Value::Int64(count_);
      case AggFunc::kSum:
        return value_type_ == TypeId::kInt64 ? Value::Int64(sum_i_)
                                             : Value::Double(sum_d_);
      case AggFunc::kAvg:
        return Value::Double(sum_d_ / static_cast<double>(count_));
      case AggFunc::kMin:
        SEQ_CHECK(!min_q_.empty());
        return min_q_.front().second;
      case AggFunc::kMax:
        SEQ_CHECK(!max_q_.empty());
        return max_q_.front().second;
    }
    SEQ_CHECK(false);
    return Value();
  }

 private:
  // One live entry. The numeric payload is converted once on Add so
  // eviction adjusts the accumulators without re-dispatching on the value
  // type (non-numeric values store zeros, which subtract as no-ops).
  struct Entry {
    Position pos;
    int64_t i;
    double d;
  };

  AggFunc func_;
  TypeId value_type_;

  // Live entries (needed to adjust accumulators on eviction).
  std::deque<Entry> window_;
  int64_t count_ = 0;
  double sum_d_ = 0.0;
  int64_t sum_i_ = 0;

  // Monotonic candidate queues for min (non-decreasing values) and max
  // (non-increasing values).
  std::deque<std::pair<Position, Value>> min_q_;
  std::deque<std::pair<Position, Value>> max_q_;
};

}  // namespace seq

#endif  // SEQ_EXEC_WINDOW_STATE_H_
