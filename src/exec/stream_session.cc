#include "exec/stream_session.h"

#include <algorithm>

#include "exec/checkpoint.h"
#include "logical/scope.h"
#include "optimizer/plan_template.h"
#include "parser/parser.h"
#include "parser/unparse.h"
#include "storage/checkpoint_file.h"

namespace seq {

namespace {
/// OpState tag framing the session's own durable state in the checkpoint
/// blob (degradation flag + replay horizon; the frontier itself travels in
/// the image's watermark field).
constexpr uint8_t kStreamSessionStateTag = 0x5C;
}  // namespace

StreamSession::StreamSession(const Catalog* catalog, LogicalOpPtr graph,
                             OptimizerOptions options, int64_t max_lookback,
                             ExecOptions exec_options)
    : catalog_(catalog),
      graph_(std::move(graph)),
      options_(std::move(options)),
      exec_options_(exec_options),
      max_lookback_(max_lookback) {
  // Derive the replay window from the query's composed scope over its
  // leaves (Prop. 2.1): the farthest look-back of any bounded scope. The
  // evaluation itself is driven by exact required-span propagation, so
  // this is reported for sizing/monitoring; unbounded-scope operators are
  // capped at max_lookback for reporting purposes.
  int64_t lookback = 0;
  for (const ScopeSpec& scope : graph_->QueryScopeOverLeaves()) {
    if (scope.bounded_below) {
      lookback = std::max(lookback, -std::min<int64_t>(scope.min_offset, 0));
    } else {
      lookback = std::max(lookback, max_lookback);
    }
    if (scope.bounded_above) {
      // A positive scope offset means output can precede the input data
      // (e.g. positional offset +k); widen the first poll accordingly.
      lead_ = std::max(lead_, std::max<int64_t>(scope.max_offset, 0));
    }
  }
  lookback_ = lookback;
}

Status StreamSession::Append(const std::string& sequence, Position pos,
                             Record record) {
  SEQ_ASSIGN_OR_RETURN(const CatalogEntry* entry,
                       catalog_->Lookup(sequence));
  if (entry->kind != CatalogEntry::Kind::kBase) {
    return Status::InvalidArgument("'" + sequence +
                                   "' is not a base sequence");
  }
  return entry->store->Append(pos, std::move(record));
}

Result<std::vector<PosRecord>> StreamSession::Poll(AccessStats* stats) {
  // The frontier: output positions are complete once every base input has
  // advanced past them (a record arriving later at an earlier position is
  // rejected by the store's ordering invariant anyway).
  std::vector<const LogicalOp*> leaves;
  graph_->CollectLeaves(&leaves);
  Position frontier = kMaxPosition;
  Position earliest = kMaxPosition;
  bool any_base = false;
  for (const LogicalOp* leaf : leaves) {
    if (leaf->kind() != OpKind::kBaseRef) continue;
    any_base = true;
    SEQ_ASSIGN_OR_RETURN(const CatalogEntry* entry,
                         catalog_->Lookup(leaf->seq_name()));
    Span span = entry->store->span();
    if (span.IsEmpty()) return std::vector<PosRecord>{};
    frontier = std::min(frontier, span.end);
    earliest = std::min(earliest, span.start);
  }
  if (!any_base) {
    return Status::InvalidArgument("standing query has no base inputs");
  }
  Position from = (high_water_ == kMinPosition) ? earliest - lead_
                                                : high_water_ + 1;
  if (from > frontier) return std::vector<PosRecord>{};

  // Once a poll degrades, stay degraded: the cache that blew the budget
  // would blow it again on every subsequent poll.
  OptimizerOptions options = options_;
  if (degraded_) {
    options.cost_params.disable_window_cache = true;
    options.cost_params.disable_incremental_value_offset = true;
  }
  Optimizer optimizer(*catalog_, options);
  Query query;
  query.graph = graph_;
  query.range = Span::Of(from, frontier);
  SEQ_ASSIGN_OR_RETURN(PhysicalPlan plan, optimizer.Optimize(query));
  Executor executor(*catalog_, options.cost_params, exec_options_);
  AccessStats attempt_stats;
  Result<QueryResult> result =
      executor.Execute(plan, stats != nullptr ? &attempt_stats : nullptr);
  if (!result.ok() && IsCacheBudgetExceeded(result.status())) {
    // Graceful degradation: re-plan this poll (and all later ones) with
    // operator caches disabled instead of failing the standing query. The
    // high-water mark has not advanced, so no answers are lost.
    degraded_ = true;
    options.cost_params.disable_window_cache = true;
    options.cost_params.disable_incremental_value_offset = true;
    Optimizer degraded_optimizer(*catalog_, options);
    SEQ_ASSIGN_OR_RETURN(PhysicalPlan fallback,
                         degraded_optimizer.Optimize(query));
    Executor degraded_executor(*catalog_, options.cost_params, exec_options_);
    result = degraded_executor.Execute(fallback, stats);
  } else if (result.ok() && stats != nullptr) {
    *stats += attempt_stats;
  }
  SEQ_RETURN_IF_ERROR(result.status());
  high_water_ = frontier;
  return std::move(result.value().records);
}

Status StreamSession::Suspend(const std::string& checkpoint_path) const {
  CheckpointImage image;
  image.catalog_version = catalog_->version();
  image.options_fingerprint = FingerprintOptimizerOptions(options_);
  Query shape;
  shape.graph = graph_;
  image.plan_signature = ParameterizeQuery(shape).signature;
  SEQ_ASSIGN_OR_RETURN(image.query_text, UnparseQuery(*graph_));
  image.watermark = high_water_;
  OpStateWriter writer;
  writer.Tag(kStreamSessionStateTag);
  writer.U8(degraded_ ? 1 : 0);
  writer.I64(max_lookback_);
  image.op_state = writer.blob();
  return SaveCheckpoint(image, checkpoint_path);
}

Result<StreamSession> StreamSession::Resume(const Catalog* catalog,
                                            const std::string& checkpoint_path,
                                            OptimizerOptions options,
                                            ExecOptions exec_options) {
  SEQ_ASSIGN_OR_RETURN(CheckpointImage image,
                       LoadCheckpoint(checkpoint_path));
  if (image.catalog_version != catalog->version()) {
    return Status::FailedPrecondition(
        "checkpoint '" + checkpoint_path + "' is stale: catalog version " +
        std::to_string(image.catalog_version) + " at suspend, " +
        std::to_string(catalog->version()) + " now");
  }
  const std::string fingerprint = FingerprintOptimizerOptions(options);
  if (image.options_fingerprint != fingerprint) {
    return Status::FailedPrecondition(
        "checkpoint '" + checkpoint_path +
        "' is stale: optimizer-options fingerprint " +
        image.options_fingerprint + " at suspend, " + fingerprint + " now");
  }
  Result<ParsedProgram> program = ParseSequin(image.query_text);
  if (!program.ok() || program.value().main == nullptr) {
    return Status::DataLoss("checkpoint '" + checkpoint_path +
                            "' carries an unparseable query: " +
                            (program.ok() ? "no main statement"
                                          : program.status().message()));
  }
  Query shape;
  shape.graph = program.value().main;
  if (ParameterizeQuery(shape).signature != image.plan_signature) {
    return Status::FailedPrecondition(
        "checkpoint '" + checkpoint_path +
        "' is stale: plan signature does not match the re-parsed query");
  }
  OpStateReader reader(image.op_state);
  uint8_t degraded = 0;
  int64_t max_lookback = 0;
  if (!reader.Tag(kStreamSessionStateTag) || !reader.U8(&degraded) ||
      !reader.I64(&max_lookback) || !reader.Exhausted()) {
    return Status::DataLoss("checkpoint '" + checkpoint_path +
                            "': corrupt stream-session state");
  }
  StreamSession session(catalog, program.value().main, std::move(options),
                        max_lookback, exec_options);
  session.high_water_ = image.watermark;
  session.degraded_ = degraded != 0;
  return session;
}

}  // namespace seq
