#include "exec/checkpoint.h"

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "exec/scheduler.h"

namespace seq {

void OpStateWriter::Val(const Value& v) {
  U8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case TypeId::kInt64:
      I64(v.int64());
      break;
    case TypeId::kDouble:
      F64(v.dbl());
      break;
    case TypeId::kBool:
      U8(v.boolean() ? 1 : 0);
      break;
    case TypeId::kString: {
      const std::string& s = v.str();
      I64(static_cast<int64_t>(s.size()));
      blob_.append(s);
      break;
    }
  }
}

bool OpStateReader::U8(uint8_t* v) { return ReadPod(v); }
bool OpStateReader::I64(int64_t* v) { return ReadPod(v); }
bool OpStateReader::F64(double* v) { return ReadPod(v); }

bool OpStateReader::Val(Value* v) {
  uint8_t tag = 0;
  if (!U8(&tag) || tag > static_cast<uint8_t>(TypeId::kString)) return false;
  switch (static_cast<TypeId>(tag)) {
    case TypeId::kInt64: {
      int64_t x;
      if (!I64(&x)) return false;
      *v = Value::Int64(x);
      return true;
    }
    case TypeId::kDouble: {
      double x;
      if (!F64(&x)) return false;
      *v = Value::Double(x);
      return true;
    }
    case TypeId::kBool: {
      uint8_t x;
      if (!U8(&x)) return false;
      *v = Value::Bool(x != 0);
      return true;
    }
    case TypeId::kString: {
      int64_t len;
      if (!I64(&len) || len < 0 ||
          static_cast<size_t>(len) > blob_.size() - off_) {
        return false;
      }
      *v = Value::String(blob_.substr(off_, static_cast<size_t>(len)));
      off_ += static_cast<size_t>(len);
      return true;
    }
  }
  return false;
}

const char* SuspendReasonName(SuspendReason reason) {
  switch (reason) {
    case SuspendReason::kUser:
      return "user request";
    case SuspendReason::kScheduler:
      return "scheduler preemption";
    case SuspendReason::kCacheBudget:
      return "cache memory budget";
  }
  return "unknown";
}

Status MakeQuerySuspended(const std::string& path, SuspendReason reason) {
  std::ostringstream oss;
  oss << kQuerySuspendedPrefix << path << "' (" << SuspendReasonName(reason)
      << ")";
  return Status::Unavailable(oss.str());
}

bool IsQuerySuspended(const Status& status) {
  return status.code() == StatusCode::kUnavailable &&
         status.message().rfind(kQuerySuspendedPrefix, 0) == 0;
}

std::string SuspendedCheckpointPath(const Status& status) {
  if (!IsQuerySuspended(status)) return "";
  const std::string& msg = status.message();
  const size_t begin = std::string(kQuerySuspendedPrefix).size();
  const size_t end = msg.rfind('\'');
  if (end == std::string::npos || end <= begin) return "";
  return msg.substr(begin, end - begin);
}

namespace {

Status InjectedCheckpointFault(FaultInjector* faults, FaultSite site) {
  std::ostringstream oss;
  oss << "injected fault at " << FaultSiteName(site)
      << " [op=Checkpoint hit=" << faults->hits(site) << "]";
  return Status::DataLoss(oss.str());
}

}  // namespace

std::function<Status()> CheckpointWriteFaultHook(FaultInjector* faults) {
  if (faults == nullptr) return {};
  return [faults] {
    if (!faults->Poll(FaultSite::kCheckpointWrite)) return Status::OK();
    return InjectedCheckpointFault(faults, FaultSite::kCheckpointWrite);
  };
}

std::function<Status()> CheckpointReadFaultHook(FaultInjector* faults) {
  if (faults == nullptr) return {};
  return [faults] {
    if (!faults->Poll(FaultSite::kCheckpointRead)) return Status::OK();
    return InjectedCheckpointFault(faults, FaultSite::kCheckpointRead);
  };
}

const std::string& DefaultCheckpointDir() {
  static const std::string kDir = [] {
    const char* env = std::getenv("SEQ_CHECKPOINT_DIR");
    if (env == nullptr || env[0] == '\0') return std::string(".");
    struct stat st{};
    if (::stat(env, &st) == 0 && S_ISDIR(st.st_mode)) {
      return std::string(env);
    }
    std::fprintf(stderr,
                 "seq: SEQ_CHECKPOINT_DIR='%s' is not an existing "
                 "directory; using '.'\n",
                 env);
    return std::string(".");
  }();
  return kDir;
}

int64_t DefaultCheckpointChunk() {
  static const int64_t kChunk =
      ValidatedEnvInt("SEQ_CHECKPOINT_CHUNK", /*min_value=*/64,
                      /*fallback=*/1024);
  return kChunk;
}

}  // namespace seq
