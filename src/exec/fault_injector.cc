#include "exec/fault_injector.h"

namespace seq {

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kPageRead:
      return "page-read";
    case FaultSite::kOperatorOpen:
      return "operator-open";
    case FaultSite::kExprEval:
      return "expr-eval";
    case FaultSite::kCheckpointWrite:
      return "checkpoint-write";
    case FaultSite::kCheckpointRead:
      return "checkpoint-read";
  }
  return "unknown";
}

}  // namespace seq
