#include "exec/fault_injector.h"

namespace seq {

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kPageRead:
      return "page-read";
    case FaultSite::kOperatorOpen:
      return "operator-open";
    case FaultSite::kExprEval:
      return "expr-eval";
  }
  return "unknown";
}

}  // namespace seq
