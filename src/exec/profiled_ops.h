#ifndef SEQ_EXEC_PROFILED_OPS_H_
#define SEQ_EXEC_PROFILED_OPS_H_

#include <chrono>
#include <optional>
#include <span>
#include <utility>

#include "exec/operator.h"
#include "obs/profile.h"

namespace seq {

/// Accumulates one operator call into an OperatorProfile: wall time plus
/// the simulated-cost / cache-counter deltas charged while the call (and
/// therefore the whole subtree under it — the pull model runs children only
/// inside parent calls) was on the stack. Wrappers nest, so every profile
/// node ends up with *inclusive* numbers; OperatorProfile::Self*() derives
/// exclusive ones.
class ScopedOpTimer {
 public:
  ScopedOpTimer(OperatorProfile* prof, const AccessStats* stats)
      : prof_(prof),
        stats_(stats),
        start_(std::chrono::steady_clock::now()) {
    if (stats_ != nullptr) {
      sim_cost_before_ = stats_->simulated_cost;
      cache_hits_before_ = stats_->cache_hits;
      cache_stores_before_ = stats_->cache_stores;
    }
  }

  ~ScopedOpTimer() {
    prof_->wall_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
    if (stats_ != nullptr) {
      prof_->sim_cost += stats_->simulated_cost - sim_cost_before_;
      prof_->cache_hits += stats_->cache_hits - cache_hits_before_;
      prof_->cache_stores += stats_->cache_stores - cache_stores_before_;
    }
  }

  ScopedOpTimer(const ScopedOpTimer&) = delete;
  ScopedOpTimer& operator=(const ScopedOpTimer&) = delete;

 private:
  OperatorProfile* prof_;
  const AccessStats* stats_;
  std::chrono::steady_clock::time_point start_;
  double sim_cost_before_ = 0.0;
  int64_t cache_hits_before_ = 0;
  int64_t cache_stores_before_ = 0;
};

/// Instrumented operator: counts calls and rows and attributes wall time
/// and simulated-cost deltas to its profile node, forwarding every entry
/// point of the unified interface. Batch calls are forwarded whole —
/// unwrapping to tuple calls here would both distort the measurement and
/// defeat the inner operators' native batch implementations. `calls`
/// counts calls (a batch call counts once); rows_out counts records. Only
/// instantiated when profiling was requested — unprofiled plans run the
/// bare operators, so the default path pays nothing.
class ProfiledOp : public SeqOp {
 public:
  ProfiledOp(SeqOpPtr inner, OperatorProfile* prof)
      : inner_(std::move(inner)), prof_(prof) {}

  Status Open(ExecContext* ctx) override {
    // Open is timed too: blocking operators (overall aggregates, probe-side
    // materializations) do their pass here.
    stats_ = ctx->stats;
    ScopedOpTimer timer(prof_, stats_);
    return inner_->Open(ctx);
  }

  std::optional<PosRecord> Next() override {
    ScopedOpTimer timer(prof_, stats_);
    ++prof_->calls;
    std::optional<PosRecord> r = inner_->Next();
    if (r.has_value()) ++prof_->rows_out;
    return r;
  }

  std::optional<PosRecord> NextAtOrAfter(Position p) override {
    ScopedOpTimer timer(prof_, stats_);
    ++prof_->calls;
    std::optional<PosRecord> r = inner_->NextAtOrAfter(p);
    if (r.has_value()) ++prof_->rows_out;
    return r;
  }

  size_t NextBatch(RecordBatch* out) override {
    ScopedOpTimer timer(prof_, stats_);
    ++prof_->calls;
    size_t n = inner_->NextBatch(out);
    prof_->rows_out += static_cast<int64_t>(n);
    return n;
  }

  size_t NextBatchUpTo(Position limit, RecordBatch* out) override {
    ScopedOpTimer timer(prof_, stats_);
    ++prof_->calls;
    size_t n = inner_->NextBatchUpTo(limit, out);
    prof_->rows_out += static_cast<int64_t>(n);
    return n;
  }

  std::optional<Record> Probe(Position p) override {
    ScopedOpTimer timer(prof_, stats_);
    ++prof_->calls;
    std::optional<Record> r = inner_->Probe(p);
    if (r.has_value()) ++prof_->rows_out;
    return r;
  }

  size_t ProbeBatch(std::span<const Position> positions,
                    RecordBatch* out) override {
    ScopedOpTimer timer(prof_, stats_);
    ++prof_->calls;
    size_t n = inner_->ProbeBatch(positions, out);
    prof_->rows_out += static_cast<int64_t>(n);
    return n;
  }

  void Close() override {
    ScopedOpTimer timer(prof_, stats_);
    inner_->Close();
  }

  // Checkpoint traversal is transparent to profiling wrappers.
  void SaveState(OpStateWriter* w) const override { inner_->SaveState(w); }
  bool RestoreState(OpStateReader* r) override {
    return inner_->RestoreState(r);
  }

 private:
  SeqOpPtr inner_;
  OperatorProfile* prof_;
  const AccessStats* stats_ = nullptr;
};

}  // namespace seq

#endif  // SEQ_EXEC_PROFILED_OPS_H_
