#ifndef SEQ_EXEC_EXECUTOR_H_
#define SEQ_EXEC_EXECUTOR_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/cost_params.h"
#include "common/result.h"
#include "exec/operator.h"
#include "obs/profile.h"
#include "optimizer/physical_plan.h"

namespace seq {

/// A materialized query output: the non-null records of the answer
/// sequence in position order.
struct QueryResult {
  SchemaPtr schema;
  std::vector<PosRecord> records;

  /// First `limit` records, one per line.
  std::string ToString(size_t limit = 20) const;
};

/// Instantiates physical operators from plan descriptors and drives the
/// Start operator (paper §4: "the Start operator at the root of the plan
/// induces a stream access on its input sequence").
class Executor {
 public:
  Executor(const Catalog& catalog, CostParams params = CostParams{})
      : catalog_(catalog), params_(params) {}

  /// Evaluates a complete plan. If `stats` is non-null, all simulated
  /// access/cache/predicate charges accumulate into it.
  Result<QueryResult> Execute(const PhysicalPlan& plan,
                              AccessStats* stats = nullptr) const;

  /// Profiled evaluation: every operator is wrapped in an instrumented
  /// shim that records calls, rows, wall time and simulated-cost deltas
  /// into `profile` (which is reset first). The unprofiled Execute path is
  /// untouched — profiling costs nothing when not requested.
  Result<QueryResult> ExecuteProfiled(const PhysicalPlan& plan,
                                      QueryProfile* profile,
                                      AccessStats* stats = nullptr) const;

  /// Operator-tree factories, exposed for tests and benchmarks that build
  /// custom plans. When `profile_parent` is non-null the returned tree is
  /// instrumented and its profile nodes are appended under it.
  Result<StreamOpPtr> BuildStream(const PhysNodePtr& node,
                                  OperatorProfile* profile_parent =
                                      nullptr) const;
  Result<ProbeOpPtr> BuildProbe(const PhysNodePtr& node,
                                OperatorProfile* profile_parent =
                                    nullptr) const;

 private:
  Result<StreamOpPtr> BuildStreamInner(const PhysNodePtr& node,
                                       OperatorProfile* prof) const;
  Result<ProbeOpPtr> BuildProbeInner(const PhysNodePtr& node,
                                     OperatorProfile* prof) const;
  Result<QueryResult> ExecuteImpl(const PhysicalPlan& plan,
                                  AccessStats* stats,
                                  OperatorProfile* root_profile) const;

  const Catalog& catalog_;
  CostParams params_;
};

}  // namespace seq

#endif  // SEQ_EXEC_EXECUTOR_H_
