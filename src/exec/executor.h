#ifndef SEQ_EXEC_EXECUTOR_H_
#define SEQ_EXEC_EXECUTOR_H_

#include <chrono>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/cost_params.h"
#include "common/result.h"
#include "exec/checkpoint.h"
#include "exec/operator.h"
#include "exec/scheduler.h"
#include "obs/profile.h"
#include "obs/query_registry.h"
#include "optimizer/physical_plan.h"

namespace seq {

/// A materialized query output: the non-null records of the answer
/// sequence in position order. When the run was profiled
/// (RunOptions::profile), `profile` carries the per-operator
/// estimated-vs-actual record and the optimizer trace.
struct QueryResult {
  SchemaPtr schema;
  std::vector<PosRecord> records;
  std::optional<QueryProfile> profile;

  /// First `limit` records, one per line.
  std::string ToString(size_t limit = 20) const;
};

/// Row consumer for streaming execution (ExecuteVisit). The record
/// reference is only valid for the duration of the call: the batch path
/// hands out pipeline-owned slot buffers that are overwritten by the next
/// batch, so a sink that wants to keep a row must copy it.
using RowSink = std::function<void(Position, const Record&)>;

/// Process-wide default for ExecOptions::use_batch: true unless the
/// environment variable SEQ_USE_BATCH is set to "0". Lets the full test
/// suite be re-run under tuple driving without code changes.
bool DefaultUseBatch();

/// Process-wide default for ExecOptions::parallelism, from the
/// SEQ_PARALLELISM environment variable (1 when unset). Lets the full
/// suite be re-run under morsel-parallel driving — the ThreadSanitizer CI
/// job runs with SEQ_PARALLELISM=4 — without code changes.
int DefaultParallelism();

/// Process-wide default for ExecOptions::use_plan_cache: true unless the
/// environment variable SEQ_PLAN_CACHE is set to "0" / "off" / "false".
/// Lets the full suite be re-run with the parameterized plan cache
/// disabled without code changes.
bool DefaultUsePlanCache();

/// Runtime knobs for the Start operator's driving loop.
struct ExecOptions {
  /// Drive plans batch-at-a-time: NextBatch for stream roots, ProbeBatch
  /// for probed roots (including point-position probed queries). Stream
  /// plans answering point-position queries use the tuple path — the scan
  /// filter is positional, not batch-shaped. Setting this false forces
  /// tuple-at-a-time driving everywhere — the debugging and
  /// differential-testing baseline. Both paths produce identical rows and
  /// identical AccessStats counters (simulated_cost may differ in the
  /// last few ulps from summation order).
  bool use_batch = DefaultUseBatch();
  /// Capacity of the driver's RecordBatch and of every BatchInput buffer
  /// allocated beneath it.
  size_t batch_capacity = RecordBatch::kDefaultCapacity;
  /// Per-query budgets (rows, pages, wall clock, cache memory) and the
  /// cooperative cancellation flag; see QueryGuards. All unlimited by
  /// default.
  QueryGuards guards;
  /// Deterministic fault source for robustness testing; never set in
  /// production. Owned by the caller and must outlive every execution that
  /// uses these options. Arming it forces serial execution (the injector's
  /// global hit counters define "the k-th access" in serial order).
  FaultInjector* fault_injector = nullptr;
  /// Per-query *share cap* for morsel-driven intra-query parallelism
  /// (docs/execution.md): the most workers of the process-wide
  /// QueryScheduler pool that may run this query's morsels concurrently.
  /// 1 (the default) runs everything on the calling thread; values > 1
  /// split stream-root plans' output spans (and probed-root plans'
  /// position lists) into contiguous morsels evaluated by independent
  /// operator-tree clones on the shared pool. This is NOT a thread count:
  /// threads belong to the scheduler (SEQ_SCHED_WORKERS), and a query
  /// may get fewer than its cap when the pool is busy. Plans with
  /// operators that cannot be partitioned correctly, or where carry-in
  /// state would cost more than the parallel win, fall back to serial —
  /// rows, merged AccessStats and budget trips are identical either way.
  int parallelism = DefaultParallelism();
  /// Admission priority class on the process-wide scheduler: higher
  /// classes leave the admission queue first and their morsels are
  /// dispatched to workers first. Only consulted for parallel execution —
  /// serial queries never touch the scheduler.
  QueryPriority priority = QueryPriority::kNormal;
  /// Longest this query may wait in the scheduler's admission queue
  /// before giving up with ResourceExhausted: > 0 bounds the wait in
  /// milliseconds, 0 (the default) adopts the scheduler-wide default
  /// (itself "no timeout" unless configured), < 0 waits indefinitely.
  /// Wall-clock budgets (QueryGuards::max_wall_ms) keep ticking while
  /// queued either way.
  int64_t admission_timeout_ms = 0;
  /// Morsel length in positions. 0 (auto) splits the span into one morsel
  /// per worker. An explicit size is treated as a caller override: the
  /// carry-in cost heuristic is skipped (correctness fallbacks still
  /// apply), which is how tests force parallel driving on small spans.
  size_t morsel_size = 0;
  /// Live-progress sink for the query registry (docs/observability.md).
  /// When set, the driving loops publish rows emitted, pages charged,
  /// worker and morsel counts into it via relaxed atomics at batch
  /// boundaries — never with a lock. Owned by the caller (the engine's
  /// registry ticket) and must outlive the execution. Null costs nothing.
  QueryTelemetry* telemetry = nullptr;
  /// Consult the process-wide parameterized plan cache (docs/execution.md)
  /// before optimizing: repeat query shapes skip parse+rewrite+plan and
  /// re-bind literals into the cached template. Rows and stats are
  /// identical either way — the cache only changes where the plan comes
  /// from. Read by the engine, not the executor; lives here with the other
  /// per-query knobs so PreparedQuery/seqsh/benches thread it the same way
  /// as use_batch.
  bool use_plan_cache = DefaultUsePlanCache();
  /// Owning session (docs/server.md): a nonzero id attributes this run to
  /// a client session in the query registry, `.queries` output and the
  /// telemetry exporters. 0 (the default) means "no session" — direct
  /// library calls. Read by the engine's registry envelope, not the
  /// executor.
  uint64_t session_id = 0;
  /// Operator-state checkpointing (docs/robustness.md): when enabled, the
  /// engine drives the query through Executor::ExecuteCheckpointed, which
  /// executes chunkable plans as a sequence of clip-span chunks with
  /// cooperative suspend points at every chunk boundary. Plans whose shape
  /// cannot chunk run normally and report why in the capture.
  CheckpointConfig checkpoint;
};

/// How (and why) the executor decided to drive one plan: serial, or
/// parallel over which morsels. Computed deterministically from the plan
/// and ExecOptions by Executor::PlanMorsels; the engine surfaces `reason`
/// in the optimizer trace and the profile notes.
struct MorselPlan {
  bool parallel = false;
  /// Human-readable decision record, e.g. "parallel: 4 workers x 4
  /// morsels" or "serial: lock-step compose does not partition".
  std::string reason;
  int workers = 1;
  /// Contiguous output sub-spans (stream roots) in position order, tiling
  /// the plan's output span. Empty for probed roots (those chunk the
  /// position list instead).
  std::vector<Span> morsels;
};

/// Instantiates physical operators from plan descriptors and drives the
/// Start operator (paper §4: "the Start operator at the root of the plan
/// induces a stream access on its input sequence").
class Executor {
 public:
  explicit Executor(const Catalog& catalog, CostParams params = CostParams{},
                    ExecOptions options = ExecOptions{})
      : catalog_(catalog), params_(params), options_(options) {}

  /// Evaluates a complete plan. If `stats` is non-null, all simulated
  /// access/cache/predicate charges accumulate into it.
  Result<QueryResult> Execute(const PhysicalPlan& plan,
                              AccessStats* stats = nullptr) const;

  /// Streaming evaluation: every answer row is handed to `sink` in
  /// position order instead of being materialized into a QueryResult.
  /// This is the allocation-free consumption path — under batch driving
  /// the rows visited are the pipeline's reusable slot buffers, so a
  /// query that aggregates or folds its answer never pays a per-row
  /// record allocation. Same rows, same order, same AccessStats charges
  /// as Execute in both driving modes.
  Status ExecuteVisit(const PhysicalPlan& plan, const RowSink& sink,
                      AccessStats* stats = nullptr) const;

  /// Profiled evaluation: every operator is wrapped in an instrumented
  /// shim that records calls, rows, wall time and simulated-cost deltas
  /// into `profile` (which is reset first). The unprofiled Execute path is
  /// untouched — profiling costs nothing when not requested.
  Result<QueryResult> ExecuteProfiled(const PhysicalPlan& plan,
                                      QueryProfile* profile,
                                      AccessStats* stats = nullptr) const;

  /// Operator-tree factory, exposed for tests and benchmarks that build
  /// custom plans. One table-driven pass lowers the PhysNode tree — each
  /// node's access mode and strategy annotations select the unified
  /// operator's construction shape; the caller drives the returned root
  /// in the plan's root mode. When `profile_parent` is non-null the
  /// returned tree is instrumented and its profile nodes are appended
  /// under it.
  Result<SeqOpPtr> Build(const PhysNodePtr& node,
                         OperatorProfile* profile_parent = nullptr) const;

  /// Checkpointable evaluation (docs/robustness.md): chunkable plans run
  /// as a deterministic grid of clip-span chunks — the same rows, counters
  /// and budget trips as Execute — polling the CheckpointConfig suspend
  /// triggers at every chunk boundary. On suspension the complete prefix
  /// (rows, stats, operator-state blob, watermark) is left in
  /// options.checkpoint.capture and an empty result is returned; the
  /// caller persists it and later resumes by re-running with
  /// options.checkpoint.resume set. Requires options.checkpoint.capture.
  Result<QueryResult> ExecuteCheckpointed(const PhysicalPlan& plan,
                                          AccessStats* stats = nullptr) const;

  /// The morsel-parallelism decision for `plan` under these options:
  /// whether it runs parallel, with how many workers over which morsels,
  /// and why. Pure and deterministic — the engine calls it to record the
  /// decision, ExecuteImpl recomputes it to act on it.
  MorselPlan PlanMorsels(const PhysicalPlan& plan) const;

 private:
  Result<SeqOpPtr> BuildInner(const PhysNodePtr& node,
                              OperatorProfile* prof) const;

  // One builder per OpKind, dispatched through a table indexed by the
  // enum value so optimizer node kinds and executor lowering stay in
  // one-to-one correspondence.
  Result<SeqOpPtr> BuildBaseRef(const PhysNode& node,
                                OperatorProfile* prof) const;
  Result<SeqOpPtr> BuildConstantRef(const PhysNode& node,
                                    OperatorProfile* prof) const;
  Result<SeqOpPtr> BuildSelect(const PhysNode& node,
                               OperatorProfile* prof) const;
  Result<SeqOpPtr> BuildProject(const PhysNode& node,
                                OperatorProfile* prof) const;
  Result<SeqOpPtr> BuildPosOffset(const PhysNode& node,
                                  OperatorProfile* prof) const;
  Result<SeqOpPtr> BuildValueOffset(const PhysNode& node,
                                    OperatorProfile* prof) const;
  Result<SeqOpPtr> BuildWindowAgg(const PhysNode& node,
                                  OperatorProfile* prof) const;
  Result<SeqOpPtr> BuildCompose(const PhysNode& node,
                                OperatorProfile* prof) const;
  Result<SeqOpPtr> BuildCollapse(const PhysNode& node,
                                 OperatorProfile* prof) const;
  Result<SeqOpPtr> BuildExpand(const PhysNode& node,
                               OperatorProfile* prof) const;

  Result<QueryResult> ExecuteImpl(const PhysicalPlan& plan,
                                  AccessStats* stats,
                                  OperatorProfile* root_profile) const;

  // Morsel-parallel driving (see docs/execution.md): independent operator
  // trees per morsel, per-morsel AccessStats merged in morsel order,
  // shared budget accounting at batch boundaries.
  Result<QueryResult> ExecuteParallel(const PhysicalPlan& plan,
                                      const MorselPlan& morsels,
                                      AccessStats* stats,
                                      OperatorProfile* root_profile) const;

  // Overrides applied when a morsel group executes ONE CHUNK of a
  // checkpointed query rather than the whole plan: the outermost units are
  // clipped at the chunk boundaries instead of left open (a middle chunk
  // must not re-read the lead-in or run into the tail), whole-query row and
  // page budgets start from what earlier chunks already spent, and the
  // wall-clock deadline is the one computed before chunk 0, not a fresh
  // one per chunk. Registry morsel telemetry is owned by the chunk driver.
  struct ChunkExtras {
    Position clip_lo = kMinPosition;
    Position clip_hi = kMaxPosition;
    int64_t base_rows = 0;
    int64_t base_pages = 0;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
  };

  Result<QueryResult> ExecuteParallelInner(const PhysicalPlan& plan,
                                           const MorselPlan& morsels,
                                           AccessStats* stats,
                                           OperatorProfile* root_profile,
                                           const ChunkExtras* extras) const;

  const Catalog& catalog_;
  CostParams params_;
  ExecOptions options_;
};

}  // namespace seq

#endif  // SEQ_EXEC_EXECUTOR_H_
