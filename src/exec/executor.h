#ifndef SEQ_EXEC_EXECUTOR_H_
#define SEQ_EXEC_EXECUTOR_H_

#include <functional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/cost_params.h"
#include "common/result.h"
#include "exec/operator.h"
#include "obs/profile.h"
#include "optimizer/physical_plan.h"

namespace seq {

/// A materialized query output: the non-null records of the answer
/// sequence in position order.
struct QueryResult {
  SchemaPtr schema;
  std::vector<PosRecord> records;

  /// First `limit` records, one per line.
  std::string ToString(size_t limit = 20) const;
};

/// Row consumer for streaming execution (ExecuteVisit). The record
/// reference is only valid for the duration of the call: the batch path
/// hands out pipeline-owned slot buffers that are overwritten by the next
/// batch, so a sink that wants to keep a row must copy it.
using RowSink = std::function<void(Position, const Record&)>;

/// Runtime knobs for the Start operator's driving loop.
struct ExecOptions {
  /// Drive stream plans batch-at-a-time (StreamOp::NextBatch). Probed
  /// plans and point-position queries always use the tuple path. Setting
  /// this false forces tuple-at-a-time driving everywhere — the debugging
  /// and differential-testing baseline. Both paths produce identical rows
  /// and identical AccessStats counters (simulated_cost may differ in the
  /// last few ulps from summation order).
  bool use_batch = true;
  /// Capacity of the driver's RecordBatch and of every BatchInput buffer
  /// allocated beneath it.
  size_t batch_capacity = RecordBatch::kDefaultCapacity;
};

/// Instantiates physical operators from plan descriptors and drives the
/// Start operator (paper §4: "the Start operator at the root of the plan
/// induces a stream access on its input sequence").
class Executor {
 public:
  explicit Executor(const Catalog& catalog, CostParams params = CostParams{},
                    ExecOptions options = ExecOptions{})
      : catalog_(catalog), params_(params), options_(options) {}

  /// Evaluates a complete plan. If `stats` is non-null, all simulated
  /// access/cache/predicate charges accumulate into it.
  Result<QueryResult> Execute(const PhysicalPlan& plan,
                              AccessStats* stats = nullptr) const;

  /// Streaming evaluation: every answer row is handed to `sink` in
  /// position order instead of being materialized into a QueryResult.
  /// This is the allocation-free consumption path — under batch driving
  /// the rows visited are the pipeline's reusable slot buffers, so a
  /// query that aggregates or folds its answer never pays a per-row
  /// record allocation. Same rows, same order, same AccessStats charges
  /// as Execute in both driving modes.
  Status ExecuteVisit(const PhysicalPlan& plan, const RowSink& sink,
                      AccessStats* stats = nullptr) const;

  /// Profiled evaluation: every operator is wrapped in an instrumented
  /// shim that records calls, rows, wall time and simulated-cost deltas
  /// into `profile` (which is reset first). The unprofiled Execute path is
  /// untouched — profiling costs nothing when not requested.
  Result<QueryResult> ExecuteProfiled(const PhysicalPlan& plan,
                                      QueryProfile* profile,
                                      AccessStats* stats = nullptr) const;

  /// Operator-tree factories, exposed for tests and benchmarks that build
  /// custom plans. When `profile_parent` is non-null the returned tree is
  /// instrumented and its profile nodes are appended under it.
  Result<StreamOpPtr> BuildStream(const PhysNodePtr& node,
                                  OperatorProfile* profile_parent =
                                      nullptr) const;
  Result<ProbeOpPtr> BuildProbe(const PhysNodePtr& node,
                                OperatorProfile* profile_parent =
                                    nullptr) const;

 private:
  Result<StreamOpPtr> BuildStreamInner(const PhysNodePtr& node,
                                       OperatorProfile* prof) const;
  Result<ProbeOpPtr> BuildProbeInner(const PhysNodePtr& node,
                                     OperatorProfile* prof) const;
  Result<QueryResult> ExecuteImpl(const PhysicalPlan& plan,
                                  AccessStats* stats,
                                  OperatorProfile* root_profile) const;

  const Catalog& catalog_;
  CostParams params_;
  ExecOptions options_;
};

}  // namespace seq

#endif  // SEQ_EXEC_EXECUTOR_H_
