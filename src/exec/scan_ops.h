#ifndef SEQ_EXEC_SCAN_OPS_H_
#define SEQ_EXEC_SCAN_OPS_H_

#include <optional>
#include <span>
#include <utility>

#include "exec/operator.h"
#include "storage/base_sequence.h"

namespace seq {

/// Access to a base sequence in either mode: stream access is a single
/// cursor scan of the required range in position order; probed access is
/// the store's positional index. Both batch entry points loop the store's
/// non-virtual access paths directly.
///
/// Robustness hooks live at this leaf: every record fetch and every probe
/// polls the page-read fault site (record granularity — the simulator's
/// unit of storage access), and every batch refill runs the cooperative
/// budget check (LeafShouldStop), so a blocking parent that never returns
/// to the driver still observes cancellation and budgets.
class BaseScan : public SeqOp {
 public:
  /// `resume_covered_from`, when set, marks this scan as a morsel clip of a
  /// larger serial scan whose coverage starts there: the stream cursor
  /// opens resumed so a page shared with the preceding morsel's clip is
  /// not charged twice (see BaseSequenceStore::OpenStreamResumed).
  BaseScan(const BaseSequenceStore* store, Span range,
           std::optional<Position> resume_covered_from = std::nullopt)
      : store_(store),
        range_(range),
        resume_covered_from_(resume_covered_from) {}

  Status Open(ExecContext* ctx) override {
    SEQ_RETURN_IF_ERROR(ctx->PollOpenFault("BaseScan"));
    ctx_ = ctx;
    if (resume_covered_from_.has_value()) {
      cursor_.emplace(store_->OpenStreamResumed(range_, *resume_covered_from_,
                                                ctx->stats));
    } else {
      cursor_.emplace(store_->OpenStream(range_, ctx->stats));
    }
    return Status::OK();
  }

  std::optional<PosRecord> Next() override {
    std::optional<PosRecord> r = cursor_->Next();
    if (r.has_value() &&
        ctx_->PollFaultRaise(FaultSite::kPageRead, "BaseScan", r->pos)) {
      return std::nullopt;
    }
    return r;
  }

  size_t NextBatch(RecordBatch* out) override {
    if (LeafShouldStop(ctx_)) {
      out->Clear();
      return 0;
    }
    if (!ctx_->FaultArmed(FaultSite::kPageRead)) {
      return cursor_->FillBatch(out);
    }
    return FaultedFill(kMaxPosition, out);
  }

  size_t NextBatchUpTo(Position limit, RecordBatch* out) override {
    if (LeafShouldStop(ctx_)) {
      out->Clear();
      return 0;
    }
    if (!ctx_->FaultArmed(FaultSite::kPageRead)) {
      return cursor_->FillBatchUpTo(limit, out);
    }
    return FaultedFill(limit, out);
  }

  std::optional<Record> Probe(Position p) override {
    if (ctx_->failed()) return std::nullopt;
    std::optional<Record> r = store_->Probe(p, ctx_->stats);
    if (ctx_->PollFaultRaise(FaultSite::kPageRead, "BaseScan", p)) {
      return std::nullopt;
    }
    return r;
  }

  size_t ProbeBatch(std::span<const Position> positions,
                    RecordBatch* out) override {
    out->Clear();
    if (LeafShouldStop(ctx_)) return 0;
    AccessStats* stats = ctx_->stats;
    for (Position p : positions) {
      std::optional<Record> r = store_->Probe(p, stats);
      if (ctx_->PollFaultRaise(FaultSite::kPageRead, "BaseScan", p)) break;
      if (r.has_value()) MoveRecordValues(out->Append(p), *r);
    }
    return out->size();
  }

 private:
  // Per-record refill used only when the page-read fault site is armed:
  // mirrors FillBatch/FillBatchUpTo (include-overshoot) but polls the
  // injector per record so "fail the k-th read" is deterministic in both
  // driving modes.
  size_t FaultedFill(Position limit, RecordBatch* out) {
    out->Clear();
    while (!out->full()) {
      std::optional<PosRecord> r = cursor_->Next();
      if (!r.has_value()) break;
      if (ctx_->PollFaultRaise(FaultSite::kPageRead, "BaseScan", r->pos)) {
        break;
      }
      Position p = r->pos;
      out->Append(p) = std::move(r->rec);
      if (p > limit) break;
    }
    return out->size();
  }

  const BaseSequenceStore* store_;
  Span range_;
  std::optional<Position> resume_covered_from_;
  ExecContext* ctx_ = nullptr;
  std::optional<BaseSequenceStore::StreamCursor> cursor_;
};

/// A constant sequence: the same record at every position, with no access
/// cost (§4.1.1). Stream access is bounded by the required range;
/// probed access answers at ANY position (a constant is everywhere).
/// Overrides NextAtOrAfter so lock-step joins skip over it in O(1).
class ConstantOp : public SeqOp {
 public:
  ConstantOp(Record value, Span range)
      : value_(std::move(value)), range_(range) {}

  Status Open(ExecContext* ctx) override {
    SEQ_RETURN_IF_ERROR(ctx->PollOpenFault("Constant"));
    ctx_ = ctx;
    next_pos_ = range_.start;
    return Status::OK();
  }

  std::optional<PosRecord> Next() override {
    if (range_.IsEmpty() || next_pos_ > range_.end) return std::nullopt;
    return PosRecord{next_pos_++, value_};
  }

  std::optional<PosRecord> NextAtOrAfter(Position p) override {
    if (p > next_pos_) next_pos_ = p;
    return Next();
  }

  size_t NextBatch(RecordBatch* out) override {
    out->Clear();
    if (LeafShouldStop(ctx_)) return 0;
    if (range_.IsEmpty()) return 0;
    while (!out->full() && next_pos_ <= range_.end) {
      AssignRecord(out->Append(next_pos_++), value_);
    }
    return out->size();
  }

  std::optional<Record> Probe(Position) override { return value_; }

  size_t ProbeBatch(std::span<const Position> positions,
                    RecordBatch* out) override {
    out->Clear();
    if (LeafShouldStop(ctx_)) return 0;
    for (Position p : positions) AssignRecord(out->Append(p), value_);
    return out->size();
  }

 private:
  Record value_;
  Span range_;
  ExecContext* ctx_ = nullptr;
  Position next_pos_ = 0;
};

}  // namespace seq

#endif  // SEQ_EXEC_SCAN_OPS_H_
