#ifndef SEQ_EXEC_SCAN_OPS_H_
#define SEQ_EXEC_SCAN_OPS_H_

#include <optional>
#include <utility>

#include "exec/operator.h"
#include "storage/base_sequence.h"

namespace seq {

/// Stream access path over a base sequence: a single scan of the required
/// range in position order.
class BaseStreamScan : public StreamOp {
 public:
  BaseStreamScan(const BaseSequenceStore* store, Span range)
      : store_(store), range_(range) {}

  Status Open(ExecContext* ctx) override {
    cursor_.emplace(store_->OpenStream(range_, ctx->stats));
    return Status::OK();
  }

  std::optional<PosRecord> Next() override { return cursor_->Next(); }

  size_t NextBatch(RecordBatch* out) override {
    return cursor_->FillBatch(out);
  }

 private:
  const BaseSequenceStore* store_;
  Span range_;
  std::optional<BaseSequenceStore::StreamCursor> cursor_;
};

/// Probed access path over a base sequence (positional index).
class BaseProbeScan : public ProbeOp {
 public:
  explicit BaseProbeScan(const BaseSequenceStore* store) : store_(store) {}

  Status Open(ExecContext* ctx) override {
    ctx_ = ctx;
    return Status::OK();
  }

  std::optional<Record> Probe(Position p) override {
    return store_->Probe(p, ctx_->stats);
  }

 private:
  const BaseSequenceStore* store_;
  ExecContext* ctx_ = nullptr;
};

/// A constant sequence: the same record at every position of the required
/// range, with no access cost (§4.1.1). Overrides NextAtOrAfter so
/// lock-step joins skip over it in O(1).
class ConstantStream : public StreamOp {
 public:
  ConstantStream(Record value, Span range)
      : value_(std::move(value)), range_(range) {}

  Status Open(ExecContext*) override {
    next_pos_ = range_.start;
    return Status::OK();
  }

  std::optional<PosRecord> Next() override {
    if (range_.IsEmpty() || next_pos_ > range_.end) return std::nullopt;
    return PosRecord{next_pos_++, value_};
  }

  std::optional<PosRecord> NextAtOrAfter(Position p) override {
    if (p > next_pos_) next_pos_ = p;
    return Next();
  }

  size_t NextBatch(RecordBatch* out) override {
    out->Clear();
    if (range_.IsEmpty()) return 0;
    while (!out->full() && next_pos_ <= range_.end) {
      AssignRecord(out->Append(next_pos_++), value_);
    }
    return out->size();
  }

 private:
  Record value_;
  Span range_;
  Position next_pos_ = 0;
};

class ConstantProbe : public ProbeOp {
 public:
  explicit ConstantProbe(Record value) : value_(std::move(value)) {}

  Status Open(ExecContext*) override { return Status::OK(); }

  std::optional<Record> Probe(Position) override { return value_; }

 private:
  Record value_;
};

}  // namespace seq

#endif  // SEQ_EXEC_SCAN_OPS_H_
