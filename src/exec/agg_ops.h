#ifndef SEQ_EXEC_AGG_OPS_H_
#define SEQ_EXEC_AGG_OPS_H_

#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "exec/operator.h"
#include "exec/window_state.h"
#include "logical/logical_op.h"

namespace seq {

/// Trailing-window aggregate with Cache-Strategy-A (§3.5, Fig. 5.A): a
/// scope-sized cache over the input stream; each input record enters the
/// cache exactly once and every output reads the cached window.
/// Stream-only — the cache is inherently sequential, so probed plans use
/// WindowAggNaiveOp or MaterializedAggOp instead.
class WindowAggCachedOp : public SeqOp {
 public:
  WindowAggCachedOp(SeqOpPtr child, AggFunc func, size_t col_index,
                    TypeId col_type, int64_t window, Span required)
      : child_(std::move(child)),
        func_(func),
        col_index_(col_index),
        col_type_(col_type),
        window_(window),
        required_(required),
        state_(func, col_type) {}

  Status Open(ExecContext* ctx) override;
  std::optional<PosRecord> Next() override;
  std::optional<PosRecord> NextAtOrAfter(Position p) override;
  size_t NextBatch(RecordBatch* out) override;
  void Close() override { child_->Close(); }

  /// Installs a morsel carry-in subtree: a clone of the input clipped to
  /// the window-sized span just before this clone's first output position.
  /// Open streams it to completion into the window state, charging nothing
  /// (the preceding morsel charges those reads), so the state at every
  /// output position equals the serial run's.
  void set_carry(SeqOpPtr carry) { carry_ = std::move(carry); }

  /// Checkpoint state: the live window verbatim. A resumed chunk built
  /// without a carry subtree restores this instead of re-reading the
  /// window-sized prefix, making the resume bit-identical (not merely
  /// value-identical) to the uninterrupted run.
  void SaveState(OpStateWriter* w) const override {
    w->Tag(kCkptTag);
    state_.SaveTo(w);
    child_->SaveState(w);
  }
  bool RestoreState(OpStateReader* r) override {
    return r->Tag(kCkptTag) && state_.RestoreFrom(r) &&
           child_->RestoreState(r);
  }

 private:
  static constexpr uint8_t kCkptTag = 0xA1;

  void Fill();
  // Re-syncs the shared cache-byte counter with the window's current
  // footprint; false (with the degradation signal raised) when the
  // cache-memory budget is exceeded.
  bool SyncCacheBytes();

  SeqOpPtr child_;
  SeqOpPtr carry_;
  AggFunc func_;
  size_t col_index_;
  TypeId col_type_;
  int64_t window_;
  Span required_;
  ExecContext* ctx_ = nullptr;

  WindowState state_;
  int64_t cache_footprint_ = 0;  // approx bytes charged for state_
  std::optional<PosRecord> pending_;
  bool child_done_ = false;
  Position next_pos_ = 0;
  BatchInput input_;
};

/// Running (prefix) aggregate: agg over all inputs at positions <= i.
/// Dense output from the first input record onward. Stream-only; probed
/// plans materialize via MaterializedAggOp.
class RunningAggOp : public SeqOp {
 public:
  RunningAggOp(SeqOpPtr child, AggFunc func, size_t col_index,
               TypeId col_type, Span required)
      : child_(std::move(child)),
        func_(func),
        col_index_(col_index),
        col_type_(col_type),
        required_(required),
        state_(func, col_type) {}

  Status Open(ExecContext* ctx) override;
  std::optional<PosRecord> Next() override;
  std::optional<PosRecord> NextAtOrAfter(Position p) override;
  size_t NextBatch(RecordBatch* out) override;
  void Close() override { child_->Close(); }

  /// Morsel carry-in: a clone of the input clipped to the whole prefix
  /// before this clone's first output position, folded (uncharged) into
  /// the running state at Open. See WindowAggCachedOp::set_carry.
  void set_carry(SeqOpPtr carry) { carry_ = std::move(carry); }

  /// Checkpoint state: the running accumulators verbatim (see
  /// WindowAggCachedOp::SaveState).
  void SaveState(OpStateWriter* w) const override {
    w->Tag(kCkptTag);
    state_.SaveTo(w);
    child_->SaveState(w);
  }
  bool RestoreState(OpStateReader* r) override {
    return r->Tag(kCkptTag) && state_.RestoreFrom(r) &&
           child_->RestoreState(r);
  }

 private:
  static constexpr uint8_t kCkptTag = 0xA2;

  SeqOpPtr child_;
  SeqOpPtr carry_;
  AggFunc func_;
  size_t col_index_;
  TypeId col_type_;
  Span required_;
  ExecContext* ctx_ = nullptr;

  WindowState state_;
  std::optional<PosRecord> pending_;
  bool child_done_ = false;
  Position next_pos_ = 0;
  BatchInput input_;
};

/// Whole-sequence aggregate (the paper's "agg_pos always true" case): one
/// pass over the input at Open, then the same value at every position.
/// Stream-only; probed plans materialize via MaterializedAggOp.
class OverallAggOp : public SeqOp {
 public:
  OverallAggOp(SeqOpPtr child, AggFunc func, size_t col_index,
               TypeId col_type, Span required)
      : child_(std::move(child)),
        func_(func),
        col_index_(col_index),
        col_type_(col_type),
        required_(required) {}

  Status Open(ExecContext* ctx) override;
  std::optional<PosRecord> Next() override;
  std::optional<PosRecord> NextAtOrAfter(Position p) override {
    if (p > next_pos_) next_pos_ = p;
    return Next();
  }
  size_t NextBatch(RecordBatch* out) override;
  void Close() override { child_->Close(); }

 private:
  SeqOpPtr child_;
  AggFunc func_;
  size_t col_index_;
  TypeId col_type_;
  Span required_;
  ExecContext* ctx_ = nullptr;

  std::optional<Value> value_;
  Position next_pos_ = 0;
};

/// Naive trailing-window aggregate over a probed child: every requested
/// position probes the entire window of the input (§4.1.2: "the probed
/// access cost of the input sequence multiplied by the size of the
/// operator scope"). Serves both modes — probed access aggregates the
/// window at the requested position; stream access (the Fig. 5.A
/// baseline) walks every position of the required range, re-probing the
/// whole window each time. Each probe is backtracking (window start < p),
/// so this operator's CHILD is a non-monotone probe consumer.
class WindowAggNaiveOp : public SeqOp {
 public:
  WindowAggNaiveOp(SeqOpPtr child, AggFunc func, size_t col_index,
                   TypeId col_type, int64_t window, Span required)
      : child_(std::move(child)),
        func_(func),
        col_index_(col_index),
        col_type_(col_type),
        window_(window),
        required_(required) {}

  Status Open(ExecContext* ctx) override {
    SEQ_RETURN_IF_ERROR(ctx->PollOpenFault("WindowAgg(naive)"));
    ctx_ = ctx;
    next_pos_ = required_.start;
    return child_->Open(ctx);
  }
  std::optional<PosRecord> Next() override;
  std::optional<PosRecord> NextAtOrAfter(Position p) override {
    if (p > next_pos_) next_pos_ = p;
    return Next();
  }
  size_t NextBatch(RecordBatch* out) override;
  std::optional<Record> Probe(Position p) override;
  size_t ProbeBatch(std::span<const Position> positions,
                    RecordBatch* out) override;
  void Close() override { child_->Close(); }

 private:
  // Aggregates the window ending at p, counting one agg step per input
  // found into *steps; the caller charges steps and the compute.
  std::optional<Value> WindowAt(Position p, int64_t* steps);

  SeqOpPtr child_;
  AggFunc func_;
  size_t col_index_;
  TypeId col_type_;
  int64_t window_;
  Span required_;
  ExecContext* ctx_ = nullptr;
  Position next_pos_ = 0;
};

/// Probed-mode running/overall aggregate: materializes the aggregate by
/// one stream pass of the input on Open, then serves probes by lookup
/// (§5.3's materialization option). Probe-only.
class MaterializedAggOp : public SeqOp {
 public:
  MaterializedAggOp(SeqOpPtr child, AggFunc func, size_t col_index,
                    TypeId col_type, WindowKind kind, Span out_span)
      : child_(std::move(child)),
        func_(func),
        col_index_(col_index),
        col_type_(col_type),
        kind_(kind),
        out_span_(out_span) {}

  Status Open(ExecContext* ctx) override;
  std::optional<Record> Probe(Position p) override;
  size_t ProbeBatch(std::span<const Position> positions,
                    RecordBatch* out) override;
  void Close() override { child_->Close(); }

 private:
  // Checkpoint lookup without charging; nullptr at an empty position.
  const Value* Lookup(Position p) const;

  SeqOpPtr child_;
  AggFunc func_;
  size_t col_index_;
  TypeId col_type_;
  WindowKind kind_;
  Span out_span_;
  ExecContext* ctx_ = nullptr;

  // (input position, running value) checkpoints; probe = greatest <= p.
  std::vector<std::pair<Position, Value>> checkpoints_;
};

}  // namespace seq

#endif  // SEQ_EXEC_AGG_OPS_H_
