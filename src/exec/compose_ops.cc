#include "exec/compose_ops.h"

#include <utility>

namespace seq {
namespace {

/// Assembles a join output record by moving the consumed input values —
/// both sides are dead after the call, so no Value (and in particular no
/// std::string payload) is copied.
Record Combine(Record&& left, Record&& right) {
  Record out;
  out.reserve(left.size() + right.size());
  for (Value& v : left) out.push_back(std::move(v));
  for (Value& v : right) out.push_back(std::move(v));
  return out;
}

/// Batch-path variant: assembles the join row directly into a batch slot,
/// reusing the slot's value buffer.
void CombineInto(Record* dst, Record& first, Record& second) {
  dst->resize(first.size() + second.size());
  size_t k = 0;
  for (Value& v : first) (*dst)[k++] = std::move(v);
  for (Value& v : second) (*dst)[k++] = std::move(v);
}

}  // namespace

// --- ComposeLockstepOp ------------------------------------------------------

Status ComposeLockstepOp::Open(ExecContext* ctx) {
  SEQ_RETURN_IF_ERROR(ctx->PollOpenFault("Compose(lockstep)"));
  ctx_ = ctx;
  done_ = false;
  l_.reset();
  r_.reset();
  if (predicate_ != nullptr) {
    SEQ_ASSIGN_OR_RETURN(
        CompiledExpr compiled,
        CompiledExpr::CompilePredicate(predicate_, *out_schema_));
    compiled_ = std::move(compiled);
  }
  SEQ_RETURN_IF_ERROR(left_->Open(ctx));
  return right_->Open(ctx);
}

std::optional<PosRecord> ComposeLockstepOp::Advance(
    const Position* at_or_after) {
  if (done_) return std::nullopt;
  // Refresh or re-seek the two pending records.
  if (at_or_after != nullptr) {
    if (!l_.has_value() || l_->pos < *at_or_after) {
      l_ = left_->NextAtOrAfter(*at_or_after);
    }
    if (!r_.has_value() || r_->pos < *at_or_after) {
      r_ = right_->NextAtOrAfter(*at_or_after);
    }
  } else {
    if (!l_.has_value()) l_ = left_->Next();
    if (!r_.has_value()) r_ = right_->Next();
  }
  while (l_.has_value() && r_.has_value()) {
    if (ctx_->failed()) {
      done_ = true;
      return std::nullopt;
    }
    if (l_->pos < r_->pos) {
      l_ = left_->NextAtOrAfter(r_->pos);
    } else if (r_->pos < l_->pos) {
      r_ = right_->NextAtOrAfter(l_->pos);
    } else {
      Position pos = l_->pos;
      Record combined = Combine(std::move(l_->rec), std::move(r_->rec));
      l_.reset();
      r_.reset();
      bool pass = true;
      if (compiled_.has_value()) {
        ctx_->ChargePredicate(/*join=*/true);
        if (ctx_->PollFaultRaise(FaultSite::kExprEval, "Compose(lockstep)",
                                 pos)) {
          done_ = true;
          return std::nullopt;
        }
        pass = compiled_->EvalBool(combined, pos);
      }
      if (pass) {
        ctx_->ChargeCompute();
        return PosRecord{pos, std::move(combined)};
      }
      l_ = left_->Next();
      r_ = right_->Next();
    }
  }
  done_ = true;
  return std::nullopt;
}

// --- ComposeStreamProbeOp ---------------------------------------------------

Status ComposeStreamProbeOp::Open(ExecContext* ctx) {
  SEQ_RETURN_IF_ERROR(ctx->PollOpenFault("Compose(stream-probe)"));
  ctx_ = ctx;
  if (predicate_ != nullptr) {
    SEQ_ASSIGN_OR_RETURN(
        CompiledExpr compiled,
        CompiledExpr::CompilePredicate(predicate_, *out_schema_));
    compiled_ = std::move(compiled);
    compiled_->InitScratch(&scratch_);
  }
  SEQ_RETURN_IF_ERROR(driver_->Open(ctx));
  return other_->Open(ctx);
}

std::optional<PosRecord> ComposeStreamProbeOp::TryJoin(PosRecord d) {
  std::optional<Record> o = other_->Probe(d.pos);
  if (!o.has_value() || ctx_->failed()) return std::nullopt;
  Record combined = driver_is_left_
                        ? Combine(std::move(d.rec), std::move(*o))
                        : Combine(std::move(*o), std::move(d.rec));
  if (compiled_.has_value()) {
    ctx_->ChargePredicate(/*join=*/true);
    if (ctx_->PollFaultRaise(FaultSite::kExprEval, "Compose(stream-probe)",
                             d.pos)) {
      return std::nullopt;
    }
    if (!compiled_->EvalBool(combined, d.pos)) return std::nullopt;
  }
  ctx_->ChargeCompute();
  return PosRecord{d.pos, std::move(combined)};
}

std::optional<PosRecord> ComposeStreamProbeOp::Next() {
  while (true) {
    std::optional<PosRecord> d = driver_->Next();
    if (!d.has_value() || ctx_->failed()) return std::nullopt;
    std::optional<PosRecord> joined = TryJoin(std::move(*d));
    if (joined.has_value()) return joined;
  }
}

std::optional<PosRecord> ComposeStreamProbeOp::NextAtOrAfter(Position p) {
  std::optional<PosRecord> d = driver_->NextAtOrAfter(p);
  while (d.has_value() && !ctx_->failed()) {
    std::optional<PosRecord> joined = TryJoin(std::move(*d));
    if (joined.has_value()) return joined;
    d = driver_->Next();
  }
  return std::nullopt;
}

size_t ComposeStreamProbeOp::NextBatch(RecordBatch* out) {
  out->Clear();
  if (driver_batch_ == nullptr) {
    driver_batch_ = std::make_unique<RecordBatch>(out->capacity());
    probe_batch_ = std::make_unique<RecordBatch>(out->capacity());
  }
  // Tuple parity: the other side is probed at EVERY driver position (a
  // probe miss charges inside the child, exactly as Probe would); the join
  // predicate is charged once per positional match, compute once per
  // passing row. A batch whose matches are all rejected just pulls the
  // next driver batch, so 0 still means end of stream.
  while (true) {
    size_t n = driver_->NextBatch(driver_batch_.get());
    if (n == 0 || ctx_->failed()) return 0;
    positions_.resize(n);
    for (size_t i = 0; i < n; ++i) positions_[i] = driver_batch_->pos(i);
    size_t m = other_->ProbeBatch(positions_, probe_batch_.get());
    if (ctx_->failed()) return 0;
    int64_t hits = 0;
    int64_t passed = 0;
    size_t j = 0;
    for (size_t i = 0; i < n && j < m; ++i) {
      Position p = driver_batch_->pos(i);
      if (probe_batch_->pos(j) != p) continue;  // miss: hits are a subset
      Record& d = driver_batch_->rec(i);
      Record& o = probe_batch_->rec(j);
      ++j;
      ++hits;
      Record& dst = out->Append(p);
      if (driver_is_left_) {
        CombineInto(&dst, d, o);
      } else {
        CombineInto(&dst, o, d);
      }
      if (compiled_.has_value()) {
        if (ctx_->PollFaultRaise(FaultSite::kExprEval,
                                 "Compose(stream-probe)", p)) {
          out->Truncate(out->size() - 1);
          break;
        }
        if (!compiled_->EvalBoolFlat(dst, p, &scratch_)) {
          out->Truncate(out->size() - 1);
          continue;
        }
      }
      ++passed;
    }
    if (compiled_.has_value()) ctx_->ChargePredicates(/*join=*/true, hits);
    ctx_->ChargeComputeN(passed);
    if (ctx_->failed()) return 0;
    if (out->size() > 0) return out->size();
  }
}

// --- ComposeProbeBothOp -----------------------------------------------------

Status ComposeProbeBothOp::Open(ExecContext* ctx) {
  SEQ_RETURN_IF_ERROR(ctx->PollOpenFault("Compose(probe-both)"));
  ctx_ = ctx;
  if (predicate_ != nullptr) {
    SEQ_ASSIGN_OR_RETURN(
        CompiledExpr compiled,
        CompiledExpr::CompilePredicate(predicate_, *out_schema_));
    compiled_ = std::move(compiled);
    compiled_->InitScratch(&scratch_);
  }
  SEQ_RETURN_IF_ERROR(left_->Open(ctx));
  return right_->Open(ctx);
}

std::optional<Record> ComposeProbeBothOp::Probe(Position p) {
  std::optional<Record> l;
  std::optional<Record> r;
  if (probe_left_first_) {
    l = left_->Probe(p);
    if (!l.has_value()) return std::nullopt;
    r = right_->Probe(p);
    if (!r.has_value()) return std::nullopt;
  } else {
    r = right_->Probe(p);
    if (!r.has_value()) return std::nullopt;
    l = left_->Probe(p);
    if (!l.has_value()) return std::nullopt;
  }
  if (ctx_->failed()) return std::nullopt;
  Record combined = Combine(std::move(*l), std::move(*r));
  if (compiled_.has_value()) {
    ctx_->ChargePredicate(/*join=*/true);
    if (ctx_->PollFaultRaise(FaultSite::kExprEval, "Compose(probe-both)",
                             p)) {
      return std::nullopt;
    }
    if (!compiled_->EvalBool(combined, p)) return std::nullopt;
  }
  ctx_->ChargeCompute();
  return combined;
}

size_t ComposeProbeBothOp::ProbeBatch(std::span<const Position> positions,
                                      RecordBatch* out) {
  out->Clear();
  if (batch_a_ == nullptr) {
    batch_a_ = std::make_unique<RecordBatch>(out->capacity());
    batch_b_ = std::make_unique<RecordBatch>(out->capacity());
  }
  SeqOp* first = probe_left_first_ ? left_.get() : right_.get();
  SeqOp* second = probe_left_first_ ? right_.get() : left_.get();
  // Short-circuit parity: the second side is probed only at the first
  // side's hit positions, exactly like the tuple path.
  size_t na = first->ProbeBatch(positions, batch_a_.get());
  if (na == 0 || ctx_->failed()) return 0;
  positions2_.resize(na);
  for (size_t i = 0; i < na; ++i) positions2_[i] = batch_a_->pos(i);
  size_t nb = second->ProbeBatch(positions2_, batch_b_.get());
  if (ctx_->failed()) return 0;
  int64_t both = 0;
  int64_t passed = 0;
  size_t j = 0;
  for (size_t i = 0; i < na && j < nb; ++i) {
    Position p = batch_a_->pos(i);
    if (batch_b_->pos(j) != p) continue;  // second side missed
    Record& a = batch_a_->rec(i);
    Record& b = batch_b_->rec(j);
    ++j;
    ++both;
    Record& dst = out->Append(p);
    if (probe_left_first_) {
      CombineInto(&dst, a, b);
    } else {
      CombineInto(&dst, b, a);
    }
    if (compiled_.has_value()) {
      if (ctx_->PollFaultRaise(FaultSite::kExprEval, "Compose(probe-both)",
                               p)) {
        out->Truncate(out->size() - 1);
        break;
      }
      if (!compiled_->EvalBoolFlat(dst, p, &scratch_)) {
        out->Truncate(out->size() - 1);
        continue;
      }
    }
    ++passed;
  }
  if (compiled_.has_value()) ctx_->ChargePredicates(/*join=*/true, both);
  ctx_->ChargeComputeN(passed);
  if (ctx_->failed()) return 0;
  return out->size();
}

}  // namespace seq
