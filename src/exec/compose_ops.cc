#include "exec/compose_ops.h"

#include <utility>

namespace seq {
namespace {

/// Assembles a join output record by moving the consumed input values —
/// both sides are dead after the call, so no Value (and in particular no
/// std::string payload) is copied.
Record Combine(Record&& left, Record&& right) {
  Record out;
  out.reserve(left.size() + right.size());
  for (Value& v : left) out.push_back(std::move(v));
  for (Value& v : right) out.push_back(std::move(v));
  return out;
}

}  // namespace

// --- ComposeLockstepStream --------------------------------------------------

Status ComposeLockstepStream::Open(ExecContext* ctx) {
  ctx_ = ctx;
  done_ = false;
  l_.reset();
  r_.reset();
  if (predicate_ != nullptr) {
    SEQ_ASSIGN_OR_RETURN(
        CompiledExpr compiled,
        CompiledExpr::CompilePredicate(predicate_, *out_schema_));
    compiled_ = std::move(compiled);
  }
  SEQ_RETURN_IF_ERROR(left_->Open(ctx));
  return right_->Open(ctx);
}

std::optional<PosRecord> ComposeLockstepStream::Advance(
    const Position* at_or_after) {
  if (done_) return std::nullopt;
  // Refresh or re-seek the two pending records.
  if (at_or_after != nullptr) {
    if (!l_.has_value() || l_->pos < *at_or_after) {
      l_ = left_->NextAtOrAfter(*at_or_after);
    }
    if (!r_.has_value() || r_->pos < *at_or_after) {
      r_ = right_->NextAtOrAfter(*at_or_after);
    }
  } else {
    if (!l_.has_value()) l_ = left_->Next();
    if (!r_.has_value()) r_ = right_->Next();
  }
  while (l_.has_value() && r_.has_value()) {
    if (l_->pos < r_->pos) {
      l_ = left_->NextAtOrAfter(r_->pos);
    } else if (r_->pos < l_->pos) {
      r_ = right_->NextAtOrAfter(l_->pos);
    } else {
      Position pos = l_->pos;
      Record combined = Combine(std::move(l_->rec), std::move(r_->rec));
      l_.reset();
      r_.reset();
      bool pass = true;
      if (compiled_.has_value()) {
        ctx_->ChargePredicate(/*join=*/true);
        pass = compiled_->EvalBool(combined, pos);
      }
      if (pass) {
        ctx_->ChargeCompute();
        return PosRecord{pos, std::move(combined)};
      }
      l_ = left_->Next();
      r_ = right_->Next();
    }
  }
  done_ = true;
  return std::nullopt;
}

// --- ComposeStreamProbe -----------------------------------------------------

Status ComposeStreamProbe::Open(ExecContext* ctx) {
  ctx_ = ctx;
  if (predicate_ != nullptr) {
    SEQ_ASSIGN_OR_RETURN(
        CompiledExpr compiled,
        CompiledExpr::CompilePredicate(predicate_, *out_schema_));
    compiled_ = std::move(compiled);
  }
  SEQ_RETURN_IF_ERROR(driver_->Open(ctx));
  return other_->Open(ctx);
}

std::optional<PosRecord> ComposeStreamProbe::TryJoin(PosRecord d) {
  std::optional<Record> o = other_->Probe(d.pos);
  if (!o.has_value()) return std::nullopt;
  Record combined = driver_is_left_
                        ? Combine(std::move(d.rec), std::move(*o))
                        : Combine(std::move(*o), std::move(d.rec));
  if (compiled_.has_value()) {
    ctx_->ChargePredicate(/*join=*/true);
    if (!compiled_->EvalBool(combined, d.pos)) return std::nullopt;
  }
  ctx_->ChargeCompute();
  return PosRecord{d.pos, std::move(combined)};
}

std::optional<PosRecord> ComposeStreamProbe::Next() {
  while (true) {
    std::optional<PosRecord> d = driver_->Next();
    if (!d.has_value()) return std::nullopt;
    std::optional<PosRecord> joined = TryJoin(std::move(*d));
    if (joined.has_value()) return joined;
  }
}

std::optional<PosRecord> ComposeStreamProbe::NextAtOrAfter(Position p) {
  std::optional<PosRecord> d = driver_->NextAtOrAfter(p);
  while (d.has_value()) {
    std::optional<PosRecord> joined = TryJoin(std::move(*d));
    if (joined.has_value()) return joined;
    d = driver_->Next();
  }
  return std::nullopt;
}

// --- ComposeProbeBoth -------------------------------------------------------

Status ComposeProbeBoth::Open(ExecContext* ctx) {
  ctx_ = ctx;
  if (predicate_ != nullptr) {
    SEQ_ASSIGN_OR_RETURN(
        CompiledExpr compiled,
        CompiledExpr::CompilePredicate(predicate_, *out_schema_));
    compiled_ = std::move(compiled);
  }
  SEQ_RETURN_IF_ERROR(left_->Open(ctx));
  return right_->Open(ctx);
}

std::optional<Record> ComposeProbeBoth::Probe(Position p) {
  std::optional<Record> l;
  std::optional<Record> r;
  if (probe_left_first_) {
    l = left_->Probe(p);
    if (!l.has_value()) return std::nullopt;
    r = right_->Probe(p);
    if (!r.has_value()) return std::nullopt;
  } else {
    r = right_->Probe(p);
    if (!r.has_value()) return std::nullopt;
    l = left_->Probe(p);
    if (!l.has_value()) return std::nullopt;
  }
  Record combined = Combine(std::move(*l), std::move(*r));
  if (compiled_.has_value()) {
    ctx_->ChargePredicate(/*join=*/true);
    if (!compiled_->EvalBool(combined, p)) return std::nullopt;
  }
  ctx_->ChargeCompute();
  return combined;
}

}  // namespace seq
