#include "exec/scheduler.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <thread>

#include "obs/metrics.h"

namespace seq {

const char* QueryPriorityName(QueryPriority priority) {
  switch (priority) {
    case QueryPriority::kLow:
      return "low";
    case QueryPriority::kNormal:
      return "normal";
    case QueryPriority::kHigh:
      return "high";
  }
  return "unknown";
}

int ValidatedEnvInt(const char* name, int min_value, int fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  constexpr long kMax = 1 << 20;  // far beyond any sane thread/query count
  if (errno != 0 || end == env || *end != '\0' || v < min_value || v > kMax) {
    std::cerr << "seq: ignoring invalid " << name << "='" << env
              << "' (expected an integer in [" << min_value << ", " << kMax
              << "]); using " << fallback << "\n";
    return fallback;
  }
  return static_cast<int>(v);
}

int DefaultSchedWorkers() {
  static const int kWorkers = [] {
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    return ValidatedEnvInt("SEQ_SCHED_WORKERS", 1, hw > 0 ? hw : 4);
  }();
  return kWorkers;
}

/// One parallel query's unit of scheduling: a run-this-index closure plus
/// FIFO claim/completion counters, all guarded by the scheduler mutex
/// (claims are one counter bump per morsel — noise next to a morsel's
/// >= 256 positions of work).
struct QueryScheduler::TaskGroup {
  std::function<void(size_t)> run;
  size_t n_tasks = 0;
  size_t next = 0;  ///< next unclaimed task index (FIFO)
  size_t done = 0;
  int active = 0;  ///< workers currently inside run()
  int share_cap = 1;
  int priority = static_cast<int>(QueryPriority::kNormal);
  uint64_t arrival = 0;
  std::condition_variable done_cv;

  bool runnable() const { return next < n_tasks && active < share_cap; }
};

/// One query waiting for an admission slot. Stack-allocated in Admit;
/// stays in the wait queue only while its owner blocks there, so raw
/// pointers are safe.
struct QueryScheduler::Waiter {
  int priority = static_cast<int>(QueryPriority::kNormal);
  uint64_t arrival = 0;
  bool granted = false;
};

/// One registered checkpoint-capable runner. The token is shared with the
/// runner's Preemption handle (and through it with the executor's chunk
/// loop), so a fired request stays visible after unregistration.
struct QueryScheduler::PreemptEntry {
  std::shared_ptr<std::atomic<bool>> token;
  int priority = static_cast<int>(QueryPriority::kNormal);
  uint64_t id = 0;
};

QueryScheduler::QueryScheduler()
    : target_workers_(DefaultSchedWorkers()),
      max_running_(std::max(2 * DefaultSchedWorkers(), 8)),
      max_queued_(256) {}

QueryScheduler::~QueryScheduler() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_ = true;
  worker_cv_.notify_all();
  // Workers release mu_ as their last touch of this object before thread
  // exit, and exit_cv_'s wait reacquires it — so once live_workers_ reads
  // zero here, no worker can reference the scheduler again.
  exit_cv_.wait(lock, [this] { return live_workers_ == 0; });
}

QueryScheduler& QueryScheduler::Global() {
  static QueryScheduler* scheduler = new QueryScheduler();
  return *scheduler;
}

QueryScheduler::Admission& QueryScheduler::Admission::operator=(
    Admission&& other) noexcept {
  if (this != &other) {
    Release();
    scheduler_ = other.scheduler_;
    queue_wait_us_ = other.queue_wait_us_;
    other.scheduler_ = nullptr;
  }
  return *this;
}

void QueryScheduler::Admission::Release() {
  if (scheduler_ != nullptr) {
    scheduler_->ReleaseSlot();
    scheduler_ = nullptr;
  }
}

Result<QueryScheduler::Admission> QueryScheduler::Admit(
    const AdmitRequest& request) {
  // Hot metric objects resolved once; the registries are leaked process
  // singletons, so the references never dangle.
  static MetricCounter& admitted_metric =
      MetricsRegistry::Global().Counter("sched.admitted");
  static MetricCounter& queued_metric =
      MetricsRegistry::Global().Counter("sched.queued");
  static MetricCounter& rejected_full_metric =
      MetricsRegistry::Global().Counter("sched.rejected_queue_full");
  static MetricCounter& rejected_timeout_metric =
      MetricsRegistry::Global().Counter("sched.rejected_timeout");
  static Histogram& wait_hist =
      MetricsRegistry::Global().GetHistogram("sched.queue_wait_us");

  const auto enter = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(mu_);
  if (max_running_ <= 0 || running_ < max_running_) {
    ++running_;
    peak_running_ = std::max(peak_running_, running_);
    ++admitted_;
    lock.unlock();
    admitted_metric.Add();
    wait_hist.Record(0.0);
    return Admission(this, 0);
  }

  if (wait_queue_.size() >= max_queued_) {
    ++rejected_queue_full_;
    std::ostringstream oss;
    oss << "scheduler admission queue is full (" << wait_queue_.size()
        << " queued, limit " << max_queued_ << "; running " << running_ << "/"
        << max_running_ << ")";
    lock.unlock();
    rejected_full_metric.Add();
    return Status::ResourceExhausted(oss.str());
  }

  Waiter waiter;
  waiter.priority = static_cast<int>(request.priority);
  waiter.arrival = next_arrival_++;
  wait_queue_.push_back(&waiter);
  ++queued_total_;
  queued_metric.Add();
  // Queue pressure: ask a lower-priority checkpointable runner to park
  // itself so this waiter's class makes progress.
  RequestPreemptionLocked(waiter.priority);

  std::optional<std::chrono::steady_clock::time_point> timeout_at;
  int64_t effective_timeout_ms = 0;
  if (request.timeout_ms > 0) {
    effective_timeout_ms = request.timeout_ms;
  } else if (request.timeout_ms == 0 && default_timeout_ms_ > 0) {
    effective_timeout_ms = default_timeout_ms_;
  }
  if (effective_timeout_ms > 0) {
    timeout_at = enter + std::chrono::milliseconds(effective_timeout_ms);
  }

  // Wait for a grant, polling cancellation / deadlines about every
  // millisecond. Every decision below is made while holding the mutex, so
  // a grant cannot race an abandonment: whoever gets the lock first wins.
  Status failure;
  bool timed_out = false;
  while (!waiter.granted) {
    admit_cv_.wait_for(lock, std::chrono::milliseconds(1),
                       [&] { return waiter.granted; });
    if (waiter.granted) break;
    const auto now = std::chrono::steady_clock::now();
    if (request.cancel != nullptr &&
        request.cancel->load(std::memory_order_relaxed)) {
      failure = Status::Cancelled("query cancelled by driver");
      break;
    }
    if (request.deadline.has_value() && now >= *request.deadline) {
      failure = Status::DeadlineExceeded(
          "query exceeded wall-clock budget while queued for admission");
      break;
    }
    if (timeout_at.has_value() && now >= *timeout_at) {
      timed_out = true;
      break;
    }
  }

  if (!waiter.granted) {
    wait_queue_.erase(
        std::find(wait_queue_.begin(), wait_queue_.end(), &waiter));
    if (timed_out) {
      ++rejected_timeout_;
      std::ostringstream oss;
      oss << "scheduler admission timed out after " << effective_timeout_ms
          << "ms (running " << running_ << "/" << max_running_ << ", "
          << wait_queue_.size() << " still queued)";
      failure = Status::ResourceExhausted(oss.str());
    }
    lock.unlock();
    if (timed_out) rejected_timeout_metric.Add();
    return failure;
  }

  // Granted: GrantSlotsLocked already took the running slot on our behalf.
  ++admitted_;
  const int64_t waited_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - enter)
          .count();
  lock.unlock();
  admitted_metric.Add();
  wait_hist.Record(static_cast<double>(waited_us));
  return Admission(this, waited_us);
}

void QueryScheduler::ReleaseSlot() {
  std::lock_guard<std::mutex> lock(mu_);
  --running_;
  GrantSlotsLocked();
}

QueryScheduler::Preemption& QueryScheduler::Preemption::operator=(
    Preemption&& other) noexcept {
  if (this != &other) {
    Release();
    scheduler_ = other.scheduler_;
    token_ = std::move(other.token_);
    id_ = other.id_;
    other.scheduler_ = nullptr;
    other.token_.reset();
  }
  return *this;
}

void QueryScheduler::Preemption::Release() {
  if (scheduler_ != nullptr) {
    scheduler_->UnregisterPreemptible(id_);
    scheduler_ = nullptr;
    token_.reset();
  }
}

QueryScheduler::Preemption QueryScheduler::RegisterPreemptible(
    QueryPriority priority) {
  Preemption handle;
  std::lock_guard<std::mutex> lock(mu_);
  PreemptEntry entry;
  entry.token = std::make_shared<std::atomic<bool>>(false);
  entry.priority = static_cast<int>(priority);
  entry.id = next_preempt_id_++;
  handle.scheduler_ = this;
  handle.token_ = entry.token;
  handle.id_ = entry.id;
  preemptible_.push_back(std::move(entry));
  return handle;
}

void QueryScheduler::UnregisterPreemptible(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = preemptible_.begin(); it != preemptible_.end(); ++it) {
    if (it->id == id) {
      preemptible_.erase(it);
      return;
    }
  }
}

void QueryScheduler::RequestPreemptionLocked(int waiter_priority) {
  static MetricCounter& suspend_metric =
      MetricsRegistry::Global().Counter("sched.suspend_requests");
  PreemptEntry* victim = nullptr;
  for (auto& entry : preemptible_) {
    if (entry.priority >= waiter_priority) continue;  // strictly lower only
    if (entry.token->load(std::memory_order_relaxed)) continue;  // asked
    if (victim == nullptr || entry.priority < victim->priority ||
        (entry.priority == victim->priority && entry.id < victim->id)) {
      victim = &entry;
    }
  }
  if (victim == nullptr) return;
  victim->token->store(true, std::memory_order_release);
  ++suspend_requests_;
  suspend_metric.Add();
}

void QueryScheduler::GrantSlotsLocked() {
  bool granted_any = false;
  while (!wait_queue_.empty() &&
         (max_running_ <= 0 || running_ < max_running_)) {
    auto best = std::min_element(
        wait_queue_.begin(), wait_queue_.end(),
        [](const Waiter* a, const Waiter* b) {
          if (a->priority != b->priority) return a->priority > b->priority;
          return a->arrival < b->arrival;  // FIFO within the class
        });
    (*best)->granted = true;
    wait_queue_.erase(best);
    ++running_;
    peak_running_ = std::max(peak_running_, running_);
    granted_any = true;
  }
  if (granted_any) admit_cv_.notify_all();
}

void QueryScheduler::RunGroup(size_t n_tasks, int share_cap,
                              QueryPriority priority,
                              const std::function<void(size_t)>& task,
                              const std::function<void()>& poll) {
  if (n_tasks == 0) return;
  auto group = std::make_shared<TaskGroup>();
  group->run = task;
  group->n_tasks = n_tasks;
  group->share_cap = std::max(share_cap, 1);
  group->priority = static_cast<int>(priority);

  std::unique_lock<std::mutex> lock(mu_);
  group->arrival = next_arrival_++;
  ++groups_total_;
  groups_.push_back(group);
  EnsureWorkersLocked();
  worker_cv_.notify_all();

  if (!poll) {
    group->done_cv.wait(lock, [&] { return group->done == group->n_tasks; });
    return;
  }
  // Wait/poll loop with the completion predicate re-checked before every
  // re-arm (the old ThreadPool::Wait kept waking — and polling — every
  // millisecond after its pending count hit zero mid-wait). The poll
  // callback forwards the caller's cancellation flag to workers deep
  // inside a blocking operator; it must stop the instant the group
  // finishes so a completed query never observes a stale cancel.
  while (group->done < group->n_tasks) {
    group->done_cv.wait_for(lock, std::chrono::milliseconds(1),
                            [&] { return group->done == group->n_tasks; });
    if (group->done == group->n_tasks) break;
    lock.unlock();
    poll();
    lock.lock();
  }
}

void QueryScheduler::EnsureWorkersLocked() {
  while (live_workers_ < target_workers_) {
    ++live_workers_;  // counted before spawn so a burst cannot overspawn
    std::thread([this] { WorkerLoop(); }).detach();
  }
}

bool QueryScheduler::HasRunnableLocked() const {
  for (const auto& group : groups_) {
    if (group->runnable()) return true;
  }
  return false;
}

std::shared_ptr<QueryScheduler::TaskGroup> QueryScheduler::PickLocked() {
  int best_priority = -1;
  for (const auto& group : groups_) {
    if (group->runnable()) {
      best_priority = std::max(best_priority, group->priority);
    }
  }
  if (best_priority < 0) return nullptr;
  const size_t n = groups_.size();
  for (size_t k = 0; k < n; ++k) {
    const size_t i = (rr_cursor_ + k) % n;
    if (groups_[i]->priority == best_priority && groups_[i]->runnable()) {
      rr_cursor_ = (i + 1) % n;  // next pick starts past this query: fair RR
      return groups_[i];
    }
  }
  return nullptr;
}

void QueryScheduler::WorkerLoop() {
  static MetricCounter& tasks_metric =
      MetricsRegistry::Global().Counter("sched.tasks");
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    worker_cv_.wait(lock, [this] {
      return shutdown_ || live_workers_ > target_workers_ ||
             HasRunnableLocked();
    });
    if (shutdown_ || live_workers_ > target_workers_) {
      // Shutting down, or the pool shrank and this worker is excess.
      if (--live_workers_ == 0) exit_cv_.notify_all();
      return;
    }
    std::shared_ptr<TaskGroup> group = PickLocked();
    if (group == nullptr) continue;
    const size_t task_index = group->next++;
    ++group->active;
    if (group->next >= group->n_tasks) {
      // Fully claimed: out of the dispatch list (completion is signalled
      // on the group's own cv; the shared_ptr keeps it alive).
      groups_.erase(std::find(groups_.begin(), groups_.end(), group));
    }
    ++active_workers_;
    peak_active_workers_ = std::max(peak_active_workers_, active_workers_);
    ++tasks_total_;
    lock.unlock();
    tasks_metric.Add();
    group->run(task_index);
    lock.lock();
    --active_workers_;
    --group->active;
    if (++group->done == group->n_tasks) {
      group->done_cv.notify_all();
    } else if (group->next < group->n_tasks) {
      // Dropping below the share cap may have made this group runnable
      // for an idle worker again.
      worker_cv_.notify_one();
    }
  }
}

void QueryScheduler::SetWorkers(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  target_workers_ = std::max(n, 1);
  if (target_workers_ < live_workers_) {
    worker_cv_.notify_all();  // excess workers exit as they come idle
  } else if (!groups_.empty()) {
    EnsureWorkersLocked();
    worker_cv_.notify_all();
  }
  // Growing an idle pool spawns nothing: workers start lazily with the
  // next parallel query.
}

int QueryScheduler::workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return target_workers_;
}

void QueryScheduler::SetMaxRunning(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  max_running_ = std::max(n, 0);
  GrantSlotsLocked();  // a raised (or removed) limit admits waiters now
}

int QueryScheduler::max_running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_running_;
}

void QueryScheduler::SetMaxQueued(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  max_queued_ = n;
}

void QueryScheduler::SetDefaultTimeoutMs(int64_t ms) {
  std::lock_guard<std::mutex> lock(mu_);
  default_timeout_ms_ = ms > 0 ? ms : 0;
}

SchedulerStats QueryScheduler::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SchedulerStats stats;
  stats.workers = target_workers_;
  stats.live_workers = live_workers_;
  stats.active_workers = active_workers_;
  stats.peak_active_workers = peak_active_workers_;
  stats.running = running_;
  stats.peak_running = peak_running_;
  stats.max_running = max_running_;
  stats.queued = wait_queue_.size();
  stats.max_queued = max_queued_;
  stats.default_timeout_ms = default_timeout_ms_;
  stats.admitted = admitted_;
  stats.queued_total = queued_total_;
  stats.rejected_queue_full = rejected_queue_full_;
  stats.rejected_timeout = rejected_timeout_;
  stats.groups = groups_total_;
  stats.tasks = tasks_total_;
  stats.preemptible = preemptible_.size();
  stats.suspend_requests = suspend_requests_;
  return stats;
}

std::string QueryScheduler::ToString() const {
  const SchedulerStats s = Stats();
  std::ostringstream oss;
  oss << "scheduler: " << s.workers << " worker(s) (" << s.live_workers
      << " live, " << s.active_workers << " active, peak "
      << s.peak_active_workers << ")\n";
  oss << "  admission: " << s.running << " running (peak " << s.peak_running
      << ", limit ";
  if (s.max_running > 0) {
    oss << s.max_running;
  } else {
    oss << "off";
  }
  oss << "), " << s.queued << " queued (limit " << s.max_queued
      << ", timeout ";
  if (s.default_timeout_ms > 0) {
    oss << s.default_timeout_ms << "ms";
  } else {
    oss << "off";
  }
  oss << ")\n";
  oss << "  totals: admitted=" << s.admitted << " (waited " << s.queued_total
      << "), rejected=" << s.rejected_queue_full << " queue-full + "
      << s.rejected_timeout << " timeout, groups=" << s.groups
      << ", tasks=" << s.tasks << "\n";
  oss << "  preemption: " << s.preemptible << " registered runner(s), "
      << s.suspend_requests << " suspend request(s)\n";
  return oss.str();
}

}  // namespace seq
