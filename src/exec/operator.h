#ifndef SEQ_EXEC_OPERATOR_H_
#define SEQ_EXEC_OPERATOR_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <utility>

#include "common/logging.h"
#include "common/status.h"
#include "exec/exec_context.h"
#include "types/record.h"
#include "types/span.h"

namespace seq {

class OpStateWriter;
class OpStateReader;

/// A physical operator. The paper's two access modes (§3.3) are the two
/// halves of one interface:
///
///  * stream access — "get the next non-Null record", in strictly
///    increasing position order, each exactly once: Next / NextAtOrAfter
///    tuple-at-a-time, NextBatch / NextBatchUpTo batch-at-a-time;
///  * probed access — "get the record at a specific position": Probe
///    one position at a time, ProbeBatch for a sorted run of positions.
///
/// Every entry point has a default adapter, so an operator implements only
/// its native mode(s): NextBatch loops Next, ProbeBatch loops Probe, and
/// the non-native mode's base entry point fails loudly (the planner never
/// drives an operator in a mode its plan shape does not support).
///
/// After Open, a stream must be driven either entirely through
/// Next()/NextAtOrAfter or entirely through NextBatch/NextBatchUpTo —
/// native batch implementations buffer child rows and do not replay them
/// to the tuple path. Probed access may likewise be driven through Probe
/// or through ProbeBatch, but not a mix of both.
class SeqOp {
 public:
  virtual ~SeqOp() = default;

  virtual Status Open(ExecContext* ctx) = 0;

  /// Next record, or nullopt at end of the operator's required range.
  /// Default: this operator does not support stream access.
  virtual std::optional<PosRecord> Next() {
    SEQ_CHECK_MSG(false, "operator does not support stream access");
    return std::nullopt;
  }

  /// Next record at position >= p. The default discards earlier records
  /// via Next(); operators whose output is dense (value offsets, running
  /// aggregates, constants) override this to jump directly, which is what
  /// makes lock-step joins against them cheap.
  virtual std::optional<PosRecord> NextAtOrAfter(Position p) {
    while (true) {
      std::optional<PosRecord> r = Next();
      if (!r.has_value() || r->pos >= p) return r;
    }
  }

  /// Batch stream access: fills `out` with the next up-to-capacity records
  /// in position order and returns the row count; 0 means end of stream.
  /// The default adapter loops Next(), so every streamable operator
  /// supports batches; the hot operators override it natively to cut
  /// per-record virtual dispatch and allocation.
  virtual size_t NextBatch(RecordBatch* out) {
    out->Clear();
    while (!out->full()) {
      std::optional<PosRecord> r = Next();
      if (!r.has_value()) break;
      out->Append(r->pos) = std::move(r->rec);
    }
    return out->size();
  }

  /// Bounded batch stream access: like NextBatch, but stops after the
  /// first record with position > `limit`, which IS included as the last
  /// row ("include-overshoot"). The overshoot makes a 0 return still mean
  /// true end of stream, and reproduces exactly the one-record look-ahead
  /// a tuple consumer performs when it pulls until it sees a position past
  /// the range it needs — which is what keeps AccessStats identical
  /// between the two driving modes for consumers (value offsets) that
  /// must not over-read their input. Once the stream is past `limit`,
  /// each call returns exactly one record: tuple cadence.
  virtual size_t NextBatchUpTo(Position limit, RecordBatch* out) {
    out->Clear();
    while (!out->full()) {
      std::optional<PosRecord> r = Next();
      if (!r.has_value()) break;
      Position p = r->pos;
      out->Append(p) = std::move(r->rec);
      if (p > limit) break;
    }
    return out->size();
  }

  /// The record at exactly `p`, or nullopt if that position is empty.
  /// Default: this operator does not support probed access.
  virtual std::optional<Record> Probe(Position) {
    SEQ_CHECK_MSG(false, "operator does not support probed access");
    return std::nullopt;
  }

  /// Batch probed access: probes each of `positions` (which must be
  /// non-decreasing and no longer than out->capacity()) and fills `out`
  /// with the HIT rows only, in input order — misses are simply absent,
  /// so out->size() <= positions.size(). The default adapter loops
  /// Probe(); native implementations amortize virtual dispatch and charge
  /// AccessStats in bulk exactly as NextBatch does.
  virtual size_t ProbeBatch(std::span<const Position> positions,
                            RecordBatch* out) {
    out->Clear();
    for (Position p : positions) {
      std::optional<Record> r = Probe(p);
      if (r.has_value()) MoveRecordValues(out->Append(p), *r);
    }
    return out->size();
  }

  virtual void Close() {}

  /// Appends this subtree's live sequential state (window contents,
  /// running-aggregate carries) to the checkpoint blob, in tree order.
  /// Pass-through operators forward to their children; stateless leaves
  /// write nothing — cursor positions are encoded by the resumed plan's
  /// clip spans, not here. Called at a chunk boundary, after the chunk
  /// drained and before Close.
  virtual void SaveState(OpStateWriter*) const {}

  /// Restores the state SaveState captured into a freshly Opened,
  /// isomorphic tree (the resumed chunk's clone, built with the carry
  /// rebuild suppressed). Returns false when the blob does not match this
  /// tree's shape — the caller surfaces that as DataLoss, never a crash.
  virtual bool RestoreState(OpStateReader*) { return true; }
};

/// Access-mode aliases kept for readability at construction sites: a
/// StreamOpPtr is a SeqOp the holder drives in stream mode, a ProbeOpPtr
/// one it probes. They are the same type — the unified interface is the
/// point — but the names document intent.
using StreamOp = SeqOp;
using ProbeOp = SeqOp;
using SeqOpPtr = std::unique_ptr<SeqOp>;
using StreamOpPtr = std::unique_ptr<SeqOp>;
using ProbeOpPtr = std::unique_ptr<SeqOp>;

/// Cursor over a child stream consumed batch-at-a-time. Batch-native
/// operators hold one of these per child: Ready() refills the internal
/// batch from the child when exhausted, pos()/rec() expose the current
/// unconsumed row, Consume() advances. The batch is allocated lazily at
/// the caller's capacity and reused for every refill.
class BatchInput {
 public:
  void Reset() {
    if (batch_ != nullptr) batch_->Clear();
    idx_ = 0;
    done_ = false;
  }

  /// Ensures a current row exists; false once the child is exhausted.
  /// When `limit` is bounded the refill uses NextBatchUpTo(limit), so the
  /// child is never pulled more than one record past `limit` — the same
  /// over-read a tuple consumer of this cursor would incur. A cursor must
  /// be driven with the same `limit` for its whole lifetime.
  bool Ready(SeqOp* child, size_t capacity, Position limit = kMaxPosition) {
    if (batch_ != nullptr && idx_ < batch_->size()) return true;
    if (done_) return false;
    if (batch_ == nullptr) batch_ = std::make_unique<RecordBatch>(capacity);
    idx_ = 0;
    size_t n = (limit == kMaxPosition) ? child->NextBatch(batch_.get())
                                       : child->NextBatchUpTo(limit,
                                                              batch_.get());
    if (n == 0) done_ = true;
    return !done_;
  }

  Position pos() const { return batch_->pos(idx_); }
  Record& rec() { return batch_->rec(idx_); }
  void Consume() { ++idx_; }

 private:
  std::unique_ptr<RecordBatch> batch_;
  size_t idx_ = 0;
  bool done_ = false;
};

}  // namespace seq

#endif  // SEQ_EXEC_OPERATOR_H_
