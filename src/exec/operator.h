#ifndef SEQ_EXEC_OPERATOR_H_
#define SEQ_EXEC_OPERATOR_H_

#include <memory>
#include <optional>

#include "common/status.h"
#include "exec/exec_context.h"
#include "types/record.h"
#include "types/span.h"

namespace seq {

/// A physical operator evaluated in stream access mode: yields its non-null
/// records in strictly increasing position order, each exactly once
/// ("get the next non-Null record", §3.3).
class StreamOp {
 public:
  virtual ~StreamOp() = default;

  virtual Status Open(ExecContext* ctx) = 0;

  /// Next record, or nullopt at end of the operator's required range.
  virtual std::optional<PosRecord> Next() = 0;

  /// Next record at position >= p. The default discards earlier records
  /// via Next(); operators whose output is dense (value offsets, running
  /// aggregates, constants) override this to jump directly, which is what
  /// makes lock-step joins against them cheap.
  virtual std::optional<PosRecord> NextAtOrAfter(Position p) {
    while (true) {
      std::optional<PosRecord> r = Next();
      if (!r.has_value() || r->pos >= p) return r;
    }
  }

  virtual void Close() {}
};

/// A physical operator evaluated in probed access mode: random access by
/// position ("get the record at a specific position", §3.3).
class ProbeOp {
 public:
  virtual ~ProbeOp() = default;

  virtual Status Open(ExecContext* ctx) = 0;

  /// The record at exactly `p`, or nullopt if that position is empty.
  virtual std::optional<Record> Probe(Position p) = 0;

  virtual void Close() {}
};

using StreamOpPtr = std::unique_ptr<StreamOp>;
using ProbeOpPtr = std::unique_ptr<ProbeOp>;

}  // namespace seq

#endif  // SEQ_EXEC_OPERATOR_H_
