#ifndef SEQ_EXEC_OPERATOR_H_
#define SEQ_EXEC_OPERATOR_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <utility>

#include "common/status.h"
#include "exec/exec_context.h"
#include "types/record.h"
#include "types/span.h"

namespace seq {

/// A physical operator evaluated in stream access mode: yields its non-null
/// records in strictly increasing position order, each exactly once
/// ("get the next non-Null record", §3.3).
class StreamOp {
 public:
  virtual ~StreamOp() = default;

  virtual Status Open(ExecContext* ctx) = 0;

  /// Next record, or nullopt at end of the operator's required range.
  virtual std::optional<PosRecord> Next() = 0;

  /// Next record at position >= p. The default discards earlier records
  /// via Next(); operators whose output is dense (value offsets, running
  /// aggregates, constants) override this to jump directly, which is what
  /// makes lock-step joins against them cheap.
  virtual std::optional<PosRecord> NextAtOrAfter(Position p) {
    while (true) {
      std::optional<PosRecord> r = Next();
      if (!r.has_value() || r->pos >= p) return r;
    }
  }

  /// Batch access path: fills `out` with the next up-to-capacity records
  /// in position order and returns the row count; 0 means end of stream.
  /// The default adapter loops Next(), so every operator supports batches;
  /// the hot operators override it natively to cut per-record virtual
  /// dispatch and allocation. After Open, a stream must be driven either
  /// entirely through Next()/NextAtOrAfter or entirely through NextBatch —
  /// native implementations buffer child rows and do not replay them to
  /// the tuple path.
  virtual size_t NextBatch(RecordBatch* out) {
    out->Clear();
    while (!out->full()) {
      std::optional<PosRecord> r = Next();
      if (!r.has_value()) break;
      out->Append(r->pos) = std::move(r->rec);
    }
    return out->size();
  }

  virtual void Close() {}
};

/// A physical operator evaluated in probed access mode: random access by
/// position ("get the record at a specific position", §3.3).
class ProbeOp {
 public:
  virtual ~ProbeOp() = default;

  virtual Status Open(ExecContext* ctx) = 0;

  /// The record at exactly `p`, or nullopt if that position is empty.
  virtual std::optional<Record> Probe(Position p) = 0;

  virtual void Close() {}
};

using StreamOpPtr = std::unique_ptr<StreamOp>;
using ProbeOpPtr = std::unique_ptr<ProbeOp>;

/// Cursor over a child stream consumed batch-at-a-time. Batch-native
/// operators hold one of these per child: Ready() refills the internal
/// batch from the child when exhausted, pos()/rec() expose the current
/// unconsumed row, Consume() advances. The batch is allocated lazily at
/// the caller's capacity and reused for every refill.
class BatchInput {
 public:
  void Reset() {
    if (batch_ != nullptr) batch_->Clear();
    idx_ = 0;
    done_ = false;
  }

  /// Ensures a current row exists; false once the child is exhausted.
  bool Ready(StreamOp* child, size_t capacity) {
    if (batch_ != nullptr && idx_ < batch_->size()) return true;
    if (done_) return false;
    if (batch_ == nullptr) batch_ = std::make_unique<RecordBatch>(capacity);
    idx_ = 0;
    if (child->NextBatch(batch_.get()) == 0) done_ = true;
    return !done_;
  }

  Position pos() const { return batch_->pos(idx_); }
  Record& rec() { return batch_->rec(idx_); }
  void Consume() { ++idx_; }

 private:
  std::unique_ptr<RecordBatch> batch_;
  size_t idx_ = 0;
  bool done_ = false;
};

}  // namespace seq

#endif  // SEQ_EXEC_OPERATOR_H_
