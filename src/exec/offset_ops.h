#ifndef SEQ_EXEC_OFFSET_OPS_H_
#define SEQ_EXEC_OFFSET_OPS_H_

#include <deque>
#include <optional>
#include <span>
#include <utility>

#include "exec/operator.h"

namespace seq {

/// Value offset (Previous/Next and general ±k) evaluated incrementally
/// with Cache-Strategy-B (§3.5, Fig. 5.B): a cache of the |l| most recent
/// input records makes out(i) an O(1) step from out(i-1), regardless of
/// how sparse the input is. Output is dense — defined at every position of
/// the required range once enough history exists — so NextAtOrAfter jumps
/// in O(1) plus input catch-up.
///
/// Both access modes run the same incremental advance:
///  * stream mode walks the required range; NextBatch pulls the child in
///    batch granularity bounded by NextBatchUpTo so the input is never
///    over-read relative to the tuple path (AccessStats parity);
///  * probed mode serves monotone non-decreasing probes — the §4.2 probed
///    discipline the executor drives (positions are validated ascending).
///    The child is consumed incrementally as probes advance; a regressing
///    probe (a non-monotone consumer the planner failed to detect) is
///    handled defensively by rewinding the child, identically in both
///    driving modes.
class ValueOffsetOp : public SeqOp {
 public:
  /// `offset` < 0: |offset|-th most recent input strictly before i;
  /// `offset` > 0: offset-th next input strictly after i.
  ValueOffsetOp(SeqOpPtr child, int64_t offset, Span required)
      : child_(std::move(child)), offset_(offset), required_(required) {}

  Status Open(ExecContext* ctx) override;
  std::optional<PosRecord> Next() override;
  std::optional<PosRecord> NextAtOrAfter(Position p) override;
  size_t NextBatch(RecordBatch* out) override;
  std::optional<Record> Probe(Position p) override;
  size_t ProbeBatch(std::span<const Position> positions,
                    RecordBatch* out) override;
  void Close() override { child_->Close(); }
  void SaveState(OpStateWriter* w) const override { child_->SaveState(w); }
  bool RestoreState(OpStateReader* r) override {
    return child_->RestoreState(r);
  }

 private:
  // Pulls the child's next record into pending_ if empty.
  void Fill();
  // Advances the incremental state to probe position `p` and returns the
  // answer record (owned by cache_), or nullptr. Counts cache stores into
  // *stores; the caller charges stores and the hit.
  const Record* ProbeStep(Position p, int64_t* stores);
  // Defensive restart for a regressed probe position.
  void RewindProbes();
  // Cache-memory accounting against QueryGuards::max_cache_bytes: charges
  // the just-pushed back() entry (false = budget exceeded, degradation
  // signal raised), releases the front() entry before eviction.
  bool ChargeCacheEntry();
  void ReleaseFrontEntry();
  void ReleaseAllEntries();

  SeqOpPtr child_;
  int64_t offset_;
  Span required_;
  ExecContext* ctx_ = nullptr;

  std::optional<PosRecord> pending_;  // next unconsumed child record
  bool child_done_ = false;
  std::deque<PosRecord> cache_;  // last |l| consumed (l<0) / lookahead (l>0)
  int64_t cache_footprint_ = 0;  // approx bytes charged for cache_
  Position next_pos_ = 0;        // next output position to consider
  BatchInput input_;             // batched child pull (stream NextBatch)
  Position last_probe_pos_ = kMinPosition;
};

/// The naive algorithm for a value offset: from every output position,
/// search backward (or forward) through the input by probing until |l|
/// non-empty positions have been found (§3.5: "repeated retrievals ...
/// and recomputation"). Serves both modes over a probed child: probed
/// access searches from the requested position; stream access (the
/// ablation plan) walks every position of the required range, searching
/// from scratch at each. Batch entry points fill loops over the same
/// search, so no per-row record allocation survives batch driving.
class ValueOffsetNaiveOp : public SeqOp {
 public:
  ValueOffsetNaiveOp(SeqOpPtr child, int64_t offset, Span required,
                     Span child_span)
      : child_(std::move(child)),
        offset_(offset),
        required_(required),
        child_span_(child_span) {}

  Status Open(ExecContext* ctx) override {
    SEQ_RETURN_IF_ERROR(ctx->PollOpenFault("ValueOffset(naive)"));
    ctx_ = ctx;
    next_pos_ = required_.start;
    return child_->Open(ctx);
  }
  std::optional<PosRecord> Next() override;
  std::optional<PosRecord> NextAtOrAfter(Position p) override {
    if (p > next_pos_) next_pos_ = p;
    return Next();
  }
  size_t NextBatch(RecordBatch* out) override;
  std::optional<Record> Probe(Position p) override { return Search(p); }
  size_t ProbeBatch(std::span<const Position> positions,
                    RecordBatch* out) override;
  void Close() override { child_->Close(); }
  void SaveState(OpStateWriter* w) const override { child_->SaveState(w); }
  bool RestoreState(OpStateReader* r) override {
    return child_->RestoreState(r);
  }

 private:
  std::optional<Record> Search(Position p);

  SeqOpPtr child_;
  int64_t offset_;
  Span required_;
  Span child_span_;
  ExecContext* ctx_ = nullptr;
  Position next_pos_ = 0;
};

}  // namespace seq

#endif  // SEQ_EXEC_OFFSET_OPS_H_
