#ifndef SEQ_EXEC_OFFSET_OPS_H_
#define SEQ_EXEC_OFFSET_OPS_H_

#include <deque>
#include <optional>
#include <utility>

#include "exec/operator.h"

namespace seq {

/// Value offset (Previous/Next and general ±k) evaluated incrementally
/// with Cache-Strategy-B (§3.5, Fig. 5.B): a cache of the |l| most recent
/// input records makes out(i) an O(1) step from out(i-1), regardless of
/// how sparse the input is. Output is dense — defined at every position of
/// the required range once enough history exists — so NextAtOrAfter jumps
/// in O(1) plus input catch-up.
class ValueOffsetStream : public StreamOp {
 public:
  /// `offset` < 0: |offset|-th most recent input strictly before i;
  /// `offset` > 0: offset-th next input strictly after i.
  ValueOffsetStream(StreamOpPtr child, int64_t offset, Span required)
      : child_(std::move(child)), offset_(offset), required_(required) {}

  Status Open(ExecContext* ctx) override;
  std::optional<PosRecord> Next() override;
  std::optional<PosRecord> NextAtOrAfter(Position p) override;
  size_t NextBatch(RecordBatch* out) override;
  void Close() override { child_->Close(); }

 private:
  // Pulls the child's next record into pending_ if empty.
  void Fill();

  StreamOpPtr child_;
  int64_t offset_;
  Span required_;
  ExecContext* ctx_ = nullptr;

  std::optional<PosRecord> pending_;  // next unconsumed child record
  bool child_done_ = false;
  std::deque<PosRecord> cache_;  // last |l| consumed (l<0) / lookahead (l>0)
  Position next_pos_ = 0;        // next output position to consider
};

/// The naive algorithm for a value offset: from every output position,
/// probe backward (or forward) through the input until |l| non-empty
/// positions have been found (§3.5: "repeated retrievals ... and
/// recomputation"). Used for probed access and as the Fig. 5.B baseline.
class ValueOffsetNaiveProbe : public ProbeOp {
 public:
  ValueOffsetNaiveProbe(ProbeOpPtr child, int64_t offset, Span child_span)
      : child_(std::move(child)), offset_(offset), child_span_(child_span) {}

  Status Open(ExecContext* ctx) override { return child_->Open(ctx); }
  std::optional<Record> Probe(Position p) override;
  void Close() override { child_->Close(); }

 private:
  ProbeOpPtr child_;
  int64_t offset_;
  Span child_span_;
};

/// Naive search exposed as a stream (the ablation plan): walks every
/// position of the required range, searching from scratch at each.
class ValueOffsetNaiveStream : public StreamOp {
 public:
  ValueOffsetNaiveStream(ProbeOpPtr child, int64_t offset, Span required,
                         Span child_span)
      : search_(std::move(child), offset, child_span), required_(required) {}

  Status Open(ExecContext* ctx) override {
    next_pos_ = required_.start;
    return search_.Open(ctx);
  }
  std::optional<PosRecord> Next() override;
  std::optional<PosRecord> NextAtOrAfter(Position p) override {
    if (p > next_pos_) next_pos_ = p;
    return Next();
  }
  void Close() override { search_.Close(); }

 private:
  ValueOffsetNaiveProbe search_;
  Span required_;
  Position next_pos_ = 0;
};

}  // namespace seq

#endif  // SEQ_EXEC_OFFSET_OPS_H_
