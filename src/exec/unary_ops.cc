#include "exec/unary_ops.h"

namespace seq {

Status SelectStream::Open(ExecContext* ctx) {
  ctx_ = ctx;
  SEQ_ASSIGN_OR_RETURN(CompiledExpr compiled,
                       CompiledExpr::CompilePredicate(predicate_, *in_schema_));
  compiled_ = std::move(compiled);
  return child_->Open(ctx);
}

std::optional<PosRecord> SelectStream::Next() {
  while (true) {
    std::optional<PosRecord> r = child_->Next();
    if (!r.has_value()) return std::nullopt;
    ctx_->ChargePredicate(/*join=*/false);
    if (compiled_->EvalBool(r->rec, r->pos)) return r;
  }
}

std::optional<PosRecord> SelectStream::NextAtOrAfter(Position p) {
  std::optional<PosRecord> r = child_->NextAtOrAfter(p);
  while (r.has_value()) {
    ctx_->ChargePredicate(/*join=*/false);
    if (compiled_->EvalBool(r->rec, r->pos)) return r;
    r = child_->Next();
  }
  return std::nullopt;
}

Status SelectProbe::Open(ExecContext* ctx) {
  ctx_ = ctx;
  SEQ_ASSIGN_OR_RETURN(CompiledExpr compiled,
                       CompiledExpr::CompilePredicate(predicate_, *in_schema_));
  compiled_ = std::move(compiled);
  return child_->Open(ctx);
}

std::optional<Record> SelectProbe::Probe(Position p) {
  std::optional<Record> r = child_->Probe(p);
  if (!r.has_value()) return std::nullopt;
  ctx_->ChargePredicate(/*join=*/false);
  if (!compiled_->EvalBool(*r, p)) return std::nullopt;
  return r;
}

Record ProjectStream::Map(Record in) const {
  Record out;
  out.reserve(indices_.size());
  for (size_t idx : indices_) out.push_back(std::move(in[idx]));
  return out;
}

std::optional<PosRecord> ProjectStream::Next() {
  std::optional<PosRecord> r = child_->Next();
  if (!r.has_value()) return std::nullopt;
  ctx_->ChargeCompute();
  return PosRecord{r->pos, Map(std::move(r->rec))};
}

std::optional<PosRecord> ProjectStream::NextAtOrAfter(Position p) {
  std::optional<PosRecord> r = child_->NextAtOrAfter(p);
  if (!r.has_value()) return std::nullopt;
  ctx_->ChargeCompute();
  return PosRecord{r->pos, Map(std::move(r->rec))};
}

std::optional<Record> ProjectProbe::Probe(Position p) {
  std::optional<Record> r = child_->Probe(p);
  if (!r.has_value()) return std::nullopt;
  ctx_->ChargeCompute();
  Record out;
  out.reserve(indices_.size());
  for (size_t idx : indices_) out.push_back(std::move((*r)[idx]));
  return out;
}

}  // namespace seq
