#include "exec/unary_ops.h"

#include <functional>

namespace seq {

namespace {

/// Compacts the rows of `out` whose int64 field `field` satisfies
/// `cmp(value, lit)` to the front, swapping slot buffers so dropped slots
/// stay reusable. Returns the kept count.
template <typename Cmp>
size_t CompactIntCmp(RecordBatch* out, size_t n, size_t field, int64_t lit,
                     Cmp cmp) {
  size_t kept = 0;
  for (size_t i = 0; i < n; ++i) {
    if (cmp(out->rec(i)[field].int64(), lit)) {
      if (kept != i) {
        out->pos(kept) = out->pos(i);
        out->rec(kept).swap(out->rec(i));
      }
      ++kept;
    }
  }
  return kept;
}

}  // namespace

Status SelectOp::Open(ExecContext* ctx) {
  SEQ_RETURN_IF_ERROR(ctx->PollOpenFault("Select"));
  ctx_ = ctx;
  SEQ_ASSIGN_OR_RETURN(CompiledExpr compiled,
                       CompiledExpr::CompilePredicate(predicate_, *in_schema_));
  compiled_ = std::move(compiled);
  compiled_->InitScratch(&scratch_);
  simple_ = compiled_->AsSimpleIntCmp();
  return child_->Open(ctx);
}

std::optional<PosRecord> SelectOp::Next() {
  while (true) {
    std::optional<PosRecord> r = child_->Next();
    if (!r.has_value() || ctx_->failed()) return std::nullopt;
    ctx_->ChargePredicate(/*join=*/false);
    if (ctx_->PollFaultRaise(FaultSite::kExprEval, "Select", r->pos)) {
      return std::nullopt;
    }
    if (compiled_->EvalBool(r->rec, r->pos)) return r;
  }
}

std::optional<PosRecord> SelectOp::NextAtOrAfter(Position p) {
  std::optional<PosRecord> r = child_->NextAtOrAfter(p);
  while (r.has_value() && !ctx_->failed()) {
    ctx_->ChargePredicate(/*join=*/false);
    if (ctx_->PollFaultRaise(FaultSite::kExprEval, "Select", r->pos)) {
      return std::nullopt;
    }
    if (compiled_->EvalBool(r->rec, r->pos)) return r;
    r = child_->Next();
  }
  return std::nullopt;
}

size_t SelectOp::NextBatch(RecordBatch* out) {
  // Filters in place: the child fills `out` and the passing rows are
  // compacted to the front by swapping slot buffers, so dropped slots keep
  // their buffers for the child's next refill. A fully-filtered child
  // batch just tries the next one, so returning 0 still means end of
  // stream.
  while (true) {
    size_t n = child_->NextBatch(out);
    if (n == 0 || ctx_->failed()) return 0;
    // The predicate is applied to every input row regardless of outcome,
    // so the charge is a single bulk call.
    ctx_->ChargePredicates(/*join=*/false, static_cast<int64_t>(n));
    size_t kept = Filter(out, n);
    if (ctx_->failed()) return 0;
    if (kept > 0) {
      out->Truncate(kept);
      return kept;
    }
  }
}

size_t SelectOp::NextBatchUpTo(Position limit, RecordBatch* out) {
  // Same in-place filter over a bounded child pull. The overshoot row the
  // child includes may be filtered out; when everything is filtered we
  // keep pulling — the child serves one record per call past `limit`, so
  // this walks forward exactly like the tuple path's pull-until-pass loop
  // and stops at the first *surviving* record past the limit (or end).
  while (true) {
    size_t n = child_->NextBatchUpTo(limit, out);
    if (n == 0 || ctx_->failed()) return 0;
    ctx_->ChargePredicates(/*join=*/false, static_cast<int64_t>(n));
    size_t kept = Filter(out, n);
    if (ctx_->failed()) return 0;
    if (kept > 0) {
      out->Truncate(kept);
      return kept;
    }
  }
}

std::optional<Record> SelectOp::Probe(Position p) {
  std::optional<Record> r = child_->Probe(p);
  if (!r.has_value() || ctx_->failed()) return std::nullopt;
  ctx_->ChargePredicate(/*join=*/false);
  if (ctx_->PollFaultRaise(FaultSite::kExprEval, "Select", p)) {
    return std::nullopt;
  }
  if (!compiled_->EvalBool(*r, p)) return std::nullopt;
  return r;
}

size_t SelectOp::ProbeBatch(std::span<const Position> positions,
                            RecordBatch* out) {
  // The child returns hit rows only; the predicate is applied (and
  // charged) once per hit, exactly as tuple probing does.
  size_t n = child_->ProbeBatch(positions, out);
  if (n == 0 || ctx_->failed()) return 0;
  ctx_->ChargePredicates(/*join=*/false, static_cast<int64_t>(n));
  size_t kept = Filter(out, n);
  if (ctx_->failed()) return 0;
  out->Truncate(kept);
  return kept;
}

// Dispatches to the fused/simple filters normally; when the expr-eval
// fault site is armed every row goes through the polling filter so "fail
// the k-th evaluation" is deterministic in both driving modes.
size_t SelectOp::Filter(RecordBatch* out, size_t n) {
  if (ctx_->FaultArmed(FaultSite::kExprEval)) return FilterFaulted(out, n);
  return simple_.has_value() ? FilterSimple(out, n) : FilterGeneric(out, n);
}

size_t SelectOp::FilterFaulted(RecordBatch* out, size_t n) {
  size_t kept = 0;
  for (size_t i = 0; i < n; ++i) {
    if (ctx_->PollFaultRaise(FaultSite::kExprEval, "Select", out->pos(i))) {
      break;
    }
    if (compiled_->EvalBoolFlat(out->rec(i), out->pos(i), &scratch_)) {
      if (kept != i) {
        out->pos(kept) = out->pos(i);
        out->rec(kept).swap(out->rec(i));
      }
      ++kept;
    }
  }
  return kept;
}

size_t SelectOp::FilterGeneric(RecordBatch* out, size_t n) {
  size_t kept = 0;
  for (size_t i = 0; i < n; ++i) {
    if (compiled_->EvalBoolFlat(out->rec(i), out->pos(i), &scratch_)) {
      if (kept != i) {
        out->pos(kept) = out->pos(i);
        out->rec(kept).swap(out->rec(i));
      }
      ++kept;
    }
  }
  return kept;
}

size_t SelectOp::FilterSimple(RecordBatch* out, size_t n) {
  const size_t f = simple_->field_index;
  const int64_t lit = simple_->literal;
  switch (simple_->op) {
    case BinaryOp::kEq:
      return CompactIntCmp(out, n, f, lit, std::equal_to<int64_t>());
    case BinaryOp::kNe:
      return CompactIntCmp(out, n, f, lit, std::not_equal_to<int64_t>());
    case BinaryOp::kLt:
      return CompactIntCmp(out, n, f, lit, std::less<int64_t>());
    case BinaryOp::kLe:
      return CompactIntCmp(out, n, f, lit, std::less_equal<int64_t>());
    case BinaryOp::kGt:
      return CompactIntCmp(out, n, f, lit, std::greater<int64_t>());
    case BinaryOp::kGe:
      return CompactIntCmp(out, n, f, lit, std::greater_equal<int64_t>());
    default:
      return FilterGeneric(out, n);
  }
}

Record ProjectOp::Map(Record in) const {
  Record out;
  out.reserve(indices_.size());
  for (size_t idx : indices_) out.push_back(std::move(in[idx]));
  return out;
}

/// In-place projection of the first `n` rows of `out`: left-shift when the
/// source indices are strictly increasing, scratch staging otherwise.
void ProjectOp::MapBatchRows(RecordBatch* out, size_t n) {
  const size_t width = indices_.size();
  if (in_place_) {
    for (size_t i = 0; i < n; ++i) {
      Record& r = out->rec(i);
      for (size_t j = 0; j < width; ++j) {
        if (indices_[j] != j) r[j] = std::move(r[indices_[j]]);
      }
      r.resize(width);
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    Record& r = out->rec(i);
    tmp_.resize(width);
    for (size_t j = 0; j < width; ++j) tmp_[j] = std::move(r[indices_[j]]);
    r.swap(tmp_);
  }
}

std::optional<PosRecord> ProjectOp::Next() {
  std::optional<PosRecord> r = child_->Next();
  if (!r.has_value()) return std::nullopt;
  ctx_->ChargeCompute();
  return PosRecord{r->pos, Map(std::move(r->rec))};
}

std::optional<PosRecord> ProjectOp::NextAtOrAfter(Position p) {
  std::optional<PosRecord> r = child_->NextAtOrAfter(p);
  if (!r.has_value()) return std::nullopt;
  ctx_->ChargeCompute();
  return PosRecord{r->pos, Map(std::move(r->rec))};
}

size_t ProjectOp::NextBatch(RecordBatch* out) {
  // 1:1 in-place transform of the batch the child filled: row counts
  // match, so 0 from the child means end of stream.
  size_t n = child_->NextBatch(out);
  if (ctx_->failed()) return 0;
  ctx_->ChargeComputeN(static_cast<int64_t>(n));
  MapBatchRows(out, n);
  return n;
}

size_t ProjectOp::NextBatchUpTo(Position limit, RecordBatch* out) {
  size_t n = child_->NextBatchUpTo(limit, out);
  if (ctx_->failed()) return 0;
  ctx_->ChargeComputeN(static_cast<int64_t>(n));
  MapBatchRows(out, n);
  return n;
}

std::optional<Record> ProjectOp::Probe(Position p) {
  std::optional<Record> r = child_->Probe(p);
  if (!r.has_value()) return std::nullopt;
  ctx_->ChargeCompute();
  Record out;
  out.reserve(indices_.size());
  for (size_t idx : indices_) out.push_back(std::move((*r)[idx]));
  return out;
}

size_t ProjectOp::ProbeBatch(std::span<const Position> positions,
                             RecordBatch* out) {
  size_t n = child_->ProbeBatch(positions, out);
  if (ctx_->failed()) return 0;
  ctx_->ChargeComputeN(static_cast<int64_t>(n));
  MapBatchRows(out, n);
  return n;
}

}  // namespace seq
